// The full six-activity recognition task. The paper evaluates PLOS on one
// binary pair (sitting vs standing, "the least separable pair"); this
// example runs the complete task with the one-vs-rest extension
// (plos.TrainMulticlass) on a simulated HAR cohort: 8 users, six
// activities, some users labeling a little, some nothing.
//
//	go run ./examples/multiclass
package main

import (
	"fmt"
	"os"

	"plos"
	"plos/internal/har"
	"plos/internal/rng"
)

var activities = []string{
	"walking", "upstairs", "downstairs", "sitting", "standing", "laying",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiclass:", err)
		os.Exit(1)
	}
}

func run() error {
	ds, err := har.GenerateMulti(har.Config{
		Users:       8,
		PerClass:    20,
		Dim:         120,
		Informative: 30,
	}, len(activities), rng.New(31))
	if err != nil {
		return err
	}

	users := make([]plos.MulticlassUser, len(ds.Users))
	for t, u := range ds.Users {
		mu := plos.MulticlassUser{}
		labeled := 0
		if t%2 == 0 {
			labeled = 18 // three labels per activity
		}
		for i := 0; i < u.X.Rows; i++ {
			mu.Features = append(mu.Features, append([]float64(nil), u.X.Row(i)...))
			if i < labeled {
				mu.Labels = append(mu.Labels, u.Truth[i])
			}
		}
		users[t] = mu
	}

	model, err := plos.TrainMulticlass(users, plos.WithLambda(100), plos.WithSeed(31))
	if err != nil {
		return err
	}
	fmt.Printf("trained %d one-vs-rest PLOS models for %d activities\n\n",
		len(model.Classes()), len(activities))

	fmt.Println("user   labels   accuracy   hardest-confusion")
	for t, u := range ds.Users {
		correct := 0
		confusion := map[[2]int]int{}
		for i := 0; i < u.X.Rows; i++ {
			got := model.Predict(t, users[t].Features[i])
			if got == u.Truth[i] {
				correct++
			} else {
				confusion[[2]int{u.Truth[i], got}]++
			}
		}
		worst, worstN := [2]int{-1, -1}, 0
		for pair, n := range confusion {
			if n > worstN {
				worst, worstN = pair, n
			}
		}
		confStr := "—"
		if worstN > 0 {
			confStr = fmt.Sprintf("%s→%s (%d)", activities[worst[0]], activities[worst[1]], worstN)
		}
		fmt.Printf("%4d %8d %10.3f   %s\n",
			t, len(users[t].Labels), float64(correct)/float64(u.X.Rows), confStr)
	}
	fmt.Println("\nThe dominant confusion should be the sitting↔standing pair —")
	fmt.Println("exactly the pair the paper singles out as least separable.")
	return nil
}
