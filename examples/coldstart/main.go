// Cold start: onboarding a brand-new user into a deployed PLOS population.
//
// Scenario: 8 users have been training PLOS for a while. A ninth user —
// whose activity pattern differs most from the population average —
// installs the app. The example walks the three onboarding stages the PLOS
// design enables:
//
//  1. Day one: classify the newcomer with the population's global model.
//     No retraining, no data shared.
//
//  2. First sync: the newcomer's *unlabeled* data joins training. For a
//     user this far from the population the gain can be small — the paper's
//     Fig. 8b shows exactly this: zero-label users at large rotation can't
//     borrow much.
//
//  3. A week later: the newcomer labels a handful of samples. The
//     personalized classifier now locks onto their own pattern and clearly
//     beats the global model.
//
//     go run ./examples/coldstart
package main

import (
	"fmt"
	"os"

	"plos"
	"plos/internal/dataset"
	"plos/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coldstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 9 users whose activity patterns fan out over ~70°; the last user
	// differs most from the population average.
	const population = 9
	all, err := dataset.Population(population, 1.2, dataset.SynthConfig{PerClass: 60}, rng.New(21))
	if err != nil {
		return err
	}
	newcomerIdx := population - 1
	newcomer := all[newcomerIdx]

	toUser := func(u dataset.User, labeled int) plos.User {
		out := plos.User{}
		for i := 0; i < u.X.Rows; i++ {
			out.Features = append(out.Features, append([]float64(nil), u.X.Row(i)...))
			if i < labeled {
				out.Labels = append(out.Labels, u.Truth[i])
			}
		}
		return out
	}
	accOn := func(predict func(x []float64) float64) float64 {
		correct := 0
		for i := 0; i < newcomer.X.Rows; i++ {
			if predict(newcomer.X.Row(i)) == newcomer.Truth[i] {
				correct++
			}
		}
		return float64(correct) / float64(newcomer.X.Rows)
	}

	// λ = 5: a heterogeneous population, so let personalization pull away
	// from the average.
	train := func(users []plos.User) (*plos.Model, error) {
		return plos.Train(users, plos.WithLambda(5), plos.WithSeed(21))
	}
	var existing []plos.User
	for _, u := range all[:newcomerIdx] {
		existing = append(existing, toUser(u, 10))
	}

	// Stage 1 — day one.
	base, err := train(existing)
	if err != nil {
		return err
	}
	dayOne := accOn(base.PredictGlobal)
	fmt.Printf("stage 1  day one, global model, newcomer unseen:   %.3f\n", dayOne)

	// Stage 2 — first sync, still zero labels.
	withUnlabeled := append(append([]plos.User{}, existing...), toUser(newcomer, 0))
	m2, err := train(withUnlabeled)
	if err != nil {
		return err
	}
	sync := accOn(func(x []float64) float64 { return m2.Predict(newcomerIdx, x) })
	fmt.Printf("stage 2  unlabeled data joins training:            %.3f\n", sync)

	// Stage 3 — the newcomer labels 8 samples (~7%% of their data).
	withLabels := append(append([]plos.User{}, existing...), toUser(newcomer, 8))
	m3, err := train(withLabels)
	if err != nil {
		return err
	}
	labeled := accOn(func(x []float64) float64 { return m3.Predict(newcomerIdx, x) })
	fmt.Printf("stage 3  newcomer labels just 8 samples:           %.3f\n", labeled)

	fmt.Printf("\npersonalization gain over the day-one global model: %+.3f\n", labeled-dayOne)
	fmt.Println("(stage 2 can be flat for users this far from the population —")
	fmt.Println(" the paper's Fig. 8b shows the same effect at large rotations)")
	return nil
}
