// Kernelized PLOS on a nonlinear sensing task. The paper sketches the
// kernel extension (§IV, via the multi-task kernel of its reference [33])
// but evaluates only the linear case; this example shows why the extension
// matters.
//
// Scenario: gesture intensity detection. Each user's "active" windows live
// in an annulus of motion-energy space around their personal resting point
// — a radially separable problem no linear hyperplane can solve. Three
// users share the annulus structure but differ in scale; one labels
// nothing.
//
//	go run ./examples/kernel
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"plos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kernel:", err)
		os.Exit(1)
	}
}

func run() error {
	users := make([]plos.User, 3)
	for t := range users {
		labeled := 12
		if t == 2 {
			labeled = 0 // the silent user
		}
		users[t] = gestureUser(int64(t), 1+0.25*float64(t), labeled)
	}

	linear, err := plos.Train(users, plos.WithLambda(50), plos.WithSeed(9))
	if err != nil {
		return err
	}
	rbf, err := plos.TrainKernel(users, plos.RBFKernel(1.0),
		plos.WithLambda(50), plos.WithSeed(9))
	if err != nil {
		return err
	}

	fmt.Println("user   labels   linear-PLOS   RBF-PLOS   support")
	for t, u := range users {
		linAcc := accuracy(func(x []float64) float64 { return linear.Predict(t, x) }, u)
		rbfAcc := accuracy(func(x []float64) float64 { return rbf.Predict(t, x) }, u)
		fmt.Printf("%4d %8d %13.3f %10.3f %9d\n",
			t, len(u.Labels), linAcc, rbfAcc, rbf.SupportSize(t))
	}
	fmt.Println("\nThe rest-vs-gesture boundary is an annulus: linear PLOS is stuck")
	fmt.Println("near chance while the kernelized model separates every user —")
	fmt.Println("including the one who never labeled a window.")
	return nil
}

// gestureUser puts resting windows in an inner disc and gesturing windows
// in an outer ring, scaled by the user's personal intensity.
func gestureUser(seed int64, scale float64, labeled int) plos.User {
	r := rand.New(rand.NewSource(seed))
	const perClass = 40
	u := plos.User{}
	for i := 0; i < 2*perClass; i++ {
		cls := 1.0
		radius := scale * (0.4 + 0.3*r.Float64())
		if i%2 == 1 {
			cls = -1
			radius = scale * (2.0 + 0.5*r.Float64())
		}
		angle := 2 * math.Pi * r.Float64()
		u.Features = append(u.Features, []float64{
			radius * math.Cos(angle), radius * math.Sin(angle),
		})
		if i < labeled {
			u.Labels = append(u.Labels, cls)
		}
	}
	return u
}

func accuracy(predict func([]float64) float64, u plos.User) float64 {
	correct := 0
	for i, x := range u.Features {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		if predict(x) == cls {
			correct++
		}
	}
	return float64(correct) / float64(len(u.Features))
}
