// Distributed PLOS over real TCP loopback: a coordinator (plos.Serve) and
// five device processes-in-goroutines (plos.Join) train together while raw
// samples never leave each device — only model parameters cross the wire.
// The per-device traffic printed at the end is the paper's Fig. 13 metric;
// compare it with what uploading the raw data would have cost.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"plos"
)

const devices = 5

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	users := make([]plos.User, devices)
	for i := range users {
		labeled := 8
		if i >= 3 {
			labeled = 0 // two devices never label anything
		}
		users[i] = deviceData(int64(i), 0.25*float64(i), labeled)
	}

	addrCh := make(chan string, 1)
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, serveErr = plos.Serve("127.0.0.1:0", devices,
			func(addr string) { addrCh <- addr },
			plos.WithLambda(100), plos.WithADMM(1, 1e-3), plos.WithSeed(11))
	}()
	addr := <-addrCh
	fmt.Println("coordinator listening on", addr)

	models := make([]*plos.DeviceModel, devices)
	errs := make([]error, devices)
	var dwg sync.WaitGroup
	for i := range users {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			models[i], errs[i] = plos.Join(addr, users[i], plos.WithSeed(int64(i)))
		}(i)
	}
	dwg.Wait()
	wg.Wait()
	if serveErr != nil {
		return serveErr
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}

	fmt.Println("\ndevice   labels   accuracy   traffic     raw-upload-would-be")
	for i, d := range models {
		correct := 0
		for j, x := range users[i].Features {
			cls := 1.0
			if j%2 == 1 {
				cls = -1
			}
			if d.Predict(x) == cls {
				correct++
			}
		}
		acc := float64(correct) / float64(len(users[i].Features))
		rawBytes := len(users[i].Features) * len(users[i].Features[0]) * 8
		fmt.Printf("%6d %8d %10.3f %8.1f KB %12.1f KB\n",
			i, len(users[i].Labels), acc, float64(d.Bytes)/1024, float64(rawBytes)/1024)
	}
	fmt.Println("\nEach device exchanged only hyperplane parameters with the")
	fmt.Println("coordinator; the coordinator never saw a single raw sample.")
	return nil
}

// deviceData fabricates sensor-scale data: 600 samples of 40-dim feature
// vectors per device (so the raw-upload comparison is realistic — mobile
// sensing feature streams are orders of magnitude larger than the model
// parameters the protocol actually sends).
func deviceData(seed int64, offset float64, labeled int) plos.User {
	r := rand.New(rand.NewSource(seed))
	const (
		perClass = 300
		dims     = 40
	)
	u := plos.User{}
	for i := 0; i < 2*perClass; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		x := make([]float64, dims)
		x[0] = cls*4 + offset*2 + r.NormFloat64()
		x[1] = cls*4 - offset*3 + r.NormFloat64()
		for d := 2; d < dims; d++ {
			x[d] = r.NormFloat64() // nuisance sensor channels
		}
		u.Features = append(u.Features, x)
		if i < labeled {
			u.Labels = append(u.Labels, cls)
		}
	}
	return u
}
