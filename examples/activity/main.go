// Activity recognition on a simulated body sensor network — the paper's
// §VI-B scenario end to end: 3 sensing nodes per subject (waist + both
// shins, accelerometer + gyroscope), 20 Hz signals windowed into 120-dim
// feature vectors, and a cohort where only half the subjects label a few
// windows — yet every subject ends up with a personalized classifier.
//
//	go run ./examples/activity
package main

import (
	"fmt"
	"os"

	"plos"
	"plos/internal/rng"
	"plos/internal/sensors"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "activity:", err)
		os.Exit(1)
	}
}

func run() error {
	// Simulate a 10-subject cohort wearing the sensor network. Free
	// placement (each subject attaches nodes differently) is what makes
	// personalization matter.
	cohort, err := sensors.Generate(sensors.Config{
		Subjects:            10,
		SegmentsPerActivity: 30,
	}, rng.New(7))
	if err != nil {
		return err
	}

	// Half the subjects label 6% of their windows; the rest label none.
	const labelRate = 0.06
	users := make([]plos.User, len(cohort.Subjects))
	for i, s := range cohort.Subjects {
		u := plos.User{}
		labeled := 0
		if i%2 == 0 {
			labeled = int(labelRate*float64(s.X.Rows)) + 2
		}
		for r := 0; r < s.X.Rows; r++ {
			u.Features = append(u.Features, append([]float64(nil), s.X.Row(r)...))
			if r < labeled {
				u.Labels = append(u.Labels, s.Truth[r])
			}
		}
		users[i] = u
	}

	model, err := plos.Train(users, plos.WithLambda(100), plos.WithSeed(7))
	if err != nil {
		return err
	}

	fmt.Println("subject   labels   PLOS-accuracy")
	var labeledSum, unlabeledSum float64
	var labeledN, unlabeledN int
	for i, s := range cohort.Subjects {
		correct := 0
		for r := 0; r < s.X.Rows; r++ {
			if model.Predict(i, s.X.Row(r)) == s.Truth[r] {
				correct++
			}
		}
		acc := float64(correct) / float64(s.X.Rows)
		fmt.Printf("%7d %8d %14.3f\n", i, len(users[i].Labels), acc)
		if len(users[i].Labels) > 0 {
			labeledSum += acc
			labeledN++
		} else {
			unlabeledSum += acc
			unlabeledN++
		}
	}
	fmt.Printf("\nmean accuracy: %.3f on subjects with labels, %.3f on subjects without\n",
		labeledSum/float64(labeledN), unlabeledSum/float64(unlabeledN))
	fmt.Println("\nEvery subject — including the ones who labeled nothing — got a")
	fmt.Println("personalized standing-vs-sitting classifier without uploading raw data")
	fmt.Println("in the distributed mode (see examples/distributed).")
	return nil
}
