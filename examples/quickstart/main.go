// Quickstart: train a personalized model for three users — one of whom
// labels nothing at all — and classify new samples with each user's own
// classifier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"plos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	r := rand.New(rand.NewSource(42))

	// Three users doing the same two activities. Ana and Ben label a few
	// samples; Carol labels none — PLOS still gives her a personalized
	// classifier by borrowing the population's knowledge.
	ana := simulateUser(r, 0.0, 6)   // canonical sensor placement, 6 labels
	ben := simulateUser(r, 0.3, 6)   // slightly different placement
	carol := simulateUser(r, 0.6, 0) // distinct placement, zero labels

	model, err := plos.Train([]plos.User{ana, ben, carol},
		plos.WithLambda(100), // how strongly users share (paper Fig. 7)
		plos.WithSeed(42),
	)
	if err != nil {
		return err
	}

	fmt.Println("trained:", model.NumUsers(), "personalized classifiers")
	fmt.Printf("solver: %+v\n\n", model.Stats())

	// Classify a fresh "walking-like" sample for each user. Each user gets
	// their own decision boundary.
	for t, name := range []string{"ana", "ben", "carol"} {
		sample := []float64{3.5, 3.5}
		fmt.Printf("%-6s predict(%v) = %+v (margin %.2f)\n",
			name, sample, model.Predict(t, sample), model.Score(t, sample))
	}

	// A brand-new user with no training presence uses the global model.
	fmt.Printf("\ncold-start PredictGlobal([3.5 3.5]) = %v\n",
		model.PredictGlobal([]float64{3.5, 3.5}))
	return nil
}

// simulateUser fabricates a user's two-class sensor features. The offset
// mimics personal traits (device placement, motion style); labels cover
// the first `labeled` samples, as PLOS expects.
func simulateUser(r *rand.Rand, offset float64, labeled int) plos.User {
	const perClass = 30
	u := plos.User{}
	for i := 0; i < 2*perClass; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		u.Features = append(u.Features, []float64{
			cls*4 + offset*3 + r.NormFloat64(),
			cls*4 - offset*2 + r.NormFloat64(),
		})
		if i < labeled {
			u.Labels = append(u.Labels, cls)
		}
	}
	return u
}
