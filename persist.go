package plos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"plos/internal/core"
	"plos/internal/mat"
)

// modelFile is the on-disk JSON schema. Version guards future format
// changes; bias must round-trip so Predict augments consistently.
type modelFile struct {
	Version int         `json:"version"`
	Bias    bool        `json:"bias"`
	W0      []float64   `json:"w0"`
	W       [][]float64 `json:"w"`
}

const modelFileVersion = 1

// ErrBadModelFile is wrapped into errors returned by LoadModel for
// malformed or incompatible files.
var ErrBadModelFile = errors.New("plos: invalid model file")

// Save serializes the trained model as JSON. The format is stable and
// versioned, so models can move between a training server and devices.
func (m *Model) Save(w io.Writer) error {
	file := modelFile{
		Version: modelFileVersion,
		Bias:    m.bias,
		W0:      m.model.W0,
		W:       make([][]float64, len(m.model.W)),
	}
	for t, wt := range m.model.W {
		file.W[t] = wt
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("plos: Model.Save: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var file modelFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModelFile, err)
	}
	if file.Version != modelFileVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadModelFile, file.Version, modelFileVersion)
	}
	if len(file.W0) == 0 {
		return nil, fmt.Errorf("%w: missing global hyperplane", ErrBadModelFile)
	}
	cm := &core.Model{W0: mat.Vector(file.W0), W: make([]mat.Vector, len(file.W))}
	for t, wt := range file.W {
		if wt == nil {
			continue // user dropped out during distributed training
		}
		if len(wt) != len(file.W0) {
			return nil, fmt.Errorf("%w: user %d hyperplane has %d dims, global has %d",
				ErrBadModelFile, t, len(wt), len(file.W0))
		}
		cm.W[t] = mat.Vector(wt)
	}
	return &Model{model: cm, bias: file.Bias}, nil
}
