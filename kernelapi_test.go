package plos

import (
	"errors"
	"math"
	"testing"

	"plos/internal/rng"
)

// ringUsers builds users whose classes are radially separable (inner disc
// vs outer ring) with per-user radius shifts.
func ringUsers(seed int64, count, perClass int, labeledFor func(int) int) []User {
	g := rng.New(seed)
	users := make([]User, count)
	for t := 0; t < count; t++ {
		gu := g.SplitN("ring", t)
		shift := 0.2 * float64(t)
		u := User{}
		labeled := labeledFor(t)
		for i := 0; i < 2*perClass; i++ {
			cls := 1.0
			radius := 0.5 + 0.3*gu.Float64() + shift
			if i%2 == 1 {
				cls = -1
				radius = 2.3 + 0.4*gu.Float64() + shift
			}
			angle := gu.Float64() * 2 * math.Pi
			u.Features = append(u.Features, []float64{
				radius * math.Cos(angle), radius * math.Sin(angle),
			})
			if i < labeled {
				u.Labels = append(u.Labels, cls)
			}
		}
		users[t] = u
	}
	return users
}

func ringAccuracy(predict func(x []float64) float64, u User) float64 {
	correct := 0
	for i, x := range u.Features {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		if predict(x) == cls {
			correct++
		}
	}
	return float64(correct) / float64(len(u.Features))
}

func TestTrainKernelRBF(t *testing.T) {
	users := ringUsers(1, 3, 20, func(i int) int {
		if i == 2 {
			return 0
		}
		return 10
	})
	km, err := TrainKernel(users, RBFKernel(1), WithLambda(50), WithSeed(1))
	if err != nil {
		t.Fatalf("TrainKernel: %v", err)
	}
	if km.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", km.NumUsers())
	}
	for i, u := range users {
		if acc := ringAccuracy(func(x []float64) float64 { return km.Predict(i, x) }, u); acc < 0.85 {
			t.Errorf("user %d RBF accuracy = %v", i, acc)
		}
	}
	// Linear PLOS cannot solve rings.
	lm, err := Train(users, WithLambda(50), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	linAcc := ringAccuracy(func(x []float64) float64 { return lm.Predict(0, x) }, users[0])
	rbfAcc := ringAccuracy(func(x []float64) float64 { return km.Predict(0, x) }, users[0])
	if rbfAcc <= linAcc+0.15 {
		t.Errorf("RBF (%v) should dominate linear (%v) on rings", rbfAcc, linAcc)
	}
	if km.SupportSize(0) == 0 {
		t.Error("expected nonzero support size")
	}
	if km.Stats().CCCPIterations == 0 {
		t.Error("stats missing")
	}
	if got := km.PredictGlobal([]float64{0, 0}); got != 1 {
		t.Errorf("PredictGlobal(center) = %v", got)
	}
	if km.Score(0, []float64{0, 0}) <= 0 {
		t.Error("Score at the center should be positive")
	}
}

func TestTrainKernelValidation(t *testing.T) {
	users := ringUsers(2, 1, 5, func(int) int { return 4 })
	if _, err := TrainKernel(users, KernelSpec{}); !errors.Is(err, ErrBadKernel) {
		t.Errorf("zero spec: %v", err)
	}
	if _, err := TrainKernel(users, RBFKernel(-1)); !errors.Is(err, ErrBadKernel) {
		t.Errorf("negative gamma: %v", err)
	}
	if _, err := TrainKernel(nil, LinearKernel()); !errors.Is(err, ErrNoUsers) {
		t.Errorf("no users: %v", err)
	}
}

func TestTrainKernelPoly(t *testing.T) {
	users := ringUsers(3, 2, 15, func(int) int { return 10 })
	km, err := TrainKernel(users, PolyKernel(2, 1), WithLambda(50), WithSeed(3))
	if err != nil {
		t.Fatalf("PolyKernel: %v", err)
	}
	// Degree-2 polynomial also separates rings (x² + y² is in its span).
	if acc := ringAccuracy(func(x []float64) float64 { return km.Predict(0, x) }, users[0]); acc < 0.8 {
		t.Errorf("poly accuracy = %v", acc)
	}
}
