package plos

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"plos/internal/obs"
	"plos/internal/obs/health"
)

// TestObserverBitIdentical is the acceptance gate of the observability
// layer: attaching an observer must not move a single bit of the trained
// model — same contract as WithWorkers determinism.
func TestObserverBitIdentical(t *testing.T) {
	users := detUsers(4)
	plainC, err := Train(users, WithSeed(4))
	if err != nil {
		t.Fatalf("Train plain: %v", err)
	}
	plainD, err := TrainDistributed(users, WithSeed(4))
	if err != nil {
		t.Fatalf("TrainDistributed plain: %v", err)
	}
	ob := NewObserver()
	obsC, err := Train(users, WithSeed(4), WithObserver(ob))
	if err != nil {
		t.Fatalf("Train observed: %v", err)
	}
	obsD, err := TrainDistributed(users, WithSeed(4), WithObserver(ob))
	if err != nil {
		t.Fatalf("TrainDistributed observed: %v", err)
	}
	compareModels(t, "Train observer on/off", plainC, obsC)
	compareModels(t, "TrainDistributed observer on/off", plainD, obsD)

	// The health engine consumes every flight record the runs emit; it must
	// stay just as passive as the bare observer.
	hob := NewObserver(WithHealth(health.Config{}))
	healthC, err := Train(users, WithSeed(4), WithObserver(hob))
	if err != nil {
		t.Fatalf("Train health-observed: %v", err)
	}
	healthD, err := TrainDistributed(users, WithSeed(4), WithObserver(hob))
	if err != nil {
		t.Fatalf("TrainDistributed health-observed: %v", err)
	}
	compareModels(t, "Train health engine on/off", plainC, healthC)
	compareModels(t, "TrainDistributed health engine on/off", plainD, healthD)
	if hob.Health() == nil {
		t.Fatal("WithHealth must attach an engine")
	}
	if hob.Health().HealthCode() != 0 {
		t.Fatalf("healthy deterministic run reports code %d, want 0 (%+v)",
			hob.Health().HealthCode(), hob.Health().Fleet())
	}
}

func TestObserverCollectsTrainingMetrics(t *testing.T) {
	users := detUsers(5)
	ob := NewObserver()
	if _, err := Train(users, WithSeed(5), WithObserver(ob)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	for _, name := range []string{
		obs.MetricTrainRuns, obs.MetricCCCPIterations,
		obs.MetricCutRounds, obs.MetricQPSolves, obs.MetricQPIterations,
	} {
		if ob.CounterValue(name) == 0 {
			t.Errorf("counter %s not incremented by centralized training", name)
		}
	}
	if _, err := TrainDistributed(users, WithSeed(5), WithObserver(ob)); err != nil {
		t.Fatalf("TrainDistributed: %v", err)
	}
	if ob.CounterValue(obs.MetricADMMRounds) == 0 {
		t.Error("admm_rounds_total not incremented by distributed training")
	}
	if ob.CounterValue(obs.MetricParallelBatches) == 0 {
		t.Error("parallel_batches_total not incremented (pool hook not installed?)")
	}

	// The Prometheus surface serves all of it.
	rec := httptest.NewRecorder()
	ob.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE cccp_iterations_total counter",
		"# TYPE qp_solve_seconds summary",
		"admm_primal_residual",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// JSON snapshot round-trips and the trace has solver spans.
	var buf strings.Builder
	if err := ob.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if snap[obs.MetricQPSolves].(float64) == 0 {
		t.Error("JSON snapshot lost qp_solves_total")
	}
	var trace strings.Builder
	if err := ob.WriteTraceJSONL(&trace); err != nil {
		t.Fatalf("WriteTraceJSONL: %v", err)
	}
	if !strings.Contains(trace.String(), `"kind":"cccp-iteration"`) ||
		!strings.Contains(trace.String(), `"kind":"admm-round"`) {
		t.Error("trace missing solver spans")
	}
}

// TestStatsCarriesADMMDiagnostics is the regression test for the dropped
// ADMM diagnostics: round counts and final residuals must survive into the
// public Stats, and slice fields must be copies.
func TestStatsCarriesADMMDiagnostics(t *testing.T) {
	users := detUsers(6)
	m, err := TrainDistributed(users, WithSeed(6))
	if err != nil {
		t.Fatalf("TrainDistributed: %v", err)
	}
	st := m.Stats()
	if st.ADMMIterations == 0 {
		t.Error("ADMMIterations dropped")
	}
	if st.ADMMPrimalResidual == 0 && st.ADMMDualResidual == 0 {
		t.Error("final ADMM residuals dropped (both exactly zero)")
	}
	if st.CutRounds == 0 {
		t.Error("CutRounds dropped")
	}
	if len(st.ObjectiveHistory) != st.CCCPIterations {
		t.Errorf("ObjectiveHistory has %d entries for %d CCCP iterations",
			len(st.ObjectiveHistory), st.CCCPIterations)
	}
	st.ObjectiveHistory[0] = -12345
	if m.Stats().ObjectiveHistory[0] == -12345 {
		t.Error("Stats returned an aliased slice, not a copy")
	}

	mc, err := Train(users, WithSeed(6))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if stc := mc.Stats(); stc.QPIterations == 0 || stc.CutRounds == 0 {
		t.Errorf("centralized Stats missing solver counts: %+v", stc)
	}
}

// TestServeJoinObserved checks the wire-level instrumentation: a loopback
// distributed run must feed the transport counters and wire spans.
func TestServeJoinObserved(t *testing.T) {
	users := makeUsers(9, 3, 10, 0.1, func(i int) int {
		if i == 2 {
			return 0
		}
		return 8
	})
	ob := NewObserver()
	addrCh := make(chan string, 1)
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, serveErr = Serve("127.0.0.1:0", len(users),
			func(addr string) { addrCh <- addr }, WithSeed(9), WithObserver(ob))
	}()
	addr := <-addrCh
	var dwg sync.WaitGroup
	deviceErrs := make([]error, len(users))
	for i := range users {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			_, deviceErrs[i] = Join(addr, users[i], WithSeed(int64(i)))
		}(i)
	}
	dwg.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	for i, err := range deviceErrs {
		if err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
	if ob.CounterValue(obs.MetricMessagesSent) == 0 ||
		ob.CounterValue(obs.MetricBytesSent) == 0 ||
		ob.CounterValue(obs.MetricMessagesReceived) == 0 ||
		ob.CounterValue(obs.MetricBytesReceived) == 0 {
		t.Errorf("transport counters empty: sent=%d/%dB recv=%d/%dB",
			ob.CounterValue(obs.MetricMessagesSent), ob.CounterValue(obs.MetricBytesSent),
			ob.CounterValue(obs.MetricMessagesReceived), ob.CounterValue(obs.MetricBytesReceived))
	}
	var trace strings.Builder
	if err := ob.WriteTraceJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"kind":"wire-send"`) {
		t.Error("trace missing wire spans")
	}
}

func TestNilObserverOption(t *testing.T) {
	users := detUsers(8)
	if _, err := Train(users, WithSeed(8), WithObserver(nil)); err != nil {
		t.Fatalf("Train with nil observer: %v", err)
	}
	var ob *Observer
	if ob.CounterValue(obs.MetricTrainRuns) != 0 {
		t.Error("nil observer should read zero")
	}
	if err := ob.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil observer WritePrometheus: %v", err)
	}
	ob.PublishExpvar() // must not panic
}
