// checklinks is the docs link gate, run by scripts/ci.sh as
// `go run ./scripts/checklinks` from the repo root. It scans the handbook
// set — README.md, DESIGN.md and docs/*.md — for relative links and inline
// path references, and fails when a target does not exist — so a moved or
// renamed document cannot leave dangling pointers in the handbook set.
// (Journal files like CHANGES.md and ISSUE.md are exempt: they narrate
// history and may name documents from other branches or points in time.)
//
// Checked forms:
//
//   - markdown links `[text](target)` whose target is not an absolute URL
//     or in-page anchor; a trailing `#fragment` is stripped before the
//     existence check (fragments themselves are not validated);
//   - prose references to sibling documents, `docs/NAME.md` or a bare
//     `NAME.md`, which this repo's docs use heavily ("see
//     docs/SHARDING.md").
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// docRef catches prose references like docs/SHARDING.md or DESIGN.md.
	docRef = regexp.MustCompile(`(?:^|[\s(` + "`" + `])((?:docs/)?[A-Z][A-Za-z0-9_-]*\.md)`)
)

func main() {
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}
	m, err := filepath.Glob("docs/*.md")
	if err != nil {
		fmt.Fprintf(os.Stderr, "checklinks: %v\n", err)
		os.Exit(1)
	}
	files = append(files, m...)
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "checklinks: no markdown files found (run from the repo root)")
		os.Exit(1)
	}
	sort.Strings(files)

	fail := false
	checked := 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checklinks: %v\n", err)
			os.Exit(1)
		}
		doc := string(raw)

		targets := map[string]bool{}
		for _, m := range mdLink.FindAllStringSubmatch(doc, -1) {
			t := m[1]
			if strings.Contains(t, "://") || strings.HasPrefix(t, "mailto:") || strings.HasPrefix(t, "#") {
				continue
			}
			if i := strings.IndexByte(t, '#'); i >= 0 {
				t = t[:i]
			}
			if t != "" {
				targets[t] = true
			}
		}
		for _, m := range docRef.FindAllStringSubmatch(doc, -1) {
			targets[m[1]] = true
		}

		base := filepath.Dir(file)
		for t := range targets {
			checked++
			// Markdown links resolve relative to the file; the prose form
			// docs/NAME.md (or a root NAME.md) is written repo-root-relative
			// everywhere in this repo, so accept either resolution.
			if _, err := os.Stat(filepath.Join(base, t)); err == nil {
				continue
			}
			if _, err := os.Stat(t); err == nil {
				continue
			}
			fmt.Fprintf(os.Stderr, "checklinks: %s references %q, which does not exist\n", file, t)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("checklinks: %d references across %d markdown files all resolve\n", checked, len(files))
}
