// checkmetrics is the docs-freshness gate for the observability layer,
// run by scripts/ci.sh as `go run ./scripts/checkmetrics` from the repo
// root. It holds docs/OBSERVABILITY.md to internal/obs.Catalog in both
// directions:
//
//   - every cataloged metric must appear backticked in the handbook;
//   - every backticked snake_case token in the handbook must be a cataloged
//     metric (or a known non-metric field), so renamed or deleted metrics
//     cannot leave stale documentation behind.
package main

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"plos/internal/obs"
)

const docPath = "docs/OBSERVABILITY.md"

// tickToken matches inline-code snake_case identifiers: lowercase
// alphanumerics with at least one underscore-separated segment. Paths,
// flags, Go identifiers and prose never match; metric names always do.
var tickToken = regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)+)`")

// notMetrics are backticked snake_case tokens the handbook legitimately
// uses that are not metric names (trace span fields, JSON keys).
var notMetrics = map[string]bool{
	"dur_ms": true,
}

func main() {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkmetrics: %v (run from the repo root)\n", err)
		os.Exit(1)
	}
	doc := string(raw)

	fail := false
	catalog := make(map[string]bool, len(obs.Catalog))
	for _, d := range obs.Catalog {
		catalog[d.Name] = true
		if !strings.Contains(doc, "`"+d.Name+"`") {
			fmt.Fprintf(os.Stderr,
				"checkmetrics: metric %q (%s) is registered but missing from %s\n",
				d.Name, d.Help, docPath)
			fail = true
		}
	}

	stale := map[string]bool{}
	for _, m := range tickToken.FindAllStringSubmatch(doc, -1) {
		if name := m[1]; !catalog[name] && !notMetrics[name] {
			stale[name] = true
		}
	}
	names := make([]string, 0, len(stale))
	for n := range stale {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr,
			"checkmetrics: %s documents %q, which is not in the obs catalog (stale or typo)\n",
			docPath, n)
		fail = true
	}

	if fail {
		os.Exit(1)
	}
	fmt.Printf("checkmetrics: %d metrics documented, %s in sync with the catalog\n",
		len(obs.Catalog), docPath)
}
