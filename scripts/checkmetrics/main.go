// checkmetrics is the docs-freshness gate for the observability layer,
// run by scripts/ci.sh as `go run ./scripts/checkmetrics` from the repo
// root. It holds docs/OBSERVABILITY.md to internal/obs.Catalog in both
// directions:
//
//   - every cataloged metric must appear backticked in the handbook;
//   - every backticked snake_case token in the handbook must be a cataloged
//     metric (or a known non-metric field), so renamed or deleted metrics
//     cannot leave stale documentation behind.
//
// The sharded-plane handbook (docs/SHARDING.md) is held to the catalog the
// same way: every `shard_*` metric must appear backticked there (the
// operator doc owns those metrics' runbook meaning), and every backticked
// snake_case token in it must be a cataloged metric — so the runbook
// cannot reference a metric that was renamed away.
//
// The flight-recorder schema gets the same two-way treatment against
// internal/obs.RecordCatalog: every record type must appear backticked in
// the handbook's "## Flight recorder" section, and every hyphenated
// backticked token in that section must be a cataloged record type (or a
// known tool name). Record field names are fed from the catalog into the
// allowed snake_case set, so the docs table cannot drift from the schema.
package main

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"plos/internal/obs"
)

const docPath = "docs/OBSERVABILITY.md"

// tickToken matches inline-code snake_case identifiers: lowercase
// alphanumerics with at least one underscore-separated segment. Paths,
// flags, Go identifiers and prose never match; metric names always do.
var tickToken = regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)+)`")

// hyphenToken is the record-name analogue: lowercase alphanumerics with at
// least one hyphen-separated segment, alone inside backticks.
var hyphenToken = regexp.MustCompile("`([a-z][a-z0-9]*(?:-[a-z0-9]+)+)`")

// notMetrics are backticked snake_case tokens the handbook legitimately
// uses that are not metric names (trace span fields, JSON keys). Flight
// record fields are added from obs.RecordCatalog in main.
var notMetrics = map[string]bool{
	"dur_ms":             true,
	"span_phase_seconds": true,
	// /debug/trace snapshot keys.
	"spans_dropped":   true,
	"flight_recorded": true,
	"flight_tail":     true,
}

// notRecords are backticked hyphenated tokens the flight-recorder section
// legitimately uses that are not record types (tool names).
var notRecords = map[string]bool{
	"plos-trace":  true,
	"plos-server": true,
}

// flightSection extracts the "## Flight recorder" section (up to the next
// top-level heading) so the record-name reverse check does not trip on the
// span-kind table, which shares some hyphenated names.
func flightSection(doc string) string {
	const heading = "## Flight recorder"
	start := strings.Index(doc, heading)
	if start < 0 {
		return ""
	}
	rest := doc[start+len(heading):]
	if end := strings.Index(rest, "\n## "); end >= 0 {
		rest = rest[:end]
	}
	return rest
}

func main() {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkmetrics: %v (run from the repo root)\n", err)
		os.Exit(1)
	}
	doc := string(raw)

	fail := false
	catalog := make(map[string]bool, len(obs.Catalog))
	for _, d := range obs.Catalog {
		catalog[d.Name] = true
		if !strings.Contains(doc, "`"+d.Name+"`") {
			fmt.Fprintf(os.Stderr,
				"checkmetrics: metric %q (%s) is registered but missing from %s\n",
				d.Name, d.Help, docPath)
			fail = true
		}
	}

	// Flight-recorder schema: forward check against the record catalog, and
	// its field names become allowed snake_case tokens.
	flight := flightSection(doc)
	if flight == "" {
		fmt.Fprintf(os.Stderr, "checkmetrics: %s has no \"## Flight recorder\" section\n", docPath)
		fail = true
	}
	records := make(map[string]bool, len(obs.RecordCatalog))
	for _, d := range obs.RecordCatalog {
		records[d.Name] = true
		for _, f := range d.Fields {
			notMetrics[f] = true
		}
		if !strings.Contains(flight, "`"+d.Name+"`") {
			fmt.Fprintf(os.Stderr,
				"checkmetrics: flight record %q (%s) is in obs.RecordCatalog but missing from the flight-recorder section of %s\n",
				d.Name, d.Help, docPath)
			fail = true
		}
	}

	stale := map[string]bool{}
	for _, m := range tickToken.FindAllStringSubmatch(doc, -1) {
		if name := m[1]; !catalog[name] && !notMetrics[name] {
			stale[name] = true
		}
	}
	for _, m := range hyphenToken.FindAllStringSubmatch(flight, -1) {
		if name := m[1]; !records[name] && !notRecords[name] {
			stale[name] = true
		}
	}
	names := make([]string, 0, len(stale))
	for n := range stale {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr,
			"checkmetrics: %s documents %q, which is not in the obs catalogs (stale or typo)\n",
			docPath, n)
		fail = true
	}

	// The sharding handbook: forward-require the shard_* metrics, reverse-
	// check every snake_case token it uses.
	const shardDocPath = "docs/SHARDING.md"
	shardRaw, err := os.ReadFile(shardDocPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkmetrics: %v (run from the repo root)\n", err)
		os.Exit(1)
	}
	shardDoc := string(shardRaw)
	for _, d := range obs.Catalog {
		if strings.HasPrefix(d.Name, "shard_") && !strings.Contains(shardDoc, "`"+d.Name+"`") {
			fmt.Fprintf(os.Stderr,
				"checkmetrics: shard metric %q (%s) is registered but missing from %s\n",
				d.Name, d.Help, shardDocPath)
			fail = true
		}
	}
	shardStale := map[string]bool{}
	for _, m := range tickToken.FindAllStringSubmatch(shardDoc, -1) {
		if name := m[1]; !catalog[name] && !notMetrics[name] {
			shardStale[name] = true
		}
	}
	for _, n := range sortedKeys(shardStale) {
		fmt.Fprintf(os.Stderr,
			"checkmetrics: %s documents %q, which is not in the obs catalog (stale or typo)\n",
			shardDocPath, n)
		fail = true
	}

	if fail {
		os.Exit(1)
	}
	fmt.Printf("checkmetrics: %d metrics and %d flight records documented, %s and %s in sync with the catalogs\n",
		len(obs.Catalog), len(obs.RecordCatalog), docPath, shardDocPath)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
