#!/usr/bin/env bash
# Repo CI gate: formatting, vet, build, race-enabled tests, and short fuzz
# smokes over the two fuzz targets. Run from anywhere; operates on the repo
# root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== checkmetrics (docs/OBSERVABILITY.md vs obs catalog) =="
go run ./scripts/checkmetrics

echo "== checkperf (docs/PERFORMANCE.md vs benchmarks + BENCH_*.json) =="
go run ./scripts/checkperf

echo "== checklinks (handbook cross-references resolve) =="
go run ./scripts/checklinks

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench bit-rot smoke: every benchmark compiles and runs once =="
go test -run=NONE -bench=. -benchtime=1x ./...

echo "== plos-trace smoke: analyze the committed flight fixture =="
go run ./cmd/plos-trace cmd/plos-trace/testdata/fixture.jsonl > /dev/null

echo "== FT smoke: seeded chaos soak + checkpoint kill/resume (race) =="
go test -race -count=1 -v \
    -run 'TestChaosSoakTraining|TestCheckpointResumeBitIdentical' \
    ./internal/protocol

echo "== sharded-plane race smoke: 2-shard bit-identity + rebalance (docs/SHARDING.md) =="
go test -race -count=1 \
    -run 'TestShardedBitIdenticalToSingleCoordinator|TestShardedRebalanceViaRing' \
    ./internal/protocol

echo "== shard-FT race smoke: fault-free bit-identity + agg-link chaos + degraded quorum =="
go test -race -count=1 \
    -run 'TestShardFTFaultFreeBitIdentical|TestShardedAggLinkChaosBitIdentical|TestShardedDegradedQuorumCompletes' \
    ./internal/protocol

echo "== shard kill/restore smoke: kill-9 soak (race) + real SIGKILL on a worker process =="
go test -race -count=1 -v -run 'TestShardedKillRestoreRejoins' ./internal/protocol
go test -count=1 -v -run 'TestShardKillRecover' ./cmd/plos-bench

echo "== health smoke: /healthz 200 -> 503 -> 200 across a seeded kill/rejoin + piggyback + scrape hammer (race) =="
go test -race -count=1 -v \
    -run 'TestAggHealthzKillRestoreRecovers|TestShardHealthPiggybackReportsRemoteState|TestHealthEndpointsScrapeHammer' \
    ./internal/protocol
go test -race -count=1 -run 'TestHealthEndpointsWiring|TestRunMountsHealthPlane' ./cmd/plos-server

echo "== plos-top smoke: -once frame pinned against the golden fixture =="
go test -race -count=1 -run 'TestSnapshotGolden|TestRunOnce' ./cmd/plos-top

echo "== async-mode race smoke: sync parity + negotiation + chaos + mid-run resume (docs/ASYNC.md) =="
go test -race -count=1 \
    -run 'TestAsyncWireMatchesSyncAccuracy|TestAsyncModeNegotiation|TestAsyncChaosSoak|TestAsyncClientResumeMidTraining|TestSyncHandshakeBytesUnchanged' \
    ./internal/protocol

echo "== compressed-mode race smoke: codec-v4 negotiation + mixed fleet =="
go test -race -count=1 \
    -run 'TestCompressionInteropMatrix|TestCompressionMixedFleet' \
    ./internal/protocol

echo "== fuzz smoke: transport codec =="
go test -run '^$' -fuzz 'FuzzMessageRoundTrip' -fuzztime 10s ./internal/transport

echo "== fuzz smoke: codec v4 compressed frames =="
go test -run '^$' -fuzz 'FuzzCompressedFrameRoundTrip' -fuzztime 10s ./internal/transport

echo "== fuzz smoke: checkpoint codec =="
go test -run '^$' -fuzz 'FuzzCheckpointRoundTrip' -fuzztime 10s ./internal/protocol

echo "== fuzz smoke: parallel map =="
go test -run '^$' -fuzz 'FuzzMapMatchesSequential' -fuzztime 5s ./internal/parallel

echo "CI OK"
