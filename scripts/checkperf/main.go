// checkperf is the perf-doc freshness gate, run by scripts/ci.sh as
// `go run ./scripts/checkperf` from the repo root. It mirrors
// scripts/checkmetrics for the performance surface:
//
//   - every benchmark function in a *_test.go file must appear backticked
//     in docs/PERFORMANCE.md, and every `BenchmarkX` token in the doc must
//     name a benchmark that still exists (renames cannot leave stale docs);
//   - every BENCH_*.json snapshot at the repo root must be referenced in
//     the doc and vice versa, and each must be valid JSON carrying a
//     non-empty "schema" field, so the perf trajectory stays readable by
//     tooling.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

const docPath = "docs/PERFORMANCE.md"

var (
	benchDecl  = regexp.MustCompile(`(?m)^func (Benchmark[A-Za-z0-9_]+)\(b \*testing\.B\)`)
	benchToken = regexp.MustCompile("`(Benchmark[A-Za-z0-9_]+)`")
	snapToken  = regexp.MustCompile("`(BENCH_[A-Za-z0-9_.-]+\\.json)`")
)

func main() {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkperf: %v (run from the repo root)\n", err)
		os.Exit(1)
	}
	doc := string(raw)
	fail := false

	// Benchmark inventory: declared in test files across the repo.
	declared := map[string]bool{}
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range benchDecl.FindAllSubmatch(src, -1) {
			declared[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkperf: scanning benchmarks: %v\n", err)
		os.Exit(1)
	}

	for _, name := range sorted(declared) {
		if !strings.Contains(doc, "`"+name+"`") {
			fmt.Fprintf(os.Stderr, "checkperf: benchmark %s exists but is missing from %s\n", name, docPath)
			fail = true
		}
	}
	documented := map[string]bool{}
	for _, m := range benchToken.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}
	for _, name := range sorted(documented) {
		if !declared[name] {
			fmt.Fprintf(os.Stderr, "checkperf: %s documents %s, which no longer exists (stale or typo)\n", docPath, name)
			fail = true
		}
	}

	// Snapshot trajectory: BENCH_*.json files at the repo root.
	snaps, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkperf: %v\n", err)
		os.Exit(1)
	}
	onDisk := map[string]bool{}
	for _, s := range snaps {
		onDisk[s] = true
		if !strings.Contains(doc, "`"+s+"`") {
			fmt.Fprintf(os.Stderr, "checkperf: snapshot %s exists but is missing from %s\n", s, docPath)
			fail = true
		}
		srcRaw, err := os.ReadFile(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkperf: %v\n", err)
			fail = true
			continue
		}
		var snap struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(srcRaw, &snap); err != nil {
			fmt.Fprintf(os.Stderr, "checkperf: %s is not valid JSON: %v\n", s, err)
			fail = true
		} else if snap.Schema == "" {
			fmt.Fprintf(os.Stderr, "checkperf: %s has no \"schema\" field\n", s)
			fail = true
		}
	}
	referenced := map[string]bool{}
	for _, m := range snapToken.FindAllStringSubmatch(doc, -1) {
		referenced[m[1]] = true
	}
	for _, s := range sorted(referenced) {
		if !onDisk[s] {
			fmt.Fprintf(os.Stderr, "checkperf: %s references %s, which is not at the repo root\n", docPath, s)
			fail = true
		}
	}

	if fail {
		os.Exit(1)
	}
	fmt.Printf("checkperf: %d benchmarks and %d snapshots documented, %s in sync\n",
		len(declared), len(snaps), docPath)
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
