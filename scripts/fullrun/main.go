// fullrun regenerates the remaining paper-scale figures (7–13) with the
// reductions documented in EXPERIMENTS.md (trials=2; coarser λ grid for
// Fig 7; 5 of the 10 population sizes for Figs 11–12), chosen so the whole
// evaluation completes on a single core.
//
//	go run ./scripts/fullrun >> benchrun_full.txt
package main

import (
	"fmt"
	"os"

	"plos/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fullrun:", err)
		os.Exit(1)
	}
}

func run() error {
	cohort := eval.CohortOptions{Trials: 2, Seed: 1, Lambda: 100, Cl: 1, Cu: 0.2}
	harOpt := eval.HAROptions{CohortOptions: cohort, LogLambdas: []float64{0, 1, 2, 3, 4}}
	synth := eval.SynthOptions{CohortOptions: cohort}
	lowLambda := cohort
	lowLambda.Lambda = 10
	synthLow := eval.SynthOptions{CohortOptions: lowLambda}
	scale := eval.ScaleOptions{CohortOptions: cohort, UserCounts: []int{10, 40, 70, 100}}

	two := func(name string, f func() (eval.Figure, eval.Figure, error)) error {
		a, b, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(a.Format())
		fmt.Println(b.Format())
		return nil
	}
	one := func(name string, f func() (eval.Figure, error)) error {
		a, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(a.Format())
		return nil
	}

	steps := []func() error{
		func() error {
			return two("fig8", func() (eval.Figure, eval.Figure, error) { return eval.Fig8(synth) })
		},
		func() error {
			return two("fig9", func() (eval.Figure, eval.Figure, error) { return eval.Fig9(synth) })
		},
		func() error {
			return two("fig10", func() (eval.Figure, eval.Figure, error) { return eval.Fig10(synth) })
		},
		func() error {
			// Supplement: Fig 8 at λ=10 — the paper cross-validates λ per
			// point, and at large rotations a small λ is what it would
			// pick; see EXPERIMENTS.md.
			return two("fig8-lambda10", func() (eval.Figure, eval.Figure, error) {
				a, b, err := eval.Fig8(synthLow)
				a.ID += "-lambda10"
				b.ID += "-lambda10"
				a.Title += " (lambda=10)"
				b.Title += " (lambda=10)"
				return a, b, err
			})
		},
		func() error {
			return one("fig13", func() (eval.Figure, error) { return eval.Fig13(scale) })
		},
		func() error {
			return two("fig7", func() (eval.Figure, eval.Figure, error) { return eval.Fig7(harOpt) })
		},
		func() error {
			return two("fig11", func() (eval.Figure, eval.Figure, error) { return eval.Fig11(scale) })
		},
		func() error {
			return one("fig12", func() (eval.Figure, error) { return eval.Fig12(scale) })
		},
		func() error {
			return one("energy", func() (eval.Figure, error) { return eval.EnergyComparison(scale) })
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
