#!/usr/bin/env python3
"""Splice bench outputs into EXPERIMENTS.md.

Replaces the <!-- RESULTS --> marker with per-figure fenced blocks from
benchrun_full.txt and the <!-- ABLATIONS --> marker with the ablation
tables from benchrun_ablations.txt (if present).
"""
import pathlib
import re

root = pathlib.Path(__file__).resolve().parent.parent
exp = root / "EXPERIMENTS.md"
full = root / "benchrun_full.txt"
abl = root / "benchrun_ablations.txt"

text = exp.read_text()

def blocks(path):
    if not path.exists():
        return "*(run pending)*\n"
    raw = path.read_text().strip()
    # Split on blank lines between figures; keep each as a fenced block.
    figs = re.split(r"\n\n(?=\S)", raw)
    out = []
    for f in figs:
        first = f.splitlines()[0]
        title = first.split(":", 1)[0] if ":" in first else first
        out.append(f"### {title}\n\n```\n{f}\n```\n")
    return "\n".join(out)

text = text.replace("<!-- RESULTS -->", blocks(full))
text = text.replace("<!-- ABLATIONS -->", blocks(abl))
exp.write_text(text)
print("spliced", exp)
