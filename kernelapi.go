package plos

import (
	"errors"
	"fmt"

	"plos/internal/kernel"
	"plos/internal/kplos"
	"plos/internal/mat"
	"plos/internal/svm"
)

// KernelSpec selects the kernel for TrainKernel. Construct with
// LinearKernel, RBFKernel, or PolyKernel.
type KernelSpec struct {
	k kernel.Kernel
}

// LinearKernel selects the plain inner product (TrainKernel then matches
// Train up to solver details).
func LinearKernel() KernelSpec { return KernelSpec{k: kernel.Linear{}} }

// RBFKernel selects the Gaussian kernel exp(−γ||x−y||²); gamma must be
// positive.
func RBFKernel(gamma float64) KernelSpec { return KernelSpec{k: kernel.RBF{Gamma: gamma}} }

// PolyKernel selects (x·y + c)^degree.
func PolyKernel(degree int, c float64) KernelSpec {
	return KernelSpec{k: kernel.Polynomial{Degree: degree, C: c}}
}

// ErrBadKernel is returned for an unusable kernel specification.
var ErrBadKernel = errors.New("plos: invalid kernel specification")

// KernelModel is a trained kernelized PLOS model. Decision functions are
// kernel expansions over the training samples, so the model retains
// references to them.
type KernelModel struct {
	model *kplos.Model
	info  Stats
	bias  bool
}

// TrainKernel fits kernelized centralized PLOS — the paper's Algorithm 1
// run in the RKHS of the chosen kernel (its §IV remark made concrete).
// Use it when user data is not linearly separable; with LinearKernel it
// reproduces Train. Only centralized training is available: the kernel
// expansions reference samples across users, which is exactly what the
// distributed design avoids shipping.
func TrainKernel(users []User, spec KernelSpec, opts ...Option) (*KernelModel, error) {
	if spec.k == nil {
		return nil, fmt.Errorf("%w: use LinearKernel/RBFKernel/PolyKernel", ErrBadKernel)
	}
	if rbf, ok := spec.k.(kernel.RBF); ok && rbf.Gamma <= 0 {
		return nil, fmt.Errorf("%w: RBF gamma must be positive", ErrBadKernel)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	data, err := toUserData(users, o.bias)
	if err != nil {
		return nil, err
	}
	m, info, err := kplos.Train(data, o.core, spec.k)
	if err != nil {
		return nil, fmt.Errorf("plos: TrainKernel: %w", err)
	}
	return &KernelModel{
		model: m,
		bias:  o.bias,
		info: Stats{
			CCCPIterations: info.CCCPIterations,
			CCCPConverged:  info.CCCPConverged,
			Objective:      info.Objective,
			Constraints:    info.Constraints,
		},
	}, nil
}

// NumUsers returns the number of personalized functions.
func (m *KernelModel) NumUsers() int { return m.model.NumUsers() }

// Predict classifies x with user t's personalized function.
func (m *KernelModel) Predict(t int, x []float64) float64 {
	return m.model.PredictUser(t, m.vec(x))
}

// Score returns user t's decision value on x.
func (m *KernelModel) Score(t int, x []float64) float64 {
	return m.model.ScoreUser(t, m.vec(x))
}

// PredictGlobal classifies x with the shared function (cold start).
func (m *KernelModel) PredictGlobal(x []float64) float64 {
	return m.model.PredictGlobal(m.vec(x))
}

// SupportSize returns how many training samples carry nonzero weight in
// user t's decision function.
func (m *KernelModel) SupportSize(t int) int { return m.model.SupportSize(t) }

// Stats returns training diagnostics.
func (m *KernelModel) Stats() Stats { return m.info }

func (m *KernelModel) vec(x []float64) mat.Vector {
	if m.bias {
		return svm.AugmentBiasVec(mat.Vector(x))
	}
	return mat.Vector(x)
}
