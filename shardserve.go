package plos

import (
	"errors"
	"fmt"
	"io/fs"

	"plos/internal/compress"
	"plos/internal/obs"
	"plos/internal/protocol"
	"plos/internal/rng"
	"plos/internal/transport"
)

// AggregateResult is the aggregator-side outcome of a sharded run. The
// aggregator never holds per-user models — those stay on the shards (each
// ServeShard returns its partition's ServeResult) — so this reports only the
// global model and run-level accounting.
type AggregateResult struct {
	// Global is the consensus hyperplane w0 (bias-augmented when the run
	// used WithBias, which is the default).
	Global []float64
	// Users is the global population size T, summed over the shard hellos.
	Users int
	// Rounds is the number of completed CCCP rounds; Converged reports
	// whether the outer loop met its tolerance within the round budget.
	Rounds    int
	Converged bool
	// Objective is the final global objective; ObjectiveHistory the
	// per-round trajectory (restored rounds included after a resume).
	Objective        float64
	ObjectiveHistory []float64
	// TrafficBytes[s] / TrafficMessages[s] account the aggregator's link to
	// shard s.
	TrafficBytes    []int64
	TrafficMessages []int
	// ShardCauses[s] is the first fatal failure recorded for shard s — nil
	// for shards that stayed healthy, non-nil for shards that were detached
	// (reduce-deadline miss, dead link), even if they later rejoined via
	// checkpoint restore.
	ShardCauses []error
	// Restarts counts shards re-attached through the checkpoint-restore
	// rejoin handshake during this run.
	Restarts int
}

// wrapShardLink layers the reliability stack over a shard↔aggregator
// connection: the same timeouts, observability and seeded retry as
// wrapConn, but never the codec-v4 compression layer. The aggregator link
// carries exact partial sums (Σ(x_t+u_t), residual partials) whose fold
// order pins the plane's bit-identity contract (docs/SHARDING.md); lossy
// error-feedback quantization would corrupt those reduces, so compression
// is a device-link-only concern even when WithCompression is configured.
func wrapShardLink(c transport.Conn, o *options, seedLabel string, idx int) transport.Conn {
	if o.ft.opTimeout > 0 {
		transport.SetOpTimeout(c, o.ft.opTimeout)
	}
	wired := c
	if o.core.Obs != nil {
		wired = transport.Observe(c, o.core.Obs, -1)
	}
	if o.ft.retries > 1 {
		wired = transport.Retry(wired, transport.RetryPolicy{
			MaxAttempts: o.ft.retries,
			Seed:        rng.New(o.core.Seed).SplitN(seedLabel, idx).Int63(),
			Counter:     obs.MetricAggLinkRetries,
		}, o.core.Obs)
	}
	return wired
}

// acceptShardRejoins is acceptRejoins for the shard tier: connections
// arriving at the aggregator's listener during training are wrapped with the
// shard-link stack (never compression — see wrapShardLink) and their first
// message, a checkpoint-restore shard-hello, is queued for the aggregator's
// round-boundary drain.
func acceptShardRejoins(l *transport.Listener, o *options, rejoin chan<- protocol.Rejoin, stop <-chan struct{}) {
	for i := 0; ; i++ {
		c, err := l.Accept()
		if err != nil {
			return // listener closed: training is over
		}
		conn := wrapShardLink(c, o, "retry-agg-rejoin", i)
		go func() {
			if o.ft.opTimeout <= 0 {
				transport.SetOpTimeout(c, rejoinHelloTimeout)
			}
			m, err := conn.Recv()
			if o.ft.opTimeout <= 0 {
				transport.SetOpTimeout(c, 0)
			}
			if err != nil {
				_ = conn.Close()
				return
			}
			select {
			case rejoin <- protocol.Rejoin{Conn: conn, Hello: m}:
			case <-stop:
				_ = conn.Close()
			}
		}()
	}
}

// aggFT assembles the shard-tier fault-tolerance envelope from the same
// options that drive the device tier: WithRoundTimeout bounds each reduce
// leg, WithMaxStale bounds stale carries, WithShardQuorum sets the abort
// floor, and WithSessionResume enables the rejoin accept loop.
func (o *options) aggFT(rejoin <-chan protocol.Rejoin) protocol.AggFTConfig {
	return protocol.AggFTConfig{
		ReduceTimeout: o.ft.roundTimeout,
		ShardQuorum:   o.ft.shardQuorum,
		MaxStale:      o.ft.maxStale,
		Rejoin:        rejoin,
	}
}

// ServeShard runs one shard of a sharded serving plane: it listens on addr
// for exactly `devices` Join peers (its user partition), dials the
// aggregator at aggAddr, and serves the partition exactly like Serve except
// that every cross-user reduction is shipped to the aggregator and the
// CCCP/ADMM control decisions arrive from there. shardID is this process's
// 0-based shard index; it must be unique per aggregator and contiguous
// across the deployment, because the aggregator folds shard partials in
// shard-id order (the bit-identity contract of docs/SHARDING.md).
//
// Options behave as in Serve: WithCheckpoint resumes this shard from its
// own checkpoint (or one produced by a rebalance split), WithSessionResume
// keeps accepting device reconnections, and WithCompression applies to the
// device links only — the aggregator link is never compressed (see
// wrapShardLink). Hyperparameters (λ, Cl, Cu, ρ, …) are decided by the
// aggregator and flow through the shard to its devices, so training knobs
// passed here are ignored in favor of the aggregator's.
func ServeShard(aggAddr string, shardID int, addr string, devices int, onListen func(addr string), opts ...Option) (*ServeResult, error) {
	if shardID < 0 {
		return nil, errors.New("plos: ServeShard: shard id must be >= 0")
	}
	if devices <= 0 {
		return nil, errors.New("plos: ServeShard: need at least one device")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	comp, err := compress.Parse(o.compressSpec)
	if err != nil {
		return nil, fmt.Errorf("plos: ServeShard: %w", err)
	}
	o.comp = comp

	var restore *protocol.Checkpoint
	if o.ft.checkpointPath != "" {
		ck, err := protocol.LoadCheckpoint(o.ft.checkpointPath)
		switch {
		case err == nil:
			restore = ck
			devices = 0
			for _, d := range ck.Dropped {
				if !d {
					devices++
				}
			}
		case errors.Is(err, fs.ErrNotExist):
			// No checkpoint yet: fresh run.
		default:
			return nil, fmt.Errorf("plos: ServeShard: %w", err)
		}
	}

	l, err := transport.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("plos: ServeShard: %w", err)
	}
	defer l.Close()
	if onListen != nil {
		onListen(l.Addr())
	}
	conns, err := l.AcceptN(devices)
	if err != nil {
		return nil, fmt.Errorf("plos: ServeShard: %w", err)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	wired := make([]transport.Conn, len(conns))
	for t, c := range conns {
		wired[t] = wrapConn(c, &o, "retry-server", t, transport.CompressServer)
	}

	aggRaw, err := transport.Dial(aggAddr)
	if err != nil {
		return nil, fmt.Errorf("plos: ServeShard: dial aggregator: %w", err)
	}
	agg := wrapShardLink(aggRaw, &o, "retry-shard-agg", shardID)
	defer aggRaw.Close()

	var rejoin chan protocol.Rejoin
	if o.ft.resume {
		rejoin = make(chan protocol.Rejoin, devices)
		stop := make(chan struct{})
		defer close(stop)
		go acceptRejoins(l, &o, rejoin, stop)
	}

	res, err := protocol.RunShard(agg, wired, protocol.ShardConfig{
		Shard: shardID, Core: o.core, FT: o.serverFT(rejoin, restore),
	})
	if err != nil {
		return nil, fmt.Errorf("plos: ServeShard: %w", err)
	}
	out := &ServeResult{
		Model:     &Model{model: res.Model, info: res.Info, bias: o.bias},
		Dropped:   res.Dropped,
		DropCause: res.DropCause,
	}
	for _, s := range res.PerUser {
		out.TrafficBytes = append(out.TrafficBytes, s.BytesSent+s.BytesReceived)
		out.TrafficMessages = append(out.TrafficMessages, s.MessagesSent+s.MessagesReceived)
	}
	return out, nil
}

// ServeAggregator runs the top-level aggregator of a sharded serving plane
// on addr and trains with exactly `shards` connected ServeShard peers. It
// is the single source of hyperparameters and convergence decisions; pass
// the training options (WithLambda, WithADMM, …) here, not to the shards.
// Blocks until training completes. onListen, if non-nil, receives the bound
// address before accepting starts (useful with ":0").
//
// The aggregator holds no user data and no per-user models: it sees only
// shard-level partial sums, so the paper's privacy posture (raw data never
// leaves the device; personalized models never leave the shard) is
// preserved across the extra tier.
//
// Shard-tier fault tolerance reuses the device-tier options:
// WithRoundTimeout bounds each reduce leg, WithMaxStale lets a detached
// shard's last partials keep being folded while it restarts, WithShardQuorum
// sets the abort floor, and WithSessionResume keeps the listener accepting
// so a shard restarted with WithCheckpoint can rejoin mid-run (see
// docs/SHARDING.md and docs/FAULT_TOLERANCE.md).
func ServeAggregator(addr string, shards int, onListen func(addr string), opts ...Option) (*AggregateResult, error) {
	if shards <= 0 {
		return nil, errors.New("plos: ServeAggregator: need at least one shard")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	// Validate the spec for early feedback, but never compress: the shard
	// links carry exact reduces (see wrapShardLink).
	if _, err := compress.Parse(o.compressSpec); err != nil {
		return nil, fmt.Errorf("plos: ServeAggregator: %w", err)
	}

	l, err := transport.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("plos: ServeAggregator: %w", err)
	}
	defer l.Close()
	if onListen != nil {
		onListen(l.Addr())
	}
	conns, err := l.AcceptN(shards)
	if err != nil {
		return nil, fmt.Errorf("plos: ServeAggregator: %w", err)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	wired := make([]transport.Conn, len(conns))
	for i, c := range conns {
		wired[i] = wrapShardLink(c, &o, "retry-agg", i)
	}

	// With session resume, the listener keeps accepting for the whole run so
	// a crashed shard can dial back in with its checkpoint-restore hello.
	var rejoin chan protocol.Rejoin
	if o.ft.resume {
		rejoin = make(chan protocol.Rejoin, shards)
		stop := make(chan struct{})
		defer close(stop)
		go acceptShardRejoins(l, &o, rejoin, stop)
	}

	res, err := protocol.RunAggregator(wired, protocol.AggConfig{
		Core: o.core, Dist: o.dist, FT: o.aggFT(rejoin),
	})
	if err != nil {
		return nil, fmt.Errorf("plos: ServeAggregator: %w", err)
	}
	out := &AggregateResult{
		Global:           append([]float64(nil), res.W0...),
		Users:            res.Users,
		Rounds:           res.Info.CCCPIterations,
		Converged:        res.Info.CCCPConverged,
		Objective:        res.Info.Objective,
		ObjectiveHistory: append([]float64(nil), res.Info.ObjectiveHistory...),
		ShardCauses:      append([]error(nil), res.ShardCauses...),
		Restarts:         res.Restarts,
	}
	for _, s := range res.PerShard {
		out.TrafficBytes = append(out.TrafficBytes, s.BytesSent+s.BytesReceived)
		out.TrafficMessages = append(out.TrafficMessages, s.MessagesSent+s.MessagesReceived)
	}
	return out, nil
}
