package plos

import (
	"math/rand"
	"testing"
)

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(nil, SignalConfig{}); err == nil {
		t.Error("nil predictor should error")
	}
	ok := func(x []float64) float64 { return 1 }
	if _, err := NewStream(ok, SignalConfig{SampleHz: 100, TargetHz: 33}); err == nil {
		t.Error("non-divisible rates should error")
	}
	if _, err := NewStream(ok, SignalConfig{SampleHz: 20, TargetHz: 20, WindowSec: 0.01}); err == nil {
		t.Error("sub-2-sample window should error")
	}
}

func TestStreamEmitsAtWindowBoundaries(t *testing.T) {
	// 20 Hz in = 20 Hz out (factor 1), 3.2 s window = 64 samples, stride 32.
	st, err := NewStream(func([]float64) float64 { return 1 }, SignalConfig{SampleHz: 20, TargetHz: 20})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	var emits []int
	for i := 0; i < 200; i++ {
		p, err := st.Push([5]float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			emits = append(emits, p.EndSample)
		}
	}
	want := []int{64, 96, 128, 160, 192}
	if len(emits) != len(want) {
		t.Fatalf("emits = %v, want %v", emits, want)
	}
	for i := range want {
		if emits[i] != want[i] {
			t.Fatalf("emits = %v, want %v", emits, want)
		}
	}
}

func TestStreamDecimates(t *testing.T) {
	// 100 Hz in, 20 Hz out: a window needs 64·5 raw pushes.
	st, err := NewStream(func([]float64) float64 { return -1 }, SignalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for i := 0; i < 64*5; i++ {
		p, err := st.Push([5]float64{1, 2, 3, 4, 5})
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			emitted++
			if p.Class != -1 {
				t.Fatalf("Class = %v", p.Class)
			}
		}
	}
	if emitted != 1 {
		t.Fatalf("emitted = %d windows, want exactly 1", emitted)
	}
}

func TestStreamClassifiesPostureChange(t *testing.T) {
	// Train a model on two synthetic "postures" (distinct channel means),
	// then stream a recording that switches posture halfway: the stream's
	// later windows must pick up the change.
	users := makeStreamTrainingUser()
	model, err := Train([]User{users}, WithLambda(10), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	// SkipNormalize on both sides so train and stream features share a
	// scale (running normalization would re-center the regimes away).
	st, err := NewStream(model.PredictGlobal,
		SignalConfig{SampleHz: 20, TargetHz: 20, SkipNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	var last *Prediction
	push := func(mean float64, n int) {
		for i := 0; i < n; i++ {
			s := [5]float64{}
			for c := range s {
				s[c] = mean + r.NormFloat64()*0.2
			}
			p, err := st.Push(s)
			if err != nil {
				t.Fatal(err)
			}
			if p != nil {
				last = p
			}
		}
	}
	// Settle the running stats across both regimes, then check the final
	// window's class flips with the posture.
	push(2, 400)
	if last == nil || last.Class != 1 {
		t.Fatalf("high-mean regime class = %+v, want +1", last)
	}
	push(-2, 400)
	if last.Class != -1 {
		t.Fatalf("low-mean regime class = %v, want -1", last.Class)
	}
	st.Reset()
	if p, _ := st.Push([5]float64{}); p != nil {
		t.Error("Reset should clear the window buffer")
	}
}

// makeStreamTrainingUser builds window features for two channel-mean
// regimes using the batch pipeline, labeled +1 (high) and −1 (low).
func makeStreamTrainingUser() User {
	r := rand.New(rand.NewSource(9))
	gen := func(mean float64, windows int) [][]float64 {
		n := (windows+1)*32 + 32 // enough 20 Hz samples for `windows` windows
		chans := make([][]float64, 5)
		for c := range chans {
			chans[c] = make([]float64, n)
			for i := range chans[c] {
				chans[c][i] = mean + r.NormFloat64()*0.2
			}
		}
		f, err := ExtractWindows(chans, SignalConfig{SampleHz: 20, TargetHz: 20, SkipNormalize: true})
		if err != nil {
			panic(err)
		}
		return f
	}
	high := gen(2, 20)
	low := gen(-2, 20)
	u := User{}
	for i := 0; i < len(high) && i < len(low); i++ {
		u.Features = append(u.Features, high[i])
		u.Labels = append(u.Labels, 1)
		u.Features = append(u.Features, low[i])
		u.Labels = append(u.Labels, -1)
	}
	return u
}
