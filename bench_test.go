package plos

// The benchmark harness: one benchmark per figure of the paper's
// evaluation (Figures 3–13 — the paper has no numbered tables), plus
// micro-benchmarks of the substrates the solvers are built on. Each figure
// benchmark runs a reduced-size version of the experiment per iteration
// and logs the regenerated series; paper-scale runs are available through
// cmd/plos-bench -full. EXPERIMENTS.md records paper-vs-measured shapes.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"plos/internal/cluster"
	"plos/internal/cost"
	"plos/internal/eval"
	"plos/internal/features"
	"plos/internal/mat"
	"plos/internal/parallel"
	"plos/internal/qp"
	"plos/internal/rng"
	"plos/internal/svm"
	"plos/internal/transport"
)

func benchCohort(seed int64) eval.CohortOptions {
	return eval.CohortOptions{Trials: 3, Seed: seed, Lambda: 100, Cl: 1, Cu: 0.2}
}

func benchBody() eval.BodyOptions {
	return eval.BodyOptions{
		CohortOptions:  benchCohort(3),
		Subjects:       8,
		Segments:       15,
		ProviderCounts: []int{2, 4, 6},
		FixedProviders: 4,
		TrainingRates:  []float64{0.1, 0.25, 0.4},
	}
}

func benchHAR() eval.HAROptions {
	return eval.HAROptions{
		CohortOptions:  benchCohort(5),
		Users:          10,
		PerClass:       20,
		Dim:            120,
		ProviderCounts: []int{3, 6, 9},
		FixedProviders: 5,
		TrainingRates:  []float64{0.1, 0.25, 0.4},
		LogLambdas:     []float64{0, 1, 2, 3, 4},
	}
}

func benchSynth() eval.SynthOptions {
	// PerClass is reduced 4x from the paper's 200, so the labeling rates
	// are scaled 4x up to keep the *absolute* label counts the paper uses
	// (Fig 9: 2% of 400 = 8 labels per provider).
	return eval.SynthOptions{
		CohortOptions:  benchCohort(8),
		UsersCount:     8,
		PerClass:       50,
		ProviderCounts: []int{2, 4, 6},
		FixedProviders: 4,
		Fig8Rate:       0.08,
		Fig9Rate:       0.08,
		TrainingRates:  []float64{0.08, 0.16, 0.24, 0.32},
	}
}

func benchScale() eval.ScaleOptions {
	return eval.ScaleOptions{
		CohortOptions: benchCohort(11),
		UserCounts:    []int{5, 10, 20},
		PerClass:      20,
		LabelRate:     0.1,
	}
}

func logPanels(b *testing.B, panels ...eval.Figure) {
	b.Helper()
	for _, f := range panels {
		b.Log("\n" + f.Format())
	}
}

func BenchmarkFig03BodyLabelProviders(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig3(benchBody())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig04BodyTrainingRate(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig4(benchBody())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig05HARLabelProviders(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig5(benchHAR())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

// BenchmarkTrainParallel measures the worker-pool payoff on the Fig. 5 HAR
// workload: identical cohorts and seeds, only the WithWorkers count differs.
// The outputs are bit-identical by construction (determinism_test.go), so
// any time delta is pure scheduling.
func BenchmarkTrainParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchHAR()
			opts.Workers = workers
			var pa, pb eval.Figure
			for i := 0; i < b.N; i++ {
				var err error
				pa, pb, err = eval.Fig5(opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			logPanels(b, pa, pb)
		})
	}
}

// BenchmarkCutRound measures the incremental restricted-QP cache
// (DESIGN.md §11) against a from-scratch Gram rebuild on a Fig. 5-sized HAR
// workload forced through a deep cutting-plane loop (eval.MinCutRounds+
// rounds). The two arms produce bit-identical models (pinned by the
// internal/core and internal/kplos cache tests), so the time delta is pure
// restricted-QP setup cost. docs/PERFORMANCE.md records the numbers.
func BenchmarkCutRound(b *testing.B) {
	for _, arm := range []struct {
		name    string
		rebuild bool
	}{{"incremental", false}, {"rebuild", true}} {
		b.Run(arm.name, func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				info, err := eval.CutRound(eval.CutRoundOptions{Rebuild: arm.rebuild, Seed: 17})
				if err != nil {
					b.Fatal(err)
				}
				rounds = info.CutRounds
			}
			b.ReportMetric(float64(rounds), "cutrounds")
		})
	}
}

// BenchmarkTrainParallelObserved is BenchmarkTrainParallel with a live
// observer attached — compare the two to measure the instrumentation
// overhead (the acceptance bar is <2%).
func BenchmarkTrainParallelObserved(b *testing.B) {
	ob := NewObserver()
	defer parallel.SetMetrics(nil)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := benchHAR()
			opts.Workers = workers
			opts.Obs = ob.registry()
			var pa, pb eval.Figure
			for i := 0; i < b.N; i++ {
				var err error
				pa, pb, err = eval.Fig5(opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			logPanels(b, pa, pb)
		})
	}
}

func BenchmarkFig06HARTrainingRate(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig6(benchHAR())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig07HARLambda(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig7(benchHAR())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig08SynthRotation(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig8(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig09SynthLabelProviders(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig9(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig10SynthTrainingRate(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig10(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig11DistributedAccuracy(b *testing.B) {
	var pa, pb eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		pa, pb, err = eval.Fig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, pa, pb)
}

func BenchmarkFig12RunningTime(b *testing.B) {
	var f eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		opts := benchScale()
		opts.Phone = cost.DeviceProfile{CPUSlowdown: 20}
		f, err = eval.Fig12(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, f)
}

func BenchmarkFig13MessageOverhead(b *testing.B) {
	var f eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.Fig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, f)
}

func BenchmarkAblationCu(b *testing.B) {
	var f eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.AblationCu(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, f)
}

func BenchmarkAblationWarmSets(b *testing.B) {
	var f eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.AblationWarmSets(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, f)
}

func BenchmarkAblationBalanceGuard(b *testing.B) {
	var f eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.AblationBalanceGuard(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, f)
}

func BenchmarkAblationAsync(b *testing.B) {
	var f eval.Figure
	for i := 0; i < b.N; i++ {
		var err error
		f, err = eval.AblationAsync(benchSynth())
		if err != nil {
			b.Fatal(err)
		}
	}
	logPanels(b, f)
}

func BenchmarkAsyncTrain(b *testing.B) {
	users := makeUsers(7, 6, 30, 0.15, func(i int) int {
		if i%2 == 0 {
			return 10
		}
		return 0
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainAsync(users, WithSeed(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelTrainRBF(b *testing.B) {
	users := ringBenchUsers(13, 4, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainKernel(users, RBFKernel(1), WithSeed(13)); err != nil {
			b.Fatal(err)
		}
	}
}

// ringBenchUsers mirrors the kernel tests' radially separable cohort.
func ringBenchUsers(seed int64, count, perClass int) []User {
	g := rng.New(seed)
	users := make([]User, count)
	for t := 0; t < count; t++ {
		gu := g.SplitN("ring", t)
		u := User{}
		for i := 0; i < 2*perClass; i++ {
			cls := 1.0
			radius := 0.5 + 0.3*gu.Float64()
			if i%2 == 1 {
				cls = -1
				radius = 2.3 + 0.4*gu.Float64()
			}
			angle := gu.Float64() * 2 * math.Pi
			u.Features = append(u.Features, []float64{
				radius * math.Cos(angle), radius * math.Sin(angle),
			})
			if i < 10 {
				u.Labels = append(u.Labels, cls)
			}
		}
		users[t] = u
	}
	return users
}

// --- substrate micro-benchmarks ---

func BenchmarkCentralizedTrain(b *testing.B) {
	users := makeUsers(1, 6, 30, 0.15, func(i int) int {
		if i%2 == 0 {
			return 10
		}
		return 0
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(users, WithSeed(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedTrain(b *testing.B) {
	users := makeUsers(2, 6, 30, 0.15, func(i int) int {
		if i%2 == 0 {
			return 10
		}
		return 0
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainDistributed(users, WithSeed(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQPSolve(b *testing.B) {
	g := rng.New(3)
	const n = 60
	m := mat.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = g.Norm()
	}
	gram := m.Gram()
	c := g.NormVector(n)
	prob := &qp.Problem{G: gram, C: c, Groups: qp.GroupSpec{
		Groups:  [][]int{identityIdx(n)},
		Budgets: []float64{5},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := qp.Solve(prob, qp.Options{MaxIter: 20000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMTrain(b *testing.B) {
	g := rng.New(4)
	const n, d = 400, 120
	x := mat.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		y[i] = cls
		for j := 0; j < d; j++ {
			x.Set(i, j, g.Norm()+cls*0.2)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svm.Train(x, y, svm.Params{C: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	g := rng.New(5)
	const n, d = 500, 16
	x := mat.NewMatrix(n, d)
	for i := range x.Data {
		x.Data[i] = g.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(x, 3, rng.New(int64(i)), cluster.KMeansParams{Restarts: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	g := rng.New(6)
	sigs := make([][]float64, features.SignalsPerNode)
	for i := range sigs {
		sigs[i] = make([]float64, 64)
		for j := range sigs[i] {
			sigs[i][j] = g.Norm()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.NodeFeatures(sigs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportPipeRoundTrip(b *testing.B) {
	a, peer := transport.Pipe()
	defer a.Close()
	defer peer.Close()
	go func() {
		for {
			m, err := peer.Recv()
			if err != nil {
				return
			}
			if err := peer.Send(m); err != nil {
				return
			}
		}
	}()
	msg := transport.Message{Type: transport.MsgParams, W0: make([]float64, 121), U: make([]float64, 121)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func identityIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
