package plos

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// MulticlassUser is one participant's data for a multi-activity task: the
// first len(Labels) rows of Features are labeled with arbitrary integer
// class ids (e.g. the six HAR activities). The paper evaluates PLOS on one
// binary pair; this wrapper extends it to the full task with a
// one-vs-rest decomposition — K personalized binary PLOS models whose
// margins are compared at prediction time.
type MulticlassUser struct {
	Features [][]float64
	Labels   []int
}

// MulticlassModel holds one PLOS model per class.
type MulticlassModel struct {
	classes []int
	models  []*Model
}

// ErrTooFewClasses is returned when the pooled labels cover fewer than two
// classes.
var ErrTooFewClasses = errors.New("plos: multiclass training needs at least two labeled classes")

// TrainMulticlass fits a one-vs-rest ensemble of PLOS models. Options are
// passed through to every binary problem.
func TrainMulticlass(users []MulticlassUser, opts ...Option) (*MulticlassModel, error) {
	if len(users) == 0 {
		return nil, ErrNoUsers
	}
	classSet := map[int]struct{}{}
	for t, u := range users {
		if len(u.Labels) > len(u.Features) {
			return nil, fmt.Errorf("plos: TrainMulticlass: user %d has more labels than samples", t)
		}
		for _, c := range u.Labels {
			classSet[c] = struct{}{}
		}
	}
	if len(classSet) < 2 {
		return nil, ErrTooFewClasses
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	out := &MulticlassModel{classes: classes, models: make([]*Model, len(classes))}
	for k, cls := range classes {
		binary := make([]User, len(users))
		for t, u := range users {
			bu := User{Features: u.Features}
			for _, c := range u.Labels {
				if c == cls {
					bu.Labels = append(bu.Labels, 1)
				} else {
					bu.Labels = append(bu.Labels, -1)
				}
			}
			binary[t] = bu
		}
		m, err := Train(binary, opts...)
		if err != nil {
			return nil, fmt.Errorf("plos: TrainMulticlass class %d: %w", cls, err)
		}
		out.models[k] = m
	}
	return out, nil
}

// Classes returns the class ids in the model, ascending.
func (m *MulticlassModel) Classes() []int { return append([]int(nil), m.classes...) }

// Predict classifies x with user t's personalized ensemble: the class whose
// one-vs-rest margin is largest.
func (m *MulticlassModel) Predict(t int, x []float64) int {
	best, bestScore := m.classes[0], math.Inf(-1)
	for k, cls := range m.classes {
		if s := m.models[k].Score(t, x); s > bestScore {
			best, bestScore = cls, s
		}
	}
	return best
}

// PredictGlobal classifies x for an unseen user with the shared models.
func (m *MulticlassModel) PredictGlobal(x []float64) int {
	best, bestScore := m.classes[0], math.Inf(-1)
	for k, cls := range m.classes {
		mk := m.models[k]
		if s := dot(mk.Global(), mk.vec(x)); s > bestScore {
			best, bestScore = cls, s
		}
	}
	return best
}

// Binary returns the underlying one-vs-rest model for a class id, or nil
// if the class is unknown.
func (m *MulticlassModel) Binary(class int) *Model {
	for k, cls := range m.classes {
		if cls == class {
			return m.models[k]
		}
	}
	return nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
