// plos-trace analyzes a convergence flight-recorder stream (the JSONL file
// written by plos.WithFlightRecorder, plos-server -flight, or plos-bench):
// it reconstructs the fleet trace the server merged from device telemetry
// piggybacks and prints
//
//   - a per-ADMM-round timeline with straggler attribution (who the round
//     waited for, on the server's round clock),
//   - a per-device compute/comm/energy breakdown keyed to the internal/cost
//     device model,
//   - a convergence summary (CCCP objective trajectory, cut activity, drops)
//     compact enough to diff across runs,
//   - on a shard's stream (plos-server -role shard), a wait-attribution
//     split between in-shard waiting (device stragglers) and cross-shard
//     waiting (blocked on the aggregator's reduce).
//
// Usage:
//
//	plos-trace [-top k] [-timeline n] run.flight.jsonl
//	plos-server -flight run.flight.jsonl ... && plos-trace run.flight.jsonl
//
// With no file argument the stream is read from stdin. All durations are
// device-reported wall times or server round-clock offsets — no cross-host
// clock synchronization is assumed (see docs/OBSERVABILITY.md).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"plos/internal/cost"
)

func main() {
	top := flag.Int("top", 3, "devices listed per round in the straggler attribution")
	timeline := flag.Int("timeline", 40, "timeline rows printed per CCCP round (0 disables the section)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "plos-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := analyze(in, os.Stdout, *top, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "plos-trace:", err)
		os.Exit(1)
	}
}

// record is the union of every flight-record schema (see obs.RecordCatalog);
// json decoding leaves absent fields zero.
type record struct {
	Rec        string  `json:"rec"`
	Trainer    string  `json:"trainer"`
	Users      int     `json:"users"`
	Round      int     `json:"round"`
	User       int     `json:"user"`
	Shard      int     `json:"shard"`
	Objective  float64 `json:"objective"`
	SignFlips  int     `json:"sign_flips"`
	Violation  float64 `json:"violation"`
	Added      int     `json:"added"`
	WorkingSet int     `json:"working_set"`
	Primal     float64 `json:"primal"`
	Dual       float64 `json:"dual"`
	DurNS      int64   `json:"dur_ns"`
	ArriveNS   int64   `json:"arrive_ns"`
	SolveNS    int64   `json:"solve_ns"`
	QPIters    int64   `json:"qp_iters"`
	Cuts       int64   `json:"cuts"`
	WarmHits   int64   `json:"warm_hits"`
	Msgs       int64   `json:"msgs"`
	Bytes      int64   `json:"bytes"`
	EnergyJ    float64 `json:"energy_j"`
	Stale      int     `json:"stale"`
	Epoch      int     `json:"epoch"`
	Staleness  float64 `json:"staleness"`
	Weight     float64 `json:"weight"`
	Cause      string  `json:"cause"`
	Permanent  bool    `json:"permanent"`
	Active     int     `json:"active"`
	Need       int     `json:"need"`
	Converged  bool    `json:"converged"`
	Rounds     int     `json:"rounds"`
}

// admmRound is one timeline row: the consensus round plus the device events
// that preceded it in the stream (fresh telemetry merges and stale reuses).
// On a coordinator/aggregator stream the row is closed by an admm-round
// record (rec); on a shard stream — which computes no residuals of its own —
// it is closed by the shard-reduce record instead (reduce).
type admmRound struct {
	rec     record
	reduce  *record  // shard-reduce, when this is a shard's round
	devices []record // device-round, arrival order
	stales  []record // stale-reuse
}

// cccpRound groups the timeline of one outer round.
type cccpRound struct {
	round  int
	rounds []*admmRound
	cuts   int // cut-round records inside this outer round
	added  int
	iter   *record // the closing cccp-iteration, when present
}

// deviceAgg is the per-device rollup across a run. Solve time and solver
// counts are per-update in the telemetry and summed here; traffic and energy
// are device-cumulative, so the last record wins.
type deviceAgg struct {
	user    int
	updates int
	solveNS int64
	qpIters int64
	cuts    int64
	warm    int64
	flips   int
	msgs    int64
	bytes   int64
	energyJ float64
	waitNS  int64 // straggler attribution: arrival offsets + stale round durations
	stale   int
}

// asyncAgg is the per-device rollup of an asynchronous (DJAM) run: how many
// consensus snapshots the device was handed, how many of its solutions were
// folded, and the staleness each fold arrived with. Staleness is the fold's
// normalized lag — epochs the snapshot fell behind divided by fleet size —
// so s≈1 means the whole fleet folded once while this solve was in flight.
type asyncAgg struct {
	user      int
	snapshots int
	folds     int
	staleSum  float64
	weightSum float64
	maxStale  float64
	hist      [len(staleBuckets) + 1]int
}

// staleBuckets are the histogram upper bounds; the last bucket is open.
var staleBuckets = [...]float64{0, 1, 2, 4}

func staleBucket(s float64) int {
	for i, ub := range staleBuckets {
		if s <= ub {
			return i
		}
	}
	return len(staleBuckets)
}

// run is one run-start..run-end slice of the stream.
type run struct {
	trainer string
	users   int
	cccp    []*cccpRound
	devices map[int]*deviceAgg
	async   map[int]*asyncAgg
	drops   []record
	quorums []record
	// Shard-tier supervision events on an aggregator stream: detaches,
	// stale-carry reduces, and checkpoint-restore rejoins.
	shardDowns    []record
	shardStales   []record
	shardRestores []record
	end           *record

	cur     *cccpRound
	pending *admmRound
}

func newRun(trainer string, users int) *run {
	return &run{trainer: trainer, users: users, devices: map[int]*deviceAgg{}, async: map[int]*asyncAgg{}}
}

func (r *run) asyncDevice(u int) *asyncAgg {
	a := r.async[u]
	if a == nil {
		a = &asyncAgg{user: u}
		r.async[u] = a
	}
	return a
}

func (r *run) device(u int) *deviceAgg {
	d := r.devices[u]
	if d == nil {
		d = &deviceAgg{user: u}
		r.devices[u] = d
	}
	return d
}

// cccpAt returns the current outer round, creating an implicit one for
// streams that open mid-run (round -1 until a cccp-start arrives).
func (r *run) cccpAt() *cccpRound {
	if r.cur == nil {
		r.cur = &cccpRound{round: -1}
		r.cccp = append(r.cccp, r.cur)
	}
	return r.cur
}

func (r *run) pendingRound() *admmRound {
	if r.pending == nil {
		r.pending = &admmRound{}
	}
	return r.pending
}

func parse(in io.Reader) ([]*run, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var runs []*run
	var cur *run
	current := func() *run {
		if cur == nil {
			cur = newRun("unknown", 0)
			runs = append(runs, cur)
		}
		return cur
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch rec.Rec {
		case "run-start":
			cur = newRun(rec.Trainer, rec.Users)
			runs = append(runs, cur)
		case "run-end":
			r := current()
			end := rec
			r.end = &end
			cur = nil
		case "cccp-start":
			r := current()
			r.cur = &cccpRound{round: rec.Round}
			r.cccp = append(r.cccp, r.cur)
			r.pending = nil
		case "cccp-iteration":
			r := current()
			c := r.cccpAt()
			it := rec
			c.iter = &it
		case "cut-round":
			r := current()
			c := r.cccpAt()
			c.cuts++
			c.added += rec.Added
		case "admm-round":
			r := current()
			ar := r.pendingRound()
			ar.rec = rec
			r.cccpAt().rounds = append(r.cccpAt().rounds, ar)
			// Stale devices consumed the whole round on the server clock.
			for _, s := range ar.stales {
				r.device(s.User).waitNS += rec.DurNS
			}
			r.pending = nil
		case "device-round":
			r := current()
			ar := r.pendingRound()
			ar.devices = append(ar.devices, rec)
			d := r.device(rec.User)
			d.updates++
			d.solveNS += rec.SolveNS
			d.qpIters += rec.QPIters
			d.cuts += rec.Cuts
			d.warm += rec.WarmHits
			if rec.SignFlips > 0 {
				d.flips += rec.SignFlips
			}
			d.msgs = rec.Msgs
			d.bytes = rec.Bytes
			d.energyJ = rec.EnergyJ
			d.waitNS += rec.ArriveNS
		case "shard-reduce":
			// A shard emits no admm-round record (the aggregator owns the
			// residuals); its reduce record closes the pending round.
			r := current()
			ar := r.pendingRound()
			rr := rec
			ar.reduce = &rr
			ar.rec.Round = rec.Round
			r.cccpAt().rounds = append(r.cccpAt().rounds, ar)
			r.pending = nil
		case "stale-reuse":
			r := current()
			ar := r.pendingRound()
			ar.stales = append(ar.stales, rec)
			d := r.device(rec.User)
			d.stale++
		case "async-snapshot":
			current().asyncDevice(rec.User).snapshots++
		case "async-fold":
			a := current().asyncDevice(rec.User)
			a.folds++
			a.staleSum += rec.Staleness
			a.weightSum += rec.Weight
			if rec.Staleness > a.maxStale {
				a.maxStale = rec.Staleness
			}
			a.hist[staleBucket(rec.Staleness)]++
		case "device-drop":
			current().drops = append(current().drops, rec)
		case "quorum":
			current().quorums = append(current().quorums, rec)
		case "shard-down":
			current().shardDowns = append(current().shardDowns, rec)
		case "shard-stale":
			current().shardStales = append(current().shardStales, rec)
		case "shard-restore":
			current().shardRestores = append(current().shardRestores, rec)
		default:
			// Unknown record types are skipped so old analyzers survive new
			// recorders.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}

func analyze(in io.Reader, w io.Writer, top, timeline int) error {
	runs, err := parse(in)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("no flight records in input")
	}
	for i, r := range runs {
		if len(runs) > 1 {
			fmt.Fprintf(w, "======== run %d ========\n", i)
		}
		printRun(w, r, top, timeline)
	}
	return nil
}

func printRun(w io.Writer, r *run, top, timeline int) {
	fmt.Fprintf(w, "run: trainer=%s users=%d\n", r.trainer, r.users)

	if timeline > 0 && hasRounds(r) {
		fmt.Fprintf(w, "\n== timeline (per ADMM round; wait = reply arrival on the server round clock) ==\n")
		for _, c := range r.cccp {
			label := fmt.Sprintf("cccp %d", c.round)
			if c.round < 0 {
				label = "cccp ?"
			}
			fmt.Fprintf(w, "-- %s: %d ADMM rounds", label, len(c.rounds))
			if c.iter != nil {
				fmt.Fprintf(w, ", objective %.6g", c.iter.Objective)
				if c.iter.SignFlips >= 0 {
					fmt.Fprintf(w, ", %d sign flips", c.iter.SignFlips)
				}
			}
			fmt.Fprintf(w, " --\n")
			shown := 0
			for _, ar := range c.rounds {
				if shown >= timeline {
					fmt.Fprintf(w, "  … %d more rounds\n", len(c.rounds)-shown)
					break
				}
				shown++
				printRound(w, ar, top)
			}
		}
	}

	if len(r.devices) > 0 {
		fmt.Fprintf(w, "\n== device breakdown (cost model: %s) ==\n", costModelLabel())
		fmt.Fprintf(w, "%6s %8s %10s %9s %7s %6s %6s %9s %9s %10s %10s %10s\n",
			"device", "updates", "solve", "wait", "qp", "cuts", "warm", "msgs", "bytes", "commJ", "compJ", "reportedJ")
		phone := cost.DefaultPhone()
		for _, d := range sortedDevices(r) {
			comm := phone.CommEnergyFromCounts(d.msgs, d.bytes)
			comp := phone.ComputeEnergyJ(phone.DeviceTime(time.Duration(d.solveNS)))
			stale := ""
			if d.stale > 0 {
				stale = fmt.Sprintf("  (%d stale rounds)", d.stale)
			}
			fmt.Fprintf(w, "%6d %8d %10s %9s %7d %6d %6d %9d %9d %10.4g %10.4g %10.4g%s\n",
				d.user, d.updates, ms(d.solveNS), ms(d.waitNS), d.qpIters, d.cuts, d.warm,
				d.msgs, d.bytes, comm, comp, d.energyJ, stale)
		}
		fmt.Fprintf(w, "\n== straggler attribution (total server wait, top %d) ==\n", top)
		byWait := sortedDevices(r)
		sort.SliceStable(byWait, func(i, j int) bool { return byWait[i].waitNS > byWait[j].waitNS })
		for i, d := range byWait {
			if i >= top {
				break
			}
			fmt.Fprintf(w, "  #%d device %d: waited %s across %d updates, %d stale rounds\n",
				i+1, d.user, ms(d.waitNS), d.updates, d.stale)
		}
	}

	printAsync(w, r)
	printShardWait(w, r)

	fmt.Fprintf(w, "\n== convergence summary ==\n")
	admmTotal, stales := 0, 0
	for _, c := range r.cccp {
		admmTotal += len(c.rounds)
		for _, ar := range c.rounds {
			stales += len(ar.stales)
		}
	}
	var objs []string
	cuts, added := 0, 0
	for _, c := range r.cccp {
		if c.iter != nil {
			objs = append(objs, fmt.Sprintf("%.6g", c.iter.Objective))
		}
		cuts += c.cuts
		added += c.added
	}
	fmt.Fprintf(w, "cccp rounds: %d   admm rounds: %d   stale reuses: %d\n", len(r.cccp), admmTotal, stales)
	if len(objs) > 0 {
		fmt.Fprintf(w, "objective trajectory: %s\n", strings.Join(objs, " → "))
	}
	if cuts > 0 {
		fmt.Fprintf(w, "cutting planes: %d rounds, %d constraints added\n", cuts, added)
	}
	if last := lastResiduals(r); last != nil {
		fmt.Fprintf(w, "final residuals: primal %.3g dual %.3g\n", last.Primal, last.Dual)
	}
	for _, d := range r.drops {
		kind := "transient"
		if d.Permanent {
			kind = "permanent"
		}
		fmt.Fprintf(w, "drop (%s): device %d: %s\n", kind, d.User, d.Cause)
	}
	for _, q := range r.quorums {
		fmt.Fprintf(w, "quorum breach: %d active < %d required\n", q.Active, q.Need)
	}
	printShardHealth(w, r)
	if r.end != nil {
		fmt.Fprintf(w, "run end: converged=%v objective=%.6g rounds=%d\n",
			r.end.Converged, r.end.Objective, r.end.Rounds)
	} else {
		fmt.Fprintf(w, "run end: missing (stream truncated or run aborted)\n")
	}
}

func printRound(w io.Writer, ar *admmRound, top int) {
	if ar.reduce != nil {
		fmt.Fprintf(w, "  a%-3d shard %d  reduce %8s  %d B",
			ar.reduce.Round, ar.reduce.Shard, ms(ar.reduce.DurNS), ar.reduce.Bytes)
	} else {
		fmt.Fprintf(w, "  a%-3d %8s  primal %9.3g  dual %9.3g",
			ar.rec.Round, ms(ar.rec.DurNS), ar.rec.Primal, ar.rec.Dual)
	}
	// Arrival entries sorted by offset, slowest first: the round's critical
	// path is its slowest fresh reply (plus any stale timeout).
	devs := append([]record(nil), ar.devices...)
	sort.SliceStable(devs, func(i, j int) bool { return devs[i].ArriveNS > devs[j].ArriveNS })
	if len(devs) > 0 {
		fmt.Fprintf(w, "  wait:")
		for i, d := range devs {
			if i >= top {
				fmt.Fprintf(w, " +%d", len(devs)-i)
				break
			}
			fmt.Fprintf(w, " u%d %s", d.User, ms(d.ArriveNS))
		}
	}
	for _, s := range ar.stales {
		fmt.Fprintf(w, "  stale: u%d(%d)", s.User, s.Stale)
	}
	fmt.Fprintln(w)
}

// printAsync summarizes an asynchronous (DJAM) run: per-device snapshot and
// fold counts plus a staleness histogram — the footprint of the damping rule
// γ(s) = 1/(1+min(s, MaxStale)). A device whose folds pile up in the high
// buckets is the fleet's straggler; its updates arrived heavily damped.
// Printed only for streams carrying async-fold records.
func printAsync(w io.Writer, r *run) {
	if len(r.async) == 0 {
		return
	}
	devs := make([]*asyncAgg, 0, len(r.async))
	for _, a := range r.async {
		devs = append(devs, a)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].user < devs[j].user })
	fmt.Fprintf(w, "\n== async folds (staleness = epochs behind / fleet size) ==\n")
	fmt.Fprintf(w, "%6s %6s %6s %8s %8s %8s  %6s %6s %6s %6s %6s\n",
		"device", "snaps", "folds", "mean s", "max s", "mean γ",
		"s=0", "s≤1", "s≤2", "s≤4", "s>4")
	for _, a := range devs {
		meanS, meanW := 0.0, 0.0
		if a.folds > 0 {
			meanS = a.staleSum / float64(a.folds)
			meanW = a.weightSum / float64(a.folds)
		}
		fmt.Fprintf(w, "%6d %6d %6d %8.2f %8.2f %8.2f  %6d %6d %6d %6d %6d\n",
			a.user, a.snapshots, a.folds, meanS, a.maxStale, meanW,
			a.hist[0], a.hist[1], a.hist[2], a.hist[3], a.hist[4])
	}
}

// printShardHealth summarizes the aggregator's shard supervision: which
// shards were detached and why, how many reduce legs ran on their carried
// partials, and which came back through checkpoint-restore rejoin.
func printShardHealth(w io.Writer, r *run) {
	if len(r.shardDowns) == 0 && len(r.shardStales) == 0 && len(r.shardRestores) == 0 {
		return
	}
	fmt.Fprintf(w, "\n== shard supervision ==\n")
	for _, d := range r.shardDowns {
		fmt.Fprintf(w, "shard %d detached: %s\n", d.Shard, d.Cause)
	}
	carries := map[int]int{}
	deepest := map[int]int{}
	for _, s := range r.shardStales {
		carries[s.Shard]++
		if s.Stale > deepest[s.Shard] {
			deepest[s.Shard] = s.Stale
		}
	}
	for _, id := range sortedKeys(carries) {
		fmt.Fprintf(w, "shard %d carried stale: %d reduce legs (deepest carry %d)\n",
			id, carries[id], deepest[id])
	}
	for _, rr := range r.shardRestores {
		fmt.Fprintf(w, "shard %d rejoined via checkpoint restore at round %d after %d stale carries\n",
			rr.Shard, rr.Round, rr.Stale)
	}
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// printShardWait attributes a shard's waiting between its own devices
// (in-shard: the slowest fresh reply per round, on the shard's round clock)
// and the aggregator (cross-shard: the time the shard sat blocked in the
// reduce round-trips). Printed only for shard streams — runs with at least
// one shard-reduce record.
func printShardWait(w io.Writer, r *run) {
	var inNS, crossNS, bytes int64
	rounds, id := 0, 0
	for _, c := range r.cccp {
		for _, ar := range c.rounds {
			if ar.reduce == nil {
				continue
			}
			rounds++
			id = ar.reduce.Shard
			crossNS += ar.reduce.DurNS
			bytes += ar.reduce.Bytes
			var slowest int64
			for _, d := range ar.devices {
				if d.ArriveNS > slowest {
					slowest = d.ArriveNS
				}
			}
			inNS += slowest
		}
	}
	if rounds == 0 {
		return
	}
	total := inNS + crossNS
	pct := func(ns int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(ns) / float64(total)
	}
	fmt.Fprintf(w, "\n== wait attribution (shard %d, %d reduce rounds) ==\n", id, rounds)
	fmt.Fprintf(w, "in-shard    (device stragglers): %10s  %5.1f%%\n", ms(inNS), pct(inNS))
	fmt.Fprintf(w, "cross-shard (aggregator reduce): %10s  %5.1f%%  %d B on the aggregator link\n",
		ms(crossNS), pct(crossNS), bytes)
}

func hasRounds(r *run) bool {
	for _, c := range r.cccp {
		if len(c.rounds) > 0 {
			return true
		}
	}
	return false
}

func sortedDevices(r *run) []*deviceAgg {
	out := make([]*deviceAgg, 0, len(r.devices))
	for _, d := range r.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].user < out[j].user })
	return out
}

func lastResiduals(r *run) *record {
	for i := len(r.cccp) - 1; i >= 0; i-- {
		if n := len(r.cccp[i].rounds); n > 0 {
			last := r.cccp[i].rounds[n-1]
			if last.reduce != nil {
				// Shard streams carry no residuals; the aggregator owns them.
				return nil
			}
			return &last.rec
		}
	}
	return nil
}

func costModelLabel() string {
	p := cost.DefaultPhone()
	return fmt.Sprintf("%.0fx cpu slowdown, %gW compute", p.CPUSlowdown, p.ComputeWatts)
}

// ms renders nanoseconds as fixed-precision milliseconds — stable across
// locales and magnitudes, so golden files diff cleanly.
func ms(ns int64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/1e6)
}
