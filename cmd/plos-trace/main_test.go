package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/protocol"
	"plos/internal/rng"
	"plos/internal/transport"
)

// -update regenerates testdata/fixture.jsonl (from a fresh seeded 4-device
// run) and testdata/golden.txt (the analyzer's output on that fixture). The
// committed fixture pins every duration, so the golden compare itself is
// fully deterministic.
var update = flag.Bool("update", false, "regenerate testdata fixture and golden file")

// synthUser mirrors the generator of the protocol tests: two Gaussian
// classes rotated by theta, the first `labeled` samples keeping their label.
func synthUser(g *rng.RNG, perClass, labeled int, theta float64) core.UserData {
	rot := rng.Rotation2D(theta)
	n := 2 * perClass
	x := mat.NewMatrix(n, 2)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		base := mat.Vector{cls*4 + g.Norm()*1.2, cls*4 + g.Norm()*1.2}
		p := rot.MulVec(base)
		x.Set(i, 0, p[0])
		x.Set(i, 1, p[1])
		truth[i] = cls
	}
	return core.UserData{X: x, Y: truth[:labeled]}
}

func genUsers(seed int64, n int) []core.UserData {
	g := rng.New(seed)
	users := make([]core.UserData, n)
	for i := range users {
		labeled := 10
		if i%2 == 1 {
			labeled = 0
		}
		users[i] = synthUser(g.SplitN("u", i), 10, labeled, float64(i)*0.1)
	}
	return users
}

// runFlight trains over in-process pipes with a flight recorder on the
// server and returns the JSONL stream. Client errors are tolerated (a
// straggler may never receive its done).
func runFlight(t *testing.T, users []core.UserData, cfg protocol.ServerConfig,
	wrapClient func(i int, c transport.Conn) transport.Conn) string {
	t.Helper()
	reg := obs.NewRegistry()
	var buf strings.Builder
	reg.SetFlightRecorder(obs.NewFlightRecorder(&buf, 0))
	cfg.Core.Obs = reg

	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		if wrapClient != nil {
			cc = wrapClient(i, cc)
		}
		serverConns[i] = sc
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			_, _ = protocol.RunClient(conn, users[i], protocol.ClientOptions{Seed: int64(i)})
		}(i, cc)
	}
	_, err := protocol.RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	return buf.String()
}

func fixtureConfig() protocol.ServerConfig {
	return protocol.ServerConfig{
		Core: core.Config{Lambda: 50, Cl: 1, Cu: 0.2, MaxCCCPIter: 2, MaxCutIter: 8},
		Dist: core.DistConfig{MaxADMMIter: 4},
	}
}

// TestGoldenAnalyze pins the analyzer's full output on a committed fixture:
// any formatting or attribution change must be reviewed via -update.
func TestGoldenAnalyze(t *testing.T) {
	fixture := filepath.Join("testdata", "fixture.jsonl")
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		stream := runFlight(t, genUsers(7, 4), fixtureConfig(), nil)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, []byte(stream), 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := analyze(strings.NewReader(stream), &out, 3, 40); err != nil {
			t.Fatalf("analyze: %v", err)
		}
		if err := os.WriteFile(golden, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	var out strings.Builder
	if err := analyze(strings.NewReader(string(raw)), &out, 3, 40); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if out.String() != string(want) {
		t.Errorf("analyzer output drifted from golden file (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), string(want))
	}
}

// TestAnalyzeLiveRun drives a fresh 4-device run through the analyzer: the
// sections must all appear and the numbers must be internally consistent,
// without pinning timing-dependent values.
func TestAnalyzeLiveRun(t *testing.T) {
	stream := runFlight(t, genUsers(8, 4), fixtureConfig(), nil)
	var out strings.Builder
	if err := analyze(strings.NewReader(stream), &out, 3, 40); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"run: trainer=server users=4",
		"== timeline",
		"== device breakdown",
		"== straggler attribution",
		"== convergence summary",
		"objective trajectory:",
		"run end: converged=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("analyzer output missing %q:\n%s", want, got)
		}
	}
}

// runShardedFlight trains a two-shard plane over pipes with a flight
// recorder on every shard and returns each shard's JSONL stream.
func runShardedFlight(t *testing.T, users []core.UserData, partition [][]int) []string {
	t.Helper()
	k := len(partition)
	bufs := make([]strings.Builder, k)
	aggConns := make([]transport.Conn, k)
	var deviceConns []transport.Conn
	var shardWg, clientWg sync.WaitGroup
	for s := range partition {
		reg := obs.NewRegistry()
		reg.SetFlightRecorder(obs.NewFlightRecorder(&bufs[s], 0))
		aggSide, shardSide := transport.Pipe()
		aggConns[s] = aggSide
		conns := make([]transport.Conn, 0, len(partition[s]))
		for _, u := range partition[s] {
			sc, cc := transport.Pipe()
			conns = append(conns, sc)
			deviceConns = append(deviceConns, sc)
			clientWg.Add(1)
			go func(u int, cc transport.Conn) {
				defer clientWg.Done()
				_, _ = protocol.RunClient(cc, users[u], protocol.ClientOptions{Seed: int64(u)})
			}(u, cc)
		}
		shardWg.Add(1)
		go func(s int, shardSide transport.Conn, conns []transport.Conn, reg *obs.Registry) {
			defer shardWg.Done()
			if _, err := protocol.RunShard(shardSide, conns, protocol.ShardConfig{
				Shard: s, Core: core.Config{Obs: reg}}); err != nil {
				t.Errorf("shard %d: %v", s, err)
			}
		}(s, shardSide, conns, reg)
	}
	fc := fixtureConfig()
	_, err := protocol.RunAggregator(aggConns, protocol.AggConfig{Core: fc.Core, Dist: fc.Dist})
	for _, c := range aggConns {
		_ = c.Close()
	}
	shardWg.Wait()
	for _, c := range deviceConns {
		_ = c.Close()
	}
	clientWg.Wait()
	if err != nil {
		t.Fatalf("RunAggregator: %v", err)
	}
	streams := make([]string, k)
	for s := range bufs {
		streams[s] = bufs[s].String()
	}
	return streams
}

// TestShardWaitAttribution feeds a shard's flight stream through the
// analyzer: shard-reduce records must close the rounds (no admm-round
// records exist on a shard) and the wait-attribution section must split the
// shard's waiting between its own stragglers and the aggregator.
func TestShardWaitAttribution(t *testing.T) {
	streams := runShardedFlight(t, genUsers(11, 6), [][]int{{0, 1, 2, 3}, {4, 5}})
	for s, stream := range streams {
		if !strings.Contains(stream, `"rec":"shard-reduce"`) {
			t.Fatalf("shard %d stream has no shard-reduce records:\n%s", s, stream)
		}
		var out strings.Builder
		if err := analyze(strings.NewReader(stream), &out, 3, 40); err != nil {
			t.Fatalf("analyze shard %d: %v", s, err)
		}
		got := out.String()
		for _, want := range []string{
			"run: trainer=shard",
			fmt.Sprintf("shard %d  reduce", s),
			fmt.Sprintf("== wait attribution (shard %d, ", s),
			"in-shard    (device stragglers):",
			"cross-shard (aggregator reduce):",
			"on the aggregator link",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("shard %d analyzer output missing %q:\n%s", s, want, got)
			}
		}
		if strings.Contains(got, "final residuals") {
			t.Errorf("shard %d output claims residuals the shard never computed:\n%s", s, got)
		}
	}
}

// TestAsyncFoldSection: a stream from an asynchronous (DJAM) run carries
// async-snapshot/async-fold records; the analyzer must render the per-device
// staleness histogram, rank the damped straggler's folds into the high
// buckets, and stay silent for synchronous streams.
func TestAsyncFoldSection(t *testing.T) {
	stream := strings.Join([]string{
		`{"rec":"run-start","trainer":"server","users":2}`,
		`{"rec":"async-snapshot","round":0,"user":0,"epoch":0}`,
		`{"rec":"async-snapshot","round":0,"user":1,"epoch":0}`,
		`{"rec":"async-fold","round":0,"user":0,"epoch":0,"staleness":0,"weight":1,"primal":0.5,"dual":0.2}`,
		`{"rec":"async-snapshot","round":0,"user":0,"epoch":1}`,
		`{"rec":"async-fold","round":0,"user":0,"epoch":1,"staleness":0.5,"weight":0.6666,"primal":0.4,"dual":0.1}`,
		`{"rec":"async-fold","round":0,"user":1,"epoch":2,"staleness":4.5,"weight":0.1818,"primal":0.3,"dual":0.1}`,
		`{"rec":"run-end","converged":true,"objective":0.5,"rounds":1}`,
	}, "\n")
	var out strings.Builder
	if err := analyze(strings.NewReader(stream), &out, 3, 40); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"== async folds (staleness = epochs behind / fleet size) ==",
		"mean s",
		"mean γ",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Device 0: 2 snapshots, 2 folds, one in s=0 and one in 0<s≤1.
	// Device 1: 1 snapshot, 1 fold at s=4.5 → the open s>4 bucket.
	for _, row := range []string{
		"     0      2      2     0.25     0.50     0.83       1      1      0      0      0",
		"     1      1      1     4.50     4.50     0.18       0      0      0      0      1",
	} {
		if !strings.Contains(got, row) {
			t.Errorf("histogram row %q missing:\n%s", row, got)
		}
	}

	// A synchronous stream grows no async section.
	sync := `{"rec":"run-start","trainer":"server","users":2}` + "\n" +
		`{"rec":"run-end","converged":true,"objective":0.5,"rounds":1}`
	out.Reset()
	if err := analyze(strings.NewReader(sync), &out, 3, 40); err != nil {
		t.Fatalf("analyze sync: %v", err)
	}
	if strings.Contains(out.String(), "async folds") {
		t.Errorf("synchronous stream grew an async section:\n%s", out.String())
	}
}

// TestAsyncLiveTrace drives a real asynchronous run over pipes through the
// analyzer: the histogram section must appear with a row per device.
func TestAsyncLiveTrace(t *testing.T) {
	users := genUsers(13, 3)
	reg := obs.NewRegistry()
	var buf strings.Builder
	reg.SetFlightRecorder(obs.NewFlightRecorder(&buf, 0))
	cfg := fixtureConfig()
	cfg.Core.Obs = reg
	cfg.Async = true

	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			defer conn.Close()
			_, _ = protocol.RunClient(conn, users[i], protocol.ClientOptions{Seed: int64(i), Async: true})
		}(i, cc)
	}
	_, err := protocol.RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	var out strings.Builder
	if err := analyze(strings.NewReader(buf.String()), &out, 3, 40); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "== async folds") {
		t.Fatalf("no async section on a DJAM stream:\n%s", got)
	}
	for u := 0; u < n; u++ {
		if !strings.Contains(got, fmt.Sprintf("\n%6d ", u)) {
			t.Errorf("device %d missing from the histogram:\n%s", u, got)
		}
	}
}

// lateChaos routes the first `after` operations straight to the plain
// connection and everything later through the seeded chaos wrapper — the
// device behaves until it has delivered one solution (so the server can
// carry it stale), then its link degrades.
type lateChaos struct {
	plain, chaotic transport.Conn
	mu             sync.Mutex
	ops, after     int
}

func (c *lateChaos) pick() transport.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if c.ops > c.after {
		return c.chaotic
	}
	return c.plain
}

func (c *lateChaos) Send(m transport.Message) error   { return c.pick().Send(m) }
func (c *lateChaos) Recv() (transport.Message, error) { return c.pick().Recv() }
func (c *lateChaos) Close() error                     { return c.plain.Close() }
func (c *lateChaos) Stats() transport.Stats           { return c.plain.Stats() }

// TestStragglerAttribution is the acceptance scenario of the fleet tracer:
// in a seeded 8-device run where device 7's link injects real delays well
// past the round deadline, the analyzer must attribute the most server wait
// to device 7 and surface its stale-reuse rounds.
func TestStragglerAttribution(t *testing.T) {
	users := genUsers(9, 8)
	cfg := fixtureConfig()
	cfg.Core.MaxCCCPIter = 2
	cfg.Dist.MaxADMMIter = 10
	// The deadline needs slack above a healthy device's first solve even
	// under the race detector's slowdown (observed ~4ms on a single-core
	// container), while the straggler's injected delay must still clear it
	// reliably — a device with no first solution cannot be carried stale
	// and would be dropped outright, hollowing out the scenario.
	cfg.FT = protocol.FTConfig{
		RoundTimeout: 100 * time.Millisecond,
		MaxStale:     1 << 20, // the throttled device is never dropped
	}
	wrap := func(i int, c transport.Conn) transport.Conn {
		if i != 7 {
			return c
		}
		chaotic := transport.Chaos(c, transport.ChaosConfig{
			Seed: 7, DelayProb: 1, MaxDelay: 600 * time.Millisecond,
		}, nil)
		// 5 clean ops: hello send/recv, start-round recv, params recv, and
		// the first update send — one fresh solution before the throttle.
		return &lateChaos{plain: c, chaotic: chaotic, after: 5}
	}
	stream := runFlight(t, users, cfg, wrap)
	if !strings.Contains(stream, `"rec":"stale-reuse"`) ||
		!strings.Contains(stream, `"user":7,"stale":`) {
		t.Fatalf("no stale-reuse records for the throttled device:\n%s", stream)
	}
	var out strings.Builder
	if err := analyze(strings.NewReader(stream), &out, 3, 40); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	got := out.String()
	idx := strings.Index(got, "== straggler attribution")
	if idx < 0 {
		t.Fatalf("no straggler section:\n%s", got)
	}
	section := got[idx:]
	first := strings.SplitN(section, "\n", 3)[1]
	if !strings.Contains(first, "#1 device 7:") {
		t.Errorf("straggler attribution does not rank device 7 first: %q\nfull output:\n%s", first, got)
	}
	if !strings.Contains(got, "stale rounds") {
		t.Errorf("breakdown does not surface stale rounds:\n%s", got)
	}
}

// TestShardSupervisionSection: an aggregator stream with shard-down,
// shard-stale and shard-restore records gets a supervision summary naming
// the failing shard, its carried reduces, and its rejoin.
func TestShardSupervisionSection(t *testing.T) {
	stream := strings.Join([]string{
		`{"rec":"run-start","trainer":"agg","users":6}`,
		`{"rec":"shard-down","shard":1,"cause":"reduce deadline exceeded"}`,
		`{"rec":"shard-stale","round":0,"shard":1,"stale":1}`,
		`{"rec":"shard-stale","round":1,"shard":1,"stale":2}`,
		`{"rec":"shard-restore","shard":1,"round":3,"stale":2}`,
		`{"rec":"run-end","converged":true,"objective":0.5,"rounds":4}`,
	}, "\n")
	var out strings.Builder
	if err := analyze(strings.NewReader(stream), &out, 3, 40); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"== shard supervision ==",
		"shard 1 detached: reduce deadline exceeded",
		"shard 1 carried stale: 2 reduce legs (deepest carry 2)",
		"shard 1 rejoined via checkpoint restore at round 3 after 2 stale carries",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// A healthy stream prints no supervision section.
	healthy := `{"rec":"run-start","trainer":"agg","users":6}` + "\n" +
		`{"rec":"run-end","converged":true,"objective":0.5,"rounds":4}`
	out.Reset()
	if err := analyze(strings.NewReader(healthy), &out, 3, 40); err != nil {
		t.Fatalf("analyze healthy: %v", err)
	}
	if strings.Contains(out.String(), "shard supervision") {
		t.Errorf("healthy stream grew a supervision section:\n%s", out.String())
	}
}
