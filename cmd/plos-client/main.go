// plos-client runs the device side of distributed PLOS: it loads a local
// dataset, joins a plos-server coordinator, trains without ever sending a
// raw sample, and prints its personalized model and traffic.
//
// Input CSV format (as produced by plos-datagen): one sample per line,
// first column the label, remaining columns the features. -labels N treats
// the first N rows as labeled and strips the labels of the rest — a user
// who labels nothing runs with -labels 0.
//
//	plos-client -addr localhost:7350 -csv data/synth/user03.csv -labels 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plos"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7350", "coordinator address")
		csvPath = flag.String("csv", "", "local dataset CSV (label,f1,f2,…)")
		labels  = flag.Int("labels", 0, "number of leading rows whose labels are provided")
		seed    = flag.Int64("seed", 1, "device seed")
	)
	flag.Parse()
	if err := run(*addr, *csvPath, *labels, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "plos-client:", err)
		os.Exit(1)
	}
}

func run(addr, csvPath string, labels int, seed int64) error {
	if csvPath == "" {
		return fmt.Errorf("-csv is required (generate one with plos-datagen)")
	}
	user, truth, err := loadCSV(csvPath, labels)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d samples × %d features (%d labeled); joining %s\n",
		len(user.Features), len(user.Features[0]), len(user.Labels), addr)

	device, err := plos.Join(addr, user, plos.WithSeed(seed))
	if err != nil {
		return err
	}
	correct := 0
	for i, x := range user.Features {
		if device.Predict(x) == truth[i] {
			correct++
		}
	}
	fmt.Printf("training done: local accuracy %.3f over %d samples\n",
		float64(correct)/float64(len(truth)), len(truth))
	fmt.Printf("traffic: %.1f KB in %d messages (raw upload would have been %.1f KB)\n",
		float64(device.Bytes)/1024, device.Messages,
		float64(len(user.Features)*len(user.Features[0])*8)/1024)
	return nil
}

// loadCSV parses the dataset and applies the labeling budget. It returns
// the training user plus the full ground truth for local reporting.
func loadCSV(path string, labels int) (plos.User, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return plos.User{}, nil, err
	}
	defer f.Close()

	var user plos.User
	var truth []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return plos.User{}, nil, fmt.Errorf("%s:%d: need label plus at least one feature", path, line)
		}
		y, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return plos.User{}, nil, fmt.Errorf("%s:%d: bad label: %w", path, line, err)
		}
		row := make([]float64, len(fields)-1)
		for i, fv := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(fv), 64)
			if err != nil {
				return plos.User{}, nil, fmt.Errorf("%s:%d: bad feature %d: %w", path, line, i+1, err)
			}
			row[i] = v
		}
		user.Features = append(user.Features, row)
		truth = append(truth, y)
	}
	if err := sc.Err(); err != nil {
		return plos.User{}, nil, err
	}
	if labels > len(truth) {
		labels = len(truth)
	}
	user.Labels = append(user.Labels, truth[:labels]...)
	return user, truth, nil
}
