// plos-client runs the device side of distributed PLOS: it loads a local
// dataset, joins a plos-server coordinator, trains without ever sending a
// raw sample, and prints its personalized model and traffic.
//
// Input CSV format (as produced by plos-datagen): one sample per line,
// first column the label, remaining columns the features. -labels N treats
// the first N rows as labeled and strips the labels of the rest — a user
// who labels nothing runs with -labels 0.
//
//	plos-client -addr localhost:7350 -csv data/synth/user03.csv -labels 8
//
// Fault tolerance (pair with a -resume/-checkpoint plos-server; see
// docs/FAULT_TOLERANCE.md): -redials N survives connection failures by
// redialing with seeded backoff and resuming the session; -session-file
// persists the coordinator-issued session token so a restarted client
// process can reclaim its slot; -op-timeout and -retries harden the
// connection itself.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"plos"
)

type clientOptions struct {
	addr        string
	csvPath     string
	labels      int
	seed        int64
	redials     int
	opTimeout   time.Duration
	retries     int
	sessionFile string
	compress    string
	async       bool
}

func main() {
	var o clientOptions
	flag.StringVar(&o.addr, "addr", "localhost:7350", "coordinator address")
	flag.StringVar(&o.csvPath, "csv", "", "local dataset CSV (label,f1,f2,…)")
	flag.IntVar(&o.labels, "labels", 0, "number of leading rows whose labels are provided")
	flag.Int64Var(&o.seed, "seed", 1, "device seed")
	flag.IntVar(&o.redials, "redials", 0,
		"redial and resume the session up to this many times after a connection failure (0 disables)")
	flag.DurationVar(&o.opTimeout, "op-timeout", 0,
		"per-message send/receive deadline (0 waits forever)")
	flag.IntVar(&o.retries, "retries", 0,
		"retry transient transport failures up to this many attempts per operation (0 or 1 disables)")
	flag.StringVar(&o.sessionFile, "session-file", "",
		"persist the session token to this file and resume from it when it exists")
	flag.StringVar(&o.compress, "compress", "",
		"codec-v4 parameter compression offer, e.g. q8, q16, topk:0.25, delta, or compositions like q8,topk:0.25; "+
			"active only when the coordinator offers the same schemes (empty or 'off' disables)")
	flag.BoolVar(&o.async, "async", false,
		"require the fully asynchronous DJAM mode (pair with plos-server -async; "+
			"the join fails fast against a lockstep coordinator — see docs/ASYNC.md)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "plos-client:", err)
		os.Exit(1)
	}
}

func run(o clientOptions) error {
	if o.csvPath == "" {
		return fmt.Errorf("-csv is required (generate one with plos-datagen)")
	}
	user, truth, err := loadCSV(o.csvPath, o.labels)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d samples × %d features (%d labeled); joining %s\n",
		len(user.Features), len(user.Features[0]), len(user.Labels), o.addr)

	opts := []plos.Option{plos.WithSeed(o.seed)}
	if o.redials > 0 {
		opts = append(opts, plos.WithSessionResume(o.redials))
	}
	if o.opTimeout > 0 {
		opts = append(opts, plos.WithOpTimeout(o.opTimeout))
	}
	if o.retries > 1 {
		opts = append(opts, plos.WithRetries(o.retries))
	}
	if o.compress != "" {
		opts = append(opts, plos.WithCompression(o.compress))
	}
	if o.async {
		opts = append(opts, plos.WithAsync())
	}
	if o.sessionFile != "" {
		if tok, err := readSessionFile(o.sessionFile); err != nil {
			return err
		} else if tok != 0 {
			fmt.Println("resuming session from", o.sessionFile)
			opts = append(opts, plos.WithSessionToken(tok))
		}
		opts = append(opts, plos.WithSessionNotify(func(tok int64) {
			if err := writeSessionFile(o.sessionFile, tok); err != nil {
				fmt.Fprintln(os.Stderr, "plos-client: session file:", err)
			}
		}))
	}
	device, err := plos.Join(o.addr, user, opts...)
	if err != nil {
		return err
	}
	correct := 0
	for i, x := range user.Features {
		if device.Predict(x) == truth[i] {
			correct++
		}
	}
	fmt.Printf("training done: local accuracy %.3f over %d samples\n",
		float64(correct)/float64(len(truth)), len(truth))
	fmt.Printf("traffic: %.1f KB in %d messages (raw upload would have been %.1f KB)\n",
		float64(device.Bytes)/1024, device.Messages,
		float64(len(user.Features)*len(user.Features[0])*8)/1024)
	if o.sessionFile != "" {
		// The run is over; the token is useless now and would confuse the
		// next fresh run if left behind.
		_ = os.Remove(o.sessionFile)
	}
	return nil
}

// readSessionFile loads a previously persisted session token; a missing
// file means no session (fresh join).
func readSessionFile(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("session file: %w", err)
	}
	tok, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("session file %s: %w", path, err)
	}
	return tok, nil
}

func writeSessionFile(path string, tok int64) error {
	return os.WriteFile(path, []byte(strconv.FormatInt(tok, 10)+"\n"), 0o644)
}

// loadCSV parses the dataset and applies the labeling budget. It returns
// the training user plus the full ground truth for local reporting.
func loadCSV(path string, labels int) (plos.User, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return plos.User{}, nil, err
	}
	defer f.Close()

	var user plos.User
	var truth []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return plos.User{}, nil, fmt.Errorf("%s:%d: need label plus at least one feature", path, line)
		}
		y, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return plos.User{}, nil, fmt.Errorf("%s:%d: bad label: %w", path, line, err)
		}
		row := make([]float64, len(fields)-1)
		for i, fv := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(fv), 64)
			if err != nil {
				return plos.User{}, nil, fmt.Errorf("%s:%d: bad feature %d: %w", path, line, i+1, err)
			}
			row[i] = v
		}
		user.Features = append(user.Features, row)
		truth = append(truth, y)
	}
	if err := sc.Err(); err != nil {
		return plos.User{}, nil, err
	}
	if labels > len(truth) {
		labels = len(truth)
	}
	user.Labels = append(user.Labels, truth[:labels]...)
	return user, truth, nil
}
