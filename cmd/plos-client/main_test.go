package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCSV(t *testing.T) {
	path := writeTemp(t, "1,0.5,2.5\n-1,-0.5,-2.5\n1,1.0,2.0\n\n")
	user, truth, err := loadCSV(path, 2)
	if err != nil {
		t.Fatalf("loadCSV: %v", err)
	}
	if len(user.Features) != 3 || len(truth) != 3 {
		t.Fatalf("rows: %d features, %d truth", len(user.Features), len(truth))
	}
	if len(user.Labels) != 2 || user.Labels[0] != 1 || user.Labels[1] != -1 {
		t.Fatalf("labels = %v", user.Labels)
	}
	if user.Features[1][1] != -2.5 {
		t.Fatalf("features = %v", user.Features)
	}
	// Blank lines skipped, labels clamp to row count.
	all, _, err := loadCSV(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Labels) != 3 {
		t.Fatalf("clamped labels = %d", len(all.Labels))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	tests := []struct {
		name, content string
	}{
		{"too few columns", "1\n"},
		{"bad label", "abc,1,2\n"},
		{"bad feature", "1,x,2\n"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, tc.content)
			if _, _, err := loadCSV(path, 0); err == nil {
				t.Error("expected parse error")
			}
		})
	}
	if _, _, err := loadCSV("/nonexistent/file.csv", 0); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunRequiresCSV(t *testing.T) {
	if err := run(clientOptions{addr: "localhost:1", seed: 1}); err == nil {
		t.Error("missing -csv should error")
	}
}
