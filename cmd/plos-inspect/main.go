// plos-inspect evaluates a saved PLOS model (plos-server -save, or
// Model.Save) against a local dataset CSV: per-user or global accuracy,
// margin statistics, and the decision distribution. It answers the
// operational question "is the model I just trained any good on this
// device's data" without retraining anything.
//
//	plos-inspect -model model.json -csv data/synth/user03.csv -user 3
//	plos-inspect -model model.json -csv newuser.csv            # global model
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"plos"
)

func main() {
	var (
		modelPath = flag.String("model", "", "saved model JSON (required)")
		csvPath   = flag.String("csv", "", "dataset CSV: label,f1,f2,… (required)")
		user      = flag.Int("user", -1, "personalized model index; -1 uses the global model")
	)
	flag.Parse()
	if err := run(*modelPath, *csvPath, *user); err != nil {
		fmt.Fprintln(os.Stderr, "plos-inspect:", err)
		os.Exit(1)
	}
}

func run(modelPath, csvPath string, user int) error {
	if modelPath == "" || csvPath == "" {
		return fmt.Errorf("-model and -csv are required")
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	model, err := plos.LoadModel(f)
	if err != nil {
		return err
	}
	if user >= model.NumUsers() {
		return fmt.Errorf("model has %d users; -user %d out of range", model.NumUsers(), user)
	}
	features, labels, err := readCSV(csvPath)
	if err != nil {
		return err
	}

	score := model.PredictGlobal
	margin := func(x []float64) float64 {
		// The global model has no Score accessor by design; approximate
		// confidence by the personalized scorer when a user is selected.
		return 0
	}
	which := "global"
	if user >= 0 {
		score = func(x []float64) float64 { return model.Predict(user, x) }
		margin = func(x []float64) float64 { return model.Score(user, x) }
		which = fmt.Sprintf("user %d", user)
	}

	correct, pos := 0, 0
	var margins []float64
	for i, x := range features {
		pred := score(x)
		if pred == labels[i] {
			correct++
		}
		if pred > 0 {
			pos++
		}
		if user >= 0 {
			margins = append(margins, margin(x))
		}
	}
	n := len(features)
	fmt.Printf("model: %s (%s hyperplane, %d dims)\n", modelPath, which, len(model.Global()))
	fmt.Printf("data:  %s (%d samples × %d features)\n", csvPath, n, len(features[0]))
	fmt.Printf("accuracy: %.4f   predicted +1 fraction: %.3f\n",
		float64(correct)/float64(n), float64(pos)/float64(n))
	if len(margins) > 0 {
		sort.Float64s(margins)
		var absSum float64
		for _, m := range margins {
			absSum += math.Abs(m)
		}
		fmt.Printf("margins: median %.3f   mean|.| %.3f   p10 %.3f   p90 %.3f\n",
			margins[len(margins)/2], absSum/float64(len(margins)),
			margins[len(margins)/10], margins[len(margins)*9/10])
	}
	return nil
}

func readCSV(path string) ([][]float64, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var features [][]float64
	var labels []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("%s:%d: need label plus features", path, line)
		}
		y, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: bad label: %w", path, line, err)
		}
		row := make([]float64, len(fields)-1)
		for i, fv := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(fv), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: bad feature: %w", path, line, err)
			}
			row[i] = v
		}
		features = append(features, row)
		labels = append(labels, y)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(features) == 0 {
		return nil, nil, fmt.Errorf("%s: no samples", path)
	}
	return features, labels, nil
}
