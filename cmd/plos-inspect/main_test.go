package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"plos"
)

// buildArtifacts trains a tiny model and writes model.json + data.csv.
func buildArtifacts(t *testing.T) (modelPath, csvPath string) {
	t.Helper()
	dir := t.TempDir()
	r := rand.New(rand.NewSource(1))
	u := plos.User{}
	var csv strings.Builder
	for i := 0; i < 60; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		x := []float64{cls*4 + r.NormFloat64(), cls*4 + r.NormFloat64()}
		u.Features = append(u.Features, x)
		if i < 10 {
			u.Labels = append(u.Labels, cls)
		}
		csv.WriteString(strconv.FormatFloat(cls, 'g', -1, 64))
		for _, v := range x {
			csv.WriteString("," + strconv.FormatFloat(v, 'g', -1, 64))
		}
		csv.WriteString("\n")
	}
	m, err := plos.Train([]plos.User{u}, plos.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	csvPath = filepath.Join(dir, "data.csv")
	if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, csvPath
}

func TestInspectGlobalAndUser(t *testing.T) {
	modelPath, csvPath := buildArtifacts(t)
	if err := run(modelPath, csvPath, -1); err != nil {
		t.Fatalf("global inspect: %v", err)
	}
	if err := run(modelPath, csvPath, 0); err != nil {
		t.Fatalf("user inspect: %v", err)
	}
}

func TestInspectErrors(t *testing.T) {
	modelPath, csvPath := buildArtifacts(t)
	if err := run("", csvPath, -1); err == nil {
		t.Error("missing -model should error")
	}
	if err := run(modelPath, csvPath, 5); err == nil {
		t.Error("out-of-range user should error")
	}
	if err := run(modelPath, "/nonexistent.csv", -1); err == nil {
		t.Error("missing csv should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(modelPath, empty, -1); err == nil {
		t.Error("empty csv should error")
	}
}
