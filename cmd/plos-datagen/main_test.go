package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynth(t *testing.T) {
	dir := t.TempDir()
	if err := run("synth", dir, 3, 1, 1.0); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files = %d", len(entries))
	}
	// Validate the CSV shape of the first user: label + 2 features.
	f, err := os.Open(filepath.Join(dir, "user00.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	rows := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != 3 {
			t.Fatalf("row %d has %d fields", rows, len(fields))
		}
		if fields[0] != "1" && fields[0] != "-1" {
			t.Fatalf("row %d label = %q", rows, fields[0])
		}
		rows++
	}
	if rows != 400 {
		t.Fatalf("rows = %d, want 400 (paper: 200 per class)", rows)
	}
}

func TestRunBodyAndHAR(t *testing.T) {
	dir := t.TempDir()
	if err := run("har", dir, 2, 1, 0); err != nil {
		t.Fatalf("har: %v", err)
	}
	if err := run("body", filepath.Join(dir, "b"), 2, 1, 0); err != nil {
		t.Fatalf("body: %v", err)
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("nope", t.TempDir(), 1, 1, 0); err == nil {
		t.Error("unknown kind should error")
	}
}
