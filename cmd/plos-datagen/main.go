// plos-datagen emits the simulated datasets this repository evaluates on —
// the body sensor cohort (§VI-B substitute), the HAR-like cohort (§VI-C
// substitute), and the rotated synthetic population (§VI-D) — as one CSV
// per user, in the format plos-client consumes: the first column is the
// label (+1/−1) and the remaining columns the features.
//
//	plos-datagen -kind body -out ./data/body
//	plos-datagen -kind synth -users 10 -out ./data/synth
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"plos/internal/dataset"
	"plos/internal/har"
	"plos/internal/mat"
	"plos/internal/rng"
	"plos/internal/sensors"
)

func main() {
	var (
		kind  = flag.String("kind", "synth", "dataset kind: body | har | synth")
		out   = flag.String("out", "./data", "output directory (created if absent)")
		users = flag.Int("users", 0, "user count (0 = paper default)")
		seed  = flag.Int64("seed", 1, "generator seed")
		angle = flag.Float64("angle", math.Pi/2, "synth: maximum rotation angle")
	)
	flag.Parse()
	if err := run(*kind, *out, *users, *seed, *angle); err != nil {
		fmt.Fprintln(os.Stderr, "plos-datagen:", err)
		os.Exit(1)
	}
}

func run(kind, out string, users int, seed int64, angle float64) error {
	g := rng.New(seed)
	var xs []*mat.Matrix
	var truths [][]float64
	switch kind {
	case "body":
		cfg := sensors.Config{}
		if users > 0 {
			cfg.Subjects = users
		}
		ds, err := sensors.Generate(cfg, g)
		if err != nil {
			return err
		}
		for _, s := range ds.Subjects {
			xs = append(xs, s.X)
			truths = append(truths, s.Truth)
		}
	case "har":
		cfg := har.Config{}
		if users > 0 {
			cfg.Users = users
		}
		ds, err := har.Generate(cfg, g)
		if err != nil {
			return err
		}
		for _, u := range ds.Users {
			xs = append(xs, u.X)
			truths = append(truths, u.Truth)
		}
	case "synth":
		if users <= 0 {
			users = 10
		}
		pop, err := dataset.Population(users, angle, dataset.SynthConfig{}, g)
		if err != nil {
			return err
		}
		for _, u := range pop {
			xs = append(xs, u.X)
			truths = append(truths, u.Truth)
		}
	default:
		return fmt.Errorf("unknown kind %q (want body, har, or synth)", kind)
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i := range xs {
		path := filepath.Join(out, fmt.Sprintf("user%02d.csv", i))
		if err := writeCSV(path, xs[i], truths[i]); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d users (%d samples × %d features each) to %s\n",
		len(xs), xs[0].Rows, xs[0].Cols, out)
	return nil
}

func writeCSV(path string, x *mat.Matrix, truth []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var sb strings.Builder
	for i := 0; i < x.Rows; i++ {
		sb.Reset()
		sb.WriteString(strconv.FormatFloat(truth[i], 'g', -1, 64))
		row := x.Row(i)
		for _, v := range row {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
		}
		sb.WriteByte('\n')
		if _, err := f.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return nil
}
