package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"plos"
	"plos/internal/obs/health"
)

// get fetches one ops endpoint and returns status and body.
func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

// TestHealthEndpointsWiring mounts the ops mux around a health-attached
// observer and drives the fleet state through the three surfaces: /healthz
// flips 200 -> 503 -> 200 with the engine, /debug/health serves the JSON
// tree, /statusz the human page, and /metrics carries the new gauges.
func TestHealthEndpointsWiring(t *testing.T) {
	ob := plos.NewObserver(plos.WithFlightRecorder(nil), plos.WithHealth(health.Config{}))
	addr, stop, err := startMetrics("127.0.0.1:0", ob)
	if err != nil {
		t.Fatalf("startMetrics: %v", err)
	}
	defer stop()

	if code, body := get(t, addr, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	code, body := get(t, addr, "/debug/health")
	if code != http.StatusOK {
		t.Fatalf("/debug/health = %d", code)
	}
	var snap health.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/health is not JSON: %v\n%s", err, body)
	}
	if snap.State != "ok" {
		t.Errorf("/debug/health state = %q, want ok", snap.State)
	}

	if code, body := get(t, addr, "/statusz"); code != http.StatusOK ||
		!strings.Contains(body, "plos health: ok") || !strings.Contains(body, "uptime:") {
		t.Errorf("/statusz = %d %q", code, body)
	}

	_, metrics := get(t, addr, "/metrics")
	for _, want := range []string{
		"health_state 0",
		"obs_flight_write_errors 0",
		"process_uptime_seconds",
		"plos_build_info",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "go1.") {
		t.Error("plos_build_info help must carry the toolchain version")
	}

	// Degrade the fleet through the engine and watch the gate flip.
	ob.Health().ReportRemote("shard:3", 1, "synthetic fault")
	code, body = get(t, addr, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while degraded = %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "shard:3") || !strings.Contains(body, "synthetic fault") {
		t.Errorf("degraded /healthz must name component and cause, got %q", body)
	}
	ob.Health().ReportRemote("shard:3", 0, "")
	if code, _ := get(t, addr, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after recovery = %d, want 200", code)
	}
}

// TestRunMountsHealthPlane drives the real flag path: a full distributed run
// with -metrics-addr must mount the health surfaces on the ops endpoint and
// report a healthy fleet while training is live.
func TestRunMountsHealthPlane(t *testing.T) {
	addr := freePort(t)
	const devices = 2
	wg := joinClients(t, addr, devices, 40)
	type probe struct {
		healthz int
		statusz string
		treeOK  bool
	}
	probed := make(chan probe, 1)
	o := serverOptions{
		addr: addr, devices: devices,
		lambda: 100, cl: 1, cu: 0.2, rho: 1, epsAbs: 1e-3, seed: 1,
		metricsAddr: "127.0.0.1:0",
		onMetrics: func(bound string) {
			var p probe
			p.healthz, _ = get(t, bound, "/healthz")
			_, p.statusz = get(t, bound, "/statusz")
			_, tree := get(t, bound, "/debug/health")
			var snap health.Snapshot
			p.treeOK = json.Unmarshal([]byte(tree), &snap) == nil
			probed <- p
		},
	}
	if err := run(o); err != nil {
		t.Fatalf("server run: %v", err)
	}
	wg.Wait()
	p := <-probed
	if p.healthz != http.StatusOK {
		t.Errorf("/healthz during the run = %d, want 200", p.healthz)
	}
	if !strings.Contains(p.statusz, "plos health:") {
		t.Errorf("/statusz missing the header: %q", p.statusz)
	}
	if !p.treeOK {
		t.Error("/debug/health did not serve a parseable snapshot")
	}
}
