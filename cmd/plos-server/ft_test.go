package main

import (
	"errors"
	"strings"
	"testing"
	"time"

	"plos/internal/protocol"
	"plos/internal/transport"
)

// startServer runs the server under test in the background and returns its
// bound address plus the channel its exit error arrives on.
func startServer(t *testing.T, devices int) (string, <-chan error) {
	t.Helper()
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	o := serverOptions{
		addr: "127.0.0.1:0", devices: devices,
		lambda: 100, cl: 1, cu: 0.2, rho: 1, epsAbs: 1e-3, seed: 1,
		onListen: func(a string) { addrCh <- a },
	}
	go func() { errCh <- run(o) }()
	select {
	case addr := <-addrCh:
		return addr, errCh
	case err := <-errCh:
		t.Fatalf("server exited before listening: %v", err)
		return "", nil
	}
}

// waitErr fails the test if the server does not exit promptly — a hang on
// vanished clients is exactly the bug this test exists to catch.
func waitErr(t *testing.T, errCh <-chan error) error {
	t.Helper()
	select {
	case err := <-errCh:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after all clients vanished")
		return nil
	}
}

// TestServerAllClientsVanish: a plos-server whose entire device fleet
// disappears must exit non-zero with a message naming the failure, never
// hang or report success.
func TestServerAllClientsVanish(t *testing.T) {
	t.Run("during handshake", func(t *testing.T) {
		addr, errCh := startServer(t, 2)
		for i := 0; i < 2; i++ {
			c, err := transport.Dial(addr)
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			_ = c.Close() // vanish before sending the hello
		}
		err := waitErr(t, errCh)
		if err == nil {
			t.Fatal("server reported success with zero surviving devices")
		}
		if !strings.Contains(err.Error(), "hello") {
			t.Errorf("error %q does not name the handshake failure", err)
		}
	})

	t.Run("after handshake", func(t *testing.T) {
		addr, errCh := startServer(t, 2)
		conns := make([]transport.Conn, 2)
		for i := range conns {
			c, err := transport.Dial(addr)
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			conns[i] = c
			hello := transport.Message{Type: transport.MsgHello,
				Dim: 2, Samples: 4, Labeled: 2, W: []float64{1, 0}}
			if err := c.Send(hello); err != nil {
				t.Fatalf("hello %d: %v", i, err)
			}
		}
		for i, c := range conns {
			if m, err := c.Recv(); err != nil || m.Type != transport.MsgHello {
				t.Fatalf("hello reply %d: %v %v", i, m.Type, err)
			}
			_ = c.Close() // vanish right as training starts
		}
		err := waitErr(t, errCh)
		if err == nil {
			t.Fatal("server reported success with zero surviving devices")
		}
		if !errors.Is(err, protocol.ErrTooFewActive) {
			t.Errorf("err = %v, want ErrTooFewActive in the chain", err)
		}
	})
}
