package main

import (
	"os"
	"sync"
	"testing"

	"plos"
)

// TestServerShardRolesEndToEnd wires a 2-shard plane entirely through the
// CLI surface: one -role agg process, two -role shard processes (here
// goroutines sharing the binary's run()), and five devices joining over
// real TCP. The bit-identity of the sharded plane is pinned in
// internal/protocol; this test covers the flag plumbing and role dispatch.
func TestServerShardRolesEndToEnd(t *testing.T) {
	aggAddr := freePort(t)
	shardAddrs := []string{freePort(t), freePort(t)}
	devices := []int{2, 3}
	savePath := t.TempDir() + "/shard0.json"

	common := serverOptions{lambda: 100, cl: 1, cu: 0.2, rho: 1, epsAbs: 1e-3, seed: 1}

	aggReady := make(chan struct{}, 1)
	aggErr := make(chan error, 1)
	go func() {
		o := common
		o.role, o.addr, o.shards = "agg", aggAddr, len(shardAddrs)
		o.onListen = func(string) { aggReady <- struct{}{} }
		aggErr <- run(o)
	}()
	<-aggReady // shards dial the aggregator; it must be listening first

	var shardWg sync.WaitGroup
	shardErrs := make([]error, len(shardAddrs))
	for s := range shardAddrs {
		shardWg.Add(1)
		go func(s int) {
			defer shardWg.Done()
			o := common
			o.role, o.shardID, o.aggAddr = "shard", s, aggAddr
			o.addr, o.devices = shardAddrs[s], devices[s]
			if s == 0 {
				o.save = savePath
			}
			shardErrs[s] = run(o)
		}(s)
	}

	var clientWg []*sync.WaitGroup
	for s, addr := range shardAddrs {
		clientWg = append(clientWg, joinClients(t, addr, devices[s], 40))
	}

	shardWg.Wait()
	for s, err := range shardErrs {
		if err != nil {
			t.Errorf("shard %d run: %v", s, err)
		}
	}
	if err := <-aggErr; err != nil {
		t.Errorf("agg run: %v", err)
	}
	for _, wg := range clientWg {
		wg.Wait()
	}

	f, err := os.Open(savePath)
	if err != nil {
		t.Fatalf("shard 0 saved model missing: %v", err)
	}
	defer f.Close()
	if _, err := plos.LoadModel(f); err != nil {
		t.Fatalf("shard 0 saved model unreadable: %v", err)
	}
}

// TestServerRejectsUnknownRole pins the role validation and the agg -save
// rejection (the aggregator holds no per-user models to save).
func TestServerRejectsUnknownRole(t *testing.T) {
	o := serverOptions{role: "coordinator"}
	if err := run(o); err == nil {
		t.Fatal("unknown role accepted")
	}
	o = serverOptions{role: "agg", save: "x.json"}
	if err := run(o); err == nil {
		t.Fatal("agg -save accepted")
	}
}
