package main

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"plos"
)

// freePort grabs an ephemeral listen address and releases it so the code
// under test can bind the same addr via its own flag path.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// joinClients spawns the device side: n goroutines with synthetic two-cluster
// data that retry plos.Join until the server under test is listening.
func joinClients(t *testing.T, addr string, n, samples int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(i)))
			u := plos.User{}
			for s := 0; s < samples; s++ {
				cls := 1.0
				if s%2 == 1 {
					cls = -1
				}
				u.Features = append(u.Features, []float64{
					cls*4 + r.NormFloat64(), cls*4 + r.NormFloat64(),
				})
				if s < samples/5 {
					u.Labels = append(u.Labels, cls)
				}
			}
			// Retry until the server is listening.
			var lastErr error
			for attempt := 0; attempt < 200; attempt++ {
				if _, lastErr = plos.Join(addr, u, plos.WithSeed(int64(i))); lastErr == nil {
					return
				}
			}
			t.Errorf("client %d: %v", i, lastErr)
		}(i)
	}
	return &wg
}

func TestServerRunEndToEnd(t *testing.T) {
	addr := freePort(t)
	const devices = 2
	wg := joinClients(t, addr, devices, 40)
	savePath := t.TempDir() + "/model.json"
	o := serverOptions{
		addr: addr, devices: devices,
		lambda: 100, cl: 1, cu: 0.2, rho: 1, epsAbs: 1e-3, seed: 1,
		save:        savePath,
		metricsAddr: "127.0.0.1:0", // exercise the full -metrics-addr plumbing
	}
	if err := run(o); err != nil {
		t.Fatalf("server run: %v", err)
	}
	wg.Wait()
	f, err := os.Open(savePath)
	if err != nil {
		t.Fatalf("saved model missing: %v", err)
	}
	defer f.Close()
	if _, err := plos.LoadModel(f); err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
}

// promLine accepts Prometheus 0.0.4 text exposition sample lines.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// TestMetricsEndpointsDuringTraining is the observability acceptance test:
// while a distributed training run is in flight, the -metrics-addr endpoint
// must serve valid Prometheus text and a parseable CPU profile.
func TestMetricsEndpointsDuringTraining(t *testing.T) {
	ob := plos.NewObserver()
	metricsAddr, stop, err := startMetrics("127.0.0.1:0", ob)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	const devices = 3
	addrCh := make(chan string, 1)
	serveDone := make(chan error, 1)
	go func() {
		_, err := plos.Serve("127.0.0.1:0", devices,
			func(a string) { addrCh <- a },
			plos.WithSeed(2), plos.WithObserver(ob))
		serveDone <- err
	}()
	addr := <-addrCh

	// Start the 1-second CPU profile first so the training below lands
	// inside its sampling window.
	profDone := make(chan error, 1)
	go func() {
		profDone <- func() error {
			resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/profile?seconds=1", metricsAddr))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				return fmt.Errorf("profile status %d: %s", resp.StatusCode, body)
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			// pprof profiles are gzipped protobuf; parseable means the gzip
			// layer opens and yields a non-empty payload.
			zr, err := gzip.NewReader(strings.NewReader(string(raw)))
			if err != nil {
				return fmt.Errorf("profile not gzip: %w", err)
			}
			pb, err := io.ReadAll(zr)
			if err != nil {
				return fmt.Errorf("profile gzip truncated: %w", err)
			}
			if len(pb) == 0 {
				return fmt.Errorf("profile payload empty")
			}
			return nil
		}()
	}()
	time.Sleep(50 * time.Millisecond) // let the profiler arm before training starts

	wg := joinClients(t, addr, devices, 60)

	// Scrape /metrics while the run is (likely) still in flight; the server
	// stays up either way because this test owns its lifecycle.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	validatePrometheus(t, string(body))

	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := <-profDone; err != nil {
		t.Fatalf("/debug/pprof/profile: %v", err)
	}

	// Post-training scrape must expose the trained-run counters, including
	// the derived energy gauge registered by startMetrics.
	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	final := string(body)
	validatePrometheus(t, final)
	for _, want := range []string{
		"# TYPE train_runs_total counter",
		"transport_bytes_sent_total",
		"admm_rounds_total",
		"device_comm_energy_joules",
	} {
		if !strings.Contains(final, want) {
			t.Errorf("/metrics missing %q after training", want)
		}
	}

	// /debug/vars serves the expvar JSON with the published "plos" map.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", metricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["plos"]; !ok {
		t.Error("/debug/vars missing the plos var")
	}
}

func validatePrometheus(t *testing.T, body string) {
	t.Helper()
	if !strings.Contains(body, "# TYPE ") {
		t.Error("exposition has no TYPE comments")
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}
