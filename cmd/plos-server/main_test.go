package main

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"

	"plos"
)

func TestServerRunEndToEnd(t *testing.T) {
	// Grab a free port so the server flag path is exercised verbatim.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	const devices = 2
	var wg sync.WaitGroup
	clientErrs := make([]error, devices)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(i)))
			u := plos.User{}
			for s := 0; s < 40; s++ {
				cls := 1.0
				if s%2 == 1 {
					cls = -1
				}
				u.Features = append(u.Features, []float64{
					cls*4 + r.NormFloat64(), cls*4 + r.NormFloat64(),
				})
				if s < 8 {
					u.Labels = append(u.Labels, cls)
				}
			}
			// Retry until the server is listening.
			var lastErr error
			for attempt := 0; attempt < 200; attempt++ {
				if _, lastErr = plos.Join(addr, u, plos.WithSeed(int64(i))); lastErr == nil {
					return
				}
			}
			clientErrs[i] = lastErr
		}(i)
	}
	savePath := t.TempDir() + "/model.json"
	if err := run(addr, devices, 100, 1, 0.2, 1, 1e-3, 1, savePath); err != nil {
		t.Fatalf("server run: %v", err)
	}
	wg.Wait()
	for i, e := range clientErrs {
		if e != nil {
			t.Errorf("client %d: %v", i, e)
		}
	}
	f, err := os.Open(savePath)
	if err != nil {
		t.Fatalf("saved model missing: %v", err)
	}
	defer f.Close()
	if _, err := plos.LoadModel(f); err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
}
