// plos-server runs the distributed PLOS coordinator: it waits for a fixed
// number of plos-client devices, drives the CCCP + ADMM protocol of the
// paper's Algorithm 2, and prints the trained global model plus per-device
// traffic. Raw data never reaches this process.
//
//	plos-server -addr :7350 -devices 5 -lambda 100
package main

import (
	"flag"
	"fmt"
	"os"

	"plos"
)

func main() {
	var (
		addr    = flag.String("addr", ":7350", "listen address")
		devices = flag.Int("devices", 2, "number of devices to wait for")
		lambda  = flag.Float64("lambda", 100, "personalization strength λ")
		cl      = flag.Float64("cl", 1, "labeled-sample loss weight Cl")
		cu      = flag.Float64("cu", 0.2, "unlabeled-sample loss weight Cu (0 disables)")
		rho     = flag.Float64("rho", 1, "ADMM penalty ρ")
		epsAbs  = flag.Float64("eps", 1e-3, "ADMM absolute stopping tolerance")
		seed    = flag.Int64("seed", 1, "seed")
		save    = flag.String("save", "", "write the trained model (JSON) to this path")
	)
	flag.Parse()
	if err := run(*addr, *devices, *lambda, *cl, *cu, *rho, *epsAbs, *seed, *save); err != nil {
		fmt.Fprintln(os.Stderr, "plos-server:", err)
		os.Exit(1)
	}
}

func run(addr string, devices int, lambda, cl, cu, rho, epsAbs float64, seed int64, save string) error {
	res, err := plos.Serve(addr, devices,
		func(bound string) { fmt.Println("listening on", bound, "— waiting for", devices, "devices") },
		plos.WithLambda(lambda),
		plos.WithLossWeights(cl, cu),
		plos.WithADMM(rho, epsAbs),
		plos.WithSeed(seed),
	)
	if err != nil {
		return err
	}
	st := res.Model.Stats()
	fmt.Printf("\ntraining done: %d CCCP rounds, %d ADMM iterations, objective %.6g\n",
		st.CCCPIterations, st.ADMMIterations, st.Objective)
	fmt.Printf("global hyperplane (%d dims): %.4g…\n",
		len(res.Model.Global()), head(res.Model.Global(), 6))
	fmt.Println("\ndevice   dropped   traffic        messages")
	for t := range res.TrafficBytes {
		fmt.Printf("%6d %9v %9.1f KB %11d\n",
			t, res.Dropped[t], float64(res.TrafficBytes[t])/1024, res.TrafficMessages[t])
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return fmt.Errorf("saving model: %w", err)
		}
		defer f.Close()
		if err := res.Model.Save(f); err != nil {
			return err
		}
		fmt.Println("model written to", save)
	}
	return nil
}

func head(v []float64, n int) []float64 {
	if len(v) < n {
		return v
	}
	return v[:n]
}
