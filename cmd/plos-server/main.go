// plos-server runs the distributed PLOS coordinator: it waits for a fixed
// number of plos-client devices, drives the CCCP + ADMM protocol of the
// paper's Algorithm 2, and prints the trained global model plus per-device
// traffic. Raw data never reaches this process.
//
//	plos-server -addr :7350 -devices 5 -lambda 100
//
// With -metrics-addr the server also exposes an operations endpoint:
// /metrics (Prometheus text), /debug/vars (expvar JSON), /debug/pprof/*
// (live CPU/heap profiling), and the live health plane — /healthz (200/503),
// /debug/health (JSON tree) and /statusz (human text) — driven by a
// rule-driven health engine over the run's streaming signals. Watch it live
// with cmd/plos-top. See docs/OBSERVABILITY.md.
//
// Fault tolerance (see docs/FAULT_TOLERANCE.md): -op-timeout and -retries
// harden individual connections; -round-timeout, -quorum and -max-stale set
// the straggler policy; -resume lets disconnected devices redial and pick
// up their session; -checkpoint FILE snapshots trainer state after each
// CCCP round and resumes from the file when it already exists:
//
//	plos-server -devices 5 -round-timeout 30s -quorum 0.5 -resume \
//	    -checkpoint run.ckpt
//
// Asynchronous mode (see docs/ASYNC.md): -async removes the global ADMM
// round clock — each device update folds into the consensus the moment it
// arrives, weighted down by its staleness, so one slow device no longer
// stalls the fleet. Pair with plos-client -async:
//
//	plos-server -devices 5 -async -max-stale 4
//
// Sharded serving plane (see docs/SHARDING.md): -role selects what this
// process is. The default "single" is the classic one-coordinator server;
// "agg" runs the top-level aggregator for -shards shard processes (this is
// where the training hyperparameters live); "shard" runs one user-shard
// that dials the aggregator at -agg-addr and serves -devices devices:
//
//	plos-server -role agg   -addr :7360 -shards 2 -lambda 100
//	plos-server -role shard -shard-id 0 -agg-addr :7360 -addr :7350 -devices 3
//	plos-server -role shard -shard-id 1 -agg-addr :7360 -addr :7351 -devices 2
//
// A sharded plane self-heals: give the aggregator -resume, -max-stale and
// -shard-quorum, and each shard a -checkpoint file. A shard that dies is
// carried on its last partial sums; restarted with the same flags it
// auto-resumes from its checkpoint, dials back in, and rejoins the run at
// the next round boundary (docs/FAULT_TOLERANCE.md):
//
//	plos-server -role agg -shards 2 -resume -max-stale 8 -shard-quorum 1
//	plos-server -role shard -shard-id 0 -agg-addr :7360 -addr :7350 \
//	    -devices 3 -resume -checkpoint shard0.ckpt
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"plos"
	"plos/internal/cost"
	"plos/internal/obs"
	"plos/internal/obs/health"
)

func main() {
	var o serverOptions
	flag.StringVar(&o.addr, "addr", ":7350", "listen address")
	flag.IntVar(&o.devices, "devices", 2, "number of devices to wait for")
	flag.Float64Var(&o.lambda, "lambda", 100, "personalization strength λ")
	flag.Float64Var(&o.cl, "cl", 1, "labeled-sample loss weight Cl")
	flag.Float64Var(&o.cu, "cu", 0.2, "unlabeled-sample loss weight Cu (0 disables)")
	flag.Float64Var(&o.rho, "rho", 1, "ADMM penalty ρ")
	flag.Float64Var(&o.epsAbs, "eps", 1e-3, "ADMM absolute stopping tolerance")
	flag.Int64Var(&o.seed, "seed", 1, "seed")
	flag.StringVar(&o.save, "save", "", "write the trained model (JSON) to this path")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (empty disables)")
	flag.DurationVar(&o.opTimeout, "op-timeout", 0,
		"per-message send/receive deadline on device connections (0 waits forever)")
	flag.IntVar(&o.retries, "retries", 0,
		"retry transient transport failures up to this many attempts per operation (0 or 1 disables)")
	flag.DurationVar(&o.roundTimeout, "round-timeout", 0,
		"per-ADMM-iteration deadline; devices that miss it are carried stale, then dropped (0 waits forever)")
	flag.Float64Var(&o.quorum, "quorum", 0,
		"abort when fewer than this fraction of devices remain active (0 disables)")
	flag.IntVar(&o.maxStale, "max-stale", 0,
		"rounds a straggler's last update may be reused before it is dropped (0 = default 3)")
	flag.BoolVar(&o.resume, "resume", false,
		"issue session tokens and let disconnected devices redial and resume mid-training")
	flag.StringVar(&o.checkpoint, "checkpoint", "",
		"snapshot trainer state to this file after CCCP rounds; if the file exists, resume from it")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 1,
		"checkpoint after every N-th CCCP round (with -checkpoint)")
	flag.StringVar(&o.flight, "flight", "",
		"stream convergence flight records (JSONL) to this file and request device telemetry; analyze with plos-trace")
	flag.StringVar(&o.compress, "compress", "",
		"codec-v4 parameter compression offer, e.g. q8, q16, topk:0.25, delta, or compositions like q8,topk:0.25; "+
			"active only on connections whose peer offers the same schemes (empty or 'off' disables)")
	flag.BoolVar(&o.async, "async", false,
		"fully asynchronous DJAM mode: fold each device update on arrival under the staleness-weighted rule "+
			"instead of lockstep ADMM iterations (role single only; see docs/ASYNC.md)")
	flag.StringVar(&o.role, "role", "single",
		"process role in the serving plane: single (classic coordinator), shard, or agg (see docs/SHARDING.md)")
	flag.IntVar(&o.shardID, "shard-id", 0, "this process's shard index (with -role shard; 0-based, contiguous)")
	flag.StringVar(&o.aggAddr, "agg-addr", "localhost:7360", "aggregator address to dial (with -role shard)")
	flag.IntVar(&o.shards, "shards", 2, "number of shard processes to wait for (with -role agg)")
	flag.IntVar(&o.shardQuorum, "shard-quorum", 0,
		"abort when fewer than this many shards are represented in a reduce (with -role agg; 0 requires all shards)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "plos-server:", err)
		os.Exit(1)
	}
}

type serverOptions struct {
	addr                        string
	devices                     int
	lambda, cl, cu, rho, epsAbs float64
	seed                        int64
	save                        string
	metricsAddr                 string
	opTimeout, roundTimeout     time.Duration
	retries, maxStale           int
	quorum                      float64
	resume                      bool
	checkpoint                  string
	checkpointEvery             int
	flight                      string
	compress                    string
	async                       bool
	role                        string
	shardID                     int
	aggAddr                     string
	shards                      int
	shardQuorum                 int
	// onListen, when non-nil, receives the bound address (tests).
	onListen func(addr string)
	// onMetrics, when non-nil, receives the metrics endpoint's bound
	// address (tests).
	onMetrics func(addr string)
}

// healthConfig maps the server flags to the health engine's rule set for
// this process's role.
func healthConfig(o serverOptions) health.Config {
	cfg := health.Config{
		// Windowed spike thresholds: 5 device drop-cause events or 50
		// transport retries inside the (default 60s) window degrade; an
		// error-feedback norm past 1e6 is compression divergence.
		DropSpike:   5,
		RetrySpike:  50,
		EFNormLimit: 1e6,
	}
	if o.async && o.maxStale > 0 {
		cfg.MaxStale = float64(o.maxStale)
	}
	if o.role == "agg" {
		cfg.Shards = o.shards
		cfg.ShardQuorum = o.shardQuorum
		if cfg.ShardQuorum <= 0 {
			// Mirrors the FT layer's default: without -shard-quorum every
			// shard is required.
			cfg.ShardQuorum = o.shards
		}
	}
	return cfg
}

func run(o serverOptions) error {
	opts := []plos.Option{
		plos.WithLambda(o.lambda),
		plos.WithLossWeights(o.cl, o.cu),
		plos.WithADMM(o.rho, o.epsAbs),
		plos.WithSeed(o.seed),
	}
	if o.opTimeout > 0 {
		opts = append(opts, plos.WithOpTimeout(o.opTimeout))
	}
	if o.compress != "" {
		opts = append(opts, plos.WithCompression(o.compress))
	}
	if o.retries > 1 {
		opts = append(opts, plos.WithRetries(o.retries))
	}
	if o.roundTimeout > 0 {
		opts = append(opts, plos.WithRoundTimeout(o.roundTimeout))
	}
	if o.quorum > 0 {
		opts = append(opts, plos.WithQuorum(o.quorum))
	}
	if o.maxStale > 0 {
		opts = append(opts, plos.WithMaxStale(o.maxStale))
	}
	if o.resume {
		opts = append(opts, plos.WithSessionResume(0))
	}
	if o.shardQuorum > 0 {
		opts = append(opts, plos.WithShardQuorum(o.shardQuorum))
	}
	if o.checkpoint != "" {
		opts = append(opts, plos.WithCheckpoint(o.checkpoint, o.checkpointEvery))
	}
	if o.async {
		if o.role != "" && o.role != "single" {
			return fmt.Errorf("-async requires -role single (the sharded plane is lockstep; see docs/ASYNC.md)")
		}
		opts = append(opts, plos.WithAsync())
	}
	var ob *plos.Observer
	if o.metricsAddr != "" || o.flight != "" {
		var obOpts []plos.ObserverOption
		if o.flight != "" {
			f, err := os.Create(o.flight)
			if err != nil {
				return fmt.Errorf("flight recorder: %w", err)
			}
			defer f.Close()
			obOpts = append(obOpts, plos.WithFlightRecorder(f))
		} else if o.metricsAddr != "" {
			// /debug/trace still shows a live record tail without a file.
			obOpts = append(obOpts, plos.WithFlightRecorder(nil))
		}
		if o.metricsAddr != "" {
			// The ops endpoint always carries the live health plane.
			obOpts = append(obOpts, plos.WithHealth(healthConfig(o)))
		}
		ob = plos.NewObserver(obOpts...)
		if o.metricsAddr != "" {
			bound, stop, err := startMetrics(o.metricsAddr, ob)
			if err != nil {
				return err
			}
			defer stop()
			fmt.Printf("metrics on http://%s/metrics (health on /healthz, pprof on /debug/pprof/, live trace on /debug/trace)\n", bound)
			if o.onMetrics != nil {
				o.onMetrics(bound)
			}
		}
		opts = append(opts, plos.WithObserver(ob))
	}
	switch o.role {
	case "", "single", "shard":
		return runServe(o, opts, ob)
	case "agg":
		return runAgg(o, opts, ob)
	default:
		return fmt.Errorf("unknown -role %q (want single, shard or agg)", o.role)
	}
}

// runServe runs the device-facing roles: the classic single coordinator, or
// one shard of a sharded plane. Both return the same ServeResult shape, so
// the reporting is shared.
func runServe(o serverOptions, opts []plos.Option, ob *plos.Observer) error {
	var res *plos.ServeResult
	var err error
	onListen := func(bound string) {
		fmt.Println("listening on", bound, "— waiting for", o.devices, "devices")
		if o.onListen != nil {
			o.onListen(bound)
		}
	}
	if o.role == "shard" {
		res, err = plos.ServeShard(o.aggAddr, o.shardID, o.addr, o.devices, onListen, opts...)
	} else {
		res, err = plos.Serve(o.addr, o.devices, onListen, opts...)
	}
	if err != nil {
		return err
	}
	st := res.Model.Stats()
	fmt.Printf("\ntraining done: %d CCCP rounds, %d ADMM iterations, objective %.6g\n",
		st.CCCPIterations, st.ADMMIterations, st.Objective)
	fmt.Printf("final ADMM residuals: primal %.3g, dual %.3g\n",
		st.ADMMPrimalResidual, st.ADMMDualResidual)
	fmt.Printf("global hyperplane (%d dims): %.4g…\n",
		len(res.Model.Global()), head(res.Model.Global(), 6))
	fmt.Println("\ndevice   dropped   traffic        messages")
	for t := range res.TrafficBytes {
		fmt.Printf("%6d %9v %9.1f KB %11d\n",
			t, res.Dropped[t], float64(res.TrafficBytes[t])/1024, res.TrafficMessages[t])
		if res.Dropped[t] && res.DropCause[t] != nil {
			fmt.Printf("         cause: %v\n", res.DropCause[t])
		}
	}
	if err := flightNote(o, ob); err != nil {
		return err
	}
	if o.save != "" {
		f, err := os.Create(o.save)
		if err != nil {
			return fmt.Errorf("saving model: %w", err)
		}
		defer f.Close()
		if err := res.Model.Save(f); err != nil {
			return err
		}
		fmt.Println("model written to", o.save)
	}
	return nil
}

// runAgg runs the top-level aggregator of a sharded plane. It holds no
// per-user models, so -save is rejected (save on the shards instead).
func runAgg(o serverOptions, opts []plos.Option, ob *plos.Observer) error {
	if o.save != "" {
		return fmt.Errorf("-save is not supported with -role agg: personalized models live on the shards")
	}
	res, err := plos.ServeAggregator(o.addr, o.shards,
		func(bound string) {
			fmt.Println("aggregating on", bound, "— waiting for", o.shards, "shards")
			if o.onListen != nil {
				o.onListen(bound)
			}
		},
		opts...,
	)
	if err != nil {
		return err
	}
	fmt.Printf("\ntraining done: %d CCCP rounds, %d users across %d shards, objective %.6g (converged %v)\n",
		res.Rounds, res.Users, o.shards, res.Objective, res.Converged)
	fmt.Printf("global hyperplane (%d dims): %.4g…\n", len(res.Global), head(res.Global, 6))
	fmt.Println("\nshard    traffic        messages")
	for s := range res.TrafficBytes {
		fmt.Printf("%5d %9.1f KB %11d\n",
			s, float64(res.TrafficBytes[s])/1024, res.TrafficMessages[s])
	}
	if res.Restarts > 0 {
		fmt.Printf("\nshard restarts via checkpoint rejoin: %d\n", res.Restarts)
	}
	for s, cause := range res.ShardCauses {
		if cause != nil {
			fmt.Printf("shard %d was detached: %v\n", s, cause)
		}
	}
	return flightNote(o, ob)
}

// flightNote surfaces flight-recorder failures and points at plos-trace.
func flightNote(o serverOptions, ob *plos.Observer) error {
	if o.flight == "" {
		return nil
	}
	if err := ob.FlightErr(); err != nil {
		return fmt.Errorf("flight recorder: %w", err)
	}
	fmt.Println("flight records written to", o.flight, "— analyze with: go run ./cmd/plos-trace", o.flight)
	return nil
}

// startMetrics serves the observability endpoints on addr and returns the
// bound address plus a shutdown func. The mux is built per call (no
// http.DefaultServeMux) so tests can start several servers in one process.
func startMetrics(addr string, ob *plos.Observer) (string, func(), error) {
	phone := cost.DefaultPhone()
	ob.GaugeFunc(obs.MetricDeviceCommEnergyJoules,
		"Estimated device radio energy for the observed traffic (cost.DeviceProfile model).",
		func() float64 {
			msgs := ob.CounterValue(obs.MetricMessagesSent) + ob.CounterValue(obs.MetricMessagesReceived)
			bytes := ob.CounterValue(obs.MetricBytesSent) + ob.CounterValue(obs.MetricBytesReceived)
			return phone.CommEnergyFromCounts(msgs, bytes)
		})
	ob.PublishExpvar()

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", ob.Handler())
	mux.Handle("/debug/trace", ob.TraceHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	if h := ob.Health(); h != nil {
		mux.Handle("/healthz", h.HealthzHandler())
		mux.Handle("/debug/health", h.TreeHandler())
		mux.Handle("/statusz", h.StatuszHandler())
		h.Start(time.Second)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(l) }()
	stop := func() {
		_ = srv.Close()
		if h := ob.Health(); h != nil {
			h.Stop()
		}
	}
	return l.Addr().String(), stop, nil
}

func head(v []float64, n int) []float64 {
	if len(v) < n {
		return v
	}
	return v[:n]
}
