package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// TestMain lets the test binary stand in for the plos-bench binary when
// runShardJSON re-executes os.Executable() as shard workers.
func TestMain(m *testing.M) {
	if spec := os.Getenv(shardWorkerEnv); spec != "" {
		if err := runShardWorker(spec); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestShardJSONScenario runs the -shard-json scenario at reduced scale (the
// committed snapshot uses the 10000-device default) and validates the
// snapshot: real multi-process shards, loopback TCP, all devices accounted.
func TestShardJSONScenario(t *testing.T) {
	path := t.TempDir() + "/shard.json"
	o := benchOptions{seed: 7, shardJSON: path, shardDevices: 48, shardCount: 2}
	if err := run(o); err != nil {
		t.Fatalf("shard-json run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep shardReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if rep.Schema != shardSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, shardSchema)
	}
	if rep.Devices != 48 || rep.Shards != 2 {
		t.Errorf("scale = %d devices / %d shards, want 48/2", rep.Devices, rep.Shards)
	}
	if rep.Rounds <= 0 || rep.ADMMIters <= 0 {
		t.Errorf("empty run: %d rounds, %d ADMM iterations", rep.Rounds, rep.ADMMIters)
	}
	if rep.WallSeconds <= 0 {
		t.Error("wall clock not measured")
	}
	if len(rep.PerShardBytes) != 2 {
		t.Fatalf("per-shard bytes has %d entries, want 2", len(rep.PerShardBytes))
	}
	var sum int64
	for s, b := range rep.PerShardBytes {
		if b <= 0 {
			t.Errorf("shard %d reported no traffic", s)
		}
		sum += b
	}
	if sum != rep.AggLinkBytes {
		t.Errorf("agg link bytes %d != per-shard sum %d", rep.AggLinkBytes, sum)
	}
}

// TestShardKillRecover runs the -shard-kill scenario at reduced scale: a
// real shard process is SIGKILLed mid-run, respawned from its checkpoint,
// and must rejoin the consensus loop before the run completes. The gate in
// shardkill.go makes the sequencing deterministic even at this scale.
func TestShardKillRecover(t *testing.T) {
	path := t.TempDir() + "/kill.json"
	o := benchOptions{seed: 7, shardJSON: path, shardKill: true, shardDevices: 48, shardCount: 2}
	if err := run(o); err != nil {
		t.Fatalf("shard-kill run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep shardReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if rep.Schema != shardKillSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, shardKillSchema)
	}
	if rep.Recovery == nil {
		t.Fatal("schema-v2 snapshot has no recovery block")
	}
	if rep.Recovery.KilledShard != 0 || rep.Recovery.Restarts != 1 {
		t.Errorf("recovery = killed shard %d / %d restarts, want 0/1",
			rep.Recovery.KilledShard, rep.Recovery.Restarts)
	}
	if rep.Recovery.RejoinSeconds <= 0 {
		t.Errorf("rejoin time %g, want > 0", rep.Recovery.RejoinSeconds)
	}
	if rep.Recovery.StaleReduces < 1 {
		t.Errorf("stale reduces = %d, want >= 1 (the outage was never carried)", rep.Recovery.StaleReduces)
	}
	// Round 0 is clean, the kill lands in round 1, and the rejoin needs a
	// later boundary to attach — so at least three rounds must close.
	if rep.Rounds < 3 {
		t.Errorf("run finished %d rounds, want >= 3", rep.Rounds)
	}
}

// TestShardWorkerRejectsMalformedSpec pins the worker entry's validation.
func TestShardWorkerRejectsMalformedSpec(t *testing.T) {
	for _, spec := range []string{"", "1:2", "a:0:4:7:x", "0:4:4:7:addr", "0:0:4:7:addr|"} {
		if err := runShardWorker(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
