package main

// The -shard-json mode: the sharded serving-plane scale scenario of
// docs/SHARDING.md. The parent process runs the top-level aggregator and
// re-executes its own binary as N shard worker processes (one OS process
// per shard, exactly like a production deployment); each worker dials the
// aggregator over loopback TCP and serves its contiguous slice of the
// device population as in-process pipe clients. The default scale — 10000
// devices across 2 shards — is the acceptance scenario of the sharding PR;
// the snapshot is committed as BENCH_<pr>.json.
//
// Device datasets are generated from the GLOBAL device index, so the same
// population is reproduced no matter how it is partitioned.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/protocol"
	"plos/internal/rng"
	"plos/internal/transport"
)

// shardSchema versions the shard-scale snapshot layout.
const shardSchema = "plos-bench/shard-v1"

// shardWorkerEnv re-enters the binary as a shard worker: the parent sets it
// to "id:from:to:seed:aggAddr" on each child it spawns. An env var instead
// of a flag keeps the worker entry point available to the test binary too
// (its TestMain intercepts the same variable).
const shardWorkerEnv = "PLOS_BENCH_SHARD_WORKER"

type shardReport struct {
	Schema  string `json:"schema"`
	CPU     int    `json:"cpus"`
	Devices int    `json:"devices"`
	Shards  int    `json:"shards"`
	// Rounds/ADMMIters/Converged/Objective summarize the aggregator's view
	// of the run; WallSeconds is aggregator accept → final model.
	Rounds      int     `json:"cccp_rounds"`
	ADMMIters   int     `json:"admm_iterations"`
	Converged   bool    `json:"converged"`
	Objective   float64 `json:"objective"`
	WallSeconds float64 `json:"wall_seconds"`
	// AggLinkBytes is the total traffic on the aggregator↔shard links (the
	// cross-shard bytes the shard_cross_bytes_total metric tracks);
	// PerShardBytes splits it by shard id.
	AggLinkBytes  int64   `json:"agg_link_bytes"`
	PerShardBytes []int64 `json:"per_shard_bytes"`
	// Recovery is present only in the -shard-kill variant (schema v2): the
	// self-healing numbers of the kill-and-recover scenario.
	Recovery *shardRecovery `json:"recovery,omitempty"`
}

// shardBenchConfig is the aggregator's training configuration for the
// scenario: iteration budgets are pinned small so the scenario measures the
// serving plane (10k concurrent device exchanges, cross-shard reduces), not
// solver depth.
func shardBenchConfig(seed int64) (core.Config, core.DistConfig) {
	cfg := core.Config{
		Lambda: 100, Cl: 1, Cu: 0.2, Seed: seed,
		MaxCCCPIter: 2, MaxCutIter: 2, QPMaxIter: 30,
	}
	dist := core.DistConfig{Rho: 1, EpsAbs: 1e-3, MaxADMMIter: 2}
	return cfg, dist
}

// shardBenchDevice generates device g's dataset from its global index: four
// 2-D samples in two clusters, the first two labeled. Tiny on purpose — the
// scenario's cost should be dominated by the plane, not the local QPs.
func shardBenchDevice(g int, seed int64) core.UserData {
	r := rng.New(seed).SplitN("shard-bench-device", g)
	rot := rng.Rotation2D(0.05 * float64(g%7))
	const n = 4
	x := mat.NewMatrix(n, 2)
	y := make([]float64, 0, 2)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		p := rot.MulVec(mat.Vector{cls*4 + r.Norm(), cls*4 + r.Norm()})
		x.Set(i, 0, p[0])
		x.Set(i, 1, p[1])
		if i < 2 {
			y = append(y, cls)
		}
	}
	return core.UserData{X: x, Y: y}
}

// runShardJSON runs the scenario and writes the snapshot to path.
func runShardJSON(o benchOptions) error {
	shards, devices, seed := o.shardCount, o.shardDevices, o.seed
	if shards < 2 {
		return fmt.Errorf("shard-json: need at least 2 shards, got %d", shards)
	}
	if devices < shards {
		return fmt.Errorf("shard-json: need at least one device per shard")
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("shard-json: %w", err)
	}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shard-json: %w", err)
	}
	defer l.Close()

	// Contiguous device ranges per shard; the remainder lands on the early
	// shards so sizes differ by at most one.
	cmds := make([]*exec.Cmd, shards)
	from := 0
	for s := 0; s < shards; s++ {
		n := devices / shards
		if s < devices%shards {
			n++
		}
		spec := fmt.Sprintf("%d:%d:%d:%d:%s", s, from, from+n, seed, l.Addr())
		cmd, err := spawnWorker(exe, spec)
		if err != nil {
			return fmt.Errorf("shard-json: spawn shard %d: %w", s, err)
		}
		cmds[s] = cmd
		from += n
	}
	fmt.Fprintf(os.Stderr, "shard-json: %d devices across %d shard processes, aggregating on %s\n",
		devices, shards, l.Addr())

	conns, err := l.AcceptN(shards)
	if err != nil {
		return fmt.Errorf("shard-json: %w", err)
	}
	cfg, dist := shardBenchConfig(seed)
	start := time.Now()
	res, aggErr := protocol.RunAggregator(conns, protocol.AggConfig{Core: cfg, Dist: dist})
	wall := time.Since(start)
	for s, cmd := range cmds {
		if werr := cmd.Wait(); werr != nil && aggErr == nil {
			aggErr = fmt.Errorf("shard worker %d: %w", s, werr)
		}
	}
	if aggErr != nil {
		return fmt.Errorf("shard-json: %w", aggErr)
	}
	if res.Users != devices {
		return fmt.Errorf("shard-json: aggregator saw %d users, want %d", res.Users, devices)
	}

	report := shardReport{
		Schema: shardSchema, CPU: runtime.NumCPU(),
		Devices: devices, Shards: shards,
		Rounds: res.Info.CCCPIterations, ADMMIters: res.Info.ADMMIterations,
		Converged: res.Info.CCCPConverged, Objective: res.Info.Objective,
		WallSeconds:  wall.Seconds(),
		AggLinkBytes: res.Total.BytesSent + res.Total.BytesReceived,
	}
	for _, s := range res.PerShard {
		report.PerShardBytes = append(report.PerShardBytes, s.BytesSent+s.BytesReceived)
	}
	if err := writeShardReport(o.shardJSON, &report); err != nil {
		return fmt.Errorf("shard-json: %w", err)
	}
	fmt.Fprintf(os.Stderr,
		"shard-json: %d rounds, %d ADMM iterations, objective %.6g in %.1fs (%.1f KB on the aggregator links)\n",
		report.Rounds, report.ADMMIters, report.Objective, report.WallSeconds,
		float64(report.AggLinkBytes)/1024)
	fmt.Fprintln(os.Stderr, "shard snapshot written to", o.shardJSON)
	return nil
}

// spawnWorker re-executes the binary as a shard worker with the given spec.
func spawnWorker(exe, spec string) (*exec.Cmd, error) {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), shardWorkerEnv+"="+spec)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// writeShardReport writes the snapshot with the indentation the committed
// BENCH_<pr>.json files use.
func writeShardReport(path string, report *shardReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// runShardWorker is the child entry point: spec is the shardWorkerEnv value
// "id:from:to:seed:aggAddr". It dials the aggregator, hosts devices
// [from, to) as in-process pipe clients, and drives protocol.RunShard.
//
// The kill-and-recover scenario (-shard-kill) appends "|<checkpoint path>"
// to the victim's spec: the worker then checkpoints every round, and when
// the file already exists — the respawn after a SIGKILL — it runs the
// restore path instead, its devices presenting the checkpoint's session
// tokens so the restore handshake can match them to their slots.
func runShardWorker(spec string) error {
	ckptPath := ""
	if i := strings.IndexByte(spec, '|'); i >= 0 {
		ckptPath = spec[i+1:]
		spec = spec[:i]
		if ckptPath == "" {
			return fmt.Errorf("shard worker: empty checkpoint path in %q", spec)
		}
	}
	parts := strings.SplitN(spec, ":", 5)
	if len(parts) != 5 {
		return fmt.Errorf("shard worker: malformed spec %q", spec)
	}
	var id, from, to int
	var seed int64
	for _, p := range []struct {
		dst *int
		s   string
	}{{&id, parts[0]}, {&from, parts[1]}, {&to, parts[2]}} {
		v, err := strconv.Atoi(p.s)
		if err != nil {
			return fmt.Errorf("shard worker: malformed spec %q: %w", spec, err)
		}
		*p.dst = v
	}
	s64, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return fmt.Errorf("shard worker: malformed spec %q: %w", spec, err)
	}
	seed = s64
	aggAddr := parts[4]
	if to <= from {
		return fmt.Errorf("shard worker: empty device range in %q", spec)
	}

	n := to - from
	var restore *protocol.Checkpoint
	if ckptPath != "" {
		ck, err := protocol.LoadCheckpoint(ckptPath)
		switch {
		case err == nil:
			if len(ck.Sessions) != n {
				return fmt.Errorf("shard worker %d: checkpoint has %d slots, want %d", id, len(ck.Sessions), n)
			}
			restore = ck
		case errors.Is(err, fs.ErrNotExist):
			// First incarnation: fresh run with checkpointing enabled.
		default:
			return fmt.Errorf("shard worker %d: %w", id, err)
		}
	}

	agg, err := transport.Dial(aggAddr)
	if err != nil {
		return fmt.Errorf("shard worker %d: dial aggregator: %w", id, err)
	}
	defer agg.Close()

	serverConns := make([]transport.Conn, n)
	clientErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		opts := protocol.ClientOptions{Seed: int64(from + i)}
		if restore != nil {
			// Slot i held device from+i in the fresh run (hellos are
			// collected in connection order), so its recorded token lets the
			// restarted device reclaim exactly its own duals.
			opts.Session = restore.Sessions[i]
		}
		wg.Add(1)
		go func(i int, cc transport.Conn, opts protocol.ClientOptions) {
			defer wg.Done()
			_, clientErrs[i] = protocol.RunClient(cc, shardBenchDevice(from+i, seed), opts)
		}(i, cc, opts)
	}

	_, runErr := protocol.RunShard(agg, serverConns, protocol.ShardConfig{
		Shard: id, Core: core.Config{Seed: seed},
		FT: protocol.FTConfig{CheckpointPath: ckptPath, Restore: restore},
	})
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if runErr != nil {
		return fmt.Errorf("shard worker %d: %w", id, runErr)
	}
	for i, cerr := range clientErrs {
		if cerr != nil {
			return fmt.Errorf("shard worker %d: device %d: %w", id, from+i, cerr)
		}
	}
	return nil
}
