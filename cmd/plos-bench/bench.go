package main

// The -bench-json mode: a small, scripted perf-trajectory suite whose
// output is committed as BENCH_<pr>.json at the repo root, one file per
// performance-relevant change. Unlike `go test -bench`, the suite is stable
// across tooling (fixed names, fixed seeds, a schema field) so successive
// snapshots stay comparable; scripts/checkperf holds the snapshots and
// docs/PERFORMANCE.md to each other.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"plos/internal/eval"
)

// benchSchema versions the snapshot layout; checkperf requires the field.
const benchSchema = "plos-bench/perf-v1"

type benchEntry struct {
	Name string `json:"name"`
	// SecondsPerOp is the testing.Benchmark measurement for one full run
	// of the workload.
	SecondsPerOp float64 `json:"seconds_per_op"`
	Iterations   int     `json:"iterations"`
	// CutRounds reports the cutting-plane depth of the CutRound arms (the
	// workload must stay ≥ eval.MinCutRounds for the comparison to mean
	// anything); zero for the other entries.
	CutRounds int `json:"cut_rounds,omitempty"`
}

type benchReport struct {
	Schema string       `json:"schema"`
	CPU    int          `json:"cpus"`
	Suite  []benchEntry `json:"suite"`
	// Speedups are the ratios the trajectory tracks: the incremental
	// restricted-QP cache (DESIGN.md §11) and the worker-pool scaling.
	Speedups map[string]float64 `json:"speedups"`
}

// compressSchema versions the accuracy-vs-bytes snapshot layout.
const compressSchema = "plos-bench/compress-v1"

type compressReport struct {
	Schema string `json:"schema"`
	// Workload names the shared cohort every point was trained on.
	Workload string                  `json:"workload"`
	Points   []eval.CompressionPoint `json:"points"`
}

// runCompressJSON sweeps the codec-v4 schemes over the Fig. 5 HAR workload
// and writes the accuracy-vs-bytes snapshot (committed as BENCH_<pr>.json).
// It fails if the headline scheme (q8 + top-k) misses its pinned target:
// at least 4x fewer parameter-payload bytes with the final objective
// within 5% of the dense run.
func runCompressJSON(path string, seed int64, workers int) error {
	opts := eval.CompressionOptions{
		CohortOptions: eval.CohortOptions{Trials: 1, Seed: seed, Lambda: 100, Cl: 1, Cu: 0.2, Workers: workers},
	}
	points, err := eval.CompressionSweep(opts)
	if err != nil {
		return err
	}
	report := compressReport{
		Schema:   compressSchema,
		Workload: "fig5-har reduced (10 users x 24 samples x dim 120, 5 providers @ 25%)",
		Points:   points,
	}
	headline := false
	for _, p := range points {
		fmt.Fprintf(os.Stderr, "compress %-14s ratio=%5.1fx obj=%.4f gap=%.4f acc=%.3f ef=%.4f\n",
			p.Scheme, p.Ratio, p.Objective, p.ObjGapRel, p.Accuracy, p.EFNorm)
		if p.Scheme == "q8,topk:0.75" {
			headline = true
			if p.Ratio < 4 {
				return fmt.Errorf("compress-json: %s saved only %.2fx bytes, want >= 4x", p.Scheme, p.Ratio)
			}
			if p.ObjGapRel > 0.05 {
				return fmt.Errorf("compress-json: %s objective gap %.4f, want <= 0.05", p.Scheme, p.ObjGapRel)
			}
		}
	}
	if !headline {
		return fmt.Errorf("compress-json: sweep is missing the headline q8,topk:0.75 scheme")
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("compress-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("compress-json: %w", err)
	}
	fmt.Fprintln(os.Stderr, "compression snapshot written to", path)
	return nil
}

// runBenchJSON measures the perf-trajectory suite and writes the snapshot.
func runBenchJSON(path string, workers int) error {
	var report benchReport
	report.Schema = benchSchema
	report.CPU = runtime.NumCPU()

	measure := func(name string, fn func() (int, error)) error {
		var rounds int
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, err := fn()
				if err != nil {
					runErr = err
					b.SkipNow()
				}
				rounds = n
			}
		})
		if runErr != nil {
			return fmt.Errorf("%s: %w", name, runErr)
		}
		report.Suite = append(report.Suite, benchEntry{
			Name:         name,
			SecondsPerOp: r.T.Seconds() / float64(r.N),
			Iterations:   r.N,
			CutRounds:    rounds,
		})
		fmt.Fprintf(os.Stderr, "bench %-28s %.3fs/op (%d runs)\n",
			name, r.T.Seconds()/float64(r.N), r.N)
		return nil
	}

	cut := func(rebuild bool) func() (int, error) {
		return func() (int, error) {
			info, err := eval.CutRound(eval.CutRoundOptions{Rebuild: rebuild, Workers: workers, Seed: 17})
			return info.CutRounds, err
		}
	}
	// Mirrors bench_test.go's BenchmarkTrainParallel: the Fig. 5 HAR cohort
	// with only the worker fan-out varying.
	fig5 := func(w int) func() (int, error) {
		return func() (int, error) {
			opts := eval.HAROptions{
				CohortOptions:  eval.CohortOptions{Trials: 3, Seed: 5, Lambda: 100, Cl: 1, Cu: 0.2, Workers: w},
				Users:          10,
				PerClass:       20,
				Dim:            120,
				ProviderCounts: []int{3, 6, 9},
				FixedProviders: 5,
				TrainingRates:  []float64{0.1, 0.25, 0.4},
			}
			_, _, err := eval.Fig5(opts)
			return 0, err
		}
	}

	// The pool arm uses fan-out 0 (the full GOMAXPROCS pool) under a fixed
	// name, so snapshots from machines with different core counts stay
	// comparable by entry name; the "cpus" field records the actual width.
	suite := []struct {
		name string
		fn   func() (int, error)
	}{
		{"CutRound/incremental", cut(false)},
		{"CutRound/rebuild", cut(true)},
		{"TrainParallel/workers=1", fig5(1)},
		{"TrainParallel/workers=pool", fig5(0)},
	}
	for _, s := range suite {
		if err := measure(s.name, s.fn); err != nil {
			return err
		}
	}

	report.Speedups = map[string]float64{
		"cutround_rebuild_over_incremental": report.Suite[1].SecondsPerOp / report.Suite[0].SecondsPerOp,
		"trainparallel_serial_over_pool":    report.Suite[2].SecondsPerOp / report.Suite[3].SecondsPerOp,
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	fmt.Fprintln(os.Stderr, "bench snapshot written to", path)
	return nil
}
