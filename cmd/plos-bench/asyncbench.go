package main

// The -async-json mode: the straggler scenario behind docs/ASYNC.md,
// committed as BENCH_9.json. Three arms train the reduced Fig. 5 HAR
// workload over in-process pipes:
//
//   sync-clean   lockstep wire protocol, healthy fleet — the reference
//                objective and the median device solve time,
//   sync-stale   lockstep with device 0 delayed 10x the median healthy
//                round and the round deadline just under that delay (the
//                smallest deadline at which the straggler's solutions keep
//                folding), so every round that launches the straggler
//                burns ~the whole delay before carrying it stale,
//   async        the DJAM mode with the same straggler: everyone else
//                keeps folding, the straggler's updates land damped.
//
// The generator enforces the headline bars instead of just reporting them:
// the async arm must finish at least 2x faster than sync-with-stale-reuse,
// land within 5% of the sync-clean objective, drop nobody, and its wall
// clock must stay bounded by the straggler's per-round delay — if the
// coordinator ever serializes on the slow device, the run fails.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"plos/internal/core"
	"plos/internal/eval"
	"plos/internal/obs"
	"plos/internal/protocol"
	"plos/internal/transport"
)

// asyncSchema versions the snapshot layout; checkperf requires the field.
const asyncSchema = "plos-bench/async-v1"

type asyncArm struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Objective   float64 `json:"objective"`
	Accuracy    float64 `json:"accuracy"`
	// ADMMRounds counts lockstep rounds in the sync arms and folded
	// updates in the async arm (the async plane has no round clock).
	ADMMRounds int `json:"admm_rounds"`
	CCCPRounds int `json:"cccp_rounds"`
	Drops      int `json:"drops"`
}

type asyncReport struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	// StragglerDelayMS is the injected per-update delay on device 0 (10x
	// the median healthy round measured in the sync-clean arm);
	// RoundTimeoutMS the sync-stale arm's deadline (0.9x the delay).
	StragglerDelayMS float64    `json:"straggler_delay_ms"`
	RoundTimeoutMS   float64    `json:"round_timeout_ms"`
	Arms             []asyncArm `json:"arms"`
	// Speedup is the headline bar: sync-stale wall over async wall (>= 2
	// enforced); ObjGapRel the async objective's relative gap to
	// sync-clean (<= 0.05 enforced).
	Speedup   float64 `json:"speedup"`
	ObjGapRel float64 `json:"obj_gap_rel"`
}

// slowDevice models a straggler whose solve takes `delay`: every MsgParams
// after the first sleeps before reaching the solver, so each reply lands
// `delay` after the coordinator asked for it. The first solve goes through
// clean so the lockstep arms can carry the device stale instead of
// blocking round 0 on a device with no solution at all.
type slowDevice struct {
	transport.Conn
	delay time.Duration
	mu    sync.Mutex
	seen  int
}

func (c *slowDevice) Recv() (transport.Message, error) {
	m, err := c.Conn.Recv()
	if err == nil && m.Type == transport.MsgParams {
		c.mu.Lock()
		c.seen++
		late := c.seen > 1
		c.mu.Unlock()
		if late {
			time.Sleep(c.delay)
		}
	}
	return m, err
}

// runAsyncArm trains one arm over pipes and reports its outcome. delay > 0
// throttles device 0. flight, when non-nil, receives the server's flight
// stream (used by the sync-clean arm to measure the median solve).
func runAsyncArm(users []core.UserData, truths [][]float64, cfg protocol.ServerConfig,
	name string, delay time.Duration, flight *strings.Builder) (asyncArm, error) {
	if flight != nil {
		reg := obs.NewRegistry()
		reg.SetFlightRecorder(obs.NewFlightRecorder(flight, 0))
		cfg.Core.Obs = reg
	}
	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		if i == 0 && delay > 0 {
			cc = &slowDevice{Conn: cc, delay: delay}
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			defer conn.Close()
			_, _ = protocol.RunClient(conn, users[i], protocol.ClientOptions{
				Seed: int64(i), Async: cfg.Async,
			})
		}(i, cc)
	}
	start := time.Now()
	res, err := protocol.RunServer(serverConns, cfg)
	wall := time.Since(start)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if err != nil {
		return asyncArm{}, fmt.Errorf("%s: %w", name, err)
	}
	arm := asyncArm{
		Name:        name,
		WallSeconds: wall.Seconds(),
		Objective:   res.Info.Objective,
		ADMMRounds:  res.Info.ADMMIterations,
		CCCPRounds:  res.Info.CCCPIterations,
	}
	for _, d := range res.Dropped {
		if d {
			arm.Drops++
		}
	}
	correct, total := 0, 0
	for t := range users {
		if res.Model.W[t] == nil {
			continue // dropped: no personalized hyperplane to score
		}
		for i, y := range truths[t] {
			pred := 1.0
			if res.Model.ScoreUser(t, users[t].X.Row(i)) < 0 {
				pred = -1
			}
			if pred == y {
				correct++
			}
			total++
		}
	}
	if total > 0 {
		arm.Accuracy = float64(correct) / float64(total)
	}
	return arm, nil
}

// medianRound extracts the median lockstep round duration from a flight
// stream's admm-round records. On parallel hardware a healthy round's wall
// is the median device solve; on a serialized single-core runner it is the
// whole fleet's, so calibrating the straggler against the measured round
// keeps the scenario honest on both.
func medianRound(stream string) (time.Duration, error) {
	var durs []int64
	for _, line := range strings.Split(stream, "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Rec   string `json:"rec"`
			DurNS int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return 0, fmt.Errorf("flight stream: %w", err)
		}
		if rec.Rec == "admm-round" && rec.DurNS > 0 {
			durs = append(durs, rec.DurNS)
		}
	}
	if len(durs) == 0 {
		return 0, fmt.Errorf("flight stream carries no round durations")
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return time.Duration(durs[len(durs)/2]), nil
}

// asyncBenchConfig is the shared training configuration of the three arms;
// only FT/Async differ per arm.
func asyncBenchConfig(seed int64) protocol.ServerConfig {
	return protocol.ServerConfig{
		Core: core.Config{
			Lambda: 100, Cl: 1, Cu: 0.2, Seed: seed,
			MaxCCCPIter: 3, MaxCutIter: 20, QPMaxIter: 800,
		},
		Dist: core.DistConfig{MaxADMMIter: 12, EpsAbs: 1e-2},
	}
}

// runAsyncJSON runs the straggler scenario and writes the snapshot,
// enforcing the headline bars (see the package comment above).
func runAsyncJSON(path string, seed int64) error {
	users, truths, err := eval.HARCohort(eval.CompressionOptions{
		CohortOptions: eval.CohortOptions{Trials: 1, Seed: seed, Lambda: 100, Cl: 1, Cu: 0.2},
	})
	if err != nil {
		return fmt.Errorf("async-json: %w", err)
	}

	var flight strings.Builder
	clean, err := runAsyncArm(users, truths, asyncBenchConfig(seed), "sync-clean", 0, &flight)
	if err != nil {
		return fmt.Errorf("async-json: %w", err)
	}
	median, err := medianRound(flight.String())
	if err != nil {
		return fmt.Errorf("async-json: %w", err)
	}
	if median < time.Millisecond {
		// Floor against degenerate schedulers: the scenario needs a delay
		// that dwarfs transport noise.
		median = time.Millisecond
	}
	delay := 10 * median

	staleCfg := asyncBenchConfig(seed)
	staleCfg.FT = protocol.FTConfig{
		// The most generous deadline that still carries the straggler stale
		// instead of serializing every round on it: just under the injected
		// delay. Every round that launches the straggler burns ~the whole
		// deadline before reusing its stale solution; its late replies land
		// after the round closed and are discarded, the lockstep protocol's
		// documented behavior.
		RoundTimeout: delay * 98 / 100,
		MaxStale:     1 << 20, // carried forever, never dropped
	}
	stale, err := runAsyncArm(users, truths, staleCfg, "sync-stale", delay, nil)
	if err != nil {
		return fmt.Errorf("async-json: %w", err)
	}

	asyncCfg := asyncBenchConfig(seed)
	asyncCfg.Async = true
	asyncCfg.FT = protocol.FTConfig{MaxStale: 8} // DJAM damping floor γ = 1/9
	async, err := runAsyncArm(users, truths, asyncCfg, "async", delay, nil)
	if err != nil {
		return fmt.Errorf("async-json: %w", err)
	}

	report := asyncReport{
		Schema:           asyncSchema,
		Workload:         "fig5-har reduced (10 users x 24 samples x dim 120, 5 providers @ 25%), device 0 delayed 10x the median healthy round",
		StragglerDelayMS: float64(delay) / 1e6,
		RoundTimeoutMS:   float64(staleCfg.FT.RoundTimeout) / 1e6,
		Arms:             []asyncArm{clean, stale, async},
		Speedup:          stale.WallSeconds / async.WallSeconds,
		ObjGapRel:        relGap(async.Objective, clean.Objective),
	}
	for _, a := range report.Arms {
		fmt.Fprintf(os.Stderr, "async %-10s wall=%7.3fs obj=%.4f acc=%.3f admm=%d drops=%d\n",
			a.Name, a.WallSeconds, a.Objective, a.Accuracy, a.ADMMRounds, a.Drops)
	}

	if stale.Drops > 0 || async.Drops > 0 {
		return fmt.Errorf("async-json: straggler was dropped (sync-stale %d, async %d drops); the scenario requires no quorum aborts",
			stale.Drops, async.Drops)
	}
	if report.Speedup < 2 {
		return fmt.Errorf("async-json: async wall %.3fs is only %.2fx faster than sync-stale %.3fs, want >= 2x",
			async.WallSeconds, report.Speedup, stale.WallSeconds)
	}
	if report.ObjGapRel > 0.05 {
		return fmt.Errorf("async-json: async objective gap %.4f vs sync-clean, want <= 0.05", report.ObjGapRel)
	}
	// The async plane must not serialize on the straggler: one delayed
	// reply per CCCP round (plus handshake/drain slack) is the worst case.
	bound := float64(async.CCCPRounds+2)*delay.Seconds() + 3*clean.WallSeconds
	if async.WallSeconds > bound {
		return fmt.Errorf("async-json: async wall %.3fs exceeds the straggler bound %.3fs — the coordinator is serializing on the slow device",
			async.WallSeconds, bound)
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("async-json: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("async-json: %w", err)
	}
	fmt.Fprintln(os.Stderr, "async snapshot written to", path)
	return nil
}

func relGap(got, ref float64) float64 {
	gap := got - ref
	if gap < 0 {
		gap = -gap
	}
	den := ref
	if den < 0 {
		den = -den
	}
	if den < 1e-9 {
		den = 1e-9
	}
	return gap / den
}
