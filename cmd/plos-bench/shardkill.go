package main

// The -shard-kill variant of -shard-json: the self-healing acceptance
// scenario of the shard fault-tolerance tier (docs/FAULT_TOLERANCE.md,
// docs/SHARDING.md §failure modes). The parent runs the aggregator with
// shard-FT enabled (quorum of shards-1, unbounded stale carry, rejoin
// accept), SIGKILLs shard 0 once its epoch-1 checkpoint is on disk, respawns
// it from that checkpoint, and records the wall-clock time from the kill to
// the restored shard's rejoin hello. The snapshot — schema v2, a v1 report
// plus the `recovery` block — is committed as BENCH_8.json.
//
// The kill is sequenced by a parent-side gate on the aggregator↔shard
// connections rather than by timing: once the aggregator announces CCCP
// round 1 to the victim, every healthy shard's messages are held at the
// parent until the rejoin hello has been queued. The open reduce leg keeps
// the round from closing, so the run cannot finish before the victim is
// back — at any scale, on any machine.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"plos/internal/obs"
	"plos/internal/protocol"
	"plos/internal/transport"
)

// shardKillSchema versions the kill-and-recover snapshot layout: shard-v1
// plus the `recovery` object.
const shardKillSchema = "plos-bench/shard-v2"

// shardRecovery is the `recovery` block of a schema-v2 snapshot.
type shardRecovery struct {
	// KilledShard is the victim's shard id; Restarts the number of shards
	// re-attached through the checkpoint-restore rejoin handshake (1 when
	// the scenario worked).
	KilledShard int `json:"killed_shard"`
	Restarts    int `json:"shard_restarts"`
	// RejoinSeconds is time-to-rejoin: SIGKILL to the restored shard's
	// rejoin hello reaching the aggregator (process respawn + checkpoint
	// load + device restore handshake + dial).
	RejoinSeconds float64 `json:"rejoin_seconds"`
	// StaleReduces counts reduce legs folded from the victim's carried
	// partials while it was down (shard_stale_reduces_total).
	StaleReduces int64 `json:"stale_reduces"`
}

// killGate sequences the scenario from the parent, which proxies no traffic
// but wraps every aggregator-side connection. armed closes when the
// aggregator announces CCCP round 1 to the victim (the announce is what
// makes the victim write its epoch-1 checkpoint); from then on each healthy
// shard's delivered messages are held until release closes (the restarted
// shard's rejoin hello is queued).
type killGate struct {
	victim  int
	armed   chan struct{}
	release chan struct{}
	armOnce sync.Once
	relOnce sync.Once
}

func (g *killGate) arm()  { g.armOnce.Do(func() { close(g.armed) }) }
func (g *killGate) free() { g.relOnce.Do(func() { close(g.release) }) }

// gatedConn identifies its shard from the first received message (the
// shard hello carries the id in Round) and applies the gate's hold to
// healthy shards only.
type gatedConn struct {
	transport.Conn
	g *killGate

	mu    sync.Mutex
	shard int // -1 until the hello identifies it
}

func newGatedConn(c transport.Conn, g *killGate) *gatedConn {
	return &gatedConn{Conn: c, g: g, shard: -1}
}

func (c *gatedConn) id() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shard
}

func (c *gatedConn) Recv() (transport.Message, error) {
	m, err := c.Conn.Recv()
	if err != nil {
		return m, err
	}
	c.mu.Lock()
	if c.shard == -1 && m.Type == transport.MsgShardHello {
		c.shard = m.Round
	}
	id := c.shard
	c.mu.Unlock()
	if id != c.g.victim {
		select {
		case <-c.g.armed:
			<-c.g.release
		default:
		}
	}
	return m, nil
}

func (c *gatedConn) Send(m transport.Message) error {
	if c.id() == c.g.victim && m.Type == transport.MsgShardRound && m.Round >= 1 {
		c.g.arm()
	}
	return c.Conn.Send(m)
}

// runShardKillJSON runs the kill-and-recover scenario and writes the
// schema-v2 snapshot to o.shardJSON.
func runShardKillJSON(o benchOptions) error {
	shards, devices, seed := o.shardCount, o.shardDevices, o.seed
	if shards < 2 {
		return fmt.Errorf("shard-kill: need at least 2 shards, got %d", shards)
	}
	if devices < shards {
		return fmt.Errorf("shard-kill: need at least one device per shard")
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("shard-kill: %w", err)
	}
	tmp, err := os.MkdirTemp("", "plos-bench-kill")
	if err != nil {
		return fmt.Errorf("shard-kill: %w", err)
	}
	defer os.RemoveAll(tmp)
	ckpt := filepath.Join(tmp, "shard0.ckpt")
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shard-kill: %w", err)
	}
	defer l.Close()

	const victim = 0
	specs := make([]string, shards)
	cmds := make([]*exec.Cmd, shards)
	from := 0
	for s := 0; s < shards; s++ {
		n := devices / shards
		if s < devices%shards {
			n++
		}
		specs[s] = fmt.Sprintf("%d:%d:%d:%d:%s", s, from, from+n, seed, l.Addr())
		if s == victim {
			specs[s] += "|" + ckpt
		}
		if cmds[s], err = spawnWorker(exe, specs[s]); err != nil {
			return fmt.Errorf("shard-kill: spawn shard %d: %w", s, err)
		}
		from += n
	}
	fmt.Fprintf(os.Stderr, "shard-kill: %d devices across %d shard processes on %s; shard %d will be killed at round 1\n",
		devices, shards, l.Addr(), victim)

	conns, err := l.AcceptN(shards)
	if err != nil {
		return fmt.Errorf("shard-kill: %w", err)
	}
	g := &killGate{victim: victim, armed: make(chan struct{}), release: make(chan struct{})}
	wired := make([]transport.Conn, len(conns))
	for i, c := range conns {
		wired[i] = newGatedConn(c, g)
	}

	cfg, dist := shardBenchConfig(seed)
	// Budget past the outage: round 0 runs clean, the kill lands in round 1,
	// and the restored shard needs clean rounds after its rejoin to re-solve
	// its devices. The tiny tolerance keeps CCCP from declaring convergence
	// while the victim is down (the degraded-round guard skips the carried
	// rounds — see internal/optimize.CCCPResumeGuarded).
	cfg.MaxCCCPIter = 5
	cfg.CCCPTol = 1e-12
	reg := obs.NewRegistry()
	cfg.Obs = reg

	var mu sync.Mutex
	var killedAt, rejoinedAt time.Time

	// Rejoin accept loop: first message off a new connection is the restored
	// shard's rejoin hello. Queueing it releases the gate.
	rejoins := make(chan protocol.Rejoin, 1)
	stopAccept := make(chan struct{})
	var stopOnce sync.Once
	stopAcceptNow := func() { stopOnce.Do(func() { close(stopAccept) }) }
	defer stopAcceptNow()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return // listener closed: the run is over
			}
			go func(c transport.Conn) {
				m, err := c.Recv()
				if err != nil {
					_ = c.Close()
					return
				}
				mu.Lock()
				if rejoinedAt.IsZero() {
					rejoinedAt = time.Now()
				}
				mu.Unlock()
				select {
				case rejoins <- protocol.Rejoin{Conn: c, Hello: m}:
					g.free()
				case <-stopAccept:
					_ = c.Close()
				}
			}(c)
		}
	}()

	// Killer: once armed, wait for the epoch-1 checkpoint (the held round
	// cannot close in the meantime), SIGKILL the victim, respawn it from the
	// checkpoint. The gate stays held until the restored shard's rejoin
	// hello is queued — only a failure releases it early, so the run ends
	// (and the missing restart is reported below) instead of hanging.
	done := make(chan struct{})
	killErr := make(chan error, 1)
	respawned := make(chan *exec.Cmd, 1)
	go func() {
		err := func() error {
			select {
			case <-g.armed:
			case <-done:
				return nil // the run failed before round 1
			}
			deadline := time.Now().Add(time.Minute)
			for {
				if ck, err := protocol.LoadCheckpoint(ckpt); err == nil && ck.Epoch >= 1 {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("shard-kill: shard %d never wrote its epoch-1 checkpoint", victim)
				}
				time.Sleep(2 * time.Millisecond)
			}
			mu.Lock()
			killedAt = time.Now()
			mu.Unlock()
			if err := cmds[victim].Process.Kill(); err != nil {
				return fmt.Errorf("shard-kill: kill shard %d: %w", victim, err)
			}
			_ = cmds[victim].Wait()
			fmt.Fprintf(os.Stderr, "shard-kill: shard %d killed, respawning from %s\n", victim, ckpt)
			cmd, err := spawnWorker(exe, specs[victim])
			if err != nil {
				return fmt.Errorf("shard-kill: respawn shard %d: %w", victim, err)
			}
			respawned <- cmd
			// Failsafe: if the respawned worker dies before its rejoin hello
			// arrives, release the gate after a grace period so the run
			// finishes and the missing restart is reported.
			go func() {
				select {
				case <-g.release:
				case <-done:
					g.free()
				case <-time.After(2 * time.Minute):
					g.free()
				}
			}()
			return nil
		}()
		if err != nil {
			g.free()
		}
		killErr <- err
	}()

	start := time.Now()
	res, aggErr := protocol.RunAggregator(wired, protocol.AggConfig{
		Core: cfg, Dist: dist,
		FT: protocol.AggFTConfig{ShardQuorum: shards - 1, MaxStale: 1 << 20, Rejoin: rejoins},
	})
	wall := time.Since(start)
	close(done)
	if err := <-killErr; err != nil && aggErr == nil {
		aggErr = err
	}
	// Training is over: stop accepting, make in-flight queuers close their
	// connections (stopAccept), and drain anything already queued so a
	// straggling rejoin cannot leave a worker blocked on a reply forever.
	l.Close()
	stopAcceptNow()
	select {
	case rj := <-rejoins:
		_ = rj.Conn.Close()
	default:
	}
	for s, cmd := range cmds {
		if s == victim {
			continue // first incarnation already reaped by the killer
		}
		if werr := cmd.Wait(); werr != nil && aggErr == nil {
			aggErr = fmt.Errorf("shard worker %d: %w", s, werr)
		}
	}
	select {
	case cmd := <-respawned:
		// Keep draining late rejoin hellos while reaping: closing their
		// connections is what unblocks a worker that queued one after the
		// aggregator's final drain.
		waitDone := make(chan error, 1)
		go func() { waitDone <- cmd.Wait() }()
	reap:
		for {
			select {
			case werr := <-waitDone:
				if werr != nil && aggErr == nil {
					aggErr = fmt.Errorf("restarted shard worker %d: %w", victim, werr)
				}
				break reap
			case rj := <-rejoins:
				_ = rj.Conn.Close()
			}
		}
	default:
	}
	if aggErr != nil {
		return fmt.Errorf("shard-kill: %w", aggErr)
	}
	if res.Users != devices {
		return fmt.Errorf("shard-kill: aggregator saw %d users, want %d", res.Users, devices)
	}
	if res.Restarts != 1 {
		return fmt.Errorf("shard-kill: %d checkpoint-restore rejoins, want 1 (the killed shard never came back)", res.Restarts)
	}
	if res.ShardCauses[victim] == nil {
		return fmt.Errorf("shard-kill: no detach cause recorded for the killed shard")
	}
	mu.Lock()
	rejoin := rejoinedAt.Sub(killedAt)
	mu.Unlock()
	if rejoin <= 0 {
		return fmt.Errorf("shard-kill: rejoin time not measured (killed %v, rejoined %v)", killedAt, rejoinedAt)
	}

	report := shardReport{
		Schema: shardKillSchema, CPU: runtime.NumCPU(),
		Devices: devices, Shards: shards,
		Rounds: res.Info.CCCPIterations, ADMMIters: res.Info.ADMMIterations,
		Converged: res.Info.CCCPConverged, Objective: res.Info.Objective,
		WallSeconds:  wall.Seconds(),
		AggLinkBytes: res.Total.BytesSent + res.Total.BytesReceived,
		Recovery: &shardRecovery{
			KilledShard:   victim,
			Restarts:      res.Restarts,
			RejoinSeconds: rejoin.Seconds(),
			StaleReduces:  reg.CounterValue(obs.MetricShardStaleReduces),
		},
	}
	for _, s := range res.PerShard {
		report.PerShardBytes = append(report.PerShardBytes, s.BytesSent+s.BytesReceived)
	}
	if err := writeShardReport(o.shardJSON, &report); err != nil {
		return fmt.Errorf("shard-kill: %w", err)
	}
	fmt.Fprintf(os.Stderr,
		"shard-kill: %d rounds, shard %d detached (%v), %d stale reduces, rejoined in %.3fs; run finished in %.1fs\n",
		report.Rounds, victim, res.ShardCauses[victim], report.Recovery.StaleReduces,
		report.Recovery.RejoinSeconds, report.WallSeconds)
	fmt.Fprintln(os.Stderr, "shard snapshot written to", o.shardJSON)
	return nil
}
