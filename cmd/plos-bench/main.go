// plos-bench regenerates the paper's evaluation figures (Figures 3–13) and
// the repo's ablations, printing each panel as an aligned table.
//
// Default sizes are reduced so every figure completes in seconds-to-minutes
// on a laptop; pass -full for the paper-scale cohorts (20 subjects × 70
// segments, 30 HAR users × 561 dims, populations up to 100 users).
//
//	plos-bench -fig 3          # one figure
//	plos-bench -fig all        # everything
//	plos-bench -fig ablations  # DESIGN.md §5 ablations
//	plos-bench -fig 8 -full -trials 5
//	plos-bench -fig 11 -metrics-json out.json   # solver/transport metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"plos/internal/eval"
	"plos/internal/obs"
	"plos/internal/parallel"
)

func main() {
	// A child spawned by -shard-json re-enters here as a shard worker.
	if spec := os.Getenv(shardWorkerEnv); spec != "" {
		if err := runShardWorker(spec); err != nil {
			fmt.Fprintln(os.Stderr, "plos-bench:", err)
			os.Exit(1)
		}
		return
	}
	var o benchOptions
	flag.StringVar(&o.fig, "fig", "all", "figure to regenerate: 3..13, 'ablations', or 'all'")
	flag.BoolVar(&o.full, "full", false, "paper-scale cohorts (slow)")
	flag.IntVar(&o.trials, "trials", 0, "trials per point (default 3, or 1 when reduced)")
	flag.Int64Var(&o.seed, "seed", 1, "experiment seed")
	flag.Float64Var(&o.lambda, "lambda", 100, "PLOS lambda")
	flag.IntVar(&o.workers, "workers", 0, "goroutine fan-out (0 = GOMAXPROCS, 1 = sequential); figure values are identical either way")
	flag.StringVar(&o.format, "format", "table", "output format: table | csv")
	flag.StringVar(&o.metricsJSON, "metrics-json", "",
		"write the aggregate solver/transport metrics of the whole run to this JSON file")
	flag.StringVar(&o.benchJSON, "bench-json", "",
		"run the perf-trajectory suite (CutRound, TrainParallel) instead of figures and write the snapshot to this JSON file")
	flag.StringVar(&o.asyncJSON, "async-json", "",
		"run the asynchronous-wire straggler scenario (docs/ASYNC.md) instead of figures and write the snapshot to this JSON file")
	flag.StringVar(&o.compressJSON, "compress-json", "",
		"run the codec-v4 accuracy-vs-bytes sweep (Fig. 5 workload, one run per compression scheme) instead of figures and write the snapshot to this JSON file")
	flag.StringVar(&o.shardJSON, "shard-json", "",
		"run the sharded serving-plane scale scenario (docs/SHARDING.md) instead of figures and write the snapshot to this JSON file")
	flag.IntVar(&o.shardDevices, "shard-devices", 10000, "total simulated devices for -shard-json")
	flag.IntVar(&o.shardCount, "shard-count", 2, "shard worker processes for -shard-json (>= 2)")
	flag.BoolVar(&o.shardKill, "shard-kill", false,
		"with -shard-json: SIGKILL shard 0 mid-run and measure the checkpoint-restore rejoin (schema v2 snapshot)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "plos-bench:", err)
		os.Exit(1)
	}
}

type benchOptions struct {
	fig          string
	full         bool
	trials       int
	seed         int64
	lambda       float64
	workers      int
	format       string
	metricsJSON  string
	benchJSON    string
	asyncJSON    string
	compressJSON string
	shardJSON    string
	shardDevices int
	shardCount   int
	shardKill    bool
}

func run(o benchOptions) error {
	if o.benchJSON != "" {
		return runBenchJSON(o.benchJSON, o.workers)
	}
	if o.shardJSON != "" {
		if o.shardKill {
			return runShardKillJSON(o)
		}
		return runShardJSON(o)
	}
	if o.asyncJSON != "" {
		return runAsyncJSON(o.asyncJSON, o.seed)
	}
	if o.compressJSON != "" {
		return runCompressJSON(o.compressJSON, o.seed, o.workers)
	}
	fig, full, trials, seed, lambda, workers, format :=
		o.fig, o.full, o.trials, o.seed, o.lambda, o.workers, o.format
	if format != "table" && format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	if trials <= 0 {
		if full {
			trials = 3
		} else {
			trials = 1
		}
	}
	cohort := eval.CohortOptions{Trials: trials, Seed: seed, Lambda: lambda, Cl: 1, Cu: 0.2, Workers: workers}
	var reg *obs.Registry
	if o.metricsJSON != "" {
		reg = obs.NewRegistry()
		parallel.SetMetrics(reg.PoolMetrics())
		defer parallel.SetMetrics(nil)
		cohort.Obs = reg
	}

	body := eval.BodyOptions{CohortOptions: cohort}
	harOpt := eval.HAROptions{CohortOptions: cohort}
	synth := eval.SynthOptions{CohortOptions: cohort}
	scale := eval.ScaleOptions{CohortOptions: cohort}
	if !full {
		body.Subjects, body.Segments = 10, 20
		body.ProviderCounts = []int{2, 4, 6, 8}
		body.FixedProviders = 5
		harOpt.Users, harOpt.PerClass, harOpt.Dim = 12, 25, 120
		harOpt.ProviderCounts = []int{3, 6, 9, 12}
		harOpt.FixedProviders = 6
		harOpt.LogLambdas = []float64{0, 1, 2, 3, 4}
		synth.UsersCount, synth.PerClass = 10, 60
		scale.UserCounts = []int{5, 10, 20, 40}
		scale.PerClass = 25
	}

	type panels func() ([]eval.Figure, error)
	two := func(f func() (eval.Figure, eval.Figure, error)) panels {
		return func() ([]eval.Figure, error) {
			a, b, err := f()
			return []eval.Figure{a, b}, err
		}
	}
	one := func(f func() (eval.Figure, error)) panels {
		return func() ([]eval.Figure, error) {
			a, err := f()
			return []eval.Figure{a}, err
		}
	}
	figures := map[string]panels{
		"3":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig3(body) }),
		"4":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig4(body) }),
		"5":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig5(harOpt) }),
		"6":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig6(harOpt) }),
		"7":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig7(harOpt) }),
		"8":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig8(synth) }),
		"9":      two(func() (eval.Figure, eval.Figure, error) { return eval.Fig9(synth) }),
		"10":     two(func() (eval.Figure, eval.Figure, error) { return eval.Fig10(synth) }),
		"11":     two(func() (eval.Figure, eval.Figure, error) { return eval.Fig11(scale) }),
		"12":     one(func() (eval.Figure, error) { return eval.Fig12(scale) }),
		"13":     one(func() (eval.Figure, error) { return eval.Fig13(scale) }),
		"energy": one(func() (eval.Figure, error) { return eval.EnergyComparison(scale) }),
		"ablations": func() ([]eval.Figure, error) {
			var out []eval.Figure
			for _, run := range []func(eval.SynthOptions) (eval.Figure, error){
				eval.AblationCu,
				eval.AblationWarmSets,
				eval.AblationBalanceGuard,
				eval.AblationAsync,
			} {
				f, err := run(synth)
				if err != nil {
					return nil, err
				}
				out = append(out, f)
			}
			return out, nil
		},
	}

	order := []string{"3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "energy", "ablations"}
	var selected []string
	if fig == "all" {
		selected = order
	} else {
		if _, ok := figures[fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 3..13, 'energy', 'ablations', or 'all')", fig)
		}
		selected = []string{fig}
	}
	// Per-figure fan-out: independent figures run concurrently; outputs are
	// gathered by position and printed in the canonical order. The timing
	// figures (12, energy) measure wall clock, so they run sequentially
	// after the pool drains instead of contending with the others.
	timing := map[string]bool{"12": true, "energy": true}
	var pooled, timed []int
	for i, id := range selected {
		if timing[id] {
			timed = append(timed, i)
		} else {
			pooled = append(pooled, i)
		}
	}
	results := make([][]eval.Figure, len(selected))
	if err := parallel.For(workers, len(pooled), func(k int) error {
		i := pooled[k]
		out, err := figures[selected[i]]()
		if err != nil {
			return fmt.Errorf("figure %s: %w", selected[i], err)
		}
		results[i] = out
		return nil
	}); err != nil {
		return err
	}
	for _, i := range timed {
		out, err := figures[selected[i]]()
		if err != nil {
			return fmt.Errorf("figure %s: %w", selected[i], err)
		}
		results[i] = out
	}
	for _, out := range results {
		for _, f := range out {
			if format == "csv" {
				fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
			} else {
				fmt.Println(f.Format())
			}
		}
	}
	if reg != nil {
		f, err := os.Create(o.metricsJSON)
		if err != nil {
			return fmt.Errorf("metrics-json: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("metrics-json: %w", err)
		}
		fmt.Fprintln(os.Stderr, "metrics written to", o.metricsJSON)
	}
	return nil
}
