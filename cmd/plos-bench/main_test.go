package main

import (
	"encoding/json"
	"os"
	"testing"

	"plos/internal/eval"
	"plos/internal/obs"
)

func bench(fig, format string) benchOptions {
	return benchOptions{fig: fig, full: false, trials: 1, seed: 1, lambda: 100, format: format}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run(bench("9", "xml")); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(bench("99", "table")); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunSingleFigureReduced(t *testing.T) {
	// Smoke: regenerate one cheap figure end to end through the CLI path.
	if err := run(bench("9", "csv")); err != nil {
		t.Fatalf("run fig 9: %v", err)
	}
}

func TestRunAblationsReduced(t *testing.T) {
	if err := run(bench("ablations", "table")); err != nil {
		t.Fatalf("run ablations: %v", err)
	}
}

func TestBenchJSONSchema(t *testing.T) {
	// Shape-only check against a hand-built report: the real suite takes
	// minutes (TestRunBenchJSON below runs it behind PLOS_BENCH_E2E).
	rep := benchReport{Schema: benchSchema, CPU: 1,
		Suite:    []benchEntry{{Name: "CutRound/incremental", SecondsPerOp: 1, Iterations: 1, CutRounds: 30}},
		Speedups: map[string]float64{"cutround_rebuild_over_incremental": 2}}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["schema"] != benchSchema {
		t.Errorf("schema field = %v", back["schema"])
	}
}

func TestRunBenchJSON(t *testing.T) {
	if os.Getenv("PLOS_BENCH_E2E") == "" {
		t.Skip("set PLOS_BENCH_E2E=1 to run the full perf-trajectory suite")
	}
	path := t.TempDir() + "/bench.json"
	o := bench("all", "table")
	o.benchJSON = path
	if err := run(o); err != nil {
		t.Fatalf("run with -bench-json: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if rep.Schema != benchSchema || len(rep.Suite) != 4 {
		t.Fatalf("unexpected snapshot: %+v", rep)
	}
	for _, e := range rep.Suite[:2] {
		if e.CutRounds < 20 {
			t.Errorf("%s: only %d cut rounds", e.Name, e.CutRounds)
		}
	}
	if s := rep.Speedups["cutround_rebuild_over_incremental"]; s < 2 {
		t.Errorf("cut-round cache speedup %.2fx < 2x", s)
	}
}

func TestCompressJSONSchema(t *testing.T) {
	// Shape-only check; TestRunCompressJSON runs the real sweep behind
	// PLOS_BENCH_E2E.
	rep := compressReport{Schema: compressSchema, Workload: "w",
		Points: []eval.CompressionPoint{{Scheme: "q8", Ratio: 7, Accuracy: 0.8}}}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["schema"] != compressSchema {
		t.Errorf("schema field = %v", back["schema"])
	}
}

func TestRunCompressJSON(t *testing.T) {
	if os.Getenv("PLOS_BENCH_E2E") == "" {
		t.Skip("set PLOS_BENCH_E2E=1 to run the accuracy-vs-bytes sweep")
	}
	path := t.TempDir() + "/compress.json"
	o := bench("all", "table")
	o.compressJSON = path
	if err := run(o); err != nil {
		t.Fatalf("run with -compress-json: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep compressReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if rep.Schema != compressSchema || len(rep.Points) < 2 || rep.Points[0].Scheme != "dense" {
		t.Fatalf("unexpected snapshot: %+v", rep)
	}
}

func TestAsyncJSONSchema(t *testing.T) {
	// Shape-only check; TestRunAsyncJSON runs the three straggler arms
	// behind PLOS_BENCH_E2E.
	rep := asyncReport{Schema: asyncSchema, Workload: "w",
		StragglerDelayMS: 100, RoundTimeoutMS: 98,
		Arms: []asyncArm{{Name: "async", WallSeconds: 0.2, Objective: 0.8,
			Accuracy: 0.84, ADMMRounds: 240, CCCPRounds: 3}},
		Speedup: 2.9, ObjGapRel: 0.013}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back["schema"] != asyncSchema {
		t.Errorf("schema field = %v", back["schema"])
	}
	if back["speedup"].(float64) != 2.9 {
		t.Errorf("speedup field = %v", back["speedup"])
	}
}

func TestRunAsyncJSON(t *testing.T) {
	if os.Getenv("PLOS_BENCH_E2E") == "" {
		t.Skip("set PLOS_BENCH_E2E=1 to run the straggler scenario")
	}
	path := t.TempDir() + "/async.json"
	o := bench("all", "table")
	o.asyncJSON = path
	if err := run(o); err != nil {
		t.Fatalf("run with -async-json: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep asyncReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if rep.Schema != asyncSchema || len(rep.Arms) != 3 || rep.Speedup < 2 {
		t.Fatalf("unexpected snapshot: %+v", rep)
	}
}

func TestRunMetricsJSON(t *testing.T) {
	path := t.TempDir() + "/metrics.json"
	o := bench("9", "csv")
	o.metricsJSON = path
	if err := run(o); err != nil {
		t.Fatalf("run with -metrics-json: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file missing: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file not JSON: %v", err)
	}
	for _, name := range []string{obs.MetricTrainRuns, obs.MetricCCCPIterations, obs.MetricQPSolves} {
		v, ok := snap[name].(float64)
		if !ok || v == 0 {
			t.Errorf("metrics JSON missing nonzero %s (got %v)", name, snap[name])
		}
	}
}
