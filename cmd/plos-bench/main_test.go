package main

import (
	"encoding/json"
	"os"
	"testing"

	"plos/internal/obs"
)

func bench(fig, format string) benchOptions {
	return benchOptions{fig: fig, full: false, trials: 1, seed: 1, lambda: 100, format: format}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run(bench("9", "xml")); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(bench("99", "table")); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunSingleFigureReduced(t *testing.T) {
	// Smoke: regenerate one cheap figure end to end through the CLI path.
	if err := run(bench("9", "csv")); err != nil {
		t.Fatalf("run fig 9: %v", err)
	}
}

func TestRunAblationsReduced(t *testing.T) {
	if err := run(bench("ablations", "table")); err != nil {
		t.Fatalf("run ablations: %v", err)
	}
}

func TestRunMetricsJSON(t *testing.T) {
	path := t.TempDir() + "/metrics.json"
	o := bench("9", "csv")
	o.metricsJSON = path
	if err := run(o); err != nil {
		t.Fatalf("run with -metrics-json: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file missing: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file not JSON: %v", err)
	}
	for _, name := range []string{obs.MetricTrainRuns, obs.MetricCCCPIterations, obs.MetricQPSolves} {
		v, ok := snap[name].(float64)
		if !ok || v == 0 {
			t.Errorf("metrics JSON missing nonzero %s (got %v)", name, snap[name])
		}
	}
}
