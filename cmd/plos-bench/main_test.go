package main

import "testing"

func TestRunUnknownFormat(t *testing.T) {
	if err := run("9", false, 1, 1, 100, 0, "xml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99", false, 1, 1, 100, 0, "table"); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestRunSingleFigureReduced(t *testing.T) {
	// Smoke: regenerate one cheap figure end to end through the CLI path.
	if err := run("9", false, 1, 1, 100, 0, "csv"); err != nil {
		t.Fatalf("run fig 9: %v", err)
	}
}

func TestRunAblationsReduced(t *testing.T) {
	if err := run("ablations", false, 1, 1, 100, 0, "table"); err != nil {
		t.Fatalf("run ablations: %v", err)
	}
}
