package main

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureNow is the frozen clock matching the timestamps in testdata.
var fixtureNow = time.Date(2026, 8, 1, 12, 5, 0, 0, time.UTC)

// fixtureServer serves the testdata fixtures on the two polled endpoints
// (health omitted when withHealth is false, to model a pre-health server).
func fixtureServer(t *testing.T, withHealth bool) *httptest.Server {
	t.Helper()
	serveFile := func(name string) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			b, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Errorf("fixture %s: %v", name, err)
				http.Error(w, err.Error(), 500)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(b)
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", serveFile("vars.json"))
	if withHealth {
		mux.Handle("/debug/health", serveFile("health.json"))
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestSnapshotGolden(t *testing.T) {
	srv := fixtureServer(t, true)
	out, err := snapshot(srv.Client(), srv.URL, "fixture:9090", fixtureNow)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if out != string(want) {
		t.Fatalf("render drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

func TestSnapshotWithoutHealthEndpoint(t *testing.T) {
	srv := fixtureServer(t, false)
	out, err := snapshot(srv.Client(), srv.URL, "fixture:9090", fixtureNow)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if !strings.Contains(out, "health: unavailable") {
		t.Fatalf("missing health-unavailable note in:\n%s", out)
	}
	if !strings.Contains(out, "objective 84.25") {
		t.Fatalf("metric rows must still render without health:\n%s", out)
	}
}

func TestRunOnce(t *testing.T) {
	srv := fixtureServer(t, true)
	var buf strings.Builder
	if err := run(&buf, srv.URL, time.Second, true); err != nil {
		t.Fatalf("run -once: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "\x1b[") {
		t.Fatal("-once output must not contain ANSI control sequences")
	}
	for _, want := range []string{"plos-top", "fleet degraded", "shard:0", "detached: agg link: EOF"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-once output missing %q:\n%s", want, out)
		}
	}
}

func TestRunOnceUnreachable(t *testing.T) {
	if err := run(&strings.Builder{}, "127.0.0.1:1", time.Second, true); err == nil {
		t.Fatal("run -once against a dead endpoint must fail")
	}
}

func TestVarsWithoutPlos(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"cmdline":[]}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if _, err := snapshot(srv.Client(), srv.URL, "x", fixtureNow); err == nil ||
		!strings.Contains(err.Error(), `"plos"`) {
		t.Fatalf("want missing-plos error, got %v", err)
	}
}

func TestSpark(t *testing.T) {
	if got := spark(nil); got != "-" {
		t.Fatalf("spark(nil) = %q", got)
	}
	if got := spark([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("spark(zeros) = %q", got)
	}
	got := spark([]float64{0, 1, 2, 4})
	r := []rune(got)
	if len(r) != 4 || r[0] != '▁' || r[3] != '█' {
		t.Fatalf("spark scaling wrong: %q", got)
	}
}
