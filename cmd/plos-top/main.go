// plos-top is a polling terminal dashboard over a plos-server ops endpoint
// (-metrics-addr): it reads /debug/vars (the expvar metric snapshot) and
// /debug/health (the health engine's component tree) and renders fleet
// state, per-shard and per-device health, the live objective trajectory and
// staleness/retry sparklines.
//
//	plos-top -addr localhost:9090             # live, redraws every 2s
//	plos-top -addr localhost:9090 -once      # one snapshot to stdout (CI)
//
// Against a server without the health plane (no /debug/health), the health
// sections degrade to "health: unavailable" and the metric rows still
// render.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"plos/internal/obs/health"
)

func main() {
	addr := flag.String("addr", "localhost:9090", "plos-server -metrics-addr endpoint to poll")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval in live mode")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	flag.Parse()
	if err := run(os.Stdout, *addr, *interval, *once); err != nil {
		fmt.Fprintln(os.Stderr, "plos-top:", err)
		os.Exit(1)
	}
}

// run is the poll loop. In -once mode it renders a single snapshot; live
// mode clears the terminal and redraws until interrupted.
func run(w io.Writer, addr string, interval time.Duration, once bool) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		out, err := snapshot(client, base, addr, time.Now())
		if err != nil {
			if once {
				return err
			}
			out = fmt.Sprintf("plos-top  %s\n\n  unreachable: %v\n", addr, err)
		}
		if !once {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		fmt.Fprint(w, out)
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

// snapshot fetches both surfaces and renders one frame.
func snapshot(client *http.Client, base, target string, now time.Time) (string, error) {
	vars, err := fetchVars(client, base)
	if err != nil {
		return "", err
	}
	snap := fetchHealth(client, base)
	return render(target, vars, snap, now), nil
}

// fetchVars reads the "plos" expvar (the observer's metric snapshot).
func fetchVars(client *http.Client, base string) (map[string]any, error) {
	resp, err := client.Get(base + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/vars: %s", resp.Status)
	}
	var all map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		return nil, fmt.Errorf("/debug/vars: %w", err)
	}
	raw, ok := all["plos"]
	if !ok {
		return nil, fmt.Errorf("/debug/vars has no \"plos\" var (is this a plos-server ops endpoint?)")
	}
	var vars map[string]any
	if err := json.Unmarshal(raw, &vars); err != nil {
		return nil, fmt.Errorf("/debug/vars plos var: %w", err)
	}
	return vars, nil
}

// fetchHealth reads the health tree; nil when the endpoint is absent or
// unreadable (pre-health server).
func fetchHealth(client *http.Client, base string) *health.Snapshot {
	resp, err := client.Get(base + "/debug/health")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap health.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// num reads a numeric metric from the snapshot (counters and gauges both
// decode as float64), zero when absent.
func num(vars map[string]any, name string) float64 {
	v, _ := vars[name].(float64)
	return v
}

// sparkRunes are the eight levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a fixed-scale sparkline (scaled to the series
// max; an all-zero series is a flat floor).
func spark(values []float64) string {
	if len(values) == 0 {
		return "-"
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// deltas turns a monotone series into successive decreases (positive =
// progress for a descending objective), for sparkline display.
func objectiveSpark(obj []float64) string {
	if len(obj) < 2 {
		return "-"
	}
	drops := make([]float64, 0, len(obj)-1)
	for i := 1; i < len(obj); i++ {
		d := obj[i-1] - obj[i]
		if d < 0 {
			d = 0
		}
		drops = append(drops, d)
	}
	return spark(drops)
}

// render formats one dashboard frame. Pure: everything it shows comes from
// its arguments, so golden tests pin it byte-for-byte.
func render(target string, vars map[string]any, snap *health.Snapshot, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plos-top  %s\n", target)
	fmt.Fprintf(&b, "uptime %.0fs   runs %.0f   cccp rounds %.0f   admm rounds %.0f\n",
		num(vars, "process_uptime_seconds"), num(vars, "train_runs_total"),
		num(vars, "cccp_iterations_total"), num(vars, "admm_rounds_total"))

	if snap == nil {
		fmt.Fprintf(&b, "\nhealth: unavailable (no /debug/health on this server)\n")
	} else {
		fmt.Fprintf(&b, "\nfleet %s", snap.State)
		if snap.Cause != "" {
			fmt.Fprintf(&b, "  %s", snap.Cause)
		}
		fmt.Fprintf(&b, "  (for %s)\n", roundDur(now.Sub(snap.Since)))
		for _, c := range snap.Components {
			line := fmt.Sprintf("  %-14s %-9s", c.Component, c.State)
			if c.Cause != "" {
				line += " " + c.Cause
			}
			fmt.Fprintln(&b, strings.TrimRight(line, " "))
		}
	}

	fmt.Fprintf(&b, "\nobjective %.6g", num(vars, "train_objective"))
	if snap != nil && len(snap.Objective) > 0 {
		fmt.Fprintf(&b, "   trajectory %s (descent per round, last %d)",
			objectiveSpark(snap.Objective), len(snap.Objective))
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "residuals primal %.3g dual %.3g   ef-norm %.3g\n",
		num(vars, "admm_primal_residual"), num(vars, "admm_dual_residual"),
		num(vars, "quant_error_feedback_norm"))
	fmt.Fprintf(&b, "async folds %.0f (stale %.0f)   stale reuses %.0f   devices dropped %.0f\n",
		num(vars, "async_updates_total"), num(vars, "async_stale_folds_total"),
		num(vars, "protocol_stale_reuses_total"), num(vars, "protocol_devices_dropped_total"))
	fmt.Fprintf(&b, "traffic sent %.1f KB recv %.1f KB   retries %.0f   timeouts %.0f\n",
		num(vars, "transport_bytes_sent_total")/1024, num(vars, "transport_bytes_received_total")/1024,
		num(vars, "transport_retries_total"), num(vars, "transport_op_timeouts_total"))

	if snap != nil {
		fmt.Fprintf(&b, "\ndrops  %s   retries %s  (rolling window)\n",
			spark(snap.DropWindow), spark(snap.RetryWindow))
		if len(snap.Transitions) > 0 {
			fmt.Fprintf(&b, "\nrecent transitions:\n")
			lo := len(snap.Transitions) - 5
			if lo < 0 {
				lo = 0
			}
			for _, tr := range snap.Transitions[lo:] {
				fmt.Fprintf(&b, "  %7s ago  %-14s %s -> %s", roundDur(now.Sub(tr.At)), tr.Component, tr.From, tr.To)
				if tr.Cause != "" {
					fmt.Fprintf(&b, "  %s", tr.Cause)
				}
				fmt.Fprintln(&b)
			}
		}
	}
	return b.String()
}

// roundDur trims a duration for display.
func roundDur(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return d.Round(time.Second)
}
