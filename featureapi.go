package plos

import (
	"fmt"

	"plos/internal/features"
)

// SignalConfig describes a raw multichannel sensor recording for
// ExtractWindows: the paper's §VI-B pipeline (downsample → normalize →
// 3.2 s sliding windows at 50% overlap → per-window features) exposed for
// library users with real signals. The zero value reproduces the paper:
// 100 Hz input decimated to 20 Hz, 3.2 s windows.
type SignalConfig struct {
	// SampleHz is the input sampling rate (default 100).
	SampleHz int
	// TargetHz is the post-decimation rate (default 20; must divide
	// SampleHz).
	TargetHz int
	// WindowSec is the sliding-window width in seconds (default 3.2),
	// always with 50% overlap.
	WindowSec float64
	// Normalize z-scores each channel over the whole recording before
	// windowing (default on; set SkipNormalize to disable).
	SkipNormalize bool
}

func (c SignalConfig) withDefaults() SignalConfig {
	if c.SampleHz <= 0 {
		c.SampleHz = 100
	}
	if c.TargetHz <= 0 {
		c.TargetHz = 20
	}
	if c.WindowSec <= 0 {
		c.WindowSec = 3.2
	}
	return c
}

// FeaturesPerNode is the number of features one sensing node (5 channels:
// accelerometer x/y/z + gyroscope u/v) contributes per window — 40, the
// paper's set: 7 statistics per channel plus accelerometer magnitude,
// axis angles, and signal magnitude area.
const FeaturesPerNode = features.PerNodeCount

// ExtractWindows converts one sensing node's raw recording into per-window
// feature vectors. channels must hold exactly 5 equal-length signals in the
// order accel-x, accel-y, accel-z, gyro-u, gyro-v. Concatenate the outputs
// of multiple nodes (same windows, aligned recordings) to build the paper's
// 120-dimensional body-network vectors.
func ExtractWindows(channels [][]float64, cfg SignalConfig) ([][]float64, error) {
	if len(channels) != features.SignalsPerNode {
		return nil, fmt.Errorf("plos: ExtractWindows: got %d channels, want %d (accel xyz + gyro uv)",
			len(channels), features.SignalsPerNode)
	}
	cfg = cfg.withDefaults()
	if cfg.SampleHz%cfg.TargetHz != 0 {
		return nil, fmt.Errorf("plos: ExtractWindows: TargetHz %d must divide SampleHz %d",
			cfg.TargetHz, cfg.SampleHz)
	}
	factor := cfg.SampleHz / cfg.TargetHz
	n := len(channels[0])
	processed := make([][]float64, len(channels))
	for i, ch := range channels {
		if len(ch) != n {
			return nil, fmt.Errorf("plos: ExtractWindows: channel %d has %d samples, channel 0 has %d",
				i, len(ch), n)
		}
		down, err := features.Downsample(ch, factor)
		if err != nil {
			return nil, fmt.Errorf("plos: ExtractWindows: %w", err)
		}
		if cfg.SkipNormalize {
			processed[i] = down
		} else {
			processed[i] = features.ZNormalize(down)
		}
	}
	width := int(cfg.WindowSec * float64(cfg.TargetHz))
	windows, err := features.SlidingWindows(len(processed[0]), width, width/2)
	if err != nil {
		return nil, fmt.Errorf("plos: ExtractWindows: %w", err)
	}
	out := make([][]float64, 0, len(windows))
	for _, w := range windows {
		sigs := make([][]float64, len(processed))
		for i := range processed {
			sigs[i] = processed[i][w.Start:w.End]
		}
		f, err := features.NodeFeatures(sigs)
		if err != nil {
			return nil, fmt.Errorf("plos: ExtractWindows: %w", err)
		}
		out = append(out, f)
	}
	return out, nil
}
