package plos

import (
	"expvar"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"plos/internal/obs"
	"plos/internal/parallel"
)

// Observer collects training metrics and phase traces. Create one with
// NewObserver, attach it to any trainer with WithObserver, and read it out
// through Handler (Prometheus text), Snapshot/WriteJSON (JSON), or
// WriteTraceJSONL (the phase trace). One observer may watch any number of
// training runs, concurrently or in sequence; counters accumulate across
// them.
//
// Observation is strictly passive: a trained model is bit-identical with or
// without an observer attached (the determinism contract of WithWorkers is
// unaffected), and the instrumentation cost is a handful of atomic adds per
// solver phase — see docs/OBSERVABILITY.md for the full metric catalog.
type Observer struct {
	reg *obs.Registry
}

// NewObserver creates an observer with every documented metric
// pre-registered. It also becomes the process-global observer of the
// internal worker pool (queue depth, per-worker busy time) — the pool is
// shared by all trainers in the process, so the most recently created
// observer owns its metrics.
func NewObserver() *Observer {
	r := obs.NewRegistry()
	parallel.SetMetrics(r.PoolMetrics())
	return &Observer{reg: r}
}

// WithObserver attaches ob to the training run. A nil observer is valid and
// equivalent to not passing the option.
func WithObserver(ob *Observer) Option {
	return func(o *options) {
		if ob != nil {
			o.core.Obs = ob.reg
		}
	}
}

// registry is the internal accessor used by Serve and the cmd/ binaries.
// It is nil-safe so call sites can thread a possibly-nil observer through.
func (ob *Observer) registry() *obs.Registry {
	if ob == nil {
		return nil
	}
	return ob.reg
}

// WritePrometheus writes all metrics in the Prometheus text exposition
// format (histograms appear as summaries with p50/p95/max companions).
func (ob *Observer) WritePrometheus(w io.Writer) error {
	return ob.registry().WritePrometheus(w)
}

// Handler returns an http.Handler serving the Prometheus text exposition —
// mount it on /metrics.
func (ob *Observer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = ob.WritePrometheus(w)
	})
}

// Snapshot returns all metric values keyed by name; histogram entries are
// objects carrying count/sum/quantiles. The result marshals cleanly to JSON.
func (ob *Observer) Snapshot() map[string]any {
	return ob.registry().Snapshot()
}

// WriteJSON writes the Snapshot as one indented JSON object — the payload
// behind plos-bench -metrics-json.
func (ob *Observer) WriteJSON(w io.Writer) error {
	return ob.registry().WriteJSON(w)
}

// WriteTraceJSONL writes the retained phase spans (CCCP iterations,
// cutting-plane rounds, QP solves, ADMM rounds, wire messages) as one JSON
// object per line, oldest first. The trace ring is bounded: only the most
// recent obs.DefaultTraceCapacity spans are retained.
func (ob *Observer) WriteTraceJSONL(w io.Writer) error {
	return ob.registry().WriteSpansJSONL(w)
}

// CounterValue reads one counter by its documented name (zero when the
// counter has not been touched).
func (ob *Observer) CounterValue(name string) int64 {
	return ob.registry().CounterValue(name)
}

// GaugeFunc registers a derived gauge evaluated at scrape time — e.g. an
// energy model applied to the traffic counters.
func (ob *Observer) GaugeFunc(name, help string, fn func() float64) {
	ob.registry().GaugeFunc(name, help, fn)
}

// expvar.Publish panics on duplicate names, so the "plos" var is published
// once per process and reads whichever observer most recently asked for it.
var (
	expvarOnce   sync.Once
	expvarTarget atomic.Pointer[obs.Registry]
)

// PublishExpvar exposes the observer's snapshot as the expvar variable
// "plos" (served on /debug/vars by any mux with expvar.Handler mounted).
// Publishing again from a different observer redirects the variable to it.
func (ob *Observer) PublishExpvar() {
	if ob == nil {
		return
	}
	expvarTarget.Store(ob.reg)
	expvarOnce.Do(func() {
		expvar.Publish("plos", expvar.Func(func() any {
			return expvarTarget.Load().Snapshot()
		}))
	})
}
