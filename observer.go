package plos

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plos/internal/obs"
	"plos/internal/obs/health"
	"plos/internal/parallel"
	"plos/internal/transport"
)

// processStart anchors the process_uptime_seconds gauge: package
// initialization is the closest portable stand-in for process start.
var processStart = time.Now()

// Observer collects training metrics and phase traces. Create one with
// NewObserver, attach it to any trainer with WithObserver, and read it out
// through Handler (Prometheus text), Snapshot/WriteJSON (JSON), or
// WriteTraceJSONL (the phase trace). One observer may watch any number of
// training runs, concurrently or in sequence; counters accumulate across
// them.
//
// Observation is strictly passive: a trained model is bit-identical with or
// without an observer attached (the determinism contract of WithWorkers is
// unaffected), and the instrumentation cost is a handful of atomic adds per
// solver phase — see docs/OBSERVABILITY.md for the full metric catalog.
type Observer struct {
	reg    *obs.Registry
	health *health.Engine
}

// ObserverOption tweaks NewObserver. The zero set of options reproduces the
// historical observer exactly.
type ObserverOption func(*observerConfig)

type observerConfig struct {
	traceCapacity int
	flight        bool
	flightW       io.Writer
	health        bool
	healthCfg     health.Config
}

// WithTraceCapacity sets how many phase spans the trace ring retains (default
// obs.DefaultTraceCapacity). When the ring wraps, the oldest span is evicted
// and obs_spans_dropped_total increments. n <= 0 keeps the default.
func WithTraceCapacity(n int) ObserverOption {
	return func(c *observerConfig) {
		if n > 0 {
			c.traceCapacity = n
		}
	}
}

// WithFlightRecorder attaches a convergence flight recorder: every trainer
// run under this observer appends typed JSONL records (CCCP iterations,
// cutting-plane rounds, ADMM residuals, device telemetry, drop causes) to w,
// and the wire-protocol server requests the device telemetry piggyback.
// A nil w records to the in-memory tail only (served by TraceHandler).
// Analyze the stream with cmd/plos-trace.
func WithFlightRecorder(w io.Writer) ObserverOption {
	return func(c *observerConfig) {
		c.flight = true
		c.flightW = w
	}
}

// WithHealth attaches a live health engine (internal/obs/health): the
// observer's flight-record stream and counters drive a rule-driven component
// tree served on /healthz, /debug/health and /statusz (plos-server mounts
// all three when -metrics-addr is set). Health needs the record stream, so
// this option implies a tail-only flight recorder when none was configured.
// The engine is passive — a run observed with health attached trains a
// bit-identical model.
func WithHealth(cfg health.Config) ObserverOption {
	return func(c *observerConfig) {
		c.health = true
		c.healthCfg = cfg
	}
}

// NewObserver creates an observer with every documented metric
// pre-registered. It also becomes the process-global observer of the
// internal worker pool (queue depth, per-worker busy time) — the pool is
// shared by all trainers in the process, so the most recently created
// observer owns its metrics.
func NewObserver(opts ...ObserverOption) *Observer {
	c := observerConfig{traceCapacity: obs.DefaultTraceCapacity}
	for _, opt := range opts {
		opt(&c)
	}
	r := obs.NewRegistrySized(c.traceCapacity)
	if c.flight || c.health {
		r.SetFlightRecorder(obs.NewFlightRecorder(c.flightW, obs.DefaultFlightTail))
	}
	r.GaugeFunc(obs.MetricProcessUptimeSeconds,
		"Seconds since this process initialized the plos package (registered by NewObserver).",
		func() float64 { return time.Since(processStart).Seconds() })
	r.GaugeFunc(obs.MetricBuildInfo, fmt.Sprintf(
		"Constant 1; built with %s, wire codec v%d (v%d compressed), sharded serving plane compiled in.",
		runtime.Version(), transport.CodecVersionBase, transport.CodecVersionCompressed),
		func() float64 { return 1 })
	ob := &Observer{reg: r}
	if c.health {
		ob.health = health.New(r, c.healthCfg)
	}
	parallel.SetMetrics(r.PoolMetrics())
	return ob
}

// Health returns the attached health engine (nil without WithHealth, or on
// a nil observer).
func (ob *Observer) Health() *health.Engine {
	if ob == nil {
		return nil
	}
	return ob.health
}

// WithObserver attaches ob to the training run. A nil observer is valid and
// equivalent to not passing the option.
func WithObserver(ob *Observer) Option {
	return func(o *options) {
		if ob != nil {
			o.core.Obs = ob.reg
		}
	}
}

// registry is the internal accessor used by Serve and the cmd/ binaries.
// It is nil-safe so call sites can thread a possibly-nil observer through.
func (ob *Observer) registry() *obs.Registry {
	if ob == nil {
		return nil
	}
	return ob.reg
}

// WritePrometheus writes all metrics in the Prometheus text exposition
// format (histograms appear as summaries with p50/p95/max companions).
func (ob *Observer) WritePrometheus(w io.Writer) error {
	return ob.registry().WritePrometheus(w)
}

// Handler returns an http.Handler serving the Prometheus text exposition —
// mount it on /metrics.
func (ob *Observer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = ob.WritePrometheus(w)
	})
}

// Snapshot returns all metric values keyed by name; histogram entries are
// objects carrying count/sum/quantiles. The result marshals cleanly to JSON.
func (ob *Observer) Snapshot() map[string]any {
	return ob.registry().Snapshot()
}

// WriteJSON writes the Snapshot as one indented JSON object — the payload
// behind plos-bench -metrics-json.
func (ob *Observer) WriteJSON(w io.Writer) error {
	return ob.registry().WriteJSON(w)
}

// WriteTraceJSONL writes the retained phase spans (CCCP iterations,
// cutting-plane rounds, QP solves, ADMM rounds, wire messages) as one JSON
// object per line, oldest first. The trace ring is bounded: only the most
// recent obs.DefaultTraceCapacity spans are retained.
func (ob *Observer) WriteTraceJSONL(w io.Writer) error {
	return ob.registry().WriteSpansJSONL(w)
}

// FlightErr returns the first write error of the attached flight recorder
// (nil with no recorder, or when every write succeeded). Check it after a
// run that streamed records to a file.
func (ob *Observer) FlightErr() error {
	return ob.registry().Flight().Err()
}

// TraceSnapshot summarizes the live tracing state: span totals per phase,
// spans dropped by the bounded ring, and the flight recorder's record count
// plus its retained tail (decoded records, oldest first). The result
// marshals cleanly to JSON; it is the payload behind TraceHandler.
func (ob *Observer) TraceSnapshot() map[string]any {
	r := ob.registry()
	out := map[string]any{
		"span_phase_seconds": r.SpanPhaseTotals(),
		"spans_dropped":      r.CounterValue(obs.MetricSpansDropped),
	}
	if fr := r.Flight(); fr != nil {
		tail := fr.Tail()
		recs := make([]json.RawMessage, len(tail))
		for i, line := range tail {
			recs[i] = json.RawMessage(line)
		}
		out["flight_recorded"] = fr.Recorded()
		out["flight_tail"] = recs
	}
	return out
}

// TraceHandler returns an http.Handler serving TraceSnapshot as indented
// JSON — mount it on /debug/trace (plos-server does, next to /metrics).
func (ob *Observer) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ob.TraceSnapshot())
	})
}

// CounterValue reads one counter by its documented name (zero when the
// counter has not been touched).
func (ob *Observer) CounterValue(name string) int64 {
	return ob.registry().CounterValue(name)
}

// GaugeFunc registers a derived gauge evaluated at scrape time — e.g. an
// energy model applied to the traffic counters.
func (ob *Observer) GaugeFunc(name, help string, fn func() float64) {
	ob.registry().GaugeFunc(name, help, fn)
}

// expvar.Publish panics on duplicate names, so the "plos" var is published
// once per process and reads whichever observer most recently asked for it.
var (
	expvarOnce   sync.Once
	expvarTarget atomic.Pointer[obs.Registry]
)

// PublishExpvar exposes the observer's snapshot as the expvar variable
// "plos" (served on /debug/vars by any mux with expvar.Handler mounted).
// Publishing again from a different observer redirects the variable to it.
func (ob *Observer) PublishExpvar() {
	if ob == nil {
		return
	}
	expvarTarget.Store(ob.reg)
	expvarOnce.Do(func() {
		expvar.Publish("plos", expvar.Func(func() any {
			return expvarTarget.Load().Snapshot()
		}))
	})
}
