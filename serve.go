package plos

import (
	"errors"
	"fmt"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/protocol"
	"plos/internal/svm"
	"plos/internal/transport"
)

// ServeResult is the coordinator-side outcome of a distributed run: the
// trained model plus per-device traffic accounting (what the paper's
// Fig. 13 reports).
type ServeResult struct {
	Model *Model
	// Dropped[t] is true if device t died mid-training; its personalized
	// hyperplane is then absent from the model.
	Dropped []bool
	// TrafficBytes[t] is the total bytes exchanged with device t;
	// TrafficMessages[t] the message count.
	TrafficBytes    []int64
	TrafficMessages []int
}

// Serve runs the PLOS coordinator on addr ("host:port"; ":0" picks a free
// port) and trains with exactly `devices` connected Join peers. It blocks
// until training completes. onListen, if non-nil, receives the bound
// address before accepting starts (useful with ":0").
//
// Raw data never reaches the coordinator: devices exchange only model
// parameters (paper §V).
func Serve(addr string, devices int, onListen func(addr string), opts ...Option) (*ServeResult, error) {
	if devices <= 0 {
		return nil, errors.New("plos: Serve: need at least one device")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	defer l.Close()
	if onListen != nil {
		onListen(l.Addr())
	}
	conns, err := l.AcceptN(devices)
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	// With an observer attached, every device connection feeds the
	// transport counters and wire spans; accounting via Stats() deltas is
	// unchanged either way.
	wired := conns
	if o.core.Obs != nil {
		wired = make([]transport.Conn, len(conns))
		for t, c := range conns {
			wired[t] = transport.Observe(c, o.core.Obs, t)
		}
	}
	res, err := protocol.RunServer(wired, protocol.ServerConfig{Core: o.core, Dist: o.dist})
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	out := &ServeResult{
		Model:   &Model{model: res.Model, info: res.Info, bias: o.bias},
		Dropped: res.Dropped,
	}
	for _, s := range res.PerUser {
		out.TrafficBytes = append(out.TrafficBytes, s.BytesSent+s.BytesReceived)
		out.TrafficMessages = append(out.TrafficMessages, s.MessagesSent+s.MessagesReceived)
	}
	return out, nil
}

// DeviceModel is what a device holds after Join completes: the shared
// hyperplane and its own personalized one.
type DeviceModel struct {
	global, personal mat.Vector
	bias             bool
	// Bytes and Messages account the device's total traffic.
	Bytes    int64
	Messages int
}

// Predict classifies x with the device's personalized hyperplane.
func (d *DeviceModel) Predict(x []float64) float64 {
	v := mat.Vector(x)
	if d.bias {
		v = svm.AugmentBiasVec(v)
	}
	if d.personal.Dot(v) >= 0 {
		return 1
	}
	return -1
}

// Global returns a copy of the shared hyperplane.
func (d *DeviceModel) Global() []float64 { return append([]float64(nil), d.global...) }

// Personalized returns a copy of the device's hyperplane.
func (d *DeviceModel) Personalized() []float64 { return append([]float64(nil), d.personal...) }

// Join connects a device to a Serve coordinator at addr and participates
// in training with its local data. It blocks until the coordinator
// finishes. The user's raw samples are never serialized.
//
// The training hyperparameters (λ, Cl, Cu, ρ, …) are decided by the
// coordinator and pushed to devices; Join's options only cover
// device-local choices (bias augmentation must match the coordinator's,
// and the seed drives the local initialization).
func Join(addr string, user User, opts ...Option) (*DeviceModel, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if len(user.Features) == 0 {
		return nil, fmt.Errorf("plos: Join: %w", core.ErrEmptyUser)
	}
	x := mat.FromRows(user.Features)
	if o.bias {
		x = svm.AugmentBias(x)
	}
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("plos: Join: %w", err)
	}
	defer conn.Close()
	wired := transport.Observe(conn, o.core.Obs, -1)
	res, err := protocol.RunClient(wired, core.UserData{X: x, Y: append([]float64(nil), user.Labels...)},
		protocol.ClientOptions{Seed: o.core.Seed})
	if err != nil {
		return nil, fmt.Errorf("plos: Join: %w", err)
	}
	return &DeviceModel{
		global:   res.W0,
		personal: res.W,
		bias:     o.bias,
		Bytes:    res.Traffic.BytesSent + res.Traffic.BytesReceived,
		Messages: res.Traffic.MessagesSent + res.Traffic.MessagesReceived,
	}, nil
}
