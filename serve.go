package plos

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"plos/internal/compress"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/protocol"
	"plos/internal/rng"
	"plos/internal/svm"
	"plos/internal/transport"
)

// ServeResult is the coordinator-side outcome of a distributed run: the
// trained model plus per-device traffic accounting (what the paper's
// Fig. 13 reports).
type ServeResult struct {
	Model *Model
	// Dropped[t] is true if device t died mid-training; its personalized
	// hyperplane is then absent from the model.
	Dropped []bool
	// DropCause[t] is the first fatal failure recorded for device t (nil
	// when the device never failed).
	DropCause []error
	// TrafficBytes[t] is the total bytes exchanged with device t;
	// TrafficMessages[t] the message count.
	TrafficBytes    []int64
	TrafficMessages []int
}

// rejoinHelloTimeout bounds how long an accepted reconnection may take to
// present its hello before the coordinator gives up on it.
const rejoinHelloTimeout = 30 * time.Second

// wrapConn layers the configured reliability stack over a raw connection:
// per-operation timeouts on the base transport, observability counters, the
// seeded retry/backoff layer on top (so retried attempts are counted), and
// — when WithCompression is configured — codec-v4 payload compression
// outermost, so a retried frame is the identical already-compressed message
// and the compression streams advance once per logical send.
func wrapConn(c transport.Conn, o *options, seedLabel string, idx int, role transport.CompressRole) transport.Conn {
	if o.ft.opTimeout > 0 {
		transport.SetOpTimeout(c, o.ft.opTimeout)
	}
	wired := c
	if o.core.Obs != nil {
		wired = transport.Observe(c, o.core.Obs, idx)
	}
	if o.ft.retries > 1 {
		wired = transport.Retry(wired, transport.RetryPolicy{
			MaxAttempts: o.ft.retries,
			Seed:        rng.New(o.core.Seed).SplitN(seedLabel, idx).Int63(),
		}, o.core.Obs)
	}
	if o.comp.Enabled() {
		wired = transport.Compress(wired, o.comp, role, o.core.Obs)
	}
	return wired
}

func (o *options) serverFT(rejoin <-chan protocol.Rejoin, restore *protocol.Checkpoint) protocol.FTConfig {
	return protocol.FTConfig{
		RoundTimeout:    o.ft.roundTimeout,
		Quorum:          o.ft.quorum,
		MaxStale:        o.ft.maxStale,
		Resume:          o.ft.resume,
		Rejoin:          rejoin,
		CheckpointPath:  o.ft.checkpointPath,
		CheckpointEvery: o.ft.checkpointEvery,
		Restore:         restore,
	}
}

// Serve runs the PLOS coordinator on addr ("host:port"; ":0" picks a free
// port) and trains with exactly `devices` connected Join peers. It blocks
// until training completes. onListen, if non-nil, receives the bound
// address before accepting starts (useful with ":0").
//
// With WithCheckpoint, an existing checkpoint file at the configured path
// makes Serve resume the interrupted run instead of starting fresh: it then
// waits for one connection per surviving device (the `devices` argument is
// ignored in favor of the checkpoint's device count), each presenting its
// session token.
//
// Raw data never reaches the coordinator: devices exchange only model
// parameters (paper §V).
func Serve(addr string, devices int, onListen func(addr string), opts ...Option) (*ServeResult, error) {
	if devices <= 0 {
		return nil, errors.New("plos: Serve: need at least one device")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	comp, err := compress.Parse(o.compressSpec)
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	o.comp = comp

	var restore *protocol.Checkpoint
	if o.ft.checkpointPath != "" {
		ck, err := protocol.LoadCheckpoint(o.ft.checkpointPath)
		switch {
		case err == nil:
			restore = ck
			devices = 0
			for _, d := range ck.Dropped {
				if !d {
					devices++
				}
			}
		case errors.Is(err, fs.ErrNotExist):
			// No checkpoint yet: fresh run.
		default:
			return nil, fmt.Errorf("plos: Serve: %w", err)
		}
	}

	l, err := transport.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	defer l.Close()
	if onListen != nil {
		onListen(l.Addr())
	}
	conns, err := l.AcceptN(devices)
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	wired := make([]transport.Conn, len(conns))
	for t, c := range conns {
		wired[t] = wrapConn(c, &o, "retry-server", t, transport.CompressServer)
	}

	// With resume enabled the listener keeps accepting during training;
	// each new connection's first hello is read off-thread and queued for
	// the protocol loop to validate against its session table.
	var rejoin chan protocol.Rejoin
	if o.ft.resume {
		rejoin = make(chan protocol.Rejoin, devices)
		stop := make(chan struct{})
		defer close(stop)
		go acceptRejoins(l, &o, rejoin, stop)
	}

	res, err := protocol.RunServer(wired, protocol.ServerConfig{
		Core: o.core, Dist: o.dist, FT: o.serverFT(rejoin, restore),
		Async: o.wireAsync,
	})
	if err != nil {
		return nil, fmt.Errorf("plos: Serve: %w", err)
	}
	out := &ServeResult{
		Model:     &Model{model: res.Model, info: res.Info, bias: o.bias},
		Dropped:   res.Dropped,
		DropCause: res.DropCause,
	}
	for _, s := range res.PerUser {
		out.TrafficBytes = append(out.TrafficBytes, s.BytesSent+s.BytesReceived)
		out.TrafficMessages = append(out.TrafficMessages, s.MessagesSent+s.MessagesReceived)
	}
	return out, nil
}

// acceptRejoins feeds reconnection attempts to the protocol loop until the
// listener closes. Each connection gets the same reliability stack as the
// originals and a bounded window to present its hello.
func acceptRejoins(l *transport.Listener, o *options, rejoin chan<- protocol.Rejoin, stop <-chan struct{}) {
	for i := 0; ; i++ {
		c, err := l.Accept()
		if err != nil {
			return // listener closed: training is over
		}
		conn := wrapConn(c, o, "retry-rejoin", i, transport.CompressServer)
		go func() {
			if o.ft.opTimeout <= 0 {
				transport.SetOpTimeout(c, rejoinHelloTimeout)
			}
			m, err := conn.Recv()
			if o.ft.opTimeout <= 0 {
				transport.SetOpTimeout(c, 0)
			}
			if err != nil {
				_ = conn.Close()
				return
			}
			select {
			case rejoin <- protocol.Rejoin{Conn: conn, Hello: m}:
			case <-stop:
				_ = conn.Close()
			}
		}()
	}
}

// DeviceModel is what a device holds after Join completes: the shared
// hyperplane and its own personalized one.
type DeviceModel struct {
	global, personal mat.Vector
	bias             bool
	// Bytes and Messages account the device's total traffic.
	Bytes    int64
	Messages int
	// Session is the coordinator-issued resume token (0 when the
	// coordinator runs without session resume).
	Session int64
}

// Predict classifies x with the device's personalized hyperplane.
func (d *DeviceModel) Predict(x []float64) float64 {
	v := mat.Vector(x)
	if d.bias {
		v = svm.AugmentBiasVec(v)
	}
	if d.personal.Dot(v) >= 0 {
		return 1
	}
	return -1
}

// Global returns a copy of the shared hyperplane.
func (d *DeviceModel) Global() []float64 { return append([]float64(nil), d.global...) }

// Personalized returns a copy of the device's hyperplane.
func (d *DeviceModel) Personalized() []float64 { return append([]float64(nil), d.personal...) }

// Join connects a device to a Serve coordinator at addr and participates
// in training with its local data. It blocks until the coordinator
// finishes. The user's raw samples are never serialized.
//
// The training hyperparameters (λ, Cl, Cu, ρ, …) are decided by the
// coordinator and pushed to devices; Join's options only cover
// device-local choices (bias augmentation must match the coordinator's,
// and the seed drives the local initialization). With WithSessionResume,
// Join survives connection failures by redialing and resuming its session.
func Join(addr string, user User, opts ...Option) (*DeviceModel, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	comp, err := compress.Parse(o.compressSpec)
	if err != nil {
		return nil, fmt.Errorf("plos: Join: %w", err)
	}
	o.comp = comp
	if len(user.Features) == 0 {
		return nil, fmt.Errorf("plos: Join: %w", core.ErrEmptyUser)
	}
	x := mat.FromRows(user.Features)
	if o.bias {
		x = svm.AugmentBias(x)
	}
	data := core.UserData{X: x, Y: append([]float64(nil), user.Labels...)}
	copts := protocol.ClientOptions{
		Seed:       o.core.Seed,
		Session:    o.ft.session,
		OnSession:  o.ft.onSession,
		MaxRedials: o.ft.maxRedials,
		Obs:        o.core.Obs,
		Async:      o.wireAsync,
	}

	var res *protocol.ClientResult
	if o.ft.resume && o.ft.maxRedials > 0 {
		dial := func() (transport.Conn, error) {
			c, derr := transport.Dial(addr)
			if derr != nil {
				return nil, derr
			}
			return wrapConn(c, &o, "retry-client", 0, transport.CompressClient), nil
		}
		res, err = protocol.RunClientLoop(dial, data, copts)
	} else {
		conn, derr := transport.Dial(addr)
		if derr != nil {
			return nil, fmt.Errorf("plos: Join: %w", derr)
		}
		defer conn.Close()
		res, err = protocol.RunClient(wrapConn(conn, &o, "retry-client", 0, transport.CompressClient), data, copts)
	}
	if err != nil {
		return nil, fmt.Errorf("plos: Join: %w", err)
	}
	return &DeviceModel{
		global:   res.W0,
		personal: res.W,
		bias:     o.bias,
		Bytes:    res.Traffic.BytesSent + res.Traffic.BytesReceived,
		Messages: res.Traffic.MessagesSent + res.Traffic.MessagesReceived,
		Session:  res.Session,
	}, nil
}
