module plos

go 1.22
