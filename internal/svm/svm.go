// Package svm implements a linear support-vector machine trained by dual
// coordinate descent (Hsieh et al., ICML 2008), the standard solver for
// linear SVMs when no numerical ecosystem is available.
//
// It solves the L1-loss dual
//
//	min_α ½ αᵀQα − eᵀα,  0 <= α_i <= C_i,  Q_ij = y_i y_j x_i·x_j
//
// maintaining w = Σ α_i y_i x_i so each coordinate update is O(d). The
// primal problem is min ½||w||² + Σ C_i max(0, 1 − y_i w·x_i), i.e. the
// paper's Eq. (1) with per-sample weights C_i = C/m.
//
// Bias handling follows the paper's footnote 1: callers who want an affine
// hyperplane append a constant-1 feature (see AugmentBias); the model itself
// is strictly homogeneous, w·x.
package svm

import (
	"errors"
	"fmt"
	"math"

	"plos/internal/mat"
	"plos/internal/rng"
)

// Params configures training. The zero value is completed by defaults:
// C=1, Tol=1e-4, MaxEpochs=1000.
type Params struct {
	// C is the misclassification weight applied to every sample. If
	// PerSampleC is set it takes precedence.
	C float64
	// PerSampleC optionally gives each sample its own box bound C_i
	// (e.g. Cl/m for labeled vs Cu/m for unlabeled in PLOS-style losses).
	PerSampleC []float64
	// Tol is the stopping threshold on the maximal projected-gradient
	// violation across an epoch.
	Tol float64
	// MaxEpochs bounds the number of passes over the data.
	MaxEpochs int
	// Seed drives the per-epoch coordinate permutation.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.C <= 0 {
		p.C = 1
	}
	if p.Tol <= 0 {
		p.Tol = 1e-4
	}
	if p.MaxEpochs <= 0 {
		p.MaxEpochs = 1000
	}
	return p
}

// Model is a trained linear classifier: Score(x) = W·x, Predict = sign.
type Model struct {
	W mat.Vector
}

// Info reports training diagnostics.
type Info struct {
	Epochs       int
	Converged    bool
	MaxViolation float64
}

// Errors returned by Train.
var (
	ErrNoData        = errors.New("svm: no training samples")
	ErrSingleClass   = errors.New("svm: training data contains a single class")
	ErrBadLabel      = errors.New("svm: labels must be -1 or +1")
	ErrShapeMismatch = errors.New("svm: rows of X and labels differ in count")
)

// Train fits a linear SVM on the rows of x with labels y in {-1, +1}.
func Train(x *mat.Matrix, y []float64, p Params) (*Model, Info, error) {
	if x.Rows == 0 {
		return nil, Info{}, ErrNoData
	}
	if x.Rows != len(y) {
		return nil, Info{}, fmt.Errorf("%w: %d vs %d", ErrShapeMismatch, x.Rows, len(y))
	}
	var pos, neg bool
	for _, yi := range y {
		switch yi {
		case 1:
			pos = true
		case -1:
			neg = true
		default:
			return nil, Info{}, fmt.Errorf("%w: got %g", ErrBadLabel, yi)
		}
	}
	if !pos || !neg {
		return nil, Info{}, ErrSingleClass
	}
	p = p.withDefaults()
	if p.PerSampleC != nil && len(p.PerSampleC) != x.Rows {
		return nil, Info{}, fmt.Errorf("%w: PerSampleC has %d entries for %d samples",
			ErrShapeMismatch, len(p.PerSampleC), x.Rows)
	}

	n, d := x.Rows, x.Cols
	alpha := make(mat.Vector, n)
	w := make(mat.Vector, d)
	qii := make(mat.Vector, n) // diagonal of Q
	for i := 0; i < n; i++ {
		qii[i] = x.Row(i).SquaredNorm()
	}
	boxOf := func(i int) float64 {
		if p.PerSampleC != nil {
			return p.PerSampleC[i]
		}
		return p.C
	}

	g := rng.New(p.Seed)
	info := Info{}
	for epoch := 0; epoch < p.MaxEpochs; epoch++ {
		info.Epochs = epoch + 1
		maxViolation := 0.0
		for _, i := range g.Perm(n) {
			ci := boxOf(i)
			if ci <= 0 || qii[i] == 0 {
				continue
			}
			xi := x.Row(i)
			grad := y[i]*w.Dot(xi) - 1 // ∂/∂α_i of the dual
			// Projected-gradient violation at the box.
			pg := grad
			switch {
			case alpha[i] <= 0 && grad >= 0:
				pg = 0
			case alpha[i] >= ci && grad <= 0:
				pg = 0
			}
			if v := math.Abs(pg); v > maxViolation {
				maxViolation = v
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			ai := old - grad/qii[i]
			if ai < 0 {
				ai = 0
			} else if ai > ci {
				ai = ci
			}
			alpha[i] = ai
			if delta := (ai - old) * y[i]; delta != 0 {
				w.AddScaled(delta, xi)
			}
		}
		info.MaxViolation = maxViolation
		if maxViolation <= p.Tol {
			info.Converged = true
			break
		}
	}
	return &Model{W: w}, info, nil
}

// Score returns the signed margin W·x.
func (m *Model) Score(x mat.Vector) float64 { return m.W.Dot(x) }

// Predict returns the class label sign(W·x), with ties broken toward +1.
func (m *Model) Predict(x mat.Vector) float64 {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

// PredictAll classifies every row of x.
func (m *Model) PredictAll(x *mat.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = m.Predict(x.Row(i))
	}
	return out
}

// PrimalObjective evaluates ½||w||² + Σ C_i hinge_i for diagnostics and
// tests (the dual solution must not exceed it).
func (m *Model) PrimalObjective(x *mat.Matrix, y []float64, p Params) float64 {
	p = p.withDefaults()
	obj := 0.5 * m.W.SquaredNorm()
	for i := 0; i < x.Rows; i++ {
		ci := p.C
		if p.PerSampleC != nil {
			ci = p.PerSampleC[i]
		}
		if h := 1 - y[i]*m.Score(x.Row(i)); h > 0 {
			obj += ci * h
		}
	}
	return obj
}

// AugmentBias returns a copy of x with a constant-1 column appended, turning
// the homogeneous hyperplane w·x into an affine one (paper footnote 1).
func AugmentBias(x *mat.Matrix) *mat.Matrix {
	out := mat.NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		copy(out.Data[i*out.Cols:], x.Data[i*x.Cols:(i+1)*x.Cols])
		out.Data[i*out.Cols+x.Cols] = 1
	}
	return out
}

// AugmentBiasVec appends a constant 1 to a single feature vector.
func AugmentBiasVec(x mat.Vector) mat.Vector {
	out := make(mat.Vector, len(x)+1)
	copy(out, x)
	out[len(x)] = 1
	return out
}
