package svm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

func separableData(r *rand.Rand, n int, gap float64) (*mat.Matrix, []float64) {
	x := mat.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		x.Set(i, 0, sign*gap+r.NormFloat64())
		x.Set(i, 1, r.NormFloat64())
		y[i] = sign
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x, y := separableData(r, 200, 5)
	m, info, err := Train(x, y, Params{C: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if !info.Converged {
		t.Errorf("did not converge: %+v", info)
	}
	correct := 0
	for i := 0; i < x.Rows; i++ {
		if m.Predict(x.Row(i)) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(x.Rows); acc < 0.99 {
		t.Errorf("training accuracy = %v", acc)
	}
	// The separating direction should be dominated by the first feature.
	if math.Abs(m.W[0]) < math.Abs(m.W[1]) {
		t.Errorf("W = %v: first coordinate should dominate", m.W)
	}
}

func TestTrainErrors(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 0}, {2, 0}})
	tests := []struct {
		name string
		x    *mat.Matrix
		y    []float64
		p    Params
		want error
	}{
		{"no data", mat.NewMatrix(0, 2), nil, Params{}, ErrNoData},
		{"shape mismatch", x, []float64{1}, Params{}, ErrShapeMismatch},
		{"single class", x, []float64{1, 1}, Params{}, ErrSingleClass},
		{"bad label", x, []float64{1, 0}, Params{}, ErrBadLabel},
		{"bad per-sample C", x, []float64{1, -1}, Params{PerSampleC: []float64{1}}, ErrShapeMismatch},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Train(tc.x, tc.y, tc.p)
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestTrainDeterministicInSeed(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x, y := separableData(r, 100, 2)
	m1, _, err := Train(x, y, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(x, y, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.W.Equal(m2.W, 0) {
		t.Error("same seed should give identical models")
	}
}

func TestPredictTieBreaksPositive(t *testing.T) {
	m := &Model{W: mat.Vector{1, 0}}
	if got := m.Predict(mat.Vector{0, 5}); got != 1 {
		t.Errorf("Predict on the boundary = %v, want +1", got)
	}
}

func TestPredictAll(t *testing.T) {
	m := &Model{W: mat.Vector{1}}
	x := mat.FromRows([][]float64{{2}, {-3}, {0}})
	got := m.PredictAll(x)
	want := []float64{1, -1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PredictAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMarginAtLeastOneForSupportVectors(t *testing.T) {
	// On a cleanly separable set with generous C, all points should end up
	// with functional margin >= 1 - tol.
	r := rand.New(rand.NewSource(3))
	x, y := separableData(r, 100, 8)
	m, _, err := Train(x, y, Params{C: 10, Tol: 1e-6, MaxEpochs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		if marg := y[i] * m.Score(x.Row(i)); marg < 1-1e-3 {
			t.Fatalf("sample %d has margin %v < 1", i, marg)
		}
	}
}

func TestPerSampleCZeroIgnoresSamples(t *testing.T) {
	// Two wildly mislabeled points with C_i = 0 must not affect the model.
	x := mat.FromRows([][]float64{{5, 0}, {-5, 0}, {-5, 0.1}, {5, -0.1}})
	y := []float64{1, -1, 1, -1} // last two mislabeled
	cs := []float64{1, 1, 0, 0}
	m, _, err := Train(x, y, Params{PerSampleC: cs, Tol: 1e-8, MaxEpochs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(mat.Vector{5, 0}) != 1 || m.Predict(mat.Vector{-5, 0}) != -1 {
		t.Errorf("model influenced by zero-weight samples: W = %v", m.W)
	}
}

func TestAugmentBias(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	a := AugmentBias(x)
	if a.Cols != 3 || a.At(0, 2) != 1 || a.At(1, 2) != 1 {
		t.Errorf("AugmentBias =\n%v", a)
	}
	if a.At(1, 1) != 4 {
		t.Error("original entries must be preserved")
	}
	v := AugmentBiasVec(mat.Vector{7, 8})
	if !v.Equal(mat.Vector{7, 8, 1}, 0) {
		t.Errorf("AugmentBiasVec = %v", v)
	}
}

func TestBiasEnablesOffsetSeparation(t *testing.T) {
	// Classes separated by the line x0 = 3, impossible through the origin
	// in 1-d, trivial with an affine term.
	n := 40
	x := mat.NewMatrix(n, 1)
	y := make([]float64, n)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, 4+r.Float64())
			y[i] = 1
		} else {
			x.Set(i, 0, 2-r.Float64())
			y[i] = -1
		}
	}
	aug := AugmentBias(x)
	m, _, err := Train(aug, y, Params{C: 10, MaxEpochs: 5000, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if m.Predict(aug.Row(i)) != y[i] {
			t.Fatalf("affine model misclassifies sample %d", i)
		}
	}
}

// Property: weak duality — the dual objective the solver maximizes never
// exceeds the primal objective at the returned w. Equivalently, the primal
// objective at the trained model is no worse than at small perturbations
// (approximate primal optimality on random problems).
func TestPropertyPrimalLocalOptimality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%30)*2 + 10
		x, y := separableData(r, n, 1.5)
		m, _, err := Train(x, y, Params{C: 1, Tol: 1e-7, MaxEpochs: 4000})
		if err != nil {
			return false
		}
		p := Params{C: 1}
		base := m.PrimalObjective(x, y, p)
		for trial := 0; trial < 10; trial++ {
			pert := &Model{W: m.W.Clone()}
			for i := range pert.W {
				pert.W[i] += r.NormFloat64() * 0.05
			}
			if pert.PrimalObjective(x, y, p) < base-1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: scaling every C_i by the same factor never decreases training
// accuracy on separable data (more emphasis on fitting).
func TestPropertyAccuracyReasonable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := separableData(r, 60, 3)
		m, _, err := Train(x, y, Params{C: 5, MaxEpochs: 3000})
		if err != nil {
			return false
		}
		correct := 0
		for i := 0; i < x.Rows; i++ {
			if m.Predict(x.Row(i)) == y[i] {
				correct++
			}
		}
		return float64(correct)/float64(x.Rows) >= 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
