// Package baselines implements the three comparison methods of the paper's
// §VI-A, producing per-user per-sample predictions:
//
//   - All: every user uploads everything; one global SVM is trained on the
//     pooled labeled samples and applied to everyone.
//   - Single: fully local; a user with (two-class) labels trains a private
//     SVM, a user without runs k-means on its own data (evaluated under the
//     best cluster→label matching, as the paper does).
//   - Group: users are hashed with random hyperplanes (n = 128 buckets),
//     compared by the Jaccard similarity of their bucket histograms,
//     spectrally clustered into 3 groups, and each group trains a pooled
//     SVM shared by its members (falling back to per-group k-means when a
//     group has no usable labels).
package baselines

import (
	"errors"
	"fmt"

	"plos/internal/cluster"
	"plos/internal/core"
	"plos/internal/lsh"
	"plos/internal/mat"
	"plos/internal/rng"
	"plos/internal/svm"
)

// Params configures the baselines. The zero value reproduces the paper:
// C = 1, 128 LSH buckets, 3 groups.
type Params struct {
	// C is the SVM misclassification weight.
	C float64
	// Buckets is the LSH bucket count (must be a power of two).
	Buckets int
	// NumGroups is the spectral-clustering group count for Group.
	NumGroups int
	// Seed drives SVM epochs; clustering randomness comes from the RNG
	// passed to each baseline.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.C <= 0 {
		p.C = 1
	}
	if p.Buckets <= 0 {
		p.Buckets = 128
	}
	if p.NumGroups <= 0 {
		p.NumGroups = 3
	}
	return p
}

// Prediction is one user's predicted labels over their samples.
type Prediction struct {
	Labels []float64
	// NeedsMatching marks unsupervised predictions (cluster indices mapped
	// to ±1 arbitrarily); accuracy must be computed under the best
	// cluster→label assignment.
	NeedsMatching bool
}

// ErrBuckets reports a non-power-of-two bucket count.
var ErrBuckets = errors.New("baselines: Buckets must be a power of two")

// All trains one global SVM on the pooled labeled samples of every user and
// applies it to all samples of all users. When no user has usable labels it
// falls back to pooled k-means (NeedsMatching).
func All(users []core.UserData, p Params, g *rng.RNG) ([]Prediction, error) {
	if err := validate(users); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	dim := users[0].X.Cols
	var rows int
	for _, u := range users {
		rows += u.NumLabeled()
	}
	pooledX := mat.NewMatrix(rows, dim)
	pooledY := make([]float64, 0, rows)
	at := 0
	for _, u := range users {
		for i := range u.Y {
			copy(pooledX.Row(at), u.X.Row(i))
			at++
		}
		pooledY = append(pooledY, u.Y...)
	}
	model, _, err := svm.Train(pooledX, pooledY, svm.Params{C: p.C, Seed: p.Seed})
	if err != nil {
		if errors.Is(err, svm.ErrNoData) || errors.Is(err, svm.ErrSingleClass) {
			return pooledKMeans(users, g)
		}
		return nil, fmt.Errorf("baselines: All: %w", err)
	}
	out := make([]Prediction, len(users))
	for t, u := range users {
		out[t] = Prediction{Labels: model.PredictAll(u.X)}
	}
	return out, nil
}

// Single trains each user independently: a private SVM when the user's
// labels cover both classes, otherwise local k-means.
func Single(users []core.UserData, p Params, g *rng.RNG) ([]Prediction, error) {
	if err := validate(users); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	out := make([]Prediction, len(users))
	for t, u := range users {
		lt := u.NumLabeled()
		labeledX := mat.NewMatrix(lt, u.X.Cols)
		copy(labeledX.Data, u.X.Data[:lt*u.X.Cols])
		model, _, err := svm.Train(labeledX, u.Y, svm.Params{C: p.C, Seed: p.Seed})
		switch {
		case err == nil:
			out[t] = Prediction{Labels: model.PredictAll(u.X)}
		case errors.Is(err, svm.ErrNoData) || errors.Is(err, svm.ErrSingleClass):
			pred, kerr := kmeansPredict(u.X, g.SplitN("single", t))
			if kerr != nil {
				return nil, fmt.Errorf("baselines: Single user %d: %w", t, kerr)
			}
			out[t] = pred
		default:
			return nil, fmt.Errorf("baselines: Single user %d: %w", t, err)
		}
	}
	return out, nil
}

// Group clusters the users by LSH/Jaccard similarity and trains one pooled
// model per group.
func Group(users []core.UserData, p Params, g *rng.RNG) ([]Prediction, error) {
	if err := validate(users); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	bits := 0
	for b := p.Buckets; b > 1; b >>= 1 {
		if b&1 != 0 {
			return nil, fmt.Errorf("%w: got %d", ErrBuckets, p.Buckets)
		}
		bits++
	}
	dim := users[0].X.Cols
	hasher, err := lsh.NewHasher(dim, bits, g.Split("group-hasher"))
	if err != nil {
		return nil, fmt.Errorf("baselines: Group: %w", err)
	}
	datasets := make([]*mat.Matrix, len(users))
	for t, u := range users {
		datasets[t] = u.X
	}
	sim, err := lsh.SimilarityMatrix(datasets, hasher)
	if err != nil {
		return nil, fmt.Errorf("baselines: Group: %w", err)
	}
	k := p.NumGroups
	if k > len(users) {
		k = len(users)
	}
	assign, err := cluster.Spectral(sim, k, g.Split("group-spectral"))
	if err != nil {
		return nil, fmt.Errorf("baselines: Group: %w", err)
	}

	out := make([]Prediction, len(users))
	for grp := 0; grp < k; grp++ {
		var members []int
		for t, a := range assign {
			if a == grp {
				members = append(members, t)
			}
		}
		if len(members) == 0 {
			continue
		}
		if err := trainGroup(users, members, p, g.SplitN("group-train", grp), out); err != nil {
			return nil, fmt.Errorf("baselines: Group %d: %w", grp, err)
		}
	}
	return out, nil
}

// trainGroup pools the members' labels and fills their predictions.
func trainGroup(users []core.UserData, members []int, p Params, g *rng.RNG, out []Prediction) error {
	dim := users[members[0]].X.Cols
	var rows int
	for _, t := range members {
		rows += users[t].NumLabeled()
	}
	x := mat.NewMatrix(rows, dim)
	y := make([]float64, 0, rows)
	at := 0
	for _, t := range members {
		u := users[t]
		for i := range u.Y {
			copy(x.Row(at), u.X.Row(i))
			at++
		}
		y = append(y, u.Y...)
	}
	model, _, err := svm.Train(x, y, svm.Params{C: p.C, Seed: p.Seed})
	switch {
	case err == nil:
		for _, t := range members {
			out[t] = Prediction{Labels: model.PredictAll(users[t].X)}
		}
		return nil
	case errors.Is(err, svm.ErrNoData) || errors.Is(err, svm.ErrSingleClass):
		// Label-free group: pooled k-means over the members' samples.
		var total int
		for _, t := range members {
			total += users[t].X.Rows
		}
		pooled := mat.NewMatrix(total, dim)
		at := 0
		for _, t := range members {
			copy(pooled.Data[at*dim:], users[t].X.Data)
			at += users[t].X.Rows
		}
		pred, kerr := kmeansPredict(pooled, g)
		if kerr != nil {
			return kerr
		}
		at = 0
		for _, t := range members {
			n := users[t].X.Rows
			out[t] = Prediction{Labels: pred.Labels[at : at+n], NeedsMatching: true}
			at += n
		}
		return nil
	default:
		return err
	}
}

// kmeansPredict clusters rows into two groups mapped to ±1 (arbitrary
// polarity — hence NeedsMatching).
func kmeansPredict(x *mat.Matrix, g *rng.RNG) (Prediction, error) {
	if x.Rows < 2 {
		labels := make([]float64, x.Rows)
		for i := range labels {
			labels[i] = 1
		}
		return Prediction{Labels: labels, NeedsMatching: true}, nil
	}
	res, err := cluster.KMeans(x, 2, g, cluster.KMeansParams{})
	if err != nil {
		return Prediction{}, err
	}
	labels := make([]float64, x.Rows)
	for i, a := range res.Assignment {
		labels[i] = float64(a)*2 - 1
	}
	return Prediction{Labels: labels, NeedsMatching: true}, nil
}

func pooledKMeans(users []core.UserData, g *rng.RNG) ([]Prediction, error) {
	dim := users[0].X.Cols
	var total int
	for _, u := range users {
		total += u.X.Rows
	}
	pooled := mat.NewMatrix(total, dim)
	at := 0
	for _, u := range users {
		copy(pooled.Data[at*dim:], u.X.Data)
		at += u.X.Rows
	}
	pred, err := kmeansPredict(pooled, g.Split("all-kmeans"))
	if err != nil {
		return nil, fmt.Errorf("baselines: All fallback: %w", err)
	}
	out := make([]Prediction, len(users))
	at = 0
	for t, u := range users {
		out[t] = Prediction{Labels: pred.Labels[at : at+u.X.Rows], NeedsMatching: true}
		at += u.X.Rows
	}
	return out, nil
}

func validate(users []core.UserData) error {
	if len(users) == 0 {
		return core.ErrNoUsers
	}
	for t, u := range users {
		if u.X == nil || u.X.Rows == 0 {
			return fmt.Errorf("%w (user %d)", core.ErrEmptyUser, t)
		}
		if u.X.Cols != users[0].X.Cols {
			return fmt.Errorf("%w: user %d", core.ErrDimMismatch, t)
		}
	}
	return nil
}
