package baselines

import (
	"errors"
	"math"
	"testing"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/rng"
)

// rotatedUser builds a 2-d two-Gaussian user rotated by theta, labels on
// the first `labeled` samples.
func rotatedUser(g *rng.RNG, perClass, labeled int, theta float64) (core.UserData, []float64) {
	rot := rng.Rotation2D(theta)
	n := 2 * perClass
	x := mat.NewMatrix(n, 2)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		p := rot.MulVec(mat.Vector{cls*5 + g.Norm(), cls*5 + g.Norm()})
		copy(x.Row(i), p)
		truth[i] = cls
	}
	return core.UserData{X: x, Y: truth[:labeled]}, truth
}

func matchedAccuracy(p Prediction, truth []float64) float64 {
	correct := 0
	for i := range truth {
		if p.Labels[i] == truth[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(truth))
	if p.NeedsMatching && 1-acc > acc {
		return 1 - acc
	}
	return acc
}

func TestAllHomogeneousUsers(t *testing.T) {
	g := rng.New(1)
	var users []core.UserData
	var truths [][]float64
	for i := 0; i < 4; i++ {
		labeled := 10
		if i >= 2 {
			labeled = 0
		}
		u, truth := rotatedUser(g.SplitN("u", i), 20, labeled, 0)
		users = append(users, u)
		truths = append(truths, truth)
	}
	preds, err := All(users, Params{}, g)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for i := range users {
		if preds[i].NeedsMatching {
			t.Errorf("user %d should have supervised predictions", i)
		}
		if acc := matchedAccuracy(preds[i], truths[i]); acc < 0.95 {
			t.Errorf("user %d accuracy = %v", i, acc)
		}
	}
}

func TestAllDegradesOnRotatedUsers(t *testing.T) {
	// The defining weakness of All (paper Fig. 8): with users rotated
	// up to π/2, one global hyperplane cannot fit everyone.
	g := rng.New(2)
	var users []core.UserData
	var truths [][]float64
	angles := []float64{0, math.Pi / 3, 2 * math.Pi / 3, math.Pi}
	for i, a := range angles {
		u, truth := rotatedUser(g.SplitN("u", i), 20, 12, a)
		users = append(users, u)
		truths = append(truths, truth)
	}
	preds, err := All(users, Params{}, g)
	if err != nil {
		t.Fatal(err)
	}
	var acc float64
	for i := range users {
		acc += matchedAccuracy(preds[i], truths[i])
	}
	acc /= float64(len(users))
	if acc > 0.85 {
		t.Errorf("All should degrade on strongly rotated users, got %v", acc)
	}
}

func TestAllFallsBackToClusteringWithoutLabels(t *testing.T) {
	g := rng.New(3)
	u1, t1 := rotatedUser(g.Split("a"), 20, 0, 0)
	u2, _ := rotatedUser(g.Split("b"), 20, 0, 0)
	preds, err := All([]core.UserData{u1, u2}, Params{}, g)
	if err != nil {
		t.Fatalf("All fallback: %v", err)
	}
	if !preds[0].NeedsMatching {
		t.Error("label-free All should flag NeedsMatching")
	}
	if acc := matchedAccuracy(preds[0], t1); acc < 0.9 {
		t.Errorf("pooled clustering accuracy = %v", acc)
	}
}

func TestSingleMixedUsers(t *testing.T) {
	g := rng.New(4)
	uLabeled, tLabeled := rotatedUser(g.Split("a"), 25, 20, 0)
	uUnlabeled, tUnlabeled := rotatedUser(g.Split("b"), 25, 0, math.Pi/2)
	preds, err := Single([]core.UserData{uLabeled, uUnlabeled}, Params{}, g)
	if err != nil {
		t.Fatalf("Single: %v", err)
	}
	if preds[0].NeedsMatching {
		t.Error("labeled user should be supervised")
	}
	if !preds[1].NeedsMatching {
		t.Error("unlabeled user should need matching")
	}
	if acc := matchedAccuracy(preds[0], tLabeled); acc < 0.9 {
		t.Errorf("labeled user accuracy = %v", acc)
	}
	if acc := matchedAccuracy(preds[1], tUnlabeled); acc < 0.9 {
		t.Errorf("unlabeled user matched accuracy = %v", acc)
	}
}

func TestSingleSingleClassLabelsFallBack(t *testing.T) {
	g := rng.New(5)
	u, truth := rotatedUser(g, 20, 0, 0)
	u.Y = []float64{1} // one label, single class
	preds, err := Single([]core.UserData{u}, Params{}, g)
	if err != nil {
		t.Fatalf("Single: %v", err)
	}
	if !preds[0].NeedsMatching {
		t.Error("single-class labels should fall back to clustering")
	}
	if acc := matchedAccuracy(preds[0], truth); acc < 0.9 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestGroupSeparatesRotatedPopulations(t *testing.T) {
	// Two sub-populations at strongly different rotations; Group should
	// recover them and fit each well, beating All.
	g := rng.New(6)
	var users []core.UserData
	var truths [][]float64
	for i := 0; i < 6; i++ {
		angle := 0.0
		if i >= 3 {
			angle = math.Pi / 2
		}
		u, truth := rotatedUser(g.SplitN("u", i), 20, 10, angle)
		users = append(users, u)
		truths = append(truths, truth)
	}
	gp := rng.New(7)
	groupPreds, err := Group(users, Params{NumGroups: 2}, gp)
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	allPreds, err := All(users, Params{}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var accGroup, accAll float64
	for i := range users {
		accGroup += matchedAccuracy(groupPreds[i], truths[i])
		accAll += matchedAccuracy(allPreds[i], truths[i])
	}
	accGroup /= float64(len(users))
	accAll /= float64(len(users))
	if accGroup < accAll {
		t.Errorf("Group (%v) should beat All (%v) on clustered populations", accGroup, accAll)
	}
	if accGroup < 0.9 {
		t.Errorf("Group accuracy = %v", accGroup)
	}
}

func TestGroupBucketValidation(t *testing.T) {
	g := rng.New(9)
	u, _ := rotatedUser(g, 5, 4, 0)
	if _, err := Group([]core.UserData{u}, Params{Buckets: 100}, g); !errors.Is(err, ErrBuckets) {
		t.Errorf("err = %v, want ErrBuckets", err)
	}
}

func TestValidation(t *testing.T) {
	g := rng.New(10)
	if _, err := All(nil, Params{}, g); !errors.Is(err, core.ErrNoUsers) {
		t.Errorf("All(nil) = %v", err)
	}
	bad := []core.UserData{{X: mat.NewMatrix(0, 2)}}
	if _, err := Single(bad, Params{}, g); !errors.Is(err, core.ErrEmptyUser) {
		t.Errorf("Single(empty) = %v", err)
	}
	mismatch := []core.UserData{
		{X: mat.FromRows([][]float64{{1, 2}})},
		{X: mat.FromRows([][]float64{{1}})},
	}
	if _, err := Group(mismatch, Params{}, g); !errors.Is(err, core.ErrDimMismatch) {
		t.Errorf("Group(mismatch) = %v", err)
	}
}

func TestGroupFewerUsersThanGroups(t *testing.T) {
	g := rng.New(11)
	u1, t1 := rotatedUser(g.Split("a"), 10, 8, 0)
	u2, _ := rotatedUser(g.Split("b"), 10, 8, 0)
	preds, err := Group([]core.UserData{u1, u2}, Params{NumGroups: 3}, g)
	if err != nil {
		t.Fatalf("Group with k>T: %v", err)
	}
	if acc := matchedAccuracy(preds[0], t1); acc < 0.85 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestGroupLabelFreeGroupClusters(t *testing.T) {
	// One labeled cluster at angle 0, one unlabeled cluster at π/2: the
	// unlabeled group must fall back to pooled k-means with matching.
	g := rng.New(12)
	var users []core.UserData
	var truths [][]float64
	for i := 0; i < 6; i++ {
		angle, labeled := 0.0, 10
		if i >= 3 {
			angle, labeled = math.Pi/2, 0
		}
		u, truth := rotatedUser(g.SplitN("u", i), 15, labeled, angle)
		users = append(users, u)
		truths = append(truths, truth)
	}
	preds, err := Group(users, Params{NumGroups: 2}, rng.New(13))
	if err != nil {
		t.Fatalf("Group: %v", err)
	}
	for i := 3; i < 6; i++ {
		if acc := matchedAccuracy(preds[i], truths[i]); acc < 0.85 {
			t.Errorf("unlabeled-group user %d accuracy = %v (matching=%v)",
				i, acc, preds[i].NeedsMatching)
		}
	}
}
