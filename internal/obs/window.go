package obs

import (
	"sync"
	"time"
)

// Windowed observation: the cumulative registry answers "what happened since
// the process started"; the two types here answer "what is happening right
// now". Both are rings of epoch-stamped buckets — a bucket is reused the
// first time it is touched in a new epoch, so expiry costs nothing and the
// structures never allocate after construction. They are fed off the hot
// paths (ticker-sampled counter deltas, flight-record durations), take an
// explicit clock, and are safe for concurrent use.

// RateWindow accumulates values into a ring of time buckets and reports the
// sum (or per-second rate) over the most recent window. A nil *RateWindow
// no-ops, like every other obs handle.
type RateWindow struct {
	mu      sync.Mutex
	bucket  time.Duration
	buckets []float64
	epochs  []int64
	// lastTotal supports ObserveTotal: feeding a cumulative counter turns
	// into adding its delta since the previous observation.
	lastTotal float64
	haveTotal bool
}

// NewRateWindow creates a window of the given span split into buckets of
// the given width (both floored to at least one second total / 100ms per
// bucket).
func NewRateWindow(window, bucket time.Duration) *RateWindow {
	if bucket < 100*time.Millisecond {
		bucket = 100 * time.Millisecond
	}
	if window < bucket {
		window = bucket
	}
	n := int((window + bucket - 1) / bucket)
	return &RateWindow{
		bucket:  bucket,
		buckets: make([]float64, n),
		epochs:  make([]int64, n),
	}
}

// epoch maps a wall time to a bucket epoch number.
func (w *RateWindow) epoch(now time.Time) int64 {
	return now.UnixNano() / int64(w.bucket)
}

// Add accumulates v into the bucket owning now.
func (w *RateWindow) Add(now time.Time, v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	e := w.epoch(now)
	i := int(e % int64(len(w.buckets)))
	if w.epochs[i] != e {
		w.epochs[i] = e
		w.buckets[i] = 0
	}
	w.buckets[i] += v
}

// ObserveTotal feeds a cumulative counter: the delta since the previous
// ObserveTotal is added to the current bucket (the first call only arms the
// baseline). A counter reset (total moving backwards) re-arms instead of
// adding a negative spike.
func (w *RateWindow) ObserveTotal(now time.Time, total float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	prev, had := w.lastTotal, w.haveTotal
	w.lastTotal, w.haveTotal = total, true
	w.mu.Unlock()
	if had && total >= prev {
		w.Add(now, total-prev)
	}
}

// Sum returns the total accumulated over the live window ending at now.
func (w *RateWindow) Sum(now time.Time) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	e := w.epoch(now)
	min := e - int64(len(w.buckets)) + 1
	var sum float64
	for i, be := range w.epochs {
		if be >= min && be <= e {
			sum += w.buckets[i]
		}
	}
	return sum
}

// Rate is Sum divided by the window span, in events per second.
func (w *RateWindow) Rate(now time.Time) float64 {
	if w == nil {
		return 0
	}
	return w.Sum(now) / (float64(len(w.buckets)) * w.bucket.Seconds())
}

// Buckets returns the live window's per-bucket sums, oldest first (zeros
// for buckets with no observations) — the sparkline feed.
func (w *RateWindow) Buckets(now time.Time) []float64 {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	n := int64(len(w.buckets))
	e := w.epoch(now)
	out := make([]float64, n)
	for k := int64(0); k < n; k++ {
		be := e - n + 1 + k
		i := int(((be % n) + n) % n)
		if w.epochs[i] == be {
			out[k] = w.buckets[i]
		}
	}
	return out
}

// rollSlot is one time bucket of a RollingHistogram: a full log-linear
// bucket array plus count/sum/max, all owned by the histogram's mutex (the
// rolling histogram is fed off hot paths, so plain fields beat atomics).
type rollSlot struct {
	epoch   int64
	count   int64
	sum     float64
	max     float64
	buckets [histLen]int64
}

// RollingHistogram is the windowed companion of Histogram: the same
// log-linear bucket layout (so quantile error stays bounded by
// 1/histSubBuckets), restricted to the most recent window. A nil receiver
// no-ops.
type RollingHistogram struct {
	mu     sync.Mutex
	bucket time.Duration
	slots  []rollSlot
}

// NewRollingHistogram creates a rolling histogram covering the given window
// split into time buckets of the given width (same floors as
// NewRateWindow).
func NewRollingHistogram(window, bucket time.Duration) *RollingHistogram {
	if bucket < 100*time.Millisecond {
		bucket = 100 * time.Millisecond
	}
	if window < bucket {
		window = bucket
	}
	n := int((window + bucket - 1) / bucket)
	return &RollingHistogram{bucket: bucket, slots: make([]rollSlot, n)}
}

// Observe records one value into the time bucket owning now.
func (h *RollingHistogram) Observe(now time.Time, v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	e := now.UnixNano() / int64(h.bucket)
	s := &h.slots[int(e%int64(len(h.slots)))]
	if s.epoch != e {
		*s = rollSlot{epoch: e}
	}
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
	if v > 0 {
		if i := bucketIndex(v); i >= 0 {
			s.buckets[i]++
		}
	}
}

// Snapshot merges the live slots into one HistogramSnapshot for the window
// ending at now (zero-valued when the window saw nothing).
func (h *RollingHistogram) Snapshot(now time.Time) HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	e := now.UnixNano() / int64(h.bucket)
	min := e - int64(len(h.slots)) + 1
	var out HistogramSnapshot
	var merged [histLen]int64
	var inRange int64
	for i := range h.slots {
		s := &h.slots[i]
		if s.epoch < min || s.epoch > e {
			continue
		}
		out.Count += s.count
		out.Sum += s.sum
		if s.max > out.Max {
			out.Max = s.max
		}
		for b, c := range s.buckets {
			merged[b] += c
			inRange += c
		}
	}
	if out.Count == 0 {
		return out
	}
	out.P50 = rollQuantile(&merged, out.Count, inRange, out.Max, 0.5)
	out.P95 = rollQuantile(&merged, out.Count, inRange, out.Max, 0.95)
	return out
}

// rollQuantile estimates a quantile over merged log-linear buckets, with
// observations outside the covered range (under <= 0, clamped overflow)
// treated like Histogram treats them.
func rollQuantile(buckets *[histLen]int64, total, inRange int64, max, q float64) float64 {
	rank := int64(q*float64(total) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	cum := total - inRange // underflow observations sort first, as zeros
	if rank <= cum {
		return 0
	}
	for i := 0; i < histLen; i++ {
		cum += buckets[i]
		if cum >= rank {
			u := bucketUpper(i)
			if i == histLen-1 || max < u {
				return max
			}
			return u
		}
	}
	return max
}
