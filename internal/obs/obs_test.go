package obs

import (
	"bufio"
	"encoding/json"
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(MetricCCCPIterations, "")
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge(MetricParallelQueueDepth, "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5000; j++ {
				h.Observe(float64(i + 1))
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 40000 {
		t.Fatalf("count = %d, want 40000", h.Count())
	}
	if want := 5000.0 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8); h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	if h.Max() != 8 {
		t.Fatalf("max = %v, want 8", h.Max())
	}
}

// TestHistogramQuantiles checks the streaming quantile estimates against a
// sorted reference within the documented 1/16 relative bucket error.
func TestHistogramQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newHistogram()
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over ~7 decades, the realistic span of durations.
		vals[i] = math.Pow(10, -6+8*rng.Float64())
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		ref := vals[int(math.Ceil(q*float64(n)))-1]
		got := h.Quantile(q)
		if got < ref || got > ref*(1+2.0/histSubBuckets) {
			t.Errorf("q=%v: got %v, sorted reference %v (allowed [ref, ref*%.4f])",
				q, got, ref, 1+2.0/histSubBuckets)
		}
	}
	if got, want := h.Quantile(1), vals[n-1]; got != want {
		t.Errorf("q=1: got %v, want exact max %v", got, want)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(0)
	h.Observe(-3)
	if h.Quantile(0.5) != 0 {
		t.Errorf("non-positive observations should report quantile 0, got %v", h.Quantile(0.5))
	}
	h.Observe(1e300) // far above the covered range: clamps, max stays exact
	if h.Max() != 1e300 {
		t.Errorf("max = %v, want 1e300", h.Max())
	}
	if got := h.Quantile(1); got != 1e300 {
		t.Errorf("overflow quantile = %v, want clamped to max", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Add(3)
	r.Gauge("y", "").Set(1)
	r.GaugeFunc("z", "", func() float64 { return 1 })
	r.Histogram("h", "").Observe(1)
	r.Span(Span{Kind: SpanQPSolve})
	r.NetMetrics().BytesSent.Add(1)
	r.PoolMetrics().Tasks.Inc()
	if r.Spans() != nil || r.CounterValue("x") != 0 || r.SpansRecorded() != 0 {
		t.Error("nil registry should read as empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestCatalogPreRegistered(t *testing.T) {
	r := NewRegistry()
	snap := r.Snapshot()
	for _, d := range Catalog {
		if d.Kind == KindGaugeFunc {
			continue // registered lazily by the surface that owns the closure
		}
		if _, ok := snap[d.Name]; !ok {
			t.Errorf("catalog metric %q not pre-registered", d.Name)
		}
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

// ValidatePrometheusText asserts every line of a text exposition is either
// a well-formed comment or a well-formed sample. Shared with the plos-server
// acceptance test via identical logic there.
func validatePrometheusText(t *testing.T, text string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		lines++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid prometheus line: %q", line)
		}
	}
	if lines == 0 {
		t.Error("empty exposition")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricADMMRounds, "").Add(7)
	r.Gauge(MetricTrainObjective, "").Set(1.5)
	r.Histogram(MetricQPSolveSeconds, "").Observe(0.01)
	r.GaugeFunc(MetricDeviceCommEnergyJoules, "derived", func() float64 { return 2.25 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	validatePrometheusText(t, text)
	for _, want := range []string{
		"admm_rounds_total 7",
		"train_objective 1.5",
		"qp_solve_seconds_count 1",
		"device_comm_energy_joules 2.25",
		`qp_solve_seconds{quantile="0.95"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestGaugeFuncReplacesGauge(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "h").Set(1)
	r.GaugeFunc("g", "h", func() float64 { return 9 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "\ng 9") != 1 || strings.Contains(b.String(), "\ng 1") {
		t.Errorf("gauge func should replace the plain gauge:\n%s", b.String())
	}
}

func TestTraceRingBounded(t *testing.T) {
	r := NewRegistry()
	n := DefaultTraceCapacity + 100
	for i := 0; i < n; i++ {
		r.Span(Span{Kind: SpanADMMRound, Round: i, User: -1})
	}
	spans := r.Spans()
	if len(spans) != DefaultTraceCapacity {
		t.Fatalf("ring retained %d spans, want %d", len(spans), DefaultTraceCapacity)
	}
	if spans[0].Round != 100 || spans[len(spans)-1].Round != n-1 {
		t.Fatalf("ring should retain the newest spans oldest-first: got [%d..%d]",
			spans[0].Round, spans[len(spans)-1].Round)
	}
	if r.SpansRecorded() != int64(n) {
		t.Fatalf("recorded = %d, want %d", r.SpansRecorded(), n)
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	r := NewRegistry()
	r.Span(Span{Kind: SpanQPSolve, Start: time.Unix(0, 0), Dur: time.Millisecond,
		Round: 2, User: 1, Iterations: 40})
	r.Span(Span{Kind: SpanADMMRound, Round: 3, User: -1, Primal: 0.5, Dual: 0.25})
	var b strings.Builder
	if err := r.WriteSpansJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first["kind"] != "qp-solve" || first["iters"].(float64) != 40 {
		t.Errorf("unexpected first span: %v", first)
	}
}

func TestSnapshotMarshals(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricBytesSent, "").Add(1024)
	r.Histogram(MetricADMMRoundSeconds, "").Observe(0.2)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[MetricBytesSent].(float64) != 1024 {
		t.Errorf("snapshot round-trip lost %s", MetricBytesSent)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter(MetricQPIterations, "")
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	var nilC *Counter
	b.Run("disabled-nil", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nilC.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
