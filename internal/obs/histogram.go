package obs

import (
	"math"
	"sync/atomic"
)

// Histogram bucket layout: log-linear (exponential octaves, each split into
// histSubBuckets linear sub-buckets), the same shape HDR histograms and
// OpenTelemetry exponential histograms use. Observations are one atomic add
// into the owning bucket plus count/sum/max updates — no locks, no
// allocation — and quantile estimates carry a bounded relative error of
// 1/histSubBuckets (6.25%).
const (
	histSubBuckets = 16
	// histMinExp..histMaxExp is the covered base-2 exponent range:
	// ~9.3e-10 .. ~2.1e9, comfortably spanning nanosecond-scale durations
	// (in seconds) through byte counts. Values below go to a dedicated
	// underflow bucket; values above clamp into the top bucket.
	histMinExp = -30
	histMaxExp = 31
	histOctave = histMaxExp - histMinExp + 1
	histLen    = histOctave * histSubBuckets
)

// Histogram is a streaming, lock-free histogram with p50/p95/max readout.
// A nil *Histogram is a valid no-op receiver.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
	under   atomic.Int64 // observations <= 0 or below the covered range
	buckets [histLen]atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a positive value into [0, histLen), or -1 for underflow.
func bucketIndex(v float64) int {
	f, exp := math.Frexp(v) // v = f * 2^exp, f in [0.5, 1)
	if exp < histMinExp {
		return -1
	}
	if exp > histMaxExp {
		return histLen - 1
	}
	sub := int((f*2 - 1) * histSubBuckets) // linear split of [0.5, 1)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return (exp-histMinExp)*histSubBuckets + sub
}

// bucketUpper is the exclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	exp := i/histSubBuckets + histMinExp
	sub := i % histSubBuckets
	// Bucket (exp, sub) holds f in [0.5+sub/32·2, …): upper fraction is
	// (histSubBuckets + sub + 1) / (2·histSubBuckets).
	return math.Ldexp(float64(histSubBuckets+sub+1)/(2*histSubBuckets), exp)
}

// Observe records one value (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	maxFloat(&h.maxBits, v)
	if v <= 0 {
		h.under.Add(1)
		return
	}
	i := bucketIndex(v)
	if i < 0 {
		h.under.Add(1)
		return
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Max returns the largest observed value (zero when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed stream:
// the upper bound of the bucket holding the rank-⌈q·count⌉ observation,
// clamped to the observed maximum, so the estimate's relative error is
// bounded by the sub-bucket width (1/16). Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := h.under.Load()
	if rank <= cum {
		return 0
	}
	for i := 0; i < histLen; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			u := bucketUpper(i)
			m := h.Max()
			// The top bucket also holds clamped overflow values, so its
			// only honest estimate is the observed maximum.
			if i == histLen-1 || m < u {
				return m
			}
			return u
		}
	}
	return h.Max()
}
