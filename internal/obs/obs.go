package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is a
// valid no-op receiver, so call sites never branch on whether observation is
// enabled — the disabled path costs one nil check.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value. A nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta to the gauge (no-op on a nil receiver).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// maxFloat atomically raises a float64 stored as uint64 bits to at least v.
func maxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry is a process-local metric namespace: counters, gauges, lazily
// evaluated gauge functions, streaming histograms, and a bounded span trace.
// All accessors are get-or-create by name and safe for concurrent use; a nil
// *Registry is a valid no-op receiver throughout (every accessor returns a
// nil handle whose methods no-op), so instrumented code never branches on
// whether observation is enabled.
type Registry struct {
	mu       sync.Mutex
	order    []string // registration order, for stable export
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
	hists    map[string]*Histogram
	help     map[string]string

	trace  *Trace
	flight atomic.Pointer[flightSlot]
	health atomic.Pointer[healthSlot]
}

// DefaultTraceCapacity bounds the span ring of a fresh registry.
const DefaultTraceCapacity = 4096

// NewRegistry creates a registry with every Catalog metric pre-registered
// (so an export surface always shows the full metric set, zeros included)
// and a span ring of DefaultTraceCapacity.
func NewRegistry() *Registry { return NewRegistrySized(DefaultTraceCapacity) }

// NewRegistrySized is NewRegistry with an explicit span-ring capacity
// (values <= 0 fall back to DefaultTraceCapacity). Long Fig. 5-scale runs
// outgrow the default ring; size it up front rather than losing the head of
// the trace.
func NewRegistrySized(traceCapacity int) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
		trace:    newTrace(traceCapacity),
	}
	for _, d := range Catalog {
		switch d.Kind {
		case KindCounter:
			r.Counter(d.Name, d.Help)
		case KindGauge:
			r.Gauge(d.Name, d.Help)
		case KindHistogram:
			r.Histogram(d.Name, d.Help)
		case KindGaugeFunc:
			// Gauge funcs need a closure from the caller (e.g. the energy
			// model); they appear once someone registers them.
		}
	}
	r.trace.dropped = r.Counter(MetricSpansDropped, "")
	return r
}

// register records name/help on first sight and returns whether it was new.
// Caller holds r.mu.
func (r *Registry) register(name, help string) bool {
	if _, ok := r.help[name]; ok {
		return false
	}
	r.help[name] = help
	r.order = append(r.order, name)
	return true
}

// Counter returns the counter registered under name, creating it on first
// use (help is kept from the first registration). Nil-safe: a nil registry
// returns a nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers fn to be evaluated at export time under name,
// replacing any plain gauge previously registered with that name. Used for
// derived values (e.g. the device energy model applied to the transport
// counters) that are cheap to compute on scrape but pointless to maintain
// continuously.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help)
	delete(r.gauges, name) // the func takes precedence at export
	r.funcs[name] = fn
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name, help)
	h := newHistogram()
	r.hists[name] = h
	return h
}

// CounterValue reads a counter by name without creating it (zero when
// absent or on a nil registry). Export surfaces and derived gauges use it.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// NetMetrics bundles the four transport counters so the wire layer touches
// one pointer. Nil-safe: a nil *NetMetrics (from a nil registry) no-ops.
type NetMetrics struct {
	MsgsSent, MsgsRecv   *Counter
	BytesSent, BytesRecv *Counter
}

// NetMetrics returns the transport counter bundle of this registry. On a
// nil registry the bundle's handles are all nil, and therefore no-ops.
func (r *Registry) NetMetrics() *NetMetrics {
	if r == nil {
		return &NetMetrics{}
	}
	return &NetMetrics{
		MsgsSent:  r.Counter(MetricMessagesSent, ""),
		MsgsRecv:  r.Counter(MetricMessagesReceived, ""),
		BytesSent: r.Counter(MetricBytesSent, ""),
		BytesRecv: r.Counter(MetricBytesReceived, ""),
	}
}

// PoolMetrics bundles the worker-pool instrumentation points of
// internal/parallel. Nil-safe like NetMetrics.
type PoolMetrics struct {
	Batches    *Counter   // parallel batches started
	Tasks      *Counter   // total task indexes submitted
	QueueDepth *Gauge     // size of the most recent batch (0 when drained)
	WorkerBusy *Histogram // seconds one worker goroutine spent on one batch
}

// PoolMetrics returns the worker-pool metric bundle of this registry. On a
// nil registry the bundle's handles are all nil, and therefore no-ops.
func (r *Registry) PoolMetrics() *PoolMetrics {
	if r == nil {
		return &PoolMetrics{}
	}
	return &PoolMetrics{
		Batches:    r.Counter(MetricParallelBatches, ""),
		Tasks:      r.Counter(MetricParallelTasks, ""),
		QueueDepth: r.Gauge(MetricParallelQueueDepth, ""),
		WorkerBusy: r.Histogram(MetricParallelWorkerBusySeconds, ""),
	}
}
