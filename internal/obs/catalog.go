package obs

// Kind is the export type of a metric.
type Kind int

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindGaugeFunc
	KindHistogram
)

// String returns the Prometheus type keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "summary"
	default:
		return "untyped"
	}
}

// Canonical metric names. Instrumentation sites reference these constants —
// never string literals — so the catalog below is complete by construction
// and scripts/checkmetrics can hold docs/OBSERVABILITY.md to it.
const (
	MetricTrainRuns         = "train_runs_total"
	MetricTrainObjective    = "train_objective"
	MetricCCCPIterations    = "cccp_iterations_total"
	MetricCCCPConverged     = "cccp_converged"
	MetricCutRounds         = "cutplane_rounds_total"
	MetricConstraintsAdded  = "constraints_added_total"
	MetricConstraintsActive = "constraints_active"

	MetricQPSolves             = "qp_solves_total"
	MetricQPIterations         = "qp_iterations_total"
	MetricQPSolveSeconds       = "qp_solve_seconds"
	MetricWarmStartTruncations = "qp_warmstart_truncations_total"

	MetricADMMRounds         = "admm_rounds_total"
	MetricADMMPrimalResidual = "admm_primal_residual"
	MetricADMMDualResidual   = "admm_dual_residual"
	MetricADMMRoundSeconds   = "admm_round_seconds"
	MetricAsyncUpdates       = "async_updates_total"
	MetricAsyncSweepSolves   = "async_sweep_solves_total"
	MetricAsyncStaleFolds    = "async_stale_folds_total"

	MetricMessagesSent     = "transport_messages_sent_total"
	MetricMessagesReceived = "transport_messages_received_total"
	MetricBytesSent        = "transport_bytes_sent_total"
	MetricBytesReceived    = "transport_bytes_received_total"

	MetricTransportRetries     = "transport_retries_total"
	MetricTransportOpTimeouts  = "transport_op_timeouts_total"
	MetricTransportDupsDropped = "transport_duplicates_dropped_total"
	MetricChaosFaults          = "chaos_faults_injected_total"

	MetricProtocolReconnects     = "protocol_reconnects_total"
	MetricProtocolStaleReuses    = "protocol_stale_reuses_total"
	MetricProtocolDroppedDevices = "protocol_devices_dropped_total"
	MetricProtocolDeviceDrops    = "protocol_device_drops_total"
	MetricCheckpointsWritten     = "checkpoints_written_total"

	MetricSpansDropped = "obs_spans_dropped_total"

	MetricParallelBatches           = "parallel_batches_total"
	MetricParallelTasks             = "parallel_tasks_total"
	MetricParallelQueueDepth        = "parallel_queue_depth"
	MetricParallelWorkerBusySeconds = "parallel_worker_busy_seconds"

	MetricDeviceCommEnergyJoules = "device_comm_energy_joules"

	MetricWireRawBytes           = "wire_raw_bytes_total"
	MetricWireCompressedBytes    = "wire_compressed_bytes_total"
	MetricWireCompressionRatio   = "wire_compression_ratio"
	MetricQuantErrorFeedbackNorm = "quant_error_feedback_norm"

	MetricShardReduceSeconds   = "shard_reduce_seconds"
	MetricShardDevices         = "shard_devices"
	MetricShardMigrations      = "shard_migrations_total"
	MetricShardCrossBytesTotal = "shard_cross_bytes_total"

	MetricShardRestarts     = "shard_restarts_total"
	MetricAggLinkRetries    = "agg_link_retries_total"
	MetricShardStaleReduces = "shard_stale_reduces_total"

	MetricFlightWriteErrors    = "obs_flight_write_errors"
	MetricHealthState          = "health_state"
	MetricProcessUptimeSeconds = "process_uptime_seconds"
	MetricBuildInfo            = "plos_build_info"
)

// MetricDef describes one catalog entry.
type MetricDef struct {
	Name string
	Kind Kind
	// Unit is the measurement unit ("1" for dimensionless counts).
	Unit string
	Help string
}

// Catalog is the complete metric set of the observability layer. NewRegistry
// pre-registers every non-func entry; scripts/checkmetrics fails the build
// when a name here is missing from docs/OBSERVABILITY.md.
var Catalog = []MetricDef{
	{MetricTrainRuns, KindCounter, "1", "Training runs started (any trainer)."},
	{MetricTrainObjective, KindGauge, "1", "Objective value after the most recent CCCP round."},
	{MetricCCCPIterations, KindCounter, "1", "Outer CCCP iterations completed."},
	{MetricCCCPConverged, KindGauge, "1", "1 if the most recent training run's CCCP loop converged, else 0."},
	{MetricCutRounds, KindCounter, "1", "Cutting-plane rounds completed (centralized restricted solves and device-local solves)."},
	{MetricConstraintsAdded, KindCounter, "1", "Constraints appended to working sets."},
	{MetricConstraintsActive, KindGauge, "1", "Total working-set size across users after the most recent cut loop."},

	{MetricQPSolves, KindCounter, "1", "Inner QP dual solves."},
	{MetricQPIterations, KindCounter, "1", "Cumulative projected-gradient (FISTA) iterations across QP solves."},
	{MetricQPSolveSeconds, KindHistogram, "seconds", "Wall-clock duration of one QP solve."},
	{MetricWarmStartTruncations, KindCounter, "1", "Warm-start duals dropped because a working set shrank between restricted solves (the stale mapping is discarded and the solve falls back to a cold start)."},

	{MetricADMMRounds, KindCounter, "1", "Consensus ADMM rounds completed."},
	{MetricADMMPrimalResidual, KindGauge, "1", "Primal residual of the most recent ADMM round (paper Eq. 24)."},
	{MetricADMMDualResidual, KindGauge, "1", "Dual residual of the most recent ADMM round (paper Eq. 24)."},
	{MetricADMMRoundSeconds, KindHistogram, "seconds", "Wall-clock duration of one ADMM round."},
	{MetricAsyncUpdates, KindCounter, "1", "Device solutions folded in by the asynchronous trainer."},
	{MetricAsyncSweepSolves, KindCounter, "1", "Device re-solves in the final synchronous sweep that closes each asynchronous CCCP round (not folded into the consensus)."},
	{MetricAsyncStaleFolds, KindCounter, "1", "Asynchronous wire folds whose arriving solution was computed against a consensus at least one full fleet round old."},

	{MetricMessagesSent, KindCounter, "1", "Protocol messages sent on observed connections."},
	{MetricMessagesReceived, KindCounter, "1", "Protocol messages received on observed connections."},
	{MetricBytesSent, KindCounter, "bytes", "Bytes sent on observed connections (real encoded bytes on TCP, WireSize on pipes)."},
	{MetricBytesReceived, KindCounter, "bytes", "Bytes received on observed connections."},

	{MetricTransportRetries, KindCounter, "1", "Transient Send/Recv failures retried by the transport.Retry wrapper."},
	{MetricTransportOpTimeouts, KindCounter, "1", "Send/Recv operations that hit their per-operation deadline."},
	{MetricTransportDupsDropped, KindCounter, "1", "Duplicate deliveries discarded by sequence-number dedup."},
	{MetricChaosFaults, KindCounter, "1", "Faults injected by the deterministic chaos connection (drops, delays, duplicates, corruptions, partitions)."},

	{MetricProtocolReconnects, KindCounter, "1", "Devices re-attached to their server slot after a session-resume handshake."},
	{MetricProtocolStaleReuses, KindCounter, "1", "ADMM rounds that reused a straggler's previous local solution."},
	{MetricProtocolDroppedDevices, KindCounter, "1", "Devices permanently dropped from a training run."},
	{MetricProtocolDeviceDrops, KindCounter, "1", "Device drop-cause events recorded (first fatal failure per connection; includes devices that later recovered via session resume)."},
	{MetricCheckpointsWritten, KindCounter, "1", "Server trainer-state checkpoints written to disk."},

	{MetricSpansDropped, KindCounter, "1", "Phase-trace spans overwritten because the bounded span ring wrapped (size the ring with plos.WithTraceCapacity)."},

	{MetricParallelBatches, KindCounter, "1", "Worker-pool batches (For/Do/Map calls) started."},
	{MetricParallelTasks, KindCounter, "1", "Task indexes submitted to the worker pool."},
	{MetricParallelQueueDepth, KindGauge, "1", "Task count of the most recent batch (0 once drained)."},
	{MetricParallelWorkerBusySeconds, KindHistogram, "seconds", "Time one worker goroutine spent on one batch."},

	{MetricDeviceCommEnergyJoules, KindGaugeFunc, "joules", "Estimated device radio energy for the observed traffic (cost.DeviceProfile model; registered by plos-server)."},

	{MetricWireRawBytes, KindCounter, "bytes", "Dense-equivalent bytes of the parameter payloads that crossed compression-negotiated connections (what the same exchange would have cost at codec v3)."},
	{MetricWireCompressedBytes, KindCounter, "bytes", "Actual encoded bytes of compressed parameter payloads on the wire (codec v4)."},
	{MetricWireCompressionRatio, KindGauge, "1", "Cumulative raw/compressed parameter-payload byte ratio across compression-negotiated connections (1 means compression is not saving anything)."},
	{MetricQuantErrorFeedbackNorm, KindGauge, "1", "L2 norm of the sender-side error-feedback accumulators after the most recent compressed send (bounded when compression is healthy; growth signals divergence)."},

	{MetricShardReduceSeconds, KindHistogram, "seconds", "Time one shard spent blocked on the aggregator per ADMM iteration (both cross-shard reduce round-trips)."},
	{MetricShardDevices, KindGauge, "1", "Devices currently served by this shard process (live slots after the handshake or restore)."},
	{MetricShardMigrations, KindCounter, "1", "Users adopted by this shard through a checkpoint-restore handoff (rebalance or shard replacement)."},
	{MetricShardCrossBytesTotal, KindCounter, "bytes", "Bytes exchanged on the shard's aggregator connection (cross-shard reduce traffic; excludes device traffic)."},

	{MetricShardRestarts, KindCounter, "1", "Crashed shards re-attached to the aggregator after a checkpoint-restore rejoin handshake."},
	{MetricAggLinkRetries, KindCounter, "1", "Transient failures absorbed by the retry layer on shard-aggregator links specifically (also counted in transport_retries_total)."},
	{MetricShardStaleReduces, KindCounter, "1", "Reduce legs the aggregator assembled from a detached shard's last partials instead of a fresh message."},

	{MetricFlightWriteErrors, KindGauge, "1", "1 once the flight recorder's JSONL writer latched a write error (further file writes stop; the in-memory tail keeps filling), else 0."},
	{MetricHealthState, KindGauge, "1", "Fleet health rollup of the attached health engine: 0 ok, 1 degraded, 2 critical (stays 0 with no engine)."},
	{MetricProcessUptimeSeconds, KindGaugeFunc, "seconds", "Seconds since this process initialized the plos package (registered by NewObserver)."},
	{MetricBuildInfo, KindGaugeFunc, "1", "Constant 1; the help text carries the build identity — Go runtime version, wire codec versions, compiled-in serving planes (registered by NewObserver)."},
}
