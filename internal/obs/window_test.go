package obs

import (
	"sync"
	"testing"
	"time"
)

// t0 is an arbitrary fixed base time so window tests are deterministic.
var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func TestRateWindowSumAndExpiry(t *testing.T) {
	w := NewRateWindow(10*time.Second, time.Second)
	w.Add(t0, 3)
	w.Add(t0.Add(2*time.Second), 4)
	if got := w.Sum(t0.Add(2 * time.Second)); got != 7 {
		t.Fatalf("Sum = %v, want 7", got)
	}
	// 11s after the first add, its bucket has rolled out of the window.
	if got := w.Sum(t0.Add(11 * time.Second)); got != 4 {
		t.Fatalf("Sum after expiry = %v, want 4", got)
	}
	// Far future: everything expired.
	if got := w.Sum(t0.Add(time.Hour)); got != 0 {
		t.Fatalf("Sum far future = %v, want 0", got)
	}
}

func TestRateWindowRate(t *testing.T) {
	w := NewRateWindow(10*time.Second, time.Second)
	w.Add(t0, 20)
	if got := w.Rate(t0); got != 2 {
		t.Fatalf("Rate = %v, want 2 (20 over a 10s window)", got)
	}
}

func TestRateWindowObserveTotal(t *testing.T) {
	w := NewRateWindow(10*time.Second, time.Second)
	w.ObserveTotal(t0, 100) // arms the baseline only
	if got := w.Sum(t0); got != 0 {
		t.Fatalf("Sum after baseline = %v, want 0", got)
	}
	w.ObserveTotal(t0.Add(time.Second), 105)
	w.ObserveTotal(t0.Add(2*time.Second), 107)
	if got := w.Sum(t0.Add(2 * time.Second)); got != 7 {
		t.Fatalf("Sum of deltas = %v, want 7", got)
	}
	// Counter reset re-arms instead of adding a negative delta.
	w.ObserveTotal(t0.Add(3*time.Second), 1)
	if got := w.Sum(t0.Add(3 * time.Second)); got != 7 {
		t.Fatalf("Sum after reset = %v, want 7", got)
	}
	w.ObserveTotal(t0.Add(4*time.Second), 2)
	if got := w.Sum(t0.Add(4 * time.Second)); got != 8 {
		t.Fatalf("Sum after re-arm = %v, want 8", got)
	}
}

func TestRateWindowBuckets(t *testing.T) {
	w := NewRateWindow(5*time.Second, time.Second)
	w.Add(t0, 1)
	w.Add(t0.Add(2*time.Second), 3)
	got := w.Buckets(t0.Add(4 * time.Second))
	if len(got) != 5 {
		t.Fatalf("len(Buckets) = %d, want 5", len(got))
	}
	// Oldest-first: bucket of t0 is index 0, t0+2s is index 2.
	want := []float64{1, 0, 3, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets = %v, want %v", got, want)
		}
	}
}

func TestRateWindowNil(t *testing.T) {
	var w *RateWindow
	w.Add(t0, 1)
	w.ObserveTotal(t0, 1)
	if w.Sum(t0) != 0 || w.Rate(t0) != 0 || w.Buckets(t0) != nil {
		t.Fatal("nil RateWindow must report zeros")
	}
}

func TestRollingHistogramWindow(t *testing.T) {
	h := NewRollingHistogram(10*time.Second, time.Second)
	for i := 0; i < 90; i++ {
		h.Observe(t0, 1.0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(t0.Add(time.Second), 100.0)
	}
	s := h.Snapshot(t0.Add(time.Second))
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Max != 100 {
		t.Fatalf("Max = %v, want 100", s.Max)
	}
	if s.Sum != 90+1000 {
		t.Fatalf("Sum = %v, want 1090", s.Sum)
	}
	// p50 lands in the value-1 bucket, p95 in the value-100 bucket — both
	// within the log-linear layout's relative error.
	if s.P50 < 0.9 || s.P50 > 1.1 {
		t.Fatalf("P50 = %v, want ~1", s.P50)
	}
	if s.P95 < 90 || s.P95 > 110 {
		t.Fatalf("P95 = %v, want ~100", s.P95)
	}
	// After the window slides past t0, only the 10 late observations remain.
	s = h.Snapshot(t0.Add(10 * time.Second))
	if s.Count != 10 {
		t.Fatalf("Count after expiry = %d, want 10", s.Count)
	}
	// And an empty window snapshots to zero.
	s = h.Snapshot(t0.Add(time.Hour))
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P95 != 0 || s.Max != 0 {
		t.Fatalf("empty-window snapshot = %+v, want zeros", s)
	}
}

func TestRollingHistogramUnderflow(t *testing.T) {
	h := NewRollingHistogram(10*time.Second, time.Second)
	h.Observe(t0, 0)  // non-positive: counted, not bucketed
	h.Observe(t0, -5) // same
	h.Observe(t0, 2)
	s := h.Snapshot(t0)
	if s.Count != 3 {
		t.Fatalf("Count = %d, want 3", s.Count)
	}
	if s.P50 != 0 {
		t.Fatalf("P50 = %v, want 0 (two of three observations are <= 0)", s.P50)
	}
	if s.P95 < 1.9 || s.P95 > 2.2 {
		t.Fatalf("P95 = %v, want ~2", s.P95)
	}
}

func TestRollingHistogramNil(t *testing.T) {
	var h *RollingHistogram
	h.Observe(t0, 1)
	if s := h.Snapshot(t0); s.Count != 0 {
		t.Fatal("nil RollingHistogram must snapshot to zero")
	}
}

func TestWindowConcurrency(t *testing.T) {
	w := NewRateWindow(5*time.Second, time.Second)
	h := NewRollingHistogram(5*time.Second, time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				now := t0.Add(time.Duration(i) * 10 * time.Millisecond)
				w.Add(now, 1)
				h.Observe(now, float64(g+1))
				_ = w.Sum(now)
				_ = h.Snapshot(now)
			}
		}(g)
	}
	wg.Wait()
	if got := w.Sum(t0.Add(4990 * time.Millisecond)); got != 8*500 {
		t.Fatalf("concurrent Sum = %v, want 4000", got)
	}
}
