package obs

// The health-sink hook is how the live health plane (internal/obs/health)
// taps the registry's signal streams without the instrumented code knowing
// it exists: FlightRecord forwards every record to the attached sink, and
// the protocol layer stamps/reads the compact wire health code through the
// nil-safe helpers below — so obs stays dependency-free and the health
// engine (which imports obs) never appears in an import cycle.

// HealthSink consumes the registry's streaming signals and answers with a
// rolled-up health code. Implemented by health.Engine.
type HealthSink interface {
	// ObserveRecord receives every flight record the registry emits,
	// including on hot paths — implementations must be cheap and must
	// ignore RecordHealthTransition (their own output).
	ObserveRecord(Record)
	// HealthCode is the fleet rollup: 0 ok, 1 degraded, 2 critical.
	HealthCode() int
	// ReportRemote folds a remote component's self-reported health code
	// into the local tree (e.g. the aggregator recording a shard's
	// piggybacked code).
	ReportRemote(component string, code int, cause string)
}

// healthSlot wraps the sink so detaching (storing nil) is expressible with
// atomic.Pointer.
type healthSlot struct{ sink HealthSink }

// SetHealthSink attaches s to the registry; every FlightRecord call is
// forwarded there. Passing nil detaches. No-op on a nil registry.
func (r *Registry) SetHealthSink(s HealthSink) {
	if r == nil {
		return
	}
	r.health.Store(&healthSlot{sink: s})
}

// HealthSink returns the attached sink (nil when none, or on a nil
// registry).
func (r *Registry) HealthSink() HealthSink {
	if r == nil {
		return nil
	}
	if slot := r.health.Load(); slot != nil {
		return slot.sink
	}
	return nil
}

// HealthStamp is the 1-based wire encoding of the current rollup — 1 ok,
// 2 degraded, 3 critical — or 0 when no health engine is attached. The zero
// keeps messages from engine-less processes byte-identical to old peers, so
// the shard piggyback needs no codec change.
func (r *Registry) HealthStamp() int {
	if s := r.HealthSink(); s != nil {
		return s.HealthCode() + 1
	}
	return 0
}

// ReportHealth forwards a remote component's self-reported health code to
// the attached sink (no-op when none is attached or on a nil registry).
func (r *Registry) ReportHealth(component string, code int, cause string) {
	if s := r.HealthSink(); s != nil {
		s.ReportRemote(component, code, cause)
	}
}
