package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

// sampleRecord builds one record of the given kind with every relevant field
// set to a distinctive value.
func sampleRecord(kind RecordKind) Record {
	return Record{
		Kind: kind, Trainer: "distributed", Users: 7, Round: 3, User: 2, Shard: 1,
		Objective: 1.5, SignFlips: 4, Violation: 0.25, Added: 1, WorkingSet: 9,
		Primal: 0.125, Dual: 0.0625, Dur: 2 * time.Millisecond,
		Arrive: time.Millisecond, Solve: 500 * time.Microsecond,
		QPIters: 11, Cuts: 3, WarmHits: 2, Msgs: 12, Bytes: 4096, EnergyJ: 0.5,
		Stale: 2, Cause: "boom", Permanent: true, Active: 3, Need: 4, Converged: true,
		Epoch: 5, Staleness: 1.5, Weight: 0.4,
		Component: "shard:1", From: "ok", To: "degraded",
	}
}

// TestRecordMarshalMatchesCatalog two-way checks the JSONL schema against
// RecordCatalog: each kind must emit exactly "rec" plus its documented
// fields — the same contract scripts/checkmetrics enforces against the docs.
func TestRecordMarshalMatchesCatalog(t *testing.T) {
	kinds := []RecordKind{RecordRunStart, RecordCCCPStart, RecordCCCPIteration,
		RecordCutRound, RecordADMMRound, RecordDeviceRound, RecordStaleReuse,
		RecordDeviceDrop, RecordQuorum, RecordRunEnd, RecordShardReduce,
		RecordShardDown, RecordShardStale, RecordShardRestore,
		RecordAsyncFold, RecordAsyncSnapshot, RecordHealthTransition}
	if len(kinds) != len(RecordCatalog) {
		t.Fatalf("catalog has %d entries for %d kinds", len(RecordCatalog), len(kinds))
	}
	byName := map[string]RecordDef{}
	for _, def := range RecordCatalog {
		byName[def.Name] = def
	}
	for _, kind := range kinds {
		def, ok := byName[kind.String()]
		if !ok {
			t.Errorf("kind %v missing from RecordCatalog", kind)
			continue
		}
		line, err := sampleRecord(kind).marshal()
		if err != nil {
			t.Fatalf("marshal %v: %v", kind, err)
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("kind %v emits invalid JSON: %v", kind, err)
		}
		if m["rec"] != kind.String() {
			t.Errorf("kind %v: rec field = %v", kind, m["rec"])
		}
		want := append([]string{"rec"}, def.Fields...)
		var got []string
		for k := range m {
			got = append(got, k)
		}
		sort.Strings(want)
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("kind %v fields = %v, catalog says %v", kind, got, want)
		}
	}
}

func TestFlightRecorderStreamAndTail(t *testing.T) {
	var buf strings.Builder
	fr := NewFlightRecorder(&buf, 4)
	for i := 0; i < 6; i++ {
		fr.Record(Record{Kind: RecordCCCPStart, Round: i})
	}
	if got := fr.Recorded(); got != 6 {
		t.Errorf("Recorded() = %d, want 6", got)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("stream has %d lines, want 6", len(lines))
	}
	tail := fr.Tail()
	if len(tail) != 4 {
		t.Fatalf("tail has %d lines, want 4", len(tail))
	}
	// Tail is the last 4 records, oldest first.
	for i, line := range tail {
		if line != lines[i+2] {
			t.Errorf("tail[%d] = %s, want %s", i, line, lines[i+2])
		}
	}
	if err := fr.Err(); err != nil {
		t.Errorf("Err() = %v", err)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestFlightRecorderLatchesWriteError(t *testing.T) {
	fw := &failWriter{}
	fr := NewFlightRecorder(fw, 8)
	for i := 0; i < 4; i++ {
		fr.Record(Record{Kind: RecordCCCPStart, Round: i})
	}
	if fr.Err() == nil {
		t.Fatal("write error not latched")
	}
	if fw.n != 2 {
		t.Errorf("writer called %d times; the latched error should stop writes", fw.n)
	}
	// The tail keeps filling past the write error.
	if got := len(fr.Tail()); got != 4 {
		t.Errorf("tail has %d lines after write error, want 4", got)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var r *Registry
	if r.FlightEnabled() {
		t.Error("nil registry reports flight enabled")
	}
	r.FlightRecord(Record{Kind: RecordRunStart}) // must not panic
	r.SetFlightRecorder(nil)

	reg := NewRegistry()
	if reg.FlightEnabled() {
		t.Error("fresh registry reports flight enabled")
	}
	reg.FlightRecord(Record{Kind: RecordRunStart}) // no recorder: no-op

	fr := NewFlightRecorder(nil, 0) // tail-only, default capacity
	reg.SetFlightRecorder(fr)
	if !reg.FlightEnabled() {
		t.Error("attached recorder not reported")
	}
	reg.FlightRecord(Record{Kind: RecordRunStart, Trainer: "centralized", Users: 1})
	if fr.Recorded() != 1 {
		t.Errorf("Recorded() = %d after one record", fr.Recorded())
	}
	reg.SetFlightRecorder(nil)
	if reg.FlightEnabled() {
		t.Error("detach did not take")
	}

	var nilFR *FlightRecorder
	nilFR.Record(Record{Kind: RecordRunStart})
	if nilFR.Tail() != nil || nilFR.Recorded() != 0 || nilFR.Err() != nil {
		t.Error("nil FlightRecorder accessors not zero")
	}
}

// TestTraceRingDropCounter: a registry sized below the span volume must keep
// the newest spans and count the evictions in obs_spans_dropped_total.
func TestTraceRingDropCounter(t *testing.T) {
	r := NewRegistrySized(4)
	for i := 0; i < 7; i++ {
		r.Span(Span{Kind: SpanQPSolve, Round: i, User: -1, Dur: time.Millisecond})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Round != i+3 {
			t.Errorf("span %d has round %d, want %d (oldest evicted first)", i, s.Round, i+3)
		}
	}
	if got := r.CounterValue(MetricSpansDropped); got != 3 {
		t.Errorf("%s = %d, want 3", MetricSpansDropped, got)
	}
}
