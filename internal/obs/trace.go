package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanKind enumerates the typed phase events the solvers emit.
type SpanKind uint8

const (
	// SpanCCCPIteration is one outer CCCP round (centralized, distributed
	// or async); Value carries the round's objective.
	SpanCCCPIteration SpanKind = iota + 1
	// SpanCutRound is one cutting-plane round; Value carries the number of
	// constraints added.
	SpanCutRound
	// SpanQPSolve is one inner QP solve; Iterations carries the
	// projected-gradient iteration count.
	SpanQPSolve
	// SpanADMMRound is one consensus ADMM round; Primal/Dual carry the
	// residuals of paper Eq. (24).
	SpanADMMRound
	// SpanWireSend and SpanWireRecv are single protocol messages; Bytes
	// carries the on-the-wire size.
	SpanWireSend
	SpanWireRecv
	// SpanGramBuild is one incremental Gram-cache sync before a restricted
	// QP solve; Value carries the working-set size synced to.
	SpanGramBuild
)

// String implements fmt.Stringer; the names are stable and appear in the
// JSONL export.
func (k SpanKind) String() string {
	switch k {
	case SpanCCCPIteration:
		return "cccp-iteration"
	case SpanCutRound:
		return "cut-round"
	case SpanQPSolve:
		return "qp-solve"
	case SpanADMMRound:
		return "admm-round"
	case SpanWireSend:
		return "wire-send"
	case SpanWireRecv:
		return "wire-recv"
	case SpanGramBuild:
		return "gram-build"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// Span is one phase event. Only the fields relevant to Kind are set; User
// is -1 when the event is not scoped to one user.
type Span struct {
	Kind  SpanKind
	Start time.Time
	Dur   time.Duration
	// Round is the CCCP round or ADMM iteration the event belongs to.
	Round int
	// User is the user/device index, or -1.
	User int
	// Iterations is the inner-solver iteration count (QP solves).
	Iterations int
	// Primal and Dual are the ADMM residuals of Eq. (24).
	Primal, Dual float64
	// Bytes is the wire size of a transport event.
	Bytes int
	// Value is a kind-specific payload (objective, constraints added).
	Value float64
}

// spanJSON is the export schema of one span line.
type spanJSON struct {
	Kind       string  `json:"kind"`
	Start      string  `json:"start"`
	DurNS      int64   `json:"dur_ns"`
	Round      int     `json:"round"`
	User       int     `json:"user"`
	Iterations int     `json:"iters,omitempty"`
	Primal     float64 `json:"primal,omitempty"`
	Dual       float64 `json:"dual,omitempty"`
	Bytes      int     `json:"bytes,omitempty"`
	Value      float64 `json:"value,omitempty"`
}

// Trace is a bounded in-memory ring of spans: recording never allocates
// past the ring and never blocks training for long (one short mutex hold);
// when full, the oldest spans are overwritten.
type Trace struct {
	mu    sync.Mutex
	ring  []Span
	next  int   // next write position
	total int64 // spans ever recorded
	// dropped counts spans overwritten by a full ring wrapping
	// (obs_spans_dropped_total); wired by the registry at construction.
	dropped *Counter
}

func newTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{ring: make([]Span, 0, capacity)}
}

func (t *Trace) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.dropped.Inc()
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// snapshot returns the retained spans oldest-first.
func (t *Trace) snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Span records one phase event into the registry's trace ring (no-op on a
// nil registry).
func (r *Registry) Span(s Span) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.record(s)
}

// Spans returns the retained spans, oldest first (nil on a nil registry).
func (r *Registry) Spans() []Span {
	if r == nil || r.trace == nil {
		return nil
	}
	return r.trace.snapshot()
}

// SpansRecorded returns the count of spans ever recorded, including those
// already overwritten in the ring.
func (r *Registry) SpansRecorded() int64 {
	if r == nil || r.trace == nil {
		return 0
	}
	r.trace.mu.Lock()
	defer r.trace.mu.Unlock()
	return r.trace.total
}

// WriteSpansJSONL writes the retained spans as one JSON object per line —
// the machine-readable phase trace of a run.
func (r *Registry) WriteSpansJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		line := spanJSON{
			Kind:       s.Kind.String(),
			Start:      s.Start.Format(time.RFC3339Nano),
			DurNS:      s.Dur.Nanoseconds(),
			Round:      s.Round,
			User:       s.User,
			Iterations: s.Iterations,
			Primal:     s.Primal,
			Dual:       s.Dual,
			Bytes:      s.Bytes,
			Value:      s.Value,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
