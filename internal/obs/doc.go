// Package obs is the unified observability layer of the PLOS reproduction:
// a dependency-free metrics registry (atomic counters, gauges, streaming
// log-linear histograms with p50/p95/max) plus a lightweight phase tracer
// recording typed span events into a bounded in-memory ring with JSONL
// export.
//
// The paper's evaluation (§VI, Figures 8–13) is largely an accounting
// exercise — CCCP iterations to convergence, ADMM rounds, bytes on the
// wire, device energy — and this package is the one lens those counts flow
// through: internal/core, internal/admm, internal/qp, internal/transport
// and internal/parallel all record into a Registry when one is attached,
// and the export surfaces (Prometheus text, expvar snapshot, span JSONL)
// read from it. docs/OBSERVABILITY.md maps every metric in Catalog to its
// paper figure.
//
// Two invariants shape the design:
//
//   - Nil-safety. A nil *Registry (and every handle it returns) is a valid
//     no-op receiver, so instrumented hot paths never branch on whether
//     observation is enabled: enabled costs one atomic add, disabled costs
//     one nil check.
//   - Determinism. Recording is strictly observational — it never reorders
//     work, takes locks on solver paths, or feeds values back into
//     training — so the bit-identical-output contract of internal/parallel
//     (DESIGN.md §8) holds with observation on or off.
package obs
