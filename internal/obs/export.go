package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// kindOf resolves the export kind of a registered name. Caller holds r.mu.
func (r *Registry) kindOf(name string) Kind {
	if _, ok := r.funcs[name]; ok {
		return KindGaugeFunc
	}
	if _, ok := r.counters[name]; ok {
		return KindCounter
	}
	if _, ok := r.gauges[name]; ok {
		return KindGauge
	}
	if _, ok := r.hists[name]; ok {
		return KindHistogram
	}
	return 0
}

func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), using only the standard library.
// Counters and gauges are scalars; histograms are rendered as summaries
// with p50/p95 quantiles plus a companion <name>_max gauge. Metrics appear
// in registration order, so consecutive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	help := make(map[string]string, len(names))
	for _, n := range names {
		help[n] = r.help[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, name := range names {
		r.mu.Lock()
		kind := r.kindOf(name)
		c := r.counters[name]
		g := r.gauges[name]
		fn := r.funcs[name]
		h := r.hists[name]
		r.mu.Unlock()

		if help[name] != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(help[name], "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		switch kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s %d\n", name, c.Value())
		case KindGauge:
			fmt.Fprintf(&b, "%s %s\n", name, promFloat(g.Value()))
		case KindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", name, promFloat(fn()))
		case KindHistogram:
			fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", name, promFloat(h.Quantile(0.5)))
			fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %s\n", name, promFloat(h.Quantile(0.95)))
			fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", name, h.Count())
			fmt.Fprintf(&b, "# TYPE %s_max gauge\n", name)
			fmt.Fprintf(&b, "%s_max %s\n", name, promFloat(h.Max()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramSnapshot is the snapshot form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

// Snapshot returns every metric's current value keyed by name: counters as
// int64, gauges (and gauge funcs) as float64, histograms as
// HistogramSnapshot. The result JSON-marshals cleanly (NaN quantiles of
// empty histograms are reported as 0) — it backs both the expvar surface
// and plos-bench -metrics-json.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		kind := r.kindOf(name)
		c := r.counters[name]
		g := r.gauges[name]
		fn := r.funcs[name]
		h := r.hists[name]
		r.mu.Unlock()
		switch kind {
		case KindCounter:
			out[name] = c.Value()
		case KindGauge:
			out[name] = g.Value()
		case KindGaugeFunc:
			out[name] = fn()
		case KindHistogram:
			s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
			if s.Count > 0 {
				s.P50 = h.Quantile(0.5)
				s.P95 = h.Quantile(0.95)
			}
			out[name] = s
		}
	}
	out["span_phase_seconds"] = r.SpanPhaseTotals()
	return out
}

// SpanPhaseTotal aggregates the retained spans of one kind.
type SpanPhaseTotal struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// SpanPhaseTotals sums the retained phase-trace spans per kind — the
// per-phase time attribution (CCCP/cut/QP/ADMM/wire/Gram) of a run. Only
// kinds that occurred appear. Nil-safe.
func (r *Registry) SpanPhaseTotals() map[string]SpanPhaseTotal {
	out := map[string]SpanPhaseTotal{}
	for _, s := range r.Spans() {
		t := out[s.Kind.String()]
		t.Count++
		t.Seconds += s.Dur.Seconds()
		out[s.Kind.String()] = t
	}
	return out
}

// WriteJSON writes the Snapshot as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
