package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"plos/internal/obs"
)

// clock is a settable test clock.
type clock struct{ t time.Time }

func newClock() *clock {
	return &clock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}
func (c *clock) now() time.Time                    { return c.t }
func (c *clock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

// newEngine builds an engine over a fresh registry with a tail-only flight
// recorder (so transitions land somewhere inspectable) and a test clock.
func newEngine(t *testing.T, cfg Config) (*Engine, *obs.Registry, *clock) {
	t.Helper()
	ck := newClock()
	cfg.Now = ck.now
	reg := obs.NewRegistry()
	reg.SetFlightRecorder(obs.NewFlightRecorder(nil, 64))
	return New(reg, cfg), reg, ck
}

func wantFleet(t *testing.T, e *Engine, st State, causeSub string) {
	t.Helper()
	f := e.Fleet()
	if f.State != st {
		t.Fatalf("fleet state = %v, want %v (cause %q)", f.State, st, f.Cause)
	}
	if causeSub != "" && !strings.Contains(f.Cause, causeSub) {
		t.Fatalf("fleet cause = %q, want substring %q", f.Cause, causeSub)
	}
}

func TestObjectiveAscentAndRecovery(t *testing.T) {
	e, reg, _ := newEngine(t, Config{})
	reg.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "distributed", Users: 4})
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 0, Objective: 100})
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 1, Objective: 90})
	wantFleet(t, e, StateOK, "")
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 2, Objective: 95})
	wantFleet(t, e, StateDegraded, "objective-ascent")
	if reg.Gauge(obs.MetricHealthState, "").Value() != 1 {
		t.Fatal("health_state gauge should be 1 while degraded")
	}
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 3, Objective: 80})
	wantFleet(t, e, StateOK, "")
	if reg.Gauge(obs.MetricHealthState, "").Value() != 0 {
		t.Fatal("health_state gauge should drop back to 0")
	}
}

func TestObjectiveStall(t *testing.T) {
	e, reg, _ := newEngine(t, Config{StallRounds: 3})
	reg.FlightRecord(obs.Record{Kind: obs.RecordRunStart})
	for i := 0; i < 4; i++ {
		reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: i, Objective: 50})
	}
	wantFleet(t, e, StateDegraded, "objective-stall")
	// Real progress clears the stall.
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 4, Objective: 40})
	wantFleet(t, e, StateOK, "")
}

func TestQuorumLostIsCriticalAndSurvivesObjectiveRecovery(t *testing.T) {
	e, reg, _ := newEngine(t, Config{})
	reg.FlightRecord(obs.Record{Kind: obs.RecordRunStart})
	reg.FlightRecord(obs.Record{Kind: obs.RecordQuorum, Active: 1, Need: 2})
	wantFleet(t, e, StateCritical, "quorum-lost")
	// Objective progress must not clear a quorum cause on the shared run
	// component.
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 0, Objective: 10})
	reg.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: 1, Objective: 5})
	wantFleet(t, e, StateCritical, "quorum-lost")
	// A fresh run does.
	reg.FlightRecord(obs.Record{Kind: obs.RecordRunStart})
	wantFleet(t, e, StateOK, "")
}

func TestDeviceDropDemotedAtFleet(t *testing.T) {
	e, reg, _ := newEngine(t, Config{})
	reg.FlightRecord(obs.Record{Kind: obs.RecordDeviceDrop, User: 3, Cause: "conn reset", Permanent: false})
	wantFleet(t, e, StateDegraded, "device:3")
	st, ok := e.Component("device:3")
	if !ok || st.State != StateDegraded {
		t.Fatalf("device:3 = %+v, %v; want degraded", st, ok)
	}
	// A merged device round recovers the transient drop.
	reg.FlightRecord(obs.Record{Kind: obs.RecordDeviceRound, User: 3, Round: 1})
	wantFleet(t, e, StateOK, "")
	// Permanent removal is critical on the device but only degrades the
	// fleet (quorum guards fleet-fatal device loss).
	reg.FlightRecord(obs.Record{Kind: obs.RecordDeviceDrop, User: 3, Cause: "gone", Permanent: true})
	st, _ = e.Component("device:3")
	if st.State != StateCritical {
		t.Fatalf("device:3 = %v, want critical", st.State)
	}
	wantFleet(t, e, StateDegraded, "device:3")
	// And a later round does not resurrect a permanently dropped device.
	reg.FlightRecord(obs.Record{Kind: obs.RecordDeviceRound, User: 3, Round: 2})
	wantFleet(t, e, StateDegraded, "device:3")
}

func TestShardLifecycleAndQuorum(t *testing.T) {
	e, reg, _ := newEngine(t, Config{Shards: 2, ShardQuorum: 1})
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardDown, Shard: 0, Cause: "agg link: EOF"})
	wantFleet(t, e, StateDegraded, "shard:0: detached: agg link: EOF")
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardStale, Shard: 0, Round: 2, Stale: 3})
	wantFleet(t, e, StateDegraded, "carried stale (3 legs)")
	// Second shard down: live 0 < quorum 1 -> critical.
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardDown, Shard: 1, Cause: "timeout"})
	wantFleet(t, e, StateCritical, "shard-quorum-lost")
	// Restores walk it back.
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardRestore, Shard: 1, Round: 3})
	wantFleet(t, e, StateDegraded, "shard:0")
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardRestore, Shard: 0, Round: 3})
	wantFleet(t, e, StateOK, "")
}

func TestStalenessSaturation(t *testing.T) {
	e, reg, _ := newEngine(t, Config{MaxStale: 4, StaleSatFolds: 3})
	reg.FlightRecord(obs.Record{Kind: obs.RecordRunStart})
	for i := 0; i < 3; i++ {
		reg.FlightRecord(obs.Record{Kind: obs.RecordAsyncFold, User: i, Staleness: 4})
	}
	wantFleet(t, e, StateDegraded, "staleness-saturated")
	reg.FlightRecord(obs.Record{Kind: obs.RecordAsyncFold, User: 0, Staleness: 1})
	wantFleet(t, e, StateOK, "")
}

func TestTickSpikesAndEFNorm(t *testing.T) {
	e, reg, ck := newEngine(t, Config{
		Window: 10 * time.Second, Bucket: time.Second,
		DropSpike: 3, RetrySpike: 5, EFNormLimit: 100,
	})
	drops := reg.Counter(obs.MetricProtocolDeviceDrops, "")
	retries := reg.Counter(obs.MetricTransportRetries, "")
	e.Tick() // arms the baselines
	drops.Add(2)
	retries.Add(4)
	ck.advance(time.Second)
	e.Tick()
	wantFleet(t, e, StateOK, "")
	drops.Add(2)
	retries.Add(2)
	ck.advance(time.Second)
	e.Tick()
	wantFleet(t, e, StateDegraded, "device-drop-spike")
	st, _ := e.Component("transport")
	if st.State != StateDegraded || !strings.Contains(st.Cause, "retry-spike") {
		t.Fatalf("transport = %+v, want retry-spike degraded", st)
	}
	// The window drains: both spikes recover.
	ck.advance(30 * time.Second)
	e.Tick()
	wantFleet(t, e, StateOK, "")
	// EF-norm blowup is critical, and recovers when the norm shrinks.
	reg.Gauge(obs.MetricQuantErrorFeedbackNorm, "").Set(1e6)
	e.Tick()
	wantFleet(t, e, StateCritical, "ef-norm-blowup")
	reg.Gauge(obs.MetricQuantErrorFeedbackNorm, "").Set(1)
	e.Tick()
	wantFleet(t, e, StateOK, "")
}

func TestReportRemoteAndHealthStamp(t *testing.T) {
	e, reg, _ := newEngine(t, Config{})
	if got := reg.HealthStamp(); got != 1 {
		t.Fatalf("HealthStamp with ok engine = %d, want 1", got)
	}
	reg.ReportHealth("shard:1", int(StateDegraded), "remote: detached")
	wantFleet(t, e, StateDegraded, "shard:1: remote: detached")
	if got := reg.HealthStamp(); got != 2 {
		t.Fatalf("HealthStamp while degraded = %d, want 2", got)
	}
	reg.ReportHealth("shard:1", int(StateOK), "")
	wantFleet(t, e, StateOK, "")
	// Out-of-range codes are ignored.
	reg.ReportHealth("shard:1", 9, "garbage")
	wantFleet(t, e, StateOK, "")
	// No engine: stamp is 0.
	var none *obs.Registry
	if got := none.HealthStamp(); got != 0 {
		t.Fatalf("nil-registry HealthStamp = %d, want 0", got)
	}
}

func TestTransitionsEmittedToFlightRecorder(t *testing.T) {
	_, reg, _ := newEngine(t, Config{})
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardDown, Shard: 0, Cause: "boom"})
	var sawShard, sawFleet bool
	for _, line := range reg.Flight().Tail() {
		if !strings.Contains(line, `"rec":"health-transition"`) {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad transition line %q: %v", line, err)
		}
		switch m["component"] {
		case "shard:0":
			sawShard = m["from"] == "ok" && m["to"] == "degraded"
		case "fleet":
			sawFleet = m["to"] == "degraded"
		}
	}
	if !sawShard || !sawFleet {
		t.Fatalf("missing transitions (shard %v, fleet %v) in tail", sawShard, sawFleet)
	}
}

func TestHandlers(t *testing.T) {
	e, reg, _ := newEngine(t, Config{})
	get := func(h http.Handler) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
		return rr
	}
	if rr := get(e.HealthzHandler()); rr.Code != 200 || !strings.HasPrefix(rr.Body.String(), "ok") {
		t.Fatalf("healthy /healthz = %d %q", rr.Code, rr.Body.String())
	}
	reg.FlightRecord(obs.Record{Kind: obs.RecordShardDown, Shard: 0, Cause: "agg link: EOF"})
	rr := get(e.HealthzHandler())
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz code = %d, want 503", rr.Code)
	}
	if b := rr.Body.String(); !strings.Contains(b, "shard:0 degraded: detached: agg link: EOF") {
		t.Fatalf("degraded /healthz body = %q", b)
	}
	var snap Snapshot
	if err := json.Unmarshal(get(e.TreeHandler()).Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/health is not JSON: %v", err)
	}
	if snap.State != "degraded" || len(snap.Components) == 0 {
		t.Fatalf("/debug/health snapshot = %+v", snap)
	}
	body := get(e.StatuszHandler()).Body.String()
	for _, want := range []string{"plos health: degraded", "uptime:", "shard:0", "recent transitions:"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/statusz missing %q in:\n%s", want, body)
		}
	}
}

func TestStartStopTicker(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg, Config{})
	e.Start(time.Millisecond)
	e.Start(time.Millisecond) // double start is a no-op
	time.Sleep(10 * time.Millisecond)
	e.Stop()
	e.Stop() // double stop is a no-op
}

func TestNilRegistryEngine(t *testing.T) {
	e := New(nil, Config{})
	e.ObserveRecord(obs.Record{Kind: obs.RecordShardDown, Shard: 0, Cause: "x"})
	e.Tick()
	if e.HealthCode() != int(StateDegraded) {
		t.Fatalf("HealthCode = %d, want degraded", e.HealthCode())
	}
}
