package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// The three serving surfaces of the health plane, mounted on the ops mux of
// every plos-server role (and embeddable in tests via httptest):
//
//	/healthz       — machine-readable, status-code-bearing: 200 only when the
//	                 fleet rollup is ok, 503 otherwise, with one line per
//	                 non-ok component naming the cause.
//	/debug/health  — the full Snapshot tree as JSON (what plos-top polls).
//	/statusz       — a human text page: rollup, component table, recent
//	                 transitions and the objective tail.

// HealthzHandler serves the machine health check.
func (e *Engine) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		s := e.Snapshot()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.State != StateOK.String() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, s.State)
		for _, c := range s.Components {
			if c.State != StateOK.String() {
				fmt.Fprintf(w, "%s %s: %s\n", c.Component, c.State, c.Cause)
			}
		}
	})
}

// TreeHandler serves the Snapshot tree as indented JSON.
func (e *Engine) TreeHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e.Snapshot())
	})
}

// StatuszHandler serves the human status page.
func (e *Engine) StatuszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		s := e.Snapshot()
		now := e.now()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "plos health: %s", s.State)
		if s.Cause != "" {
			fmt.Fprintf(w, " (%s)", s.Cause)
		}
		fmt.Fprintf(w, "\nuptime: %s\n", now.Sub(e.created).Round(timeResolution))
		if len(s.Components) > 0 {
			fmt.Fprintf(w, "\ncomponents:\n")
			for _, c := range s.Components {
				fmt.Fprintf(w, "  %-14s %-9s", c.Component, c.State)
				if c.Cause != "" {
					fmt.Fprintf(w, " %s", c.Cause)
				}
				fmt.Fprintf(w, "  (for %s)\n", now.Sub(c.Since).Round(timeResolution))
			}
		}
		if n := len(s.Objective); n > 0 {
			lo := n - 8
			if lo < 0 {
				lo = 0
			}
			parts := make([]string, 0, n-lo)
			for _, v := range s.Objective[lo:] {
				parts = append(parts, fmt.Sprintf("%.6g", v))
			}
			fmt.Fprintf(w, "\nobjective (last %d rounds): %s\n", n-lo, strings.Join(parts, " "))
		}
		if len(s.Transitions) > 0 {
			fmt.Fprintf(w, "\nrecent transitions:\n")
			lo := len(s.Transitions) - 8
			if lo < 0 {
				lo = 0
			}
			for _, t := range s.Transitions[lo:] {
				fmt.Fprintf(w, "  %s ago  %-14s %s -> %s", now.Sub(t.At).Round(timeResolution), t.Component, t.From, t.To)
				if t.Cause != "" {
					fmt.Fprintf(w, "  %s", t.Cause)
				}
				fmt.Fprintln(w)
			}
		}
	})
}

// timeResolution rounds the durations shown on /statusz.
const timeResolution = 100 * time.Millisecond
