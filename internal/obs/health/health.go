// Package health is the rule-driven live health engine of the observability
// layer: it consumes the registry's streaming signals — the flight-record
// stream (objective trajectory, drops, quorum, shard lifecycle, async folds)
// plus ticker-sampled counter deltas — and folds them into typed component
// states with a fleet rollup, served on /healthz, /debug/health and /statusz.
//
// The engine is strictly passive: it attaches to a registry as its
// obs.HealthSink, reads metrics and records, and writes only its own
// health_state gauge and health-transition flight records. A training run
// with an engine attached is bit-identical to one without (the observer
// bit-identity contract extends to it).
package health

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"plos/internal/obs"
)

// State is a component's health tier. Ordering is severity: rollups take the
// max.
type State int

const (
	StateOK State = iota
	StateDegraded
	StateCritical
)

// String returns the wire/doc name of the state.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Config tunes the rule set. The zero value is usable: zero thresholds
// disable their rule, zero windows and counts fall back to the defaults
// below.
type Config struct {
	// Window and Bucket size the rolling rate windows behind the spike
	// rules (and the sparkline feeds). Defaults: 60s in 5s buckets.
	Window time.Duration
	Bucket time.Duration
	// StallRounds is how many consecutive CCCP rounds may pass without
	// meaningful objective progress before the run degrades as stalled
	// (default 8). StallEpsilon is the relative progress floor (default
	// 1e-9).
	StallRounds  int
	StallEpsilon float64
	// DropSpike / RetrySpike degrade when the windowed count of device
	// drop-cause events / transport retries reaches the threshold
	// (0 disables).
	DropSpike  float64
	RetrySpike float64
	// MaxStale is the asynchronous staleness ceiling (AsyncConfig.MaxStale):
	// when set, StaleSatFolds consecutive folds arriving at or above it
	// degrade the async component as saturated (StaleSatFolds defaults
	// to 4).
	MaxStale      float64
	StaleSatFolds int
	// Shards / ShardQuorum, when set on an aggregator, drive the
	// shard-quorum rule: fewer live shards than the quorum is critical.
	Shards      int
	ShardQuorum int
	// EFNormLimit marks the wire component critical when the compressed
	// sender's error-feedback norm exceeds it (0 disables).
	EFNormLimit float64
	// Now overrides the engine clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Status is one component's current health.
type Status struct {
	State State
	Cause string
	Since time.Time
}

// ComponentStatus is the export form of one component's status.
type ComponentStatus struct {
	Component string    `json:"component"`
	State     string    `json:"state"`
	Cause     string    `json:"cause,omitempty"`
	Since     time.Time `json:"since"`
}

// TransitionEvent is one recorded state change.
type TransitionEvent struct {
	Component string    `json:"component"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	Cause     string    `json:"cause,omitempty"`
	At        time.Time `json:"at"`
}

// Snapshot is the JSON tree served on /debug/health.
type Snapshot struct {
	State       string            `json:"state"`
	Cause       string            `json:"cause,omitempty"`
	Since       time.Time         `json:"since"`
	Components  []ComponentStatus `json:"components"`
	Objective   []float64         `json:"objective,omitempty"`
	Transitions []TransitionEvent `json:"transitions,omitempty"`
	DropWindow  []float64         `json:"drop_window,omitempty"`
	RetryWindow []float64         `json:"retry_window,omitempty"`
}

// component is the engine's internal per-component record.
type component struct {
	state State
	cause string
	since time.Time
}

// History bounds.
const (
	objHistoryCap  = 64
	transitionsCap = 64
)

// Engine evaluates the rule set over a registry's signal streams. Create
// with New (which attaches it as the registry's health sink); drive with the
// record stream plus Tick (or Start a ticker).
type Engine struct {
	reg     *obs.Registry
	cfg     Config
	gauge   *obs.Gauge
	ef      *obs.Gauge
	drops   *obs.RateWindow
	retries *obs.RateWindow
	created time.Time

	mu          sync.Mutex
	components  map[string]*component
	fleet       component
	lastObj     float64
	haveObj     bool
	stallRun    int
	staleRun    int
	objHist     []float64
	transitions []TransitionEvent

	stop chan struct{}
	done chan struct{}
}

// New creates an engine with cfg's rules and attaches it to reg as the
// health sink, so every flight record the registry emits reaches
// ObserveRecord. reg may be nil (the engine still evaluates, exports
// nothing).
func New(reg *obs.Registry, cfg Config) *Engine {
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 5 * time.Second
	}
	if cfg.StallRounds <= 0 {
		cfg.StallRounds = 8
	}
	if cfg.StallEpsilon <= 0 {
		cfg.StallEpsilon = 1e-9
	}
	if cfg.StaleSatFolds <= 0 {
		cfg.StaleSatFolds = 4
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{
		reg:        reg,
		cfg:        cfg,
		gauge:      reg.Gauge(obs.MetricHealthState, ""),
		ef:         reg.Gauge(obs.MetricQuantErrorFeedbackNorm, ""),
		drops:      obs.NewRateWindow(cfg.Window, cfg.Bucket),
		retries:    obs.NewRateWindow(cfg.Window, cfg.Bucket),
		created:    cfg.Now(),
		components: map[string]*component{},
	}
	e.fleet.since = e.created
	e.gauge.Set(0)
	reg.SetHealthSink(e)
	return e
}

// now returns the engine clock's current time.
func (e *Engine) now() time.Time { return e.cfg.Now() }

// HealthCode implements obs.HealthSink: the fleet rollup as 0 ok,
// 1 degraded, 2 critical.
func (e *Engine) HealthCode() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.fleet.state)
}

// Fleet returns the rollup status.
func (e *Engine) Fleet() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Status{State: e.fleet.state, Cause: e.fleet.cause, Since: e.fleet.since}
}

// Component returns one component's status (zero Status, false when the
// component has never been touched).
func (e *Engine) Component(name string) (Status, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.components[name]
	if !ok {
		return Status{}, false
	}
	return Status{State: c.state, Cause: c.cause, Since: c.since}, true
}

// ReportRemote implements obs.HealthSink: it folds a remote component's
// self-reported code into the local tree — the aggregator calls it with each
// shard's piggybacked health stamp.
func (e *Engine) ReportRemote(name string, code int, cause string) {
	st := State(code)
	if st < StateOK || st > StateCritical {
		return
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.setLocked(name, st, cause, now)
}

// ObserveRecord implements obs.HealthSink: every flight record the registry
// emits lands here (before this method returns, so it must stay cheap). The
// engine's own health-transition output is ignored to avoid re-entry.
func (e *Engine) ObserveRecord(rec obs.Record) {
	if rec.Kind == obs.RecordHealthTransition {
		return
	}
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	switch rec.Kind {
	case obs.RecordRunStart:
		// A fresh run resets the run-scoped rules.
		e.haveObj, e.stallRun, e.staleRun = false, 0, 0
		e.setLocked("run", StateOK, "", now)
		e.setLocked("async", StateOK, "", now)
	case obs.RecordCCCPIteration:
		e.observeObjectiveLocked(rec.Objective, now)
	case obs.RecordAsyncFold:
		e.observeAsyncFoldLocked(rec.Staleness, now)
	case obs.RecordQuorum:
		e.setLocked("run", StateCritical,
			fmt.Sprintf("quorum-lost (active %d < need %d)", rec.Active, rec.Need), now)
	case obs.RecordRunEnd:
		if rec.Converged {
			e.setLocked("run", StateOK, "", now)
		}
	case obs.RecordDeviceDrop:
		name := fmt.Sprintf("device:%d", rec.User)
		if rec.Permanent {
			e.setLocked(name, StateCritical, "dropped: "+rec.Cause, now)
		} else {
			e.setLocked(name, StateDegraded, "drop: "+rec.Cause, now)
		}
	case obs.RecordDeviceRound:
		// A merged device round proves the device is live again; only a
		// transient drop recovers — permanent removal is final.
		name := fmt.Sprintf("device:%d", rec.User)
		if c, ok := e.components[name]; ok && c.state == StateDegraded {
			e.setLocked(name, StateOK, "", now)
		}
	case obs.RecordShardDown:
		e.setLocked(shardName(rec.Shard), StateDegraded, "detached: "+rec.Cause, now)
		e.shardQuorumLocked(now)
	case obs.RecordShardStale:
		e.setLocked(shardName(rec.Shard), StateDegraded,
			fmt.Sprintf("detached, carried stale (%d legs)", rec.Stale), now)
	case obs.RecordShardRestore:
		e.setLocked(shardName(rec.Shard), StateOK, "", now)
		e.shardQuorumLocked(now)
	}
}

// shardName formats the component name of shard id.
func shardName(id int) string { return fmt.Sprintf("shard:%d", id) }

// observeObjectiveLocked applies the divergence/stall rules to one CCCP
// round's objective. CCCP is a descent method: ascent beyond the relative
// tolerance is divergence, StallRounds rounds within it is a stall.
func (e *Engine) observeObjectiveLocked(obj float64, now time.Time) {
	e.objHist = append(e.objHist, obj)
	if len(e.objHist) > objHistoryCap {
		e.objHist = e.objHist[len(e.objHist)-objHistoryCap:]
	}
	prev, had := e.lastObj, e.haveObj
	e.lastObj, e.haveObj = obj, true
	if !had {
		return
	}
	tol := e.cfg.StallEpsilon * (1 + math.Abs(prev))
	delta := obj - prev
	switch {
	case delta > tol:
		e.stallRun = 0
		e.setLocked("run", StateDegraded,
			fmt.Sprintf("objective-ascent (%.6g -> %.6g)", prev, obj), now)
	case -delta <= tol:
		e.stallRun++
		if e.stallRun >= e.cfg.StallRounds {
			e.setLocked("run", StateDegraded,
				fmt.Sprintf("objective-stall (%d rounds without progress beyond %.1g)", e.stallRun, tol), now)
		}
	default:
		e.stallRun = 0
		e.recoverLocked("run", "objective-", now)
	}
}

// observeAsyncFoldLocked applies the staleness-saturation rule to one
// asynchronous fold's staleness.
func (e *Engine) observeAsyncFoldLocked(staleness float64, now time.Time) {
	if e.cfg.MaxStale <= 0 {
		return
	}
	if staleness < e.cfg.MaxStale {
		e.staleRun = 0
		e.recoverLocked("async", "staleness-", now)
		return
	}
	e.staleRun++
	if e.staleRun >= e.cfg.StaleSatFolds {
		e.setLocked("async", StateDegraded,
			fmt.Sprintf("staleness-saturated (%d consecutive folds at the staleness ceiling %.3g)", e.staleRun, e.cfg.MaxStale), now)
	}
}

// shardQuorumLocked re-evaluates the shard-quorum rule after a shard
// lifecycle event.
func (e *Engine) shardQuorumLocked(now time.Time) {
	if e.cfg.Shards <= 0 || e.cfg.ShardQuorum <= 0 {
		return
	}
	live := e.cfg.Shards
	for name, c := range e.components {
		if strings.HasPrefix(name, "shard:") && c.state != StateOK {
			live--
		}
	}
	if live < e.cfg.ShardQuorum {
		e.setLocked("aggregator", StateCritical,
			fmt.Sprintf("shard-quorum-lost (live %d < quorum %d)", live, e.cfg.ShardQuorum), now)
	} else {
		e.recoverLocked("aggregator", "shard-quorum-", now)
	}
}

// Tick samples the counter-backed rules: windowed device-drop and transport
// retry spikes, and the error-feedback norm limit. plos-server runs it on a
// ticker (Start); tests call it directly with a controlled clock.
func (e *Engine) Tick() {
	now := e.now()
	e.drops.ObserveTotal(now, float64(e.reg.CounterValue(obs.MetricProtocolDeviceDrops)))
	e.retries.ObserveTotal(now, float64(e.reg.CounterValue(obs.MetricTransportRetries)))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.DropSpike > 0 {
		if s := e.drops.Sum(now); s >= e.cfg.DropSpike {
			e.setLocked("devices", StateDegraded,
				fmt.Sprintf("device-drop-spike (%.0f drop events in %s)", s, e.cfg.Window), now)
		} else {
			e.recoverLocked("devices", "device-drop-spike", now)
		}
	}
	if e.cfg.RetrySpike > 0 {
		if s := e.retries.Sum(now); s >= e.cfg.RetrySpike {
			e.setLocked("transport", StateDegraded,
				fmt.Sprintf("retry-spike (%.0f transport retries in %s)", s, e.cfg.Window), now)
		} else {
			e.recoverLocked("transport", "retry-spike", now)
		}
	}
	if e.cfg.EFNormLimit > 0 {
		if v := e.ef.Value(); v > e.cfg.EFNormLimit {
			e.setLocked("wire", StateCritical,
				fmt.Sprintf("ef-norm-blowup (%.3g > limit %.3g)", v, e.cfg.EFNormLimit), now)
		} else {
			e.recoverLocked("wire", "ef-norm-", now)
		}
	}
}

// Start runs Tick on a ticker until Stop (interval <= 0 defaults to 1s).
// Start after Stop restarts; a second Start without Stop is a no-op.
func (e *Engine) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	e.stop, e.done = stop, done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Tick()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the Start ticker (no-op when not started).
func (e *Engine) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// setLocked moves a component to (state, cause), emitting a
// health-transition record and recomputing the rollup on a state change; a
// same-state call only refreshes the cause. Caller holds e.mu.
func (e *Engine) setLocked(name string, st State, cause string, now time.Time) {
	c, ok := e.components[name]
	if !ok {
		c = &component{since: now}
		e.components[name] = c
		if st == StateOK {
			// A component born healthy needs no transition.
			c.cause = cause
			return
		}
	}
	if c.state == st {
		if cause != "" {
			c.cause = cause
			e.recomputeLocked(now)
		}
		return
	}
	from := c.state
	c.state, c.cause, c.since = st, cause, now
	e.pushTransitionLocked(TransitionEvent{
		Component: name, From: from.String(), To: st.String(), Cause: cause, At: now,
	})
	e.recomputeLocked(now)
}

// recoverLocked returns a component to ok, but only when its current cause
// was set by the rule family identified by causePrefix — so one rule's
// recovery never masks another rule's finding on a shared component. Caller
// holds e.mu.
func (e *Engine) recoverLocked(name, causePrefix string, now time.Time) {
	c, ok := e.components[name]
	if !ok || c.state == StateOK || !strings.HasPrefix(c.cause, causePrefix) {
		return
	}
	e.setLocked(name, StateOK, "", now)
}

// pushTransitionLocked appends to the bounded transition log and emits the
// health-transition flight record. Caller holds e.mu; re-entry through
// ObserveRecord is cut off by its RecordHealthTransition guard.
func (e *Engine) pushTransitionLocked(t TransitionEvent) {
	e.transitions = append(e.transitions, t)
	if len(e.transitions) > transitionsCap {
		e.transitions = e.transitions[len(e.transitions)-transitionsCap:]
	}
	e.reg.FlightRecord(obs.Record{
		Kind:      obs.RecordHealthTransition,
		Component: t.Component,
		From:      t.From,
		To:        t.To,
		Cause:     t.Cause,
	})
}

// recomputeLocked refreshes the fleet rollup: the max component state, with
// the device tier demoted to at most degraded (one dead device must not
// page the fleet as critical — permanent drops are a survivable, quorum-
// guarded condition; everything fleet-fatal has a non-device component).
// Caller holds e.mu.
func (e *Engine) recomputeLocked(now time.Time) {
	var worst State
	var worstName, worstCause string
	var devWorst State
	var devName, devCause string
	for _, name := range e.sortedNamesLocked() {
		c := e.components[name]
		if strings.HasPrefix(name, "device:") {
			if c.state > devWorst {
				devWorst, devName, devCause = c.state, name, c.cause
			}
			continue
		}
		if c.state > worst {
			worst, worstName, worstCause = c.state, name, c.cause
		}
	}
	if devWorst > StateDegraded {
		devWorst = StateDegraded
	}
	if devWorst > worst {
		worst, worstName, worstCause = devWorst, devName, devCause
	}
	cause := ""
	if worst != StateOK {
		cause = worstName + ": " + worstCause
	}
	if worst != e.fleet.state {
		e.pushTransitionLocked(TransitionEvent{
			Component: "fleet", From: e.fleet.state.String(), To: worst.String(), Cause: cause, At: now,
		})
		e.fleet.since = now
	}
	e.fleet.state, e.fleet.cause = worst, cause
	e.gauge.Set(float64(worst))
}

// sortedNamesLocked returns component names in stable order (so rollup
// tie-breaking and exports are deterministic). Caller holds e.mu.
func (e *Engine) sortedNamesLocked() []string {
	names := make([]string, 0, len(e.components))
	for name := range e.components {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot exports the full tree: rollup, per-component statuses, recent
// objective trajectory, recent transitions, and the spike-rule windows
// (sparkline feeds for plos-top).
func (e *Engine) Snapshot() Snapshot {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Snapshot{
		State:       e.fleet.state.String(),
		Cause:       e.fleet.cause,
		Since:       e.fleet.since,
		Objective:   append([]float64(nil), e.objHist...),
		Transitions: append([]TransitionEvent(nil), e.transitions...),
		DropWindow:  e.drops.Buckets(now),
		RetryWindow: e.retries.Buckets(now),
	}
	for _, name := range e.sortedNamesLocked() {
		c := e.components[name]
		s.Components = append(s.Components, ComponentStatus{
			Component: name, State: c.state.String(), Cause: c.cause, Since: c.since,
		})
	}
	return s
}
