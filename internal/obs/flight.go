package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The convergence flight recorder is the replayable, append-only companion
// of the metric registry: while counters aggregate and the span ring
// forgets, the recorder streams one typed JSON record per solver event to a
// writer (and keeps a bounded in-memory tail for live snapshots), so a
// finished run leaves a full CCCP/cut/ADMM trajectory that cmd/plos-trace
// can attribute and diff. Recording is strictly passive and shares the
// registry's nil-safety contract: with no recorder attached, FlightRecord
// is one atomic pointer load.

// RecordKind enumerates the typed flight-recorder records.
type RecordKind uint8

const (
	// RecordRunStart opens a training run (trainer name, user count).
	RecordRunStart RecordKind = iota + 1
	// RecordCCCPStart marks the beginning of one outer CCCP round.
	RecordCCCPStart
	// RecordCCCPIteration closes one CCCP round: objective and the number
	// of effective-label sign flips of its linearization refresh.
	RecordCCCPIteration
	// RecordCutRound is one cutting-plane round: the worst constraint
	// violation, constraints added, and the working-set size after.
	RecordCutRound
	// RecordADMMRound is one consensus ADMM round (or async barrier):
	// Eq. (24) primal/dual residuals and wall duration.
	RecordADMMRound
	// RecordDeviceRound is the server-side merge of one device's telemetry
	// piggyback: reply arrival relative to the round start (server clock),
	// device-reported solve duration, solver counts, cumulative traffic and
	// cost-model energy. Device times are durations only — no cross-host
	// clock sync.
	RecordDeviceRound
	// RecordStaleReuse marks an ADMM round that reused a straggler's
	// previous local solution.
	RecordStaleReuse
	// RecordDeviceDrop surfaces a ServeResult.DropCause event: the first
	// fatal failure on a device's connection, and the permanent removal.
	RecordDeviceDrop
	// RecordQuorum marks the active device count crossing the abort
	// threshold.
	RecordQuorum
	// RecordRunEnd closes a training run.
	RecordRunEnd
	// RecordShardReduce is one shard's cross-shard reduce for an ADMM
	// iteration: how long the shard sat blocked on its aggregator
	// connection (both reduce round-trips) and the bytes that crossed it.
	RecordShardReduce
	// RecordShardDown marks the aggregator detaching a shard mid-run (link
	// failure, reduce-deadline miss, or a shard-reported abort) with the
	// first recorded cause.
	RecordShardDown
	// RecordShardStale marks a reduce leg assembled from a detached shard's
	// last partial sum instead of a fresh message (the shard-tier analogue
	// of stale-reuse).
	RecordShardStale
	// RecordShardRestore marks a crashed shard re-attaching to the
	// aggregator after a checkpoint-restore rejoin handshake: the epoch it
	// restored from and how many reduce legs it was carried stale.
	RecordShardRestore
	// RecordAsyncFold is one asynchronous-mode consensus fold: a device's
	// update arrived and was folded into w0 under the staleness-weighted
	// DJAM rule (docs/ASYNC.md) — the arrival's staleness in fleet rounds,
	// the damping weight applied, and the post-fold residuals.
	RecordAsyncFold
	// RecordAsyncSnapshot marks the coordinator handing a device its
	// personalized consensus snapshot (z, u_t) in asynchronous mode — the
	// per-device replacement for the lockstep params broadcast.
	RecordAsyncSnapshot
	// RecordHealthTransition marks a health-engine component changing state
	// (ok, degraded, critical) with the rule cause that moved it. Emitted by
	// internal/obs/health; never fed back into the engine.
	RecordHealthTransition
)

// String returns the stable record-type name used in the JSONL stream.
func (k RecordKind) String() string {
	switch k {
	case RecordRunStart:
		return "run-start"
	case RecordCCCPStart:
		return "cccp-start"
	case RecordCCCPIteration:
		return "cccp-iteration"
	case RecordCutRound:
		return "cut-round"
	case RecordADMMRound:
		return "admm-round"
	case RecordDeviceRound:
		return "device-round"
	case RecordStaleReuse:
		return "stale-reuse"
	case RecordDeviceDrop:
		return "device-drop"
	case RecordQuorum:
		return "quorum"
	case RecordRunEnd:
		return "run-end"
	case RecordShardReduce:
		return "shard-reduce"
	case RecordShardDown:
		return "shard-down"
	case RecordShardStale:
		return "shard-stale"
	case RecordShardRestore:
		return "shard-restore"
	case RecordAsyncFold:
		return "async-fold"
	case RecordAsyncSnapshot:
		return "async-snapshot"
	case RecordHealthTransition:
		return "health-transition"
	default:
		return "record-unknown"
	}
}

// Record is one flight-recorder event. Only the fields relevant to Kind are
// meaningful; the JSONL schema per kind is fixed (see RecordCatalog and
// docs/OBSERVABILITY.md).
type Record struct {
	Kind    RecordKind
	Trainer string // run-start: "centralized", "distributed", "async", "server"
	Users   int    // run-start: population size T
	// Round is the CCCP round (cccp-*), the cut-round index (cut-round),
	// or the ADMM iteration (admm-round, device-round, stale-reuse).
	Round int
	// User is the device index, or -1 for events not scoped to one device.
	User int
	// Shard is the emitting shard's index in a sharded serving plane
	// (shard-reduce); 0 elsewhere.
	Shard      int
	Objective  float64
	SignFlips  int // -1 when unknown (the wire server cannot see device signs)
	Violation  float64
	Added      int
	WorkingSet int
	Primal     float64
	Dual       float64
	Dur        time.Duration
	// Arrive is the device reply's arrival relative to the ADMM round start
	// on the server clock; Solve is the device-reported solve wall time.
	Arrive   time.Duration
	Solve    time.Duration
	QPIters  int64
	Cuts     int64
	WarmHits int64
	Msgs     int64
	Bytes    int64
	// RawBytes/CompBytes are the connection's cumulative parameter-payload
	// bytes in dense-equivalent and encoded form (zero without codec v4
	// compression; see docs/WIRE_COMPRESSION.md).
	RawBytes  int64
	CompBytes int64
	EnergyJ   float64
	Stale     int
	Cause     string
	Permanent bool
	Active    int
	Need      int
	Converged bool
	// Epoch is the asynchronous fold counter (async-fold, async-snapshot);
	// Staleness is an arrival's age in fleet rounds and Weight the DJAM
	// damping factor applied to its fold.
	Epoch     int
	Staleness float64
	Weight    float64
	// Component/From/To describe a health-transition: the component whose
	// state changed and the states on either side ("ok", "degraded",
	// "critical"); Cause carries the rule that moved it.
	Component string
	From      string
	To        string
}

// RecordDef describes one record type for the docs-freshness gate
// (scripts/checkmetrics two-way gates the docs table against this catalog,
// exactly like the metric catalog).
type RecordDef struct {
	Name string
	Help string
	// Fields are the JSON keys the record carries besides "rec".
	Fields []string
}

// RecordCatalog is the complete flight-recorder schema.
var RecordCatalog = []RecordDef{
	{"run-start", "A trainer began a run.", []string{"trainer", "users"}},
	{"cccp-start", "An outer CCCP round began.", []string{"round"}},
	{"cccp-iteration", "An outer CCCP round completed.", []string{"round", "objective", "sign_flips", "dur_ns"}},
	{"cut-round", "One cutting-plane round.", []string{"round", "user", "violation", "added", "working_set"}},
	{"admm-round", "One consensus ADMM round (or async barrier).", []string{"round", "primal", "dual", "dur_ns"}},
	{"device-round", "Server-side merge of one device's telemetry piggyback.", []string{"round", "user", "arrive_ns", "solve_ns", "qp_iters", "cuts", "warm_hits", "sign_flips", "msgs", "bytes", "raw_bytes", "comp_bytes", "energy_j"}},
	{"stale-reuse", "A round reused a straggler's previous solution.", []string{"round", "user", "stale"}},
	{"device-drop", "A device drop-cause event (transient or permanent).", []string{"user", "cause", "permanent"}},
	{"quorum", "Active devices crossed the abort threshold.", []string{"active", "need"}},
	{"run-end", "A training run finished.", []string{"converged", "objective", "rounds"}},
	{"shard-reduce", "One shard's cross-shard reduce wait for an ADMM iteration.", []string{"round", "shard", "dur_ns", "bytes"}},
	{"shard-down", "The aggregator detached a shard mid-run.", []string{"shard", "cause"}},
	{"shard-stale", "A reduce leg reused a detached shard's last partials.", []string{"round", "shard", "stale"}},
	{"shard-restore", "A crashed shard rejoined via checkpoint restore.", []string{"shard", "round", "stale"}},
	{"async-fold", "One staleness-weighted consensus fold of an asynchronous-mode arrival.", []string{"round", "user", "epoch", "staleness", "weight", "primal", "dual"}},
	{"async-snapshot", "A device received its per-device consensus snapshot in asynchronous mode.", []string{"round", "user", "epoch"}},
	{"health-transition", "A health-engine component changed state.", []string{"component", "from", "to", "cause"}},
}

// marshal renders the record's fixed per-kind JSON line (without the
// trailing newline). encoding/json keeps struct field order, so the stream
// is deterministic given deterministic field values.
func (rec Record) marshal() ([]byte, error) {
	switch rec.Kind {
	case RecordRunStart:
		return json.Marshal(struct {
			Rec     string `json:"rec"`
			Trainer string `json:"trainer"`
			Users   int    `json:"users"`
		}{rec.Kind.String(), rec.Trainer, rec.Users})
	case RecordCCCPStart:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Round int    `json:"round"`
		}{rec.Kind.String(), rec.Round})
	case RecordCCCPIteration:
		return json.Marshal(struct {
			Rec       string  `json:"rec"`
			Round     int     `json:"round"`
			Objective float64 `json:"objective"`
			SignFlips int     `json:"sign_flips"`
			DurNS     int64   `json:"dur_ns"`
		}{rec.Kind.String(), rec.Round, rec.Objective, rec.SignFlips, rec.Dur.Nanoseconds()})
	case RecordCutRound:
		return json.Marshal(struct {
			Rec        string  `json:"rec"`
			Round      int     `json:"round"`
			User       int     `json:"user"`
			Violation  float64 `json:"violation"`
			Added      int     `json:"added"`
			WorkingSet int     `json:"working_set"`
		}{rec.Kind.String(), rec.Round, rec.User, rec.Violation, rec.Added, rec.WorkingSet})
	case RecordADMMRound:
		return json.Marshal(struct {
			Rec    string  `json:"rec"`
			Round  int     `json:"round"`
			Primal float64 `json:"primal"`
			Dual   float64 `json:"dual"`
			DurNS  int64   `json:"dur_ns"`
		}{rec.Kind.String(), rec.Round, rec.Primal, rec.Dual, rec.Dur.Nanoseconds()})
	case RecordDeviceRound:
		return json.Marshal(struct {
			Rec       string  `json:"rec"`
			Round     int     `json:"round"`
			User      int     `json:"user"`
			ArriveNS  int64   `json:"arrive_ns"`
			SolveNS   int64   `json:"solve_ns"`
			QPIters   int64   `json:"qp_iters"`
			Cuts      int64   `json:"cuts"`
			WarmHits  int64   `json:"warm_hits"`
			SignFlips int     `json:"sign_flips"`
			Msgs      int64   `json:"msgs"`
			Bytes     int64   `json:"bytes"`
			RawBytes  int64   `json:"raw_bytes"`
			CompBytes int64   `json:"comp_bytes"`
			EnergyJ   float64 `json:"energy_j"`
		}{rec.Kind.String(), rec.Round, rec.User, rec.Arrive.Nanoseconds(), rec.Solve.Nanoseconds(),
			rec.QPIters, rec.Cuts, rec.WarmHits, rec.SignFlips, rec.Msgs, rec.Bytes,
			rec.RawBytes, rec.CompBytes, rec.EnergyJ})
	case RecordStaleReuse:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Round int    `json:"round"`
			User  int    `json:"user"`
			Stale int    `json:"stale"`
		}{rec.Kind.String(), rec.Round, rec.User, rec.Stale})
	case RecordDeviceDrop:
		return json.Marshal(struct {
			Rec       string `json:"rec"`
			User      int    `json:"user"`
			Cause     string `json:"cause"`
			Permanent bool   `json:"permanent"`
		}{rec.Kind.String(), rec.User, rec.Cause, rec.Permanent})
	case RecordQuorum:
		return json.Marshal(struct {
			Rec    string `json:"rec"`
			Active int    `json:"active"`
			Need   int    `json:"need"`
		}{rec.Kind.String(), rec.Active, rec.Need})
	case RecordRunEnd:
		return json.Marshal(struct {
			Rec       string  `json:"rec"`
			Converged bool    `json:"converged"`
			Objective float64 `json:"objective"`
			Rounds    int     `json:"rounds"`
		}{rec.Kind.String(), rec.Converged, rec.Objective, rec.Round})
	case RecordShardReduce:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Round int    `json:"round"`
			Shard int    `json:"shard"`
			DurNS int64  `json:"dur_ns"`
			Bytes int64  `json:"bytes"`
		}{rec.Kind.String(), rec.Round, rec.Shard, rec.Dur.Nanoseconds(), rec.Bytes})
	case RecordShardDown:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Shard int    `json:"shard"`
			Cause string `json:"cause"`
		}{rec.Kind.String(), rec.Shard, rec.Cause})
	case RecordShardStale:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Round int    `json:"round"`
			Shard int    `json:"shard"`
			Stale int    `json:"stale"`
		}{rec.Kind.String(), rec.Round, rec.Shard, rec.Stale})
	case RecordShardRestore:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Shard int    `json:"shard"`
			Round int    `json:"round"`
			Stale int    `json:"stale"`
		}{rec.Kind.String(), rec.Shard, rec.Round, rec.Stale})
	case RecordAsyncFold:
		return json.Marshal(struct {
			Rec       string  `json:"rec"`
			Round     int     `json:"round"`
			User      int     `json:"user"`
			Epoch     int     `json:"epoch"`
			Staleness float64 `json:"staleness"`
			Weight    float64 `json:"weight"`
			Primal    float64 `json:"primal"`
			Dual      float64 `json:"dual"`
		}{rec.Kind.String(), rec.Round, rec.User, rec.Epoch, rec.Staleness, rec.Weight, rec.Primal, rec.Dual})
	case RecordAsyncSnapshot:
		return json.Marshal(struct {
			Rec   string `json:"rec"`
			Round int    `json:"round"`
			User  int    `json:"user"`
			Epoch int    `json:"epoch"`
		}{rec.Kind.String(), rec.Round, rec.User, rec.Epoch})
	case RecordHealthTransition:
		return json.Marshal(struct {
			Rec       string `json:"rec"`
			Component string `json:"component"`
			From      string `json:"from"`
			To        string `json:"to"`
			Cause     string `json:"cause"`
		}{rec.Kind.String(), rec.Component, rec.From, rec.To, rec.Cause})
	default:
		return json.Marshal(struct {
			Rec string `json:"rec"`
		}{rec.Kind.String()})
	}
}

// DefaultFlightTail bounds the in-memory tail a FlightRecorder retains for
// live snapshots (the /debug/trace surface).
const DefaultFlightTail = 256

// FlightRecorder streams flight records as JSONL to w (which may be nil for
// a tail-only recorder) and retains the most recent DefaultFlightTail
// encoded lines in memory. Safe for concurrent use; the first write error
// is latched and stops further writes to w (the tail keeps filling).
type FlightRecorder struct {
	mu    sync.Mutex
	w     io.Writer
	tail  [][]byte
	next  int
	total int64
	err   error
	// errGauge, when set (by SetFlightRecorder), flips to 1 the moment the
	// first write error latches — the obs_flight_write_errors surface.
	errGauge *Gauge
}

// NewFlightRecorder creates a recorder streaming to w. A nil w keeps only
// the in-memory tail. tailCap <= 0 uses DefaultFlightTail.
func NewFlightRecorder(w io.Writer, tailCap int) *FlightRecorder {
	if tailCap <= 0 {
		tailCap = DefaultFlightTail
	}
	return &FlightRecorder{w: w, tail: make([][]byte, 0, tailCap)}
}

// Record appends one record to the stream and the tail (no-op on nil).
func (fr *FlightRecorder) Record(rec Record) {
	if fr == nil {
		return
	}
	line, err := rec.marshal()
	if err != nil {
		return // a non-marshalable record is a programming error; drop it
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.total++
	if len(fr.tail) < cap(fr.tail) {
		fr.tail = append(fr.tail, line)
	} else {
		fr.tail[fr.next] = line
	}
	fr.next = (fr.next + 1) % cap(fr.tail)
	if fr.w != nil && fr.err == nil {
		if _, err := fr.w.Write(append(line, '\n')); err != nil {
			fr.err = err
			fr.errGauge.Set(1)
		}
	}
}

// Tail returns the retained encoded lines, oldest first.
func (fr *FlightRecorder) Tail() []string {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]string, 0, len(fr.tail))
	if len(fr.tail) == cap(fr.tail) {
		for _, l := range fr.tail[fr.next:] {
			out = append(out, string(l))
		}
		for _, l := range fr.tail[:fr.next] {
			out = append(out, string(l))
		}
	} else {
		for _, l := range fr.tail {
			out = append(out, string(l))
		}
	}
	return out
}

// Recorded returns the count of records ever recorded.
func (fr *FlightRecorder) Recorded() int64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// Err returns the first write error, if any.
func (fr *FlightRecorder) Err() error {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.err
}

// SetFlightRecorder attaches fr to the registry; every FlightRecord call
// lands there. Passing nil detaches. No-op on a nil registry. Attaching also
// wires the recorder's latched write error to the obs_flight_write_errors
// gauge, so a dead flight file is visible on the metric surfaces instead of
// failing silently.
func (r *Registry) SetFlightRecorder(fr *FlightRecorder) {
	if r == nil {
		return
	}
	if fr != nil {
		g := r.Gauge(MetricFlightWriteErrors, "")
		fr.mu.Lock()
		fr.errGauge = g
		if fr.err != nil {
			g.Set(1)
		}
		fr.mu.Unlock()
	}
	r.flight.Store(&flightSlot{fr: fr})
}

// Flight returns the attached recorder (nil when none, or on a nil
// registry).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	if slot := r.flight.Load(); slot != nil {
		return slot.fr
	}
	return nil
}

// FlightEnabled reports whether flight records are being collected. Hot
// paths use it to skip building Record values entirely.
func (r *Registry) FlightEnabled() bool { return r.Flight() != nil }

// FlightRecord appends one record to the attached recorder (no-op when none
// is attached or on a nil registry) and feeds it to the attached health
// sink, which evaluates its rules over the same stream the recorder
// persists.
func (r *Registry) FlightRecord(rec Record) {
	r.Flight().Record(rec)
	if s := r.HealthSink(); s != nil {
		s.ObserveRecord(rec)
	}
}

// flightSlot wraps the recorder pointer so detaching (storing nil) is
// expressible with atomic.Pointer.
type flightSlot struct{ fr *FlightRecorder }
