package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

func TestProjectNonneg(t *testing.T) {
	x := mat.Vector{-1, 2, -3, 0}
	ProjectNonneg(x)
	if !x.Equal(mat.Vector{0, 2, 0, 0}, 0) {
		t.Errorf("got %v", x)
	}
}

func TestProjectSimplexKnown(t *testing.T) {
	tests := []struct {
		name string
		x    mat.Vector
		b    float64
		want mat.Vector
	}{
		{"already on simplex", mat.Vector{0.5, 0.5}, 1, mat.Vector{0.5, 0.5}},
		{"uniform overflow", mat.Vector{1, 1}, 1, mat.Vector{0.5, 0.5}},
		{"one dominant", mat.Vector{10, 0}, 1, mat.Vector{1, 0}},
		{"negative dropped", mat.Vector{1, -5}, 1, mat.Vector{1, 0}},
		{"zero budget", mat.Vector{3, 4}, 0, mat.Vector{0, 0}},
		{"scaled budget", mat.Vector{4, 2}, 2, mat.Vector{2, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			x := tc.x.Clone()
			ProjectSimplex(x, tc.b)
			if !x.Equal(tc.want, 1e-12) {
				t.Errorf("got %v, want %v", x, tc.want)
			}
		})
	}
}

func TestProjectBudgetInterior(t *testing.T) {
	// Sum under budget: clamping is the projection.
	x := mat.Vector{0.2, -1, 0.3}
	ProjectBudget(x, 1)
	if !x.Equal(mat.Vector{0.2, 0, 0.3}, 1e-12) {
		t.Errorf("got %v", x)
	}
	// Sum over budget: lands on the simplex face.
	y := mat.Vector{2, 2}
	ProjectBudget(y, 1)
	if !y.Equal(mat.Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("got %v", y)
	}
}

func TestProjectionPanicsOnNegativeBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative budget should panic")
		}
	}()
	ProjectBudget(mat.Vector{1}, -1)
}

// bruteForceProject finds the projection by dense grid + local refinement
// for 2-d cases, used to validate the analytic projection.
func bruteForceProject2(x mat.Vector, b float64) mat.Vector {
	best := mat.Vector{0, 0}
	bestD := math.Inf(1)
	const n = 400
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			p := mat.Vector{b * float64(i) / n, b * float64(j) / n}
			if p[0]+p[1] > b+1e-12 {
				continue
			}
			if d := mat.SquaredDist(p, x); d < bestD {
				bestD, best = d, p
			}
		}
	}
	return best
}

func TestProjectBudgetMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		x := mat.Vector{r.NormFloat64() * 2, r.NormFloat64() * 2}
		got := x.Clone()
		ProjectBudget(got, 1)
		want := bruteForceProject2(x, 1)
		if !got.Equal(want, 0.01) {
			t.Fatalf("trial %d: x=%v got=%v want~%v", trial, x, got, want)
		}
	}
}

// Property: projection output is feasible and idempotent.
func TestPropertyProjectionFeasibleIdempotent(t *testing.T) {
	f := func(seed int64, nRaw uint8, bRaw float64) bool {
		n := int(nRaw%20) + 1
		b := math.Abs(math.Mod(bRaw, 10))
		if math.IsNaN(b) {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		x := make(mat.Vector, n)
		for i := range x {
			x[i] = r.NormFloat64() * 5
		}
		ProjectBudget(x, b)
		// Feasible.
		var sum float64
		for _, v := range x {
			if v < 0 {
				return false
			}
			sum += v
		}
		if sum > b+1e-9 {
			return false
		}
		// Idempotent.
		y := x.Clone()
		ProjectBudget(y, b)
		return y.Equal(x, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the projection is the nearest feasible point — no random
// feasible point is closer.
func TestPropertyProjectionOptimality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		r := rand.New(rand.NewSource(seed))
		x := make(mat.Vector, n)
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		proj := x.Clone()
		ProjectBudget(proj, 1)
		dProj := mat.SquaredDist(proj, x)
		for trial := 0; trial < 30; trial++ {
			cand := make(mat.Vector, n)
			for i := range cand {
				cand[i] = r.Float64()
			}
			ProjectSimplex(cand, r.Float64()) // arbitrary feasible point (sum <= 1)
			if mat.SquaredDist(cand, x) < dProj-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    GroupSpec
		n       int
		wantErr bool
	}{
		{"valid", GroupSpec{Groups: [][]int{{0, 1}, {2}}, Budgets: []float64{1, 2}}, 3, false},
		{"empty", GroupSpec{}, 5, false},
		{"length mismatch", GroupSpec{Groups: [][]int{{0}}, Budgets: nil}, 1, true},
		{"negative budget", GroupSpec{Groups: [][]int{{0}}, Budgets: []float64{-1}}, 1, true},
		{"index out of range", GroupSpec{Groups: [][]int{{5}}, Budgets: []float64{1}}, 3, true},
		{"duplicate index", GroupSpec{Groups: [][]int{{0}, {0}}, Budgets: []float64{1, 1}}, 2, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(tc.n)
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestGroupSpecProjectFactorizes(t *testing.T) {
	spec := GroupSpec{Groups: [][]int{{0, 2}, {1}}, Budgets: []float64{1, 0.5}}
	x := mat.Vector{2, 2, 2, -3}
	spec.Project(x)
	// Group {0,2}: project (2,2) onto budget 1 -> (0.5, 0.5).
	// Group {1}: project (2) onto budget 0.5 -> 0.5.
	// Index 3 ungrouped: clamp to 0.
	want := mat.Vector{0.5, 0.5, 0.5, 0}
	if !x.Equal(want, 1e-12) {
		t.Errorf("got %v, want %v", x, want)
	}
	if !spec.Feasible(x, 1e-12) {
		t.Error("projected point should be feasible")
	}
}

func TestGroupSpecFeasible(t *testing.T) {
	spec := GroupSpec{Groups: [][]int{{0, 1}}, Budgets: []float64{1}}
	if spec.Feasible(mat.Vector{0.6, 0.6}, 1e-9) {
		t.Error("over-budget point reported feasible")
	}
	if spec.Feasible(mat.Vector{-0.1, 0}, 1e-9) {
		t.Error("negative point reported feasible")
	}
	if !spec.Feasible(mat.Vector{0.4, 0.6}, 1e-9) {
		t.Error("boundary point should be feasible")
	}
}
