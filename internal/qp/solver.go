package qp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"plos/internal/mat"
	"plos/internal/obs"
)

// Problem is the structured QP
//
//	minimize   f(x) = ½ xᵀ G x − cᵀ x
//	subject to x >= 0 and, per group g, Σ_{i∈g} x_i <= budget_g.
//
// G must be symmetric positive semi-definite (it is a Gram matrix in every
// use inside this repository). The PLOS dual (paper Eq. 16) is this problem
// with one group per user and budget T/(2λ); maximizing the paper's dual is
// minimizing f.
type Problem struct {
	G      *mat.Matrix
	C      mat.Vector
	Groups GroupSpec
}

// Options tunes the projected-gradient solver. The zero value is usable:
// Defaults() is applied to every unset field.
type Options struct {
	// MaxIter bounds the number of accelerated iterations (default 2000).
	MaxIter int
	// Tol is the convergence threshold on the projected-gradient residual
	// ||x − Π(x − ∇f(x)/L)||∞ · L (default 1e-8).
	Tol float64
	// X0 optionally warm-starts the solve; it is projected to feasibility
	// first. If nil the solver starts from the origin. A mis-sized X0 is
	// an input error (ErrWarmStartSize), like every other malformed input.
	X0 mat.Vector
	// LipschitzBound optionally supplies an upper bound on the largest
	// eigenvalue of G (the gradient's Lipschitz constant). When positive
	// it is used directly; otherwise the solver computes the Gershgorin
	// bound itself with an O(n²) scan of G. Callers that maintain the
	// bound incrementally across related solves (GramCache) pass it here
	// to keep per-solve setup proportional to what changed.
	LipschitzBound float64
	// Scratch, when non-nil, provides reusable iterate buffers so the
	// FISTA loop allocates nothing per call (the returned solution is
	// still a fresh vector the caller owns). One scratch must not be
	// shared between concurrent solves.
	Scratch *Scratch
	// Obs, when non-nil, receives solve counts, cumulative iteration
	// counts, a duration histogram and one SpanQPSolve per call. Purely
	// observational: it never changes an iterate or the iteration order.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// Info reports solver diagnostics.
type Info struct {
	Iterations int
	Objective  float64 // f(x) at the returned point
	Residual   float64 // final projected-gradient residual
	Converged  bool
}

// ErrMaxIterations is wrapped into the error returned when the solver stops
// on its iteration budget before meeting Tol. The best iterate found is
// still returned alongside the error, so callers in outer loops (cutting
// plane, ADMM) may choose to proceed with it.
var ErrMaxIterations = errors.New("qp: maximum iterations reached")

// ErrWarmStartSize is wrapped into the error returned when Options.X0 does
// not match the problem dimension — a stale warm start (e.g. resumed from
// an old checkpoint) fails the solve instead of crashing the process.
var ErrWarmStartSize = errors.New("qp: warm start length mismatch")

// Solve minimizes the problem with FISTA (accelerated projected gradient)
// using the Gershgorin bound on G as the Lipschitz constant, with adaptive
// restart on momentum reversal. For the PSD Gram matrices PLOS produces,
// this converges linearly in practice; exact projection keeps every iterate
// feasible, so even an early stop yields a usable dual point.
func Solve(p *Problem, opts Options) (mat.Vector, Info, error) {
	o := opts.withDefaults()
	var start time.Time
	if o.Obs != nil {
		start = time.Now()
	}
	n := len(p.C)
	if p.G.Rows != n || p.G.Cols != n {
		return nil, Info{}, fmt.Errorf("qp: Solve: G is %dx%d but c has length %d", p.G.Rows, p.G.Cols, n)
	}
	if err := p.Groups.Validate(n); err != nil {
		return nil, Info{}, err
	}
	if o.X0 != nil && len(o.X0) != n {
		return nil, Info{}, fmt.Errorf("qp: Solve: %w: got %d, want %d", ErrWarmStartSize, len(o.X0), n)
	}
	if n == 0 {
		return mat.Vector{}, Info{Converged: true}, nil
	}

	lip := o.LipschitzBound
	if lip <= 0 {
		lip = mat.MaxEigenvalueUpperBound(p.G)
	}
	if lip < 1e-12 {
		lip = 1e-12 // G ≈ 0: objective is linear; step size is arbitrary but finite
	}
	step := 1 / lip

	var x, y, grad, xNext mat.Vector
	if o.Scratch != nil {
		x, y, grad, xNext = o.Scratch.buffers(n)
		x.Zero()
	} else {
		x = make(mat.Vector, n)
		y = make(mat.Vector, n)
		grad = make(mat.Vector, n)
		xNext = make(mat.Vector, n)
	}
	if o.X0 != nil {
		copy(x, o.X0)
		p.Groups.Project(x)
	}
	copy(y, x) // extrapolated point
	tMom := 1.0

	info := Info{}
	for k := 0; k < o.MaxIter; k++ {
		info.Iterations = k + 1
		// grad = G y − c.
		p.G.MulVecTo(grad, y)
		grad.Sub(p.C)

		// xNext = Π(y − step·grad).
		copy(xNext, y)
		xNext.AddScaled(-step, grad)
		p.Groups.Project(xNext)

		// Residual measured at the candidate step from y.
		res := 0.0
		for i := range xNext {
			if d := math.Abs(xNext[i]-y[i]) * lip; d > res {
				res = d
			}
		}
		info.Residual = res

		// Momentum with adaptive restart: if the update direction opposes
		// the previous momentum, reset (O'Donoghue & Candès restart rule).
		var dot float64
		for i := range x {
			dot += (y[i] - xNext[i]) * (xNext[i] - x[i])
		}
		if dot > 0 {
			tMom = 1
			copy(y, xNext)
		} else {
			tNext := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
			beta := (tMom - 1) / tNext
			for i := range y {
				y[i] = xNext[i] + beta*(xNext[i]-x[i])
			}
			p.Groups.Project(y)
			tMom = tNext
		}
		x, xNext = xNext, x

		if res <= o.Tol {
			info.Converged = true
			break
		}
	}
	if r := o.Obs; r != nil {
		dur := time.Since(start)
		r.Counter(obs.MetricQPSolves, "").Inc()
		r.Counter(obs.MetricQPIterations, "").Add(int64(info.Iterations))
		r.Histogram(obs.MetricQPSolveSeconds, "").Observe(dur.Seconds())
		r.Span(obs.Span{Kind: obs.SpanQPSolve, Start: start, Dur: dur,
			User: -1, Iterations: info.Iterations, Value: info.Residual})
	}
	// f(x) via the grad buffer — the same arithmetic as Objective without
	// its allocation.
	p.G.MulVecTo(grad, x)
	info.Objective = 0.5*x.Dot(grad) - p.C.Dot(x)
	out := x
	if o.Scratch != nil {
		out = x.Clone() // the caller owns the result; scratch buffers are reused
	}
	if !info.Converged {
		return out, info, fmt.Errorf("%w after %d iterations (residual %.3g > tol %.3g)",
			ErrMaxIterations, info.Iterations, info.Residual, o.Tol)
	}
	return out, info, nil
}

// Objective evaluates f(x) = ½xᵀGx − cᵀx.
func Objective(p *Problem, x mat.Vector) float64 {
	gx := p.G.MulVec(x)
	return 0.5*x.Dot(gx) - p.C.Dot(x)
}

// KKTResidual returns the projected-gradient optimality residual
// ||x − Π(x − ∇f(x))||∞ of a feasible point: zero iff x satisfies the KKT
// conditions of the problem. Tests and callers use it to verify solutions.
func KKTResidual(p *Problem, x mat.Vector) float64 {
	grad := p.G.MulVec(x)
	grad.Sub(p.C)
	z := x.Clone()
	z.Sub(grad)
	p.Groups.Project(z)
	var res float64
	for i := range z {
		if d := math.Abs(z[i] - x[i]); d > res {
			res = d
		}
	}
	return res
}
