package qp

import "plos/internal/mat"

// Scratch holds the solver's iterate buffers (x, y, grad, xNext) so callers
// that solve a sequence of related problems — cutting-plane rounds, ADMM
// x-updates — stop paying four allocations per Solve call. The zero value
// is ready to use; buffers grow on demand and are reused across calls.
//
// A Scratch is owned by one solving goroutine at a time: it is not safe for
// concurrent Solve calls. The vector returned by Solve never aliases the
// scratch buffers (it is copied out), so results stay valid across later
// solves that reuse the same scratch.
type Scratch struct {
	x, y, grad, xNext mat.Vector
}

// buffers returns the four iterate buffers re-sliced to length n, growing
// the backing arrays when needed. Contents are undefined; Solve initializes
// x (and copies it into y) before the first iteration.
func (s *Scratch) buffers(n int) (x, y, grad, xNext mat.Vector) {
	if cap(s.x) < n {
		s.x = make(mat.Vector, n)
		s.y = make(mat.Vector, n)
		s.grad = make(mat.Vector, n)
		s.xNext = make(mat.Vector, n)
	}
	return s.x[:n], s.y[:n], s.grad[:n], s.xNext[:n]
}
