package qp

import (
	"fmt"
	"math"

	"plos/internal/mat"

	"plos/internal/parallel"
)

// GramCache incrementally maintains a symmetric Gram matrix and its
// Gershgorin eigenvalue bound across a sequence of solves in which
// constraints only accumulate — the cutting-plane pattern of every
// restricted dual in this repository. Each round at most a handful of
// constraints arrive, so Grow appends only the new rows/columns (computing
// O(added · total) inner products instead of O(total²)) and extends the
// per-row Gershgorin sums instead of re-scanning the O(total²) cells.
//
// Bit-identity contract: growing to size n over any number of Grow calls
// yields the same matrix bytes and the same Bound() as a single Grow from
// empty. Entries are computed by the same cell callback either way, the
// old block is copied verbatim, and each row's absolute off-diagonal sum
// is accumulated left-to-right exactly as mat.MaxEigenvalueUpperBound
// scans it — appending columns continues the same running sum, so partial
// and one-shot accumulations see the identical operand sequence.
//
// The zero value is an empty cache. Not safe for concurrent use.
type GramCache struct {
	n      int
	g      *mat.Matrix
	radius []float64 // Σ_{j≠i} |g_ij|, accumulated in ascending-j order
	diag   []float64 // g_ii
}

// Reset empties the cache; the next Grow recomputes everything.
func (c *GramCache) Reset() {
	c.n = 0
	c.g = nil
	c.radius = c.radius[:0]
	c.diag = c.diag[:0]
}

// Len returns the number of constraints currently materialized.
func (c *GramCache) Len() int { return c.n }

// Grow extends the cached Gram to total×total and returns it. cell(i, j)
// must return entry (i, j) and is called once per new unordered pair —
// every (i, j) with c.Len() <= j < total and i <= j; the mirror cell is
// filled from symmetry. New columns fan out over at most workers
// goroutines (each owns disjoint cells), so the matrix is bit-identical
// for any worker count. Shrinking is a caller bug and panics; callers
// detect shrunken working sets and Reset first.
func (c *GramCache) Grow(total, workers int, cell func(i, j int) float64) *mat.Matrix {
	n0 := c.n
	if total < n0 {
		panic(fmt.Sprintf("qp: GramCache.Grow: shrinking from %d to %d", n0, total))
	}
	if total == n0 {
		if c.g == nil {
			c.g = mat.NewMatrix(0, 0)
		}
		return c.g
	}
	g := mat.NewMatrix(total, total)
	if n0 > 0 {
		// Restride the old block into the wider matrix; values are copied
		// verbatim, so no float changes.
		for i := 0; i < n0; i++ {
			copy(g.Data[i*total:i*total+n0], c.g.Data[i*n0:(i+1)*n0])
		}
	}
	// New cells: column j >= n0 is owned by one goroutine, which writes
	// (i, j) for i <= j plus the mirrored (j, i) — disjoint across owners.
	parallel.Do(workers, total-n0, func(k int) {
		j := n0 + k
		for i := 0; i <= j; i++ {
			v := cell(i, j)
			g.Data[i*total+j] = v
			g.Data[j*total+i] = v
		}
	})
	// Gershgorin bookkeeping. Old rows continue their left-to-right
	// absolute sum over the appended columns; new rows scan in full —
	// both orders match mat.MaxEigenvalueUpperBound exactly.
	for i := 0; i < n0; i++ {
		row := g.Data[i*total : (i+1)*total]
		r := c.radius[i]
		for j := n0; j < total; j++ {
			r += math.Abs(row[j])
		}
		c.radius[i] = r
	}
	for i := n0; i < total; i++ {
		row := g.Data[i*total : (i+1)*total]
		var r float64
		for j := 0; j < total; j++ {
			if j != i {
				r += math.Abs(row[j])
			}
		}
		c.radius = append(c.radius, r)
		c.diag = append(c.diag, row[i])
	}
	c.g = g
	c.n = total
	return g
}

// Matrix returns the cached Gram (nil when empty). The cache retains
// ownership; callers must not mutate it.
func (c *GramCache) Matrix() *mat.Matrix { return c.g }

// Bound returns the Gershgorin upper bound on the largest eigenvalue of
// the cached matrix in O(n), bit-identical to calling
// mat.MaxEigenvalueUpperBound on it (which re-scans all n² cells).
func (c *GramCache) Bound() float64 {
	if c.n == 0 {
		return 0
	}
	bound := math.Inf(-1)
	for i := 0; i < c.n; i++ {
		if v := c.diag[i] + c.radius[i]; v > bound {
			bound = v
		}
	}
	return bound
}
