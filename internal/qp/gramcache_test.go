package qp

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"plos/internal/mat"
)

// randCell returns a deterministic symmetric cell function backed by a
// random PSD matrix, standing in for the constraint inner products the
// trainers feed Grow.
func randCell(seed int64, n int) (func(i, j int) float64, *mat.Matrix) {
	r := rand.New(rand.NewSource(seed))
	m := mat.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	g := m.Gram()
	return func(i, j int) float64 { return g.Data[i*n+j] }, g
}

func matrixBytes(t *testing.T, m *mat.Matrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, m.Data); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGramCacheIncrementalMatchesOneShot(t *testing.T) {
	// Growing 0→3→7→7→12 must yield the same bytes and bound as 0→12,
	// for every worker count (the bit-identity contract).
	const n = 12
	cell, full := randCell(7, n)
	for _, workers := range []int{1, 3, 8} {
		var inc GramCache
		for _, size := range []int{3, 7, 7, 12} {
			inc.Grow(size, workers, cell)
		}
		var one GramCache
		oneG := one.Grow(n, 1, cell)
		if !bytes.Equal(matrixBytes(t, inc.Matrix()), matrixBytes(t, oneG)) {
			t.Fatalf("workers=%d: incremental matrix differs from one-shot", workers)
		}
		if !bytes.Equal(matrixBytes(t, inc.Matrix()), matrixBytes(t, full)) {
			t.Fatalf("workers=%d: cached matrix differs from source", workers)
		}
		if ib, ob := inc.Bound(), one.Bound(); ib != ob {
			t.Fatalf("workers=%d: incremental bound %v != one-shot %v", workers, ib, ob)
		}
	}
}

func TestGramCacheBoundMatchesGershgorinScan(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cell, _ := randCell(seed, 9)
		var c GramCache
		c.Grow(4, 2, cell)
		c.Grow(9, 2, cell)
		want := mat.MaxEigenvalueUpperBound(c.Matrix())
		if got := c.Bound(); got != want {
			t.Errorf("seed %d: Bound() = %v, want scan %v (diff %g)",
				seed, got, want, math.Abs(got-want))
		}
	}
}

func TestGramCacheResetAndEmpty(t *testing.T) {
	var c GramCache
	if c.Bound() != 0 || c.Len() != 0 {
		t.Fatalf("zero value: Len=%d Bound=%v", c.Len(), c.Bound())
	}
	g := c.Grow(0, 1, nil)
	if g.Rows != 0 || g.Cols != 0 {
		t.Fatalf("Grow(0) = %dx%d matrix", g.Rows, g.Cols)
	}
	cell, _ := randCell(3, 5)
	c.Grow(5, 1, cell)
	if c.Len() != 5 {
		t.Fatalf("Len = %d after Grow(5)", c.Len())
	}
	c.Reset()
	if c.Len() != 0 || c.Matrix() != nil {
		t.Fatal("Reset did not empty the cache")
	}
	// Regrowing after Reset recomputes from scratch.
	after := c.Grow(5, 1, cell)
	var fresh GramCache
	if !bytes.Equal(matrixBytes(t, after), matrixBytes(t, fresh.Grow(5, 1, cell))) {
		t.Fatal("post-Reset regrow differs from fresh cache")
	}
}

func TestGramCacheShrinkPanics(t *testing.T) {
	cell, _ := randCell(1, 4)
	var c GramCache
	c.Grow(4, 1, cell)
	defer func() {
		if recover() == nil {
			t.Error("Grow to a smaller size should panic")
		}
	}()
	c.Grow(2, 1, cell)
}

func TestScratchReuseAcrossSolves(t *testing.T) {
	// The same scratch serves problems of different sizes, solutions match
	// scratchless solves exactly, and earlier results survive later solves
	// (no aliasing of the returned vector).
	var s Scratch
	p3 := &Problem{
		G:      mat.Identity(3),
		C:      mat.Vector{0.1, 0.2, 0.3},
		Groups: GroupSpec{Groups: [][]int{{0, 1, 2}}, Budgets: []float64{1}},
	}
	x3, _, err := Solve(p3, Options{Scratch: &s})
	if err != nil {
		t.Fatal(err)
	}
	keep := x3.Clone()
	p5 := &Problem{
		G:      mat.Identity(5),
		C:      mat.Vector{1, 2, 3, 4, 5},
		Groups: GroupSpec{Groups: [][]int{{0, 1, 2, 3, 4}}, Budgets: []float64{1}},
	}
	if _, _, err := Solve(p5, Options{Scratch: &s}); err != nil {
		t.Fatal(err)
	}
	if !x3.Equal(keep, 0) {
		t.Error("result from earlier scratch solve was clobbered by a later one")
	}
	plain, _, err := Solve(p3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != x3[i] {
			t.Errorf("scratch solve differs from plain solve at %d: %v vs %v", i, x3[i], plain[i])
		}
	}
}
