package qp

import (
	"fmt"
	"sort"

	"plos/internal/mat"
)

// ProjectNonneg clamps x to the nonnegative orthant in place.
func ProjectNonneg(x mat.Vector) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// ProjectSimplex projects x in place onto the scaled simplex
// {z >= 0, Σ z_i = b} using the O(n log n) sort-and-threshold algorithm.
// It panics if b < 0.
func ProjectSimplex(x mat.Vector, b float64) {
	if b < 0 {
		panic(fmt.Sprintf("qp: ProjectSimplex: negative budget %g", b))
	}
	if len(x) == 0 {
		return
	}
	if b == 0 {
		x.Zero()
		return
	}
	// Find threshold θ such that Σ max(x_i − θ, 0) = b.
	sorted := x.Clone()
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cum float64
	theta := (sorted[0] - b) // fallback for k = 1
	k := 0
	for i, v := range sorted {
		cum += v
		t := (cum - b) / float64(i+1)
		if v-t > 0 {
			theta = t
			k = i + 1
		} else {
			break
		}
	}
	_ = k
	for i, v := range x {
		if v-theta > 0 {
			x[i] = v - theta
		} else {
			x[i] = 0
		}
	}
}

// ProjectBudget projects x in place onto {z >= 0, Σ z_i <= b}: if clamping
// to the orthant already satisfies the budget the clamp is the projection;
// otherwise the projection lies on the face Σ z = b and reduces to
// ProjectSimplex.
func ProjectBudget(x mat.Vector, b float64) {
	if b < 0 {
		panic(fmt.Sprintf("qp: ProjectBudget: negative budget %g", b))
	}
	var clampedSum float64
	for _, v := range x {
		if v > 0 {
			clampedSum += v
		}
	}
	if clampedSum <= b {
		ProjectNonneg(x)
		return
	}
	ProjectSimplex(x, b)
}

// GroupSpec describes disjoint index groups, each with its own budget cap
// Σ_{i∈Groups[g]} x_i <= Budgets[g]. Indices not covered by any group are
// constrained only to x_i >= 0.
type GroupSpec struct {
	Groups  [][]int
	Budgets []float64
}

// Validate checks that the spec is well formed for a problem of dimension n:
// group/budget lengths match, budgets are nonnegative, indices are in range
// and used at most once.
func (s *GroupSpec) Validate(n int) error {
	if len(s.Groups) != len(s.Budgets) {
		return fmt.Errorf("qp: GroupSpec: %d groups but %d budgets", len(s.Groups), len(s.Budgets))
	}
	seen := make([]bool, n)
	for g, idx := range s.Groups {
		if s.Budgets[g] < 0 {
			return fmt.Errorf("qp: GroupSpec: group %d has negative budget %g", g, s.Budgets[g])
		}
		for _, i := range idx {
			if i < 0 || i >= n {
				return fmt.Errorf("qp: GroupSpec: group %d index %d out of range [0,%d)", g, i, n)
			}
			if seen[i] {
				return fmt.Errorf("qp: GroupSpec: index %d appears in multiple groups", i)
			}
			seen[i] = true
		}
	}
	return nil
}

// Project projects x in place onto the feasible set described by the spec.
// Because the groups are disjoint, the projection factorizes exactly.
func (s *GroupSpec) Project(x mat.Vector) {
	covered := make([]bool, len(x))
	buf := make(mat.Vector, 0, 16)
	for g, idx := range s.Groups {
		buf = buf[:0]
		for _, i := range idx {
			covered[i] = true
			buf = append(buf, x[i])
		}
		ProjectBudget(buf, s.Budgets[g])
		for k, i := range idx {
			x[i] = buf[k]
		}
	}
	for i, v := range x {
		if !covered[i] && v < 0 {
			x[i] = 0
		}
	}
}

// Feasible reports whether x satisfies the constraints within tol.
func (s *GroupSpec) Feasible(x mat.Vector, tol float64) bool {
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for g, idx := range s.Groups {
		var sum float64
		for _, i := range idx {
			sum += x[i]
		}
		if sum > s.Budgets[g]+tol {
			return false
		}
	}
	return true
}
