// Package qp provides hand-rolled quadratic-programming solvers for the
// structured duals that arise in PLOS:
//
//   - the centralized dual (paper Eq. 16): min ½γᵀGγ − cᵀγ over γ ≥ 0 with a
//     per-user budget Σ_{k∈user t} γ_k ≤ T/(2λ);
//   - the local ADMM dual of subproblem (22): the same shape with a single
//     group and budget 1.
//
// Go has no numerical ecosystem, so the solver is built from scratch: an
// accelerated projected-gradient method (FISTA with adaptive restart) whose
// projection step — onto the intersection of the nonnegative orthant and
// per-group budget caps — is computed exactly by the sort-based simplex
// projection of Held, Wolfe & Crowder. The projection factorizes over
// groups, so exactness is cheap.
//
// When Options.Obs is set, each Solve reports qp_solves_total,
// qp_iterations_total, a qp_solve_seconds observation and a qp-solve trace
// span; the solve itself is unaffected (same iterates, same stopping test).
package qp
