package qp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

func TestSolveUnconstrainedInterior(t *testing.T) {
	// min ½xᵀGx − cᵀx with G = I, c = (0.2, 0.3): optimum x = c, interior
	// to budget 1, all nonnegative.
	p := &Problem{
		G:      mat.Identity(2),
		C:      mat.Vector{0.2, 0.3},
		Groups: GroupSpec{Groups: [][]int{{0, 1}}, Budgets: []float64{1}},
	}
	x, info, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !info.Converged {
		t.Error("should converge")
	}
	if !x.Equal(mat.Vector{0.2, 0.3}, 1e-6) {
		t.Errorf("x = %v", x)
	}
	if r := KKTResidual(p, x); r > 1e-6 {
		t.Errorf("KKT residual = %v", r)
	}
}

func TestSolveActiveBudget(t *testing.T) {
	// Unconstrained optimum x = (2,2) violates budget 1; solution lies on
	// the simplex face. By symmetry x = (0.5, 0.5).
	p := &Problem{
		G:      mat.Identity(2),
		C:      mat.Vector{2, 2},
		Groups: GroupSpec{Groups: [][]int{{0, 1}}, Budgets: []float64{1}},
	}
	x, _, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !x.Equal(mat.Vector{0.5, 0.5}, 1e-6) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveActiveNonnegativity(t *testing.T) {
	// c has a negative component: that coordinate pins to 0.
	p := &Problem{
		G:      mat.Identity(2),
		C:      mat.Vector{-1, 0.25},
		Groups: GroupSpec{Groups: [][]int{{0, 1}}, Budgets: []float64{10}},
	}
	x, _, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !x.Equal(mat.Vector{0, 0.25}, 1e-6) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveZeroDimension(t *testing.T) {
	p := &Problem{G: mat.NewMatrix(0, 0), C: mat.Vector{}}
	x, info, err := Solve(p, Options{})
	if err != nil || len(x) != 0 || !info.Converged {
		t.Errorf("zero-dim solve: x=%v info=%+v err=%v", x, info, err)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	p := &Problem{G: mat.Identity(3), C: mat.Vector{1, 2}}
	if _, _, err := Solve(p, Options{}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestSolveWarmStartSizeMismatch(t *testing.T) {
	// Regression: a mis-sized warm start used to panic inside the solver
	// (index out of range copying X0); it must instead fail like any other
	// malformed input, wrapping ErrWarmStartSize.
	p := &Problem{
		G:      mat.Identity(3),
		C:      mat.Vector{0.1, 0.2, 0.3},
		Groups: GroupSpec{Groups: [][]int{{0, 1, 2}}, Budgets: []float64{1}},
	}
	for _, x0 := range []mat.Vector{{1}, {1, 2}, {1, 2, 3, 4}} {
		_, _, err := Solve(p, Options{X0: x0})
		if !errors.Is(err, ErrWarmStartSize) {
			t.Errorf("X0 len %d: err = %v, want ErrWarmStartSize", len(x0), err)
		}
	}
	// Zero-dimensional problems validate X0 too (the check precedes the
	// n == 0 early return).
	zp := &Problem{G: mat.NewMatrix(0, 0), C: mat.Vector{}}
	if _, _, err := Solve(zp, Options{X0: mat.Vector{1}}); !errors.Is(err, ErrWarmStartSize) {
		t.Errorf("zero-dim mis-sized X0: err = %v, want ErrWarmStartSize", err)
	}
}

func TestSolveInvalidGroups(t *testing.T) {
	p := &Problem{
		G:      mat.Identity(2),
		C:      mat.Vector{1, 1},
		Groups: GroupSpec{Groups: [][]int{{7}}, Budgets: []float64{1}},
	}
	if _, _, err := Solve(p, Options{}); err == nil {
		t.Error("expected group validation error")
	}
}

func TestSolveMaxIterationsReturnsIterate(t *testing.T) {
	// Ill-conditioned problem with a 1-iteration budget must return
	// ErrMaxIterations wrapped, plus a feasible iterate.
	g := mat.FromRows([][]float64{{1000, 0}, {0, 0.001}})
	p := &Problem{
		G:      g,
		C:      mat.Vector{1, 1},
		Groups: GroupSpec{Groups: [][]int{{0, 1}}, Budgets: []float64{100}},
	}
	x, info, err := Solve(p, Options{MaxIter: 1})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
	if info.Converged {
		t.Error("info.Converged should be false")
	}
	if !p.Groups.Feasible(x, 1e-9) {
		t.Error("early-stopped iterate must be feasible")
	}
}

func TestSolveWarmStart(t *testing.T) {
	p := &Problem{
		G:      mat.Identity(3),
		C:      mat.Vector{0.1, 0.2, 0.3},
		Groups: GroupSpec{Groups: [][]int{{0, 1, 2}}, Budgets: []float64{1}},
	}
	cold, coldInfo, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmInfo, err := Solve(p, Options{X0: cold})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Equal(cold, 1e-6) {
		t.Errorf("warm restart drifted: %v vs %v", warm, cold)
	}
	if warmInfo.Iterations > coldInfo.Iterations {
		t.Errorf("warm start took more iterations (%d) than cold (%d)",
			warmInfo.Iterations, coldInfo.Iterations)
	}
}

func TestSolveLinearObjective(t *testing.T) {
	// G = 0: minimize −cᵀx over the budget set. Optimum puts the whole
	// budget on the largest c coordinate.
	p := &Problem{
		G:      mat.NewMatrix(3, 3),
		C:      mat.Vector{1, 3, 2},
		Groups: GroupSpec{Groups: [][]int{{0, 1, 2}}, Budgets: []float64{1}},
	}
	x, _, err := Solve(p, Options{MaxIter: 20000, Tol: 1e-7})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[1]-1) > 1e-3 || x[0] > 1e-3 || x[2] > 1e-3 {
		t.Errorf("x = %v, want ~(0,1,0)", x)
	}
}

func randomPSDProblem(r *rand.Rand, n, groups int) *Problem {
	m := mat.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	g := m.Gram() // PSD
	c := make(mat.Vector, n)
	for i := range c {
		c[i] = r.NormFloat64() * 2
	}
	// Random disjoint groups over a prefix of the indices.
	perm := r.Perm(n)
	spec := GroupSpec{}
	at := 0
	for gi := 0; gi < groups && at < n; gi++ {
		size := r.Intn(n-at) + 1
		spec.Groups = append(spec.Groups, append([]int(nil), perm[at:at+size]...))
		spec.Budgets = append(spec.Budgets, r.Float64()*3)
		at += size
	}
	return &Problem{G: g, C: c, Groups: spec}
}

// Property: on random PSD problems the solver returns a feasible point with
// a small KKT residual, and no random feasible perturbation improves the
// objective (local optimality = global for convex problems).
func TestPropertySolverKKTAndOptimality(t *testing.T) {
	f := func(seed int64, nRaw, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%12) + 2
		groups := int(gRaw%3) + 1
		p := randomPSDProblem(r, n, groups)
		x, _, err := Solve(p, Options{MaxIter: 20000, Tol: 1e-9})
		if err != nil {
			return false
		}
		if !p.Groups.Feasible(x, 1e-8) {
			return false
		}
		if KKTResidual(p, x) > 1e-5 {
			return false
		}
		fx := Objective(p, x)
		for trial := 0; trial < 20; trial++ {
			cand := x.Clone()
			for i := range cand {
				cand[i] += r.NormFloat64() * 0.1
			}
			p.Groups.Project(cand)
			if Objective(p, cand) < fx-1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: warm-starting from the solution converges immediately-ish and
// to the same objective.
func TestPropertyWarmStartStable(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 2
		p := randomPSDProblem(r, n, 2)
		x1, _, err := Solve(p, Options{MaxIter: 20000, Tol: 1e-9})
		if err != nil {
			return false
		}
		x2, _, err := Solve(p, Options{MaxIter: 20000, Tol: 1e-9, X0: x1})
		if err != nil {
			return false
		}
		return math.Abs(Objective(p, x1)-Objective(p, x2)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
