package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

// TestMapIndexOrdered is the determinism property the training hot paths
// rely on: Map's output is a pure function of (n, fn), independent of the
// worker count and of scheduling.
func TestMapIndexOrdered(t *testing.T) {
	const n = 257
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i)*1.25 - 3
	}
	for _, workers := range []int{1, 2, 3, 8, 64, 0} {
		got, err := Map(workers, n, func(i int) (float64, error) {
			return float64(i)*1.25 - 3, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %g, want %g", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 4, 33, 0} {
		counts := make([]atomic.Int32, n)
		if err := For(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForFirstErrorWins(t *testing.T) {
	errBoom := errors.New("boom")
	// Sequential: short-circuits at the first failing index.
	ran := 0
	err := For(1, 10, func(i int) error {
		ran++
		if i >= 3 {
			return fmt.Errorf("index %d: %w", i, errBoom)
		}
		return nil
	})
	if !errors.Is(err, errBoom) || err.Error() != "index 3: boom" {
		t.Fatalf("sequential error = %v", err)
	}
	if ran != 4 {
		t.Fatalf("sequential ran %d iterations, want 4", ran)
	}
	// Parallel: the reported error is the lowest-index failure among the
	// iterations that ran, and the pool stops claiming new work.
	var parRan atomic.Int32
	err = For(8, 1000, func(i int) error {
		parRan.Add(1)
		if i%7 == 5 {
			return fmt.Errorf("index %d: %w", i, errBoom)
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("parallel error = %v", err)
	}
	if n := parRan.Load(); n >= 1000 {
		t.Fatalf("pool did not stop early: ran all %d iterations", n)
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Fatalf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			_ = For(workers, 50, func(i int) error {
				if i == 17 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("workers=%d: no panic surfaced", workers)
		}()
	}
}

func TestForBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	err := For(workers, 200, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent iterations, want <= %d", p, workers)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	if err := For(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	out, err := Map(4, -1, func(int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(n=-1) = %v, %v", out, err)
	}
}

// FuzzMapMatchesSequential pins the substrate's core property under
// arbitrary shapes: for any (workers, n), Map equals the plain sequential
// loop element-for-element.
func FuzzMapMatchesSequential(f *testing.F) {
	f.Add(int8(0), uint16(0))
	f.Add(int8(1), uint16(1))
	f.Add(int8(4), uint16(100))
	f.Add(int8(-2), uint16(513))
	f.Add(int8(16), uint16(7))
	f.Fuzz(func(t *testing.T, workers int8, n uint16) {
		size := int(n % 2048)
		fn := func(i int) (uint64, error) {
			return uint64(i)*2654435761 ^ uint64(i)>>3, nil
		}
		want := make([]uint64, size)
		for i := range want {
			want[i], _ = fn(i)
		}
		got, err := Map(int(workers), size, fn)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != size {
			t.Fatalf("len = %d, want %d", len(got), size)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d n=%d: out[%d] = %d, want %d", workers, size, i, got[i], want[i])
			}
		}
	})
}
