package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plos/internal/obs"
)

// poolMetrics is the package's observation hook. For/Do/Map signatures are
// pure (workers, n, fn) at dozens of call sites across the solvers, so the
// pool is the one place where instrumentation rides on process-global state
// rather than a threaded registry; SetMetrics installs the bundle (typically
// once, by whoever owns the obs.Registry) and nil uninstalls it. The default
// is nil — an unobserved pool pays one atomic pointer load per batch.
var poolMetrics atomic.Pointer[obs.PoolMetrics]

// SetMetrics installs (or, with nil, removes) the pool's metric bundle.
// Safe to call concurrently with running batches: a batch uses the bundle it
// loaded at start.
func SetMetrics(m *obs.PoolMetrics) { poolMetrics.Store(m) }

// Workers resolves a configured worker count: non-positive values select
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. The first error (lowest index among the iterations that ran
// before cancellation) stops the pool: no new iterations start, and that
// error is returned. A panic in fn is re-raised on the calling goroutine.
//
// With workers == 1 the loop is strictly sequential — identical evaluation
// order and short-circuiting to the plain for-loop it replaces.
func For(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	m := poolMetrics.Load()
	if m != nil {
		m.Batches.Inc()
		m.Tasks.Add(int64(n))
		m.QueueDepth.Set(float64(n))
		defer m.QueueDepth.Set(0)
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		if m != nil {
			m.WorkerBusy.Observe(time.Since(start).Seconds())
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		panicMu sync.Mutex
		panicV  any
		errs    = make([]error, n)
		wg      sync.WaitGroup
	)
	body := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicV == nil {
					panicV = r
				}
				panicMu.Unlock()
				stopped.Store(true)
			}
		}()
		if err := fn(i); err != nil {
			errs[i] = err
			stopped.Store(true)
		}
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			var start time.Time
			if m != nil {
				start = time.Now()
				defer func() { m.WorkerBusy.Observe(time.Since(start).Seconds()) }()
			}
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do is For without error plumbing, for loop bodies that cannot fail
// (e.g. filling disjoint rows of a matrix).
func Do(workers, n int, fn func(i int)) {
	_ = For(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and collects the results in index order: out[i] is fn(i)'s
// value no matter which goroutine computed it or when it finished, so any
// subsequent fold over out is deterministic. On error the first (lowest
// index) error is returned with a nil slice.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := For(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
