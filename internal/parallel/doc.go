// Package parallel is the shared concurrency substrate for the training
// hot paths: a bounded worker pool over an index space with deterministic,
// index-ordered result collection.
//
// Every helper takes a worker count where 0 (or any non-positive value)
// means runtime.GOMAXPROCS(0) and 1 means a plain sequential loop with no
// goroutines at all. Callers that must produce bit-identical results for
// any worker count follow one rule: goroutines only ever write to disjoint
// index-addressed slots (gather), and all floating-point folds happen
// afterwards on the gathered slice in index order. Map enforces the gather
// half of that contract; the fold stays with the caller.
//
// The pool is instrumented through a process-global hook (SetMetrics)
// rather than per-call options, because For/Do/Map are called from dozens
// of hot paths whose signatures must stay pure. plos.NewObserver installs
// the hook; the most recently installed observer owns the parallel_*
// metrics.
package parallel
