package admm

import (
	"math"
	"testing"

	"plos/internal/mat"
)

func TestDJAMWeight(t *testing.T) {
	w := DJAMWeight(3)
	cases := []struct{ s, want float64 }{
		{0, 1}, {1, 0.5}, {2, 1.0 / 3}, {3, 0.25}, {10, 0.25}, {-1, 1},
	}
	for _, c := range cases {
		if got := w(c.s); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("γ(%g) = %g, want %g", c.s, got, c.want)
		}
	}
	if got := DJAMWeight(-5)(100); got != 1 {
		t.Errorf("negative maxStale should clamp to undamped, got γ = %g", got)
	}
}

func TestAsyncFoldValidation(t *testing.T) {
	if _, err := NewAsyncFold(nil, 3, 1, nil); err == nil {
		t.Error("empty w0 should error")
	}
	if _, err := NewAsyncFold(mat.Vector{1}, 0, 1, nil); err == nil {
		t.Error("zero users should error")
	}
	if _, err := NewAsyncFold(mat.Vector{1}, 3, 0, nil); err == nil {
		t.Error("non-positive rho should error")
	}
}

// TestAsyncFoldFullBarrierMatchesSyncStep: folding every device at once
// with no staleness weight must reproduce the synchronous z- and u-update
// exactly (z = SquaredNormZ over all x_t + u_t, then u_t += x_t − z).
func TestAsyncFoldFullBarrierMatchesSyncStep(t *testing.T) {
	const users, rho = 3, 2.0
	xs := []mat.Vector{{1, 2}, {3, -1}, {-2, 0.5}}
	f, err := NewAsyncFold(mat.Vector{0.1, -0.3}, users, rho, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]FoldEntry, users)
	for i, x := range xs {
		entries[i] = FoldEntry{User: i, X: x}
	}
	res, contributors := f.Fold(entries)
	if contributors != users {
		t.Fatalf("contributors = %d, want %d", contributors, users)
	}

	sum := mat.NewVector(2)
	for _, x := range xs {
		sum.Add(x) // duals start at zero
	}
	wantZ := SquaredNormZ(sum, users, rho)
	if !f.Z.Equal(wantZ, 0) {
		t.Errorf("z = %v, want %v", f.Z, wantZ)
	}
	var primalSq float64
	for i, x := range xs {
		du := mat.SubVec(x, wantZ)
		primalSq += du.SquaredNorm()
		if !f.Us[i].Equal(du, 0) {
			t.Errorf("u_%d = %v, want %v", i, f.Us[i], du)
		}
	}
	if math.Abs(res.Primal-math.Sqrt(primalSq)) > 1e-15 {
		t.Errorf("primal = %g, want %g", res.Primal, math.Sqrt(primalSq))
	}
	if f.Epoch() != 1 || f.Standing() != users {
		t.Errorf("epoch %d standing %d after one full fold", f.Epoch(), f.Standing())
	}
}

// TestAsyncFoldDampedStep: with a staleness weight the consensus moves by
// z + γ(ẑ − z) and fresher arrivals move it further.
func TestAsyncFoldDampedStep(t *testing.T) {
	step := func(stale float64) mat.Vector {
		f, err := NewAsyncFold(mat.Vector{1, 1}, 2, 1, DJAMWeight(4))
		if err != nil {
			t.Fatal(err)
		}
		f.Fold([]FoldEntry{{User: 0, X: mat.Vector{5, -5}, Stale: stale}})
		return f.Z
	}
	undamped, err := NewAsyncFold(mat.Vector{1, 1}, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	undamped.Fold([]FoldEntry{{User: 0, X: mat.Vector{5, -5}}})

	z0 := mat.Vector{1, 1}
	zFresh, zStale := step(0), step(3)
	if !zFresh.Equal(undamped.Z, 1e-15) {
		t.Errorf("γ(0) = 1 fold should match the undamped step: %v vs %v", zFresh, undamped.Z)
	}
	// A stale arrival must land strictly between the old consensus and
	// the undamped target, closer to the old consensus.
	if mat.Dist2(zStale, z0) >= mat.Dist2(zFresh, z0) {
		t.Errorf("stale fold moved at least as far as fresh: %v vs %v from %v", zStale, zFresh, z0)
	}
	want := z0.Clone()
	want.AddScaled(1.0/4, mat.SubVec(undamped.Z, z0)) // γ(3) = 1/(1+3)
	if !zStale.Equal(want, 1e-12) {
		t.Errorf("damped z = %v, want %v", zStale, want)
	}
}

func TestAsyncFoldSeedAndDrop(t *testing.T) {
	f, err := NewAsyncFold(mat.Vector{0, 0}, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Seed(1, mat.Vector{2, 2})
	if f.Standing() != 1 {
		t.Fatalf("standing after seed = %d", f.Standing())
	}
	if f.Epoch() != 0 {
		t.Errorf("Seed must not advance the epoch, got %d", f.Epoch())
	}
	// A fold of device 0 also averages in device 1's seeded solution.
	_, contributors := f.Fold([]FoldEntry{{User: 0, X: mat.Vector{1, 1}}})
	if contributors != 2 {
		t.Errorf("contributors = %d, want seeded + fresh = 2", contributors)
	}
	f.Drop(1)
	if f.Standing() != 1 {
		t.Errorf("standing after drop = %d", f.Standing())
	}
	if f.Us[1].SquaredNorm() != 0 {
		t.Errorf("drop should clear the dual, got %v", f.Us[1])
	}
	_, contributors = f.Fold([]FoldEntry{{User: 0, X: mat.Vector{1, 1}}})
	if contributors != 1 {
		t.Errorf("dropped device still contributing: %d", contributors)
	}
}
