package admm

import (
	"fmt"
	"math"

	"plos/internal/mat"
)

// StaleWeight maps a device's staleness — consensus rounds elapsed since
// the (z, u_t) snapshot its arriving solution was computed against — to a
// damping factor γ ∈ (0, 1] applied to the z-step of that fold. nil means
// undamped (γ = 1 always), which reproduces the in-process barrier fold
// bit-for-bit.
type StaleWeight func(staleRounds float64) float64

// DJAMWeight is the staleness rule used by the asynchronous wire protocol,
// after DJAM's damped asynchronous Jacobi updates: γ(s) = 1/(1 + min(s,
// maxStale)). Fresh arrivals move the consensus at close to full step;
// arrivals computed against an s-rounds-old snapshot are attenuated, and
// the attenuation saturates at maxStale so a device that slept through the
// night still contributes 1/(1+maxStale) of a full step rather than
// vanishing.
func DJAMWeight(maxStale float64) StaleWeight {
	if maxStale < 0 {
		maxStale = 0
	}
	return func(s float64) float64 {
		if s < 0 {
			s = 0
		}
		return 1 / (1 + math.Min(s, maxStale))
	}
}

// FoldEntry is one device's freshly arrived local solution.
type FoldEntry struct {
	// User is the device's index in the fold's dual-variable slice.
	User int
	// X is the arriving local variable x_t = w_t − v_t.
	X mat.Vector
	// Stale is the arrival's staleness in consensus rounds (see
	// StaleWeight). Ignored when the fold has no weight rule.
	Stale float64
}

// AsyncFold is the consensus algebra shared by the in-process asynchronous
// trainer (core.TrainAsync) and the asynchronous wire protocol
// (internal/protocol): devices contribute solutions at their own pace, and
// each Fold refreshes z over *every* standing solution — fresh arrivals
// plus the bounded-staleness solutions other devices are still computing
// against — then advances the duals of the fresh participants only,
// exactly the synchronous rule restricted to this fold's arrivals.
//
// The z-update is z ← z + γ·(ẑ − z) with ẑ = SquaredNormZ over the
// standing set and γ from the Weight rule (γ ≡ 1 when Weight is nil, in
// which case the fold is the unweighted barrier fold of the in-process
// trainer, bit-identical to the pre-extraction asyncRound algebra).
type AsyncFold struct {
	// Z is the current consensus. Callers may read it between folds (the
	// device snapshot) but must not mutate it.
	Z mat.Vector
	// Us are the scaled duals, one per device slot; nil-free and owned by
	// the fold.
	Us []mat.Vector
	// Rho is the ADMM penalty.
	Rho float64
	// Weight is the staleness damping rule; nil disables damping.
	Weight StaleWeight

	xs    []mat.Vector // standing solution per slot, nil until first arrival
	dim   int
	epoch int
}

// NewAsyncFold starts a fold at consensus w0 with `users` device slots.
func NewAsyncFold(w0 mat.Vector, users int, rho float64, weight StaleWeight) (*AsyncFold, error) {
	if len(w0) == 0 || users <= 0 {
		return nil, fmt.Errorf("admm: NewAsyncFold: need positive dim (%d) and users (%d)", len(w0), users)
	}
	if rho <= 0 {
		return nil, fmt.Errorf("admm: NewAsyncFold: rho must be positive, got %g", rho)
	}
	us := make([]mat.Vector, users)
	for t := range us {
		us[t] = mat.NewVector(len(w0))
	}
	return &AsyncFold{
		Z:      w0.Clone(),
		Us:     us,
		Rho:    rho,
		Weight: weight,
		xs:     make([]mat.Vector, users),
		dim:    len(w0),
	}, nil
}

// Epoch is the number of folds performed so far — the consensus round
// counter that staleness is measured against.
func (f *AsyncFold) Epoch() int { return f.epoch }

// Standing is the number of device slots holding a solution (fresh or
// carried); folds refresh z over exactly this set.
func (f *AsyncFold) Standing() int {
	n := 0
	for _, x := range f.xs {
		if x != nil {
			n++
		}
	}
	return n
}

// Seed installs a standing solution for slot t without performing a fold —
// the wire server uses it to carry a device's last known solution across a
// CCCP-round boundary so later folds do not wait for the straggler to
// re-report.
func (f *AsyncFold) Seed(t int, x mat.Vector) {
	f.xs[t] = x
}

// Drop clears slot t's standing solution and dual: the device has left
// permanently and must stop contributing to the consensus.
func (f *AsyncFold) Drop(t int) {
	f.xs[t] = nil
	f.Us[t] = mat.NewVector(f.dim)
}

// Fold performs one consensus refresh over the fresh arrivals: installs
// each entry as its device's standing solution, recomputes z over all
// standing solutions and duals (damped by the Weight rule at the maximum
// staleness among the arrivals), advances the fresh participants' duals
// against the new z, and returns the residuals in the asynchronous
// trainer's convention — Primal = sqrt(Σ_standing ||x_t − z||²), Dual =
// ρ·||Δz|| — plus the standing-contributor count.
func (f *AsyncFold) Fold(fresh []FoldEntry) (Residuals, int) {
	maxStale := 0.0
	for _, e := range fresh {
		f.xs[e.User] = e.X
		if e.Stale > maxStale {
			maxStale = e.Stale
		}
	}
	sum := mat.NewVector(f.dim)
	contributors := 0
	for t := range f.xs {
		if f.xs[t] != nil {
			sum.Add(f.xs[t])
			sum.Add(f.Us[t])
			contributors++
		}
	}
	zPrev := f.Z
	if contributors > 0 {
		zHat := SquaredNormZ(sum, contributors, f.Rho)
		if f.Weight == nil {
			f.Z = zHat
		} else {
			// z ← z + γ(ẑ − z): the damped DJAM step.
			z := zPrev.Clone()
			z.AddScaled(f.Weight(maxStale), mat.SubVec(zHat, zPrev))
			f.Z = z
		}
	}
	for _, e := range fresh {
		f.Us[e.User].Add(mat.SubVec(f.xs[e.User], f.Z))
	}
	var primalSq float64
	for t := range f.xs {
		if f.xs[t] != nil {
			primalSq += mat.SquaredDist(f.xs[t], f.Z)
		}
	}
	dual := f.Rho * mat.Dist2(f.Z, zPrev)
	f.epoch++
	return Residuals{Primal: math.Sqrt(primalSq), Dual: dual}, contributors
}
