package admm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

// quadWorker returns the closed-form x-update for
// f_t(x) = ½||x − a_t||²: argmin f_t(x) + (ρ/2)||x − z + u||²
// = (a_t + ρ(z − u)) / (1 + ρ).
func quadWorker(targets []mat.Vector, rho float64) XUpdater {
	return func(t int, z, u mat.Vector) (mat.Vector, error) {
		x := mat.SubVec(z, u)
		x.Scale(rho)
		x.Add(targets[t])
		x.Scale(1 / (1 + rho))
		return x, nil
	}
}

func TestRunConsensusAveraging(t *testing.T) {
	// With g = 0, the consensus of quadratic workers is the mean of the
	// targets.
	targets := []mat.Vector{{1, 2}, {3, 4}, {5, 6}}
	cons, info, err := Run(2, 3, quadWorker(targets, 1), AverageZ, Options{EpsAbs: 1e-7, MaxIter: 2000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !info.Converged {
		t.Error("should converge")
	}
	want := mat.Vector{3, 4}
	if !cons.Z.Equal(want, 1e-4) {
		t.Errorf("z = %v, want %v", cons.Z, want)
	}
}

func TestRunSquaredNormProx(t *testing.T) {
	// g(z) = ||z||² shrinks the consensus: minimize ||z||² + Σ½||z−a_t||²
	// has closed form z* = Σa_t / (T + 2).
	targets := []mat.Vector{{4, 0}, {8, 0}}
	cons, _, err := Run(2, 2, quadWorker(targets, 1), SquaredNormZ, Options{EpsAbs: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := mat.Vector{3, 0} // 12 / 4
	if !cons.Z.Equal(want, 1e-4) {
		t.Errorf("z = %v, want %v", cons.Z, want)
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	targets := []mat.Vector{{1, 1}, {2, -1}, {-3, 0}, {0, 5}}
	serial, _, err := Run(2, 4, quadWorker(targets, 1), AverageZ, Options{EpsAbs: 1e-8, MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Run(2, 4, quadWorker(targets, 1), AverageZ,
		Options{EpsAbs: 1e-8, MaxIter: 3000, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Z.Equal(parallel.Z, 1e-9) {
		t.Errorf("serial %v vs parallel %v", serial.Z, parallel.Z)
	}
}

func TestRunWorkerError(t *testing.T) {
	boom := errors.New("device offline")
	update := func(t int, z, u mat.Vector) (mat.Vector, error) {
		if t == 1 {
			return nil, boom
		}
		return mat.NewVector(2), nil
	}
	_, _, err := Run(2, 3, update, AverageZ, Options{})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped worker error", err)
	}
}

func TestRunMaxIterations(t *testing.T) {
	// A worker that never agrees: x_t alternates, consensus can't settle
	// in 1 iteration.
	targets := []mat.Vector{{100, 0}, {-100, 0}}
	_, info, err := Run(2, 2, quadWorker(targets, 1), AverageZ, Options{MaxIter: 1, EpsAbs: 1e-12})
	if !errors.Is(err, ErrMaxIterations) {
		t.Errorf("err = %v, want ErrMaxIterations", err)
	}
	if info.Converged {
		t.Error("must not report converged")
	}
}

func TestNewConsensusValidation(t *testing.T) {
	if _, err := NewConsensus(0, 2, 1, nil); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewConsensus(2, 0, 1, nil); err == nil {
		t.Error("workers 0 should error")
	}
	if _, err := NewConsensus(2, 2, 0, nil); err == nil {
		t.Error("rho 0 should error")
	}
}

func TestStepValidation(t *testing.T) {
	cons, err := NewConsensus(2, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cons.Step([]mat.Vector{{1, 2}}); err == nil {
		t.Error("wrong worker count should error")
	}
	if _, err := cons.Step([]mat.Vector{{1, 2}, {1}}); err == nil {
		t.Error("wrong dim should error")
	}
}

func TestResidualsConverged(t *testing.T) {
	r := Residuals{Dual: 0.001, Primal: 0.001}
	if !r.Converged(4, 0.01) {
		t.Error("small residuals should converge (thresholds √8·0.01, √4·0.01)")
	}
	if (Residuals{Dual: 1}).Converged(4, 0.01) {
		t.Error("large dual residual should not converge")
	}
	if (Residuals{Primal: 1}).Converged(4, 0.01) {
		t.Error("large primal residual should not converge")
	}
}

// Property: consensus ADMM over quadratic workers converges to the target
// mean (g = 0) for random targets, worker counts, and rho.
func TestPropertyQuadraticConsensus(t *testing.T) {
	f := func(seed int64, wRaw, dRaw uint8, rhoRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		workers := int(wRaw%5) + 2
		dim := int(dRaw%4) + 1
		rho := math.Abs(math.Mod(rhoRaw, 3)) + 0.3
		if math.IsNaN(rho) {
			return true
		}
		targets := make([]mat.Vector, workers)
		want := mat.NewVector(dim)
		for t := range targets {
			targets[t] = make(mat.Vector, dim)
			for j := range targets[t] {
				targets[t][j] = r.NormFloat64() * 3
			}
			want.Add(targets[t])
		}
		want.Scale(1 / float64(workers))
		cons, _, err := Run(dim, workers, quadWorker(targets, rho), AverageZ,
			Options{Rho: rho, EpsAbs: 1e-7, MaxIter: 5000})
		if err != nil {
			return false
		}
		return cons.Z.Equal(want, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the SquaredNormZ prox matches its closed form
// argmin ||z||² + (Tρ/2)||z − s/T||² = ρ·s/(2 + Tρ).
func TestPropertySquaredNormProxClosedForm(t *testing.T) {
	f := func(seed int64, wRaw uint8, rhoRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		workers := int(wRaw%6) + 1
		rho := math.Abs(math.Mod(rhoRaw, 5)) + 0.1
		if math.IsNaN(rho) {
			return true
		}
		sum := mat.Vector{r.NormFloat64(), r.NormFloat64()}
		z := SquaredNormZ(sum, workers, rho)
		// Numerically minimize over a grid around z to confirm optimality.
		obj := func(c mat.Vector) float64 {
			d := mat.SubVec(c, mat.ScaleVec(1/float64(workers), sum))
			return c.SquaredNorm() + float64(workers)*rho/2*d.SquaredNorm()
		}
		base := obj(z)
		for trial := 0; trial < 20; trial++ {
			cand := z.Clone()
			cand[r.Intn(2)] += r.NormFloat64() * 0.1
			if obj(cand) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDropWorker(t *testing.T) {
	cons, err := NewConsensus(2, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cons.U[0][0] = 10
	cons.U[1][0] = 20
	cons.U[2][0] = 30
	if err := cons.DropWorker(1); err != nil {
		t.Fatalf("DropWorker: %v", err)
	}
	if cons.Workers() != 2 {
		t.Fatalf("Workers = %d", cons.Workers())
	}
	if cons.U[0][0] != 10 || cons.U[1][0] != 30 {
		t.Errorf("duals after drop: %v", cons.U)
	}
	// Step now expects 2 workers.
	if _, err := cons.Step([]mat.Vector{{1, 1}, {2, 2}}); err != nil {
		t.Errorf("Step after drop: %v", err)
	}
	if err := cons.DropWorker(5); err == nil {
		t.Error("out-of-range drop should error")
	}
	if err := cons.DropWorker(-1); err == nil {
		t.Error("negative drop should error")
	}
}
