// Package admm implements the consensus form of the alternating direction
// method of multipliers (Boyd et al. 2011, §7) that distributed PLOS is
// built on (paper §V):
//
//	minimize  Σ_t f_t(x_t) + g(z)   subject to  x_t = z, t = 1..T
//
// Each round: every worker minimizes its augmented local objective at the
// current (z, u_t) and reports x_t; the server applies the proximal update
// of g to the average of (x_t + u_t); the scaled duals are updated as
// u_t += x_t − z. The Consensus type holds exactly the server-side state so
// that both the in-process driver (Run) and the wire-protocol server
// (internal/transport + internal/core) share one implementation of the
// update algebra and the residual-based stopping rule.
//
// Paper mapping: the x-update is device subproblem (22), the z-update with
// g(z) = ||z||² is the closed form behind SquaredNormZ, and Residuals plus
// Options.EpsAbs implement the Eq. (24) stopping rule. ObserveRound is the
// single recorder of per-round observability (round counter, residual
// gauges, duration histogram, trace span) shared by every ADMM driver —
// including the async trainer's barrier folds.
package admm
