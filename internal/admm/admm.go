package admm

import (
	"errors"
	"fmt"
	"math"
	"time"

	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/parallel"
)

// ZProx computes the z-update: given sum = Σ_t (x_t + u_t) and the worker
// count, return argmin_z g(z) + (Tρ/2)||z − sum/T||². For g = 0 this is
// sum/T; distributed PLOS uses g(z) = ||z||², giving ρ·sum/(2 + Tρ).
type ZProx func(sum mat.Vector, workers int, rho float64) mat.Vector

// AverageZ is the ZProx for g(z) = 0: plain consensus averaging.
func AverageZ(sum mat.Vector, workers int, _ float64) mat.Vector {
	z := sum.Clone()
	z.Scale(1 / float64(workers))
	return z
}

// SquaredNormZ is the ZProx for g(z) = ||z||² (distributed PLOS, Eq. 23):
// z = ρ·sum/(2 + Tρ).
func SquaredNormZ(sum mat.Vector, workers int, rho float64) mat.Vector {
	z := sum.Clone()
	z.Scale(rho / (2 + float64(workers)*rho))
	return z
}

// Consensus is the server-side ADMM state: the consensus variable z and the
// scaled dual u_t per worker.
type Consensus struct {
	Z   mat.Vector
	U   []mat.Vector
	Rho float64

	prox ZProx
}

// NewConsensus creates the server state for `workers` workers over
// dim-dimensional variables. rho must be positive.
func NewConsensus(dim, workers int, rho float64, prox ZProx) (*Consensus, error) {
	if dim <= 0 || workers <= 0 {
		return nil, fmt.Errorf("admm: NewConsensus: need positive dim (%d) and workers (%d)", dim, workers)
	}
	if rho <= 0 {
		return nil, fmt.Errorf("admm: NewConsensus: rho must be positive, got %g", rho)
	}
	if prox == nil {
		prox = AverageZ
	}
	u := make([]mat.Vector, workers)
	for t := range u {
		u[t] = mat.NewVector(dim)
	}
	return &Consensus{Z: mat.NewVector(dim), U: u, Rho: rho, prox: prox}, nil
}

// Residuals of one ADMM round, in the scaled form of paper Eq. (24).
type Residuals struct {
	// Dual: ρ·√(2T)·||z_{k+1} − z_k||.
	Dual float64
	// Primal: sqrt(Σ_t ||u_t^{k+1} − u_t^k||²).
	Primal float64
}

// Converged applies the paper's stopping rule with absolute tolerance
// epsAbs: dual ≤ √(2T)·εabs and primal ≤ √T·εabs.
func (r Residuals) Converged(workers int, epsAbs float64) bool {
	t := float64(workers)
	return r.Dual <= math.Sqrt(2*t)*epsAbs && r.Primal <= math.Sqrt(t)*epsAbs
}

// DropWorker removes worker i's dual state, shrinking the consensus to the
// remaining workers. The wire-protocol server uses it when a device dies
// mid-training (dropout tolerance); subsequent Steps expect one fewer x.
func (c *Consensus) DropWorker(i int) error {
	if i < 0 || i >= len(c.U) {
		return fmt.Errorf("admm: DropWorker: index %d out of range [0,%d)", i, len(c.U))
	}
	c.U = append(c.U[:i], c.U[i+1:]...)
	return nil
}

// Workers returns the current worker count.
func (c *Consensus) Workers() int { return len(c.U) }

// Step consumes this round's worker variables x_t (len(xs) must equal the
// worker count), performs the z- and u-updates, and returns the residuals.
func (c *Consensus) Step(xs []mat.Vector) (Residuals, error) {
	if len(xs) != len(c.U) {
		return Residuals{}, fmt.Errorf("admm: Step: got %d worker updates, want %d", len(xs), len(c.U))
	}
	dim := len(c.Z)
	sum := mat.NewVector(dim)
	for t, x := range xs {
		if len(x) != dim {
			return Residuals{}, fmt.Errorf("admm: Step: worker %d sent %d dims, want %d", t, len(x), dim)
		}
		sum.Add(x)
		sum.Add(c.U[t])
	}
	zNew := c.prox(sum, len(xs), c.Rho)

	var res Residuals
	res.Dual = c.Rho * math.Sqrt(2*float64(len(xs))) * mat.Dist2(zNew, c.Z)
	var primalSq float64
	for t, x := range xs {
		// u_t += x_t − z_new; Δu_t = x_t − z_new.
		du := mat.SubVec(x, zNew)
		primalSq += du.SquaredNorm()
		c.U[t].Add(du)
	}
	res.Primal = math.Sqrt(primalSq)
	c.Z = zNew
	return res, nil
}

// XUpdater is one worker's local solve: given the current consensus z and
// its scaled dual u, return the new local variable x_t.
type XUpdater func(t int, z, u mat.Vector) (mat.Vector, error)

// Options for the in-process driver.
type Options struct {
	Rho     float64 // default 1 (paper §VI-E)
	EpsAbs  float64 // default 1e-3 (paper §VI-E)
	MaxIter int     // default 200
	// Workers bounds the concurrent local x-updates per round, mirroring
	// the phones computing simultaneously in the real deployment: 0 means
	// runtime.GOMAXPROCS(0), 1 is strictly sequential. Results are
	// identical for any value — the z- and u-updates fold the gathered
	// x_t in worker-index order regardless of solve completion order.
	Workers int
	// Parallel is the legacy one-goroutine-per-worker switch, superseded
	// by Workers (which already defaults to a full pool); it is kept so
	// existing callers compile and has no additional effect.
	Parallel bool
	// Obs, when non-nil, receives per-round counters, residual gauges, a
	// round-duration histogram and one SpanADMMRound per round. Purely
	// observational — iterates are bit-identical with or without it.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Rho <= 0 {
		o.Rho = 1
	}
	if o.EpsAbs <= 0 {
		o.EpsAbs = 1e-3
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	return o
}

// RunInfo reports the outcome of Run.
type RunInfo struct {
	Iterations int
	Converged  bool
	Final      Residuals
}

// ErrMaxIterations is wrapped into Run's error when the residual rule is
// not met within MaxIter rounds. The state reached is still returned.
var ErrMaxIterations = errors.New("admm: maximum iterations reached")

// Run drives consensus ADMM in-process until the paper's residual stopping
// rule fires. It returns the final consensus state (z and the duals).
func Run(dim, workers int, update XUpdater, prox ZProx, opts Options) (*Consensus, RunInfo, error) {
	o := opts.withDefaults()
	cons, err := NewConsensus(dim, workers, o.Rho, prox)
	if err != nil {
		return nil, RunInfo{}, err
	}
	info := RunInfo{}
	xs := make([]mat.Vector, workers)
	for iter := 0; iter < o.MaxIter; iter++ {
		info.Iterations = iter + 1
		var roundStart time.Time
		if o.Obs != nil {
			roundStart = time.Now()
		}
		// Jacobi fan-out: every worker's x-update depends only on the
		// frozen (z, u_t) of this round, so the solves run on the bounded
		// pool; xs is gathered by worker index and Step folds it in index
		// order, keeping the consensus algebra deterministic.
		if err := parallel.For(o.Workers, workers, func(t int) error {
			x, e := update(t, cons.Z, cons.U[t])
			if e != nil {
				return fmt.Errorf("admm: worker %d: %w", t, e)
			}
			xs[t] = x
			return nil
		}); err != nil {
			return cons, info, err
		}
		res, err := cons.Step(xs)
		if err != nil {
			return cons, info, err
		}
		info.Final = res
		if r := o.Obs; r != nil {
			ObserveRound(r, iter, roundStart, res)
		}
		if res.Converged(workers, o.EpsAbs) {
			info.Converged = true
			return cons, info, nil
		}
	}
	return cons, info, fmt.Errorf("%w after %d rounds (dual %.3g, primal %.3g)",
		ErrMaxIterations, info.Iterations, info.Final.Dual, info.Final.Primal)
}

// ObserveRound records one consensus round into r: the round counter, the
// Eq. (24) residual gauges, the round-duration histogram and one
// SpanADMMRound. Shared by Run and the wire-protocol server (internal/
// protocol), which drives Consensus.Step directly.
func ObserveRound(r *obs.Registry, round int, start time.Time, res Residuals) {
	if r == nil {
		return
	}
	r.Counter(obs.MetricADMMRounds, "").Inc()
	r.Gauge(obs.MetricADMMPrimalResidual, "").Set(res.Primal)
	r.Gauge(obs.MetricADMMDualResidual, "").Set(res.Dual)
	r.Histogram(obs.MetricADMMRoundSeconds, "").Observe(time.Since(start).Seconds())
	r.Span(obs.Span{Kind: obs.SpanADMMRound, Start: start, Dur: time.Since(start),
		Round: round, User: -1, Primal: res.Primal, Dual: res.Dual})
	if r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordADMMRound, Round: round,
			Primal: res.Primal, Dual: res.Dual, Dur: time.Since(start)})
	}
}
