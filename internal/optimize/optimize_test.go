package optimize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

func TestWorkingSetDedup(t *testing.T) {
	var ws WorkingSet
	c1 := Constraint{A: mat.Vector{1, 0}, C: 1, Key: "\x01"}
	c2 := Constraint{A: mat.Vector{0, 1}, C: 2, Key: "\x02"}
	if !ws.Add(c1) || !ws.Add(c2) {
		t.Fatal("fresh constraints should insert")
	}
	if ws.Add(Constraint{A: mat.Vector{9, 9}, C: 9, Key: "\x01"}) {
		t.Error("duplicate key should not insert")
	}
	if ws.Len() != 2 {
		t.Errorf("Len = %d", ws.Len())
	}
	got := ws.Constraints()
	if got[0].C != 1 || got[1].C != 2 {
		t.Error("insertion order not preserved")
	}
	ws.Reset()
	if ws.Len() != 0 {
		t.Error("Reset should empty the set")
	}
	if !ws.Add(c1) {
		t.Error("Add after Reset should insert")
	}
}

func TestWorkingSetGeneration(t *testing.T) {
	// Generation increments on every Reset and only on Reset — it is the
	// invalidation key for solver-side caches (qp.GramCache holders).
	var ws WorkingSet
	g0 := ws.Generation()
	ws.Add(Constraint{A: mat.Vector{1}, C: 1, Key: "\x01"})
	ws.Add(Constraint{A: mat.Vector{2}, C: 2, Key: "\x02"})
	if ws.Generation() != g0 {
		t.Error("Add must not change the generation")
	}
	ws.Reset()
	if ws.Generation() != g0+1 {
		t.Errorf("Generation = %d after one Reset, want %d", ws.Generation(), g0+1)
	}
	ws.Reset()
	if ws.Generation() != g0+2 {
		t.Errorf("Generation = %d after two Resets, want %d", ws.Generation(), g0+2)
	}
}

func TestMostViolatedSelectsLowMargin(t *testing.T) {
	// Two samples: first has margin 5 (excluded), second margin -1 (included).
	x := mat.FromRows([][]float64{{5, 0}, {-1, 0}})
	eff := []float64{1, 1}
	weight := []float64{0.5, 0.5}
	w := mat.Vector{1, 0}
	c, err := MostViolated(x, eff, weight, w)
	if err != nil {
		t.Fatal(err)
	}
	// Only sample 2 selected: A = 0.5*1*(-1,0), C = 0.5.
	if !c.A.Equal(mat.Vector{-0.5, 0}, 1e-12) {
		t.Errorf("A = %v", c.A)
	}
	if c.C != 0.5 {
		t.Errorf("C = %v", c.C)
	}
}

func TestMostViolatedEmptyWhenAllMarginsMet(t *testing.T) {
	x := mat.FromRows([][]float64{{5, 0}, {7, 0}})
	c, err := MostViolated(x, []float64{1, 1}, []float64{1, 1}, mat.Vector{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.C != 0 || c.A.Norm2() != 0 {
		t.Errorf("expected empty constraint, got %+v", c)
	}
	if Violation(c, mat.Vector{1, 0}, 0) > 0 {
		t.Error("empty constraint should not be violated")
	}
}

func TestMostViolatedErrors(t *testing.T) {
	x := mat.FromRows([][]float64{{1, 2}})
	if _, err := MostViolated(x, []float64{1, 1}, []float64{1}, mat.Vector{0, 0}); err == nil {
		t.Error("label length mismatch should error")
	}
	if _, err := MostViolated(x, []float64{1}, []float64{1}, mat.Vector{0}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestMostViolatedKeyEncodesSubset(t *testing.T) {
	x := mat.FromRows([][]float64{{-1}, {5}, {-1}})
	eff := []float64{1, 1, 1}
	weight := []float64{1, 1, 1}
	c, err := MostViolated(x, eff, weight, mat.Vector{1})
	if err != nil {
		t.Fatal(err)
	}
	// Samples 0 and 2 selected: bits 0b101 = 0x05.
	if c.Key != "\x05" {
		t.Errorf("Key = %x", c.Key)
	}
}

func TestViolationAndSlack(t *testing.T) {
	var ws WorkingSet
	ws.Add(Constraint{A: mat.Vector{1}, C: 2, Key: "a"})
	ws.Add(Constraint{A: mat.Vector{-1}, C: 0.2, Key: "b"})
	w := mat.Vector{1}
	// Constraint a: 2 - 1 = 1; constraint b: 0.2 + 1 = 1.2. Slack = 1.2.
	if got := Slack(&ws, w); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("Slack = %v", got)
	}
	if got := Violation(ws.Constraints()[0], w, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Violation = %v", got)
	}
	var empty WorkingSet
	if Slack(&empty, w) != 0 {
		t.Error("empty working set should give zero slack")
	}
}

// Property: the most-violated constraint maximizes c·selection over all
// 2^m subsets — verify against brute force for small m (Eq. 13/14 argmax).
func TestPropertyMostViolatedIsArgmax(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw%6) + 1
		r := rand.New(rand.NewSource(seed))
		x := mat.NewMatrix(m, 2)
		eff := make([]float64, m)
		weight := make([]float64, m)
		for i := 0; i < m; i++ {
			x.Set(i, 0, r.NormFloat64())
			x.Set(i, 1, r.NormFloat64())
			eff[i] = float64(r.Intn(2))*2 - 1
			weight[i] = r.Float64()
		}
		w := mat.Vector{r.NormFloat64(), r.NormFloat64()}
		got, err := MostViolated(x, eff, weight, w)
		if err != nil {
			return false
		}
		gotVal := got.C - w.Dot(got.A)
		// Brute force over all subsets.
		best := math.Inf(-1)
		for mask := 0; mask < 1<<m; mask++ {
			var val float64
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					val += weight[i] * (1 - eff[i]*w.Dot(x.Row(i)))
				}
			}
			if val > best {
				best = val
			}
		}
		return math.Abs(gotVal-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCCCPConvergesOnDecreasingSequence(t *testing.T) {
	// Objective halves every round: converges when steps get small.
	val := 8.0
	info, err := CCCP(func(int) (float64, error) {
		val /= 2
		return val, nil
	}, 1e-3, 100)
	if err != nil {
		t.Fatalf("CCCP: %v", err)
	}
	if !info.Converged {
		t.Error("should converge")
	}
	if len(info.History) != info.Iterations {
		t.Errorf("history length %d != iterations %d", len(info.History), info.Iterations)
	}
}

func TestCCCPDetectsIncrease(t *testing.T) {
	vals := []float64{5, 1, 9}
	i := 0
	_, err := CCCP(func(int) (float64, error) {
		v := vals[i]
		i++
		return v, nil
	}, 1e-6, 10)
	if !errors.Is(err, ErrNotDescending) {
		t.Errorf("err = %v, want ErrNotDescending", err)
	}
}

func TestCCCPPropagatesStepError(t *testing.T) {
	boom := errors.New("boom")
	_, err := CCCP(func(int) (float64, error) { return 0, boom }, 1e-6, 10)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestCCCPMaxIter(t *testing.T) {
	calls := 0
	info, err := CCCP(func(k int) (float64, error) {
		calls++
		return -float64(k), nil // keeps decreasing by 1, never converges
	}, 1e-9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 || info.Iterations != 7 || info.Converged {
		t.Errorf("calls=%d info=%+v", calls, info)
	}
}

// TestCCCPGuardedSkipsDegradedRounds: a degraded round's objective (folded
// from stale partials) may rise or freeze without ending the run — the
// monotonicity and convergence tests skip it and the first clean round after
// it, then resume.
func TestCCCPGuardedSkipsDegradedRounds(t *testing.T) {
	// Rounds 1-2 are degraded: a big rise then a frozen value, either of
	// which would terminate plain CCCPResume. Round 4 is the first checked
	// round (3 is clean but follows a degraded one) and descends; round 5
	// converges against round 4.
	vals := []float64{5, 9, 9, 4, 3, 3}
	dirty := map[int]bool{1: true, 2: true}
	i := 0
	step := func(int) (float64, error) {
		v := vals[i]
		i++
		return v, nil
	}
	info, err := CCCPResumeGuarded(step, 1e-3, 10, nil,
		func(k int) bool { return !dirty[k] })
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	if !info.Converged || info.Iterations != 6 {
		t.Errorf("info = %+v, want convergence at round 5", info)
	}

	// The same sequence without the hint dies on the round-1 rise.
	i = 0
	if _, err := CCCPResume(step, 1e-3, 10, nil); !errors.Is(err, ErrNotDescending) {
		t.Errorf("unguarded err = %v, want ErrNotDescending", err)
	}
}

// TestCCCPGuardedStillChecksCleanRounds: the hint must not disable the
// descent guarantee where it is meaningful — two consecutive clean rounds
// that ascend still fail.
func TestCCCPGuardedStillChecksCleanRounds(t *testing.T) {
	vals := []float64{5, 9, 4, 8}
	i := 0
	_, err := CCCPResumeGuarded(func(int) (float64, error) {
		v := vals[i]
		i++
		return v, nil
	}, 1e-3, 10, nil, func(k int) bool { return k != 1 })
	if !errors.Is(err, ErrNotDescending) {
		t.Errorf("err = %v, want ErrNotDescending on the clean 4 -> 8 rise", err)
	}
}
