// Package optimize provides the two outer-loop drivers from the paper's
// Algorithm 1/2 that are shared between centralized and distributed PLOS:
//
//   - CCCP, the concave-convex procedure (Yuille & Rangarajan 2003): the
//     non-convex |w·x| terms are linearized at the previous iterate and the
//     resulting convex problem is re-solved until the objective stabilizes.
//     CCCP monotonically decreases a bounded objective, so it converges.
//
//   - Cutting-plane working sets (Kelley 1960): problem (11) has Σ_t 2^{m_t}
//     constraints — one per subset vector c_t ∈ {0,1}^{m_t}. The working set
//     Ω_t starts empty and grows by the most-violated constraint (Eq. 14)
//     until no constraint is violated by more than ε (Eq. 15).
package optimize

import (
	"errors"
	"fmt"

	"plos/internal/mat"
)

// Constraint is one aggregated cutting-plane constraint for a single user:
// in hyperplane variables it reads  w·A >= C − ξ. A and C are the z_kt and
// c_kt aggregates of paper Eq. (17)–(18), expressed in the user's original
// feature space (the stacked Φ-space inner products are recovered
// analytically by the solver; see internal/core).
type Constraint struct {
	A mat.Vector
	C float64
	// Key identifies the selected sample subset (packed bitmask) so a
	// constraint is never added to a working set twice.
	Key string
}

// WorkingSet is one user's Ω_t: an insertion-ordered, deduplicated set of
// constraints. The zero value is ready to use.
type WorkingSet struct {
	constraints []Constraint
	keys        map[string]struct{}
	// gen increments every Reset, so solver-side caches keyed on the
	// set's append-only growth (internal/qp.GramCache users) can detect
	// that previously-flattened constraints vanished and must rebuild.
	gen uint64
}

// Add appends c unless an identical subset is already present. It reports
// whether the constraint was inserted.
func (ws *WorkingSet) Add(c Constraint) bool {
	if ws.keys == nil {
		ws.keys = make(map[string]struct{})
	}
	if _, dup := ws.keys[c.Key]; dup {
		return false
	}
	ws.keys[c.Key] = struct{}{}
	ws.constraints = append(ws.constraints, c)
	return true
}

// Len returns the number of constraints in the set.
func (ws *WorkingSet) Len() int { return len(ws.constraints) }

// Constraints returns the constraints in insertion order. The slice is the
// set's backing store; callers must not mutate it.
func (ws *WorkingSet) Constraints() []Constraint { return ws.constraints }

// Reset empties the working set (used between CCCP rounds when running
// with cold working sets) and advances its generation.
func (ws *WorkingSet) Reset() {
	ws.constraints = ws.constraints[:0]
	ws.keys = nil
	ws.gen++
}

// Generation returns a counter that advances on every Reset. Between equal
// generations the set only appends, so a cache built against a generation
// stays a valid prefix view of the set for as long as the generation holds.
func (ws *WorkingSet) Generation() uint64 { return ws.gen }

// MostViolated constructs one user's most-violated constraint (Eq. 14)
// given the hyperplane w. eff[i] is the sample's effective label: the true
// label y_i for labeled samples, the CCCP-frozen sign s_i for unlabeled
// ones. weight[i] is the per-sample loss weight (Cl/m_t or Cu/m_t).
// Sample i is selected iff its functional margin eff_i·(w·x_i) < 1.
//
// The returned constraint may be empty (A = 0, C = 0) when every sample has
// margin >= 1; its violation against any ξ >= 0 is then non-positive.
func MostViolated(x *mat.Matrix, eff, weight []float64, w mat.Vector) (Constraint, error) {
	if x.Rows != len(eff) || x.Rows != len(weight) {
		return Constraint{}, fmt.Errorf("optimize: MostViolated: %d rows, %d labels, %d weights",
			x.Rows, len(eff), len(weight))
	}
	if x.Cols != len(w) {
		return Constraint{}, fmt.Errorf("optimize: MostViolated: %d features vs |w| = %d", x.Cols, len(w))
	}
	a := mat.NewVector(x.Cols)
	var c float64
	bits := make([]byte, (x.Rows+7)/8)
	for i := 0; i < x.Rows; i++ {
		if weight[i] == 0 {
			continue // contributes nothing to A or C
		}
		xi := x.Row(i)
		if eff[i]*w.Dot(xi) < 1 {
			a.AddScaled(weight[i]*eff[i], xi)
			c += weight[i]
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return Constraint{A: a, C: c, Key: string(bits)}, nil
}

// Violation returns how much constraint c is violated at hyperplane w with
// slack xi: max over nothing — just C − w·A − ξ. A positive value means the
// constraint is violated by that amount (compare against ε per Eq. 15).
func Violation(c Constraint, w mat.Vector, xi float64) float64 {
	return c.C - w.Dot(c.A) - xi
}

// Slack returns the tight slack value ξ_t implied by a working set at w:
// max(0, max_k (C_k − w·A_k)).
func Slack(ws *WorkingSet, w mat.Vector) float64 {
	var s float64
	for _, c := range ws.constraints {
		if v := c.C - w.Dot(c.A); v > s {
			s = v
		}
	}
	return s
}

// CCCPInfo reports the outcome of a CCCP run.
type CCCPInfo struct {
	Iterations int
	Objective  float64
	Converged  bool
	// History records the objective after each CCCP round.
	History []float64
}

// ErrNotDescending is wrapped into CCCP's error when a round increases the
// objective by more than the tolerance — a symptom of an inexact inner
// solver, surfaced rather than hidden because monotone descent is CCCP's
// convergence guarantee.
var ErrNotDescending = errors.New("optimize: CCCP objective increased")

// CCCP iterates step (which must linearize at the current iterate and
// solve the convexified problem, returning its objective) until the
// objective changes by at most tol·(1+|L|) between rounds, or maxIter
// rounds elapse. On non-monotone steps it returns the iterate anyway with
// an ErrNotDescending-wrapped error so callers can decide.
func CCCP(step func(iter int) (float64, error), tol float64, maxIter int) (CCCPInfo, error) {
	return CCCPResume(step, tol, maxIter, nil)
}

// CCCPResume is CCCP continuing from a prior objective history (one entry
// per already-completed round, oldest first): the round counter starts at
// len(prior), the first new round's monotonicity and convergence checks
// compare against the last prior objective, and prior is carried into the
// returned History. It powers checkpoint restore — a resumed run makes the
// same decisions the uninterrupted run would have. A nil prior is a fresh
// run.
func CCCPResume(step func(iter int) (float64, error), tol float64, maxIter int, prior []float64) (CCCPInfo, error) {
	return CCCPResumeGuarded(step, tol, maxIter, prior, nil)
}

// CCCPResumeGuarded is CCCPResume with a per-round cleanliness hint for
// fault-tolerant callers. clean(k), consulted right after step(k) returns,
// reports whether round k's objective is trustworthy; a degraded round (one
// folded from stale partials while a worker was down) is not comparable to
// its neighbours, so the monotonicity and convergence tests are skipped for
// that round and for the first clean round after it — training keeps going
// instead of mistaking the perturbation for convergence or ascent. A nil
// clean treats every round as clean.
func CCCPResumeGuarded(step func(iter int) (float64, error), tol float64, maxIter int, prior []float64, clean func(iter int) bool) (CCCPInfo, error) {
	if tol <= 0 {
		tol = 1e-4
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	info := CCCPInfo{
		Iterations: len(prior),
		History:    append([]float64(nil), prior...),
	}
	prev := 0.0
	if len(prior) > 0 {
		prev = prior[len(prior)-1]
		info.Objective = prev
	}
	prevClean := true
	for k := len(prior); k < maxIter; k++ {
		obj, err := step(k)
		if err != nil {
			return info, fmt.Errorf("optimize: CCCP round %d: %w", k, err)
		}
		info.Iterations = k + 1
		info.Objective = obj
		info.History = append(info.History, obj)
		thisClean := clean == nil || clean(k)
		if k > 0 && thisClean && prevClean {
			delta := prev - obj
			if delta < -tol*(1+abs(prev)) {
				return info, fmt.Errorf("%w at round %d: %g -> %g", ErrNotDescending, k, prev, obj)
			}
			if abs(delta) <= tol*(1+abs(prev)) {
				info.Converged = true
				return info, nil
			}
		}
		prev = obj
		prevClean = thisClean
	}
	return info, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
