package cluster

import (
	"fmt"
	"math"
)

// Hungarian solves the square assignment problem: given an n x n cost
// matrix, it returns the column assigned to each row minimizing total cost,
// along with that cost. It implements the O(n³) Jonker-style shortest
// augmenting path variant of the Kuhn–Munkres algorithm.
//
// The clustering evaluators use it to find the best cluster→label mapping
// before computing accuracy (paper §VI-A, "label matching").
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("cluster: Hungarian: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if n == 0 {
		return nil, 0, nil
	}

	const inf = math.MaxFloat64
	// Potentials and matching, 1-indexed internally per the classic
	// formulation (index 0 is a sentinel).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0, delta, j1 := p[j0], inf, 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	var total float64
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total, nil
}

// BestLabelMatching maps cluster indices to class labels so that accuracy is
// maximized. clusters[i] in [0,k), labels[i] are arbitrary class values; the
// returned map sends each cluster index to a class value, and acc is the
// resulting accuracy. All k clusters are matched to the (up to k) distinct
// label values via Hungarian assignment on the negated co-occurrence counts.
func BestLabelMatching(clusters []int, labels []float64, k int) (map[int]float64, float64, error) {
	if len(clusters) != len(labels) {
		return nil, 0, fmt.Errorf("cluster: BestLabelMatching: %d clusters vs %d labels", len(clusters), len(labels))
	}
	// Enumerate distinct label values deterministically by first occurrence.
	var values []float64
	index := map[float64]int{}
	for _, l := range labels {
		if _, ok := index[l]; !ok {
			index[l] = len(values)
			values = append(values, l)
		}
	}
	size := k
	if len(values) > size {
		size = len(values)
	}
	counts := make([][]float64, size)
	for i := range counts {
		counts[i] = make([]float64, size)
	}
	for i, c := range clusters {
		if c < 0 || c >= k {
			return nil, 0, fmt.Errorf("cluster: BestLabelMatching: cluster %d out of range [0,%d)", c, k)
		}
		counts[c][index[labels[i]]]++
	}
	// Maximize matches = minimize negated counts.
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := range cost[i] {
			cost[i][j] = -counts[i][j]
		}
	}
	assign, negTotal, err := Hungarian(cost)
	if err != nil {
		return nil, 0, err
	}
	mapping := make(map[int]float64, k)
	for c := 0; c < k; c++ {
		j := assign[c]
		if j < len(values) {
			mapping[c] = values[j]
		} else if len(values) > 0 {
			mapping[c] = values[0] // padded column: arbitrary but defined
		}
	}
	acc := 0.0
	if len(clusters) > 0 {
		acc = -negTotal / float64(len(clusters))
	}
	return mapping, acc, nil
}
