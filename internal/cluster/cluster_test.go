package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
	"plos/internal/rng"
)

// twoBlobs returns well-separated 2-d clusters and their true assignment.
func twoBlobs(r *rand.Rand, per int, sep float64) (*mat.Matrix, []int) {
	x := mat.NewMatrix(2*per, 2)
	truth := make([]int, 2*per)
	for i := 0; i < per; i++ {
		x.Set(i, 0, sep+r.NormFloat64())
		x.Set(i, 1, r.NormFloat64())
		truth[i] = 0
		x.Set(per+i, 0, -sep+r.NormFloat64())
		x.Set(per+i, 1, r.NormFloat64())
		truth[per+i] = 1
	}
	return x, truth
}

func agreement(a, b []int) float64 {
	// Best-of-two-permutations agreement for binary clusterings.
	same, flip := 0, 0
	for i := range a {
		if a[i] == b[i] {
			same++
		} else {
			flip++
		}
	}
	if flip > same {
		same = flip
	}
	return float64(same) / float64(len(a))
}

func TestKMeansTwoBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x, truth := twoBlobs(r, 100, 10)
	res, err := KMeans(x, 2, rng.New(1), KMeansParams{})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if !res.Converged {
		t.Error("should converge on separated blobs")
	}
	if acc := agreement(res.Assignment, truth); acc < 0.99 {
		t.Errorf("agreement = %v", acc)
	}
	if len(res.Centers) != 2 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	// Centers should be near (±10, 0).
	c0 := res.Centers[0]
	if math.Abs(math.Abs(c0[0])-10) > 1 {
		t.Errorf("center = %v", c0)
	}
}

func TestKMeansErrors(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}})
	if _, err := KMeans(x, 0, rng.New(1), KMeansParams{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(x, 3, rng.New(1), KMeansParams{}); err == nil {
		t.Error("k>n should error")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x, _ := twoBlobs(r, 30, 4)
	a, err := KMeans(x, 2, rng.New(9), KMeansParams{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(x, 2, rng.New(9), KMeansParams{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed should give identical clustering")
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	// All points identical: must not loop forever or panic; inertia 0.
	x := mat.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	res, err := KMeans(x, 2, rng.New(3), KMeansParams{})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

// Property: k-means inertia never exceeds the inertia of the trivial
// one-cluster solution; assignments are in range.
func TestPropertyKMeansInertia(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 4
		k := int(kRaw%3) + 1
		if k > n {
			k = n
		}
		x := mat.NewMatrix(n, 2)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64() * 5
		}
		res, err := KMeans(x, k, rng.New(seed), KMeansParams{})
		if err != nil {
			return false
		}
		for _, a := range res.Assignment {
			if a < 0 || a >= k {
				return false
			}
		}
		// One-cluster inertia (total variance around the mean).
		mean := mat.NewVector(2)
		for i := 0; i < n; i++ {
			mean.Add(x.Row(i))
		}
		mean.Scale(1 / float64(n))
		var oneCluster float64
		for i := 0; i < n; i++ {
			oneCluster += mat.SquaredDist(x.Row(i), mean)
		}
		return res.Inertia <= oneCluster+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestHungarianKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatalf("Hungarian: %v", err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %v, want 5 (assign %v)", total, assign)
	}
	seen := map[int]bool{}
	for _, j := range assign {
		if seen[j] {
			t.Fatal("assignment reuses a column")
		}
		seen[j] = true
	}
}

func TestHungarianErrors(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1, 2}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if assign, total, err := Hungarian(nil); err != nil || len(assign) != 0 || total != 0 {
		t.Error("empty problem should succeed trivially")
	}
}

func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			var s float64
			for r, c := range perm {
				s += cost[r][c]
			}
			if s < best {
				best = s
			}
			return
		}
		for j := i; j < n; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			recurse(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	recurse(0)
	return best
}

// Property: Hungarian total equals brute-force optimum for small matrices.
func TestPropertyHungarianOptimal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		r := rand.New(rand.NewSource(seed))
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(r.Float64()*20) - 5 // include negatives
			}
		}
		assign, total, err := Hungarian(cost)
		if err != nil {
			return false
		}
		var check float64
		for i, j := range assign {
			check += cost[i][j]
		}
		if math.Abs(check-total) > 1e-9 {
			return false
		}
		return math.Abs(total-bruteForceAssignment(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBestLabelMatching(t *testing.T) {
	clusters := []int{0, 0, 1, 1, 1}
	labels := []float64{-1, -1, 1, 1, -1}
	mapping, acc, err := BestLabelMatching(clusters, labels, 2)
	if err != nil {
		t.Fatalf("BestLabelMatching: %v", err)
	}
	if mapping[0] != -1 || mapping[1] != 1 {
		t.Errorf("mapping = %v", mapping)
	}
	if math.Abs(acc-0.8) > 1e-12 {
		t.Errorf("acc = %v, want 0.8", acc)
	}
}

func TestBestLabelMatchingErrors(t *testing.T) {
	if _, _, err := BestLabelMatching([]int{0}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := BestLabelMatching([]int{5}, []float64{1}, 2); err == nil {
		t.Error("out-of-range cluster should error")
	}
}

func TestBestLabelMatchingMoreClustersThanLabels(t *testing.T) {
	// 3 clusters but only 2 label values: must still produce a full map.
	clusters := []int{0, 1, 2, 0}
	labels := []float64{1, -1, 1, 1}
	mapping, acc, err := BestLabelMatching(clusters, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != 3 {
		t.Errorf("mapping = %v", mapping)
	}
	if acc < 0.74 {
		t.Errorf("acc = %v", acc)
	}
}

// Property: matched accuracy is invariant to permuting cluster indices.
func TestPropertyMatchingPermutationInvariant(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 4
		k := 3
		clusters := make([]int, n)
		labels := make([]float64, n)
		for i := range clusters {
			clusters[i] = r.Intn(k)
			labels[i] = float64(r.Intn(2))*2 - 1
		}
		_, acc1, err := BestLabelMatching(clusters, labels, k)
		if err != nil {
			return false
		}
		// Permute cluster indices.
		perm := r.Perm(k)
		permuted := make([]int, n)
		for i := range clusters {
			permuted[i] = perm[clusters[i]]
		}
		_, acc2, err := BestLabelMatching(permuted, labels, k)
		if err != nil {
			return false
		}
		return math.Abs(acc1-acc2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpectralTwoBlocks(t *testing.T) {
	// Block-diagonal similarity: two communities of 4 nodes.
	n := 8
	sim := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if (i < 4) == (j < 4) {
				sim.Set(i, j, 1)
			} else {
				sim.Set(i, j, 0.01)
			}
		}
	}
	assign, err := Spectral(sim, 2, rng.New(5))
	if err != nil {
		t.Fatalf("Spectral: %v", err)
	}
	truth := []int{0, 0, 0, 0, 1, 1, 1, 1}
	if acc := agreement(assign, truth); acc != 1 {
		t.Errorf("agreement = %v, assign = %v", acc, assign)
	}
}

func TestSpectralErrors(t *testing.T) {
	if _, err := Spectral(mat.NewMatrix(2, 3), 2, rng.New(1)); err == nil {
		t.Error("non-square should error")
	}
	asym := mat.FromRows([][]float64{{0, 1}, {0.5, 0}})
	if _, err := Spectral(asym, 2, rng.New(1)); err == nil {
		t.Error("asymmetric should error")
	}
	neg := mat.FromRows([][]float64{{0, -1}, {-1, 0}})
	if _, err := Spectral(neg, 2, rng.New(1)); err == nil {
		t.Error("negative similarity should error")
	}
	small := mat.FromRows([][]float64{{0}})
	if _, err := Spectral(small, 2, rng.New(1)); err == nil {
		t.Error("k>n should error")
	}
}

func TestSpectralIsolatedNode(t *testing.T) {
	// A node with zero similarity to everything must not produce NaNs.
	sim := mat.NewMatrix(5, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				sim.Set(i, j, 1)
			}
		}
	}
	assign, err := Spectral(sim, 2, rng.New(6))
	if err != nil {
		t.Fatalf("Spectral: %v", err)
	}
	if len(assign) != 5 {
		t.Fatalf("assign = %v", assign)
	}
}
