// Package cluster implements the clustering substrates the PLOS evaluation
// depends on: Lloyd's k-means with k-means++ seeding (the "Single" baseline
// for users without labels), spectral clustering over a user-similarity
// graph (the "Group" baseline), and the Hungarian algorithm for matching
// cluster indices to ground-truth labels ("we conduct label matching on the
// clustering results and evaluate them under the best class assignments",
// paper §VI-A).
package cluster

import (
	"errors"
	"fmt"
	"math"

	"plos/internal/mat"
	"plos/internal/rng"
)

// Errors returned by the clustering routines.
var (
	ErrTooFewPoints = errors.New("cluster: fewer points than clusters")
	ErrBadK         = errors.New("cluster: k must be positive")
)

// KMeansResult holds the outcome of a k-means run.
type KMeansResult struct {
	Centers    []mat.Vector
	Assignment []int // Assignment[i] is the cluster of row i
	Inertia    float64
	Iterations int
	Converged  bool
}

// KMeansParams configures a run. Zero value: 100 iterations, 4 restarts.
type KMeansParams struct {
	MaxIter  int
	Restarts int
}

func (p KMeansParams) withDefaults() KMeansParams {
	if p.MaxIter <= 0 {
		p.MaxIter = 100
	}
	if p.Restarts <= 0 {
		p.Restarts = 4
	}
	return p
}

// KMeans clusters the rows of x into k clusters using Lloyd's algorithm
// with k-means++ seeding, keeping the best of Restarts runs by inertia.
func KMeans(x *mat.Matrix, k int, g *rng.RNG, p KMeansParams) (*KMeansResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	if x.Rows < k {
		return nil, fmt.Errorf("%w: %d points, k=%d", ErrTooFewPoints, x.Rows, k)
	}
	p = p.withDefaults()
	var best *KMeansResult
	for restart := 0; restart < p.Restarts; restart++ {
		res := kmeansOnce(x, k, g.SplitN("kmeans-restart", restart), p.MaxIter)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(x *mat.Matrix, k int, g *rng.RNG, maxIter int) *KMeansResult {
	centers := seedPlusPlus(x, k, g)
	n := x.Rows
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := false
		for i := 0; i < n; i++ {
			xi := x.Row(i)
			bestC, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := mat.SquaredDist(xi, ctr); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed {
			res.Converged = true
			break
		}
		// Recompute centers; an emptied cluster keeps its old center.
		counts := make([]int, k)
		sums := make([]mat.Vector, k)
		for c := range sums {
			sums[c] = mat.NewVector(x.Cols)
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			sums[assign[i]].Add(x.Row(i))
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				sums[c].Scale(1 / float64(counts[c]))
				centers[c] = sums[c]
			}
		}
	}
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += mat.SquaredDist(x.Row(i), centers[assign[i]])
	}
	res.Centers = centers
	res.Assignment = assign
	res.Inertia = inertia
	return res
}

// seedPlusPlus picks k initial centers with k-means++ (distance-squared
// weighted sampling).
func seedPlusPlus(x *mat.Matrix, k int, g *rng.RNG) []mat.Vector {
	n := x.Rows
	centers := make([]mat.Vector, 0, k)
	centers = append(centers, x.Row(g.Intn(n)).Clone())
	d2 := make(mat.Vector, n)
	for len(centers) < k {
		var total float64
		for i := 0; i < n; i++ {
			xi := x.Row(i)
			best := math.Inf(1)
			for _, c := range centers {
				if d := mat.SquaredDist(xi, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total <= 1e-300 {
			// All remaining points coincide with existing centers; pick
			// uniformly to fill the remaining slots.
			centers = append(centers, x.Row(g.Intn(n)).Clone())
			continue
		}
		target := g.Float64() * total
		var cum float64
		pick := n - 1
		for i := 0; i < n; i++ {
			cum += d2[i]
			if cum >= target {
				pick = i
				break
			}
		}
		centers = append(centers, x.Row(pick).Clone())
	}
	return centers
}
