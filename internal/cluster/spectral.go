package cluster

import (
	"fmt"
	"math"

	"plos/internal/mat"
	"plos/internal/rng"
)

// Spectral performs normalized spectral clustering (Ng–Jordan–Weiss) on a
// symmetric nonnegative similarity matrix: it forms the symmetric normalized
// Laplacian L = I − D^{-1/2} S D^{-1/2}, takes the eigenvectors of the k
// smallest eigenvalues, row-normalizes them, and runs k-means on the rows.
//
// The Group baseline (paper §VI-A) clusters users into 3 groups with this
// routine over Jaccard similarities of LSH bucket histograms.
func Spectral(sim *mat.Matrix, k int, g *rng.RNG) ([]int, error) {
	n := sim.Rows
	if sim.Cols != n {
		return nil, fmt.Errorf("cluster: Spectral: similarity matrix is %dx%d, want square", n, sim.Cols)
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	if n < k {
		return nil, fmt.Errorf("%w: %d points, k=%d", ErrTooFewPoints, n, k)
	}
	if !sim.IsSymmetric(1e-9 * (1 + sim.FrobeniusNorm())) {
		return nil, fmt.Errorf("cluster: Spectral: similarity matrix not symmetric")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sim.At(i, j) < -1e-12 {
				return nil, fmt.Errorf("cluster: Spectral: negative similarity at (%d,%d)", i, j)
			}
		}
	}

	// Degree and normalized Laplacian. Isolated nodes (zero degree) get
	// d^{-1/2} = 0 so they decouple cleanly.
	dInvSqrt := make(mat.Vector, n)
	for i := 0; i < n; i++ {
		var d float64
		for j := 0; j < n; j++ {
			d += sim.At(i, j)
		}
		if d > 1e-300 {
			dInvSqrt[i] = 1 / math.Sqrt(d)
		}
	}
	lap := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -dInvSqrt[i] * sim.At(i, j) * dInvSqrt[j]
			if i == j {
				v += 1
			}
			lap.Set(i, j, v)
		}
	}
	// Numerical symmetry guard before Jacobi.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			avg := (lap.At(i, j) + lap.At(j, i)) / 2
			lap.Set(i, j, avg)
			lap.Set(j, i, avg)
		}
	}

	_, vecs, err := mat.EigenSym(lap)
	if err != nil {
		return nil, fmt.Errorf("cluster: Spectral: eigendecomposition: %w", err)
	}
	// Embedding: rows are points, columns the k smallest eigenvectors
	// (EigenSym returns ascending eigenvalues).
	embed := mat.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			embed.Set(i, j, vecs.At(i, j))
		}
	}
	// Row-normalize (NJW step); zero rows are left as-is.
	for i := 0; i < n; i++ {
		row := embed.Row(i)
		if norm := row.Norm2(); norm > 1e-300 {
			row.Scale(1 / norm)
		}
	}
	res, err := KMeans(embed, k, g.Split("spectral-kmeans"), KMeansParams{Restarts: 8})
	if err != nil {
		return nil, fmt.Errorf("cluster: Spectral: embedding k-means: %w", err)
	}
	return res.Assignment, nil
}
