// Package cost models the mobile-device resource costs the paper's
// evaluation reports (energy, computation, communication — §VI-E). The real
// study measured Nexus 5 phones against a 3.4 GHz server; this model is the
// documented substitution (DESIGN.md §3): a phone-class CPU slowdown factor
// applied to measured solve times, and a radio energy model applied to the
// transport layer's byte/message accounting.
//
// DeviceProfile.CommEnergyFromCounts is the bridge to the observability
// layer: plos-server registers the device_comm_energy_joules gauge as this
// model applied to the live transport_* counters, reproducing the paper's
// Fig. 12 energy estimate at scrape time.
package cost
