package cost

import (
	"time"

	"plos/internal/transport"
)

// DeviceProfile describes a phone-class device relative to the server.
type DeviceProfile struct {
	// CPUSlowdown scales server-measured compute time to device time
	// (default 20× — a 2014 phone core against a 3.4 GHz desktop core).
	CPUSlowdown float64
	// RadioJPerByte is the marginal radio energy per byte (default
	// 0.25 µJ/B, WiFi-class).
	RadioJPerByte float64
	// RadioJPerMessage is the fixed per-message radio wakeup cost
	// (default 5 mJ).
	RadioJPerMessage float64
	// ComputeWatts is the SoC power draw while solving (default 2 W).
	ComputeWatts float64
}

// DefaultPhone returns the reference profile used by the experiments.
func DefaultPhone() DeviceProfile {
	return DeviceProfile{
		CPUSlowdown:      20,
		RadioJPerByte:    0.25e-6,
		RadioJPerMessage: 5e-3,
		ComputeWatts:     2,
	}
}

func (p DeviceProfile) withDefaults() DeviceProfile {
	def := DefaultPhone()
	if p.CPUSlowdown <= 0 {
		p.CPUSlowdown = def.CPUSlowdown
	}
	if p.RadioJPerByte <= 0 {
		p.RadioJPerByte = def.RadioJPerByte
	}
	if p.RadioJPerMessage <= 0 {
		p.RadioJPerMessage = def.RadioJPerMessage
	}
	if p.ComputeWatts <= 0 {
		p.ComputeWatts = def.ComputeWatts
	}
	return p
}

// DeviceTime converts a server-measured compute duration into the estimated
// on-device duration.
func (p DeviceProfile) DeviceTime(serverTime time.Duration) time.Duration {
	p = p.withDefaults()
	return time.Duration(float64(serverTime) * p.CPUSlowdown)
}

// CommEnergyJ estimates the radio energy (joules) a device spends on the
// given traffic.
func (p DeviceProfile) CommEnergyJ(s transport.Stats) float64 {
	return p.CommEnergyFromCounts(
		int64(s.MessagesSent+s.MessagesReceived),
		s.BytesSent+s.BytesReceived)
}

// CommEnergyFromCounts is CommEnergyJ over raw totals instead of a Stats
// struct — the form the observability layer's scrape-time energy gauge uses,
// fed from the registry's transport counters.
func (p DeviceProfile) CommEnergyFromCounts(msgs, bytes int64) float64 {
	p = p.withDefaults()
	return float64(msgs)*p.RadioJPerMessage + float64(bytes)*p.RadioJPerByte
}

// ComputeEnergyJ estimates the SoC energy (joules) for the given on-device
// compute duration.
func (p DeviceProfile) ComputeEnergyJ(deviceTime time.Duration) float64 {
	p = p.withDefaults()
	return deviceTime.Seconds() * p.ComputeWatts
}

// TotalEnergyJ is the device's end-to-end energy for one training run.
func (p DeviceProfile) TotalEnergyJ(serverComputeTime time.Duration, s transport.Stats) float64 {
	return p.ComputeEnergyJ(p.DeviceTime(serverComputeTime)) + p.CommEnergyJ(s)
}

// CommSavingsJ estimates the radio energy a device saved by sending
// compressed parameter payloads instead of dense ones: the per-byte cost
// of the dense-equivalent bytes that never hit the air. Per-message wakeup
// costs are unaffected — compression shrinks frames, it does not remove
// them. Returns 0 when compression saved nothing (or was off).
func (p DeviceProfile) CommSavingsJ(rawBytes, compBytes int64) float64 {
	p = p.withDefaults()
	if rawBytes <= compBytes {
		return 0
	}
	return float64(rawBytes-compBytes) * p.RadioJPerByte
}

// RawUploadBytes estimates what the centralized alternative would have
// cost the same device in upload volume: samples × dims × 8 bytes. The
// distributed design's headline saving (paper §V) is the ratio of this to
// the actual parameter traffic.
func RawUploadBytes(samples, dims int) int64 {
	return int64(samples) * int64(dims) * 8
}
