package cost

import (
	"math"
	"testing"
	"time"

	"plos/internal/transport"
)

func TestDeviceTime(t *testing.T) {
	p := DeviceProfile{CPUSlowdown: 10}
	if got := p.DeviceTime(time.Second); got != 10*time.Second {
		t.Errorf("DeviceTime = %v", got)
	}
	// Zero profile uses the default 20x.
	var def DeviceProfile
	if got := def.DeviceTime(time.Second); got != 20*time.Second {
		t.Errorf("default DeviceTime = %v", got)
	}
}

func TestCommEnergy(t *testing.T) {
	p := DeviceProfile{RadioJPerByte: 1e-6, RadioJPerMessage: 1e-3}
	s := transport.Stats{MessagesSent: 2, MessagesReceived: 3, BytesSent: 1000, BytesReceived: 500}
	got := p.CommEnergyJ(s)
	want := 5*1e-3 + 1500*1e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CommEnergyJ = %v, want %v", got, want)
	}
}

func TestComputeEnergy(t *testing.T) {
	p := DeviceProfile{ComputeWatts: 3}
	if got := p.ComputeEnergyJ(2 * time.Second); math.Abs(got-6) > 1e-12 {
		t.Errorf("ComputeEnergyJ = %v", got)
	}
}

func TestTotalEnergyCombines(t *testing.T) {
	p := DefaultPhone()
	s := transport.Stats{MessagesSent: 10, BytesSent: 10000}
	total := p.TotalEnergyJ(time.Millisecond, s)
	if total <= p.CommEnergyJ(s) {
		t.Error("total should include compute energy")
	}
	if total <= p.ComputeEnergyJ(p.DeviceTime(time.Millisecond)) {
		t.Error("total should include comm energy")
	}
}

func TestRawUploadBytes(t *testing.T) {
	// 140 samples × 120 dims × 8 bytes = 134400 — what a body-sensor user
	// would upload under the centralized design.
	if got := RawUploadBytes(140, 120); got != 134400 {
		t.Errorf("RawUploadBytes = %d", got)
	}
}

func TestDefaultPhoneComplete(t *testing.T) {
	p := DefaultPhone()
	if p.CPUSlowdown <= 0 || p.RadioJPerByte <= 0 || p.RadioJPerMessage <= 0 || p.ComputeWatts <= 0 {
		t.Errorf("incomplete default profile: %+v", p)
	}
}
