package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries in row-major order: element (i,j) lives at
	// Data[i*Cols+j]. len(Data) == Rows*Cols.
	Data []float64
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: NewMatrix: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: FromRows: ragged row %d: %d vs %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector sharing the matrix's storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MulVec returns m * v as a new vector.
func (m *Matrix) MulVec(v Vector) Vector {
	out := make(Vector, m.Rows)
	m.MulVecTo(out, v)
	return out
}

// MulVecTo computes dst = m * v without allocating. dst must have length
// m.Rows and v length m.Cols; dst must not alias v.
func (m *Matrix) MulVecTo(dst, v Vector) {
	checkLen("MulVecTo dst", len(dst), m.Rows)
	checkLen("MulVecTo v", len(v), m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
}

// MulVecT returns mᵀ * v as a new vector (v has length m.Rows).
func (m *Matrix) MulVecT(v Vector) Vector {
	checkLen("MulVecT", len(v), m.Rows)
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			out[j] += vi * x
		}
	}
	return out
}

// Mul returns m * b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul: inner dimension mismatch %d vs %d", m.Cols, b.Rows))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Scale multiplies every entry by a, in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add sets m = m + b in place.
func (m *Matrix) Add(b *Matrix) {
	m.checkSameShape("Add", b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// Sub sets m = m - b in place.
func (m *Matrix) Sub(b *Matrix) {
	m.checkSameShape("Sub", b)
	for i := range m.Data {
		m.Data[i] -= b.Data[i]
	}
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("mat: Trace: matrix not square")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// FrobeniusNorm returns sqrt(Σ m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// Equal reports whether m and b have identical shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%9.4f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (m *Matrix) checkSameShape(op string, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s: shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// Gram returns XXᵀ for the row matrix X (rows are data points): the
// Rows x Rows matrix of pairwise inner products. Used by the QP dual.
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		out.Data[i*m.Rows+i] = ri.Dot(ri)
		for j := i + 1; j < m.Rows; j++ {
			d := ri.Dot(m.Row(j))
			out.Data[i*m.Rows+j] = d
			out.Data[j*m.Rows+i] = d
		}
	}
	return out
}
