package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L Lᵀ.
type CholeskyFactor struct {
	l *Matrix // lower triangular, n x n
}

// Cholesky computes the Cholesky factorization of the symmetric
// positive-definite matrix a. Only the lower triangle of a is read.
func Cholesky(a *Matrix) (*CholeskyFactor, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky: matrix not square (%dx%d)", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &CholeskyFactor{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *CholeskyFactor) L() *Matrix { return c.l.Clone() }

// Solve solves A x = b given the factorization A = L Lᵀ.
func (c *CholeskyFactor) Solve(b Vector) Vector {
	n := c.l.Rows
	checkLen("CholeskyFactor.Solve", len(b), n)
	// Forward substitution: L y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back substitution: Lᵀ x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// LogDet returns log(det A) = 2 Σ log L_ii.
func (c *CholeskyFactor) LogDet() float64 {
	var s float64
	for i := 0; i < c.l.Rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveSPD solves A x = b for symmetric positive-definite A in one call.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	f, err := Cholesky(a)
	if err != nil {
		return nil, fmt.Errorf("mat: SolveSPD: %w", err)
	}
	return f.Solve(b), nil
}
