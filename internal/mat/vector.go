// Package mat provides the dense linear-algebra substrate used by every
// solver in this repository: vectors, column-major-free dense matrices,
// Cholesky factorization, and a symmetric Jacobi eigensolver.
//
// The package is deliberately small and allocation-conscious: the PLOS
// solvers (internal/core, internal/qp) sit in tight optimization loops and
// reuse buffers, so most operations come in both allocating and in-place
// (dst-receiving) forms. All data is float64. Dimension mismatches are
// programmer errors and panic with a descriptive message, mirroring the
// behaviour of slice indexing; fallible numerical operations (e.g. Cholesky
// on a non-PD matrix) return errors instead.
package mat

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector. The zero value is an empty vector.
// A Vector is just a named slice: standard slice operations (append, len,
// indexing, range) all apply.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) {
	checkLen("CopyFrom", len(v), len(src))
	copy(v, src)
}

// Zero sets every element of v to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product v·w.
func (v Vector) Dot(w Vector) float64 {
	checkLen("Dot", len(v), len(w))
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ||v||.
func (v Vector) Norm2() float64 {
	// Two-pass scaling is unnecessary at the magnitudes this repo works
	// with; plain accumulation keeps the hot loops branch-free.
	return math.Sqrt(v.Dot(v))
}

// SquaredNorm returns ||v||^2.
func (v Vector) SquaredNorm() float64 { return v.Dot(v) }

// Norm1 returns the l1 norm Σ|v_i|.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns max_i |v_i|; 0 for an empty vector.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Scale multiplies v by a in place.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Add sets v = v + w in place.
func (v Vector) Add(w Vector) {
	checkLen("Add", len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// Sub sets v = v - w in place.
func (v Vector) Sub(w Vector) {
	checkLen("Sub", len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
}

// AddScaled sets v = v + a*w in place (axpy).
func (v Vector) AddScaled(a float64, w Vector) {
	checkLen("AddScaled", len(v), len(w))
	for i := range v {
		v[i] += a * w[i]
	}
}

// Sum returns Σ v_i.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index; (-Inf, -1) for empty v.
func (v Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Min returns the minimum element and its index; (+Inf, -1) for empty v.
func (v Vector) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, x := range v {
		if x < best {
			best, idx = x, i
		}
	}
	return best, idx
}

// Equal reports whether v and w have the same length and every pair of
// elements differs by at most tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Axpy returns a new vector a*x + y.
func Axpy(a float64, x, y Vector) Vector {
	checkLen("Axpy", len(x), len(y))
	out := make(Vector, len(x))
	for i := range x {
		out[i] = a*x[i] + y[i]
	}
	return out
}

// SubVec returns a new vector x - y.
func SubVec(x, y Vector) Vector {
	checkLen("SubVec", len(x), len(y))
	out := make(Vector, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AddVec returns a new vector x + y.
func AddVec(x, y Vector) Vector {
	checkLen("AddVec", len(x), len(y))
	out := make(Vector, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// ScaleVec returns a new vector a*x.
func ScaleVec(a float64, x Vector) Vector {
	out := make(Vector, len(x))
	for i := range x {
		out[i] = a * x[i]
	}
	return out
}

// Dist2 returns the Euclidean distance ||x-y||.
func Dist2(x, y Vector) float64 {
	checkLen("Dist2", len(x), len(y))
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredDist returns ||x-y||^2.
func SquaredDist(x, y Vector) float64 {
	checkLen("SquaredDist", len(x), len(y))
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("mat: %s: dimension mismatch %d vs %d", op, a, b))
	}
}
