package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorBasicOps(t *testing.T) {
	tests := []struct {
		name string
		op   func() float64
		want float64
	}{
		{"Dot", func() float64 { return Vector{1, 2, 3}.Dot(Vector{4, 5, 6}) }, 32},
		{"Norm2", func() float64 { return Vector{3, 4}.Norm2() }, 5},
		{"SquaredNorm", func() float64 { return Vector{3, 4}.SquaredNorm() }, 25},
		{"Norm1", func() float64 { return Vector{-1, 2, -3}.Norm1() }, 6},
		{"NormInf", func() float64 { return Vector{-7, 2, 3}.NormInf() }, 7},
		{"Sum", func() float64 { return Vector{1, 2, 3, 4}.Sum() }, 10},
		{"Mean", func() float64 { return Vector{1, 2, 3, 4}.Mean() }, 2.5},
		{"MeanEmpty", func() float64 { return Vector{}.Mean() }, 0},
		{"Dist2", func() float64 { return Dist2(Vector{0, 0}, Vector{3, 4}) }, 5},
		{"SquaredDist", func() float64 { return SquaredDist(Vector{1, 1}, Vector{4, 5}) }, 25},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.op(); !almostEq(got, tc.want, 1e-12) {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestVectorInPlaceOps(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Add(Vector{1, 1, 1})
	if !v.Equal(Vector{2, 3, 4}, 0) {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(Vector{2, 2, 2})
	if !v.Equal(Vector{0, 1, 2}, 0) {
		t.Fatalf("Sub: got %v", v)
	}
	v.AddScaled(2, Vector{1, 1, 1})
	if !v.Equal(Vector{2, 3, 4}, 0) {
		t.Fatalf("AddScaled: got %v", v)
	}
	v.Scale(0.5)
	if !v.Equal(Vector{1, 1.5, 2}, 0) {
		t.Fatalf("Scale: got %v", v)
	}
	v.Fill(7)
	if !v.Equal(Vector{7, 7, 7}, 0) {
		t.Fatalf("Fill: got %v", v)
	}
	v.Zero()
	if !v.Equal(Vector{0, 0, 0}, 0) {
		t.Fatalf("Zero: got %v", v)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestVectorMaxMin(t *testing.T) {
	v := Vector{3, -1, 7, 2}
	if got, idx := v.Max(); got != 7 || idx != 2 {
		t.Errorf("Max = (%v,%d), want (7,2)", got, idx)
	}
	if got, idx := v.Min(); got != -1 || idx != 1 {
		t.Errorf("Min = (%v,%d), want (-1,1)", got, idx)
	}
	if _, idx := (Vector{}).Max(); idx != -1 {
		t.Error("Max of empty should have index -1")
	}
	if _, idx := (Vector{}).Min(); idx != -1 {
		t.Error("Min of empty should have index -1")
	}
}

func TestVectorDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	_ = Vector{1, 2}.Dot(Vector{1})
}

func TestAllocatingHelpers(t *testing.T) {
	x, y := Vector{1, 2}, Vector{3, 4}
	if got := Axpy(2, x, y); !got.Equal(Vector{5, 8}, 0) {
		t.Errorf("Axpy = %v", got)
	}
	if got := SubVec(y, x); !got.Equal(Vector{2, 2}, 0) {
		t.Errorf("SubVec = %v", got)
	}
	if got := AddVec(y, x); !got.Equal(Vector{4, 6}, 0) {
		t.Errorf("AddVec = %v", got)
	}
	if got := ScaleVec(3, x); !got.Equal(Vector{3, 6}, 0) {
		t.Errorf("ScaleVec = %v", got)
	}
	// Inputs must be untouched.
	if !x.Equal(Vector{1, 2}, 0) || !y.Equal(Vector{3, 4}, 0) {
		t.Error("allocating helpers mutated their inputs")
	}
}

func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64() * 10
	}
	return v
}

// Property: Cauchy-Schwarz |x·y| <= ||x|| ||y||.
func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		r := rand.New(rand.NewSource(seed))
		x, y := randVec(r, n), randVec(r, n)
		return math.Abs(x.Dot(y)) <= x.Norm2()*y.Norm2()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist2.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		r := rand.New(rand.NewSource(seed))
		x, y, z := randVec(r, n), randVec(r, n), randVec(r, n)
		return Dist2(x, z) <= Dist2(x, y)+Dist2(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AddScaled agrees with the allocating Axpy.
func TestPropertyAxpyConsistency(t *testing.T) {
	f := func(seed int64, nRaw uint8, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 100)
		n := int(nRaw%32) + 1
		r := rand.New(rand.NewSource(seed))
		x, y := randVec(r, n), randVec(r, n)
		want := Axpy(a, x, y)
		got := y.Clone()
		got.AddScaled(a, x)
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
