package mat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64() * 5
	}
	return m
}

func TestMatrixAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set failed")
	}
	if got := m.Row(1); !got.Equal(Vector{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); !got.Equal(Vector{3, 6}, 0) {
		t.Errorf("Col(2) = %v", got)
	}
}

func TestRowSharesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(0)[1] = 42
	if m.At(0, 1) != 42 {
		t.Error("Row should share storage")
	}
}

func TestIdentityAndTrace(t *testing.T) {
	id := Identity(4)
	if got := id.Trace(); got != 4 {
		t.Errorf("Trace(I4) = %v", got)
	}
	v := Vector{1, 2, 3, 4}
	if got := id.MulVec(v); !got.Equal(v, 0) {
		t.Errorf("I*v = %v", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 1e-12) {
		t.Errorf("a*b =\n%v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecT(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := Vector{1, 2}
	want := a.T().MulVec(v)
	if got := a.MulVecT(v); !got.Equal(want, 1e-12) {
		t.Errorf("MulVecT = %v, want %v", got, want)
	}
}

func TestGram(t *testing.T) {
	x := FromRows([][]float64{{1, 0}, {0, 2}, {1, 1}})
	g := x.Gram()
	want := FromRows([][]float64{{1, 0, 1}, {0, 4, 2}, {1, 2, 2}})
	if !g.Equal(want, 1e-12) {
		t.Errorf("Gram =\n%v", g)
	}
	if !g.IsSymmetric(0) {
		t.Error("Gram should be symmetric")
	}
}

func TestAddSubScaleFrobenius(t *testing.T) {
	a := FromRows([][]float64{{3, 4}, {0, 0}})
	if got := a.FrobeniusNorm(); !almostEq(got, 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v", got)
	}
	b := a.Clone()
	a.Add(b)
	if a.At(0, 0) != 6 {
		t.Error("Add failed")
	}
	a.Sub(b)
	if !a.Equal(b, 0) {
		t.Error("Sub failed")
	}
	a.Scale(2)
	if a.At(0, 1) != 8 {
		t.Error("Scale failed")
	}
}

func TestMatrixString(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if !strings.Contains(s, "1.0000") || !strings.Contains(s, "2.0000") {
		t.Errorf("String() = %q", s)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched inner dims should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestPropertyTransposeOfProduct(t *testing.T) {
	f := func(seed int64, d1, d2, d3 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := int(d1%6)+1, int(d2%6)+1, int(d3%6)+1
		a, b := randMatrix(r, m, k), randMatrix(r, k, n)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec distributes over vector addition.
func TestPropertyMulVecLinear(t *testing.T) {
	f := func(seed int64, d1, d2 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := int(d1%8)+1, int(d2%8)+1
		a := randMatrix(r, m, n)
		x, y := randVec(r, n), randVec(r, n)
		left := a.MulVec(AddVec(x, y))
		right := AddVec(a.MulVec(x), a.MulVec(y))
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Gram matrices are positive semi-definite (xᵀGx >= 0).
func TestPropertyGramPSD(t *testing.T) {
	f := func(seed int64, d1, d2 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := int(d1%6)+1, int(d2%6)+1
		g := randMatrix(r, m, n).Gram()
		x := randVec(r, m)
		return x.Dot(g.MulVec(x)) >= -1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = LLᵀ with known solution.
	a := FromRows([][]float64{{4, 2, 0}, {2, 5, 2}, {0, 2, 5}})
	f, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	want := Vector{1, -2, 3}
	b := a.MulVec(want)
	got := f.Solve(b)
	if !got.Equal(want, 1e-9) {
		t.Errorf("Solve = %v, want %v", got, want)
	}
	l := f.L()
	if !l.Mul(l.T()).Equal(a, 1e-9) {
		t.Error("LLᵀ != A")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	x, err := SolveSPD(a, Vector{3, 3})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if !x.Equal(Vector{1, 1}, 1e-10) {
		t.Errorf("x = %v", x)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 8}})
	f, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.LogDet(); !almostEq(got, math.Log(16), 1e-10) {
		t.Errorf("LogDet = %v, want %v", got, math.Log(16))
	}
}

// Property: Cholesky solve reproduces the RHS (A x = b round trip) on
// random SPD matrices built as MMᵀ + I.
func TestPropertyCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(dRaw%8) + 1
		m := randMatrix(r, n, n)
		a := m.Gram()
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		fac, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := randVec(r, n)
		b := a.MulVec(x)
		return fac.Solve(b).Equal(x, 1e-6*(1+x.NormInf()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatalf("EigenSym: %v", err)
	}
	if !vals.Equal(Vector{1, 3}, 1e-10) {
		t.Errorf("vals = %v", vals)
	}
	// Check A v = λ v for each column.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av := a.MulVec(v)
		if !av.Equal(ScaleVec(vals[k], v), 1e-9) {
			t.Errorf("A v != λ v for k=%d", k)
		}
	}
}

func TestEigenSymErrors(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
	asym := FromRows([][]float64{{1, 5}, {0, 1}})
	if _, _, err := EigenSym(asym); err == nil {
		t.Error("expected error for asymmetric input")
	}
}

// Property: eigendecomposition reconstructs the matrix and eigenvectors are
// orthonormal, for random symmetric matrices.
func TestPropertyEigenReconstruction(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(dRaw%7) + 1
		m := randMatrix(r, n, n)
		a := m.Clone()
		a.Add(m.T()) // symmetric
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		// VᵀV = I.
		vtv := vecs.T().Mul(vecs)
		if !vtv.Equal(Identity(n), 1e-7) {
			return false
		}
		// V diag(vals) Vᵀ = A.
		vd := vecs.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				vd.Set(i, j, vd.At(i, j)*vals[j])
			}
		}
		recon := vd.Mul(vecs.T())
		return recon.Equal(a, 1e-6*(1+a.FrobeniusNorm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Gershgorin bound dominates the true largest eigenvalue.
func TestPropertyGershgorinBound(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(dRaw%7) + 1
		m := randMatrix(r, n, n)
		a := m.Clone()
		a.Add(m.T())
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		return MaxEigenvalueUpperBound(a) >= vals[n-1]-1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
