package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It returns the eigenvalues in ascending order
// and a matrix whose COLUMNS are the corresponding orthonormal eigenvectors.
//
// Jacobi is O(n^3) per sweep with typically <= ~12 sweeps; the matrices this
// repository diagonalizes (spectral-clustering Laplacians over tens of
// users, covariance matrices over feature dimensions) are small enough that
// robustness beats speed.
func EigenSym(a *Matrix) (Vector, *Matrix, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("mat: EigenSym: matrix not square (%dx%d)", a.Rows, a.Cols)
	}
	const symTol = 1e-8
	if !a.IsSymmetric(symTol * (1 + a.FrobeniusNorm())) {
		return nil, nil, fmt.Errorf("mat: EigenSym: matrix not symmetric within tolerance")
	}
	n := a.Rows
	w := a.Clone() // working copy, driven to diagonal form
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle from the standard stable formulas.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	// Extract eigenvalues and sort ascending, permuting eigenvectors along.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val < pairs[j].val })

	vals := make(Vector, n)
	vecs := NewMatrix(n, n)
	for k, p := range pairs {
		vals[k] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, p.idx))
		}
	}
	return vals, vecs, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) to w (two-sided) and
// accumulates it into v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// MaxEigenvalueUpperBound returns a cheap upper bound on the largest
// eigenvalue of a symmetric matrix via the Gershgorin circle theorem.
// The QP solver uses it as a Lipschitz constant for its gradient steps.
func MaxEigenvalueUpperBound(a *Matrix) float64 {
	if a.Rows != a.Cols {
		panic("mat: MaxEigenvalueUpperBound: matrix not square")
	}
	bound := math.Inf(-1)
	for i := 0; i < a.Rows; i++ {
		var radius float64
		for j := 0; j < a.Cols; j++ {
			if i != j {
				radius += math.Abs(a.At(i, j))
			}
		}
		if c := a.At(i, i) + radius; c > bound {
			bound = c
		}
	}
	if a.Rows == 0 {
		return 0
	}
	return bound
}
