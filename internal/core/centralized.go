package core

import (
	"errors"
	"fmt"
	"time"

	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/parallel"
	"plos/internal/qp"
)

// TrainCentralized runs the paper's Algorithm 1: the server holds every
// user's raw data and solves problem (4) by CCCP linearization, cutting-
// plane constraint generation, and the structured QP dual (16).
//
// Internals never materialize the stacked feature map Φ of Eq. (7): a
// constraint aggregate z_kt decomposes as a per-user vector A_kt placed in
// slot t plus a λ-scaled copy in slot 0, so all Φ-space inner products are
// ⟨z_kt, z_k't'⟩ = (λ/T + δ_tt')⟨A_kt, A_k't'⟩ and the stacked solution
// collapses to w0 = (λ/T)Σγ·A and v_t = Σ_{k∈Ω_t}γ·A.
func TrainCentralized(users []UserData, cfg Config) (*Model, TrainInfo, error) {
	dim, err := validateUsers(users)
	if err != nil {
		return nil, TrainInfo{}, err
	}
	cfg = cfg.withDefaults()
	tCount := len(users)
	state := &centralState{
		users:   users,
		cfg:     cfg,
		dim:     dim,
		t:       tCount,
		budget:  float64(tCount) / (2 * cfg.Lambda),
		scaleW0: cfg.Lambda / float64(tCount),
		sets:    make([]optimize.WorkingSet, tCount),
		signs:   make([][]float64, tCount),
		weights: make([][]float64, tCount),
	}
	w0 := initialW0(users, dim, cfg)
	state.w0 = w0
	state.w = make([]mat.Vector, tCount)
	for t := range state.w {
		state.w[t] = w0.Clone()
	}
	for t, u := range users {
		m := u.NumSamples()
		weights := make([]float64, m)
		for i := 0; i < m; i++ {
			if i < u.NumLabeled() {
				weights[i] = cfg.Cl / float64(m)
			} else {
				weights[i] = cfg.Cu / float64(m)
			}
		}
		state.weights[t] = weights
	}

	cfg.Obs.Counter(obs.MetricTrainRuns, "").Inc()
	info := TrainInfo{}
	cccpInfo, err := optimize.CCCP(func(round int) (float64, error) {
		var start time.Time
		if cfg.Obs != nil {
			start = time.Now()
		}
		state.refreshSigns()
		if !cfg.WarmWorkingSets {
			for t := range state.sets {
				state.sets[t].Reset()
			}
			state.gamma = nil
		}
		obj, rounds, qpIters, err := state.solveConvexified()
		info.CutRounds += rounds
		info.QPIterations += qpIters
		if err != nil {
			return 0, err
		}
		if r := cfg.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
		}
		return obj, nil
	}, cfg.CCCPTol, cfg.MaxCCCPIter)
	// A non-monotone CCCP step with an inexact inner QP is a soft failure:
	// surface everything else.
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		return nil, info, fmt.Errorf("core: TrainCentralized: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	for t := range state.sets {
		info.Constraints += state.sets[t].Len()
	}
	if r := cfg.Obs; r != nil {
		converged := 0.0
		if info.CCCPConverged {
			converged = 1
		}
		r.Gauge(obs.MetricCCCPConverged, "").Set(converged)
		r.Gauge(obs.MetricConstraintsActive, "").Set(float64(info.Constraints))
	}
	model := &Model{W0: state.w0, W: state.w}
	return model, info, nil
}

// centralState carries the mutable solver state across CCCP rounds.
type centralState struct {
	users   []UserData
	cfg     Config
	dim     int
	t       int
	budget  float64 // per-user dual budget T/(2λ)
	scaleW0 float64 // λ/T

	sets    []optimize.WorkingSet
	signs   [][]float64 // CCCP-frozen effective labels per user (length m_t)
	weights [][]float64 // per-sample loss weights (Cl/m or Cu/m)

	w0 mat.Vector
	w  []mat.Vector // personalized hyperplanes w_t
	// gamma holds the dual variables aligned per user with the working
	// sets (sets only append, so warm starts survive constraint growth).
	gamma [][]float64
}

// refreshSigns fixes the effective labels for this CCCP round: true labels
// for labeled samples, sign(w_t·x) at the current iterate for unlabeled
// ones (the first-order Taylor linearization of Eq. 10). Users are
// independent given the current iterates, so the refresh fans out across
// the worker pool; each goroutine writes only its own signs slot.
func (s *centralState) refreshSigns() {
	parallel.Do(s.cfg.Workers, len(s.users), func(t int) {
		u := s.users[t]
		m := u.NumSamples()
		eff := make([]float64, m)
		copy(eff, u.Y)
		lt := u.NumLabeled()
		for i := lt; i < m; i++ {
			if s.w[t].Dot(u.X.Row(i)) >= 0 {
				eff[i] = 1
			} else {
				eff[i] = -1
			}
		}
		if s.cfg.BalanceGuard && lt == 0 && m > 1 {
			balanceSigns(u.X, eff, s.w[t])
		}
		s.signs[t] = eff
	})
}

// balanceSigns prevents the all-one-side degenerate assignment for a
// zero-label user: if every sign agrees, the half of the samples with the
// smallest |margin| is flipped to the other side.
func balanceSigns(x *mat.Matrix, eff []float64, w mat.Vector) {
	first := eff[0]
	for _, e := range eff[1:] {
		if e != first {
			return
		}
	}
	// All identical: flip the floor(m/2) lowest-|margin| samples.
	m := x.Rows
	type scored struct {
		idx int
		abs float64
	}
	order := make([]scored, m)
	for i := 0; i < m; i++ {
		v := w.Dot(x.Row(i))
		if v < 0 {
			v = -v
		}
		order[i] = scored{i, v}
	}
	// Selection of the m/2 smallest by simple partial sort (m is small).
	for i := 0; i < m/2; i++ {
		min := i
		for j := i + 1; j < m; j++ {
			if order[j].abs < order[min].abs {
				min = j
			}
		}
		order[i], order[min] = order[min], order[i]
		eff[order[i].idx] = -first
	}
}

// solveConvexified runs the cutting-plane loop for the current
// linearization and returns the primal objective of problem (12),
// the number of cutting-plane rounds, and cumulative QP iterations.
func (s *centralState) solveConvexified() (float64, int, int, error) {
	cfg := s.cfg
	qpIters := 0
	rounds := 0
	for round := 0; round < cfg.MaxCutIter; round++ {
		rounds = round + 1
		var roundStart time.Time
		if cfg.Obs != nil {
			roundStart = time.Now()
		}
		// Solve the restricted dual over the current working sets. With
		// empty sets the restricted optimum is w' = 0 (every margin is
		// then violated, seeding the first constraints); the CCCP signs
		// were already frozen from the pre-zeroing iterate.
		if s.totalConstraints() > 0 {
			iters, err := s.solveRestrictedQP()
			qpIters += iters
			if err != nil {
				return 0, rounds, qpIters, err
			}
		} else {
			s.w0 = mat.NewVector(s.dim)
			for t := range s.w {
				s.w[t] = mat.NewVector(s.dim)
			}
		}
		// Per-user subproblem: each user's most-violated constraint (Eq. 14)
		// depends only on that user's iterate, signs, and working set, so
		// the search fans out across the pool. Candidates are gathered into
		// index-addressed slots and folded into the working sets in user
		// order afterwards, keeping insertion order (and therefore the QP
		// and every downstream float) identical for any worker count.
		type candidate struct {
			c  optimize.Constraint
			ok bool
		}
		cands := make([]candidate, len(s.users))
		err := parallel.For(cfg.Workers, len(s.users), func(t int) error {
			u := s.users[t]
			c, err := optimize.MostViolated(u.X, s.signs[t], s.weights[t], s.w[t])
			if err != nil {
				return fmt.Errorf("core: user %d: %w", t, err)
			}
			xi := optimize.Slack(&s.sets[t], s.w[t])
			if optimize.Violation(c, s.w[t], xi) > cfg.Epsilon {
				cands[t] = candidate{c: c, ok: true}
			}
			return nil
		})
		if err != nil {
			return 0, rounds, qpIters, err
		}
		added := 0
		for t := range cands {
			if cands[t].ok && s.sets[t].Add(cands[t].c) {
				added++
			}
		}
		if r := cfg.Obs; r != nil {
			r.Counter(obs.MetricCutRounds, "").Inc()
			r.Counter(obs.MetricConstraintsAdded, "").Add(int64(added))
			r.Span(obs.Span{Kind: obs.SpanCutRound, Start: roundStart,
				Dur: time.Since(roundStart), Round: round, User: -1,
				Value: float64(added)})
		}
		if added == 0 {
			break
		}
	}
	return s.objective(), rounds, qpIters, nil
}

func (s *centralState) totalConstraints() int {
	n := 0
	for t := range s.sets {
		n += s.sets[t].Len()
	}
	return n
}

// solveRestrictedQP solves the dual (16) restricted to the working sets and
// refreshes w0, w_t from the dual solution.
func (s *centralState) solveRestrictedQP() (int, error) {
	// Flatten constraints: order = user-major, insertion order inside.
	type ref struct {
		user int
		a    mat.Vector
		c    float64
	}
	var flat []ref
	groups := make([][]int, s.t)
	for t := range s.sets {
		for _, c := range s.sets[t].Constraints() {
			groups[t] = append(groups[t], len(flat))
			flat = append(flat, ref{user: t, a: c.A, c: c.C})
		}
	}
	n := len(flat)
	g := mat.NewMatrix(n, n)
	cvec := make(mat.Vector, n)
	lot := s.scaleW0 // λ/T
	// Row-parallel Gram build: row i owns cells (i, j>=i) and their
	// mirrors, so goroutines write disjoint cells and the matrix is
	// bit-identical for any worker count.
	parallel.Do(s.cfg.Workers, n, func(i int) {
		cvec[i] = flat[i].c
		for j := i; j < n; j++ {
			dot := flat[i].a.Dot(flat[j].a)
			v := lot * dot
			if flat[i].user == flat[j].user {
				v += dot
			}
			g.Data[i*n+j] = v
			g.Data[j*n+i] = v
		}
	})
	budgets := make([]float64, s.t)
	for t := range budgets {
		budgets[t] = s.budget
	}
	prob := &qp.Problem{G: g, C: cvec, Groups: qp.GroupSpec{Groups: groups, Budgets: budgets}}
	// Warm start: previous per-user duals padded with zeros for the
	// constraints added since the last solve.
	warm := make(mat.Vector, n)
	if s.gamma != nil {
		for t, idx := range groups {
			for k, flatIdx := range idx {
				if t < len(s.gamma) && k < len(s.gamma[t]) {
					warm[flatIdx] = s.gamma[t][k]
				}
			}
		}
	}
	gamma, qinfo, err := qp.Solve(prob, qp.Options{MaxIter: s.cfg.QPMaxIter, Tol: 1e-9, X0: warm, Obs: s.cfg.Obs})
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return qinfo.Iterations, fmt.Errorf("core: restricted QP: %w", err)
	}
	s.gamma = make([][]float64, s.t)
	for t, idx := range groups {
		s.gamma[t] = make([]float64, len(idx))
		for k, flatIdx := range idx {
			s.gamma[t][k] = gamma[flatIdx]
		}
	}

	// Recover hyperplanes: w0 = (λ/T) Σ γ_i A_i ; v_t = Σ_{i∈t} γ_i A_i.
	w0 := mat.NewVector(s.dim)
	vts := make([]mat.Vector, s.t)
	for t := range vts {
		vts[t] = mat.NewVector(s.dim)
	}
	for i, f := range flat {
		if gamma[i] == 0 {
			continue
		}
		w0.AddScaled(lot*gamma[i], f.a)
		vts[f.user].AddScaled(gamma[i], f.a)
	}
	s.w0 = w0
	for t := range vts {
		vts[t].Add(w0)
		s.w[t] = vts[t]
	}
	return qinfo.Iterations, nil
}

// objective evaluates the primal objective of problem (12):
// ½||w'||² + (T/2λ)Σξ_t with ||w'||² = (T/λ)||w0||² + Σ||w_t−w0||².
func (s *centralState) objective() float64 {
	wNorm := s.w0.SquaredNorm() / s.scaleW0
	for t := range s.w {
		diff := mat.SubVec(s.w[t], s.w0)
		wNorm += diff.SquaredNorm()
	}
	obj := 0.5 * wNorm
	slackScale := float64(s.t) / (2 * s.cfg.Lambda)
	for t := range s.sets {
		obj += slackScale * optimize.Slack(&s.sets[t], s.w[t])
	}
	return obj
}
