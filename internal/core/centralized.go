package core

import (
	"errors"
	"fmt"
	"time"

	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/parallel"
	"plos/internal/qp"
)

// TrainCentralized runs the paper's Algorithm 1: the server holds every
// user's raw data and solves problem (4) by CCCP linearization, cutting-
// plane constraint generation, and the structured QP dual (16).
//
// Internals never materialize the stacked feature map Φ of Eq. (7): a
// constraint aggregate z_kt decomposes as a per-user vector A_kt placed in
// slot t plus a λ-scaled copy in slot 0, so all Φ-space inner products are
// ⟨z_kt, z_k't'⟩ = (λ/T + δ_tt')⟨A_kt, A_k't'⟩ and the stacked solution
// collapses to w0 = (λ/T)Σγ·A and v_t = Σ_{k∈Ω_t}γ·A.
func TrainCentralized(users []UserData, cfg Config) (*Model, TrainInfo, error) {
	dim, err := validateUsers(users)
	if err != nil {
		return nil, TrainInfo{}, err
	}
	cfg = cfg.withDefaults()
	tCount := len(users)
	state := &centralState{
		users:   users,
		cfg:     cfg,
		dim:     dim,
		t:       tCount,
		budget:  float64(tCount) / (2 * cfg.Lambda),
		scaleW0: cfg.Lambda / float64(tCount),
		sets:    make([]optimize.WorkingSet, tCount),
		signs:   make([][]float64, tCount),
		weights: make([][]float64, tCount),
		flatLen: make([]int, tCount),
		gens:    make([]uint64, tCount),
		groups:  make([][]int, tCount),
		budgets: make([]float64, tCount),
	}
	for t := range state.budgets {
		state.budgets[t] = state.budget
	}
	w0 := initialW0(users, dim, cfg)
	state.w0 = w0
	state.w = make([]mat.Vector, tCount)
	for t := range state.w {
		state.w[t] = w0.Clone()
	}
	for t, u := range users {
		m := u.NumSamples()
		weights := make([]float64, m)
		for i := 0; i < m; i++ {
			if i < u.NumLabeled() {
				weights[i] = cfg.Cl / float64(m)
			} else {
				weights[i] = cfg.Cu / float64(m)
			}
		}
		state.weights[t] = weights
	}

	cfg.Obs.Counter(obs.MetricTrainRuns, "").Inc()
	if cfg.Obs.FlightEnabled() {
		cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "centralized", Users: tCount})
	}
	info := TrainInfo{}
	cccpInfo, err := optimize.CCCP(func(round int) (float64, error) {
		var start time.Time
		if cfg.Obs != nil {
			start = time.Now()
		}
		if cfg.Obs.FlightEnabled() {
			cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
		}
		flips := state.refreshSigns()
		if !cfg.WarmWorkingSets {
			for t := range state.sets {
				state.sets[t].Reset()
			}
			state.invalidateGramCache()
		}
		obj, rounds, qpIters, err := state.solveConvexified()
		info.CutRounds += rounds
		info.QPIterations += qpIters
		if err != nil {
			return 0, err
		}
		if r := cfg.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
			if r.FlightEnabled() {
				r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: round,
					Objective: obj, SignFlips: flips, Dur: time.Since(start)})
			}
		}
		return obj, nil
	}, cfg.CCCPTol, cfg.MaxCCCPIter)
	// A non-monotone CCCP step with an inexact inner QP is a soft failure:
	// surface everything else.
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		return nil, info, fmt.Errorf("core: TrainCentralized: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	if cfg.Obs.FlightEnabled() {
		cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: cccpInfo.Converged,
			Objective: cccpInfo.Objective, Round: cccpInfo.Iterations})
	}
	for t := range state.sets {
		info.Constraints += state.sets[t].Len()
	}
	if r := cfg.Obs; r != nil {
		converged := 0.0
		if info.CCCPConverged {
			converged = 1
		}
		r.Gauge(obs.MetricCCCPConverged, "").Set(converged)
		r.Gauge(obs.MetricConstraintsActive, "").Set(float64(info.Constraints))
	}
	model := &Model{W0: state.w0, W: state.w}
	return model, info, nil
}

// centralState carries the mutable solver state across CCCP rounds.
type centralState struct {
	users   []UserData
	cfg     Config
	dim     int
	t       int
	budget  float64 // per-user dual budget T/(2λ)
	scaleW0 float64 // λ/T

	sets    []optimize.WorkingSet
	signs   [][]float64 // CCCP-frozen effective labels per user (length m_t)
	weights [][]float64 // per-sample loss weights (Cl/m or Cu/m)

	w0 mat.Vector
	w  []mat.Vector // personalized hyperplanes w_t

	// Incremental restricted-QP cache (DESIGN.md §11). The canonical
	// constraint order is *arrival order* — each cut round appends its new
	// constraints in user order — so the flattened refs, the per-user
	// group index lists, the linear term, the Gram matrix and its
	// Gershgorin bound all grow by appending; a solve's setup cost is
	// proportional to the constraints added since the last solve, not to
	// everything seen so far. gamma holds the previous solve's duals in
	// the same flat order (sets only append inside a generation, so the
	// prefix stays a valid warm start). Reset working sets (cold CCCP
	// rounds, or any out-of-band shrink) invalidate the whole cache.
	flat    []gramRef
	flatLen []int    // constraints of user t already flattened
	gens    []uint64 // working-set generation the cache was built against
	groups  [][]int
	cvec    mat.Vector
	budgets []float64
	gram    qp.GramCache
	gamma   mat.Vector
	scratch qp.Scratch
}

// gramRef is one flattened constraint: user t's aggregate (A, C) of paper
// Eq. (17)–(18) at its arrival position.
type gramRef struct {
	user int
	a    mat.Vector
	c    float64
}

// invalidateGramCache drops every cached artifact of the restricted dual;
// the next solve rebuilds from the working sets alone.
func (s *centralState) invalidateGramCache() {
	s.flat = s.flat[:0]
	for t := range s.flatLen {
		s.flatLen[t] = 0
		s.groups[t] = s.groups[t][:0]
		s.gens[t] = s.sets[t].Generation()
	}
	s.cvec = s.cvec[:0]
	s.gram.Reset()
	s.gamma = nil
}

// syncGramCache reconciles the cache with the working sets: a shrunken or
// regenerated set invalidates everything (counting a warm-start truncation
// when live duals had to be dropped — the pre-cache solver silently
// mis-mapped them instead); then the constraints added since the last solve
// are appended in user order, which matches the order solveConvexified
// inserted them this round.
func (s *centralState) syncGramCache() {
	for t := range s.sets {
		if s.sets[t].Generation() != s.gens[t] || s.sets[t].Len() < s.flatLen[t] {
			if s.gamma != nil {
				s.cfg.Obs.Counter(obs.MetricWarmStartTruncations, "").Inc()
			}
			s.invalidateGramCache()
			break
		}
	}
	for t := range s.sets {
		cons := s.sets[t].Constraints()
		for k := s.flatLen[t]; k < len(cons); k++ {
			s.groups[t] = append(s.groups[t], len(s.flat))
			s.flat = append(s.flat, gramRef{user: t, a: cons[k].A, c: cons[k].C})
			s.cvec = append(s.cvec, cons[k].C)
		}
		s.flatLen[t] = len(cons)
	}
}

// refreshSigns fixes the effective labels for this CCCP round: true labels
// for labeled samples, sign(w_t·x) at the current iterate for unlabeled
// ones (the first-order Taylor linearization of Eq. 10). Users are
// independent given the current iterates, so the refresh fans out across
// the worker pool; each goroutine writes only its own signs slot (and its
// own flip-count slot, summed deterministically afterwards). Returns the
// number of effective labels that flipped since the previous round (0 on
// the first).
func (s *centralState) refreshSigns() int {
	flips := make([]int, len(s.users))
	parallel.Do(s.cfg.Workers, len(s.users), func(t int) {
		u := s.users[t]
		m := u.NumSamples()
		eff := make([]float64, m)
		copy(eff, u.Y)
		lt := u.NumLabeled()
		for i := lt; i < m; i++ {
			if s.w[t].Dot(u.X.Row(i)) >= 0 {
				eff[i] = 1
			} else {
				eff[i] = -1
			}
		}
		if s.cfg.BalanceGuard && lt == 0 && m > 1 {
			balanceSigns(u.X, eff, s.w[t])
		}
		if prev := s.signs[t]; prev != nil {
			for i, e := range eff {
				if e != prev[i] {
					flips[t]++
				}
			}
		}
		s.signs[t] = eff
	})
	total := 0
	for _, f := range flips {
		total += f
	}
	return total
}

// balanceSigns prevents the all-one-side degenerate assignment for a
// zero-label user: if every sign agrees, the half of the samples with the
// smallest |margin| is flipped to the other side.
func balanceSigns(x *mat.Matrix, eff []float64, w mat.Vector) {
	first := eff[0]
	for _, e := range eff[1:] {
		if e != first {
			return
		}
	}
	// All identical: flip the floor(m/2) lowest-|margin| samples.
	m := x.Rows
	type scored struct {
		idx int
		abs float64
	}
	order := make([]scored, m)
	for i := 0; i < m; i++ {
		v := w.Dot(x.Row(i))
		if v < 0 {
			v = -v
		}
		order[i] = scored{i, v}
	}
	// Selection of the m/2 smallest by simple partial sort (m is small).
	for i := 0; i < m/2; i++ {
		min := i
		for j := i + 1; j < m; j++ {
			if order[j].abs < order[min].abs {
				min = j
			}
		}
		order[i], order[min] = order[min], order[i]
		eff[order[i].idx] = -first
	}
}

// solveConvexified runs the cutting-plane loop for the current
// linearization and returns the primal objective of problem (12),
// the number of cutting-plane rounds, and cumulative QP iterations.
func (s *centralState) solveConvexified() (float64, int, int, error) {
	cfg := s.cfg
	qpIters := 0
	rounds := 0
	for round := 0; round < cfg.MaxCutIter; round++ {
		rounds = round + 1
		var roundStart time.Time
		if cfg.Obs != nil {
			roundStart = time.Now()
		}
		// Solve the restricted dual over the current working sets. With
		// empty sets the restricted optimum is w' = 0 (every margin is
		// then violated, seeding the first constraints); the CCCP signs
		// were already frozen from the pre-zeroing iterate.
		if s.totalConstraints() > 0 {
			iters, err := s.solveRestrictedQP()
			qpIters += iters
			if err != nil {
				return 0, rounds, qpIters, err
			}
		} else {
			s.w0 = mat.NewVector(s.dim)
			for t := range s.w {
				s.w[t] = mat.NewVector(s.dim)
			}
		}
		// Per-user subproblem: each user's most-violated constraint (Eq. 14)
		// depends only on that user's iterate, signs, and working set, so
		// the search fans out across the pool. Candidates are gathered into
		// index-addressed slots and folded into the working sets in user
		// order afterwards, keeping insertion order (and therefore the QP
		// and every downstream float) identical for any worker count.
		type candidate struct {
			c    optimize.Constraint
			ok   bool
			viol float64
		}
		cands := make([]candidate, len(s.users))
		err := parallel.For(cfg.Workers, len(s.users), func(t int) error {
			u := s.users[t]
			c, err := optimize.MostViolated(u.X, s.signs[t], s.weights[t], s.w[t])
			if err != nil {
				return fmt.Errorf("core: user %d: %w", t, err)
			}
			xi := optimize.Slack(&s.sets[t], s.w[t])
			if viol := optimize.Violation(c, s.w[t], xi); viol > cfg.Epsilon {
				cands[t] = candidate{c: c, ok: true, viol: viol}
			}
			return nil
		})
		if err != nil {
			return 0, rounds, qpIters, err
		}
		added := 0
		for t := range cands {
			if cands[t].ok && s.sets[t].Add(cands[t].c) {
				added++
			}
		}
		if r := cfg.Obs; r != nil {
			r.Counter(obs.MetricCutRounds, "").Inc()
			r.Counter(obs.MetricConstraintsAdded, "").Add(int64(added))
			r.Span(obs.Span{Kind: obs.SpanCutRound, Start: roundStart,
				Dur: time.Since(roundStart), Round: round, User: -1,
				Value: float64(added)})
			if r.FlightEnabled() {
				maxViol := 0.0
				for t := range cands {
					if cands[t].viol > maxViol {
						maxViol = cands[t].viol
					}
				}
				r.FlightRecord(obs.Record{Kind: obs.RecordCutRound, Round: round,
					User: -1, Violation: maxViol, Added: added,
					WorkingSet: s.totalConstraints()})
			}
		}
		if added == 0 {
			break
		}
	}
	return s.objective(), rounds, qpIters, nil
}

func (s *centralState) totalConstraints() int {
	n := 0
	for t := range s.sets {
		n += s.sets[t].Len()
	}
	return n
}

// solveRestrictedQP solves the dual (16) restricted to the working sets and
// refreshes w0, w_t from the dual solution. Setup is incremental: the
// flattened order, Gram matrix, linear term and Lipschitz bound persist in
// the state and only the rows/columns of newly arrived constraints are
// computed (O(added·total·d) instead of O(total²·d) inner products per
// round); with Config.RebuildGram everything is rematerialized from scratch
// in the same canonical order, which the property tests pin bit-identical.
func (s *centralState) solveRestrictedQP() (int, error) {
	s.syncGramCache()
	n := len(s.flat)
	lot := s.scaleW0 // λ/T
	if s.cfg.RebuildGram {
		s.gram.Reset()
	}
	var gramStart time.Time
	if s.cfg.Obs != nil {
		gramStart = time.Now()
	}
	// Column-parallel growth: each new column is owned by one goroutine,
	// so goroutines write disjoint cells and the matrix is bit-identical
	// for any worker count.
	flat := s.flat
	g := s.gram.Grow(n, s.cfg.Workers, func(i, j int) float64 {
		dot := flat[i].a.Dot(flat[j].a)
		v := lot * dot
		if flat[i].user == flat[j].user {
			v += dot
		}
		return v
	})
	if r := s.cfg.Obs; r != nil {
		r.Span(obs.Span{Kind: obs.SpanGramBuild, Start: gramStart,
			Dur: time.Since(gramStart), Round: -1, User: -1, Value: float64(n)})
	}
	prob := &qp.Problem{G: g, C: s.cvec, Groups: qp.GroupSpec{Groups: s.groups, Budgets: s.budgets}}
	// Warm start: the previous duals are a prefix of the current flat
	// order; extend with zeros for the constraints added since.
	for len(s.gamma) < n {
		s.gamma = append(s.gamma, 0)
	}
	gamma, qinfo, err := qp.Solve(prob, qp.Options{MaxIter: s.cfg.QPMaxIter, Tol: 1e-9,
		X0: s.gamma, LipschitzBound: s.gram.Bound(), Scratch: &s.scratch, Obs: s.cfg.Obs})
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return qinfo.Iterations, fmt.Errorf("core: restricted QP: %w", err)
	}
	s.gamma = append(s.gamma[:0], gamma...)

	// Recover hyperplanes: w0 = (λ/T) Σ γ_i A_i ; v_t = Σ_{i∈t} γ_i A_i.
	w0 := mat.NewVector(s.dim)
	vts := make([]mat.Vector, s.t)
	for t := range vts {
		vts[t] = mat.NewVector(s.dim)
	}
	for i, f := range flat {
		if gamma[i] == 0 {
			continue
		}
		w0.AddScaled(lot*gamma[i], f.a)
		vts[f.user].AddScaled(gamma[i], f.a)
	}
	s.w0 = w0
	for t := range vts {
		vts[t].Add(w0)
		s.w[t] = vts[t]
	}
	return qinfo.Iterations, nil
}

// objective evaluates the primal objective of problem (12):
// ½||w'||² + (T/2λ)Σξ_t with ||w'||² = (T/λ)||w0||² + Σ||w_t−w0||².
func (s *centralState) objective() float64 {
	wNorm := s.w0.SquaredNorm() / s.scaleW0
	for t := range s.w {
		diff := mat.SubVec(s.w[t], s.w0)
		wNorm += diff.SquaredNorm()
	}
	obj := 0.5 * wNorm
	slackScale := float64(s.t) / (2 * s.cfg.Lambda)
	for t := range s.sets {
		obj += slackScale * optimize.Slack(&s.sets[t], s.w[t])
	}
	return obj
}
