// Package core implements the paper's primary contribution: the PLOS
// personalized learning framework, in both its centralized form
// (Algorithm 1: CCCP + cutting plane + QP dual) and its distributed form
// (Algorithm 2: CCCP + ADMM consensus with local cutting-plane solves).
//
// The model jointly learns a global hyperplane w0 capturing the commonness
// across users and per-user hyperplanes w_t = w0 + v_t capturing their
// uniqueness; unlabeled samples participate through maximum-margin
// clustering terms |w_t·x|. See DESIGN.md §1 for the full derivation and
// the mapping from the paper's stacked feature space Φ back to the
// per-user representation used here.
//
// Paper mapping:
//
//   - TrainCentralized — Algorithm 1: the CCCP outer loop (§IV-B) linearizes
//     the concave clustering terms, the cutting-plane loop (§IV-C) grows a
//     working set of aggregated constraints, and each restricted master is
//     solved through the structured QP dual of Eq. (16) (internal/qp).
//   - Worker / TrainDistributed — Algorithm 2: consensus ADMM (§V) where
//     each device minimizes local subproblem (22) with its own cutting-plane
//     loop, only parameter vectors travel, and the server runs the z/u
//     updates of internal/admm with the Eq. (24) stopping rule.
//   - TrainAsync — the §VII "future work" variant: devices solve
//     continuously and the server folds updates at a partial barrier,
//     trading the synchronous round structure for straggler tolerance.
//
// All three trainers honor one determinism contract: for a fixed seed the
// trained model is bit-identical for any worker count (parallel sections
// gather into index-addressed slots; floating-point folds run in index
// order) and with observation on or off (Config.Obs instrumentation is
// strictly passive).
package core
