package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"plos/internal/admm"
	"plos/internal/compress"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/qp"
)

// DistConfig holds the ADMM-specific knobs of distributed PLOS. The zero
// value reproduces the paper's §VI-E setup: ρ = 1, ε_abs = 1e-3.
type DistConfig struct {
	Rho         float64
	EpsAbs      float64
	MaxADMMIter int
	// Workers bounds the concurrent per-device local solves: 0 means
	// runtime.GOMAXPROCS(0), 1 is strictly sequential. The trained model
	// is bit-identical for any value (index-ordered consensus folds).
	Workers int
	// Parallel is the legacy one-goroutine-per-user switch, superseded by
	// Workers (which already defaults to a full pool); kept for
	// compatibility, no additional effect.
	Parallel bool
	// Compress, when enabled, makes the in-process trainer push every
	// parameter vector crossing the server↔device boundary — z and u on
	// the way down, w and v on the way up — through a per-user codec-v4
	// encoder/decoder pair (internal/compress), error feedback included,
	// exactly as the transport wrapper treats MsgParams/MsgUpdate on the
	// wire. The trained model then matches a compressed wire run, and
	// TrainInfo carries the byte accounting and residual norm. The real
	// wire path (Serve/Join) compresses in the connection stack instead
	// and must leave this zero.
	Compress compress.Config
}

func (d DistConfig) withDefaults() DistConfig {
	if d.Rho <= 0 {
		d.Rho = 1
	}
	if d.EpsAbs <= 0 {
		d.EpsAbs = 1e-3
	}
	if d.MaxADMMIter <= 0 {
		d.MaxADMMIter = 150
	}
	return d
}

// Worker is one user's device-side state in distributed PLOS. It owns the
// raw data (which never leaves the worker), the local cutting-plane working
// set Ω_t, and the CCCP-frozen effective labels. Workers are driven either
// by the in-process trainer (TrainDistributed) or by the wire protocol
// (internal/transport + the plos-client binary).
type Worker struct {
	data       UserData
	cfg        Config
	totalUsers int
	// user is the device's population index for trace attribution (-1 until
	// SetUser; never read by the solver math).
	user int

	set     optimize.WorkingSet
	signs   []float64
	weights []float64
	alpha   []float64 // warm-start duals aligned with set
	// cutRounds accumulates local cutting-plane rounds across Solve calls
	// (folded into TrainInfo.CutRounds by the trainers).
	cutRounds int
	// stats accumulates the most recent Solve's solver counts; pendingFlips
	// holds the last RefreshSigns flip count until TakeSolveStats consumes
	// it. Both feed the telemetry piggyback and never touch the math.
	stats        SolveStats
	pendingFlips int

	// Incremental local-dual cache (DESIGN.md §11): the working set only
	// appends between resets, so the Gram A·Aᵀ/ρ̃ and its Gershgorin bound
	// persist across cut rounds AND across the ADMM rounds of one CCCP
	// round, growing by the newly added constraints only. A set reset
	// (generation change), a ρ̃ change, or Config.RebuildGram rebuilds it.
	gram    qp.GramCache
	gramGen uint64
	gramRho float64
	cvec    mat.Vector
	warm    mat.Vector
	idx     []int
	scratch qp.Scratch

	w, v mat.Vector
	xi   float64
}

// NewWorker validates the user's data and prepares device-side state.
// totalUsers is T, needed for the λ/T coupling strength.
func NewWorker(data UserData, totalUsers int, cfg Config) (*Worker, error) {
	if _, err := validateUsers([]UserData{data}); err != nil {
		return nil, err
	}
	if totalUsers <= 0 {
		return nil, fmt.Errorf("core: NewWorker: totalUsers must be positive, got %d", totalUsers)
	}
	cfg = cfg.withDefaults()
	m := data.NumSamples()
	weights := make([]float64, m)
	for i := 0; i < m; i++ {
		if i < data.NumLabeled() {
			weights[i] = cfg.Cl / float64(m)
		} else {
			weights[i] = cfg.Cu / float64(m)
		}
	}
	return &Worker{
		data:       data,
		cfg:        cfg,
		totalUsers: totalUsers,
		user:       -1,
		weights:    weights,
		w:          mat.NewVector(data.X.Cols),
		v:          mat.NewVector(data.X.Cols),
	}, nil
}

// SetUser records the device's population index for trace attribution
// (cut-round flight records and Gram spans). Purely observational.
func (wk *Worker) SetUser(t int) { wk.user = t }

// SolveStats are the solver-side counts of the most recent Solve call plus
// the effective-label flips of the most recent RefreshSigns — the
// device-local half of the telemetry piggyback.
type SolveStats struct {
	QPIters  int64
	Cuts     int64
	WarmHits int64
	// SignFlips is consumed on read: reported once per CCCP round.
	SignFlips int
}

// TakeSolveStats returns the most recent Solve's stats and consumes the
// pending sign-flip count (so flips are reported exactly once per refresh).
func (wk *Worker) TakeSolveStats() SolveStats {
	s := wk.stats
	s.SignFlips = wk.pendingFlips
	wk.pendingFlips = 0
	return s
}

// RefreshSigns starts a CCCP round on the device: effective labels of
// unlabeled samples are frozen at sign(w_t·x) of the current personalized
// hyperplane (initialized from w0 on the first round). It resets the
// working set unless the configuration keeps warm sets. The return value is
// the number of effective labels that flipped relative to the previous
// round (0 on the first refresh) — the device-local convergence signal of
// the CCCP linearization; callers free to ignore it.
func (wk *Worker) RefreshSigns(w0 mat.Vector) int {
	ref := wk.w
	if ref.Norm2() == 0 {
		ref = w0
	}
	m := wk.data.NumSamples()
	eff := make([]float64, m)
	copy(eff, wk.data.Y)
	lt := wk.data.NumLabeled()
	for i := lt; i < m; i++ {
		if ref.Dot(wk.data.X.Row(i)) >= 0 {
			eff[i] = 1
		} else {
			eff[i] = -1
		}
	}
	if wk.cfg.BalanceGuard && lt == 0 && m > 1 {
		balanceSigns(wk.data.X, eff, ref)
	}
	flips := 0
	if wk.signs != nil {
		for i, s := range eff {
			if s != wk.signs[i] {
				flips++
			}
		}
	}
	wk.signs = eff
	wk.pendingFlips = flips
	if !wk.cfg.WarmWorkingSets {
		wk.set.Reset()
		wk.alpha = nil
	}
	return flips
}

// Ready reports whether the worker has CCCP-frozen effective labels — i.e.
// RefreshSigns has run and Solve may be called. A client resuming a dropped
// session mid-round uses it to tell a warm worker (skip the redundant sign
// refresh, keeping the working set) from a fresh one after a crash.
func (wk *Worker) Ready() bool { return wk.signs != nil }

// Solve performs the device-side x-update of one ADMM round: it minimizes
// subproblem (22) with a local cutting-plane loop. v_t is eliminated in
// closed form (v_t = ρ·p/(a+ρ) with a = 2λ/T and p = w_t − (w0 − u_t)),
// leaving a one-slack QP in w_t whose dual has a single unit-budget simplex
// constraint. It returns w_t, v_t and the slack ξ_t.
func (wk *Worker) Solve(w0, u mat.Vector, rho float64) (mat.Vector, mat.Vector, float64, error) {
	if wk.signs == nil {
		return nil, nil, 0, errors.New("core: Worker.Solve before RefreshSigns")
	}
	if rho <= 0 {
		return nil, nil, 0, fmt.Errorf("core: Worker.Solve: rho must be positive, got %g", rho)
	}
	a := 2 * wk.cfg.Lambda / float64(wk.totalUsers)
	rhoEff := a * rho / (a + rho)
	b := mat.SubVec(w0, u)
	wk.stats = SolveStats{}

	var w mat.Vector
	for round := 0; round < wk.cfg.MaxCutIter; round++ {
		wk.cutRounds++
		wk.stats.Cuts++
		wk.cfg.Obs.Counter(obs.MetricCutRounds, "").Inc()
		var p mat.Vector
		if wk.set.Len() > 0 {
			var err error
			p, err = wk.solveLocalDual(b, rhoEff)
			if err != nil {
				return nil, nil, 0, err
			}
		} else {
			p = mat.NewVector(len(b))
		}
		w = mat.AddVec(b, p)
		c, err := optimize.MostViolated(wk.data.X, wk.signs, wk.weights, w)
		if err != nil {
			return nil, nil, 0, err
		}
		xi := optimize.Slack(&wk.set, w)
		viol := optimize.Violation(c, w, xi)
		added := viol > wk.cfg.Epsilon && wk.set.Add(c)
		if wk.cfg.Obs.FlightEnabled() {
			addedN := 0
			if added {
				addedN = 1
			}
			wk.cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordCutRound, Round: round,
				User: wk.user, Violation: viol, Added: addedN, WorkingSet: wk.set.Len()})
		}
		if !added {
			break
		}
		wk.cfg.Obs.Counter(obs.MetricConstraintsAdded, "").Inc()
	}
	p := mat.SubVec(w, b)
	v := mat.ScaleVec(rho/(a+rho), p)
	wk.w = w
	wk.v = v
	wk.xi = optimize.Slack(&wk.set, w)
	return w.Clone(), v.Clone(), wk.xi, nil
}

// solveLocalDual solves the restricted dual of the one-slack QP:
// min ½αᵀGα − c̃ᵀα with G = (1/ρ̃)·A·A', α >= 0, Σα <= 1, and returns
// p = (1/ρ̃)·Σ α_k A_k. The Gram and its bound are served from the
// worker's incremental cache; only the linear term depends on b and is
// recomputed each solve.
func (wk *Worker) solveLocalDual(b mat.Vector, rhoEff float64) (mat.Vector, error) {
	cons := wk.set.Constraints()
	n := len(cons)
	if gen := wk.set.Generation(); gen != wk.gramGen || n < wk.gram.Len() || rhoEff != wk.gramRho {
		if wk.alpha != nil && (gen != wk.gramGen || n < wk.gram.Len()) && wk.gram.Len() > 0 {
			// The set the cached duals were aligned with shrank or was
			// rebuilt: the stale warm start is dropped, not mis-mapped.
			wk.cfg.Obs.Counter(obs.MetricWarmStartTruncations, "").Inc()
			wk.alpha = nil
		}
		wk.gram.Reset()
		wk.gramGen = gen
		wk.gramRho = rhoEff
	}
	if wk.cfg.RebuildGram {
		wk.gram.Reset()
	}
	if len(wk.alpha) > 0 {
		wk.stats.WarmHits++
	}
	var gramStart time.Time
	if wk.cfg.Obs != nil {
		gramStart = time.Now()
	}
	// Sequential cell fill (workers=1): device-local solves already fan
	// out across users, so nested parallelism would only thrash.
	g := wk.gram.Grow(n, 1, func(i, j int) float64 {
		return cons[i].A.Dot(cons[j].A) / rhoEff
	})
	if r := wk.cfg.Obs; r != nil {
		r.Span(obs.Span{Kind: obs.SpanGramBuild, Start: gramStart,
			Dur: time.Since(gramStart), Round: -1, User: wk.user, Value: float64(n)})
	}
	wk.cvec = wk.cvec[:0]
	for i := 0; i < n; i++ {
		wk.cvec = append(wk.cvec, cons[i].C-b.Dot(cons[i].A))
	}
	for len(wk.idx) < n {
		wk.idx = append(wk.idx, len(wk.idx))
	}
	prob := &qp.Problem{G: g, C: wk.cvec,
		Groups: qp.GroupSpec{Groups: [][]int{wk.idx[:n]}, Budgets: []float64{1}}}
	wk.warm = wk.warm[:0]
	wk.warm = append(wk.warm, wk.alpha...)
	for len(wk.warm) < n {
		wk.warm = append(wk.warm, 0) // constraints added since last solve
	}
	alpha, qinfo, err := qp.Solve(prob, qp.Options{MaxIter: wk.cfg.QPMaxIter, Tol: 1e-10,
		X0: wk.warm, LipschitzBound: wk.gram.Bound(), Scratch: &wk.scratch, Obs: wk.cfg.Obs})
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return nil, fmt.Errorf("core: local dual QP: %w", err)
	}
	wk.stats.QPIters += int64(qinfo.Iterations)
	wk.alpha = alpha
	p := mat.NewVector(len(b))
	for k, c := range cons {
		if alpha[k] != 0 {
			p.AddScaled(alpha[k]/rhoEff, c.A)
		}
	}
	return p, nil
}

// Hyperplane returns the worker's current personalized hyperplane.
func (wk *Worker) Hyperplane() mat.Vector { return wk.w.Clone() }

// objectiveTerm returns this worker's contribution (λ/T)||v_t||² + ξ_t to
// the distributed objective L of Eq. (23).
func (wk *Worker) objectiveTerm() float64 {
	return wk.cfg.Lambda/float64(wk.totalUsers)*wk.v.SquaredNorm() + wk.xi
}

// TrainDistributed runs the paper's Algorithm 2 with in-process workers:
// an outer CCCP loop; inside it, consensus ADMM where each user solves its
// local subproblem (22) and only parameter vectors move between the
// "devices" and the "server". The result matches TrainCentralized up to
// ADMM tolerance (paper Fig. 11).
func TrainDistributed(users []UserData, cfg Config, dcfg DistConfig) (*Model, TrainInfo, error) {
	dim, err := validateUsers(users)
	if err != nil {
		return nil, TrainInfo{}, err
	}
	cfg = cfg.withDefaults()
	dcfg = dcfg.withDefaults()
	tCount := len(users)

	workers := make([]*Worker, tCount)
	for t, u := range users {
		wk, err := NewWorker(u, tCount, cfg)
		if err != nil {
			return nil, TrainInfo{}, fmt.Errorf("core: TrainDistributed: user %d: %w", t, err)
		}
		wk.SetUser(t)
		workers[t] = wk
	}
	w0 := initialW0(users, dim, cfg)

	// Optional codec-v4 simulation: one encoder/decoder pair per user, the
	// in-process equivalent of the two one-direction transport wrappers of a
	// wire run (per-slot streams are independent, so one pair covers all
	// four slots). All state is index-addressed by t and touched by exactly
	// one Solve call per ADMM round, so the simulation is race-free and
	// bit-identical for any DistConfig.Workers.
	compOn := dcfg.Compress.Enabled()
	var encs []*compress.Encoder
	var decs []*compress.Decoder
	var rawBytes, compBytes []int64
	if compOn {
		if err := dcfg.Compress.Validate(); err != nil {
			return nil, TrainInfo{}, fmt.Errorf("core: TrainDistributed: %w", err)
		}
		encs = make([]*compress.Encoder, tCount)
		decs = make([]*compress.Decoder, tCount)
		rawBytes = make([]int64, tCount)
		compBytes = make([]int64, tCount)
		for t := range encs {
			encs[t] = compress.NewEncoder(dcfg.Compress)
			decs[t] = compress.NewDecoder()
		}
	}
	roundtrip := func(t int, slot compress.Slot, x mat.Vector) (mat.Vector, error) {
		vec := encs[t].Encode(slot, x)
		rawBytes[t] += int64(compress.DenseWireBytes(len(x)))
		compBytes[t] += int64(vec.EncodedSize())
		y, err := decs[t].Decode(slot, vec)
		if err != nil {
			return nil, fmt.Errorf("core: TrainDistributed: compress roundtrip user %d: %w", t, err)
		}
		return mat.Vector(y), nil
	}

	cfg.Obs.Counter(obs.MetricTrainRuns, "").Inc()
	if cfg.Obs.FlightEnabled() {
		cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "distributed", Users: tCount})
	}
	info := TrainInfo{}
	cccpInfo, err := optimize.CCCP(func(round int) (float64, error) {
		var start time.Time
		if cfg.Obs != nil {
			start = time.Now()
		}
		if cfg.Obs.FlightEnabled() {
			cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
		}
		flips := 0
		for _, wk := range workers {
			flips += wk.RefreshSigns(w0)
		}
		vs := make([]mat.Vector, tCount)
		update := func(t int, z, u mat.Vector) (mat.Vector, error) {
			if compOn {
				var err error
				if z, err = roundtrip(t, compress.SlotW0, z); err != nil {
					return nil, err
				}
				if u, err = roundtrip(t, compress.SlotU, u); err != nil {
					return nil, err
				}
			}
			w, v, _, err := workers[t].Solve(z, u, dcfg.Rho)
			if err != nil {
				return nil, err
			}
			if compOn {
				// The server folds what it RECEIVED, not what the device
				// computed: consensus is built from the decoded vectors.
				if w, err = roundtrip(t, compress.SlotW, w); err != nil {
					return nil, err
				}
				if v, err = roundtrip(t, compress.SlotV, v); err != nil {
					return nil, err
				}
			}
			vs[t] = v
			return mat.SubVec(w, v), nil // consensus variable x_t = w_t − v_t
		}
		cons, runInfo, err := admm.Run(dim, tCount, update, admm.SquaredNormZ, admm.Options{
			Rho:     dcfg.Rho,
			EpsAbs:  dcfg.EpsAbs,
			MaxIter: dcfg.MaxADMMIter,
			Workers: dcfg.Workers,
			Obs:     cfg.Obs,
		})
		info.ADMMIterations += runInfo.Iterations
		info.ADMMPrimal = runInfo.Final.Primal
		info.ADMMDual = runInfo.Final.Dual
		if err != nil && !errors.Is(err, admm.ErrMaxIterations) {
			return 0, err
		}
		w0 = cons.Z
		// L of Eq. (23).
		obj := w0.SquaredNorm()
		for _, wk := range workers {
			obj += wk.objectiveTerm()
		}
		if r := cfg.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
			if r.FlightEnabled() {
				r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: round,
					Objective: obj, SignFlips: flips, Dur: time.Since(start)})
			}
		}
		return obj, nil
	}, cfg.CCCPTol, cfg.MaxCCCPIter)
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		return nil, info, fmt.Errorf("core: TrainDistributed: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	if cfg.Obs.FlightEnabled() {
		cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: cccpInfo.Converged,
			Objective: cccpInfo.Objective, Round: cccpInfo.Iterations})
	}

	model := &Model{W0: w0, W: make([]mat.Vector, tCount)}
	for t, wk := range workers {
		model.W[t] = wk.Hyperplane()
		info.Constraints += wk.set.Len()
		info.CutRounds += wk.cutRounds
	}
	if compOn {
		var efSq float64
		for t := range encs {
			info.CommRawBytes += rawBytes[t]
			info.CommCompBytes += compBytes[t]
			n := encs[t].ResidualNorm()
			efSq += n * n
		}
		info.CompressEFNorm = math.Sqrt(efSq)
	}
	if r := cfg.Obs; r != nil {
		converged := 0.0
		if info.CCCPConverged {
			converged = 1
		}
		r.Gauge(obs.MetricCCCPConverged, "").Set(converged)
		r.Gauge(obs.MetricConstraintsActive, "").Set(float64(info.Constraints))
	}
	return model, info, nil
}
