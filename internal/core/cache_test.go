package core

import (
	"fmt"
	"testing"

	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/rng"
)

// cacheTestUsers builds a small heterogeneous cohort (rotated boundaries,
// partial labels) that exercises several cut rounds per CCCP iteration.
func cacheTestUsers(seed int64) []UserData {
	g := rng.New(seed)
	users := make([]UserData, 4)
	for t := range users {
		users[t], _ = synthUser(g, 8, 4, float64(t)*0.35)
	}
	return users
}

func modelsBitIdentical(t *testing.T, a, b *Model, label string) {
	t.Helper()
	if !vecExact(a.W0, b.W0) {
		t.Errorf("%s: W0 differs: %v vs %v", label, a.W0, b.W0)
	}
	if len(a.W) != len(b.W) {
		t.Fatalf("%s: user counts differ", label)
	}
	for u := range a.W {
		if !vecExact(a.W[u], b.W[u]) {
			t.Errorf("%s: W[%d] differs", label, u)
		}
	}
}

func vecExact(a, b mat.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property (satellite of DESIGN.md §11): the incremental Gram cache is an
// optimization, not a semantic change — training with it produces the same
// model, bit for bit, as rebuilding every solve from scratch, across seeds
// and worker counts, for both trainers.
func TestPropertyCacheBitIdenticalCentralized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				users := cacheTestUsers(seed)
				cfg := Config{Seed: seed, Workers: workers}
				inc, incInfo, err := TrainCentralized(users, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.RebuildGram = true
				reb, rebInfo, err := TrainCentralized(users, cfg)
				if err != nil {
					t.Fatal(err)
				}
				modelsBitIdentical(t, inc, reb, "centralized")
				if incInfo.CutRounds != rebInfo.CutRounds || incInfo.Constraints != rebInfo.Constraints {
					t.Errorf("solver trajectory diverged: %+v vs %+v", incInfo, rebInfo)
				}
			})
		}
	}
}

func TestPropertyCacheBitIdenticalDistributed(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				users := cacheTestUsers(seed)
				cfg := Config{Seed: seed, Workers: workers, MaxCCCPIter: 4}
				dcfg := DistConfig{Workers: workers, MaxADMMIter: 40}
				inc, incInfo, err := TrainDistributed(users, cfg, dcfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.RebuildGram = true
				reb, rebInfo, err := TrainDistributed(users, cfg, dcfg)
				if err != nil {
					t.Fatal(err)
				}
				modelsBitIdentical(t, inc, reb, "distributed")
				if incInfo.ADMMIterations != rebInfo.ADMMIterations || incInfo.CutRounds != rebInfo.CutRounds {
					t.Errorf("solver trajectory diverged: %+v vs %+v", incInfo, rebInfo)
				}
			})
		}
	}
}

// Satellite 2: warm working sets carry the cache (and the warm-start duals)
// across CCCP rounds. The previous solver silently truncated a shrunken
// warm-start mapping; now the only legal paths are "prefix extends" (no
// counter) or "drop and recount" (counter). A normal warm-sets run never
// shrinks, so the counter must stay zero and the output must stay
// bit-identical to the from-scratch rebuild.
func TestWarmWorkingSetsCacheBitIdentical(t *testing.T) {
	users := cacheTestUsers(5)
	reg := obs.NewRegistry()
	cfg := Config{Seed: 5, WarmWorkingSets: true, Obs: reg}
	inc, _, err := TrainCentralized(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 0 {
		t.Errorf("append-only warm run recorded %d truncations, want 0", n)
	}
	cfg.RebuildGram = true
	cfg.Obs = nil
	reb, _, err := TrainCentralized(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	modelsBitIdentical(t, inc, reb, "warm working sets")
}

// Satellite 2 (regression, centralized): a working set that shrinks or is
// regenerated out-of-band between restricted solves must invalidate the
// cache, drop the stale duals (counting one truncation), and still solve.
func TestWarmStartTruncationCounterCentralized(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Obs: reg}.withDefaults()
	const tc = 2
	s := &centralState{
		cfg:     cfg,
		dim:     2,
		t:       tc,
		budget:  float64(tc) / (2 * cfg.Lambda),
		scaleW0: cfg.Lambda / float64(tc),
		sets:    make([]optimize.WorkingSet, tc),
		w:       make([]mat.Vector, tc),
		flatLen: make([]int, tc),
		gens:    make([]uint64, tc),
		groups:  make([][]int, tc),
		budgets: []float64{1, 1},
	}
	s.sets[0].Add(optimize.Constraint{A: mat.Vector{1, 0}, C: 0.5, Key: "\x01"})
	s.sets[0].Add(optimize.Constraint{A: mat.Vector{0, 1}, C: 0.4, Key: "\x02"})
	s.sets[1].Add(optimize.Constraint{A: mat.Vector{1, 1}, C: 0.3, Key: "\x01"})
	if _, err := s.solveRestrictedQP(); err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 0 {
		t.Fatalf("first solve recorded %d truncations", n)
	}
	if s.gram.Len() != 3 || len(s.gamma) != 3 {
		t.Fatalf("cache not primed: gram=%d gamma=%d", s.gram.Len(), len(s.gamma))
	}

	// Out-of-band shrink: user 0's set is rebuilt with a single different
	// constraint while live duals exist.
	s.sets[0].Reset()
	s.sets[0].Add(optimize.Constraint{A: mat.Vector{2, 1}, C: 0.6, Key: "\x03"})
	if _, err := s.solveRestrictedQP(); err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 1 {
		t.Errorf("shrunken set recorded %d truncations, want 1", n)
	}
	if s.gram.Len() != 2 || len(s.gamma) != 2 {
		t.Errorf("cache not rebuilt to the new pool: gram=%d gamma=%d", s.gram.Len(), len(s.gamma))
	}

	// Appending afterwards is incremental again: no further truncations.
	s.sets[1].Add(optimize.Constraint{A: mat.Vector{0.5, 2}, C: 0.7, Key: "\x02"})
	if _, err := s.solveRestrictedQP(); err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 1 {
		t.Errorf("append-only growth recorded %d truncations, want 1", n)
	}
}

// Satellite 2 (regression, distributed): the device-side local dual detects
// an out-of-band working-set rebuild the same way.
func TestWarmStartTruncationCounterWorker(t *testing.T) {
	reg := obs.NewRegistry()
	u := UserData{
		X: mat.FromRows([][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}),
		Y: []float64{1, -1, 1, -1},
	}
	wk, err := NewWorker(u, 1, Config{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	b := mat.Vector{0.1, 0.1}
	wk.set.Add(optimize.Constraint{A: mat.Vector{1, 0}, C: 0.5, Key: "\x01"})
	wk.set.Add(optimize.Constraint{A: mat.Vector{0, 1}, C: 0.4, Key: "\x02"})
	if _, err := wk.solveLocalDual(b, 0.5); err != nil {
		t.Fatal(err)
	}
	if wk.alpha == nil || wk.gram.Len() != 2 {
		t.Fatalf("cache not primed: alpha=%v gram=%d", wk.alpha, wk.gram.Len())
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 0 {
		t.Fatalf("first solve recorded %d truncations", n)
	}

	wk.set.Reset()
	wk.set.Add(optimize.Constraint{A: mat.Vector{1, 1}, C: 0.6, Key: "\x03"})
	if _, err := wk.solveLocalDual(b, 0.5); err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 1 {
		t.Errorf("rebuilt set recorded %d truncations, want 1", n)
	}
	if wk.gram.Len() != 1 {
		t.Errorf("gram not rebuilt: %d", wk.gram.Len())
	}

	// A ρ̃ change invalidates the Gram (its cells embed 1/ρ̃) but keeps the
	// duals — same pool, different scaling — so no truncation is counted.
	if _, err := wk.solveLocalDual(b, 0.25); err != nil {
		t.Fatal(err)
	}
	if n := reg.CounterValue(obs.MetricWarmStartTruncations); n != 1 {
		t.Errorf("rho change recorded %d truncations, want 1", n)
	}
}
