package core

import (
	"math"
	"testing"
	"time"

	"plos/internal/rng"
)

func asyncTestUsers(seed int64) ([]UserData, [][]float64) {
	g := rng.New(seed)
	var users []UserData
	var truths [][]float64
	for i := 0; i < 4; i++ {
		labeled := 10
		if i >= 2 {
			labeled = 0
		}
		u, truth := synthUser(g.SplitN("u", i), 15, labeled, float64(i)*0.15)
		users = append(users, u)
		truths = append(truths, truth)
	}
	return users, truths
}

func TestAsyncMatchesSyncAccuracy(t *testing.T) {
	users, truths := asyncTestUsers(1)
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 1}

	sync, _, err := TrainDistributed(users, cfg, DistConfig{})
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	async, info, err := TrainAsync(users, cfg, AsyncConfig{})
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if info.ADMMIterations == 0 {
		t.Error("async should report update counts")
	}
	var accSync, accAsync float64
	for i := range users {
		accSync += userAccuracy(sync, i, users[i], truths[i])
		accAsync += userAccuracy(async, i, users[i], truths[i])
	}
	accSync /= float64(len(users))
	accAsync /= float64(len(users))
	if math.Abs(accSync-accAsync) > 0.1 {
		t.Errorf("sync acc %v vs async acc %v", accSync, accAsync)
	}
	if accAsync < 0.8 {
		t.Errorf("async accuracy = %v", accAsync)
	}
}

func TestAsyncToleratesStraggler(t *testing.T) {
	users, truths := asyncTestUsers(2)
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 2}
	// User 3 is pathologically slow: every solve stalls. The partial
	// barrier must let the rest make progress anyway.
	slow := func(user, _ int) time.Duration {
		if user == 3 {
			return 30 * time.Millisecond
		}
		return 0
	}
	start := time.Now()
	m, _, err := TrainAsync(users, cfg, AsyncConfig{Barrier: 2, Delay: slow,
		MaxUpdatesPerRound: 200})
	if err != nil {
		t.Fatalf("TrainAsync: %v", err)
	}
	elapsed := time.Since(start)
	var acc float64
	for i := 0; i < 3; i++ { // the responsive users
		acc += userAccuracy(m, i, users[i], truths[i])
	}
	acc /= 3
	if acc < 0.8 {
		t.Errorf("responsive users' accuracy = %v", acc)
	}
	// Sanity bound: with a synchronous barrier every one of the hundreds
	// of rounds would pay the 30ms straggler latency; the async run must
	// come in far below that.
	if elapsed > 20*time.Second {
		t.Errorf("async run took %v — partial barrier not effective?", elapsed)
	}
}

func TestAsyncBarrierEqualsTIsSyncLike(t *testing.T) {
	users, truths := asyncTestUsers(3)
	cfg := Config{Lambda: 50, Seed: 3}
	m, _, err := TrainAsync(users, cfg, AsyncConfig{Barrier: len(users)})
	if err != nil {
		t.Fatalf("TrainAsync: %v", err)
	}
	var acc float64
	for i := range users {
		acc += userAccuracy(m, i, users[i], truths[i])
	}
	if acc/float64(len(users)) < 0.8 {
		t.Errorf("accuracy = %v", acc/float64(len(users)))
	}
}

func TestAsyncValidation(t *testing.T) {
	if _, _, err := TrainAsync(nil, Config{}, AsyncConfig{}); err == nil {
		t.Error("no users should error")
	}
}

func TestAsyncConfigDefaults(t *testing.T) {
	a := AsyncConfig{}.withDefaults(8)
	if a.Barrier != 2 || a.Rho != 1 || a.MaxUpdatesPerRound != 480 {
		t.Errorf("defaults: %+v", a)
	}
	small := AsyncConfig{}.withDefaults(2)
	if small.Barrier != 1 {
		t.Errorf("small-T barrier = %d", small.Barrier)
	}
	clamped := AsyncConfig{Barrier: 10}.withDefaults(3)
	if clamped.Barrier != 3 {
		t.Errorf("barrier should clamp to T, got %d", clamped.Barrier)
	}
}
