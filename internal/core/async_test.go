package core

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/rng"
)

func asyncTestUsers(seed int64) ([]UserData, [][]float64) {
	g := rng.New(seed)
	var users []UserData
	var truths [][]float64
	for i := 0; i < 4; i++ {
		labeled := 10
		if i >= 2 {
			labeled = 0
		}
		u, truth := synthUser(g.SplitN("u", i), 15, labeled, float64(i)*0.15)
		users = append(users, u)
		truths = append(truths, truth)
	}
	return users, truths
}

func TestAsyncMatchesSyncAccuracy(t *testing.T) {
	users, truths := asyncTestUsers(1)
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 1}

	sync, _, err := TrainDistributed(users, cfg, DistConfig{})
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	async, info, err := TrainAsync(users, cfg, AsyncConfig{})
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if info.ADMMIterations == 0 {
		t.Error("async should report update counts")
	}
	var accSync, accAsync float64
	for i := range users {
		accSync += userAccuracy(sync, i, users[i], truths[i])
		accAsync += userAccuracy(async, i, users[i], truths[i])
	}
	accSync /= float64(len(users))
	accAsync /= float64(len(users))
	if math.Abs(accSync-accAsync) > 0.1 {
		t.Errorf("sync acc %v vs async acc %v", accSync, accAsync)
	}
	if accAsync < 0.8 {
		t.Errorf("async accuracy = %v", accAsync)
	}
}

func TestAsyncToleratesStraggler(t *testing.T) {
	users, truths := asyncTestUsers(2)
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 2}
	// User 3 is pathologically slow: every solve stalls. The partial
	// barrier must let the rest make progress anyway.
	slow := func(user, _ int) time.Duration {
		if user == 3 {
			return 30 * time.Millisecond
		}
		return 0
	}
	start := time.Now()
	m, _, err := TrainAsync(users, cfg, AsyncConfig{Barrier: 2, Delay: slow,
		MaxUpdatesPerRound: 200})
	if err != nil {
		t.Fatalf("TrainAsync: %v", err)
	}
	elapsed := time.Since(start)
	var acc float64
	for i := 0; i < 3; i++ { // the responsive users
		acc += userAccuracy(m, i, users[i], truths[i])
	}
	acc /= 3
	if acc < 0.8 {
		t.Errorf("responsive users' accuracy = %v", acc)
	}
	// Sanity bound: with a synchronous barrier every one of the hundreds
	// of rounds would pay the 30ms straggler latency; the async run must
	// come in far below that.
	if elapsed > 20*time.Second {
		t.Errorf("async run took %v — partial barrier not effective?", elapsed)
	}
}

func TestAsyncBarrierEqualsTIsSyncLike(t *testing.T) {
	users, truths := asyncTestUsers(3)
	cfg := Config{Lambda: 50, Seed: 3}
	m, _, err := TrainAsync(users, cfg, AsyncConfig{Barrier: len(users)})
	if err != nil {
		t.Fatalf("TrainAsync: %v", err)
	}
	var acc float64
	for i := range users {
		acc += userAccuracy(m, i, users[i], truths[i])
	}
	if acc/float64(len(users)) < 0.8 {
		t.Errorf("accuracy = %v", acc/float64(len(users)))
	}
}

// TestAsyncSweepSolvesSplit pins the metric split between barrier-folded
// solves and the final synchronous sweep that closes each CCCP round:
// async_updates_total (and TrainInfo.ADMMIterations) count only solutions
// folded into the consensus, while the sweep's bookkeeping re-solves land
// in async_sweep_solves_total / TrainInfo.AsyncSweepSolves.
func TestAsyncSweepSolvesSplit(t *testing.T) {
	users, _ := asyncTestUsers(5)
	reg := obs.NewRegistry()
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 5, Obs: reg}
	_, info, err := TrainAsync(users, cfg, AsyncConfig{})
	if err != nil {
		t.Fatalf("TrainAsync: %v", err)
	}
	if info.ADMMIterations == 0 || info.AsyncSweepSolves == 0 {
		t.Fatalf("expected both counts populated: folded %d, sweep %d",
			info.ADMMIterations, info.AsyncSweepSolves)
	}
	// One sweep per CCCP round, re-solving every device.
	if want := info.CCCPIterations * len(users); info.AsyncSweepSolves != want {
		t.Errorf("AsyncSweepSolves = %d, want CCCP rounds × users = %d",
			info.AsyncSweepSolves, want)
	}
	if got := reg.CounterValue(obs.MetricAsyncUpdates); got != int64(info.ADMMIterations) {
		t.Errorf("async_updates_total = %d, want folded count %d", got, info.ADMMIterations)
	}
	if got := reg.CounterValue(obs.MetricAsyncSweepSolves); got != int64(info.AsyncSweepSolves) {
		t.Errorf("async_sweep_solves_total = %d, want sweep count %d", got, info.AsyncSweepSolves)
	}
}

// TestAsyncSolveErrorStopsWorkers covers the asyncRound device-error path:
// a mid-round solve failure must surface the failing user's index in a
// wrapped error and tear down every worker goroutine (run under -race to
// catch leaks touching the shared state after return).
func TestAsyncSolveErrorStopsWorkers(t *testing.T) {
	users, _ := asyncTestUsers(6)
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 6}.withDefaults()
	tCount := len(users)
	workers := make([]*Worker, tCount)
	w0 := mat.NewVector(2)
	for i, u := range users {
		wk, err := NewWorker(u, tCount, cfg)
		if err != nil {
			t.Fatalf("NewWorker %d: %v", i, err)
		}
		wk.SetUser(i)
		// User 2 never gets RefreshSigns, so its first Solve fails — the
		// deterministic stand-in for any mid-round device error.
		if i != 2 {
			wk.RefreshSigns(w0)
		}
		workers[i] = wk
	}
	before := runtime.NumGoroutine()
	_, _, _, _, _, err := asyncRound(workers, w0, cfg, AsyncConfig{}.WithDefaults(tCount), 2)
	if err == nil {
		t.Fatal("asyncRound should fail when a device's solve errors")
	}
	if !strings.Contains(err.Error(), "user 2") {
		t.Errorf("error should name the failing user: %v", err)
	}
	if errors.Unwrap(err) == nil {
		t.Errorf("device error should be wrapped, got %v", err)
	}
	// asyncRound returns only after wg.Wait(), so the worker goroutines
	// must already be gone; poll briefly to absorb unrelated runtime
	// goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked by failed asyncRound: before %d, after %d", before, n)
	}
}

func TestAsyncValidation(t *testing.T) {
	if _, _, err := TrainAsync(nil, Config{}, AsyncConfig{}); err == nil {
		t.Error("no users should error")
	}
}

func TestAsyncConfigDefaults(t *testing.T) {
	a := AsyncConfig{}.WithDefaults(8)
	if a.Barrier != 2 || a.Rho != 1 || a.EpsAbs != 1e-3 {
		t.Errorf("defaults: %+v", a)
	}
	// The doc comment on MaxUpdatesPerRound promises 60·T; keep the code
	// and the comment pinned together.
	if a.MaxUpdatesPerRound != 60*8 {
		t.Errorf("MaxUpdatesPerRound default = %d, want 60·T = %d", a.MaxUpdatesPerRound, 60*8)
	}
	small := AsyncConfig{}.WithDefaults(2)
	if small.Barrier != 1 {
		t.Errorf("small-T barrier = %d", small.Barrier)
	}
	clamped := AsyncConfig{Barrier: 10}.WithDefaults(3)
	if clamped.Barrier != 3 {
		t.Errorf("barrier should clamp to T, got %d", clamped.Barrier)
	}
}
