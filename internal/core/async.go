package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"plos/internal/admm"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
)

// AsyncConfig tunes the asynchronous distributed trainer — the paper's
// §VII future-work scenario where "some users may delay their responses
// for arbitrarily long". Instead of the synchronous ADMM barrier (every
// round waits for all T devices), the server refreshes the consensus as
// soon as a partial barrier of updates has arrived, using each device's
// most recent solution.
type AsyncConfig struct {
	// Barrier is the number of *distinct* devices with fresh solutions
	// that triggers a consensus refresh (default max(1, T/4)); between
	// barriers a fast device's re-solves replace, not stack, its pending
	// contribution. Barrier = T reproduces the synchronous schedule.
	Barrier int
	// MaxUpdatesPerRound bounds the folded device solves per CCCP round
	// (default 60·T), the async analogue of MaxADMMIter.
	MaxUpdatesPerRound int
	// Rho is the ADMM penalty (default 1).
	Rho float64
	// EpsAbs is the absolute residual tolerance, applied like the
	// synchronous stopping rule of Eq. (24): a CCCP round ends when the
	// primal residual sqrt(Σ_t ||x_t − z||²) falls below √T·ε_abs and the
	// consensus movement ρ·||Δz|| below ε_abs (default 1e-3).
	EpsAbs float64
	// Delay optionally injects per-device latency before each local
	// solve — the test hook for straggler scenarios. Called with the user
	// index and the device's solve count.
	Delay func(user, solves int) time.Duration
}

// WithDefaults fills the zero fields with the documented defaults for a
// t-device fleet. Exported because the asynchronous wire protocol
// (internal/protocol) shares the same budget and tolerance defaults.
func (a AsyncConfig) WithDefaults(t int) AsyncConfig {
	if a.Barrier <= 0 {
		a.Barrier = t / 4
		if a.Barrier < 1 {
			a.Barrier = 1
		}
	}
	if a.Barrier > t {
		a.Barrier = t
	}
	if a.MaxUpdatesPerRound <= 0 {
		a.MaxUpdatesPerRound = 60 * t
	}
	if a.Rho <= 0 {
		a.Rho = 1
	}
	if a.EpsAbs <= 0 {
		a.EpsAbs = 1e-3
	}
	return a
}

// TrainAsync runs distributed PLOS with asynchronous consensus updates:
// devices solve continuously against the freshest (z, u_t) they can see,
// and the server folds updates in at a partial barrier without waiting for
// stragglers. Accuracy matches the synchronous trainer to within solver
// tolerance while wall-clock no longer depends on the slowest device.
func TrainAsync(users []UserData, cfg Config, acfg AsyncConfig) (*Model, TrainInfo, error) {
	dim, err := validateUsers(users)
	if err != nil {
		return nil, TrainInfo{}, err
	}
	cfg = cfg.withDefaults()
	tCount := len(users)
	acfg = acfg.WithDefaults(tCount)

	workers := make([]*Worker, tCount)
	for t, u := range users {
		wk, err := NewWorker(u, tCount, cfg)
		if err != nil {
			return nil, TrainInfo{}, fmt.Errorf("core: TrainAsync: user %d: %w", t, err)
		}
		wk.SetUser(t)
		workers[t] = wk
	}
	w0 := initialW0(users, dim, cfg)

	cfg.Obs.Counter(obs.MetricTrainRuns, "").Inc()
	if cfg.Obs.FlightEnabled() {
		cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "async", Users: tCount})
	}
	info := TrainInfo{}
	cccpInfo, err := optimize.CCCP(func(round int) (float64, error) {
		var start time.Time
		if cfg.Obs != nil {
			start = time.Now()
		}
		if cfg.Obs.FlightEnabled() {
			cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
		}
		flips := 0
		for _, wk := range workers {
			flips += wk.RefreshSigns(w0)
		}
		z, obj, updates, sweep, res, err := asyncRound(workers, w0, cfg, acfg, dim)
		info.ADMMIterations += updates
		info.AsyncSweepSolves += sweep
		info.ADMMPrimal = res.Primal
		info.ADMMDual = res.Dual
		if err != nil {
			return 0, err
		}
		w0 = z
		if r := cfg.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
			if r.FlightEnabled() {
				r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: round,
					Objective: obj, SignFlips: flips, Dur: time.Since(start)})
			}
		}
		return obj, nil
	}, cfg.CCCPTol, cfg.MaxCCCPIter)
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		return nil, info, fmt.Errorf("core: TrainAsync: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	if cfg.Obs.FlightEnabled() {
		cfg.Obs.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: cccpInfo.Converged,
			Objective: cccpInfo.Objective, Round: cccpInfo.Iterations})
	}

	model := &Model{W0: w0, W: make([]mat.Vector, tCount)}
	for t, wk := range workers {
		model.W[t] = wk.Hyperplane()
		info.Constraints += wk.set.Len()
		info.CutRounds += wk.cutRounds
	}
	if r := cfg.Obs; r != nil {
		converged := 0.0
		if info.CCCPConverged {
			converged = 1
		}
		r.Gauge(obs.MetricCCCPConverged, "").Set(converged)
		r.Gauge(obs.MetricConstraintsActive, "").Set(float64(info.Constraints))
	}
	return model, info, nil
}

// asyncState is the server's shared view, guarded by one mutex: device
// goroutines snapshot (z, u_t) under it and deliver results through a
// channel, so the consensus algebra itself stays single-threaded. The
// algebra lives in admm.AsyncFold, shared with the asynchronous wire
// protocol (internal/protocol).
type asyncState struct {
	mu   sync.Mutex
	fold *admm.AsyncFold
}

type asyncUpdate struct {
	user int
	x, v mat.Vector
	xi   float64
	err  error
}

// asyncRound runs one CCCP round of asynchronous ADMM and returns the
// final consensus, the objective L of Eq. (23), the folded update count,
// the final-sweep solve count, and the residuals of the last barrier fold
// (the async analogue of Eq. 24).
func asyncRound(workers []*Worker, w0 mat.Vector, cfg Config, acfg AsyncConfig, dim int) (mat.Vector, float64, int, int, admm.Residuals, error) {
	tCount := len(workers)
	fold, err := admm.NewAsyncFold(w0, tCount, acfg.Rho, nil)
	if err != nil {
		return nil, 0, 0, 0, admm.Residuals{}, err
	}
	st := &asyncState{fold: fold}

	updatesCh := make(chan asyncUpdate)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := range workers {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			solves := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if acfg.Delay != nil {
					if d := acfg.Delay(t, solves); d > 0 {
						select {
						case <-stop:
							return
						case <-time.After(d):
						}
					}
				}
				st.mu.Lock()
				z := st.fold.Z.Clone()
				u := st.fold.Us[t].Clone()
				st.mu.Unlock()
				w, v, xi, err := workers[t].Solve(z, u, acfg.Rho)
				solves++
				up := asyncUpdate{user: t, err: err}
				if err == nil {
					up.x = mat.SubVec(w, v)
					up.v = v
					up.xi = xi
				}
				select {
				case <-stop:
					return
				case updatesCh <- up:
				}
			}
		}(t)
	}

	totalUpdates := 0
	everyoneReported := false
	fresh := make(map[int]asyncUpdate, tCount)
	var loopErr error
	var lastRes admm.Residuals
	barrier := 0
	barrierStart := time.Now()
	asyncUpdates := cfg.Obs.Counter(obs.MetricAsyncUpdates, "")
	for totalUpdates < acfg.MaxUpdatesPerRound {
		up := <-updatesCh
		if up.err != nil {
			loopErr = fmt.Errorf("core: TrainAsync: user %d: %w", up.user, up.err)
			break
		}
		totalUpdates++
		asyncUpdates.Inc()
		// Keep only the newest solution per device between barriers: a
		// fast device re-solving against an unchanged consensus refines,
		// not multiplies, its contribution (this is what keeps the
		// stale-synchronous scheme stable where naive per-arrival dual
		// accumulation diverges).
		fresh[up.user] = up
		if len(fresh) < acfg.Barrier {
			continue
		}

		// Barrier fold: the z-update runs over every device's freshest
		// solution (stale ones participate with their standing x and u —
		// bounded staleness) and the dual updates touch only this
		// barrier's fresh participants, exactly the sync rule restricted
		// to them. The algebra is admm.AsyncFold, unweighted here.
		entries := make([]admm.FoldEntry, 0, len(fresh))
		for t, f := range fresh {
			entries = append(entries, admm.FoldEntry{User: t, X: f.x})
		}
		st.mu.Lock()
		res, contributors := st.fold.Fold(entries)
		st.mu.Unlock()
		fresh = make(map[int]asyncUpdate, tCount)
		everyoneReported = everyoneReported || contributors == tCount
		lastRes = res
		if r := cfg.Obs; r != nil {
			admm.ObserveRound(r, barrier, barrierStart, lastRes)
			barrier++
			barrierStart = time.Now()
		}

		if everyoneReported &&
			res.Primal <= math.Sqrt(float64(tCount))*acfg.EpsAbs &&
			res.Dual <= acfg.EpsAbs {
			break
		}
	}
	close(stop)
	// Drain any in-flight sends so worker goroutines can exit.
	go func() {
		for range updatesCh {
		}
	}()
	wg.Wait()
	close(updatesCh)
	if loopErr != nil {
		return nil, 0, totalUpdates, 0, lastRes, loopErr
	}

	st.mu.Lock()
	z := st.fold.Z.Clone()
	us := st.fold.Us
	st.mu.Unlock()
	// Final synchronous sweep: every device re-solves against the settled
	// consensus so the personalized hyperplanes (and the objective) are
	// consistent with z, not with whatever stale snapshot a device last
	// saw mid-flight. These solves are not folded into the consensus, so
	// they count under their own metric, not async_updates_total.
	sweepSolves := 0
	sweepCounter := cfg.Obs.Counter(obs.MetricAsyncSweepSolves, "")
	obj := z.SquaredNorm()
	lambdaOverT := cfg.Lambda / float64(tCount)
	for t, wk := range workers {
		_, v, xi, err := wk.Solve(z, us[t], acfg.Rho)
		if err != nil {
			return nil, 0, totalUpdates, sweepSolves, lastRes, fmt.Errorf("core: TrainAsync: final sweep user %d: %w", t, err)
		}
		obj += lambdaOverT*v.SquaredNorm() + xi
		sweepSolves++
		sweepCounter.Inc()
	}
	if math.IsNaN(obj) {
		return nil, 0, totalUpdates, sweepSolves, lastRes, errors.New("core: TrainAsync: objective diverged")
	}
	return z, obj, totalUpdates, sweepSolves, lastRes, nil
}
