package core

import (
	"errors"
	"math"
	"testing"

	"plos/internal/mat"
	"plos/internal/rng"
)

// synthUser generates one user's 2-d two-Gaussian dataset rotated by theta,
// with the first `labeled` samples carrying labels. Returns the data and
// the full ground truth (including the unlabeled tail).
func synthUser(g *rng.RNG, perClass, labeled int, theta float64) (UserData, []float64) {
	rot := rng.Rotation2D(theta)
	n := 2 * perClass
	x := mat.NewMatrix(n, 2)
	truth := make([]float64, n)
	// Interleave classes so any labeled prefix contains both classes.
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		base := mat.Vector{cls * 4, cls * 4}
		base[0] += g.Norm() * 1.2
		base[1] += g.Norm() * 1.2
		p := rot.MulVec(base)
		x.Set(i, 0, p[0])
		x.Set(i, 1, p[1])
		truth[i] = cls
	}
	return UserData{X: x, Y: truth[:labeled]}, truth
}

func userAccuracy(m *Model, t int, u UserData, truth []float64) float64 {
	correct := 0
	for i := 0; i < u.X.Rows; i++ {
		if m.PredictUser(t, u.X.Row(i)) == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(u.X.Rows)
}

func TestValidateUsers(t *testing.T) {
	good := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	tests := []struct {
		name  string
		users []UserData
		want  error
	}{
		{"no users", nil, ErrNoUsers},
		{"empty user", []UserData{{X: mat.NewMatrix(0, 2)}}, ErrEmptyUser},
		{"nil matrix", []UserData{{X: nil}}, ErrEmptyUser},
		{"dim mismatch", []UserData{{X: good}, {X: mat.FromRows([][]float64{{1}})}}, ErrDimMismatch},
		{"too many labels", []UserData{{X: good, Y: []float64{1, -1, 1}}}, ErrTooManyLabels},
		{"bad label", []UserData{{X: good, Y: []float64{0}}}, ErrBadLabel},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := validateUsers(tc.users)
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
	if dim, err := validateUsers([]UserData{{X: good, Y: []float64{1, -1}}}); err != nil || dim != 2 {
		t.Errorf("valid input: dim=%d err=%v", dim, err)
	}
}

func TestCentralizedLearnsSharedBoundary(t *testing.T) {
	g := rng.New(1)
	var users []UserData
	var truths [][]float64
	for i := 0; i < 3; i++ {
		labeled := 8
		if i == 2 {
			labeled = 0 // zero-label user benefits from the others
		}
		u, truth := synthUser(g.SplitN("user", i), 20, labeled, 0)
		users = append(users, u)
		truths = append(truths, truth)
	}
	m, info, err := TrainCentralized(users, Config{Lambda: 100, Cl: 1, Cu: 0.2, Seed: 1})
	if err != nil {
		t.Fatalf("TrainCentralized: %v", err)
	}
	if m.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", m.NumUsers())
	}
	for i, u := range users {
		if acc := userAccuracy(m, i, u, truths[i]); acc < 0.9 {
			t.Errorf("user %d accuracy = %v (info %+v)", i, acc, info)
		}
	}
	if info.CCCPIterations == 0 || info.Constraints == 0 {
		t.Errorf("suspicious info: %+v", info)
	}
}

func TestCentralizedPersonalizationBeatsGlobalOnHeterogeneousUsers(t *testing.T) {
	// Two users with near-orthogonal boundaries. A single global
	// hyperplane cannot fit both; personalized ones can.
	g := rng.New(2)
	u0, t0 := synthUser(g.Split("a"), 25, 20, 0)
	u1, t1 := synthUser(g.Split("b"), 25, 20, math.Pi/2)
	users := []UserData{u0, u1}
	truths := [][]float64{t0, t1}

	personalized, _, err := TrainCentralized(users, Config{Lambda: 1, Cl: 1, Cu: 0.2, Seed: 2})
	if err != nil {
		t.Fatalf("personalized: %v", err)
	}
	var accP float64
	for i := range users {
		accP += userAccuracy(personalized, i, users[i], truths[i])
	}
	accP /= 2

	global, _, err := TrainCentralized(users, Config{Lambda: 1e6, Cl: 1, Cu: 0.2, Seed: 2})
	if err != nil {
		t.Fatalf("global: %v", err)
	}
	var accG float64
	for i := range users {
		accG += userAccuracy(global, i, users[i], truths[i])
	}
	accG /= 2

	if accP < accG {
		t.Errorf("personalized acc %v should beat huge-λ acc %v on rotated users", accP, accG)
	}
	if accP < 0.85 {
		t.Errorf("personalized accuracy too low: %v", accP)
	}
}

func TestCentralizedLargeLambdaTiesUsersTogether(t *testing.T) {
	g := rng.New(3)
	u0, _ := synthUser(g.Split("a"), 15, 10, 0)
	u1, _ := synthUser(g.Split("b"), 15, 10, 0.1)
	m, _, err := TrainCentralized([]UserData{u0, u1}, Config{Lambda: 1e6, Cl: 1, Cu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	d01 := mat.Dist2(m.W[0], m.W[1])
	scale := m.W0.Norm2() + 1e-12
	if d01/scale > 0.05 {
		t.Errorf("huge λ should make hyperplanes nearly equal: rel dist %v", d01/scale)
	}
}

func TestCentralizedObjectiveHistoryDecreases(t *testing.T) {
	g := rng.New(4)
	var users []UserData
	for i := 0; i < 3; i++ {
		u, _ := synthUser(g.SplitN("u", i), 15, 6, float64(i)*0.3)
		users = append(users, u)
	}
	_, info, err := TrainCentralized(users, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(info.ObjectiveHistory); k++ {
		prev, cur := info.ObjectiveHistory[k-1], info.ObjectiveHistory[k]
		if cur > prev+1e-2*(1+math.Abs(prev)) {
			t.Errorf("CCCP objective increased at round %d: %v -> %v", k, prev, cur)
		}
	}
}

func TestCentralizedAllUnlabeledWithFallbackInit(t *testing.T) {
	// No user provides labels: PLOS degrades to joint max-margin
	// clustering with the variance-axis init. It must run and produce a
	// nontrivial split.
	g := rng.New(5)
	u0, t0 := synthUser(g.Split("a"), 20, 0, 0)
	u1, _ := synthUser(g.Split("b"), 20, 0, 0.2)
	m, _, err := TrainCentralized([]UserData{u0, u1}, Config{BalanceGuard: true})
	if err != nil {
		t.Fatalf("TrainCentralized: %v", err)
	}
	// Clustering accuracy up to label flip.
	correct := 0
	for i := 0; i < u0.X.Rows; i++ {
		if m.PredictUser(0, u0.X.Row(i)) == t0[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(u0.X.Rows)
	if acc < 0.5 {
		acc = 1 - acc
	}
	if acc < 0.8 {
		t.Errorf("clustering accuracy = %v", acc)
	}
}

func TestModelPredictGlobal(t *testing.T) {
	m := &Model{W0: mat.Vector{1, 0}, W: []mat.Vector{{0, 1}}}
	if m.PredictGlobal(mat.Vector{2, -5}) != 1 {
		t.Error("PredictGlobal should use W0")
	}
	if m.PredictUser(0, mat.Vector{2, -5}) != -1 {
		t.Error("PredictUser should use W[t]")
	}
	if m.ScoreUser(0, mat.Vector{0, 3}) != 3 {
		t.Error("ScoreUser should return the raw margin")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Lambda != 100 || c.Cl != 1 || c.Cu != 0.2 {
		t.Errorf("defaults: %+v", c)
	}
	neg := Config{Cu: -1}.withDefaults()
	if neg.Cu != 0 {
		t.Errorf("negative Cu should disable the unlabeled term, got %v", neg.Cu)
	}
	set := Config{Cu: 0.7}.withDefaults()
	if set.Cu != 0.7 {
		t.Errorf("explicit Cu overridden: %v", set.Cu)
	}
}

func TestWorkerSolveBeforeRefreshErrors(t *testing.T) {
	u, _ := synthUser(rng.New(6), 5, 4, 0)
	wk, err := NewWorker(u, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := wk.Solve(mat.NewVector(2), mat.NewVector(2), 1); err == nil {
		t.Error("Solve before RefreshSigns should error")
	}
	wk.RefreshSigns(mat.Vector{1, 0})
	if _, _, _, err := wk.Solve(mat.NewVector(2), mat.NewVector(2), 0); err == nil {
		t.Error("rho <= 0 should error")
	}
}

func TestNewWorkerValidation(t *testing.T) {
	u, _ := synthUser(rng.New(7), 5, 4, 0)
	if _, err := NewWorker(u, 0, Config{}); err == nil {
		t.Error("totalUsers 0 should error")
	}
	if _, err := NewWorker(UserData{X: mat.NewMatrix(0, 2)}, 2, Config{}); err == nil {
		t.Error("empty data should error")
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	g := rng.New(8)
	var users []UserData
	var truths [][]float64
	for i := 0; i < 4; i++ {
		labeled := 10
		if i >= 2 {
			labeled = 0
		}
		u, truth := synthUser(g.SplitN("u", i), 15, labeled, float64(i)*0.15)
		users = append(users, u)
		truths = append(truths, truth)
	}
	cfg := Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 8}
	cm, _, err := TrainCentralized(users, cfg)
	if err != nil {
		t.Fatalf("centralized: %v", err)
	}
	dm, dinfo, err := TrainDistributed(users, cfg, DistConfig{})
	if err != nil {
		t.Fatalf("distributed: %v", err)
	}
	if dinfo.ADMMIterations == 0 {
		t.Error("expected ADMM iterations > 0")
	}
	// Paper Fig. 11: accuracy difference close to zero.
	var accC, accD float64
	for i := range users {
		accC += userAccuracy(cm, i, users[i], truths[i])
		accD += userAccuracy(dm, i, users[i], truths[i])
	}
	accC /= float64(len(users))
	accD /= float64(len(users))
	if math.Abs(accC-accD) > 0.08 {
		t.Errorf("centralized acc %v vs distributed %v: gap too large", accC, accD)
	}
	if accD < 0.85 {
		t.Errorf("distributed accuracy = %v", accD)
	}
}

func TestDistributedParallelMatchesSerial(t *testing.T) {
	g := rng.New(9)
	var users []UserData
	for i := 0; i < 3; i++ {
		u, _ := synthUser(g.SplitN("u", i), 10, 6, 0)
		users = append(users, u)
	}
	cfg := Config{Seed: 9}
	serial, _, err := TrainDistributed(users, cfg, DistConfig{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := TrainDistributed(users, cfg, DistConfig{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.W0.Equal(parallel.W0, 1e-6) {
		t.Errorf("parallel w0 drifted: %v vs %v", parallel.W0, serial.W0)
	}
}

func TestBalanceGuardPreventsCollapse(t *testing.T) {
	// A zero-label user whose initial hyperplane puts everything on one
	// side: with the guard, signs must stay mixed.
	g := rng.New(10)
	u, _ := synthUser(g, 10, 0, 0)
	wk, err := NewWorker(u, 1, Config{BalanceGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	// An init far from the data: every margin positive.
	w0 := mat.Vector{0, 0}
	wk.w = mat.Vector{1e-9, 1e-9} // sign(w·x) same for nearly all points? not guaranteed;
	// use an explicit one-sided reference instead:
	wk.w = mat.Vector{0, 0}
	wk.RefreshSigns(w0)
	pos, neg := 0, 0
	for _, s := range wk.signs {
		if s > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("balance guard failed: pos=%d neg=%d", pos, neg)
	}
}

func TestCuDisabledIgnoresUnlabeled(t *testing.T) {
	// With Cu < 0 the unlabeled tail must have zero weight: adding wild
	// unlabeled outliers must not change the model.
	g := rng.New(11)
	u, _ := synthUser(g, 10, 20, 0) // fully labeled
	base, _, err := TrainCentralized([]UserData{u}, Config{Cu: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Append unlabeled garbage.
	rows := [][]float64{}
	for i := 0; i < u.X.Rows; i++ {
		rows = append(rows, u.X.Row(i).Clone())
	}
	rows = append(rows, []float64{1e3, -1e3}, []float64{-1e3, 1e3})
	u2 := UserData{X: mat.FromRows(rows), Y: u.Y}
	poisoned, _, err := TrainCentralized([]UserData{u2}, Config{Cu: -1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The per-sample weights Cl/m_t change with m_t, so the hyperplanes
	// differ slightly — but every prediction on the original samples must
	// be unchanged, since zero-weight outliers carry no loss.
	for i := 0; i < u.X.Rows; i++ {
		if base.PredictUser(0, u.X.Row(i)) != poisoned.PredictUser(0, u.X.Row(i)) {
			t.Fatalf("Cu<0 training changed prediction for sample %d", i)
		}
	}
}

func TestWarmWorkingSetsStillAccurate(t *testing.T) {
	g := rng.New(12)
	var users []UserData
	var truths [][]float64
	for i := 0; i < 3; i++ {
		u, truth := synthUser(g.SplitN("u", i), 15, 8, 0)
		users = append(users, u)
		truths = append(truths, truth)
	}
	m, _, err := TrainCentralized(users, Config{WarmWorkingSets: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range users {
		if acc := userAccuracy(m, i, users[i], truths[i]); acc < 0.9 {
			t.Errorf("warm-set user %d accuracy = %v", i, acc)
		}
	}
}

// TestCentralizedNearOptimalObjective validates the full solver stack
// (CCCP + cutting plane + dual recovery) against direct numerical descent:
// random feasible perturbations of the returned hyperplanes must not
// improve the CCCP-linearized objective of Eq. (4) by more than the
// cutting-plane tolerance.
func TestCentralizedNearOptimalObjective(t *testing.T) {
	g := rng.New(20)
	var users []UserData
	for i := 0; i < 2; i++ {
		u, _ := synthUser(g.SplitN("u", i), 8, 6, 0.2*float64(i))
		users = append(users, u)
	}
	cfg := Config{Lambda: 10, Cl: 1, Cu: 0.2, Seed: 20, Epsilon: 1e-4}
	m, _, err := TrainCentralized(users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tCount := len(users)
	// Freeze the CCCP signs at the returned solution, then evaluate the
	// convexified objective of Eq. (4).
	signs := make([][]float64, tCount)
	for ti, u := range users {
		eff := make([]float64, u.NumSamples())
		copy(eff, u.Y)
		for i := u.NumLabeled(); i < u.NumSamples(); i++ {
			eff[i] = m.PredictUser(ti, u.X.Row(i))
		}
		signs[ti] = eff
	}
	objective := func(w0 mat.Vector, w []mat.Vector) float64 {
		obj := w0.SquaredNorm()
		for ti, u := range users {
			diff := mat.SubVec(w[ti], w0)
			obj += cfg.Lambda / float64(tCount) * diff.SquaredNorm()
			mSamples := float64(u.NumSamples())
			for i := 0; i < u.NumSamples(); i++ {
				weight := cfg.Cu
				if i < u.NumLabeled() {
					weight = cfg.Cl
				}
				if h := 1 - signs[ti][i]*w[ti].Dot(u.X.Row(i)); h > 0 {
					obj += weight / mSamples * h
				}
			}
		}
		return obj
	}
	base := objective(m.W0, m.W)
	pg := rng.New(21)
	for trial := 0; trial < 200; trial++ {
		w0 := m.W0.Clone()
		ws := make([]mat.Vector, tCount)
		scale := 0.3 * pg.Float64()
		for j := range w0 {
			w0[j] += pg.Norm() * scale
		}
		for ti := range ws {
			ws[ti] = m.W[ti].Clone()
			for j := range ws[ti] {
				ws[ti][j] += pg.Norm() * scale
			}
		}
		if objective(w0, ws) < base-0.02*(1+base) {
			t.Fatalf("perturbation %d improved the objective: %v -> %v",
				trial, base, objective(w0, ws))
		}
	}
}
