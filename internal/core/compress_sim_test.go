package core

import (
	"math"
	"testing"

	"plos/internal/compress"
	"plos/internal/har"
	"plos/internal/rng"
)

// fig5Users builds a small HAR cohort shaped like the paper's Fig. 5
// workload: dim-wide HAR-like features with a mix of half-labeled and fully
// unlabeled devices.
func fig5Users(t *testing.T, seed int64, n, perClass, dim int) []UserData {
	t.Helper()
	ds, err := har.Generate(har.Config{Users: n, PerClass: perClass, Dim: dim}, rng.New(seed))
	if err != nil {
		t.Fatalf("har.Generate: %v", err)
	}
	users := make([]UserData, n)
	for i, u := range ds.Users {
		labeled := u.X.Rows / 2
		if i%3 == 2 {
			labeled = 0
		}
		users[i] = UserData{X: u.X, Y: append([]float64(nil), u.Truth[:labeled]...)}
	}
	return users
}

func simCompress(t *testing.T, spec string) compress.Config {
	t.Helper()
	c, err := compress.Parse(spec)
	if err != nil {
		t.Fatalf("compress.Parse(%q): %v", spec, err)
	}
	return c
}

// simTrainCfg caps the solver loops so six full training runs stay in test
// budget; both the dense and compressed runs use the same caps, so the
// objective comparison is apples to apples.
func simTrainCfg(seed int64) (Config, DistConfig) {
	return Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: seed,
			MaxCCCPIter: 4, MaxCutIter: 20, QPMaxIter: 800},
		DistConfig{MaxADMMIter: 30, EpsAbs: 1e-2}
}

func sameVecs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompressSimDeterministicAcrossWorkers: the error-feedback simulation
// keeps the bit-identical-across-worker-counts contract — over seeds
// {1,2,3}, workers 1 and 8 produce the same model, the same byte totals,
// and the same residual norm. The per-user encoder/decoder state is
// index-addressed and touched by exactly one Solve per ADMM round, so the
// schedule must not leak into it.
func TestCompressSimDeterministicAcrossWorkers(t *testing.T) {
	ccfg := simCompress(t, "q8,topk:0.75")
	for _, seed := range []int64{1, 2, 3} {
		users := fig5Users(t, seed, 5, 6, 120)
		cfg, dcfg := simTrainCfg(seed)
		dcfg.Compress = ccfg

		d1 := dcfg
		d1.Workers = 1
		m1, i1, err := TrainDistributed(users, cfg, d1)
		if err != nil {
			t.Fatalf("seed %d workers 1: %v", seed, err)
		}
		d8 := dcfg
		d8.Workers = 8
		m8, i8, err := TrainDistributed(users, cfg, d8)
		if err != nil {
			t.Fatalf("seed %d workers 8: %v", seed, err)
		}
		if !sameVecs(m1.W0, m8.W0) {
			t.Errorf("seed %d: w0 differs between workers 1 and 8", seed)
		}
		for u := range users {
			if !sameVecs(m1.W[u], m8.W[u]) {
				t.Errorf("seed %d user %d: hyperplane differs between workers 1 and 8", seed, u)
			}
		}
		if i1.CommRawBytes != i8.CommRawBytes || i1.CommCompBytes != i8.CommCompBytes {
			t.Errorf("seed %d: byte totals differ: (%d,%d) vs (%d,%d)",
				seed, i1.CommRawBytes, i1.CommCompBytes, i8.CommRawBytes, i8.CommCompBytes)
		}
		if i1.CompressEFNorm != i8.CompressEFNorm {
			t.Errorf("seed %d: EF norm differs: %v vs %v", seed, i1.CompressEFNorm, i8.CompressEFNorm)
		}

		// The residual accumulators are bounded: error feedback carries at
		// most what recent rounds declined to send, not a growing backlog.
		if !(i1.CompressEFNorm > 0) || math.IsInf(i1.CompressEFNorm, 0) || math.IsNaN(i1.CompressEFNorm) {
			t.Errorf("seed %d: EF norm = %v, want finite positive", seed, i1.CompressEFNorm)
		}
		if i1.CompressEFNorm > 5 {
			t.Errorf("seed %d: EF norm = %v, residuals not bounded", seed, i1.CompressEFNorm)
		}
		if i1.CommRawBytes == 0 || i1.CommCompBytes == 0 || i1.CommCompBytes*4 > i1.CommRawBytes {
			t.Errorf("seed %d: raw=%d comp=%d, want >=4x payload savings",
				seed, i1.CommRawBytes, i1.CommCompBytes)
		}
	}
}

// TestCompressSimObjectiveNearDense: error feedback drives the compressed
// run's final objective to within a pinned ε (5% relative) of the dense
// run on the Fig. 5-style workload, while a dense run reports zero
// compression stats.
func TestCompressSimObjectiveNearDense(t *testing.T) {
	ccfg := simCompress(t, "q8,topk:0.75")
	for _, seed := range []int64{1, 2, 3} {
		users := fig5Users(t, seed, 5, 6, 120)
		cfg, dcfg := simTrainCfg(seed)

		_, dense, err := TrainDistributed(users, cfg, dcfg)
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		if dense.CommRawBytes != 0 || dense.CommCompBytes != 0 || dense.CompressEFNorm != 0 {
			t.Errorf("seed %d: dense run reports compression stats (%d, %d, %v)",
				seed, dense.CommRawBytes, dense.CommCompBytes, dense.CompressEFNorm)
		}
		dcfg.Compress = ccfg
		_, comp, err := TrainDistributed(users, cfg, dcfg)
		if err != nil {
			t.Fatalf("seed %d compressed: %v", seed, err)
		}
		gap := math.Abs(comp.Objective - dense.Objective)
		rel := gap / math.Max(1e-9, math.Abs(dense.Objective))
		t.Logf("seed %d: dense obj %.6f, compressed obj %.6f, rel gap %.4f, EF %.4f, bytes %d -> %d",
			seed, dense.Objective, comp.Objective, rel, comp.CompressEFNorm,
			comp.CommRawBytes, comp.CommCompBytes)
		if rel > 0.05 {
			t.Errorf("seed %d: compressed objective %v vs dense %v (rel gap %v > 0.05)",
				seed, comp.Objective, dense.Objective, rel)
		}
	}
}

// TestCompressSimRejectsBadConfig: an invalid width never reaches the
// encoder — Validate gates the simulation.
func TestCompressSimRejectsBadConfig(t *testing.T) {
	users := fig5Users(t, 1, 2, 4, 8)
	bad := compress.Config{Quant: 7}
	if _, _, err := TrainDistributed(users, Config{Seed: 1}, DistConfig{Compress: bad}); err == nil {
		t.Fatal("want error for invalid quant width")
	}
}
