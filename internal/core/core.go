package core

import (
	"errors"
	"fmt"

	"plos/internal/mat"
	"plos/internal/obs"
)

// UserData is one user's dataset: the rows of X are the samples x_it, and
// the first len(Y) rows are labeled with Y values in {-1, +1}. A user with
// len(Y) == 0 contributes only unlabeled structure (l_t = 0 in the paper).
type UserData struct {
	X *mat.Matrix
	Y []float64
}

// NumLabeled returns l_t.
func (u UserData) NumLabeled() int { return len(u.Y) }

// NumSamples returns m_t.
func (u UserData) NumSamples() int { return u.X.Rows }

// Config holds the PLOS hyperparameters and solver knobs. Zero fields are
// replaced by defaults (see withDefaults); the paper selects Lambda, Cl, Cu
// by leave-one-out cross-validation (internal/eval provides the harness).
type Config struct {
	// Lambda controls personalization: large values pull every w_t toward
	// w0 ("All"-like), small values let users rely on their own data
	// ("Single"-like). Paper Fig. 7 peaks near log10(λ)=2.
	Lambda float64
	// Cl and Cu weight the losses of labeled and unlabeled samples.
	// Cu == 0 selects the default (0.2); pass any negative value to train
	// with the unlabeled term disabled entirely (the Cu=0 ablation).
	Cl, Cu float64
	// Epsilon is the cutting-plane tolerance ε of Eq. (15).
	Epsilon float64
	// CCCPTol is the relative objective-change threshold ending CCCP.
	CCCPTol float64
	// MaxCCCPIter and MaxCutIter bound the outer loops.
	MaxCCCPIter int
	MaxCutIter  int
	// QPMaxIter bounds the inner projected-gradient QP iterations.
	QPMaxIter int
	// WarmWorkingSets keeps each user's Ω_t across CCCP rounds instead of
	// resetting it (the paper's Algorithm 1 resets; warm sets are an
	// ablation that trades fidelity for speed).
	WarmWorkingSets bool
	// BalanceGuard prevents degenerate max-margin clustering for users
	// with no labels: if a CCCP sign refresh would put every unlabeled
	// sample of a zero-label user on one side, the lowest-|margin| half
	// stays on the other side. Off by default (faithful to the paper).
	BalanceGuard bool
	// InitW0 optionally fixes the CCCP starting hyperplane. When nil, w0
	// is initialized by strongly regularized ridge regression toward the
	// pooled labels (falling back to the dominant-variance axis when no
	// labels exist); see initialW0 for why not a max-margin init.
	InitW0 mat.Vector
	// Workers bounds the solver's per-user fan-out (constraint search,
	// Gram construction): 0 means runtime.GOMAXPROCS(0), 1 is strictly
	// sequential. Any value yields bit-identical models — all reductions
	// are index-ordered (see internal/parallel).
	Workers int
	// RebuildGram disables the incremental restricted-QP cache (DESIGN.md
	// §11): every cut round rebuilds the dual Gram, linear term and
	// Gershgorin bound from scratch instead of growing the cached ones.
	// Output is bit-identical either way (test-pinned); this knob exists
	// for the property tests and the BenchmarkCutRound before/after.
	RebuildGram bool
	// Seed drives the deterministic internal randomness.
	Seed int64
	// Obs, when non-nil, receives solver metrics and phase spans
	// (internal/obs). Strictly observational: the trained model is
	// bit-identical with observation on or off.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Lambda <= 0 {
		c.Lambda = 100
	}
	if c.Cl <= 0 {
		c.Cl = 1
	}
	if c.Cu < 0 {
		c.Cu = 0
	} else if c.Cu == 0 {
		c.Cu = 0.2
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-3
	}
	if c.CCCPTol <= 0 {
		c.CCCPTol = 1e-3
	}
	if c.MaxCCCPIter <= 0 {
		c.MaxCCCPIter = 20
	}
	if c.MaxCutIter <= 0 {
		c.MaxCutIter = 60
	}
	if c.QPMaxIter <= 0 {
		c.QPMaxIter = 5000
	}
	return c
}

// Model is a trained PLOS model: the global hyperplane and one personalized
// hyperplane per training user (same order as the training slice).
type Model struct {
	W0 mat.Vector
	W  []mat.Vector
}

// PredictUser classifies x with user t's personalized hyperplane.
func (m *Model) PredictUser(t int, x mat.Vector) float64 {
	if m.W[t].Dot(x) >= 0 {
		return 1
	}
	return -1
}

// ScoreUser returns user t's signed margin on x.
func (m *Model) ScoreUser(t int, x mat.Vector) float64 { return m.W[t].Dot(x) }

// PredictGlobal classifies x with the shared hyperplane w0 — the model
// applied to a user unseen at training time (cold start).
func (m *Model) PredictGlobal(x mat.Vector) float64 {
	if m.W0.Dot(x) >= 0 {
		return 1
	}
	return -1
}

// NumUsers returns the number of personalized hyperplanes.
func (m *Model) NumUsers() int { return len(m.W) }

// TrainInfo reports solver diagnostics common to both training modes.
type TrainInfo struct {
	CCCPIterations int
	CCCPConverged  bool
	Objective      float64
	CutRounds      int // total cutting-plane rounds across CCCP rounds
	Constraints    int // final total working-set size across users
	QPIterations   int // cumulative inner QP iterations (centralized)
	ADMMIterations int // cumulative ADMM iterations (distributed); folded solves only for the async trainer
	// AsyncSweepSolves counts the final-synchronous-sweep re-solves that
	// close each asynchronous CCCP round — bookkeeping solves that are
	// never folded into the consensus, reported separately so
	// ADMMIterations means the same thing it does for the synchronous
	// trainer. Zero outside TrainAsync.
	AsyncSweepSolves int
	// ADMMPrimal and ADMMDual are the residuals of the final ADMM round
	// (paper Eq. 24); zero for the centralized trainer.
	ADMMPrimal, ADMMDual float64
	ObjectiveHistory     []float64
	// CommRawBytes and CommCompBytes account the parameter payloads that
	// crossed the simulated server↔device boundary when DistConfig.Compress
	// is enabled: the dense-equivalent bytes and the codec-v4 encoded bytes.
	// Both are zero when compression is off (and for the centralized
	// trainer, where nothing crosses a boundary).
	CommRawBytes  int64
	CommCompBytes int64
	// CompressEFNorm is the L2 norm across users and slots of the
	// error-feedback residuals left in the encoders when training ends — a
	// bounded, deterministic measure of the information compression is
	// still holding back.
	CompressEFNorm float64
}

// Validation errors.
var (
	ErrNoUsers       = errors.New("core: no users")
	ErrEmptyUser     = errors.New("core: user has no samples")
	ErrDimMismatch   = errors.New("core: users have inconsistent feature dimensions")
	ErrBadLabel      = errors.New("core: labels must be -1 or +1")
	ErrTooManyLabels = errors.New("core: user has more labels than samples")
)

func validateUsers(users []UserData) (dim int, err error) {
	if len(users) == 0 {
		return 0, ErrNoUsers
	}
	dim = -1
	for t, u := range users {
		if u.X == nil || u.X.Rows == 0 {
			return 0, fmt.Errorf("%w (user %d)", ErrEmptyUser, t)
		}
		if dim == -1 {
			dim = u.X.Cols
		} else if u.X.Cols != dim {
			return 0, fmt.Errorf("%w: user %d has %d features, user 0 has %d",
				ErrDimMismatch, t, u.X.Cols, dim)
		}
		if len(u.Y) > u.X.Rows {
			return 0, fmt.Errorf("%w: user %d has %d labels for %d samples",
				ErrTooManyLabels, t, len(u.Y), u.X.Rows)
		}
		for i, y := range u.Y {
			if y != 1 && y != -1 {
				return 0, fmt.Errorf("%w: user %d sample %d has label %g", ErrBadLabel, t, i, y)
			}
		}
	}
	return dim, nil
}

// initialW0 produces the CCCP starting point: a strongly regularized ridge
// regression toward the pooled labels when any exist, otherwise a
// deterministic unit vector along the pooled data's dominant coordinate.
//
// Ridge rather than a pooled SVM because the init's only role is the
// polarity of the CCCP sign freeze, and at the paper's label scarcity
// (a handful of labels, 10% of them flipped) a max-margin fit happily
// inverts to satisfy one mislabeled outlier, after which the frozen
// unlabeled signs lock the inversion in. Heavily regularized ridge tends to
// the class-centroid difference, which a single flipped label cannot flip.
func initialW0(users []UserData, dim int, cfg Config) mat.Vector {
	if cfg.InitW0 != nil {
		return cfg.InitW0.Clone()
	}
	var rows int
	for _, u := range users {
		rows += len(u.Y)
	}
	if rows > 0 {
		x := mat.NewMatrix(rows, dim)
		y := make([]float64, 0, rows)
		at := 0
		for _, u := range users {
			for i := range u.Y {
				copy(x.Data[at*dim:(at+1)*dim], u.X.Data[i*u.X.Cols:(i+1)*u.X.Cols])
				at++
			}
			y = append(y, u.Y...)
		}
		if w, err := ridgeToward(x, y); err == nil {
			return w
		}
	}
	// No usable labels: deterministic fallback — the axis with the largest
	// pooled variance, so sign(w·x) splits the data nontrivially.
	varByDim := make(mat.Vector, dim)
	mean := make(mat.Vector, dim)
	var n float64
	for _, u := range users {
		for i := 0; i < u.X.Rows; i++ {
			mean.Add(u.X.Row(i))
			n++
		}
	}
	mean.Scale(1 / n)
	for _, u := range users {
		for i := 0; i < u.X.Rows; i++ {
			row := u.X.Row(i)
			for j := 0; j < dim; j++ {
				d := row[j] - mean[j]
				varByDim[j] += d * d
			}
		}
	}
	_, j := varByDim.Max()
	w := mat.NewVector(dim)
	if j >= 0 {
		w[j] = 1
	}
	return w
}

// ridgeToward solves the strongly regularized least squares
// (XᵀX + εI) w = Xᵀy with ε = trace(XᵀX)/d, a noise-robust direction
// between the class-centroid difference (ε → ∞) and ordinary least squares.
func ridgeToward(x *mat.Matrix, y []float64) (mat.Vector, error) {
	d := x.Cols
	gram := mat.NewMatrix(d, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for a := 0; a < d; a++ {
			if row[a] == 0 {
				continue
			}
			ga := gram.Data[a*d:]
			for b := 0; b < d; b++ {
				ga[b] += row[a] * row[b]
			}
		}
	}
	eps := gram.Trace()/float64(d) + 1e-9
	for a := 0; a < d; a++ {
		gram.Data[a*d+a] += eps
	}
	rhs := mat.NewVector(d)
	for i := 0; i < x.Rows; i++ {
		rhs.AddScaled(y[i], x.Row(i))
	}
	w, err := mat.SolveSPD(gram, rhs)
	if err != nil {
		return nil, err
	}
	return w, nil
}
