package core

import (
	"math"
	"testing"

	"plos/internal/mat"
	"plos/internal/rng"
)

func TestLocalInitWithLabels(t *testing.T) {
	u, _ := synthUser(rng.New(1), 15, 10, 0)
	w, weight := LocalInit(u, Config{})
	if weight != 10 {
		t.Errorf("weight = %v, want labeled count 10", weight)
	}
	if len(w) != 2 {
		t.Fatalf("dim = %d", len(w))
	}
	// The ridge direction must point toward the +1 class at (4,4).
	if w.Dot(mat.Vector{4, 4}) <= 0 {
		t.Errorf("init direction inverted: %v", w)
	}
}

func TestLocalInitSingleClassFallsBack(t *testing.T) {
	u, _ := synthUser(rng.New(2), 10, 0, 0)
	u.Y = []float64{1, 1} // single class → variance-axis fallback
	w, weight := LocalInit(u, Config{})
	if weight != 0 {
		t.Errorf("single-class weight = %v, want 0", weight)
	}
	if math.Abs(w.Norm2()-1) > 1e-9 {
		t.Errorf("fallback axis should be unit length: %v", w.Norm2())
	}
}

func TestLocalInitNoLabels(t *testing.T) {
	u, _ := synthUser(rng.New(3), 10, 0, 0)
	w, weight := LocalInit(u, Config{})
	if weight != 0 || w.Norm2() == 0 {
		t.Errorf("no-label init: w=%v weight=%v", w, weight)
	}
}

func TestFederatedInit(t *testing.T) {
	ws := []mat.Vector{{1, 0}, {0, 1}, {9, 9}}
	// Weighted average over positive-weight entries only.
	got := FederatedInit(ws, []float64{1, 3, 0})
	want := mat.Vector{0.25, 0.75}
	if !got.Equal(want, 1e-12) {
		t.Errorf("FederatedInit = %v, want %v", got, want)
	}
	// All-zero weights: plain average of everything.
	uniform := FederatedInit(ws, []float64{0, 0, 0})
	if !uniform.Equal(mat.Vector{10.0 / 3, 10.0 / 3}, 1e-12) {
		t.Errorf("uniform FederatedInit = %v", uniform)
	}
	if FederatedInit(nil, nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestRidgeTowardRobustToFlippedLabel(t *testing.T) {
	// Six points, one flipped deep in the wrong class: the ridge direction
	// must keep the true polarity (the property that motivated replacing
	// the SVM init — see DESIGN.md §6).
	x := mat.FromRows([][]float64{
		{4, 4}, {5, 3}, {-4, -4}, {-5, -3}, {-4, -5},
		{-4.5, -4.5}, // actually negative-region...
	})
	y := []float64{1, 1, -1, -1, -1, 1} // last label flipped
	w, err := ridgeToward(x, y)
	if err != nil {
		t.Fatalf("ridgeToward: %v", err)
	}
	if w.Dot(mat.Vector{4, 4}) <= 0 {
		t.Errorf("flipped label inverted the ridge direction: %v", w)
	}
}
