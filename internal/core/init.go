package core

import (
	"plos/internal/mat"
)

// LocalInit computes a user's device-side contribution to the federated
// CCCP initialization: a hyperplane trained purely on local data, plus the
// weight it should carry in the server-side average.
//
// A user whose labeled prefix contains both classes returns a strongly
// regularized local ridge hyperplane (see initialW0 for why ridge, not
// max-margin) weighted by the labeled count; any other user returns its
// dominant local variance axis with weight zero (used by the server only
// when no user has usable labels). No raw data leaves the device either
// way — this mirrors how the paper's distributed design keeps Algorithm 2's
// unspecified w0^(0) initialization privacy-preserving.
func LocalInit(u UserData, cfg Config) (mat.Vector, float64) {
	cfg = cfg.withDefaults()
	lt := u.NumLabeled()
	var pos, neg bool
	for _, y := range u.Y {
		if y > 0 {
			pos = true
		} else {
			neg = true
		}
	}
	if pos && neg {
		x := mat.NewMatrix(lt, u.X.Cols)
		copy(x.Data, u.X.Data[:lt*u.X.Cols])
		if w, err := ridgeToward(x, u.Y); err == nil {
			return w, float64(lt)
		}
	}
	// Variance-axis fallback, unit length.
	dim := u.X.Cols
	mean := mat.NewVector(dim)
	for i := 0; i < u.X.Rows; i++ {
		mean.Add(u.X.Row(i))
	}
	mean.Scale(1 / float64(u.X.Rows))
	variance := mat.NewVector(dim)
	for i := 0; i < u.X.Rows; i++ {
		row := u.X.Row(i)
		for j := 0; j < dim; j++ {
			d := row[j] - mean[j]
			variance[j] += d * d
		}
	}
	_, j := variance.Max()
	w := mat.NewVector(dim)
	if j >= 0 {
		w[j] = 1
	}
	return w, 0
}

// FederatedInit aggregates device contributions into the starting w0: the
// label-weighted average of the labeled users' local hyperplanes, or the
// plain average of the variance axes when no user has labels.
func FederatedInit(ws []mat.Vector, weights []float64) mat.Vector {
	if len(ws) == 0 {
		return nil
	}
	dim := len(ws[0])
	sum := mat.NewVector(dim)
	var total float64
	for i, w := range ws {
		if weights[i] > 0 {
			sum.AddScaled(weights[i], w)
			total += weights[i]
		}
	}
	if total > 0 {
		sum.Scale(1 / total)
		return sum
	}
	for _, w := range ws {
		sum.Add(w)
	}
	sum.Scale(1 / float64(len(ws)))
	return sum
}
