// The sharded serving plane (docs/SHARDING.md): RunAggregator owns the
// global consensus — it folds per-shard ADMM partials in shard order and
// drives the CCCP convergence decisions — while RunShard serves a partition
// of the devices with the same handshake, gather, fault-tolerance, and
// checkpoint machinery as RunServer. Every cross-shard floating-point
// reduction goes through internal/shard, the same helpers a single
// coordinator uses when ServerConfig.ReduceGroups mirrors the shard
// partition, so the two planes are bit-identical by construction.
//
// Shard↔aggregator message flow (one connection per shard, fields reused
// from the device protocol — see the MsgShard* constants in transport):
//
//	shard → agg   shard-hello {shard id, dim, counts, init partials | restore state}
//	agg → shard   shard-hello {global T, hyperparameters}
//	per CCCP round:
//	  agg → shard   shard-round {round, w0, objective of the previous round}
//	  per ADMM iteration:
//	    shard → agg   shard-sum   {Σ(x_t+u_t), live count}
//	    agg → shard   shard-z     {reduced z}
//	    shard → agg   shard-resid {Σ‖x_t−z‖², objective partial}
//	    agg → shard   shard-next | shard-round | shard-done
//	agg → shard   shard-done {final w0, rounds, converged, final objective}
//
// Failure policy (docs/FAULT_TOLERANCE.md): before the round loop both
// sides abort with MsgError. Mid-run the aggregator runs one pump goroutine
// per shard connection, so it is always parked in Recv — a shard can safely
// Send a structured MsgError (shard id + cause code) when it fails locally,
// and the aggregator Sends only to shards whose current reduce leg already
// arrived (those are provably parked in Recv; everyone else is Closed,
// which a rendezvous pipe treats as an unblocking error). A shard that
// errors, lags past AggFTConfig.ReduceTimeout, or loses its link is
// *detached*: its connection is closed, its last partials are reused for up
// to MaxStale reduce iterations, and the run continues while at least
// ShardQuorum shards stay represented. A detached shard recovers by
// restarting from its checkpoint and re-running the restore handshake
// through AggFTConfig.Rejoin; the aggregator fast-forwards it to the
// current round. The zero AggFTConfig reproduces the strict PR 7 plane:
// no deadline, no stale reuse, and any shard failure aborts globally.
package protocol

import (
	"errors"
	"fmt"
	"math"
	"time"

	"plos/internal/admm"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/rng"
	"plos/internal/shard"
	"plos/internal/transport"
)

// ShardConfig configures one shard process of a sharded serving plane.
type ShardConfig struct {
	// Shard is this process's shard index: 0-based, unique per aggregator,
	// and contiguous across the deployment. The aggregator folds shard
	// partials in this order, which is what pins the plane's bit-identity.
	Shard int
	// Core supplies the shard-local knobs (Seed, Obs). The training
	// hyperparameters arrive from the aggregator's hello reply and are
	// forwarded to the devices.
	Core core.Config
	// MinActive and FT form the shard-local fault-tolerance envelope over
	// this shard's devices, with the same semantics as in ServerConfig.
	// FT.Restore resumes this shard from a checkpoint (its own, or one
	// produced by SplitCheckpoint during a rebalance); the aggregator
	// validates that all shards restore the same epoch and global state.
	MinActive int
	FT        FTConfig
}

// AggFTConfig is the shard-tier fault-tolerance envelope — the same knobs
// FTConfig gives the device tier, lifted to whole shards. The zero value
// disables every mechanism and reproduces the strict fail-fast plane
// bit-for-bit.
type AggFTConfig struct {
	// ReduceTimeout bounds how long the aggregator waits for one reduce leg
	// (all live shards' sums, or all live shards' residuals). Shards that
	// miss it are detached: their connection is closed and they must rejoin
	// via checkpoint restore. 0 waits forever (strict lockstep).
	ReduceTimeout time.Duration
	// ShardQuorum is the number of shards that must be represented in every
	// fold (fresh message or stale carry); below it the run aborts with
	// ErrTooFewActive naming the first dead shard. <= 0 requires all shards
	// (strict).
	ShardQuorum int
	// MaxStale is how many consecutive ADMM iterations a detached shard's
	// last partials (consensus sum, primal residual, objective partial) keep
	// being folded before the shard stops being represented. 0 disables
	// stale carry.
	MaxStale int
	// Rejoin delivers checkpoint-restore reconnection attempts from crashed
	// shards (a restore shard-hello read off a fresh connection). Drained at
	// CCCP round boundaries and once more before the final broadcast, so a
	// shard that recovers as training ends still receives the final model;
	// the reply fast-forwards the shard to the current round. May be nil.
	Rejoin <-chan Rejoin
}

// AggConfig configures the top-level aggregator of a sharded serving plane.
// Core and Dist carry the full training configuration — the aggregator is
// the single source of hyperparameters and convergence decisions; shards
// and devices receive them through the handshake.
type AggConfig struct {
	Core core.Config
	Dist core.DistConfig
	// FT configures shard-tier fault tolerance; the zero value disables it.
	FT AggFTConfig
}

// AggResult is the aggregator's view of a finished sharded run. Per-user
// models stay on the shards (see the ServerResult each RunShard returns).
type AggResult struct {
	W0   mat.Vector
	Info core.TrainInfo
	// Users is the global population size T (summed over shard hellos).
	Users int
	// PerShard is the aggregator-side traffic per shard connection, indexed
	// by shard id; Total aggregates them. A shard that rejoined contributes
	// the traffic of every connection it used.
	PerShard []transport.Stats
	Total    transport.Stats
	// ShardCauses[id] is the first fatal failure recorded for shard id
	// (nil for shards that stayed healthy; non-nil for shards that were
	// detached, even if they later rejoined).
	ShardCauses []error
	// Restarts counts shards re-attached through the rejoin handshake.
	Restarts int
}

// Shard-tier MsgError cause codes carried in Message.Labeled: the shard id
// rides in Message.Round (-1 when the aggregator itself originated the
// abort), so plos-trace and the serve layer can name the failing shard.
const (
	shardCauseUnknown = 0
	shardCauseTooFew  = 1
)

// shardErrorMessage encodes a shard-tier abort: Round carries the
// originating shard id, Labeled the cause code, Reason the text.
func shardErrorMessage(id int, err error) transport.Message {
	code := shardCauseUnknown
	if errors.Is(err, ErrTooFewActive) {
		code = shardCauseTooFew
	}
	return transport.Message{Type: transport.MsgError, Round: id, Labeled: code, Reason: err.Error()}
}

// shardErrorCause reconstructs the error a structured shard-tier MsgError
// carries. The result always matches ErrAborted (it crossed the wire), and
// additionally matches the encoded cause (e.g. ErrTooFewActive) so callers
// can errors.Is through the plane.
func shardErrorCause(m transport.Message) error {
	if m.Labeled == shardCauseTooFew {
		if m.Round >= 0 {
			return fmt.Errorf("%w: shard %d: %w: %s", ErrAborted, m.Round, ErrTooFewActive, m.Reason)
		}
		return fmt.Errorf("%w: %w: %s", ErrAborted, ErrTooFewActive, m.Reason)
	}
	if m.Round >= 0 {
		return fmt.Errorf("%w: shard %d: %s", ErrAborted, m.Round, m.Reason)
	}
	return fmt.Errorf("%w: %s", ErrAborted, m.Reason)
}

// RunShard drives one shard of a sharded serving plane: it serves conns
// (this shard's devices) exactly like RunServer, except that every
// cross-user reduction is shipped to the aggregator over agg and the
// CCCP/ADMM control decisions arrive from there. Blocks until the
// aggregator finishes or fails. The returned ServerResult covers this
// shard's devices; W0 is the global model.
func RunShard(agg transport.Conn, conns []transport.Conn, cfg ShardConfig) (*ServerResult, error) {
	if len(conns) == 0 {
		return nil, ErrNoConns
	}
	sCfg := ServerConfig{Core: cfg.Core, MinActive: cfg.MinActive, FT: cfg.FT}
	if sCfg.FT.SessionSeed == 0 {
		// Each shard mints session tokens from its own split of the seed
		// stream so tokens stay unique across the whole deployment — the
		// consistent-hash ring partitions users by token on a rebalance.
		sCfg.FT.SessionSeed = rng.New(cfg.Core.Seed).SplitN("shard-session", cfg.Shard).Int63()
	}
	sCfg = sCfg.withDefaults()

	// Device hellos (or the checkpoint) first: the shard's own hello to the
	// aggregator carries the partition's init partials or restore state.
	var users []*serverUser
	var dim int
	var hello transport.Message
	if ck := sCfg.FT.Restore; ck != nil {
		var err error
		if users, err = matchRestoreConns(conns, ck); err != nil {
			// The aggregator is still blocked in its handshake Recv, so a
			// reasoned reject is safe; it unblocks the sibling shards.
			abortConn(agg, fmt.Sprintf("shard %d failed its restore handshake", cfg.Shard))
			return nil, err
		}
		live := 0
		for _, u := range users {
			if !u.dropped {
				live++
			}
		}
		dim = ck.Dim
		// Labeled 1 flags a restore hello; the aggregator validates that
		// every shard restores the same epoch, w0, and objective history.
		hello = transport.Message{Type: transport.MsgShardHello, Round: cfg.Shard,
			Dim: dim, Users: len(users), Samples: live, Labeled: 1,
			W: ck.W0, V: ck.Objective}
	} else {
		users = make([]*serverUser, len(conns))
		for t, c := range conns {
			users[t] = &serverUser{conn: c}
		}
		var initWs []mat.Vector
		var initWeights []float64
		var err error
		if dim, initWs, initWeights, err = collectHellos(users); err != nil {
			abortConn(agg, fmt.Sprintf("shard %d failed its device handshake", cfg.Shard))
			return nil, err
		}
		p := shard.NewInitPartial(initWs, initWeights, dim)
		hello = transport.Message{Type: transport.MsgShardHello, Round: cfg.Shard,
			Dim: dim, Users: len(users), Samples: len(users),
			W: p.Weighted, U: p.Plain, Xi: p.Weight}
	}
	// Past this point any failure must Close the aggregator connection
	// (never Send: the aggregator may itself be blocked in a Send to this
	// shard, and a rendezvous pipe would deadlock) so the run fails fast
	// everywhere instead of hanging the reduce.
	if err := agg.Send(hello); err != nil {
		abortUsers(users, "aggregator unreachable")
		_ = agg.Close()
		return nil, fmt.Errorf("protocol: shard %d: hello to aggregator: %w", cfg.Shard, err)
	}
	rep, err := agg.Recv()
	if err != nil {
		abortUsers(users, "aggregator lost during handshake")
		_ = agg.Close()
		return nil, fmt.Errorf("protocol: shard %d: aggregator hello reply: %w", cfg.Shard, err)
	}
	if rep.Type == transport.MsgError {
		abortUsers(users, rep.Reason)
		_ = agg.Close()
		return nil, fmt.Errorf("%w: %s", ErrAborted, rep.Reason)
	}
	if rep.Type != transport.MsgShardHello || rep.Config == nil || rep.Users <= 0 {
		abortUsers(users, "malformed aggregator handshake")
		_ = agg.Close()
		return nil, fmt.Errorf("%w: got %v, want shard-hello reply", ErrUnexpectedMsg, rep.Type)
	}

	// Device hello replies carry the *global* T (devices size their λ/T
	// terms with it) and the aggregator's hyperparameters; the telemetry
	// bit is overridden because piggybacks merge at this shard's recorder,
	// not the aggregator's.
	wire := *rep.Config
	wire.Telemetry = cfg.Core.Obs.FlightEnabled()
	var st *serverState
	migrated := 0
	if ck := sCfg.FT.Restore; ck != nil {
		if err := sendRestoreReplies(users, rep.Users, dim, ck.Epoch, &wire, false); err != nil {
			abortUsers(users, "shard handshake failed")
			_ = agg.Close()
			return nil, err
		}
		st = stateFromCheckpoint(sCfg, users, ck)
		// A rejoin reply fast-forwards a restarted shard past the rounds it
		// missed while detached: adopt the aggregator's current w0 and
		// objective history (the aggregator validated that the checkpoint's
		// history is a bitwise prefix before replying).
		if rep.Round > len(st.objHistory) && len(rep.V) == rep.Round && len(rep.W) == dim {
			st.w0 = mat.Vector(rep.W).Clone()
			st.objHistory = append([]float64(nil), rep.V...)
		}
		for _, u := range users {
			if !u.dropped {
				migrated++
			}
		}
	} else {
		needSessions := sCfg.FT.Resume || sCfg.FT.CheckpointPath != ""
		if err := sendHelloReplies(users, rep.Users, dim, &wire, needSessions, sCfg.FT.SessionSeed, false); err != nil {
			abortUsers(users, "shard handshake failed")
			_ = agg.Close()
			return nil, err
		}
		st = newServerState(sCfg, users, dim, mat.NewVector(dim))
	}

	r := cfg.Core.Obs
	r.Counter(obs.MetricTrainRuns, "").Inc()
	r.Gauge(obs.MetricShardDevices, "").Set(float64(len(st.active())))
	if migrated > 0 {
		r.Counter(obs.MetricShardMigrations, "").Add(int64(migrated))
	}
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "shard", Users: len(users)})
	}

	sh := &shardRun{
		st: st, agg: agg, id: cfg.Shard,
		lambdaOverT: wire.Lambda / float64(rep.Users),
		mReduce:     r.Histogram(obs.MetricShardReduceSeconds, ""),
		mBytes:      r.Counter(obs.MetricShardCrossBytesTotal, ""),
	}
	info := core.TrainInfo{}
	done, err := sh.loop(&info)
	if err != nil {
		st.abort(err.Error())
		sh.fatal(err)
		return nil, err
	}
	if len(done.W0) != st.dim {
		err := fmt.Errorf("%w: final w0 has %d entries, dim %d", ErrDimMismatch, len(done.W0), st.dim)
		st.abort(err.Error())
		sh.fatal(err)
		return nil, err
	}
	st.w0 = mat.Vector(done.W0)
	info.CCCPIterations = done.Round
	info.CCCPConverged = done.Users == 1
	info.Objective = done.Xi
	info.ObjectiveHistory = append([]float64(nil), st.objHistory...)
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: info.CCCPConverged,
			Objective: info.Objective, Round: info.CCCPIterations})
	}

	st.broadcast(transport.Message{Type: transport.MsgDone, W0: st.w0})

	tCount := len(st.users)
	res := &ServerResult{
		Model:     &core.Model{W0: st.w0, W: make([]mat.Vector, tCount)},
		Info:      info,
		Dropped:   make([]bool, tCount),
		DropCause: make([]error, tCount),
		PerUser:   make([]transport.Stats, tCount),
	}
	for t, u := range st.users {
		res.Dropped[t] = u.dropped
		res.DropCause[t] = u.cause
		if !u.dropped {
			res.Model.W[t] = u.lastW
		}
		res.PerUser[t] = u.stats()
		res.Total = res.Total.Add(res.PerUser[t])
	}
	return res, nil
}

// shardRun is the per-run state of RunShard's control loop on top of the
// shared serverState.
type shardRun struct {
	st  *serverState
	agg transport.Conn
	id  int
	// lambdaOverT is λ/T with the *global* T — the objective-partial weight
	// every shard and the reference coordinator must agree on.
	lambdaOverT float64
	mReduce     *obs.Histogram
	mBytes      *obs.Counter
}

// errAggLink marks failures of the aggregator link itself, as opposed to
// shard-local failures the aggregator should still be told about.
var errAggLink = errors.New("aggregator link failed")

func (sh *shardRun) aggLost(err error) error {
	return fmt.Errorf("protocol: shard %d: aggregator lost: %w: %w", sh.id, errAggLink, err)
}

// fatal ends the shard's participation after a failure. Locally-originated
// errors (a device quorum abort, a malformed decision) are reported to the
// aggregator as a structured MsgError first — the aggregator's pump is
// always parked in Recv, so the Send cannot deadlock a rendezvous pipe —
// then the link is closed. Failures that arrived *from* the aggregator
// (ErrAborted, a lost link) are not echoed back.
func (sh *shardRun) fatal(err error) {
	if !errors.Is(err, ErrAborted) && !errors.Is(err, errAggLink) {
		_ = sh.agg.Send(shardErrorMessage(sh.id, err))
	}
	_ = sh.agg.Close()
}

// loop processes aggregator decisions until the run ends, returning the
// final shard-done message.
func (sh *shardRun) loop(info *core.TrainInfo) (transport.Message, error) {
	m, err := sh.agg.Recv()
	if err != nil {
		return transport.Message{}, sh.aggLost(err)
	}
	for {
		switch m.Type {
		case transport.MsgShardRound:
			if err := sh.noteObjective(m.Round, m.Xi); err != nil {
				return transport.Message{}, err
			}
			if m, err = sh.round(m.Round, mat.Vector(m.W0), info); err != nil {
				return transport.Message{}, err
			}
		case transport.MsgShardDone:
			if err := sh.noteObjective(m.Round, m.Xi); err != nil {
				return transport.Message{}, err
			}
			return m, nil
		case transport.MsgError:
			return transport.Message{}, shardErrorCause(m)
		default:
			return transport.Message{}, fmt.Errorf("%w: got %v from aggregator", ErrUnexpectedMsg, m.Type)
		}
	}
}

// noteObjective folds the just-completed round's objective (carried on the
// decision message that follows it) into the shard's history, emits the
// round-completion metrics, and writes the due checkpoint. A decision for
// round == len(history) starts the run (or continues a restore) and carries
// nothing to record.
func (sh *shardRun) noteObjective(round int, obj float64) error {
	st := sh.st
	if round == len(st.objHistory) {
		return nil
	}
	if round != len(st.objHistory)+1 {
		return fmt.Errorf("protocol: shard %d: aggregator decision for round %d, but history has %d entries",
			sh.id, round, len(st.objHistory))
	}
	st.objHistory = append(st.objHistory, obj)
	completed := len(st.objHistory)
	if r := st.cfg.Core.Obs; r != nil {
		r.Counter(obs.MetricCCCPIterations, "").Inc()
		r.Gauge(obs.MetricTrainObjective, "").Set(obj)
		if r.FlightEnabled() {
			r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: completed - 1,
				Objective: obj, SignFlips: -1})
		}
	}
	if p := st.cfg.FT.CheckpointPath; p != "" && completed%st.cfg.FT.CheckpointEvery == 0 {
		if err := SaveCheckpoint(p, st.checkpoint(completed)); err != nil {
			return fmt.Errorf("protocol: shard %d: checkpoint after round %d: %w", sh.id, completed-1, err)
		}
		st.mCheckpoints.Inc()
	}
	return nil
}

// round runs one CCCP round on this shard: gather device updates, ship the
// consensus partials, apply the reduced z, until the aggregator ends the
// round. Returns the decision message that ended it (the next shard-round,
// or shard-done).
func (sh *shardRun) round(round int, w0 mat.Vector, info *core.TrainInfo) (transport.Message, error) {
	st := sh.st
	if len(w0) != st.dim {
		return transport.Message{}, fmt.Errorf("protocol: shard %d: round %d w0 has dim %d, want %d",
			sh.id, round, len(w0), st.dim)
	}
	st.epoch = round
	st.w0 = w0
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
	}
	st.drainRejoins()

	parts := st.active()
	if len(parts) == 0 {
		return transport.Message{}, fmt.Errorf("%w: shard %d has no live devices", ErrTooFewActive, sh.id)
	}
	roundW0 := w0.Clone()
	for _, t := range parts {
		st.users[t].needSync = true
	}
	// Scaled duals aligned with parts, zero-initialized for first-time
	// participants exactly like admm.NewConsensus.
	us := make([]mat.Vector, len(parts))
	for i, t := range parts {
		if u, ok := st.us[t]; ok {
			us[i] = u
		} else {
			us[i] = mat.NewVector(st.dim)
		}
	}
	allSlots := make([]int, len(st.users))
	for t := range allSlots {
		allSlots[t] = t
	}
	z := w0.Clone()

	for iter := 0; ; iter++ {
		var roundStart time.Time
		if st.cfg.Core.Obs != nil {
			roundStart = time.Now()
		}
		xs, keep, err := st.gather(parts, gatherEnv{
			round: round, iter: iter, roundStart: roundStart, roundW0: roundW0,
			z:    z,
			dual: func(i, t int) mat.Vector { return us[i] },
			drop: func(t, pos int, cause error) error {
				us = append(us[:pos], us[pos+1:]...)
				return st.drop(t, pos, nil, cause)
			},
		})
		if err != nil {
			return transport.Message{}, err
		}
		parts = keep

		// Cross-shard reduce, leg 1: ship Σ(x_t+u_t), wait for z.
		preStats := sh.agg.Stats()
		waitStart := time.Now()
		// Labeled is a free fixed-width field on shard-sums; it piggybacks
		// this shard's health stamp (0 when no engine is attached, so the
		// frame stays byte-identical to pre-health builds) for the
		// aggregator's fleet rollup. No codec change.
		if err := sh.agg.Send(transport.Message{Type: transport.MsgShardSum,
			Round: iter, W0: shard.SumXU(xs, us, st.dim), Users: len(xs),
			Labeled: st.cfg.Core.Obs.HealthStamp()}); err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		zm, err := sh.agg.Recv()
		if err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		wait := time.Since(waitStart)
		if zm.Type == transport.MsgError {
			return transport.Message{}, shardErrorCause(zm)
		}
		if zm.Type != transport.MsgShardZ || zm.Round != iter || len(zm.W0) != st.dim {
			return transport.Message{}, fmt.Errorf("%w: got %v (round %d), want shard-z for iteration %d",
				ErrUnexpectedMsg, zm.Type, zm.Round, iter)
		}
		z = mat.Vector(zm.W0)
		primalSq := shard.ApplyZ(xs, us, z)
		// Persist duals by user id for the next CCCP round.
		for i, t := range parts {
			st.us[t] = us[i]
		}
		objPartial := objectivePartial(st.users, allSlots, sh.lambdaOverT)

		// Leg 2: ship the residual and objective partials, wait for the
		// aggregator's decision.
		waitStart = time.Now()
		if err := sh.agg.Send(transport.Message{Type: transport.MsgShardResid,
			Round: iter, Xi: primalSq, W: []float64{objPartial}, Users: len(xs)}); err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		dec, err := sh.agg.Recv()
		if err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		wait += time.Since(waitStart)
		info.ADMMIterations++

		stats := sh.agg.Stats()
		bytes := (stats.BytesSent + stats.BytesReceived) - (preStats.BytesSent + preStats.BytesReceived)
		sh.mReduce.Observe(wait.Seconds())
		sh.mBytes.Add(bytes)
		if fr := st.flight(); fr != nil {
			fr.FlightRecord(obs.Record{Kind: obs.RecordShardReduce, Round: iter,
				Shard: sh.id, Dur: wait, Bytes: bytes})
		}

		switch dec.Type {
		case transport.MsgShardNext:
			if dec.Round != iter+1 {
				return transport.Message{}, fmt.Errorf("%w: shard-next for iteration %d, want %d",
					ErrUnexpectedMsg, dec.Round, iter+1)
			}
		case transport.MsgShardRound, transport.MsgShardDone, transport.MsgError:
			st.w0 = z
			return dec, nil
		default:
			return transport.Message{}, fmt.Errorf("%w: got %v from aggregator mid-round", ErrUnexpectedMsg, dec.Type)
		}
	}
}

// aggShard is the aggregator's supervision state for one shard: its current
// connection (replaced on rejoin; gen guards against inbox messages from a
// replaced connection), liveness, the last partials it delivered (the
// stale-carry material), and the first fatal failure.
type aggShard struct {
	conn transport.Conn
	gen  int
	live bool
	// cause is the first fatal failure recorded for this shard; it is kept
	// even after a successful rejoin and feeds AggResult.ShardCauses.
	cause error
	// prev accumulates the traffic of closed or replaced connections.
	prev transport.Stats

	// Stale-carry material: the most recent consensus partials this shard
	// delivered, reusable for up to MaxStale iterations while detached.
	lastSum    mat.Vector
	lastUsers  int
	lastPrimal float64
	lastObj    float64
	haveResid  bool
	// stale counts consecutive iterations carried since the detach; fresh
	// and carried describe how the current iteration's sum leg was filled.
	stale   int
	fresh   bool
	carried bool
}

// aggMsg is one pump delivery: a message (or terminal receive error) from
// shard id's generation-gen connection.
type aggMsg struct {
	id, gen int
	m       transport.Message
	err     error
}

// aggRun is RunAggregator's state: the shard supervision table indexed by
// shard id — the deterministic fold order — and the global consensus.
type aggRun struct {
	cfg     AggConfig
	shards  []*aggShard
	dim     int
	globalT int
	wire    *transport.WireConfig
	w0      mat.Vector
	hist    []float64
	quorum  int

	inbox chan aggMsg
	stop  chan struct{}

	mStale    *obs.Counter
	mRestarts *obs.Counter
	restarts  int

	// degraded flags the round in flight as having folded at least one
	// carried (stale) partial: its objective mixes state from different
	// rounds, so the CCCP descent and convergence tests skip it.
	degraded bool
}

func newAggRun(cfg AggConfig, conns []transport.Conn, dim, globalT int,
	wire *transport.WireConfig, w0 mat.Vector, prior []float64) *aggRun {
	a := &aggRun{
		cfg: cfg, dim: dim, globalT: globalT, wire: wire,
		w0: w0, hist: append([]float64(nil), prior...),
		quorum:    cfg.FT.ShardQuorum,
		inbox:     make(chan aggMsg, 2*len(conns)),
		stop:      make(chan struct{}),
		mStale:    cfg.Core.Obs.Counter(obs.MetricShardStaleReduces, ""),
		mRestarts: cfg.Core.Obs.Counter(obs.MetricShardRestarts, ""),
	}
	if a.quorum <= 0 || a.quorum > len(conns) {
		a.quorum = len(conns)
	}
	for _, c := range conns {
		a.shards = append(a.shards, &aggShard{conn: c, live: true})
	}
	for id, s := range a.shards {
		go a.pump(id, s.gen, s.conn)
	}
	return a
}

// pump forwards one connection's receive stream into the shared inbox so
// the aggregator is always effectively parked in Recv on every link (which
// is what makes a shard's mid-run MsgError Send safe on a rendezvous pipe).
// It exits on the first receive error — the detach path closes the
// connection, which surfaces here — or when the run stops.
func (a *aggRun) pump(id, gen int, c transport.Conn) {
	for {
		m, err := c.Recv()
		select {
		case a.inbox <- aggMsg{id: id, gen: gen, m: m, err: err}:
		case <-a.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// detach removes a failing or lagging shard from the live set: its first
// cause is recorded and its connection closed, unblocking the shard process,
// which treats the lost link as its cue to restart from checkpoint and
// rejoin. Idempotent.
func (a *aggRun) detach(id int, err error) {
	s := a.shards[id]
	if !s.live {
		return
	}
	s.live = false
	if s.cause == nil {
		s.cause = err
	}
	s.prev = s.prev.Add(s.conn.Stats())
	_ = s.conn.Close()
	if r := a.cfg.Core.Obs; r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordShardDown, Shard: id, Cause: err.Error()})
	}
}

// validateLeg checks one reduce-leg message against the expected shape.
func validateLeg(m transport.Message, want transport.MsgType, iter, dim int) error {
	if m.Type != want || m.Round != iter {
		return fmt.Errorf("%w: got %v (round %d), want %v for iteration %d",
			ErrUnexpectedMsg, m.Type, m.Round, want, iter)
	}
	switch want {
	case transport.MsgShardSum:
		if len(m.W0) != dim || m.Users <= 0 {
			return fmt.Errorf("%w: malformed shard-sum (%d entries, %d users)",
				ErrUnexpectedMsg, len(m.W0), m.Users)
		}
	case transport.MsgShardResid:
		if len(m.W) != 1 {
			return fmt.Errorf("%w: malformed shard-resid (%d objective partials)",
				ErrUnexpectedMsg, len(m.W))
		}
	}
	return nil
}

// collect gathers one reduce-leg message of type want (for ADMM iteration
// iter) from every live shard. Shards that error, send garbage, or miss the
// ReduceTimeout deadline are detached; the survivors' messages come back
// keyed by shard id. Messages from replaced or already-detached connections
// are discarded by generation and liveness.
func (a *aggRun) collect(iter int, want transport.MsgType) map[int]transport.Message {
	got := make(map[int]transport.Message)
	pending := 0
	for _, s := range a.shards {
		if s.live {
			pending++
		}
	}
	var deadline <-chan time.Time
	if a.cfg.FT.ReduceTimeout > 0 {
		t := time.NewTimer(a.cfg.FT.ReduceTimeout)
		defer t.Stop()
		deadline = t.C
	}
	for pending > 0 {
		select {
		case msg := <-a.inbox:
			s := a.shards[msg.id]
			if msg.gen != s.gen || !s.live {
				continue
			}
			_, had := got[msg.id]
			var ferr error
			switch {
			case msg.err != nil:
				ferr = msg.err
			case msg.m.Type == transport.MsgError:
				ferr = shardErrorCause(msg.m)
			default:
				ferr = validateLeg(msg.m, want, iter, a.dim)
			}
			if ferr != nil {
				a.detach(msg.id, ferr)
			} else {
				got[msg.id] = msg.m
			}
			if !had {
				pending--
			}
		case <-deadline:
			// Lagging is indistinguishable from dead: every live shard that
			// has not delivered this leg is detached and must rejoin via
			// checkpoint restore.
			for id, s := range a.shards {
				if _, ok := got[id]; s.live && !ok {
					a.detach(id, fmt.Errorf("protocol: aggregator: shard %d missed the %v reduce deadline (%v)",
						id, want, a.cfg.FT.ReduceTimeout))
				}
			}
			return got
		}
	}
	return got
}

// quorumErr builds the degraded-quorum abort: ErrTooFewActive naming the
// first dead shard and wrapping its cause.
func (a *aggRun) quorumErr(repr int) error {
	for id, s := range a.shards {
		if s.cause != nil {
			return fmt.Errorf("%w: %d of %d shards represented (quorum %d); first failure on shard %d: %w",
				ErrTooFewActive, repr, len(a.shards), a.quorum, id, s.cause)
		}
	}
	return fmt.Errorf("%w: %d of %d shards represented (quorum %d)",
		ErrTooFewActive, repr, len(a.shards), a.quorum)
}

// abort ends the run after err: live shards — parked in Recv, their current
// leg already delivered — get a structured MsgError naming the failing
// shard; everything else is closed.
func (a *aggRun) abort(err error) error {
	failed := -1
	for id, s := range a.shards {
		if s.cause != nil {
			failed = id
			break
		}
	}
	m := shardErrorMessage(failed, err)
	for _, s := range a.shards {
		if s.live {
			_ = s.conn.Send(m)
		}
	}
	a.close()
	return fmt.Errorf("protocol: aggregator: %w", err)
}

func (a *aggRun) close() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	for _, s := range a.shards {
		_ = s.conn.Close()
	}
}

// drainRejoins attaches queued checkpoint-restore rejoin attempts. Called
// at CCCP round boundaries, where len(a.hist) is the round about to start —
// the round a rejoining shard is fast-forwarded to.
func (a *aggRun) drainRejoins() {
	if a.cfg.FT.Rejoin == nil {
		return
	}
	for {
		select {
		case rj := <-a.cfg.FT.Rejoin:
			a.attach(rj)
		default:
			return
		}
	}
}

// attach validates one rejoin attempt and, on success, re-arms the shard's
// slot: new connection, new pump generation, stale counter reset, and a
// fast-forward hello reply carrying the current global state (w0 plus the
// full objective history) so the shard resumes at round len(a.hist).
func (a *aggRun) attach(rj Rejoin) {
	m := rj.Hello
	id := m.Round
	if m.Type != transport.MsgShardHello || m.Labeled != 1 {
		abortConn(rj.Conn, "rejoin must be a checkpoint-restore shard-hello")
		return
	}
	if id < 0 || id >= len(a.shards) {
		abortConn(rj.Conn, fmt.Sprintf("rejoin for unknown shard id %d", id))
		return
	}
	if a.shards[id].live {
		abortConn(rj.Conn, fmt.Sprintf("shard %d is still attached", id))
		return
	}
	if m.Dim != a.dim {
		abortConn(rj.Conn, fmt.Sprintf("rejoin dimension mismatch: shard %d has %d, want %d", id, m.Dim, a.dim))
		return
	}
	if m.Users <= 0 {
		abortConn(rj.Conn, fmt.Sprintf("rejoining shard %d serves no users", id))
		return
	}
	if len(m.V) > len(a.hist) || !sameBits(m.V, a.hist[:len(m.V)]) {
		abortConn(rj.Conn, fmt.Sprintf("shard %d restored a diverged objective history", id))
		return
	}
	reply := transport.Message{Type: transport.MsgShardHello, Users: a.globalT,
		Dim: a.dim, Config: a.wire, Round: len(a.hist),
		W: append([]float64(nil), a.w0...), V: append([]float64(nil), a.hist...)}
	if err := rj.Conn.Send(reply); err != nil {
		_ = rj.Conn.Close()
		return
	}
	s := a.shards[id]
	gone := s.stale
	s.conn = rj.Conn
	s.gen++
	s.live = true
	s.stale = 0
	a.restarts++
	a.mRestarts.Inc()
	if r := a.cfg.Core.Obs; r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordShardRestore, Shard: id, Round: len(a.hist), Stale: gone})
	}
	go a.pump(id, s.gen, rj.Conn)
}

// sameBits reports whether two float slices are bitwise identical.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// RunAggregator drives a sharded training run over one connection per
// shard. It owns the CCCP loop and the global ADMM consensus; the per-user
// state lives on the shards. Blocks until training finishes or fails.
func RunAggregator(conns []transport.Conn, cfg AggConfig) (*AggResult, error) {
	if len(conns) == 0 {
		return nil, ErrNoConns
	}
	sc := ServerConfig{Core: cfg.Core, Dist: cfg.Dist}.withDefaults()
	cfg.Core, cfg.Dist = sc.Core, sc.Dist
	k := len(conns)

	// Handshake: one shard-hello per connection, slotted by shard id. The
	// id set must be exactly 0..K-1 so the fold order is deterministic no
	// matter the accept order (TCP included). bail rejects the whole
	// deployment: a reasoned MsgError to shards whose hello was received
	// (those are parked in Recv, so the Send cannot block), a bare Close
	// to the rest (they may still be blocked in Send, where a counter-Send
	// on a rendezvous pipe would deadlock — Close unblocks them instead).
	seen := make([]bool, k)
	bail := func(reason string) {
		for i, c := range conns {
			if seen[i] {
				_ = c.Send(transport.Message{Type: transport.MsgError, Reason: reason})
			}
			_ = c.Close()
		}
	}
	shards := make([]transport.Conn, k)
	hellos := make([]transport.Message, k)
	for i, c := range conns {
		m, err := c.Recv()
		if err != nil {
			bail("aggregator handshake failed")
			return nil, fmt.Errorf("protocol: aggregator: hello on connection %d: %w", i, err)
		}
		seen[i] = true
		if m.Type == transport.MsgError {
			seen[i] = false // already failing; don't echo the error back
			bail(fmt.Sprintf("sibling shard aborted: %s", m.Reason))
			return nil, fmt.Errorf("%w: %s", ErrAborted, m.Reason)
		}
		if m.Type != transport.MsgShardHello {
			bail("expected shard-hello")
			return nil, fmt.Errorf("%w: got %v during aggregator handshake", ErrUnexpectedMsg, m.Type)
		}
		id := m.Round
		if id < 0 || id >= k || shards[id] != nil {
			bail(fmt.Sprintf("invalid or duplicate shard id %d (want distinct ids 0..%d)", id, k-1))
			return nil, fmt.Errorf("protocol: aggregator: invalid or duplicate shard id %d", id)
		}
		shards[id] = c
		hellos[id] = m
	}
	dim := hellos[0].Dim
	restore := hellos[0].Labeled == 1
	globalT := 0
	for id, m := range hellos {
		if m.Dim != dim || dim <= 0 {
			bail(fmt.Sprintf("dimension mismatch: shard %d has %d vs %d", id, m.Dim, dim))
			return nil, fmt.Errorf("%w: shard %d has %d vs %d", ErrDimMismatch, id, m.Dim, dim)
		}
		if (m.Labeled == 1) != restore {
			bail("mixed fresh and restoring shards")
			return nil, fmt.Errorf("protocol: aggregator: shard %d is %s while shard 0 is not",
				id, map[bool]string{true: "restoring", false: "fresh"}[m.Labeled == 1])
		}
		if m.Users <= 0 {
			bail(fmt.Sprintf("shard %d serves no users", id))
			return nil, fmt.Errorf("protocol: aggregator: shard %d serves no users", id)
		}
		globalT += m.Users
	}

	// Global starting state: the folded federated init, or the restored
	// (w0, objective history) every shard must agree on bitwise.
	var w0 mat.Vector
	var prior []float64
	if restore {
		for id := 1; id < k; id++ {
			if !sameBits(hellos[id].W, hellos[0].W) || !sameBits(hellos[id].V, hellos[0].V) {
				bail(fmt.Sprintf("shard %d restored different global state than shard 0", id))
				return nil, fmt.Errorf("protocol: aggregator: shard %d restored different global state than shard 0", id)
			}
		}
		if len(hellos[0].W) != dim {
			bail("restored w0 has wrong dimension")
			return nil, fmt.Errorf("%w: restored w0 has %d entries, dim %d", ErrDimMismatch, len(hellos[0].W), dim)
		}
		w0 = mat.Vector(hellos[0].W).Clone()
		prior = append([]float64(nil), hellos[0].V...)
	} else {
		partials := make([]shard.InitPartial, k)
		for id, m := range hellos {
			partials[id] = shard.InitPartial{Weighted: mat.Vector(m.W), Plain: mat.Vector(m.U), Weight: m.Xi}
		}
		w0 = shard.FoldInit(partials, globalT)
		if w0 == nil || len(w0) != dim {
			w0 = mat.NewVector(dim)
		}
	}

	wire := wireConfig(cfg.Core, cfg.Dist)
	for id, c := range shards {
		reply := transport.Message{Type: transport.MsgShardHello, Users: globalT, Dim: dim, Config: wire}
		if err := c.Send(reply); err != nil {
			bail("aggregator handshake failed")
			return nil, fmt.Errorf("protocol: aggregator: hello reply to shard %d: %w", id, err)
		}
	}

	r := cfg.Core.Obs
	r.Counter(obs.MetricTrainRuns, "").Inc()
	if r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "agg", Users: globalT})
	}

	a := newAggRun(cfg, shards, dim, globalT, wire, w0, prior)
	info := core.TrainInfo{}
	cccpInfo, err := optimize.CCCPResumeGuarded(func(round int) (float64, error) {
		var start time.Time
		if cfg.Core.Obs != nil {
			start = time.Now()
		}
		obj, err := a.cccpRound(round, &info)
		if err != nil {
			return obj, err
		}
		if r := cfg.Core.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
			if r.FlightEnabled() {
				r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: round,
					Objective: obj, SignFlips: -1, Dur: time.Since(start)})
			}
		}
		a.hist = append(a.hist, obj)
		return obj, nil
	}, cfg.Core.CCCPTol, cfg.Core.MaxCCCPIter, prior, func(int) bool {
		// A reduce that folded carried partials reports a mixed-round
		// objective; CCCPResumeGuarded skips the descent and convergence
		// tests around it so a shard outage cannot masquerade as
		// convergence (or ascent) and end training early.
		return !a.degraded
	})
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		// Mid-run failure: abort already notified the delivered shards and
		// closed the rest; a.close is idempotent.
		a.close()
		return nil, fmt.Errorf("protocol: RunAggregator: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	if r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: cccpInfo.Converged,
			Objective: cccpInfo.Objective, Round: cccpInfo.Iterations})
	}

	// One last drain before the final broadcast: a shard that finished its
	// checkpoint restore while the last round was closing is fast-forwarded
	// to the (now final) state and receives the done like everyone else.
	a.drainRejoins()

	conv := 0
	if cccpInfo.Converged {
		conv = 1
	}
	done := transport.Message{Type: transport.MsgShardDone, W0: a.w0,
		Round: cccpInfo.Iterations, Users: conv, Xi: cccpInfo.Objective}
	for _, s := range a.shards {
		if s.live {
			_ = s.conn.Send(done) // parked in Recv awaiting the decision
		}
	}

	res := &AggResult{W0: a.w0, Info: info, Users: globalT,
		PerShard: make([]transport.Stats, k), ShardCauses: make([]error, k),
		Restarts: a.restarts}
	for id, s := range a.shards {
		st := s.prev
		if s.live {
			st = st.Add(s.conn.Stats())
		}
		res.PerShard[id] = st
		res.Total = res.Total.Add(st)
		res.ShardCauses[id] = s.cause
	}
	// Late rejoin attempts cannot be honored any more; reject them with a
	// reason instead of leaving the dialer parked in Recv.
	if cfg.FT.Rejoin != nil {
	drain:
		for {
			select {
			case rj := <-cfg.FT.Rejoin:
				abortConn(rj.Conn, "training already finished")
			default:
				break drain
			}
		}
	}
	a.close()
	return res, nil
}

// cccpRound runs one global CCCP round: attach any queued rejoins, announce
// the round to the live shards, then iterate the cross-shard ADMM reduce
// until the residual rule fires. Returns the objective L of Eq. (23).
func (a *aggRun) cccpRound(round int, info *core.TrainInfo) (float64, error) {
	a.drainRejoins()
	a.degraded = false

	// The round announcement carries the objective that closed the previous
	// round so shards can complete their histories/checkpoints. Only live
	// shards hear it; a shard rejoining later is fast-forwarded instead.
	start := transport.Message{Type: transport.MsgShardRound, Round: round}
	if n := len(a.hist); n > 0 {
		start.Xi = a.hist[n-1]
	}
	for id, s := range a.shards {
		if !s.live {
			continue
		}
		start.W0 = a.w0.Clone()
		if err := s.conn.Send(start); err != nil {
			a.detach(id, err)
		}
	}

	rho := a.cfg.Dist.Rho
	z := a.w0.Clone()
	var obj float64
	for iter := 0; iter < a.cfg.Dist.MaxADMMIter; iter++ {
		var roundStart time.Time
		if a.cfg.Core.Obs != nil {
			roundStart = time.Now()
		}

		// Leg 1: fold the consensus sums in shard order — with the identical
		// floating-point shape a single coordinator running ReduceGroups over
		// this partition would use. A detached shard contributes its last
		// delivered partial for up to MaxStale iterations.
		got := a.collect(iter, transport.MsgShardSum)
		var sums []mat.Vector
		workers, repr := 0, 0
		for id, s := range a.shards {
			s.fresh, s.carried = false, false
			if m, ok := got[id]; ok {
				s.fresh = true
				s.lastSum = mat.Vector(m.W0)
				s.lastUsers = m.Users
				// A positive Labeled is the shard's piggybacked health stamp
				// (code+1); fold it into the aggregator's health tree. Zero
				// means the shard runs without an engine — report nothing.
				if m.Labeled > 0 {
					a.cfg.Core.Obs.ReportHealth(fmt.Sprintf("shard:%d", id), m.Labeled-1, "shard-reported")
				}
			} else if !s.live && s.lastSum != nil && s.stale < a.cfg.FT.MaxStale {
				s.stale++
				s.carried = true
				a.degraded = true
				a.mStale.Inc()
				if r := a.cfg.Core.Obs; r.FlightEnabled() {
					r.FlightRecord(obs.Record{Kind: obs.RecordShardStale, Round: iter, Shard: id, Stale: s.stale})
				}
			} else {
				continue
			}
			sums = append(sums, s.lastSum)
			workers += s.lastUsers
			repr++
		}
		if repr < a.quorum {
			return 0, a.abort(a.quorumErr(repr))
		}
		zNew := admm.SquaredNormZ(shard.Fold(sums), workers, rho)
		var res admm.Residuals
		res.Dual = rho * math.Sqrt(2*float64(workers)) * mat.Dist2(zNew, z)

		for id, s := range a.shards {
			if !s.live {
				continue
			}
			if err := s.conn.Send(transport.Message{Type: transport.MsgShardZ, Round: iter, W0: zNew.Clone()}); err != nil {
				a.detach(id, err)
			}
		}

		// Leg 2: fold the primal residuals and objective partials the same
		// way; a shard lost mid-iteration falls back to its previous residual
		// leg when stale carry allows it.
		got = a.collect(iter, transport.MsgShardResid)
		var primals, objPartials []float64
		repr = 0
		for id, s := range a.shards {
			if m, ok := got[id]; ok {
				s.lastPrimal = m.Xi
				s.lastObj = m.W[0]
				s.haveResid = true
			} else if !s.live && s.haveResid && (s.carried || (s.fresh && a.cfg.FT.MaxStale > 0)) {
				a.degraded = true
				a.mStale.Inc()
			} else {
				continue
			}
			primals = append(primals, s.lastPrimal)
			objPartials = append(objPartials, s.lastObj)
			repr++
		}
		if repr < a.quorum {
			return 0, a.abort(a.quorumErr(repr))
		}
		res.Primal = math.Sqrt(shard.FoldScalars(primals))
		z = zNew
		obj = shard.FoldObjective(zNew.SquaredNorm(), objPartials)

		info.ADMMIterations++
		info.ADMMPrimal = res.Primal
		info.ADMMDual = res.Dual
		if r := a.cfg.Core.Obs; r != nil {
			admm.ObserveRound(r, iter, roundStart, res)
		}
		if res.Converged(workers, a.cfg.Dist.EpsAbs) {
			break
		}
		if iter+1 < a.cfg.Dist.MaxADMMIter {
			for id, s := range a.shards {
				if !s.live {
					continue
				}
				if err := s.conn.Send(transport.Message{Type: transport.MsgShardNext, Round: iter + 1}); err != nil {
					a.detach(id, err)
				}
			}
		}
	}
	a.w0 = z
	return obj, nil
}

// SplitCheckpoint extracts the sub-checkpoint of the users keep selects (by
// slot index and session token), renumbering them densely in original slot
// order. Together with MergeCheckpoints and shard.Ring this is the offline
// rebalance tool: merge the shard checkpoints, then split the result by
// ring ownership into one checkpoint per new shard (see docs/SHARDING.md).
func SplitCheckpoint(ck *Checkpoint, keep func(slot int, session int64) bool) (*Checkpoint, error) {
	out := &Checkpoint{
		Epoch:     ck.Epoch,
		Dim:       ck.Dim,
		Seed:      ck.Seed,
		W0:        ck.W0.Clone(),
		Objective: append([]float64(nil), ck.Objective...),
	}
	for t := range ck.Sessions {
		if !keep(t, ck.Sessions[t]) {
			continue
		}
		out.Sessions = append(out.Sessions, ck.Sessions[t])
		out.Dropped = append(out.Dropped, ck.Dropped[t])
		out.Stale = append(out.Stale, ck.Stale[t])
		out.Us = append(out.Us, cloneVec(ck.Us[t]))
		out.LastW = append(out.LastW, cloneVec(ck.LastW[t]))
		out.LastV = append(out.LastV, cloneVec(ck.LastV[t]))
		out.LastXi = append(out.LastXi, ck.LastXi[t])
	}
	if len(out.Sessions) == 0 {
		return nil, fmt.Errorf("protocol: SplitCheckpoint selected no users")
	}
	return out, nil
}

// MergeCheckpoints concatenates shard checkpoints in argument order (the
// shard-id order, so slot concatenation matches the plane's global slot
// convention). All inputs must agree on epoch, dimension, w0, and objective
// history, and session tokens must be globally unique.
func MergeCheckpoints(cks ...*Checkpoint) (*Checkpoint, error) {
	if len(cks) == 0 {
		return nil, fmt.Errorf("protocol: MergeCheckpoints of nothing")
	}
	base := cks[0]
	out := &Checkpoint{
		Epoch:     base.Epoch,
		Dim:       base.Dim,
		Seed:      base.Seed,
		W0:        base.W0.Clone(),
		Objective: append([]float64(nil), base.Objective...),
	}
	seen := make(map[int64]bool)
	for i, ck := range cks {
		if ck.Epoch != base.Epoch || ck.Dim != base.Dim {
			return nil, fmt.Errorf("protocol: MergeCheckpoints: checkpoint %d is at epoch %d/dim %d, want %d/%d",
				i, ck.Epoch, ck.Dim, base.Epoch, base.Dim)
		}
		if !sameBits(ck.W0, base.W0) || !sameBits(ck.Objective, base.Objective) {
			return nil, fmt.Errorf("protocol: MergeCheckpoints: checkpoint %d disagrees on global state", i)
		}
		for t := range ck.Sessions {
			if s := ck.Sessions[t]; s != 0 {
				if seen[s] {
					return nil, fmt.Errorf("protocol: MergeCheckpoints: duplicate session token in checkpoint %d", i)
				}
				seen[s] = true
			}
			out.Sessions = append(out.Sessions, ck.Sessions[t])
			out.Dropped = append(out.Dropped, ck.Dropped[t])
			out.Stale = append(out.Stale, ck.Stale[t])
			out.Us = append(out.Us, cloneVec(ck.Us[t]))
			out.LastW = append(out.LastW, cloneVec(ck.LastW[t]))
			out.LastV = append(out.LastV, cloneVec(ck.LastV[t]))
			out.LastXi = append(out.LastXi, ck.LastXi[t])
		}
	}
	return out, nil
}
