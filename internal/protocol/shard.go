// The sharded serving plane (docs/SHARDING.md): RunAggregator owns the
// global consensus — it folds per-shard ADMM partials in shard order and
// drives the CCCP convergence decisions — while RunShard serves a partition
// of the devices with the same handshake, gather, fault-tolerance, and
// checkpoint machinery as RunServer. Every cross-shard floating-point
// reduction goes through internal/shard, the same helpers a single
// coordinator uses when ServerConfig.ReduceGroups mirrors the shard
// partition, so the two planes are bit-identical by construction.
//
// Shard↔aggregator message flow (one connection per shard, fields reused
// from the device protocol — see the MsgShard* constants in transport):
//
//	shard → agg   shard-hello {shard id, dim, counts, init partials | restore state}
//	agg → shard   shard-hello {global T, hyperparameters}
//	per CCCP round:
//	  agg → shard   shard-round {round, w0, objective of the previous round}
//	  per ADMM iteration:
//	    shard → agg   shard-sum   {Σ(x_t+u_t), live count}
//	    agg → shard   shard-z     {reduced z}
//	    shard → agg   shard-resid {Σ‖x_t−z‖², objective partial}
//	    agg → shard   shard-next | shard-round | shard-done
//	agg → shard   shard-done {final w0, rounds, converged, final objective}
//
// Failure policy: before the round loop both sides abort with MsgError;
// mid-run the aggregator only ever *closes* shard connections on failure
// (a Send to a peer blocked mid-reduce would deadlock a rendezvous pipe),
// and a shard treats any error on its aggregator connection as a global
// abort and shuts its devices down.
package protocol

import (
	"errors"
	"fmt"
	"math"
	"time"

	"plos/internal/admm"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/rng"
	"plos/internal/shard"
	"plos/internal/transport"
)

// ShardConfig configures one shard process of a sharded serving plane.
type ShardConfig struct {
	// Shard is this process's shard index: 0-based, unique per aggregator,
	// and contiguous across the deployment. The aggregator folds shard
	// partials in this order, which is what pins the plane's bit-identity.
	Shard int
	// Core supplies the shard-local knobs (Seed, Obs). The training
	// hyperparameters arrive from the aggregator's hello reply and are
	// forwarded to the devices.
	Core core.Config
	// MinActive and FT form the shard-local fault-tolerance envelope over
	// this shard's devices, with the same semantics as in ServerConfig.
	// FT.Restore resumes this shard from a checkpoint (its own, or one
	// produced by SplitCheckpoint during a rebalance); the aggregator
	// validates that all shards restore the same epoch and global state.
	MinActive int
	FT        FTConfig
}

// AggConfig configures the top-level aggregator of a sharded serving plane.
// Core and Dist carry the full training configuration — the aggregator is
// the single source of hyperparameters and convergence decisions; shards
// and devices receive them through the handshake.
type AggConfig struct {
	Core core.Config
	Dist core.DistConfig
}

// AggResult is the aggregator's view of a finished sharded run. Per-user
// models stay on the shards (see the ServerResult each RunShard returns).
type AggResult struct {
	W0   mat.Vector
	Info core.TrainInfo
	// Users is the global population size T (summed over shard hellos).
	Users int
	// PerShard is the aggregator-side traffic per shard connection, indexed
	// by shard id; Total aggregates them.
	PerShard []transport.Stats
	Total    transport.Stats
}

// RunShard drives one shard of a sharded serving plane: it serves conns
// (this shard's devices) exactly like RunServer, except that every
// cross-user reduction is shipped to the aggregator over agg and the
// CCCP/ADMM control decisions arrive from there. Blocks until the
// aggregator finishes or fails. The returned ServerResult covers this
// shard's devices; W0 is the global model.
func RunShard(agg transport.Conn, conns []transport.Conn, cfg ShardConfig) (*ServerResult, error) {
	if len(conns) == 0 {
		return nil, ErrNoConns
	}
	sCfg := ServerConfig{Core: cfg.Core, MinActive: cfg.MinActive, FT: cfg.FT}
	if sCfg.FT.SessionSeed == 0 {
		// Each shard mints session tokens from its own split of the seed
		// stream so tokens stay unique across the whole deployment — the
		// consistent-hash ring partitions users by token on a rebalance.
		sCfg.FT.SessionSeed = rng.New(cfg.Core.Seed).SplitN("shard-session", cfg.Shard).Int63()
	}
	sCfg = sCfg.withDefaults()

	// Device hellos (or the checkpoint) first: the shard's own hello to the
	// aggregator carries the partition's init partials or restore state.
	var users []*serverUser
	var dim int
	var hello transport.Message
	if ck := sCfg.FT.Restore; ck != nil {
		var err error
		if users, err = matchRestoreConns(conns, ck); err != nil {
			// The aggregator is still blocked in its handshake Recv, so a
			// reasoned reject is safe; it unblocks the sibling shards.
			abortConn(agg, fmt.Sprintf("shard %d failed its restore handshake", cfg.Shard))
			return nil, err
		}
		live := 0
		for _, u := range users {
			if !u.dropped {
				live++
			}
		}
		dim = ck.Dim
		// Labeled 1 flags a restore hello; the aggregator validates that
		// every shard restores the same epoch, w0, and objective history.
		hello = transport.Message{Type: transport.MsgShardHello, Round: cfg.Shard,
			Dim: dim, Users: len(users), Samples: live, Labeled: 1,
			W: ck.W0, V: ck.Objective}
	} else {
		users = make([]*serverUser, len(conns))
		for t, c := range conns {
			users[t] = &serverUser{conn: c}
		}
		var initWs []mat.Vector
		var initWeights []float64
		var err error
		if dim, initWs, initWeights, err = collectHellos(users); err != nil {
			abortConn(agg, fmt.Sprintf("shard %d failed its device handshake", cfg.Shard))
			return nil, err
		}
		p := shard.NewInitPartial(initWs, initWeights, dim)
		hello = transport.Message{Type: transport.MsgShardHello, Round: cfg.Shard,
			Dim: dim, Users: len(users), Samples: len(users),
			W: p.Weighted, U: p.Plain, Xi: p.Weight}
	}
	// Past this point any failure must Close the aggregator connection
	// (never Send: the aggregator may itself be blocked in a Send to this
	// shard, and a rendezvous pipe would deadlock) so the run fails fast
	// everywhere instead of hanging the reduce.
	if err := agg.Send(hello); err != nil {
		abortUsers(users, "aggregator unreachable")
		_ = agg.Close()
		return nil, fmt.Errorf("protocol: shard %d: hello to aggregator: %w", cfg.Shard, err)
	}
	rep, err := agg.Recv()
	if err != nil {
		abortUsers(users, "aggregator lost during handshake")
		_ = agg.Close()
		return nil, fmt.Errorf("protocol: shard %d: aggregator hello reply: %w", cfg.Shard, err)
	}
	if rep.Type == transport.MsgError {
		abortUsers(users, rep.Reason)
		_ = agg.Close()
		return nil, fmt.Errorf("%w: %s", ErrAborted, rep.Reason)
	}
	if rep.Type != transport.MsgShardHello || rep.Config == nil || rep.Users <= 0 {
		abortUsers(users, "malformed aggregator handshake")
		_ = agg.Close()
		return nil, fmt.Errorf("%w: got %v, want shard-hello reply", ErrUnexpectedMsg, rep.Type)
	}

	// Device hello replies carry the *global* T (devices size their λ/T
	// terms with it) and the aggregator's hyperparameters; the telemetry
	// bit is overridden because piggybacks merge at this shard's recorder,
	// not the aggregator's.
	wire := *rep.Config
	wire.Telemetry = cfg.Core.Obs.FlightEnabled()
	var st *serverState
	migrated := 0
	if ck := sCfg.FT.Restore; ck != nil {
		if err := sendRestoreReplies(users, rep.Users, dim, ck.Epoch, &wire); err != nil {
			abortUsers(users, "shard handshake failed")
			_ = agg.Close()
			return nil, err
		}
		st = stateFromCheckpoint(sCfg, users, ck)
		for _, u := range users {
			if !u.dropped {
				migrated++
			}
		}
	} else {
		needSessions := sCfg.FT.Resume || sCfg.FT.CheckpointPath != ""
		if err := sendHelloReplies(users, rep.Users, dim, &wire, needSessions, sCfg.FT.SessionSeed); err != nil {
			abortUsers(users, "shard handshake failed")
			_ = agg.Close()
			return nil, err
		}
		st = newServerState(sCfg, users, dim, mat.NewVector(dim))
	}

	r := cfg.Core.Obs
	r.Counter(obs.MetricTrainRuns, "").Inc()
	r.Gauge(obs.MetricShardDevices, "").Set(float64(len(st.active())))
	if migrated > 0 {
		r.Counter(obs.MetricShardMigrations, "").Add(int64(migrated))
	}
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "shard", Users: len(users)})
	}

	sh := &shardRun{
		st: st, agg: agg, id: cfg.Shard,
		lambdaOverT: wire.Lambda / float64(rep.Users),
		mReduce:     r.Histogram(obs.MetricShardReduceSeconds, ""),
		mBytes:      r.Counter(obs.MetricShardCrossBytesTotal, ""),
	}
	info := core.TrainInfo{}
	done, err := sh.loop(&info)
	if err != nil {
		st.abort(err.Error())
		_ = agg.Close()
		return nil, err
	}
	if len(done.W0) != st.dim {
		err := fmt.Errorf("%w: final w0 has %d entries, dim %d", ErrDimMismatch, len(done.W0), st.dim)
		st.abort(err.Error())
		_ = agg.Close()
		return nil, err
	}
	st.w0 = mat.Vector(done.W0)
	info.CCCPIterations = done.Round
	info.CCCPConverged = done.Users == 1
	info.Objective = done.Xi
	info.ObjectiveHistory = append([]float64(nil), st.objHistory...)
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: info.CCCPConverged,
			Objective: info.Objective, Round: info.CCCPIterations})
	}

	st.broadcast(transport.Message{Type: transport.MsgDone, W0: st.w0})

	tCount := len(st.users)
	res := &ServerResult{
		Model:     &core.Model{W0: st.w0, W: make([]mat.Vector, tCount)},
		Info:      info,
		Dropped:   make([]bool, tCount),
		DropCause: make([]error, tCount),
		PerUser:   make([]transport.Stats, tCount),
	}
	for t, u := range st.users {
		res.Dropped[t] = u.dropped
		res.DropCause[t] = u.cause
		if !u.dropped {
			res.Model.W[t] = u.lastW
		}
		res.PerUser[t] = u.stats()
		res.Total = res.Total.Add(res.PerUser[t])
	}
	return res, nil
}

// shardRun is the per-run state of RunShard's control loop on top of the
// shared serverState.
type shardRun struct {
	st  *serverState
	agg transport.Conn
	id  int
	// lambdaOverT is λ/T with the *global* T — the objective-partial weight
	// every shard and the reference coordinator must agree on.
	lambdaOverT float64
	mReduce     *obs.Histogram
	mBytes      *obs.Counter
}

func (sh *shardRun) aggLost(err error) error {
	return fmt.Errorf("protocol: shard %d: aggregator lost: %w", sh.id, err)
}

// loop processes aggregator decisions until the run ends, returning the
// final shard-done message.
func (sh *shardRun) loop(info *core.TrainInfo) (transport.Message, error) {
	m, err := sh.agg.Recv()
	if err != nil {
		return transport.Message{}, sh.aggLost(err)
	}
	for {
		switch m.Type {
		case transport.MsgShardRound:
			if err := sh.noteObjective(m.Round, m.Xi); err != nil {
				return transport.Message{}, err
			}
			if m, err = sh.round(m.Round, mat.Vector(m.W0), info); err != nil {
				return transport.Message{}, err
			}
		case transport.MsgShardDone:
			if err := sh.noteObjective(m.Round, m.Xi); err != nil {
				return transport.Message{}, err
			}
			return m, nil
		case transport.MsgError:
			return transport.Message{}, fmt.Errorf("%w: %s", ErrAborted, m.Reason)
		default:
			return transport.Message{}, fmt.Errorf("%w: got %v from aggregator", ErrUnexpectedMsg, m.Type)
		}
	}
}

// noteObjective folds the just-completed round's objective (carried on the
// decision message that follows it) into the shard's history, emits the
// round-completion metrics, and writes the due checkpoint. A decision for
// round == len(history) starts the run (or continues a restore) and carries
// nothing to record.
func (sh *shardRun) noteObjective(round int, obj float64) error {
	st := sh.st
	if round == len(st.objHistory) {
		return nil
	}
	if round != len(st.objHistory)+1 {
		return fmt.Errorf("protocol: shard %d: aggregator decision for round %d, but history has %d entries",
			sh.id, round, len(st.objHistory))
	}
	st.objHistory = append(st.objHistory, obj)
	completed := len(st.objHistory)
	if r := st.cfg.Core.Obs; r != nil {
		r.Counter(obs.MetricCCCPIterations, "").Inc()
		r.Gauge(obs.MetricTrainObjective, "").Set(obj)
		if r.FlightEnabled() {
			r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: completed - 1,
				Objective: obj, SignFlips: -1})
		}
	}
	if p := st.cfg.FT.CheckpointPath; p != "" && completed%st.cfg.FT.CheckpointEvery == 0 {
		if err := SaveCheckpoint(p, st.checkpoint(completed)); err != nil {
			return fmt.Errorf("protocol: shard %d: checkpoint after round %d: %w", sh.id, completed-1, err)
		}
		st.mCheckpoints.Inc()
	}
	return nil
}

// round runs one CCCP round on this shard: gather device updates, ship the
// consensus partials, apply the reduced z, until the aggregator ends the
// round. Returns the decision message that ended it (the next shard-round,
// or shard-done).
func (sh *shardRun) round(round int, w0 mat.Vector, info *core.TrainInfo) (transport.Message, error) {
	st := sh.st
	if len(w0) != st.dim {
		return transport.Message{}, fmt.Errorf("protocol: shard %d: round %d w0 has dim %d, want %d",
			sh.id, round, len(w0), st.dim)
	}
	st.epoch = round
	st.w0 = w0
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
	}
	st.drainRejoins()

	parts := st.active()
	if len(parts) == 0 {
		return transport.Message{}, fmt.Errorf("%w: shard %d has no live devices", ErrTooFewActive, sh.id)
	}
	roundW0 := w0.Clone()
	for _, t := range parts {
		st.users[t].needSync = true
	}
	// Scaled duals aligned with parts, zero-initialized for first-time
	// participants exactly like admm.NewConsensus.
	us := make([]mat.Vector, len(parts))
	for i, t := range parts {
		if u, ok := st.us[t]; ok {
			us[i] = u
		} else {
			us[i] = mat.NewVector(st.dim)
		}
	}
	allSlots := make([]int, len(st.users))
	for t := range allSlots {
		allSlots[t] = t
	}
	z := w0.Clone()

	for iter := 0; ; iter++ {
		var roundStart time.Time
		if st.cfg.Core.Obs != nil {
			roundStart = time.Now()
		}
		xs, keep, err := st.gather(parts, gatherEnv{
			round: round, iter: iter, roundStart: roundStart, roundW0: roundW0,
			z:    z,
			dual: func(i, t int) mat.Vector { return us[i] },
			drop: func(t, pos int, cause error) error {
				us = append(us[:pos], us[pos+1:]...)
				return st.drop(t, pos, nil, cause)
			},
		})
		if err != nil {
			return transport.Message{}, err
		}
		parts = keep

		// Cross-shard reduce, leg 1: ship Σ(x_t+u_t), wait for z.
		preStats := sh.agg.Stats()
		waitStart := time.Now()
		if err := sh.agg.Send(transport.Message{Type: transport.MsgShardSum,
			Round: iter, W0: shard.SumXU(xs, us, st.dim), Users: len(xs)}); err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		zm, err := sh.agg.Recv()
		if err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		wait := time.Since(waitStart)
		if zm.Type == transport.MsgError {
			return transport.Message{}, fmt.Errorf("%w: %s", ErrAborted, zm.Reason)
		}
		if zm.Type != transport.MsgShardZ || zm.Round != iter || len(zm.W0) != st.dim {
			return transport.Message{}, fmt.Errorf("%w: got %v (round %d), want shard-z for iteration %d",
				ErrUnexpectedMsg, zm.Type, zm.Round, iter)
		}
		z = mat.Vector(zm.W0)
		primalSq := shard.ApplyZ(xs, us, z)
		// Persist duals by user id for the next CCCP round.
		for i, t := range parts {
			st.us[t] = us[i]
		}
		objPartial := objectivePartial(st.users, allSlots, sh.lambdaOverT)

		// Leg 2: ship the residual and objective partials, wait for the
		// aggregator's decision.
		waitStart = time.Now()
		if err := sh.agg.Send(transport.Message{Type: transport.MsgShardResid,
			Round: iter, Xi: primalSq, W: []float64{objPartial}, Users: len(xs)}); err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		dec, err := sh.agg.Recv()
		if err != nil {
			return transport.Message{}, sh.aggLost(err)
		}
		wait += time.Since(waitStart)
		info.ADMMIterations++

		stats := sh.agg.Stats()
		bytes := (stats.BytesSent + stats.BytesReceived) - (preStats.BytesSent + preStats.BytesReceived)
		sh.mReduce.Observe(wait.Seconds())
		sh.mBytes.Add(bytes)
		if fr := st.flight(); fr != nil {
			fr.FlightRecord(obs.Record{Kind: obs.RecordShardReduce, Round: iter,
				Shard: sh.id, Dur: wait, Bytes: bytes})
		}

		switch dec.Type {
		case transport.MsgShardNext:
			if dec.Round != iter+1 {
				return transport.Message{}, fmt.Errorf("%w: shard-next for iteration %d, want %d",
					ErrUnexpectedMsg, dec.Round, iter+1)
			}
		case transport.MsgShardRound, transport.MsgShardDone, transport.MsgError:
			st.w0 = z
			return dec, nil
		default:
			return transport.Message{}, fmt.Errorf("%w: got %v from aggregator mid-round", ErrUnexpectedMsg, dec.Type)
		}
	}
}

// aggRun is RunAggregator's state: the shard connections indexed by shard
// id — the deterministic fold order — and the global consensus.
type aggRun struct {
	cfg   AggConfig
	conns []transport.Conn
	dim   int
	w0    mat.Vector
	hist  []float64
}

// fail handles a shard connection failure (or any mid-run error): every
// shard connection is closed and the run fails. Nothing is written to the
// shards — a Send to a peer blocked mid-reduce would deadlock a rendezvous
// pipe; a shard treats its lost aggregator connection as a global abort.
func (a *aggRun) fail(id int, err error) error {
	a.close()
	return fmt.Errorf("protocol: aggregator: shard %d: %w", id, err)
}

func (a *aggRun) close() {
	for _, c := range a.conns {
		_ = c.Close()
	}
}

// sameBits reports whether two float slices are bitwise identical.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// RunAggregator drives a sharded training run over one connection per
// shard. It owns the CCCP loop and the global ADMM consensus; the per-user
// state lives on the shards. Blocks until training finishes or fails.
func RunAggregator(conns []transport.Conn, cfg AggConfig) (*AggResult, error) {
	if len(conns) == 0 {
		return nil, ErrNoConns
	}
	sc := ServerConfig{Core: cfg.Core, Dist: cfg.Dist}.withDefaults()
	cfg.Core, cfg.Dist = sc.Core, sc.Dist
	k := len(conns)

	// Handshake: one shard-hello per connection, slotted by shard id. The
	// id set must be exactly 0..K-1 so the fold order is deterministic no
	// matter the accept order (TCP included). bail rejects the whole
	// deployment: a reasoned MsgError to shards whose hello was received
	// (those are parked in Recv, so the Send cannot block), a bare Close
	// to the rest (they may still be blocked in Send, where a counter-Send
	// on a rendezvous pipe would deadlock — Close unblocks them instead).
	seen := make([]bool, k)
	bail := func(reason string) {
		for i, c := range conns {
			if seen[i] {
				_ = c.Send(transport.Message{Type: transport.MsgError, Reason: reason})
			}
			_ = c.Close()
		}
	}
	shards := make([]transport.Conn, k)
	hellos := make([]transport.Message, k)
	for i, c := range conns {
		m, err := c.Recv()
		if err != nil {
			bail("aggregator handshake failed")
			return nil, fmt.Errorf("protocol: aggregator: hello on connection %d: %w", i, err)
		}
		seen[i] = true
		if m.Type == transport.MsgError {
			seen[i] = false // already failing; don't echo the error back
			bail(fmt.Sprintf("sibling shard aborted: %s", m.Reason))
			return nil, fmt.Errorf("%w: %s", ErrAborted, m.Reason)
		}
		if m.Type != transport.MsgShardHello {
			bail("expected shard-hello")
			return nil, fmt.Errorf("%w: got %v during aggregator handshake", ErrUnexpectedMsg, m.Type)
		}
		id := m.Round
		if id < 0 || id >= k || shards[id] != nil {
			bail(fmt.Sprintf("invalid or duplicate shard id %d (want distinct ids 0..%d)", id, k-1))
			return nil, fmt.Errorf("protocol: aggregator: invalid or duplicate shard id %d", id)
		}
		shards[id] = c
		hellos[id] = m
	}
	dim := hellos[0].Dim
	restore := hellos[0].Labeled == 1
	globalT := 0
	for id, m := range hellos {
		if m.Dim != dim || dim <= 0 {
			bail(fmt.Sprintf("dimension mismatch: shard %d has %d vs %d", id, m.Dim, dim))
			return nil, fmt.Errorf("%w: shard %d has %d vs %d", ErrDimMismatch, id, m.Dim, dim)
		}
		if (m.Labeled == 1) != restore {
			bail("mixed fresh and restoring shards")
			return nil, fmt.Errorf("protocol: aggregator: shard %d is %s while shard 0 is not",
				id, map[bool]string{true: "restoring", false: "fresh"}[m.Labeled == 1])
		}
		if m.Users <= 0 {
			bail(fmt.Sprintf("shard %d serves no users", id))
			return nil, fmt.Errorf("protocol: aggregator: shard %d serves no users", id)
		}
		globalT += m.Users
	}

	// Global starting state: the folded federated init, or the restored
	// (w0, objective history) every shard must agree on bitwise.
	var w0 mat.Vector
	var prior []float64
	if restore {
		for id := 1; id < k; id++ {
			if !sameBits(hellos[id].W, hellos[0].W) || !sameBits(hellos[id].V, hellos[0].V) {
				bail(fmt.Sprintf("shard %d restored different global state than shard 0", id))
				return nil, fmt.Errorf("protocol: aggregator: shard %d restored different global state than shard 0", id)
			}
		}
		if len(hellos[0].W) != dim {
			bail("restored w0 has wrong dimension")
			return nil, fmt.Errorf("%w: restored w0 has %d entries, dim %d", ErrDimMismatch, len(hellos[0].W), dim)
		}
		w0 = mat.Vector(hellos[0].W).Clone()
		prior = append([]float64(nil), hellos[0].V...)
	} else {
		partials := make([]shard.InitPartial, k)
		for id, m := range hellos {
			partials[id] = shard.InitPartial{Weighted: mat.Vector(m.W), Plain: mat.Vector(m.U), Weight: m.Xi}
		}
		w0 = shard.FoldInit(partials, globalT)
		if w0 == nil || len(w0) != dim {
			w0 = mat.NewVector(dim)
		}
	}

	wire := wireConfig(cfg.Core, cfg.Dist)
	for id, c := range shards {
		reply := transport.Message{Type: transport.MsgShardHello, Users: globalT, Dim: dim, Config: wire}
		if err := c.Send(reply); err != nil {
			bail("aggregator handshake failed")
			return nil, fmt.Errorf("protocol: aggregator: hello reply to shard %d: %w", id, err)
		}
	}

	r := cfg.Core.Obs
	r.Counter(obs.MetricTrainRuns, "").Inc()
	if r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "agg", Users: globalT})
	}

	a := &aggRun{cfg: cfg, conns: shards, dim: dim, w0: w0,
		hist: append([]float64(nil), prior...)}
	info := core.TrainInfo{}
	cccpInfo, err := optimize.CCCPResume(func(round int) (float64, error) {
		var start time.Time
		if cfg.Core.Obs != nil {
			start = time.Now()
		}
		obj, err := a.cccpRound(round, &info)
		if err != nil {
			return obj, err
		}
		if r := cfg.Core.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
			if r.FlightEnabled() {
				r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: round,
					Objective: obj, SignFlips: -1, Dur: time.Since(start)})
			}
		}
		a.hist = append(a.hist, obj)
		return obj, nil
	}, cfg.Core.CCCPTol, cfg.Core.MaxCCCPIter, prior)
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		// Mid-run failure: close-only (see fail); conns may already be
		// closed, which double-Close tolerates.
		a.close()
		return nil, fmt.Errorf("protocol: RunAggregator: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	if r.FlightEnabled() {
		r.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: cccpInfo.Converged,
			Objective: cccpInfo.Objective, Round: cccpInfo.Iterations})
	}

	conv := 0
	if cccpInfo.Converged {
		conv = 1
	}
	done := transport.Message{Type: transport.MsgShardDone, W0: a.w0,
		Round: cccpInfo.Iterations, Users: conv, Xi: cccpInfo.Objective}
	for _, c := range shards {
		_ = c.Send(done) // a shard lost at the very end cannot be helped
	}

	res := &AggResult{W0: a.w0, Info: info, Users: globalT,
		PerShard: make([]transport.Stats, k)}
	for id, c := range shards {
		res.PerShard[id] = c.Stats()
		res.Total = res.Total.Add(res.PerShard[id])
	}
	return res, nil
}

// cccpRound runs one global CCCP round: announce it to the shards, then
// iterate the cross-shard ADMM reduce until the residual rule fires.
// Returns the objective L of Eq. (23).
func (a *aggRun) cccpRound(round int, info *core.TrainInfo) (float64, error) {
	// The round announcement carries the objective that closed the
	// previous round so shards can complete their histories/checkpoints.
	start := transport.Message{Type: transport.MsgShardRound, Round: round}
	if n := len(a.hist); n > 0 {
		start.Xi = a.hist[n-1]
	}
	for id, c := range a.conns {
		start.W0 = a.w0.Clone()
		if err := c.Send(start); err != nil {
			return 0, a.fail(id, err)
		}
	}

	rho := a.cfg.Dist.Rho
	z := a.w0.Clone()
	var obj float64
	for iter := 0; iter < a.cfg.Dist.MaxADMMIter; iter++ {
		var roundStart time.Time
		if a.cfg.Core.Obs != nil {
			roundStart = time.Now()
		}

		// Fold the shard partials in shard order — with the identical
		// floating-point shape a single coordinator running ReduceGroups
		// over this partition would use.
		sums := make([]mat.Vector, len(a.conns))
		workers := 0
		for id, c := range a.conns {
			m, err := c.Recv()
			if err != nil {
				return 0, a.fail(id, err)
			}
			if m.Type == transport.MsgError {
				return 0, a.fail(id, fmt.Errorf("%w: %s", ErrAborted, m.Reason))
			}
			if m.Type != transport.MsgShardSum || m.Round != iter || len(m.W0) != a.dim || m.Users <= 0 {
				return 0, a.fail(id, fmt.Errorf("%w: got %v (round %d, %d users) awaiting shard-sum for iteration %d",
					ErrUnexpectedMsg, m.Type, m.Round, m.Users, iter))
			}
			sums[id] = mat.Vector(m.W0)
			workers += m.Users
		}
		zNew := admm.SquaredNormZ(shard.Fold(sums), workers, rho)
		var res admm.Residuals
		res.Dual = rho * math.Sqrt(2*float64(workers)) * mat.Dist2(zNew, z)

		for id, c := range a.conns {
			if err := c.Send(transport.Message{Type: transport.MsgShardZ, Round: iter, W0: zNew.Clone()}); err != nil {
				return 0, a.fail(id, err)
			}
		}

		primals := make([]float64, len(a.conns))
		objPartials := make([]float64, len(a.conns))
		for id, c := range a.conns {
			m, err := c.Recv()
			if err != nil {
				return 0, a.fail(id, err)
			}
			if m.Type == transport.MsgError {
				return 0, a.fail(id, fmt.Errorf("%w: %s", ErrAborted, m.Reason))
			}
			if m.Type != transport.MsgShardResid || m.Round != iter || len(m.W) != 1 {
				return 0, a.fail(id, fmt.Errorf("%w: got %v (round %d) awaiting shard-resid for iteration %d",
					ErrUnexpectedMsg, m.Type, m.Round, iter))
			}
			primals[id] = m.Xi
			objPartials[id] = m.W[0]
		}
		res.Primal = math.Sqrt(shard.FoldScalars(primals))
		z = zNew
		obj = shard.FoldObjective(zNew.SquaredNorm(), objPartials)

		info.ADMMIterations++
		info.ADMMPrimal = res.Primal
		info.ADMMDual = res.Dual
		if r := a.cfg.Core.Obs; r != nil {
			admm.ObserveRound(r, iter, roundStart, res)
		}
		if res.Converged(workers, a.cfg.Dist.EpsAbs) {
			break
		}
		if iter+1 < a.cfg.Dist.MaxADMMIter {
			for id, c := range a.conns {
				if err := c.Send(transport.Message{Type: transport.MsgShardNext, Round: iter + 1}); err != nil {
					return 0, a.fail(id, err)
				}
			}
		}
	}
	a.w0 = z
	return obj, nil
}

// SplitCheckpoint extracts the sub-checkpoint of the users keep selects (by
// slot index and session token), renumbering them densely in original slot
// order. Together with MergeCheckpoints and shard.Ring this is the offline
// rebalance tool: merge the shard checkpoints, then split the result by
// ring ownership into one checkpoint per new shard (see docs/SHARDING.md).
func SplitCheckpoint(ck *Checkpoint, keep func(slot int, session int64) bool) (*Checkpoint, error) {
	out := &Checkpoint{
		Epoch:     ck.Epoch,
		Dim:       ck.Dim,
		Seed:      ck.Seed,
		W0:        ck.W0.Clone(),
		Objective: append([]float64(nil), ck.Objective...),
	}
	for t := range ck.Sessions {
		if !keep(t, ck.Sessions[t]) {
			continue
		}
		out.Sessions = append(out.Sessions, ck.Sessions[t])
		out.Dropped = append(out.Dropped, ck.Dropped[t])
		out.Stale = append(out.Stale, ck.Stale[t])
		out.Us = append(out.Us, cloneVec(ck.Us[t]))
		out.LastW = append(out.LastW, cloneVec(ck.LastW[t]))
		out.LastV = append(out.LastV, cloneVec(ck.LastV[t]))
		out.LastXi = append(out.LastXi, ck.LastXi[t])
	}
	if len(out.Sessions) == 0 {
		return nil, fmt.Errorf("protocol: SplitCheckpoint selected no users")
	}
	return out, nil
}

// MergeCheckpoints concatenates shard checkpoints in argument order (the
// shard-id order, so slot concatenation matches the plane's global slot
// convention). All inputs must agree on epoch, dimension, w0, and objective
// history, and session tokens must be globally unique.
func MergeCheckpoints(cks ...*Checkpoint) (*Checkpoint, error) {
	if len(cks) == 0 {
		return nil, fmt.Errorf("protocol: MergeCheckpoints of nothing")
	}
	base := cks[0]
	out := &Checkpoint{
		Epoch:     base.Epoch,
		Dim:       base.Dim,
		Seed:      base.Seed,
		W0:        base.W0.Clone(),
		Objective: append([]float64(nil), base.Objective...),
	}
	seen := make(map[int64]bool)
	for i, ck := range cks {
		if ck.Epoch != base.Epoch || ck.Dim != base.Dim {
			return nil, fmt.Errorf("protocol: MergeCheckpoints: checkpoint %d is at epoch %d/dim %d, want %d/%d",
				i, ck.Epoch, ck.Dim, base.Epoch, base.Dim)
		}
		if !sameBits(ck.W0, base.W0) || !sameBits(ck.Objective, base.Objective) {
			return nil, fmt.Errorf("protocol: MergeCheckpoints: checkpoint %d disagrees on global state", i)
		}
		for t := range ck.Sessions {
			if s := ck.Sessions[t]; s != 0 {
				if seen[s] {
					return nil, fmt.Errorf("protocol: MergeCheckpoints: duplicate session token in checkpoint %d", i)
				}
				seen[s] = true
			}
			out.Sessions = append(out.Sessions, ck.Sessions[t])
			out.Dropped = append(out.Dropped, ck.Dropped[t])
			out.Stale = append(out.Stale, ck.Stale[t])
			out.Us = append(out.Us, cloneVec(ck.Us[t]))
			out.LastW = append(out.LastW, cloneVec(ck.LastW[t]))
			out.LastV = append(out.LastV, cloneVec(ck.LastV[t]))
			out.LastXi = append(out.LastXi, ck.LastXi[t])
		}
	}
	return out, nil
}
