// Package protocol implements the wire protocol of distributed PLOS
// (paper Algorithm 2) on top of internal/transport: a Server that owns the
// consensus state and drives CCCP + ADMM rounds, and a Client that runs on
// each user's device, keeping the raw data local and exchanging only model
// parameters.
//
// Message flow (one connection per user):
//
//	client → server  hello {dim, samples, labeled, local-init hyperplane}
//	server → client  hello {T, hyperparameters, session token}
//	per CCCP round:
//	  server → client  start-round {w0}          (device freezes CCCP signs)
//	  per ADMM iteration:
//	    server → client  params {z, u_t}
//	    client → server  update {w_t, v_t, ξ_t}
//	server → client  done {w0}
//
// The server tolerates unreliable devices in three escalating ways
// (configured by FTConfig; see docs/FAULT_TOLERANCE.md):
//
//   - Stale reuse: a device that misses the per-round deadline keeps its
//     place — the server reuses its last reported (w_t, v_t, ξ_t) for up to
//     MaxStale consecutive rounds.
//   - Session resume: the hello reply carries a session token; a device
//     whose connection died can redial, echo the token, and be re-attached
//     to its slot mid-training (RunClientLoop drives the device side).
//   - Permanent drop: a device out of stale budget (or, without resume, any
//     device whose connection fails) is removed from the consensus
//     (admm.Consensus.DropWorker) and training continues while the active
//     count stays at or above both MinActive and ceil(Quorum·T).
package protocol

import (
	"errors"
	"fmt"
	"math"
	"time"

	"plos/internal/admm"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/rng"
	"plos/internal/shard"
	"plos/internal/transport"
)

// Errors returned by the server.
var (
	ErrNoConns       = errors.New("protocol: no client connections")
	ErrDimMismatch   = errors.New("protocol: clients disagree on feature dimension")
	ErrTooFewActive  = errors.New("protocol: active clients fell below minimum")
	ErrUnexpectedMsg = errors.New("protocol: unexpected message")
	ErrAborted       = errors.New("protocol: aborted by peer")
)

// Rejoin is a reconnection attempt handed to the server: an accepted
// connection whose first message was a hello carrying a session token. The
// server validates the token against its user slots at the next iteration
// boundary and either re-attaches the device or rejects the connection.
type Rejoin struct {
	Conn  transport.Conn
	Hello transport.Message
}

// FTConfig holds the fault-tolerance knobs. The zero value disables every
// mechanism and reproduces the strict fail-fast protocol bit-for-bit.
type FTConfig struct {
	// RoundTimeout bounds how long one ADMM iteration waits for device
	// replies; devices that miss it are handled by the stale-reuse policy.
	// 0 waits forever (strict lockstep).
	RoundTimeout time.Duration
	// Quorum is the fraction of the original T devices that must remain
	// active; training aborts with ErrTooFewActive below ceil(Quorum·T).
	// Combined with MinActive via max. 0 disables the fractional bound.
	Quorum float64
	// MaxStale is how many consecutive rounds a straggler's last local
	// solution may be reused before the device is dropped (default 3).
	MaxStale int
	// Resume grants disconnected devices the stale-reuse grace period and
	// accepts re-attachments from the Rejoin channel. Without it, a failed
	// connection drops the device immediately (the pre-FT behavior).
	Resume bool
	// Rejoin delivers reconnection attempts (see Rejoin); typically fed by
	// an accept loop that reads the first hello off new connections. Drained
	// at iteration boundaries. May be nil.
	Rejoin <-chan Rejoin
	// SessionSeed keys the session-token stream; 0 falls back to Core.Seed.
	// Tokens are generated only when Resume or checkpointing is on.
	SessionSeed int64
	// CheckpointPath, when set, makes the server atomically snapshot its
	// trainer state (w0, duals, round epoch, per-user last solutions) after
	// every CheckpointEvery-th CCCP round (default every round).
	CheckpointPath  string
	CheckpointEvery int
	// Restore, when non-nil, resumes training from a loaded checkpoint:
	// the handshake matches clients to their slots by session token and the
	// CCCP loop continues from the recorded epoch.
	Restore *Checkpoint
}

// ServerConfig configures a training run.
type ServerConfig struct {
	Core core.Config
	Dist core.DistConfig
	// MinActive is the number of live devices below which the run aborts
	// (default 1).
	MinActive int
	// FT configures the fault-tolerance layer; the zero value disables it.
	FT FTConfig
	// Async switches the server to the fully asynchronous DJAM protocol
	// mode (docs/ASYNC.md): devices push updates whenever a local solve
	// finishes and each arrival folds into w0 immediately under the
	// staleness-weighted rule, with no global ADMM round clock. The mode is
	// confirmed to each client inside the hello reply; clients that did not
	// offer it in their hello are still served (the flow they see — params
	// in, update out — is identical), but plos.Join(WithAsync()) asserts
	// the confirmation. Incompatible with ReduceGroups.
	Async bool
	// ReduceGroups, when non-nil, partitions the user slots into ordered
	// groups and switches every cross-user floating-point reduction
	// (federated init, consensus sum, primal residual, objective) to the
	// grouped shape of internal/shard: per-group partials in slot order,
	// folded in group order. A single coordinator with ReduceGroups set to
	// a sharded deployment's partition reproduces that sharded run bit for
	// bit — the reference side of the bit-identity contract in
	// docs/SHARDING.md. Groups must cover every slot exactly once. Nil
	// (the default) keeps the historical sequential reductions.
	ReduceGroups [][]int
}

// ServerResult is the trained model plus per-user traffic accounting.
type ServerResult struct {
	Model *core.Model // W[t] is nil for users that dropped out
	Info  core.TrainInfo
	// Dropped[t] reports whether user t's device was permanently dropped.
	Dropped []bool
	// DropCause[t] is the first fatal failure recorded for user t (non-nil
	// for dropped users; may be non-nil for users that recovered via stale
	// reuse or resume).
	DropCause []error
	// PerUser[t] is the server-side traffic on user t's connection(s);
	// Total aggregates them.
	PerUser []transport.Stats
	Total   transport.Stats
}

func wireConfig(cfg core.Config, dist core.DistConfig) *transport.WireConfig {
	return &transport.WireConfig{
		Lambda: cfg.Lambda, Cl: cfg.Cl, Cu: cfg.Cu, Epsilon: cfg.Epsilon,
		Rho:        dist.Rho,
		MaxCutIter: cfg.MaxCutIter, QPMaxIter: cfg.QPMaxIter,
		BalanceGuard: cfg.BalanceGuard, WarmWorkingSets: cfg.WarmWorkingSets,
		// Telemetry piggyback is requested only when the server has a flight
		// recorder to merge it into; a plain observer leaves the wire bytes
		// unchanged (the observer bit-identity contract).
		Telemetry: cfg.Obs.FlightEnabled(),
	}
}

func coreConfig(w *transport.WireConfig) core.Config {
	return core.Config{
		Lambda: w.Lambda, Cl: w.Cl, Cu: w.Cu, Epsilon: w.Epsilon,
		MaxCutIter: w.MaxCutIter, QPMaxIter: w.QPMaxIter,
		BalanceGuard: w.BalanceGuard, WarmWorkingSets: w.WarmWorkingSets,
	}
}

// defaultedServerConfig fills zero fields. Exposed logic kept in one place
// so RunServer and tests agree.
func (c ServerConfig) withDefaults() ServerConfig {
	c.Core = fillCoreDefaults(c.Core)
	if c.Dist.Rho <= 0 {
		c.Dist.Rho = 1
	}
	if c.Dist.EpsAbs <= 0 {
		c.Dist.EpsAbs = 1e-3
	}
	if c.Dist.MaxADMMIter <= 0 {
		c.Dist.MaxADMMIter = 150
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.FT.MaxStale <= 0 {
		c.FT.MaxStale = 3
	}
	if c.FT.CheckpointEvery <= 0 {
		c.FT.CheckpointEvery = 1
	}
	if c.FT.Quorum < 0 {
		c.FT.Quorum = 0
	} else if c.FT.Quorum > 1 {
		c.FT.Quorum = 1
	}
	if c.FT.SessionSeed == 0 {
		c.FT.SessionSeed = c.Core.Seed
	}
	return c
}

// fillCoreDefaults mirrors core's private defaulting for the fields the
// protocol needs on the wire.
func fillCoreDefaults(c core.Config) core.Config {
	if c.Lambda <= 0 {
		c.Lambda = 100
	}
	if c.Cl <= 0 {
		c.Cl = 1
	}
	if c.Cu < 0 {
		c.Cu = 0
	} else if c.Cu == 0 {
		c.Cu = 0.2
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-3
	}
	if c.CCCPTol <= 0 {
		c.CCCPTol = 1e-3
	}
	if c.MaxCCCPIter <= 0 {
		c.MaxCCCPIter = 20
	}
	if c.MaxCutIter <= 0 {
		c.MaxCutIter = 60
	}
	if c.QPMaxIter <= 0 {
		c.QPMaxIter = 5000
	}
	return c
}

// serverUser is the server's view of one device.
type serverUser struct {
	conn    transport.Conn
	session int64
	// dropped: permanently removed from the run. detached: connection lost
	// but (with Resume) still inside the stale-reuse grace period. pending:
	// an exchange goroutine owns the connection right now. needSync: the
	// device must be sent the current round's start-round before its next
	// params. fresh: the device delivered an update this ADMM iteration.
	dropped  bool
	detached bool
	pending  bool
	needSync bool
	fresh    bool
	// stale counts consecutive rounds served from the last solution.
	stale int
	// cause is the first fatal failure observed on this user's connections.
	cause error
	// prevStats accumulates traffic of connections replaced by a resume.
	prevStats transport.Stats
	lastW     mat.Vector
	lastV     mat.Vector
	lastXi    float64
}

// stats returns the user's total server-side traffic across all of its
// connections.
func (u *serverUser) stats() transport.Stats {
	s := u.prevStats
	if u.conn != nil {
		s = s.Add(u.conn.Stats())
	}
	return s
}

// sessionToken derives the reproducible, non-zero session token of user t.
func sessionToken(seed int64, t int) int64 {
	tok := rng.New(seed).SplitN("session", t).Int63()
	if tok == 0 {
		tok = 1
	}
	return tok
}

// RunServer drives a full training run over the given client connections
// (one per user) and returns the trained model. It blocks until training
// finishes or fails. With cfg.FT.Restore set, conns must hold one connection
// per non-dropped user of the checkpoint, in any order — they are matched to
// their slots by session token.
func RunServer(conns []transport.Conn, cfg ServerConfig) (*ServerResult, error) {
	if len(conns) == 0 {
		return nil, ErrNoConns
	}
	cfg = cfg.withDefaults()
	tExpect := len(conns)
	if ck := cfg.FT.Restore; ck != nil {
		tExpect = len(ck.Sessions)
	}
	if err := validateGroups(cfg.ReduceGroups, tExpect); err != nil {
		return nil, err
	}
	if cfg.Async && cfg.ReduceGroups != nil {
		return nil, errors.New("protocol: Async is incompatible with ReduceGroups (the sharded plane is lockstep by construction)")
	}

	var st *serverState
	var prior []float64
	if ck := cfg.FT.Restore; ck != nil {
		var err error
		if st, err = restoreHandshake(conns, cfg); err != nil {
			return nil, err
		}
		prior = ck.Objective
	} else {
		var err error
		if st, err = freshHandshake(conns, cfg); err != nil {
			return nil, err
		}
	}
	tCount := len(st.users)

	cfg.Core.Obs.Counter(obs.MetricTrainRuns, "").Inc()
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordRunStart, Trainer: "server", Users: tCount})
	}
	info := core.TrainInfo{}
	cccpInfo, err := optimize.CCCPResume(func(round int) (float64, error) {
		var start time.Time
		if cfg.Core.Obs != nil {
			start = time.Now()
		}
		var obj float64
		var err error
		if cfg.Async {
			obj, err = st.asyncCCCPRound(round, &info)
		} else {
			obj, err = st.cccpRound(round, &info)
		}
		if err != nil {
			return obj, err
		}
		if r := cfg.Core.Obs; r != nil {
			r.Counter(obs.MetricCCCPIterations, "").Inc()
			r.Gauge(obs.MetricTrainObjective, "").Set(obj)
			r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
				Dur: time.Since(start), Round: round, User: -1, Value: obj})
			if r.FlightEnabled() {
				// Server-global sign flips are unknown (each device freezes
				// its own signs locally); per-device flips arrive in the
				// device-round records instead.
				r.FlightRecord(obs.Record{Kind: obs.RecordCCCPIteration, Round: round,
					Objective: obj, SignFlips: -1, Dur: time.Since(start)})
			}
		}
		st.objHistory = append(st.objHistory, obj)
		if cfg.FT.CheckpointPath != "" && (round+1)%cfg.FT.CheckpointEvery == 0 {
			if err := SaveCheckpoint(cfg.FT.CheckpointPath, st.checkpoint(round+1)); err != nil {
				return obj, fmt.Errorf("protocol: checkpoint after round %d: %w", round, err)
			}
			st.mCheckpoints.Inc()
		}
		return obj, nil
	}, cfg.Core.CCCPTol, cfg.Core.MaxCCCPIter, prior)
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		st.abort(err.Error())
		return nil, fmt.Errorf("protocol: RunServer: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordRunEnd, Converged: cccpInfo.Converged,
			Objective: cccpInfo.Objective, Round: cccpInfo.Iterations})
	}

	// Finish: broadcast the final w0. In asynchronous mode the exchanges
	// still in flight are drained first so every connection is idle and
	// actually receives the done (broadcast skips pending conns).
	if cfg.Async {
		st.asyncDrain()
	}
	done := transport.Message{Type: transport.MsgDone, W0: st.w0}
	st.broadcast(done)

	res := &ServerResult{
		Model:     &core.Model{W0: st.w0, W: make([]mat.Vector, tCount)},
		Info:      info,
		Dropped:   make([]bool, tCount),
		DropCause: make([]error, tCount),
		PerUser:   make([]transport.Stats, tCount),
	}
	for t, u := range st.users {
		res.Dropped[t] = u.dropped
		res.DropCause[t] = u.cause
		if !u.dropped {
			res.Model.W[t] = u.lastW
		}
		res.PerUser[t] = u.stats()
		res.Total = res.Total.Add(res.PerUser[t])
	}
	return res, nil
}

// collectHellos reads one hello per user and validates the shared feature
// dimension, returning it with the users' federated-init contributions in
// slot order.
func collectHellos(users []*serverUser) (dim int, initWs []mat.Vector, initWeights []float64, err error) {
	dim = -1
	initWs = make([]mat.Vector, 0, len(users))
	initWeights = make([]float64, 0, len(users))
	for t, u := range users {
		m, err := u.conn.Recv()
		if err != nil {
			return 0, nil, nil, fmt.Errorf("protocol: hello from user %d: %w", t, err)
		}
		if m.Type != transport.MsgHello {
			return 0, nil, nil, fmt.Errorf("%w: got %v during handshake", ErrUnexpectedMsg, m.Type)
		}
		if dim == -1 {
			dim = m.Dim
		} else if m.Dim != dim {
			abortUsers(users, fmt.Sprintf("dimension mismatch: %d vs %d", m.Dim, dim))
			return 0, nil, nil, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, m.Dim, dim)
		}
		initWs = append(initWs, mat.Vector(m.W))
		initWeights = append(initWeights, float64(m.Labeled))
	}
	return dim, initWs, initWeights, nil
}

// sendHelloReplies answers a fresh handshake: the population size T the
// devices size their solvers with (the global count on a shard), the
// hyperparameters, and — when needed — freshly minted session tokens.
func sendHelloReplies(users []*serverUser, total, dim int, wire *transport.WireConfig, needSessions bool, sessionSeed int64, async bool) error {
	for t, u := range users {
		reply := transport.Message{Type: transport.MsgHello, Users: total, Dim: dim, Config: wire}
		if async {
			// Confirm asynchronous mode in the reply's otherwise-unused
			// Samples field; sync replies keep it zero (byte-identical wire).
			reply.Samples = asyncHello
		}
		if needSessions {
			u.session = sessionToken(sessionSeed, t)
			reply.Session = u.session
		}
		if err := u.conn.Send(reply); err != nil {
			return fmt.Errorf("protocol: hello reply to user %d: %w", t, err)
		}
	}
	return nil
}

// freshHandshake gathers hellos, validates dimensions, aggregates the
// federated initialization, and replies with T, hyperparameters, and (when
// the fault-tolerance layer needs them) session tokens.
func freshHandshake(conns []transport.Conn, cfg ServerConfig) (*serverState, error) {
	tCount := len(conns)
	users := make([]*serverUser, tCount)
	for t, c := range conns {
		users[t] = &serverUser{conn: c}
	}
	needSessions := cfg.FT.Resume || cfg.FT.CheckpointPath != ""

	dim, initWs, initWeights, err := collectHellos(users)
	if err != nil {
		return nil, err
	}
	if err := sendHelloReplies(users, tCount, dim, wireConfig(cfg.Core, cfg.Dist),
		needSessions, cfg.FT.SessionSeed, cfg.Async); err != nil {
		return nil, err
	}
	w0 := federatedInit(cfg.ReduceGroups, initWs, initWeights, dim)
	if w0 == nil || len(w0) != dim {
		w0 = mat.NewVector(dim)
	}
	return newServerState(cfg, users, dim, w0), nil
}

// federatedInit aggregates the device init contributions: sequentially
// (core.FederatedInit) without groups, or with the grouped fold shape of
// the sharded plane when groups are set.
func federatedInit(groups [][]int, initWs []mat.Vector, initWeights []float64, dim int) mat.Vector {
	if groups == nil {
		return core.FederatedInit(initWs, initWeights)
	}
	partials := make([]shard.InitPartial, len(groups))
	for g, slots := range groups {
		ws := make([]mat.Vector, 0, len(slots))
		weights := make([]float64, 0, len(slots))
		for _, t := range slots {
			ws = append(ws, initWs[t])
			weights = append(weights, initWeights[t])
		}
		partials[g] = shard.NewInitPartial(ws, weights, dim)
	}
	return shard.FoldInit(partials, len(initWs))
}

// matchRestoreConns rebuilds the per-user slots of a checkpoint and claims
// each live slot with exactly one connection whose hello echoes that slot's
// session token. No replies are sent yet — a shard must first learn the
// global T from its aggregator.
func matchRestoreConns(conns []transport.Conn, ck *Checkpoint) ([]*serverUser, error) {
	if err := ck.validateForRestore(); err != nil {
		return nil, err
	}
	tCount := len(ck.Sessions)
	users := make([]*serverUser, tCount)
	bySession := make(map[int64]int, tCount)
	live := 0
	for t := range users {
		users[t] = &serverUser{
			session: ck.Sessions[t],
			dropped: ck.Dropped[t],
			stale:   ck.Stale[t],
			lastW:   ck.LastW[t],
			lastV:   ck.LastV[t],
			lastXi:  ck.LastXi[t],
		}
		if !ck.Dropped[t] {
			bySession[ck.Sessions[t]] = t
			live++
		}
	}
	if len(conns) != live {
		return nil, fmt.Errorf("protocol: restore: checkpoint has %d live users, got %d connections", live, len(conns))
	}
	for i, c := range conns {
		m, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("protocol: restore hello on connection %d: %w", i, err)
		}
		if m.Type != transport.MsgHello {
			return nil, fmt.Errorf("%w: got %v during restore handshake", ErrUnexpectedMsg, m.Type)
		}
		t, ok := bySession[m.Session]
		if !ok {
			abortConn(c, "unknown or duplicate session token")
			return nil, fmt.Errorf("protocol: restore: connection %d presented unknown session token", i)
		}
		if m.Dim != ck.Dim {
			abortConn(c, fmt.Sprintf("dimension mismatch: %d vs checkpoint %d", m.Dim, ck.Dim))
			return nil, fmt.Errorf("%w: %d vs checkpoint %d", ErrDimMismatch, m.Dim, ck.Dim)
		}
		delete(bySession, m.Session) // each token claims exactly one slot
		users[t].conn = c
	}
	return users, nil
}

// sendRestoreReplies answers a restore handshake: the reply carries the
// recorded epoch so clients know which round they are rejoining.
func sendRestoreReplies(users []*serverUser, total, dim, epoch int, wire *transport.WireConfig, async bool) error {
	for t, u := range users {
		if u.dropped {
			continue
		}
		reply := transport.Message{Type: transport.MsgHello, Users: total, Dim: dim,
			Round: epoch, Session: u.session, Config: wire}
		if async {
			reply.Samples = asyncHello
		}
		if err := u.conn.Send(reply); err != nil {
			return fmt.Errorf("protocol: restore hello reply to user %d: %w", t, err)
		}
	}
	return nil
}

// stateFromCheckpoint builds the trainer state of a restored run: the
// checkpoint's w0, objective history, and per-user duals, with the token
// stream continuing from the checkpoint's seed so re-saved checkpoints keep
// the same identities.
func stateFromCheckpoint(cfg ServerConfig, users []*serverUser, ck *Checkpoint) *serverState {
	cfg.FT.SessionSeed = ck.Seed
	st := newServerState(cfg, users, ck.Dim, ck.W0.Clone())
	st.objHistory = append([]float64(nil), ck.Objective...)
	for t, u := range ck.Us {
		if u != nil {
			st.us[t] = u
		}
	}
	return st
}

// restoreHandshake rebuilds the server state from a checkpoint: every
// non-dropped slot of the checkpoint must be claimed by exactly one
// connection whose hello echoes that slot's session token. The reply carries
// the recorded epoch so clients know which round they are rejoining.
func restoreHandshake(conns []transport.Conn, cfg ServerConfig) (*serverState, error) {
	ck := cfg.FT.Restore
	users, err := matchRestoreConns(conns, ck)
	if err != nil {
		return nil, err
	}
	if err := sendRestoreReplies(users, len(users), ck.Dim, ck.Epoch,
		wireConfig(cfg.Core, cfg.Dist), cfg.Async); err != nil {
		return nil, err
	}
	return stateFromCheckpoint(cfg, users, ck), nil
}

// exchangeReply is one exchange goroutine's report back to the round loop.
type exchangeReply struct {
	user int
	iter int
	conn transport.Conn
	msg  transport.Message
	err  error
}

// serverState carries the consensus across CCCP rounds.
type serverState struct {
	cfg   ServerConfig
	users []*serverUser
	dim   int
	w0    mat.Vector
	// us holds the scaled duals of the *active* users, persisted across
	// CCCP rounds (consistent with ADMM warm-starting).
	us map[int]mat.Vector
	// epoch is the CCCP round currently in progress (for resume replies).
	epoch int
	// objHistory is the objective after each completed round (prior rounds
	// included on restore); snapshot into checkpoints.
	objHistory []float64
	// replies receives exchange outcomes; buffered to len(users) so a late
	// goroutine never blocks (at most one exchange is in flight per user).
	replies chan exchangeReply
	// groupOf maps a user slot to its ReduceGroups index; nil without groups.
	groupOf []int
	// asyncEpoch[t] is the fold epoch at user t's last snapshot launch —
	// the baseline for measuring an asynchronous arrival's staleness.
	asyncEpoch []int

	mStale, mReconnects, mDropped, mCheckpoints, mDropCause *obs.Counter
}

func newServerState(cfg ServerConfig, users []*serverUser, dim int, w0 mat.Vector) *serverState {
	r := cfg.Core.Obs
	st := &serverState{
		cfg: cfg, users: users, dim: dim, w0: w0,
		us:           make(map[int]mat.Vector),
		asyncEpoch:   make([]int, len(users)),
		replies:      make(chan exchangeReply, len(users)),
		mStale:       r.Counter(obs.MetricProtocolStaleReuses, ""),
		mReconnects:  r.Counter(obs.MetricProtocolReconnects, ""),
		mDropped:     r.Counter(obs.MetricProtocolDroppedDevices, ""),
		mCheckpoints: r.Counter(obs.MetricCheckpointsWritten, ""),
		mDropCause:   r.Counter(obs.MetricProtocolDeviceDrops, ""),
	}
	if cfg.ReduceGroups != nil { // pre-validated by validateGroups
		st.groupOf = make([]int, len(users))
		for g, slots := range cfg.ReduceGroups {
			for _, t := range slots {
				if t >= 0 && t < len(users) {
					st.groupOf[t] = g
				}
			}
		}
	}
	return st
}

// validateGroups checks that groups (when set) cover every one of total user
// slots exactly once — the precondition of every grouped reduction.
func validateGroups(groups [][]int, total int) error {
	if groups == nil {
		return nil
	}
	seen := make([]int, total)
	for i := range seen {
		seen[i] = -1
	}
	for g, slots := range groups {
		for _, t := range slots {
			if t < 0 || t >= total {
				return fmt.Errorf("protocol: ReduceGroups group %d references slot %d outside [0,%d)", g, t, total)
			}
			if seen[t] != -1 {
				return fmt.Errorf("protocol: ReduceGroups slot %d appears in groups %d and %d", t, seen[t], g)
			}
			seen[t] = g
		}
	}
	for t, g := range seen {
		if g == -1 {
			return fmt.Errorf("protocol: ReduceGroups assigns slot %d to no group", t)
		}
	}
	return nil
}

// flight returns the observer registry when it has a flight recorder
// attached, nil otherwise — so call sites read like the nil-safe Obs checks.
func (st *serverState) flight() *obs.Registry {
	if r := st.cfg.Core.Obs; r.FlightEnabled() {
		return r
	}
	return nil
}

func (st *serverState) active() []int {
	var idx []int
	for t, u := range st.users {
		if !u.dropped {
			idx = append(idx, t)
		}
	}
	return idx
}

// minActive is the permanent-drop abort threshold: the configured MinActive
// floor or the quorum fraction of the original device count, whichever is
// larger.
func (st *serverState) minActive() int {
	min := st.cfg.MinActive
	if q := st.cfg.FT.Quorum; q > 0 {
		if qn := int(math.Ceil(q * float64(len(st.users)))); qn > min {
			min = qn
		}
	}
	return min
}

// checkpoint snapshots the trainer state after `epoch` completed rounds.
func (st *serverState) checkpoint(epoch int) *Checkpoint {
	tCount := len(st.users)
	ck := &Checkpoint{
		Epoch:     epoch,
		Dim:       st.dim,
		Seed:      st.cfg.FT.SessionSeed,
		W0:        st.w0.Clone(),
		Objective: append([]float64(nil), st.objHistory...),
		Sessions:  make([]int64, tCount),
		Dropped:   make([]bool, tCount),
		Stale:     make([]int, tCount),
		Us:        make([]mat.Vector, tCount),
		LastW:     make([]mat.Vector, tCount),
		LastV:     make([]mat.Vector, tCount),
		LastXi:    make([]float64, tCount),
	}
	for t, u := range st.users {
		sess := u.session
		if sess == 0 {
			sess = sessionToken(st.cfg.FT.SessionSeed, t)
		}
		ck.Sessions[t] = sess
		ck.Dropped[t] = u.dropped
		ck.Stale[t] = u.stale
		if d, ok := st.us[t]; ok {
			ck.Us[t] = d.Clone()
		}
		if u.lastW != nil {
			ck.LastW[t] = u.lastW.Clone()
		}
		if u.lastV != nil {
			ck.LastV[t] = u.lastV.Clone()
		}
		ck.LastXi[t] = u.lastXi
	}
	return ck
}

// noteConnFailure records a connection failure for user t: the connection is
// closed (satisfying the no-leak invariant), its traffic folded into the
// user's total, and the user marked detached. conn identifies which
// connection failed — a report about a connection that was already replaced
// by a resume is ignored.
func (st *serverState) noteConnFailure(t int, conn transport.Conn, err error) {
	u := st.users[t]
	if u.conn != conn || conn == nil {
		return
	}
	u.prevStats = u.prevStats.Add(u.conn.Stats())
	_ = u.conn.Close()
	u.conn = nil
	u.detached = true
	if u.cause == nil {
		u.cause = err
		st.mDropCause.Inc()
		if fr := st.flight(); fr != nil {
			fr.FlightRecord(obs.Record{Kind: obs.RecordDeviceDrop, User: t,
				Cause: err.Error(), Permanent: false})
		}
	}
}

// drop permanently removes user t from the run. pos is the user's position
// in the current consensus; cons may be nil when no consensus is live (the
// caller then owns the index bookkeeping). Returns ErrTooFewActive when the
// survivors fall below the quorum threshold.
func (st *serverState) drop(t, pos int, cons *admm.Consensus, cause error) error {
	u := st.users[t]
	if u.dropped {
		return nil
	}
	u.dropped = true
	u.detached = false
	if u.cause == nil {
		u.cause = cause
		st.mDropCause.Inc()
	}
	if u.conn != nil {
		u.prevStats = u.prevStats.Add(u.conn.Stats())
		_ = u.conn.Close() // also unblocks a pending exchange goroutine
		u.conn = nil
	}
	delete(st.us, t)
	st.mDropped.Inc()
	if fr := st.flight(); fr != nil {
		causeStr := ""
		if u.cause != nil {
			causeStr = u.cause.Error()
		}
		fr.FlightRecord(obs.Record{Kind: obs.RecordDeviceDrop, User: t,
			Cause: causeStr, Permanent: true})
	}
	if cons != nil {
		if err := cons.DropWorker(pos); err != nil {
			return err
		}
	}
	if n := len(st.active()); n < st.minActive() {
		if fr := st.flight(); fr != nil {
			fr.FlightRecord(obs.Record{Kind: obs.RecordQuorum, Active: n, Need: st.minActive()})
		}
		return fmt.Errorf("%w: %d < %d (last failure: user %d: %v)",
			ErrTooFewActive, n, st.minActive(), t, u.cause)
	}
	return nil
}

// drainRejoins attaches any queued reconnections. Called at iteration
// boundaries, never mid-exchange.
func (st *serverState) drainRejoins() {
	if st.cfg.FT.Rejoin == nil {
		return
	}
	for {
		select {
		case rj := <-st.cfg.FT.Rejoin:
			st.attach(rj)
		default:
			return
		}
	}
}

// attach validates one rejoin attempt and swaps the new connection into the
// matching user slot.
func (st *serverState) attach(rj Rejoin) {
	if rj.Conn == nil {
		return
	}
	tok := rj.Hello.Session
	slot := -1
	if tok != 0 && rj.Hello.Type == transport.MsgHello {
		for t, u := range st.users {
			if u.session == tok && !u.dropped {
				slot = t
				break
			}
		}
	}
	if slot == -1 {
		abortConn(rj.Conn, "unknown session token")
		return
	}
	u := st.users[slot]
	if rj.Hello.Dim != st.dim {
		abortConn(rj.Conn, fmt.Sprintf("dimension mismatch: %d vs %d", rj.Hello.Dim, st.dim))
		return
	}
	if old := u.conn; old != nil {
		// The server may not have noticed the failure the client redialed
		// over; retire the old connection (unblocking any pending exchange).
		u.prevStats = u.prevStats.Add(old.Stats())
		_ = old.Close()
	}
	reply := transport.Message{Type: transport.MsgHello, Users: len(st.users), Dim: st.dim,
		Round: st.epoch, Session: u.session,
		Config: wireConfig(st.cfg.Core, st.cfg.Dist)}
	if st.cfg.Async {
		reply.Samples = asyncHello
	}
	if err := rj.Conn.Send(reply); err != nil {
		_ = rj.Conn.Close()
		u.conn = nil
		u.detached = true
		return
	}
	u.conn = rj.Conn
	u.detached = false
	u.needSync = true
	st.mReconnects.Inc()
}

// broadcast sends m to all active users with an idle connection.
func (st *serverState) broadcast(m transport.Message) {
	for _, t := range st.active() {
		u := st.users[t]
		if u.conn == nil || u.pending {
			continue // a pending exchange owns the connection
		}
		if err := u.conn.Send(m); err != nil {
			st.noteConnFailure(t, u.conn, err)
			if !st.cfg.FT.Resume {
				// Without resume there is no way back: record the drop
				// (quorum no longer matters — broadcast only carries the
				// final done).
				u.dropped = true
				u.detached = false
				st.mDropped.Inc()
			}
		}
	}
}

// abort tells every reachable device the run failed.
func (st *serverState) abort(reason string) {
	for _, t := range st.active() {
		u := st.users[t]
		if u.conn == nil || u.pending {
			continue
		}
		_ = u.conn.Send(transport.Message{Type: transport.MsgError, Reason: reason})
	}
}

// exchange runs one device exchange on its own goroutine: optionally the
// round's start-round, then params, then the update reply. It owns conn for
// its whole duration and reports exactly once on st.replies.
func (st *serverState) exchange(t, iter int, conn transport.Conn, start *transport.Message, params transport.Message) {
	if start != nil {
		if err := conn.Send(*start); err != nil {
			st.replies <- exchangeReply{user: t, iter: iter, conn: conn, err: err}
			return
		}
	}
	if err := conn.Send(params); err != nil {
		st.replies <- exchangeReply{user: t, iter: iter, conn: conn, err: err}
		return
	}
	rep, err := conn.Recv()
	if err == nil && rep.Type != transport.MsgUpdate {
		err = fmt.Errorf("%w: got %v, want update", ErrUnexpectedMsg, rep.Type)
	}
	st.replies <- exchangeReply{user: t, iter: iter, conn: conn, msg: rep, err: err}
}

// gatherEnv parameterizes one ADMM iteration's device exchange so the same
// launch/collect/straggler machinery serves both round drivers (the
// coordinator's cccpRound and a shard's shardRound): where the z and
// per-participant dual vectors come from, and how a failed user is dropped.
type gatherEnv struct {
	round      int
	iter       int
	roundStart time.Time
	// roundW0 is sent as start-round to participants flagged needSync.
	roundW0 mat.Vector
	z       mat.Vector
	// dual returns the current scaled dual for consensus position i / user
	// slot t; it is cloned into the outgoing message.
	dual func(i, t int) mat.Vector
	// drop permanently removes user t (consensus position pos); it returns
	// ErrTooFewActive when the survivors fall below quorum.
	drop func(t, pos int, cause error) error
}

// gather runs one iteration's exchange with every reachable, idle
// participant and assembles the x-updates in deterministic slot order,
// applying the stale-reuse/drop straggler policy. keep is the surviving
// subset of parts, aligned with xs.
func (st *serverState) gather(parts []int, env gatherEnv) (xs []mat.Vector, keep []int, err error) {
	cfg := st.cfg
	iter := env.iter
	st.drainRejoins()

	// Launch an exchange with every reachable, idle participant. The
	// consensus vectors are cloned into the messages because a straggler
	// goroutine may still hold them when the next step mutates the
	// originals.
	launched := 0
	for i, t := range parts {
		u := st.users[t]
		u.fresh = false
		if u.pending || u.conn == nil {
			continue
		}
		params := transport.Message{Type: transport.MsgParams, Round: iter,
			W0: env.z.Clone(), U: cloneVec(env.dual(i, t))}
		var start *transport.Message
		if u.needSync {
			start = &transport.Message{Type: transport.MsgStartRound, Round: env.round, W0: env.roundW0.Clone()}
			u.needSync = false
		}
		u.pending = true
		launched++
		go st.exchange(t, iter, u.conn, start, params)
	}

	// Collect until every launched exchange reported or the round
	// deadline fires; whoever is still pending becomes a straggler.
	waiting := launched
	var deadline <-chan time.Time
	var timer *time.Timer
	if cfg.FT.RoundTimeout > 0 && waiting > 0 {
		timer = time.NewTimer(cfg.FT.RoundTimeout)
		deadline = timer.C
	}
	for waiting > 0 {
		select {
		case r := <-st.replies:
			u := st.users[r.user]
			u.pending = false
			if r.iter == iter {
				waiting--
			}
			if u.dropped {
				continue
			}
			if r.err != nil {
				st.noteConnFailure(r.user, r.conn, r.err)
				continue
			}
			if r.iter != iter {
				continue // stale reply from a previous iteration
			}
			u.fresh = true
			u.lastW = mat.Vector(r.msg.W)
			u.lastV = mat.Vector(r.msg.V)
			u.lastXi = r.msg.Xi
			st.recordDeviceTelemetry(r, env.roundStart)
		case <-deadline:
			waiting = 0
		}
	}
	if timer != nil {
		timer.Stop()
	}

	// Assemble the x-updates in deterministic slot order. A participant
	// without a fresh reply is either carried on its last solution
	// (within the stale budget) or permanently dropped.
	xs = make([]mat.Vector, 0, len(parts))
	keep = make([]int, 0, len(parts))
	pos := 0
	for _, t := range parts {
		u := st.users[t]
		ok := u.fresh
		if ok {
			u.stale = 0
		} else if u.lastW != nil && u.stale < cfg.FT.MaxStale &&
			(cfg.FT.RoundTimeout > 0 || cfg.FT.Resume) &&
			(cfg.FT.Resume || !u.detached) {
			// Stale reuse covers deadline stragglers always, and lost
			// connections only when resume gives them a way back.
			u.stale++
			st.mStale.Inc()
			if fr := st.flight(); fr != nil {
				fr.FlightRecord(obs.Record{Kind: obs.RecordStaleReuse,
					Round: iter, User: t, Stale: u.stale})
			}
			ok = true
		}
		if !ok {
			cause := u.cause
			if cause == nil {
				cause = fmt.Errorf("no update within the round deadline (stale budget %d exhausted)", cfg.FT.MaxStale)
			}
			if err := env.drop(t, pos, cause); err != nil {
				return nil, nil, err
			}
			continue
		}
		xs = append(xs, mat.SubVec(u.lastW, u.lastV))
		keep = append(keep, t)
		pos++
	}
	if len(xs) == 0 {
		if fr := st.flight(); fr != nil {
			fr.FlightRecord(obs.Record{Kind: obs.RecordQuorum, Active: 0, Need: st.minActive()})
		}
		return nil, nil, fmt.Errorf("%w: all devices failed in the same round", ErrTooFewActive)
	}
	return xs, keep, nil
}

// groupPositions buckets the surviving consensus positions by ReduceGroups
// group, in slot order (parts is ascending, so appending preserves it).
func (st *serverState) groupPositions(parts []int) [][]int {
	gpos := make([][]int, len(st.cfg.ReduceGroups))
	for i, t := range parts {
		g := st.groupOf[t]
		gpos[g] = append(gpos[g], i)
	}
	return gpos
}

// stepGrouped advances the consensus with the same semantics as
// admm.Consensus.Step but with every cross-user floating-point reduction in
// the grouped shape of internal/shard: per-group partials in slot order,
// folded in group order. Groups whose members all dropped contribute no
// partial (a sharded deployment aborts before a shard reaches zero live
// users, so the reference stays aligned with what shards actually send).
func (st *serverState) stepGrouped(cons *admm.Consensus, xs []mat.Vector, parts []int) admm.Residuals {
	rho := st.cfg.Dist.Rho
	gpos := st.groupPositions(parts)

	sums := make([]mat.Vector, 0, len(gpos))
	for _, pos := range gpos {
		if len(pos) == 0 {
			continue
		}
		gxs := make([]mat.Vector, len(pos))
		gus := make([]mat.Vector, len(pos))
		for k, i := range pos {
			gxs[k], gus[k] = xs[i], cons.U[i]
		}
		sums = append(sums, shard.SumXU(gxs, gus, st.dim))
	}
	zNew := admm.SquaredNormZ(shard.Fold(sums), len(xs), rho)

	var res admm.Residuals
	res.Dual = rho * math.Sqrt(2*float64(len(xs))) * mat.Dist2(zNew, cons.Z)
	primals := make([]float64, 0, len(gpos))
	for _, pos := range gpos {
		if len(pos) == 0 {
			continue
		}
		gxs := make([]mat.Vector, len(pos))
		gus := make([]mat.Vector, len(pos))
		for k, i := range pos {
			gxs[k], gus[k] = xs[i], cons.U[i] // ApplyZ updates cons.U in place
		}
		primals = append(primals, shard.ApplyZ(gxs, gus, zNew))
	}
	res.Primal = math.Sqrt(shard.FoldScalars(primals))
	cons.Z = zNew
	return res
}

// objectivePartial is one partition's Eq. (23) objective contribution from
// the last reported (v_t, ξ_t) of its live users, in slot order.
func objectivePartial(users []*serverUser, slots []int, lambdaOverT float64) float64 {
	var p float64
	for _, t := range slots {
		u := users[t]
		if !u.dropped && u.lastV != nil {
			p += lambdaOverT*u.lastV.SquaredNorm() + u.lastXi
		}
	}
	return p
}

// cccpRound runs one CCCP round: announce the linearization point, then
// iterate ADMM until the residual rule fires. Returns the objective L of
// Eq. (23).
func (st *serverState) cccpRound(round int, info *core.TrainInfo) (float64, error) {
	cfg := st.cfg
	st.epoch = round
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
	}
	st.drainRejoins()

	parts := st.active()
	roundW0 := st.w0.Clone()
	for _, t := range parts {
		st.users[t].needSync = true
	}

	cons, err := admm.NewConsensus(st.dim, len(parts), cfg.Dist.Rho, admm.SquaredNormZ)
	if err != nil {
		return 0, err
	}
	cons.Z = st.w0.Clone()
	for i, t := range parts {
		if u, ok := st.us[t]; ok {
			cons.U[i] = u
		}
	}

	for iter := 0; iter < cfg.Dist.MaxADMMIter; iter++ {
		var roundStart time.Time
		if cfg.Core.Obs != nil {
			roundStart = time.Now()
		}
		xs, keep, err := st.gather(parts, gatherEnv{
			round: round, iter: iter, roundStart: roundStart, roundW0: roundW0,
			z:    cons.Z,
			dual: func(i, t int) mat.Vector { return cons.U[i] },
			drop: func(t, pos int, cause error) error { return st.drop(t, pos, cons, cause) },
		})
		if err != nil {
			return 0, err
		}
		parts = keep

		var res admm.Residuals
		if st.cfg.ReduceGroups != nil {
			res = st.stepGrouped(cons, xs, parts)
		} else {
			if res, err = cons.Step(xs); err != nil {
				return 0, err
			}
		}
		info.ADMMIterations++
		info.ADMMPrimal = res.Primal
		info.ADMMDual = res.Dual
		if r := cfg.Core.Obs; r != nil {
			admm.ObserveRound(r, iter, roundStart, res)
		}
		// Persist duals by user id for the next CCCP round.
		for i, t := range parts {
			st.us[t] = cons.U[i]
		}
		if res.Converged(len(xs), cfg.Dist.EpsAbs) {
			break
		}
	}
	st.w0 = cons.Z

	// Objective L of Eq. (23) from the last reported (v_t, ξ_t).
	lambdaOverT := cfg.Core.Lambda / float64(len(st.users))
	if groups := st.cfg.ReduceGroups; groups != nil {
		partials := make([]float64, 0, len(groups))
		for _, slots := range groups {
			live := 0
			for _, t := range slots {
				if !st.users[t].dropped {
					live++
				}
			}
			if live == 0 {
				continue // all-dropped group: a shard in its place would have aborted
			}
			partials = append(partials, objectivePartial(st.users, slots, lambdaOverT))
		}
		return shard.FoldObjective(st.w0.SquaredNorm(), partials), nil
	}
	obj := st.w0.SquaredNorm()
	for _, t := range st.active() {
		u := st.users[t]
		if u.lastV != nil {
			obj += lambdaOverT*u.lastV.SquaredNorm() + u.lastXi
		}
	}
	return obj, nil
}

func cloneVec(v mat.Vector) mat.Vector {
	if v == nil {
		return nil
	}
	return v.Clone()
}

// abortUsers tells every user with a live connection the run failed
// (handshake-time variant of serverState.abort).
func abortUsers(users []*serverUser, reason string) {
	for _, u := range users {
		if !u.dropped && u.conn != nil {
			_ = u.conn.Send(transport.Message{Type: transport.MsgError, Reason: reason})
		}
	}
}

// abortConn rejects a single connection with a reason and closes it.
func abortConn(c transport.Conn, reason string) {
	_ = c.Send(transport.Message{Type: transport.MsgError, Reason: reason})
	_ = c.Close()
}
