// Package protocol implements the wire protocol of distributed PLOS
// (paper Algorithm 2) on top of internal/transport: a Server that owns the
// consensus state and drives CCCP + ADMM rounds, and a Client that runs on
// each user's device, keeping the raw data local and exchanging only model
// parameters.
//
// Message flow (one connection per user):
//
//	client → server  hello {dim, samples, labeled, local-init hyperplane}
//	server → client  hello {T, hyperparameters}
//	per CCCP round:
//	  server → client  start-round {w0}          (device freezes CCCP signs)
//	  per ADMM iteration:
//	    server → client  params {z, u_t}
//	    client → server  update {w_t, v_t, ξ_t}
//	server → client  done {w0}
//
// The server tolerates device dropouts: a connection that fails mid-round
// is removed from the consensus (admm.Consensus.DropWorker) and training
// continues with the survivors, down to a configurable minimum.
package protocol

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"plos/internal/admm"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/optimize"
	"plos/internal/transport"
)

// Errors returned by the server.
var (
	ErrNoConns       = errors.New("protocol: no client connections")
	ErrDimMismatch   = errors.New("protocol: clients disagree on feature dimension")
	ErrTooFewActive  = errors.New("protocol: active clients fell below minimum")
	ErrUnexpectedMsg = errors.New("protocol: unexpected message")
	ErrAborted       = errors.New("protocol: aborted by peer")
)

// ServerConfig configures a training run.
type ServerConfig struct {
	Core core.Config
	Dist core.DistConfig
	// MinActive is the number of live devices below which the run aborts
	// (default 1).
	MinActive int
}

// ServerResult is the trained model plus per-user traffic accounting.
type ServerResult struct {
	Model *core.Model // W[t] is nil for users that dropped out
	Info  core.TrainInfo
	// Dropped[t] reports whether user t's device died during training.
	Dropped []bool
	// PerUser[t] is the server-side traffic on user t's connection;
	// Total aggregates them.
	PerUser []transport.Stats
	Total   transport.Stats
}

func wireConfig(cfg core.Config, dist core.DistConfig) *transport.WireConfig {
	return &transport.WireConfig{
		Lambda: cfg.Lambda, Cl: cfg.Cl, Cu: cfg.Cu, Epsilon: cfg.Epsilon,
		Rho:        dist.Rho,
		MaxCutIter: cfg.MaxCutIter, QPMaxIter: cfg.QPMaxIter,
		BalanceGuard: cfg.BalanceGuard, WarmWorkingSets: cfg.WarmWorkingSets,
	}
}

func coreConfig(w *transport.WireConfig) core.Config {
	return core.Config{
		Lambda: w.Lambda, Cl: w.Cl, Cu: w.Cu, Epsilon: w.Epsilon,
		MaxCutIter: w.MaxCutIter, QPMaxIter: w.QPMaxIter,
		BalanceGuard: w.BalanceGuard, WarmWorkingSets: w.WarmWorkingSets,
	}
}

// defaultedServerConfig fills zero fields. Exposed logic kept in one place
// so RunServer and tests agree.
func (c ServerConfig) withDefaults() ServerConfig {
	c.Core = fillCoreDefaults(c.Core)
	if c.Dist.Rho <= 0 {
		c.Dist.Rho = 1
	}
	if c.Dist.EpsAbs <= 0 {
		c.Dist.EpsAbs = 1e-3
	}
	if c.Dist.MaxADMMIter <= 0 {
		c.Dist.MaxADMMIter = 150
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	return c
}

// fillCoreDefaults mirrors core's private defaulting for the fields the
// protocol needs on the wire.
func fillCoreDefaults(c core.Config) core.Config {
	if c.Lambda <= 0 {
		c.Lambda = 100
	}
	if c.Cl <= 0 {
		c.Cl = 1
	}
	if c.Cu < 0 {
		c.Cu = 0
	} else if c.Cu == 0 {
		c.Cu = 0.2
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-3
	}
	if c.CCCPTol <= 0 {
		c.CCCPTol = 1e-3
	}
	if c.MaxCCCPIter <= 0 {
		c.MaxCCCPIter = 20
	}
	if c.MaxCutIter <= 0 {
		c.MaxCutIter = 60
	}
	if c.QPMaxIter <= 0 {
		c.QPMaxIter = 5000
	}
	return c
}

// serverUser is the server's view of one device.
type serverUser struct {
	conn    transport.Conn
	dropped bool
	lastW   mat.Vector
	lastV   mat.Vector
	lastXi  float64
}

// RunServer drives a full training run over the given client connections
// (one per user) and returns the trained model. It blocks until training
// finishes or fails.
func RunServer(conns []transport.Conn, cfg ServerConfig) (*ServerResult, error) {
	if len(conns) == 0 {
		return nil, ErrNoConns
	}
	cfg = cfg.withDefaults()
	tCount := len(conns)

	users := make([]*serverUser, tCount)
	for t, c := range conns {
		users[t] = &serverUser{conn: c}
	}

	// Handshake: gather hellos, validate dimensions, aggregate the
	// federated initialization, reply with T and hyperparameters.
	dim := -1
	initWs := make([]mat.Vector, 0, tCount)
	initWeights := make([]float64, 0, tCount)
	for t, u := range users {
		m, err := u.conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("protocol: hello from user %d: %w", t, err)
		}
		if m.Type != transport.MsgHello {
			return nil, fmt.Errorf("%w: got %v during handshake", ErrUnexpectedMsg, m.Type)
		}
		if dim == -1 {
			dim = m.Dim
		} else if m.Dim != dim {
			abort(users, fmt.Sprintf("dimension mismatch: %d vs %d", m.Dim, dim))
			return nil, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, m.Dim, dim)
		}
		initWs = append(initWs, mat.Vector(m.W))
		initWeights = append(initWeights, float64(m.Labeled))
	}
	reply := transport.Message{Type: transport.MsgHello, Users: tCount, Dim: dim,
		Config: wireConfig(cfg.Core, cfg.Dist)}
	for t, u := range users {
		if err := u.conn.Send(reply); err != nil {
			return nil, fmt.Errorf("protocol: hello reply to user %d: %w", t, err)
		}
	}
	w0 := core.FederatedInit(initWs, initWeights)
	if w0 == nil || len(w0) != dim {
		w0 = mat.NewVector(dim)
	}

	st := &serverState{cfg: cfg, users: users, dim: dim, w0: w0}
	cfg.Core.Obs.Counter(obs.MetricTrainRuns, "").Inc()
	info := core.TrainInfo{}
	cccpInfo, err := optimize.CCCP(func(round int) (float64, error) {
		var start time.Time
		if cfg.Core.Obs != nil {
			start = time.Now()
		}
		obj, err := st.cccpRound(round, &info)
		if err == nil {
			if r := cfg.Core.Obs; r != nil {
				r.Counter(obs.MetricCCCPIterations, "").Inc()
				r.Gauge(obs.MetricTrainObjective, "").Set(obj)
				r.Span(obs.Span{Kind: obs.SpanCCCPIteration, Start: start,
					Dur: time.Since(start), Round: round, User: -1, Value: obj})
			}
		}
		return obj, err
	}, cfg.Core.CCCPTol, cfg.Core.MaxCCCPIter)
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		abort(users, err.Error())
		return nil, fmt.Errorf("protocol: RunServer: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History

	// Finish: broadcast the final w0.
	done := transport.Message{Type: transport.MsgDone, W0: st.w0}
	st.broadcast(done)

	res := &ServerResult{
		Model:   &core.Model{W0: st.w0, W: make([]mat.Vector, tCount)},
		Info:    info,
		Dropped: make([]bool, tCount),
		PerUser: make([]transport.Stats, tCount),
	}
	for t, u := range users {
		res.Dropped[t] = u.dropped
		if !u.dropped {
			res.Model.W[t] = u.lastW
		}
		res.PerUser[t] = u.conn.Stats()
		res.Total = res.Total.Add(res.PerUser[t])
	}
	return res, nil
}

// serverState carries the consensus across CCCP rounds.
type serverState struct {
	cfg   ServerConfig
	users []*serverUser
	dim   int
	w0    mat.Vector
	// us holds the scaled duals of the *active* users, persisted across
	// CCCP rounds (consistent with ADMM warm-starting).
	us map[int]mat.Vector
}

func (st *serverState) active() []int {
	var idx []int
	for t, u := range st.users {
		if !u.dropped {
			idx = append(idx, t)
		}
	}
	return idx
}

// drop marks user t dead and checks the minimum-active invariant.
func (st *serverState) drop(t int, cause error) error {
	st.users[t].dropped = true
	if len(st.active()) < st.cfg.MinActive {
		return fmt.Errorf("%w: %d < %d (last failure: user %d: %v)",
			ErrTooFewActive, len(st.active()), st.cfg.MinActive, t, cause)
	}
	return nil
}

// broadcast sends m to all active users, dropping the ones that fail.
// Errors from the minimum-active check are ignored here because broadcast
// is only used for the final MsgDone.
func (st *serverState) broadcast(m transport.Message) {
	for _, t := range st.active() {
		if err := st.users[t].conn.Send(m); err != nil {
			st.users[t].dropped = true
		}
	}
}

// cccpRound runs one CCCP round: announce the linearization point, then
// iterate ADMM until the residual rule fires. Returns the objective L of
// Eq. (23).
func (st *serverState) cccpRound(round int, info *core.TrainInfo) (float64, error) {
	cfg := st.cfg
	// Start-round announcement.
	for _, t := range st.active() {
		msg := transport.Message{Type: transport.MsgStartRound, Round: round, W0: st.w0}
		if err := st.users[t].conn.Send(msg); err != nil {
			if derr := st.drop(t, err); derr != nil {
				return 0, derr
			}
		}
	}
	if st.us == nil {
		st.us = make(map[int]mat.Vector)
	}

	cons, err := admm.NewConsensus(st.dim, len(st.active()), cfg.Dist.Rho, admm.SquaredNormZ)
	if err != nil {
		return 0, err
	}
	cons.Z = st.w0.Clone()
	for i, t := range st.active() {
		if u, ok := st.us[t]; ok {
			cons.U[i] = u
		}
	}

	for iter := 0; iter < cfg.Dist.MaxADMMIter; iter++ {
		var roundStart time.Time
		if cfg.Core.Obs != nil {
			roundStart = time.Now()
		}
		activeIdx := st.active()
		// Parallel param/update exchange with every active device.
		type outcome struct {
			user int
			msg  transport.Message
			err  error
		}
		results := make([]outcome, len(activeIdx))
		var wg sync.WaitGroup
		for i, t := range activeIdx {
			wg.Add(1)
			go func(i, t, consIdx int) {
				defer wg.Done()
				u := st.users[t]
				msg := transport.Message{Type: transport.MsgParams, Round: iter,
					W0: cons.Z, U: cons.U[consIdx]}
				if err := u.conn.Send(msg); err != nil {
					results[i] = outcome{user: t, err: err}
					return
				}
				rep, err := u.conn.Recv()
				if err == nil && rep.Type != transport.MsgUpdate {
					err = fmt.Errorf("%w: got %v, want update", ErrUnexpectedMsg, rep.Type)
				}
				results[i] = outcome{user: t, msg: rep, err: err}
			}(i, t, i)
		}
		wg.Wait()

		// Handle dropouts: rebuild the consensus without the dead users.
		xs := make([]mat.Vector, 0, len(activeIdx))
		kept := make([]int, 0, len(activeIdx))
		for i, r := range results {
			if r.err != nil {
				st.users[r.user].dropped = true
				if derr := st.drop(r.user, r.err); derr != nil {
					return 0, derr
				}
				// Remove the dual of the dropped user, adjusting for the
				// users already removed this iteration.
				if err := cons.DropWorker(i - (len(activeIdx) - cons.Workers())); err != nil {
					return 0, err
				}
				continue
			}
			u := st.users[r.user]
			u.lastW = mat.Vector(r.msg.W)
			u.lastV = mat.Vector(r.msg.V)
			u.lastXi = r.msg.Xi
			xs = append(xs, mat.SubVec(u.lastW, u.lastV))
			kept = append(kept, r.user)
		}
		if len(xs) == 0 {
			return 0, fmt.Errorf("%w: all devices failed in the same round", ErrTooFewActive)
		}
		res, err := cons.Step(xs)
		if err != nil {
			return 0, err
		}
		info.ADMMIterations++
		info.ADMMPrimal = res.Primal
		info.ADMMDual = res.Dual
		if r := cfg.Core.Obs; r != nil {
			admm.ObserveRound(r, iter, roundStart, res)
		}
		// Persist duals by user id for the next CCCP round.
		for i, t := range kept {
			st.us[t] = cons.U[i]
		}
		if res.Converged(len(xs), cfg.Dist.EpsAbs) {
			break
		}
	}
	st.w0 = cons.Z

	// Objective L of Eq. (23) from the last reported (v_t, ξ_t).
	obj := st.w0.SquaredNorm()
	lambdaOverT := cfg.Core.Lambda / float64(len(st.users))
	for _, t := range st.active() {
		u := st.users[t]
		if u.lastV != nil {
			obj += lambdaOverT*u.lastV.SquaredNorm() + u.lastXi
		}
	}
	return obj, nil
}

func abort(users []*serverUser, reason string) {
	for _, u := range users {
		if !u.dropped {
			_ = u.conn.Send(transport.Message{Type: transport.MsgError, Reason: reason})
		}
	}
}
