package protocol

import (
	"fmt"
	"math"
	"time"

	"plos/internal/admm"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/transport"
)

// Asynchronous protocol mode (DJAM; see docs/ASYNC.md).
//
// The mode is negotiated inside the existing hello exchange with no codec
// change: a device offers it by setting the otherwise-unused Users field of
// its hello to asyncHello, and the coordinator confirms by setting the
// otherwise-unused Samples field of its hello reply. Synchronous peers
// leave both fields zero, so sync-mode wire bytes are byte-identical to the
// pre-async protocol (pinned by TestSyncHandshakeBytesUnchanged).
//
// In asynchronous mode there is no global ADMM round clock. The
// coordinator hands each device a personalized consensus snapshot
// (MsgParams with z and u_t), and whenever a device's MsgUpdate arrives it
// is folded into w0 immediately under the staleness-weighted DJAM rule of
// admm.AsyncFold — weight γ(s) = 1/(1 + min(s, MaxStale)) where s is the
// arrival's age in fleet rounds — and the device is immediately re-armed
// with a fresh snapshot. The outer CCCP loop keeps its per-round
// start-round broadcast (the linearization point is global by
// construction), and a CCCP round ends once every attached device has
// folded at least one solution against this round's signs and the
// residual rule fires, or the fold budget — Dist.MaxADMMIter barrier
// rounds' worth of device updates, the same compute the lockstep mode
// would have spent — runs out. Devices still mid-solve at the boundary
// are carried: their reply is recorded and seeded as a standing solution,
// never folded across the linearization change.
const asyncHello = 1

// asyncGrace bounds how long the asynchronous round loop waits for a
// rejoin when every participant is detached, and how long the final drain
// waits for in-flight solves before giving up on a connection.
const asyncGrace = 30 * time.Second

// asyncRejoinGrace returns the wait budget used when no exchange is in
// flight: the configured round timeout, or asyncGrace without one.
func (st *serverState) asyncRejoinGrace() time.Duration {
	if d := st.cfg.FT.RoundTimeout; d > 0 {
		return d
	}
	return asyncGrace
}

// pendingCount is the number of exchange goroutines currently in flight.
func (st *serverState) pendingCount() int {
	n := 0
	for _, u := range st.users {
		if u.pending {
			n++
		}
	}
	return n
}

// attachedActive counts live devices whose connection is usable (attached
// or owned by an in-flight exchange) — the fleet size staleness is
// normalized by.
func (st *serverState) attachedActive() int {
	n := 0
	for _, t := range st.active() {
		if st.users[t].conn != nil {
			n++
		}
	}
	return n
}

// asyncLaunch arms user t with a personalized consensus snapshot: the
// current (z, u_t) of the fold, preceded by this round's start-round when
// the device has not frozen this round's signs yet. Epochs are recorded so
// the arrival's staleness can be measured when it folds.
func (st *serverState) asyncLaunch(t, round int, roundW0 mat.Vector, fold *admm.AsyncFold) {
	u := st.users[t]
	params := transport.Message{Type: transport.MsgParams, Round: fold.Epoch(),
		W0: fold.Z.Clone(), U: cloneVec(fold.Us[t])}
	var start *transport.Message
	if u.needSync {
		start = &transport.Message{Type: transport.MsgStartRound, Round: round, W0: roundW0.Clone()}
		u.needSync = false
	}
	st.asyncEpoch[t] = fold.Epoch()
	u.pending = true
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordAsyncSnapshot,
			Round: round, User: t, Epoch: fold.Epoch()})
	}
	go st.exchange(t, round, u.conn, start, params)
}

// asyncSweepLaunch re-arms every idle attached participant. reported is
// consulted only for bookkeeping symmetry — fast devices keep re-solving
// even after they reported, exactly like the in-process trainer's device
// goroutines.
func (st *serverState) asyncSweepLaunch(round int, roundW0 mat.Vector, fold *admm.AsyncFold) {
	for _, t := range st.active() {
		u := st.users[t]
		if u.conn != nil && !u.pending {
			st.asyncLaunch(t, round, roundW0, fold)
		}
	}
}

// asyncCCCPRound is the asynchronous replacement for cccpRound: one outer
// CCCP round driven by per-arrival staleness-weighted folds instead of
// lockstep ADMM iterations. It returns the Eq. (23) objective computed
// from every live device's last reported (v_t, ξ_t), like the synchronous
// driver.
func (st *serverState) asyncCCCPRound(round int, info *core.TrainInfo) (float64, error) {
	cfg := st.cfg
	st.epoch = round
	if fr := st.flight(); fr != nil {
		fr.FlightRecord(obs.Record{Kind: obs.RecordCCCPStart, Round: round})
	}
	st.drainRejoins()

	roundW0 := st.w0.Clone()
	for _, t := range st.active() {
		st.users[t].needSync = true
	}

	// The fold budget is the arrival-ordered analogue of the lockstep
	// iteration cap: at most MaxADMMIter barrier rounds' worth of device
	// updates per CCCP round, so the two wire modes spend the same compute
	// and differ only in who they wait for.
	live := len(st.active())
	acfg := core.AsyncConfig{Rho: cfg.Dist.Rho, EpsAbs: cfg.Dist.EpsAbs,
		MaxUpdatesPerRound: cfg.Dist.MaxADMMIter * live,
	}.WithDefaults(live)
	weight := admm.DJAMWeight(float64(cfg.FT.MaxStale))
	fold, err := admm.NewAsyncFold(st.w0, len(st.users), cfg.Dist.Rho, weight)
	if err != nil {
		return 0, err
	}
	// Warm-start: duals persist across CCCP rounds (like the synchronous
	// driver) and each device's last solution is carried as its standing
	// contribution, so rounds after the first never block on a straggler
	// to reach full-fleet consensus coverage.
	for _, t := range st.active() {
		u := st.users[t]
		if d, ok := st.us[t]; ok {
			fold.Us[t] = d
		}
		if u.lastW != nil && u.lastV != nil {
			fold.Seed(t, mat.SubVec(u.lastW, u.lastV))
		}
	}

	asyncUpdates := cfg.Core.Obs.Counter(obs.MetricAsyncUpdates, "")
	staleFolds := cfg.Core.Obs.Counter(obs.MetricAsyncStaleFolds, "")
	reported := make([]bool, len(st.users))
	folded := 0
	var lastRes admm.Residuals
	lastContributors := 0
	roundStart := time.Now()
	foldStart := roundStart

	// roundDone: every attached live device folded a solution computed
	// against this round's linearization at least once (detached devices
	// are carried on their standing solutions — the stale-reuse analogue)
	// and the in-process trainer's residual rule fires.
	roundDone := func() bool {
		if folded == 0 {
			return false
		}
		for _, t := range st.active() {
			if st.users[t].conn != nil && !reported[t] {
				return false
			}
		}
		return lastRes.Primal <= math.Sqrt(float64(lastContributors))*acfg.EpsAbs &&
			lastRes.Dual <= acfg.EpsAbs
	}

	st.asyncSweepLaunch(round, roundW0, fold)
	for folded < acfg.MaxUpdatesPerRound && !roundDone() {
		if st.pendingCount() == 0 {
			// Every remaining participant is detached: wait for a rejoin
			// within the grace budget, then re-arm whoever attached.
			if !st.asyncAwaitRejoin() {
				break
			}
			st.asyncSweepLaunch(round, roundW0, fold)
			continue
		}
		r := <-st.replies
		u := st.users[r.user]
		u.pending = false
		if u.dropped {
			continue
		}
		if r.err != nil {
			st.noteConnFailure(r.user, r.conn, r.err)
			if !cfg.FT.Resume {
				if err := st.drop(r.user, 0, nil, r.err); err != nil {
					return 0, err
				}
				fold.Drop(r.user)
			}
			// A rejoin may already have replaced the connection.
			st.asyncSweepLaunch(round, roundW0, fold)
			continue
		}
		u.fresh = true
		u.stale = 0
		u.lastW = mat.Vector(r.msg.W)
		u.lastV = mat.Vector(r.msg.V)
		u.lastXi = r.msg.Xi
		st.recordDeviceTelemetry(r, roundStart)
		x := mat.SubVec(u.lastW, u.lastV)
		if r.iter != round {
			// Solved against a previous round's linearization: carry it as
			// a standing solution (bounded staleness), never fold it across
			// the sign change, and re-arm the device with this round's
			// start-round (needSync was re-set at the round boundary).
			fold.Seed(r.user, x)
			st.drainRejoins()
			st.asyncSweepLaunch(round, roundW0, fold)
			continue
		}
		fleet := st.attachedActive()
		if fleet < 1 {
			fleet = 1
		}
		stale := float64(fold.Epoch()-st.asyncEpoch[r.user]) / float64(fleet)
		res, contributors := fold.Fold([]admm.FoldEntry{{User: r.user, X: x, Stale: stale}})
		folded++
		info.ADMMIterations++
		info.ADMMPrimal = res.Primal
		info.ADMMDual = res.Dual
		asyncUpdates.Inc()
		if stale >= 1 {
			staleFolds.Inc()
		}
		lastRes, lastContributors = res, contributors
		reported[r.user] = true
		st.us[r.user] = fold.Us[r.user]
		if r := cfg.Core.Obs; r != nil {
			admm.ObserveRound(r, fold.Epoch()-1, foldStart, res)
			foldStart = time.Now()
		}
		if fr := st.flight(); fr != nil {
			fr.FlightRecord(obs.Record{Kind: obs.RecordAsyncFold,
				Round: round, User: r.user, Epoch: fold.Epoch() - 1,
				Staleness: stale, Weight: weight(stale),
				Primal: res.Primal, Dual: res.Dual})
		}
		st.drainRejoins()
		st.asyncSweepLaunch(round, roundW0, fold)
	}

	// Straggler policy at the round boundary: a live device that never
	// folded against this round's linearization was served from its
	// standing solution; that costs one unit of stale budget, and a device
	// out of budget with no connection to answer on is dropped.
	for _, t := range st.active() {
		u := st.users[t]
		if reported[t] {
			continue
		}
		if u.lastW != nil && u.stale < cfg.FT.MaxStale {
			u.stale++
			st.mStale.Inc()
			if fr := st.flight(); fr != nil {
				fr.FlightRecord(obs.Record{Kind: obs.RecordStaleReuse,
					Round: round, User: t, Stale: u.stale})
			}
			continue
		}
		if u.conn != nil || u.pending {
			continue // still reachable: give the straggler the next round
		}
		cause := u.cause
		if cause == nil {
			cause = fmt.Errorf("no asynchronous update within %d rounds (stale budget exhausted)", cfg.FT.MaxStale)
		}
		if err := st.drop(t, 0, nil, cause); err != nil {
			return 0, err
		}
		fold.Drop(t)
	}
	if folded == 0 && fold.Standing() == 0 {
		return 0, fmt.Errorf("%w: no device delivered an asynchronous update", ErrTooFewActive)
	}

	st.w0 = fold.Z.Clone()
	for _, t := range st.active() {
		st.us[t] = fold.Us[t]
	}

	obj := st.w0.SquaredNorm()
	lambdaOverT := cfg.Core.Lambda / float64(len(st.users))
	for _, t := range st.active() {
		u := st.users[t]
		if u.lastV != nil {
			obj += lambdaOverT*u.lastV.SquaredNorm() + u.lastXi
		}
	}
	return obj, nil
}

// asyncAwaitRejoin blocks for one rejoin attempt when no exchange is in
// flight, bounded by the grace budget. Reports whether anything attached.
func (st *serverState) asyncAwaitRejoin() bool {
	if !st.cfg.FT.Resume || st.cfg.FT.Rejoin == nil {
		return false
	}
	timer := time.NewTimer(st.asyncRejoinGrace())
	defer timer.Stop()
	for {
		select {
		case rj := <-st.cfg.FT.Rejoin:
			before := st.attachedActive()
			st.attach(rj)
			if st.attachedActive() > before {
				return true
			}
		case <-timer.C:
			return false
		}
	}
}

// asyncDrain collects the exchanges still in flight when training ends so
// the done broadcast reaches every connection (broadcast skips pending
// conns). Final arrivals update the device's last solution — they are the
// freshest personalized hyperplanes — but nothing is folded.
func (st *serverState) asyncDrain() {
	timer := time.NewTimer(asyncGrace)
	defer timer.Stop()
	for st.pendingCount() > 0 {
		select {
		case r := <-st.replies:
			u := st.users[r.user]
			u.pending = false
			if r.err != nil {
				st.noteConnFailure(r.user, r.conn, r.err)
				continue
			}
			if !u.dropped {
				u.lastW = mat.Vector(r.msg.W)
				u.lastV = mat.Vector(r.msg.V)
				u.lastXi = r.msg.Xi
			}
		case <-timer.C:
			return
		}
	}
}

// recordDeviceTelemetry merges one update's telemetry piggyback into the
// flight stream (shared by the synchronous gather and the asynchronous
// fold loop).
func (st *serverState) recordDeviceTelemetry(r exchangeReply, roundStart time.Time) {
	fr := st.flight()
	if fr == nil || r.msg.Telemetry == nil {
		return
	}
	u := st.users[r.user]
	// The arrival offset is measured on the server's round clock; the
	// telemetry block carries only device-local durations, so no clock
	// synchronization is assumed.
	tel := r.msg.Telemetry
	// Compression savings are read from the server-side conn wrapper
	// (cumulative raw vs encoded payload bytes) — the device's telemetry
	// block stays at its v3 shape.
	var rawB, compB int64
	if cs, ok := u.conn.(transport.CompressionStats); ok {
		rawB, compB = cs.CompStats()
	}
	fr.FlightRecord(obs.Record{Kind: obs.RecordDeviceRound,
		Round: r.iter, User: r.user,
		Arrive: time.Since(roundStart), Solve: time.Duration(tel.SolveNS),
		QPIters: tel.QPIters, Cuts: tel.Cuts, WarmHits: tel.WarmHits,
		SignFlips: int(tel.SignFlips),
		Msgs:      tel.MsgsSent + tel.MsgsRecv,
		Bytes:     tel.BytesSent + tel.BytesRecv,
		RawBytes:  rawB,
		CompBytes: compB,
		EnergyJ:   tel.EnergyJ})
}
