// Checkpoint persistence: a versioned, canonical binary snapshot of the
// server's trainer state, written atomically after CCCP rounds so a crashed
// server can resume mid-training (see FTConfig.CheckpointPath / Restore).
//
// Layout (all integers little-endian, version 1):
//
//	magic 'K' | version u8
//	epoch i64 | dim i64 | seed i64 | users u32
//	w0 vec | objective vec
//	per user:
//	  session i64 | dropped u8 | stale i64
//	  us optvec | lastW optvec | lastV optvec | lastXi f64
//
// where vec = u32 count + that many f64 and optvec = presence u8 (0 or 1)
// followed by a vec when present. The encoding is canonical: decode is
// strict (exact bools, no trailing bytes), so decode∘encode is the identity
// on every accepted input (pinned by FuzzCheckpointRoundTrip).
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"plos/internal/mat"
)

// Checkpoint is a snapshot of the server's trainer state after Epoch
// completed CCCP rounds. All per-user slices are indexed by user id and have
// identical lengths.
type Checkpoint struct {
	Epoch int   // completed CCCP rounds
	Dim   int   // feature dimension
	Seed  int64 // session-token seed (continues the stream on re-save)
	W0    mat.Vector
	// Objective is the objective history, one entry per completed round;
	// feeding it to optimize.CCCPResume replays the convergence decisions.
	Objective []float64
	Sessions  []int64
	Dropped   []bool
	Stale     []int
	Us        []mat.Vector // scaled duals; nil where none recorded
	LastW     []mat.Vector // last reported hyperplanes; nil before round 1
	LastV     []mat.Vector
	LastXi    []float64
}

// ErrCheckpoint is wrapped by every checkpoint decode failure.
var ErrCheckpoint = errors.New("protocol: malformed checkpoint")

const (
	ckMagic   = byte('K')
	ckVersion = byte(1)
	// maxCheckpoint bounds how much a decoder will allocate.
	maxCheckpoint = 64 << 20
	// ckUserFloor is the minimum encoded size of one user entry; used to
	// bound the user count against the remaining buffer before allocating.
	ckUserFloor = 8 + 1 + 8 + 1 + 1 + 1 + 8
)

// MarshalCheckpoint encodes ck into its canonical byte representation.
func MarshalCheckpoint(ck *Checkpoint) ([]byte, error) {
	t := len(ck.Sessions)
	if len(ck.Dropped) != t || len(ck.Stale) != t || len(ck.Us) != t ||
		len(ck.LastW) != t || len(ck.LastV) != t || len(ck.LastXi) != t {
		return nil, fmt.Errorf("protocol: MarshalCheckpoint: inconsistent per-user slice lengths")
	}
	buf := []byte{ckMagic, ckVersion}
	for _, v := range []int64{int64(ck.Epoch), int64(ck.Dim), ck.Seed} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
	buf = ckAppendVec(buf, ck.W0)
	buf = ckAppendVec(buf, ck.Objective)
	for i := 0; i < t; i++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.Sessions[i]))
		buf = ckAppendBool(buf, ck.Dropped[i])
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.Stale[i]))
		buf = ckAppendOptVec(buf, ck.Us[i])
		buf = ckAppendOptVec(buf, ck.LastW[i])
		buf = ckAppendOptVec(buf, ck.LastV[i])
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ck.LastXi[i]))
	}
	return buf, nil
}

func ckAppendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func ckAppendVec(buf []byte, v []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// ckAppendOptVec writes a presence byte, then the vector when non-nil. An
// empty non-nil vector is normalized to absent so the encoding stays
// canonical (the decoder maps presence 0 to nil).
func ckAppendOptVec(buf []byte, v mat.Vector) []byte {
	if len(v) == 0 {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return ckAppendVec(buf, v)
}

// ckDecoder is a strict bounded cursor over a checkpoint buffer.
type ckDecoder struct {
	buf []byte
	off int
	err error
}

func (d *ckDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCheckpoint, fmt.Sprintf(format, args...))
	}
}

func (d *ckDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated at offset %d (want %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *ckDecoder) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *ckDecoder) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *ckDecoder) u32() int {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b))
}

func (d *ckDecoder) boolByte() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("byte %d at offset %d is not a bool", b[0], d.off-1)
		return false
	}
}

func (d *ckDecoder) vec() []float64 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > (len(d.buf)-d.off)/8 {
		d.fail("vector of %d elements exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *ckDecoder) optVec() mat.Vector {
	present := d.boolByte()
	if d.err != nil || !present {
		return nil
	}
	v := d.vec()
	if d.err == nil && v == nil {
		// presence byte 1 followed by length 0 would re-encode as absent.
		d.fail("present vector with zero length at offset %d", d.off)
	}
	return v
}

// UnmarshalCheckpoint decodes a checkpoint, rejecting anything that is not
// the canonical encoding of some Checkpoint.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) > maxCheckpoint {
		return nil, fmt.Errorf("%w: %d bytes exceeds limit %d", ErrCheckpoint, len(data), maxCheckpoint)
	}
	if len(data) < 2 || data[0] != ckMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpoint)
	}
	if data[1] != ckVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpoint, data[1])
	}
	d := &ckDecoder{buf: data, off: 2}
	ck := &Checkpoint{
		Epoch: int(d.i64()),
		Dim:   int(d.i64()),
		Seed:  d.i64(),
	}
	t := d.u32()
	if d.err == nil && t > (len(d.buf)-d.off)/ckUserFloor {
		d.fail("user count %d exceeds remaining %d bytes", t, len(d.buf)-d.off)
	}
	ck.W0 = d.vec()
	ck.Objective = d.vec()
	if d.err != nil {
		return nil, d.err
	}
	ck.Sessions = make([]int64, t)
	ck.Dropped = make([]bool, t)
	ck.Stale = make([]int, t)
	ck.Us = make([]mat.Vector, t)
	ck.LastW = make([]mat.Vector, t)
	ck.LastV = make([]mat.Vector, t)
	ck.LastXi = make([]float64, t)
	for i := 0; i < t && d.err == nil; i++ {
		ck.Sessions[i] = d.i64()
		ck.Dropped[i] = d.boolByte()
		ck.Stale[i] = int(d.i64())
		ck.Us[i] = d.optVec()
		ck.LastW[i] = d.optVec()
		ck.LastV[i] = d.optVec()
		ck.LastXi[i] = d.f64()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpoint, len(d.buf)-d.off)
	}
	return ck, nil
}

// validateForRestore checks the semantic invariants a checkpoint must hold
// before the server trusts it to rebuild trainer state.
func (ck *Checkpoint) validateForRestore() error {
	if ck.Dim <= 0 {
		return fmt.Errorf("%w: non-positive dimension %d", ErrCheckpoint, ck.Dim)
	}
	if ck.Epoch < 0 {
		return fmt.Errorf("%w: negative epoch %d", ErrCheckpoint, ck.Epoch)
	}
	if len(ck.W0) != ck.Dim {
		return fmt.Errorf("%w: |w0| = %d, dim = %d", ErrCheckpoint, len(ck.W0), ck.Dim)
	}
	if len(ck.Objective) != ck.Epoch {
		return fmt.Errorf("%w: %d objective entries for epoch %d", ErrCheckpoint, len(ck.Objective), ck.Epoch)
	}
	if len(ck.Sessions) == 0 {
		return fmt.Errorf("%w: no users", ErrCheckpoint)
	}
	seen := make(map[int64]struct{}, len(ck.Sessions))
	for t := range ck.Sessions {
		if !ck.Dropped[t] {
			if ck.Sessions[t] == 0 {
				return fmt.Errorf("%w: live user %d has no session token", ErrCheckpoint, t)
			}
			if _, dup := seen[ck.Sessions[t]]; dup {
				return fmt.Errorf("%w: duplicate session token for user %d", ErrCheckpoint, t)
			}
			seen[ck.Sessions[t]] = struct{}{}
		}
		for _, v := range []mat.Vector{ck.Us[t], ck.LastW[t], ck.LastV[t]} {
			if v != nil && len(v) != ck.Dim {
				return fmt.Errorf("%w: user %d vector length %d, dim %d", ErrCheckpoint, t, len(v), ck.Dim)
			}
		}
	}
	return nil
}

// SaveCheckpoint writes ck to path atomically: encode, write to a temp file
// in the same directory, fsync, rename. A reader never observes a torn
// checkpoint.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	buf, err := MarshalCheckpoint(ck)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("protocol: SaveCheckpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("protocol: SaveCheckpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("protocol: SaveCheckpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("protocol: SaveCheckpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("protocol: SaveCheckpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and decodes the checkpoint at path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("protocol: LoadCheckpoint: %w", err)
	}
	ck, err := UnmarshalCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("protocol: LoadCheckpoint %s: %w", path, err)
	}
	return ck, nil
}
