package protocol

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/transport"
)

// tailHas reports whether the flight recorder's tail holds at least one
// record of the given kind.
func tailHas(fr *obs.FlightRecorder, rec string) bool {
	for _, line := range fr.Tail() {
		if strings.Contains(line, `"rec":"`+rec+`"`) {
			return true
		}
	}
	return false
}

// TestShardFTFaultFreeBitIdentical pins the acceptance criterion of the
// self-healing plane: with every shard-tier FT mechanism armed (reduce
// deadline, permissive quorum, stale carry, rejoin channel) a fault-free run
// must be bit-identical to the strict plane — the FT code path may not touch
// a single float.
func TestShardFTFaultFreeBitIdentical(t *testing.T) {
	users, _ := makeUsers(36, 7)
	partition := [][]int{{0, 1, 2, 3}, {4, 5, 6}}

	sc := sweepConfig()
	strict := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist}, nil, nil, nil)
	if strict.aggErr != nil {
		t.Fatalf("strict aggregator: %v", strict.aggErr)
	}

	reg := obs.NewRegistry()
	sc2 := sweepConfig()
	sc2.Core.Obs = reg
	ft := runSharded(t, users, partition, AggConfig{Core: sc2.Core, Dist: sc2.Dist,
		FT: AggFTConfig{ReduceTimeout: time.Minute, ShardQuorum: 1, MaxStale: 3,
			Rejoin: make(chan Rejoin, 1)}}, nil, nil, nil)
	if ft.aggErr != nil {
		t.Fatalf("FT aggregator: %v", ft.aggErr)
	}

	if !vecIdentical(ft.agg.W0, strict.agg.W0) {
		t.Error("fault-free FT run changed the global model")
	}
	if !floatsIdentical(ft.agg.Info.ObjectiveHistory, strict.agg.Info.ObjectiveHistory) {
		t.Errorf("fault-free FT run changed the objective history: ft %v, strict %v",
			ft.agg.Info.ObjectiveHistory, strict.agg.Info.ObjectiveHistory)
	}
	for s := range partition {
		for j, u := range partition[s] {
			if !vecIdentical(ft.shards[s].Model.W[j], strict.shards[s].Model.W[j]) {
				t.Errorf("user %d model differs between FT and strict plane", u)
			}
		}
	}
	for u := range users {
		if !vecIdentical(ft.clients[u].W, strict.clients[u].W) {
			t.Errorf("user %d device-side model differs between FT and strict plane", u)
		}
	}
	if ft.agg.Restarts != 0 {
		t.Errorf("fault-free run counted %d restarts", ft.agg.Restarts)
	}
	for s, c := range ft.agg.ShardCauses {
		if c != nil {
			t.Errorf("fault-free run recorded a cause for shard %d: %v", s, c)
		}
	}
	if got := reg.CounterValue(obs.MetricShardStaleReduces); got != 0 {
		t.Errorf("%s = %d on a fault-free run", obs.MetricShardStaleReduces, got)
	}
	if got := reg.CounterValue(obs.MetricShardRestarts); got != 0 {
		t.Errorf("%s = %d on a fault-free run", obs.MetricShardRestarts, got)
	}
}

// TestShardedAggLinkChaosBitIdentical is the shard-tier chaos soak: seeded
// drops, duplicates, corruption, delays, and flaps on both aggregator links,
// absorbed by the Retry layer on each end. Chaos faults are
// content-preserving and the reduce is lockstep, so even the strict plane
// must finish bit-identical to the clean run — with the per-link retry
// counter showing the absorbed faults.
func TestShardedAggLinkChaosBitIdentical(t *testing.T) {
	users, _ := makeUsers(37, 6)
	partition := [][]int{{0, 1, 2}, {3, 4, 5}}

	sc := sweepConfig()
	clean := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist}, nil, nil, nil)
	if clean.aggErr != nil {
		t.Fatalf("clean aggregator: %v", clean.aggErr)
	}

	reg := obs.NewRegistry()
	policy := func(seed int64) transport.RetryPolicy {
		return transport.RetryPolicy{MaxAttempts: 10, Seed: seed, Sleep: ftNoSleep,
			Counter: obs.MetricAggLinkRetries}
	}
	wrapAgg := func(s int, aggSide, shardSide transport.Conn) (transport.Conn, transport.Conn) {
		chaos := transport.Chaos(shardSide, transport.ChaosConfig{
			Seed:        200 + int64(s),
			DropProb:    0.05,
			DupProb:     0.05,
			CorruptProb: 0.03,
			DelayProb:   0.10,
			MaxDelay:    time.Millisecond,
			FlapProb:    0.01,
			Sleep:       ftNoSleep,
		}, reg)
		// The aggregator side needs the dedup layer because shard-side chaos
		// duplicates deliveries toward the aggregator.
		return transport.Retry(aggSide, policy(1000+int64(s)), reg),
			transport.Retry(chaos, policy(int64(s)), reg)
	}
	sc2 := sweepConfig()
	chaotic := runShardedLinks(t, users, partition, AggConfig{Core: sc2.Core, Dist: sc2.Dist},
		nil, nil, nil, wrapAgg)
	if chaotic.aggErr != nil {
		t.Fatalf("chaos aggregator: %v", chaotic.aggErr)
	}
	for s, e := range chaotic.shardErrs {
		if e != nil {
			t.Fatalf("chaos shard %d: %v", s, e)
		}
	}
	for u, e := range chaotic.clientErrs {
		if e != nil {
			t.Fatalf("chaos client %d: %v", u, e)
		}
	}

	if !vecIdentical(chaotic.agg.W0, clean.agg.W0) {
		t.Error("global model differs under aggregator-link chaos")
	}
	if !floatsIdentical(chaotic.agg.Info.ObjectiveHistory, clean.agg.Info.ObjectiveHistory) {
		t.Error("objective history differs under aggregator-link chaos")
	}
	for s := range partition {
		for j, u := range partition[s] {
			if !vecIdentical(chaotic.shards[s].Model.W[j], clean.shards[s].Model.W[j]) {
				t.Errorf("user %d model differs under aggregator-link chaos", u)
			}
		}
	}
	if reg.CounterValue(obs.MetricChaosFaults) == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
	if reg.CounterValue(obs.MetricAggLinkRetries) == 0 {
		t.Error("agg_link_retries_total never moved despite injected faults")
	}
}

// TestShardedDegradedQuorumCompletes: a shard whose aggregator link dies
// mid-run is detached, its last partials are carried for the remaining
// reduces, and with ShardQuorum=1 the run completes — naming the dead shard
// in ShardCauses and leaving the stale reduces visible in metrics and the
// flight tail.
func TestShardedDegradedQuorumCompletes(t *testing.T) {
	users, _ := makeUsers(38, 5)
	partition := [][]int{{0, 1, 2}, {3, 4}}

	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(nil, 128)
	reg.SetFlightRecorder(fr)
	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 3
	sc.Dist.MaxADMMIter = 1
	cfg := AggConfig{Core: sc.Core, Dist: sc.Dist,
		FT: AggFTConfig{ShardQuorum: 1, MaxStale: 8}}
	cfg.Core.Obs = reg

	// Shard 1's link survives the handshake and round 0 (7 ops), then dies
	// on its round-1 consensus sum.
	out := runShardedLinks(t, users, partition, cfg, nil, nil, nil,
		func(s int, aggSide, shardSide transport.Conn) (transport.Conn, transport.Conn) {
			if s == 1 {
				return aggSide, transport.FailAfter(shardSide, 7)
			}
			return aggSide, shardSide
		})

	if out.aggErr != nil {
		t.Fatalf("aggregator did not survive the shard loss: %v", out.aggErr)
	}
	// At least round 1 closed on carried partials; CCCP may converge earlier
	// than MaxCCCPIter once the stale objective stops moving.
	if got := out.agg.Info.CCCPIterations; got < 2 {
		t.Errorf("degraded run finished %d rounds, want at least 2", got)
	}
	if out.shardErrs[0] != nil {
		t.Errorf("healthy shard failed: %v", out.shardErrs[0])
	}
	if out.shardErrs[1] == nil {
		t.Error("dead shard reported no error")
	}
	if out.agg.ShardCauses[1] == nil {
		t.Error("aggregator recorded no cause for the dead shard")
	}
	if out.agg.ShardCauses[0] != nil {
		t.Errorf("aggregator blamed the healthy shard: %v", out.agg.ShardCauses[0])
	}
	if out.agg.Restarts != 0 {
		t.Errorf("no shard rejoined, yet Restarts = %d", out.agg.Restarts)
	}
	for _, u := range partition[0] {
		if out.clientErrs[u] != nil {
			t.Errorf("client %d on the healthy shard failed: %v", u, out.clientErrs[u])
		}
		if !vecIdentical(out.clients[u].W0, out.agg.W0) {
			t.Errorf("client %d did not receive the final global model", u)
		}
	}
	for _, u := range partition[1] {
		if out.clientErrs[u] == nil {
			t.Errorf("client %d outlived its crashed shard", u)
		}
	}
	// Round 1 is carried on both legs for the dead shard.
	if got := reg.CounterValue(obs.MetricShardStaleReduces); got < 2 {
		t.Errorf("%s = %d, want at least 2", obs.MetricShardStaleReduces, got)
	}
	if !tailHas(fr, "shard-down") {
		t.Error("no shard-down flight record")
	}
	if !tailHas(fr, "shard-stale") {
		t.Error("no shard-stale flight record")
	}
}

// TestShardedQuorumAbortNamesShard: under the strict quorum (the zero
// AggFTConfig) a shard-link failure aborts the run — and the error must name
// the failing shard on both the aggregator and the surviving sibling.
func TestShardedQuorumAbortNamesShard(t *testing.T) {
	users, _ := makeUsers(39, 5)
	partition := [][]int{{0, 1, 2}, {3, 4}}

	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 2
	sc.Dist.MaxADMMIter = 1
	out := runShardedLinks(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist},
		nil, nil, nil,
		func(s int, aggSide, shardSide transport.Conn) (transport.Conn, transport.Conn) {
			if s == 1 {
				return aggSide, transport.FailAfter(shardSide, 7)
			}
			return aggSide, shardSide
		})

	if out.aggErr == nil {
		t.Fatal("strict aggregator survived a shard loss")
	}
	if !errors.Is(out.aggErr, ErrTooFewActive) {
		t.Errorf("aggregator error = %v, want ErrTooFewActive", out.aggErr)
	}
	if !strings.Contains(out.aggErr.Error(), "shard 1") {
		t.Errorf("aggregator error does not name the failing shard: %v", out.aggErr)
	}
	if out.shardErrs[0] == nil {
		t.Fatal("surviving shard finished despite the global abort")
	}
	if !errors.Is(out.shardErrs[0], ErrAborted) || !errors.Is(out.shardErrs[0], ErrTooFewActive) {
		t.Errorf("sibling error = %v, want ErrAborted wrapping ErrTooFewActive", out.shardErrs[0])
	}
	if !strings.Contains(out.shardErrs[0].Error(), "shard 1") {
		t.Errorf("sibling error does not name the failing shard: %v", out.shardErrs[0])
	}
	for u, e := range out.clientErrs {
		if e == nil {
			t.Errorf("client %d finished despite the global abort", u)
		}
	}
}

// slowConn delays its n-th Send long enough for the aggregator's reduce
// deadline to fire — a lagging shard, not a dead one.
type slowConn struct {
	transport.Conn
	n, at int
	delay time.Duration
}

func (c *slowConn) Send(m transport.Message) error {
	c.n++
	if c.n == c.at {
		time.Sleep(c.delay)
	}
	return c.Conn.Send(m)
}

// TestShardedReduceDeadlineDetaches: lagging is indistinguishable from dead.
// A shard that stalls past ReduceTimeout is detached mid-leg, the run
// finishes on stale carries, and the recorded cause says why.
func TestShardedReduceDeadlineDetaches(t *testing.T) {
	users, _ := makeUsers(40, 5)
	partition := [][]int{{0, 1, 2}, {3, 4}}

	reg := obs.NewRegistry()
	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 3
	sc.Dist.MaxADMMIter = 1
	cfg := AggConfig{Core: sc.Core, Dist: sc.Dist,
		FT: AggFTConfig{ReduceTimeout: 100 * time.Millisecond, ShardQuorum: 1, MaxStale: 8}}
	cfg.Core.Obs = reg

	// Send #4 is shard 1's round-1 consensus sum (after hello and the two
	// round-0 legs): stall it for 10x the deadline.
	out := runShardedLinks(t, users, partition, cfg, nil, nil, nil,
		func(s int, aggSide, shardSide transport.Conn) (transport.Conn, transport.Conn) {
			if s == 1 {
				return aggSide, &slowConn{Conn: shardSide, at: 4, delay: time.Second}
			}
			return aggSide, shardSide
		})

	if out.aggErr != nil {
		t.Fatalf("aggregator did not survive the lagging shard: %v", out.aggErr)
	}
	if got := out.agg.Info.CCCPIterations; got < 2 {
		t.Errorf("run finished %d rounds, want at least 2", got)
	}
	if out.agg.ShardCauses[1] == nil || !strings.Contains(out.agg.ShardCauses[1].Error(), "deadline") {
		t.Errorf("cause for the lagging shard = %v, want a reduce-deadline miss", out.agg.ShardCauses[1])
	}
	if out.shardErrs[1] == nil {
		t.Error("lagging shard kept running after its detach")
	}
	if got := reg.CounterValue(obs.MetricShardStaleReduces); got == 0 {
		t.Error("no stale reduces recorded for the detached shard")
	}
	for _, u := range partition[0] {
		if out.clientErrs[u] != nil {
			t.Errorf("client %d on the healthy shard failed: %v", u, out.clientErrs[u])
		}
	}
}

// crashConn makes a shard's death look like a SIGKILL to its devices: the
// clean abort broadcast a dying shard writes is replaced by a closed
// connection, which is what a real process exit leaves on the wire. The
// first suppressed abort closes crashed.
type crashConn struct {
	transport.Conn
	once    *sync.Once
	crashed chan struct{}
}

func (c *crashConn) Send(m transport.Message) error {
	if m.Type == transport.MsgError {
		c.once.Do(func() { close(c.crashed) })
		_ = c.Conn.Close()
		return errors.New("shard crashed")
	}
	return c.Conn.Send(m)
}

// parkConn parks the healthy shard's aggregator link on its at-th Send (the
// round in flight at the crash) until hold closes — that reduce cannot close,
// so the run cannot end before the restarted shard is back in the rejoin
// queue.
type parkConn struct {
	transport.Conn
	n, at int
	hold  <-chan struct{}
}

func (c *parkConn) Send(m transport.Message) error {
	c.n++
	if c.n == c.at {
		<-c.hold
	}
	return c.Conn.Send(m)
}

// TestShardedKillRestoreRejoins is the headline soak of the self-healing
// plane: kill shard 0's aggregator link mid-training (its devices see a dead
// connection, as after a SIGKILL), let the degraded quorum carry its stale
// partials, restart the shard from its atomic checkpoint with redialing
// devices, replay the restore handshake through the rejoin channel, and
// finish the run with every party agreeing on the final model.
func TestShardedKillRestoreRejoins(t *testing.T) {
	users, _ := makeUsers(41, 6)
	partition := [][]int{{0, 1, 2}, {3, 4, 5}}
	ckPath := t.TempDir() + "/shard0.ckpt"

	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(nil, 256)
	reg.SetFlightRecorder(fr)
	rejoins := make(chan Rejoin, 1)

	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 6
	sc.Dist.MaxADMMIter = 1
	// A tiny tolerance keeps CCCP from declaring convergence while the shard
	// is still down — the rejoin must land at a round boundary with rounds
	// left to run, so the restarted shard's devices re-solve and re-converge.
	sc.Core.CCCPTol = 1e-12
	cfg := AggConfig{Core: sc.Core, Dist: sc.Dist,
		FT: AggFTConfig{ShardQuorum: 1, MaxStale: 100, Rejoin: rejoins}}
	cfg.Core.Obs = reg

	crashed := make(chan struct{})
	hold := make(chan struct{})
	var crashOnce sync.Once
	dials, wait := loopClients(users)

	// Shard 0: the aggregator link dies on its round-1 consensus sum (7 ops
	// survive the handshake and round 0, so checkpoint epoch 1 is on disk and
	// the crash lands mid-training — before convergence can end the run).
	agg0, sh0 := transport.Pipe()
	link0 := transport.FailAfter(sh0, 7)
	devs0 := make([]transport.Conn, len(partition[0]))
	for j, u := range partition[0] {
		scn, cc := transport.Pipe()
		devs0[j] = &crashConn{Conn: scn, once: &crashOnce, crashed: crashed}
		dials[u] <- cc
	}
	// Shard 1 stays healthy, but its aggregator link parks its round-1
	// consensus sum (Send #4: hello, round-0 sum, round-0 resid, round-1 sum)
	// until the rejoin is queued, so the round the crash lands in cannot
	// close — let alone the run finish — before the restarted shard is back.
	agg1, sh1 := transport.Pipe()
	link1 := transport.Conn(&parkConn{Conn: sh1, at: 4, hold: hold})
	devs1 := make([]transport.Conn, len(partition[1]))
	for j, u := range partition[1] {
		scn, cc := transport.Pipe()
		devs1[j] = scn
		dials[u] <- cc
	}

	var wg sync.WaitGroup
	var run1Err, run2Err, shard1Err, aggErr error
	var run2, shard1Res *ServerResult
	var aggRes *AggResult
	wg.Add(3)
	go func() {
		defer wg.Done()
		_, run1Err = RunShard(link0, devs0, ShardConfig{Shard: 0, FT: FTConfig{CheckpointPath: ckPath}})
	}()
	go func() {
		defer wg.Done()
		shard1Res, shard1Err = RunShard(link1, devs1, ShardConfig{Shard: 1})
	}()
	go func() {
		defer wg.Done()
		aggRes, aggErr = RunAggregator([]transport.Conn{agg0, agg1}, cfg)
	}()

	// The crash happened: restart shard 0 from its checkpoint with fresh
	// device connections (the devices redial through their loops), then play
	// the serve layer's rejoin accept loop.
	<-crashed
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("load checkpoint after the crash: %v", err)
	}
	if ck.Epoch != 1 {
		t.Fatalf("checkpoint epoch at the crash = %d, want 1", ck.Epoch)
	}
	devs2 := make([]transport.Conn, len(partition[0]))
	for j, u := range partition[0] {
		scn, cc := transport.Pipe()
		devs2[j] = scn
		dials[u] <- cc
	}
	agg2, sh2 := transport.Pipe()
	wg.Add(1)
	go func() {
		defer wg.Done()
		run2, run2Err = RunShard(sh2, devs2,
			ShardConfig{Shard: 0, FT: FTConfig{CheckpointPath: ckPath, Restore: ck}})
	}()
	hello, err := agg2.Recv()
	if err != nil {
		t.Fatalf("restore hello from the restarted shard: %v", err)
	}
	rejoins <- Rejoin{Conn: agg2, Hello: hello}
	close(hold)

	wg.Wait()
	for _, d := range dials {
		close(d)
	}
	clients, clientErrs := wait()

	if run1Err == nil {
		t.Fatal("killed shard reported no error")
	}
	if aggErr != nil {
		t.Fatalf("aggregator: %v", aggErr)
	}
	if shard1Err != nil {
		t.Fatalf("healthy shard: %v", shard1Err)
	}
	if run2Err != nil {
		t.Fatalf("restarted shard: %v", run2Err)
	}
	if aggRes.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", aggRes.Restarts)
	}
	if aggRes.ShardCauses[0] == nil {
		t.Error("no cause recorded for the killed shard")
	}
	if aggRes.ShardCauses[1] != nil {
		t.Errorf("healthy shard blamed: %v", aggRes.ShardCauses[1])
	}
	// The crash lands in round 1 and the rejoin at the round-2 boundary, so at
	// least rounds 0-2 must close; the run may still stop before MaxCCCPIter
	// if the rejoined partials end the descent (benign ErrNotDescending).
	if got := aggRes.Info.CCCPIterations; got < 3 || got > 6 {
		t.Errorf("run finished %d rounds, want 3..6", got)
	}
	if got := reg.CounterValue(obs.MetricShardRestarts); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricShardRestarts, got)
	}
	if got := reg.CounterValue(obs.MetricShardStaleReduces); got == 0 {
		t.Error("no stale reduces recorded while the shard was down")
	}
	for _, rec := range []string{"shard-down", "shard-stale", "shard-restore"} {
		if !tailHas(fr, rec) {
			t.Errorf("no %s flight record", rec)
		}
	}

	// The restarted shard caught up bitwise: same final model, same full
	// objective history as the aggregator.
	if !vecIdentical(run2.Model.W0, aggRes.W0) || !vecIdentical(shard1Res.Model.W0, aggRes.W0) {
		t.Error("final w0 differs across the plane after the rejoin")
	}
	if !floatsIdentical(run2.Info.ObjectiveHistory, aggRes.Info.ObjectiveHistory) {
		t.Errorf("restarted shard's objective history diverged:\nshard %v\n  agg %v",
			run2.Info.ObjectiveHistory, aggRes.Info.ObjectiveHistory)
	}
	for u, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", u, e)
		}
	}
	for j, u := range partition[0] {
		if run2.Dropped[j] {
			t.Errorf("user %d dropped across the kill/restore", u)
		}
		if !vecIdentical(clients[u].W, run2.Model.W[j]) {
			t.Errorf("user %d device- and shard-side models disagree after the rejoin", u)
		}
	}
	for j, u := range partition[1] {
		if !vecIdentical(clients[u].W, shard1Res.Model.W[j]) {
			t.Errorf("user %d device- and shard-side models disagree", u)
		}
	}
}

// TestShardedRejoinValidation drives the aggregator's attach validation
// directly: every malformed rejoin attempt is rejected with a reasoned
// MsgError and leaves the supervision table untouched; the valid attempt is
// fast-forwarded to the current round.
func TestShardedRejoinValidation(t *testing.T) {
	reg := obs.NewRegistry()
	a := &aggRun{
		cfg:       AggConfig{Core: core.Config{Obs: reg}},
		dim:       3,
		globalT:   7,
		wire:      &transport.WireConfig{},
		w0:        mat.Vector{1, 2, 3},
		hist:      []float64{10, 9},
		shards:    []*aggShard{{live: true}, {live: false, stale: 2}},
		inbox:     make(chan aggMsg, 4),
		stop:      make(chan struct{}),
		mStale:    reg.Counter(obs.MetricShardStaleReduces, ""),
		mRestarts: reg.Counter(obs.MetricShardRestarts, ""),
	}
	valid := func() transport.Message {
		return transport.Message{Type: transport.MsgShardHello, Round: 1, Labeled: 1,
			Dim: 3, Users: 2, Samples: 2, W: []float64{1, 2, 3}, V: []float64{10}}
	}

	tryRejoin := func(hello transport.Message) transport.Message {
		t.Helper()
		aggSide, peer := transport.Pipe()
		var reply transport.Message
		var rerr error
		done := make(chan struct{})
		go func() { defer close(done); reply, rerr = peer.Recv() }()
		a.attach(Rejoin{Conn: aggSide, Hello: hello})
		<-done
		if rerr != nil {
			t.Fatalf("no reply to the rejoin attempt: %v", rerr)
		}
		return reply
	}

	rejects := []struct {
		name   string
		mutate func(*transport.Message)
		want   string
	}{
		{"wrong type", func(m *transport.Message) { m.Type = transport.MsgHello }, "checkpoint-restore"},
		{"fresh hello", func(m *transport.Message) { m.Labeled = 0 }, "checkpoint-restore"},
		{"unknown id", func(m *transport.Message) { m.Round = 5 }, "unknown shard id"},
		{"still live", func(m *transport.Message) { m.Round = 0 }, "still attached"},
		{"dim mismatch", func(m *transport.Message) { m.Dim = 4 }, "dimension mismatch"},
		{"no users", func(m *transport.Message) { m.Users = 0 }, "no users"},
		{"diverged history", func(m *transport.Message) { m.V = []float64{10, 8} }, "diverged"},
		{"history from the future", func(m *transport.Message) { m.V = []float64{10, 9, 8} }, "diverged"},
	}
	for _, tc := range rejects {
		m := valid()
		tc.mutate(&m)
		reply := tryRejoin(m)
		if reply.Type != transport.MsgError || !strings.Contains(reply.Reason, tc.want) {
			t.Errorf("%s: reply = %v (%q), want MsgError containing %q",
				tc.name, reply.Type, reply.Reason, tc.want)
		}
		if a.shards[1].live {
			t.Fatalf("%s: rejected rejoin flipped the shard live", tc.name)
		}
	}
	if a.restarts != 0 || reg.CounterValue(obs.MetricShardRestarts) != 0 {
		t.Fatal("rejected rejoins counted as restarts")
	}

	reply := tryRejoin(valid())
	if reply.Type != transport.MsgShardHello {
		t.Fatalf("valid rejoin rejected: %v (%q)", reply.Type, reply.Reason)
	}
	if reply.Round != 2 || reply.Users != 7 || len(reply.W) != 3 || !floatsIdentical(reply.V, a.hist) {
		t.Errorf("fast-forward reply = round %d, users %d, |w0| %d, hist %v",
			reply.Round, reply.Users, len(reply.W), reply.V)
	}
	s := a.shards[1]
	if !s.live || s.gen != 1 || s.stale != 0 {
		t.Errorf("shard state after rejoin: live %v, gen %d, stale %d", s.live, s.gen, s.stale)
	}
	if a.restarts != 1 || reg.CounterValue(obs.MetricShardRestarts) != 1 {
		t.Error("successful rejoin not counted")
	}
	// Tear down by hand: shards[0] was hand-built with no conn, so a.close()
	// would dereference it.
	close(a.stop)
	_ = a.shards[1].conn.Close()
}

// TestShardedRestoreHandshakeRejected: the aggregator must refuse a
// deployment whose shards disagree about the restore — mixed fresh and
// restoring shards, diverged restored state, or a malformed restored model —
// and tell every shard why.
func TestShardedRestoreHandshakeRejected(t *testing.T) {
	fresh := func(id int) transport.Message {
		return transport.Message{Type: transport.MsgShardHello, Round: id, Dim: 3,
			Users: 2, Samples: 2, W: []float64{1, 2, 3}, U: []float64{1, 2, 3}, Xi: 2}
	}
	restore := func(id int, w []float64) transport.Message {
		return transport.Message{Type: transport.MsgShardHello, Round: id, Dim: 3,
			Users: 2, Samples: 2, Labeled: 1, W: w, V: []float64{5}}
	}

	runCase := func(h0, h1 transport.Message) (error, []transport.Message) {
		t.Helper()
		a0, s0 := transport.Pipe()
		a1, s1 := transport.Pipe()
		replies := make([]transport.Message, 2)
		var wg sync.WaitGroup
		for i, c := range []transport.Conn{s0, s1} {
			h := []transport.Message{h0, h1}[i]
			wg.Add(1)
			go func(i int, c transport.Conn, h transport.Message) {
				defer wg.Done()
				_ = c.Send(h)
				replies[i], _ = c.Recv()
			}(i, c, h)
		}
		sc := sweepConfig()
		_, err := RunAggregator([]transport.Conn{a0, a1}, AggConfig{Core: sc.Core, Dist: sc.Dist})
		wg.Wait()
		return err, replies
	}

	err, replies := runCase(fresh(0), restore(1, []float64{1, 2, 3}))
	if err == nil || !strings.Contains(err.Error(), "restoring") {
		t.Errorf("mixed fresh/restore handshake: err = %v", err)
	}
	for i, r := range replies {
		if r.Type != transport.MsgError {
			t.Errorf("mixed handshake: shard %d got %v, want MsgError", i, r.Type)
		}
	}

	err, _ = runCase(restore(0, []float64{1, 2, 3}), restore(1, []float64{1, 2, 4}))
	if err == nil || !strings.Contains(err.Error(), "different global state") {
		t.Errorf("diverged restore handshake: err = %v", err)
	}

	err, _ = runCase(restore(0, []float64{1, 2}), restore(1, []float64{1, 2}))
	if err == nil || !errors.Is(err, ErrDimMismatch) {
		t.Errorf("short restored w0: err = %v, want ErrDimMismatch", err)
	}
}

// mkCkpt builds a minimal in-memory checkpoint for the merge/split tests.
func mkCkpt(epoch, dim int, w0, obj []float64, sessions ...int64) *Checkpoint {
	n := len(sessions)
	return &Checkpoint{Epoch: epoch, Dim: dim, Seed: 7,
		W0:        append(mat.Vector(nil), w0...),
		Objective: append([]float64(nil), obj...),
		Sessions:  append([]int64(nil), sessions...),
		Dropped:   make([]bool, n), Stale: make([]int, n),
		Us: make([]mat.Vector, n), LastW: make([]mat.Vector, n),
		LastV: make([]mat.Vector, n), LastXi: make([]float64, n)}
}

func TestMergeCheckpointsErrors(t *testing.T) {
	base := func() *Checkpoint { return mkCkpt(2, 2, []float64{1, 2}, []float64{9, 8}, 11, 12) }

	if _, err := MergeCheckpoints(); err == nil {
		t.Error("merging nothing succeeded")
	}

	cases := []struct {
		name  string
		other *Checkpoint
		want  string
	}{
		{"epoch mismatch", mkCkpt(3, 2, []float64{1, 2}, []float64{9, 8}, 13), "epoch"},
		{"dim mismatch", mkCkpt(2, 3, []float64{1, 2, 3}, []float64{9, 8}, 13), "epoch"},
		{"w0 divergence", mkCkpt(2, 2, []float64{1, 3}, []float64{9, 8}, 13), "global state"},
		{"objective divergence", mkCkpt(2, 2, []float64{1, 2}, []float64{9, 7}, 13), "global state"},
		{"overlapping sessions", mkCkpt(2, 2, []float64{1, 2}, []float64{9, 8}, 12), "duplicate session"},
	}
	for _, tc := range cases {
		if _, err := MergeCheckpoints(base(), tc.other); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want one containing %q", tc.name, err, tc.want)
		}
	}

	// Sessionless slots (token 0) are exempt from the uniqueness rule.
	zero := mkCkpt(2, 2, []float64{1, 2}, []float64{9, 8}, 0)
	if _, err := MergeCheckpoints(zero, mkCkpt(2, 2, []float64{1, 2}, []float64{9, 8}, 0)); err != nil {
		t.Errorf("zero-token merge failed: %v", err)
	}

	merged, err := MergeCheckpoints(base(), mkCkpt(2, 2, []float64{1, 2}, []float64{9, 8}, 13))
	if err != nil {
		t.Fatalf("valid merge failed: %v", err)
	}
	if merged.Epoch != 2 || len(merged.Sessions) != 3 ||
		merged.Sessions[0] != 11 || merged.Sessions[1] != 12 || merged.Sessions[2] != 13 {
		t.Errorf("merged checkpoint = epoch %d, sessions %v", merged.Epoch, merged.Sessions)
	}
}

func TestSplitCheckpointErrors(t *testing.T) {
	ck := mkCkpt(2, 2, []float64{1, 2}, []float64{9, 8}, 11, 12, 13)

	if _, err := SplitCheckpoint(ck, func(int, int64) bool { return false }); err == nil ||
		!strings.Contains(err.Error(), "no users") {
		t.Errorf("empty split: err = %v, want one selecting no users", err)
	}

	odd, err := SplitCheckpoint(ck, func(slot int, sess int64) bool { return sess%2 == 1 })
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(odd.Sessions) != 2 || odd.Sessions[0] != 11 || odd.Sessions[1] != 13 {
		t.Errorf("split kept sessions %v, want [11 13]", odd.Sessions)
	}
	if odd.Epoch != ck.Epoch || !floatsIdentical(odd.W0, ck.W0) ||
		!floatsIdentical(odd.Objective, ck.Objective) {
		t.Error("split did not preserve the global state")
	}
	if len(odd.Dropped) != 2 || len(odd.Us) != 2 || len(odd.LastXi) != 2 {
		t.Error("split per-user slices not renumbered densely")
	}
}
