package protocol

import (
	"strings"
	"testing"

	"plos/internal/obs"
	"plos/internal/transport"
)

// flightConfig is sweepConfig with a flight recorder attached; returns the
// config, the registry, and the JSONL buffer.
func flightConfig() (ServerConfig, *obs.Registry, *strings.Builder) {
	cfg := sweepConfig()
	reg := obs.NewRegistry()
	var buf strings.Builder
	reg.SetFlightRecorder(obs.NewFlightRecorder(&buf, 0))
	cfg.Core.Obs = reg
	return cfg, reg, &buf
}

// TestWireConfigRequestsTelemetry: the telemetry piggyback is requested iff
// the server observer has a flight recorder — a plain observer (or none)
// keeps the wire bytes identical to the pre-telemetry protocol.
func TestWireConfigRequestsTelemetry(t *testing.T) {
	plain := sweepConfig()
	if wireConfig(plain.Core, plain.Dist).Telemetry {
		t.Error("telemetry requested without an observer")
	}
	plain.Core.Obs = obs.NewRegistry()
	if wireConfig(plain.Core, plain.Dist).Telemetry {
		t.Error("telemetry requested by a flight-less observer")
	}
	withFlight, _, _ := flightConfig()
	if !wireConfig(withFlight.Core, withFlight.Dist).Telemetry {
		t.Error("telemetry not requested with a flight recorder attached")
	}
}

// TestServerFlightRecords: a clean 4-device run must leave a full fleet
// trace — run framing, per-round consensus records, and one device-round
// per fresh telemetry reply.
func TestServerFlightRecords(t *testing.T) {
	users, _ := makeUsers(31, 4)
	cfg, _, buf := flightConfig()
	res, err, _, clientErrs := runPipesFT(t, users, cfg, nil, nil)
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	for i, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d: %v", i, cerr)
		}
	}
	if res == nil {
		t.Fatal("nil result")
	}
	out := buf.String()
	for _, want := range []string{
		`"rec":"run-start","trainer":"server","users":4`,
		`"rec":"cccp-start"`,
		`"rec":"admm-round"`,
		`"rec":"cccp-iteration"`,
		`"sign_flips":-1`, // the wire server cannot see device signs
		`"rec":"run-end"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("flight stream missing %s", want)
		}
	}
	for u := 0; u < 4; u++ {
		if !strings.Contains(out, `"rec":"device-round","round":0,"user":`+string(rune('0'+u))) {
			t.Errorf("no device-round record for user %d in round 0", u)
		}
	}
	// Telemetry is cumulative device traffic: bytes must be non-zero.
	if strings.Contains(out, `"bytes":0,`) {
		t.Error("device-round carries zero traffic bytes")
	}
}

// TestTelemetryBitIdentical: requesting the telemetry piggyback (which a
// flight-recording coordinator does) must not move a single bit of the
// trained model — telemetry carries only durations and counts, never
// anything the solver reads. Runs over pipes with fixed slot order, the
// deterministic harness (TCP accept order permutes federated-init and
// consensus summation at ULP level, so wire bit-compares live here).
func TestTelemetryBitIdentical(t *testing.T) {
	users, _ := makeUsers(34, 4)
	plain, err, _, plainErrs := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	cfg, _, buf := flightConfig()
	tel, err, _, telErrs := runPipesFT(t, users, cfg, nil, nil)
	if err != nil {
		t.Fatalf("telemetry run: %v", err)
	}
	for i := range users {
		if plainErrs[i] != nil || telErrs[i] != nil {
			t.Fatalf("client %d: plain err %v, telemetry err %v", i, plainErrs[i], telErrs[i])
		}
		if !vecIdentical(plain.Model.W[i], tel.Model.W[i]) {
			t.Errorf("user %d hyperplane differs with telemetry on", i)
		}
	}
	if !vecIdentical(plain.Model.W0, tel.Model.W0) {
		t.Errorf("global hyperplane differs with telemetry on:\nplain %v\n  tel %v",
			plain.Model.W0, tel.Model.W0)
	}
	// The run must actually have exercised the piggyback path.
	if !strings.Contains(buf.String(), `"rec":"device-round"`) {
		t.Error("no device-round records: telemetry was not requested or merged")
	}
}

// TestFlightStaleAndDropRecords: a device whose connection dies mid-run under
// Resume is carried stale (stale-reuse records), then permanently dropped
// (transient + permanent device-drop records, one drop-cause count).
func TestFlightStaleAndDropRecords(t *testing.T) {
	users, _ := makeUsers(32, 4)
	cfg, reg, buf := flightConfig()
	cfg.FT = FTConfig{Resume: true, MaxStale: 2}
	const victim = 1
	wrapClient := func(i int, c transport.Conn) transport.Conn {
		if i == victim {
			return transport.FailAfter(c, 6)
		}
		return c
	}
	res, err, _, _ := runPipesFT(t, users, cfg, nil, wrapClient)
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	if !res.Dropped[victim] {
		t.Fatal("victim not dropped")
	}
	out := buf.String()
	if !strings.Contains(out, `"rec":"stale-reuse","round":`) ||
		!strings.Contains(out, `"user":1,"stale":1}`) {
		t.Error("no stale-reuse record for the victim")
	}
	if !strings.Contains(out, `"rec":"device-drop","user":1,"cause":`) {
		t.Error("no device-drop record for the victim")
	}
	if !strings.Contains(out, `"permanent":false`) {
		t.Error("missing transient device-drop record (first connection failure)")
	}
	if !strings.Contains(out, `"permanent":true`) {
		t.Error("missing permanent device-drop record")
	}
	if got := reg.CounterValue(obs.MetricProtocolDeviceDrops); got != 1 {
		t.Errorf("%s = %d, want 1 (one first-failure per device)", obs.MetricProtocolDeviceDrops, got)
	}
}

// TestFlightQuorumRecord: a drop that breaches the quorum threshold must
// leave a quorum record before the run aborts.
func TestFlightQuorumRecord(t *testing.T) {
	users, _ := makeUsers(33, 4)
	cfg, _, buf := flightConfig()
	cfg.FT.Quorum = 0.9 // ceil(3.6) = 4: any death aborts
	wrapClient := func(i int, c transport.Conn) transport.Conn {
		if i == 2 {
			return transport.FailAfter(c, 6)
		}
		return c
	}
	_, err, _, _ := runPipesFT(t, users, cfg, nil, wrapClient)
	if err == nil {
		t.Fatal("expected quorum abort")
	}
	if !strings.Contains(buf.String(), `"rec":"quorum","active":3,"need":4`) {
		t.Errorf("no quorum record in flight stream:\n%s", buf.String())
	}
}
