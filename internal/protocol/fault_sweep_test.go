package protocol

import (
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/transport"
)

// sweepConfig keeps each training run tiny so the exhaustive k-sweep stays
// fast: two CCCP rounds of at most four ADMM iterations each.
func sweepConfig() ServerConfig {
	return ServerConfig{
		Core: core.Config{Lambda: 50, Cl: 1, Cu: 0.2, MaxCCCPIter: 2, MaxCutIter: 8},
		Dist: core.DistConfig{MaxADMMIter: 4},
	}
}

// runFaultedPipes trains over pipes with user `victim`'s client conn wrapped
// in FailAfter(k). Unlike runPipes it tolerates server errors (some sweep
// points abort during the handshake) and always unblocks surviving clients
// by closing the server conns before waiting for them.
func runFaultedPipes(t *testing.T, users []core.UserData, victim, k int) (*ServerResult, error) {
	t.Helper()
	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		conn := cc
		if i == victim {
			conn = transport.FailAfter(cc, k)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			_, _ = RunClient(conn, users[i], ClientOptions{Seed: int64(i)})
		}(i, conn)
	}
	res, err := RunServer(serverConns, sweepConfig())
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	return res, err
}

// TestFaultSweepEveryMessage kills one device's connection after exactly k
// operations, for every k from 0 (dies before its hello) to the op count of
// a clean run (never dies). Whatever k, training must either complete with
// the victim reported dropped, or fail with a clean error — never hang and
// never panic. A watchdog per sweep point turns a hang into a test failure
// instead of a 10-minute suite timeout.
func TestFaultSweepEveryMessage(t *testing.T) {
	users, _ := makeUsers(40, 3)
	const victim = 1

	clean, err := runFaultedPipes(t, users, victim, 1<<30)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.Dropped[victim] {
		t.Fatal("clean run dropped the victim")
	}
	// The victim's client performs exactly as many ops as the server's side
	// of its connection observed (every pipe op is one send/recv pair).
	nOps := clean.PerUser[victim].MessagesSent + clean.PerUser[victim].MessagesReceived
	if nOps < 10 {
		t.Fatalf("clean run exchanged only %d ops; sweep would be vacuous", nOps)
	}

	for k := 0; k <= nOps; k++ {
		var (
			res  *ServerResult
			rerr error
			done = make(chan struct{})
		)
		go func() {
			defer close(done)
			res, rerr = runFaultedPipes(t, users, victim, k)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("k=%d: training hung", k)
		}
		if rerr != nil {
			continue // a clean server error is an acceptable outcome
		}
		if k < nOps && !res.Dropped[victim] {
			t.Errorf("k=%d: fault fired but victim not reported dropped", k)
		}
		if k >= nOps && res.Dropped[victim] {
			t.Errorf("k=%d: fault never fires yet victim dropped", k)
		}
		for i := range users {
			if i != victim && res.Dropped[i] {
				t.Errorf("k=%d: healthy user %d reported dropped", k, i)
			}
		}
	}
}
