package protocol

import (
	"math"
	"strings"
	"testing"

	"plos/internal/compress"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/rng"
	"plos/internal/transport"
)

// wideUsers embeds the 2-D synthetic classes into `dim` dimensions (extra
// coordinates are low-amplitude noise). The codec-v4 block headers cost a
// handful of bytes per vector, so demonstrating real byte savings needs
// payloads wider than the 2-D fixtures.
func wideUsers(seed int64, n, dim int) []core.UserData {
	g := rng.New(seed)
	users := make([]core.UserData, n)
	for t := range users {
		labeled := 10
		if t%2 == 1 {
			labeled = 0
		}
		u, truth := synthUser(g.SplitN("u", t), 12, labeled, float64(t)*0.1)
		rows := 24
		x := mat.NewMatrix(rows, dim)
		ng := g.SplitN("noise", t)
		for i := 0; i < rows; i++ {
			x.Set(i, 0, u.X.At(i, 0))
			x.Set(i, 1, u.X.At(i, 1))
			for j := 2; j < dim; j++ {
				x.Set(i, j, ng.Norm()*0.05)
			}
		}
		users[t] = core.UserData{X: x, Y: truth[:labeled]}
	}
	return users
}

func interopCfg(t *testing.T, spec string) compress.Config {
	t.Helper()
	cfg, err := compress.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	return cfg
}

func compStatsOf(c transport.Conn) (int64, int64) {
	if cs, ok := c.(transport.CompressionStats); ok {
		return cs.CompStats()
	}
	return 0, 0
}

// TestCompressionInteropMatrix pins the cross-version story: a
// compression-capable node talking to a peer without the wrapper (the
// "codec v3" node in this tree) must negotiate down to dense frames and
// change NOTHING — the trained model is bit-identical to an all-v3 run.
func TestCompressionInteropMatrix(t *testing.T) {
	users, _ := makeUsers(17, 4)
	cfg := interopCfg(t, "q8,topk:0.5,delta")

	baseline, err, _, baseErrs := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("all-v3 run: %v", err)
	}
	for i, e := range baseErrs {
		if e != nil {
			t.Fatalf("all-v3 client %d: %v", i, e)
		}
	}

	cases := []struct {
		name                   string
		wrapServer, wrapClient bool
	}{
		{"v4 client, v3 server", false, true},
		{"v3 client, v4 server", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var wrapped []transport.Conn
			wrap := func(role transport.CompressRole) func(i int, c transport.Conn) transport.Conn {
				return func(i int, c transport.Conn) transport.Conn {
					w := transport.Compress(c, cfg, role, nil)
					wrapped = append(wrapped, w)
					return w
				}
			}
			var ws, wc func(i int, c transport.Conn) transport.Conn
			if tc.wrapServer {
				ws = wrap(transport.CompressServer)
			}
			if tc.wrapClient {
				wc = wrap(transport.CompressClient)
			}
			res, err, _, clientErrs := runPipesFT(t, users, sweepConfig(), ws, wc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for i, e := range clientErrs {
				if e != nil {
					t.Fatalf("client %d: %v", i, e)
				}
			}
			if !vecIdentical(baseline.Model.W0, res.Model.W0) {
				t.Error("global hyperplane differs from the all-v3 run")
			}
			for i := range users {
				if !vecIdentical(baseline.Model.W[i], res.Model.W[i]) {
					t.Errorf("user %d hyperplane differs from the all-v3 run", i)
				}
			}
			// The one-sided wrapper must never have compressed a frame.
			for _, w := range wrapped {
				if raw, comp := compStatsOf(w); raw != 0 || comp != 0 {
					t.Errorf("one-sided wrapper compressed %d/%d bytes; want dense fallback", raw, comp)
				}
			}
		})
	}
}

// TestCompressionMixedFleet runs v4 and v3 devices against a v4 server in
// ONE training run: compressed connections carry codec-v4 payloads, the
// dense ones stay untouched, and training completes for everyone.
func TestCompressionMixedFleet(t *testing.T) {
	users := wideUsers(23, 4, 32)
	cfg := interopCfg(t, "q16,topk:0.5")

	serverSide := make([]transport.Conn, len(users))
	clientSide := make([]transport.Conn, len(users))
	wrapServer := func(i int, c transport.Conn) transport.Conn {
		w := transport.Compress(c, cfg, transport.CompressServer, nil)
		serverSide[i] = w
		return w
	}
	wrapClient := func(i int, c transport.Conn) transport.Conn {
		if i%2 == 1 {
			clientSide[i] = c
			return c // a v3 device: no wrapper at all
		}
		w := transport.Compress(c, cfg, transport.CompressClient, nil)
		clientSide[i] = w
		return w
	}
	res, err, _, clientErrs := runPipesFT(t, users, sweepConfig(), wrapServer, wrapClient)
	if err != nil {
		t.Fatalf("mixed fleet run: %v", err)
	}
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
	}
	for i := range users {
		if res.Dropped[i] {
			t.Errorf("mixed fleet dropped user %d", i)
		}
		for _, v := range res.Model.W[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("user %d hyperplane is not finite", i)
			}
		}
		raw, comp := compStatsOf(serverSide[i])
		if i%2 == 0 {
			if raw == 0 || comp == 0 || comp >= raw {
				t.Errorf("v4 device %d: server conn saw raw=%d comp=%d; want real savings", i, raw, comp)
			}
		} else if raw != 0 || comp != 0 {
			t.Errorf("v3 device %d: server conn compressed %d/%d bytes; want none", i, raw, comp)
		}
	}
}

// TestCompressionFlightRecords: with a flight recorder attached, every
// device-round record of a compressed run carries the connection's
// cumulative raw/encoded payload bytes (and real savings).
func TestCompressionFlightRecords(t *testing.T) {
	users := wideUsers(37, 3, 32)
	cfg, _, buf := flightConfig()
	ccfg := interopCfg(t, "q8,topk:0.5")
	wrap := func(role transport.CompressRole) func(i int, c transport.Conn) transport.Conn {
		return func(i int, c transport.Conn) transport.Conn {
			return transport.Compress(c, ccfg, role, nil)
		}
	}
	_, err, _, clientErrs := runPipesFT(t, users, cfg,
		wrap(transport.CompressServer), wrap(transport.CompressClient))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
	}
	out := buf.String()
	if !strings.Contains(out, `"rec":"device-round"`) {
		t.Fatal("no device-round records in the flight stream")
	}
	if !strings.Contains(out, `"raw_bytes":`) || !strings.Contains(out, `"comp_bytes":`) {
		t.Fatal("device-round records lack the compression byte fields")
	}
	// The server compresses its params before the first device reply is
	// merged, so no device-round should ever report zero raw bytes.
	if strings.Contains(out, `"raw_bytes":0,`) {
		t.Error("a device-round record reports zero raw payload bytes")
	}
}

// TestCompressionOffBitIdentical: a WithCompression-capable stack with the
// spec "off" is byte-for-byte absent — the conn wrapper is not even
// installed (Compress returns the inner conn), so the run equals the
// baseline trivially. This guards the plumbing against accidentally
// wrapping disabled configs.
func TestCompressionOffBitIdentical(t *testing.T) {
	users, _ := makeUsers(29, 3)
	off := interopCfg(t, "off")
	wrap := func(role transport.CompressRole) func(i int, c transport.Conn) transport.Conn {
		return func(i int, c transport.Conn) transport.Conn {
			return transport.Compress(c, off, role, nil)
		}
	}
	baseline, err, _, _ := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	res, err, _, _ := runPipesFT(t, users, sweepConfig(),
		wrap(transport.CompressServer), wrap(transport.CompressClient))
	if err != nil {
		t.Fatalf("off run: %v", err)
	}
	if !vecIdentical(baseline.Model.W0, res.Model.W0) {
		t.Error("compression-off run differs from baseline")
	}
}
