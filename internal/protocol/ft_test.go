package protocol

import (
	"errors"
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/transport"
)

// ftNoSleep replaces backoff sleeps so redial loops run instantly.
func ftNoSleep(time.Duration) {}

// vecIdentical is bit-exact vector equality — the fault-tolerance layer
// promises fault-free runs are unchanged, not merely close.
func vecIdentical(a, b mat.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runPipesFT trains over pipes with independent wrappers on each end of
// every connection. Unlike runPipes it tolerates server errors and always
// closes the server conns before waiting for clients, so stragglers (and
// async chaos deliveries) unblock.
func runPipesFT(t *testing.T, users []core.UserData, cfg ServerConfig,
	wrapServer, wrapClient func(i int, c transport.Conn) transport.Conn) (*ServerResult, error, []*ClientResult, []error) {
	t.Helper()
	n := len(users)
	serverConns := make([]transport.Conn, n)
	clientResults := make([]*ClientResult, n)
	clientErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		if wrapServer != nil {
			sc = wrapServer(i, sc)
		}
		if wrapClient != nil {
			cc = wrapClient(i, cc)
		}
		serverConns[i] = sc
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			clientResults[i], clientErrs[i] = RunClient(conn, users[i], ClientOptions{Seed: int64(i)})
		}(i, cc)
	}
	res, err := RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	return res, err, clientResults, clientErrs
}

// TestFTFaultFreeBitIdentical is the core robustness guarantee: switching on
// the whole fault-tolerance stack (op timeouts, retry/backoff, round
// deadline, quorum, session resume) must not change a fault-free run by a
// single bit.
func TestFTFaultFreeBitIdentical(t *testing.T) {
	users, _ := makeUsers(11, 4)

	plain, err, _, plainErrs := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	cfg := sweepConfig()
	rejoin := make(chan Rejoin, len(users))
	cfg.FT = FTConfig{
		RoundTimeout: time.Minute,
		Quorum:       0.5,
		Resume:       true,
		Rejoin:       rejoin,
	}
	policy := func(seed int64) transport.RetryPolicy {
		return transport.RetryPolicy{MaxAttempts: 4, Seed: seed, Sleep: ftNoSleep}
	}
	armor := func(base int64) func(i int, c transport.Conn) transport.Conn {
		return func(i int, c transport.Conn) transport.Conn {
			transport.SetOpTimeout(c, time.Minute)
			return transport.Retry(c, policy(base+int64(i)), nil)
		}
	}
	ft, err, _, ftErrs := runPipesFT(t, users, cfg, armor(100), armor(200))
	if err != nil {
		t.Fatalf("FT run: %v", err)
	}

	for i := range users {
		if plainErrs[i] != nil || ftErrs[i] != nil {
			t.Fatalf("client %d: plain err %v, ft err %v", i, plainErrs[i], ftErrs[i])
		}
		if ft.Dropped[i] {
			t.Fatalf("fault-free FT run dropped user %d", i)
		}
		if !vecIdentical(plain.Model.W[i], ft.Model.W[i]) {
			t.Errorf("user %d hyperplane differs with FT enabled", i)
		}
	}
	if !vecIdentical(plain.Model.W0, ft.Model.W0) {
		t.Errorf("global hyperplane differs with FT enabled:\nplain %v\n   ft %v",
			plain.Model.W0, ft.Model.W0)
	}
}

// TestQuorumAbort: with Quorum 0.9 over four devices, ceil(3.6) = 4 must
// stay active, so a single death aborts the run.
func TestQuorumAbort(t *testing.T) {
	users, _ := makeUsers(4, 4)
	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		conn := cc
		if i == 1 {
			conn = transport.FailAfter(cc, 6)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			_, _ = RunClient(conn, users[i], ClientOptions{Seed: int64(i)})
		}(i, conn)
	}
	cfg := sweepConfig()
	cfg.FT.Quorum = 0.9
	_, err := RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if !errors.Is(err, ErrTooFewActive) {
		t.Errorf("err = %v, want ErrTooFewActive", err)
	}
}

// opHookConn invokes hook before every Send/Recv with the 1-based combined
// operation count. Safe for the protocol's single-goroutine client side.
type opHookConn struct {
	transport.Conn
	ops  int
	hook func(op int)
}

func (c *opHookConn) Send(m transport.Message) error {
	c.ops++
	c.hook(c.ops)
	return c.Conn.Send(m)
}

func (c *opHookConn) Recv() (transport.Message, error) {
	c.ops++
	c.hook(c.ops)
	return c.Conn.Recv()
}

// TestStragglerStaleReuse: a device that stalls far past the round deadline
// is carried on its last reported solution instead of being dropped.
func TestStragglerStaleReuse(t *testing.T) {
	users, _ := makeUsers(12, 3)
	reg := obs.NewRegistry()
	cfg := sweepConfig()
	cfg.Core.Obs = reg
	cfg.FT.RoundTimeout = 60 * time.Millisecond
	cfg.FT.MaxStale = 1000

	const victim = 0
	res, err, _, clientErrs := runPipesFT(t, users, cfg, nil,
		func(i int, c transport.Conn) transport.Conn {
			if i != victim {
				return c
			}
			// Op 6 is the params receive of ADMM iteration 1 (after the
			// hello exchange, start-round, and the full iteration 0), so the
			// victim already has a reusable solution on file.
			return &opHookConn{Conn: c, hook: func(op int) {
				if op == 6 {
					time.Sleep(250 * time.Millisecond)
				}
			}}
		})
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	if res.Dropped[victim] {
		t.Fatal("straggler was dropped despite the stale budget")
	}
	if res.Model.W[victim] == nil {
		t.Error("straggler should keep a hyperplane in the final model")
	}
	if n := reg.CounterValue(obs.MetricProtocolStaleReuses); n == 0 {
		t.Error("stale-reuse counter never incremented")
	}
	if n := reg.CounterValue(obs.MetricProtocolDroppedDevices); n != 0 {
		t.Errorf("dropped-devices counter = %d, want 0", n)
	}
	// The healthy users must have finished cleanly; the victim may have been
	// cut off mid-stall when the test closed the server conns.
	for i, e := range clientErrs {
		if i != victim && e != nil {
			t.Errorf("healthy client %d: %v", i, e)
		}
	}
}

// gateConn blocks before its n-th combined operation until release closes.
// It sequences the resume test: the server cannot finish the gated iteration
// until the victim's rejoin is already queued.
type gateConn struct {
	transport.Conn
	ops     int
	n       int
	release <-chan struct{}
}

func (c *gateConn) step() {
	c.ops++
	if c.ops == c.n {
		<-c.release
	}
}

func (c *gateConn) Send(m transport.Message) error {
	c.step()
	return c.Conn.Send(m)
}

func (c *gateConn) Recv() (transport.Message, error) {
	c.step()
	return c.Conn.Recv()
}

// TestClientResumeMidTraining: a device whose connection dies mid-round
// redials, presents its session token, and is re-attached to its slot; the
// run completes with no device dropped.
func TestClientResumeMidTraining(t *testing.T) {
	users, _ := makeUsers(13, 3)
	reg := obs.NewRegistry()
	rejoinCh := make(chan Rejoin, 1)
	cfg := ServerConfig{
		Core: core.Config{Lambda: 50, Cl: 1, Cu: 0.2, MaxCCCPIter: 2, MaxCutIter: 8, Obs: reg},
		// Plenty of iterations per round and a tolerance ADMM cannot reach,
		// so the redial always lands while the round is still in flight.
		Dist: core.DistConfig{MaxADMMIter: 20, EpsAbs: 1e-12},
		FT:   FTConfig{Resume: true, Rejoin: rejoinCh, MaxStale: 1000},
	}

	const victim = 0
	n := len(users)
	serverConns := make([]transport.Conn, n)
	clientConns := make([]transport.Conn, n)
	// redialGate delays the victim's second dial until the server has
	// entered iteration 4 — guaranteeing at least one ADMM iteration served
	// the victim from its stale solution before the rejoin can land.
	redialGate := make(chan struct{})
	// gateRelease then holds iteration 4 open until the rejoin is queued,
	// so the re-attachment always happens with iterations to spare.
	gateRelease := make(chan struct{})
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		clientConns[i] = cc
	}

	var wg sync.WaitGroup
	clientResults := make([]*ClientResult, n)
	clientErrs := make([]error, n)

	// The victim's first connection dies at its 10th operation — the params
	// receive of ADMM iteration 3, after three delivered updates. Its second
	// dial builds a fresh pipe whose server end is fed to the rejoin channel
	// the way plos.Serve's accept loop would.
	dialCount := 0
	victimDial := func() (transport.Conn, error) {
		dialCount++
		switch dialCount {
		case 1:
			return transport.FailAfter(clientConns[victim], 9), nil
		case 2:
			<-redialGate
			sc, cc := transport.Pipe()
			go func() {
				m, err := sc.Recv()
				if err != nil {
					_ = sc.Close()
					return
				}
				rejoinCh <- Rejoin{Conn: sc, Hello: m}
				close(gateRelease)
			}()
			return cc, nil
		default:
			return nil, errors.New("no third connection in this test")
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		clientResults[victim], clientErrs[victim] = RunClientLoop(victimDial, users[victim],
			ClientOptions{Seed: int64(victim), MaxRedials: 2,
				RedialDelay: time.Millisecond, Sleep: ftNoSleep})
	}()
	for i := 1; i < n; i++ {
		conn := clientConns[i]
		if i == 1 {
			// Op 12 is user 1's params receive of iteration 4: by then the
			// server has finished iteration 3 and served the victim stale.
			conn = &opHookConn{Conn: conn, hook: func(op int) {
				if op == 12 {
					close(redialGate)
				}
			}}
		}
		if i == 2 {
			// Op 13 is user 2's update send of iteration 4: iteration 4
			// cannot complete — and the server cannot run out of rounds —
			// before the victim's rejoin is queued.
			conn = &gateConn{Conn: conn, n: 13, release: gateRelease}
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			clientResults[i], clientErrs[i] = RunClient(conn, users[i], ClientOptions{Seed: int64(i)})
		}(i, conn)
	}

	res, err := RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
	}
	if res.Dropped[victim] {
		t.Fatal("victim dropped despite successful resume")
	}
	if res.Model.W[victim] == nil {
		t.Error("victim missing from the final model")
	}
	if clientResults[victim].Session == 0 {
		t.Error("victim never received a session token")
	}
	if !clientResults[victim].W.Equal(res.Model.W[victim], 1e-9) {
		t.Error("victim's device-side hyperplane disagrees with the server")
	}
	if got := reg.CounterValue(obs.MetricProtocolReconnects); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if reg.CounterValue(obs.MetricProtocolStaleReuses) == 0 {
		t.Error("victim's detached rounds should have used stale reuse")
	}
	if reg.CounterValue(obs.MetricProtocolDroppedDevices) != 0 {
		t.Error("no device should have been dropped")
	}
}

// TestChaosSoakTraining runs training under the seeded chaos harness (drops,
// duplicates, corruption, delays, link flaps on every device link) with the
// retry layer absorbing the faults. Because every chaos fault is
// content-preserving and the protocol is lockstep, the trained model must be
// bit-identical to the clean run.
func TestChaosSoakTraining(t *testing.T) {
	users, _ := makeUsers(40, 3)

	clean, err, _, _ := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	reg := obs.NewRegistry()
	policy := func(seed int64) transport.RetryPolicy {
		return transport.RetryPolicy{MaxAttempts: 10, Seed: seed, Sleep: ftNoSleep}
	}
	chaotic, err, _, chaosClientErrs := runPipesFT(t, users, sweepConfig(),
		func(i int, c transport.Conn) transport.Conn {
			// The server side needs the dedup layer because client-side chaos
			// duplicates deliveries toward the server.
			return transport.Retry(c, policy(1000+int64(i)), reg)
		},
		func(i int, c transport.Conn) transport.Conn {
			chaos := transport.Chaos(c, transport.ChaosConfig{
				Seed:        100 + int64(i),
				DropProb:    0.05,
				DupProb:     0.05,
				CorruptProb: 0.03,
				DelayProb:   0.10,
				MaxDelay:    time.Millisecond,
				FlapProb:    0.01,
				Sleep:       ftNoSleep,
			}, reg)
			return transport.Retry(chaos, policy(int64(i)), reg)
		})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	for i, e := range chaosClientErrs {
		if e != nil {
			t.Fatalf("chaos client %d: %v", i, e)
		}
	}
	for i := range users {
		if chaotic.Dropped[i] {
			t.Fatalf("user %d dropped under chaos — retry budget should absorb every fault", i)
		}
		if !vecIdentical(clean.Model.W[i], chaotic.Model.W[i]) {
			t.Errorf("user %d model differs under chaos", i)
		}
	}
	if !vecIdentical(clean.Model.W0, chaotic.Model.W0) {
		t.Error("global model differs under chaos")
	}
	if reg.CounterValue(obs.MetricChaosFaults) == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
	if reg.CounterValue(obs.MetricTransportRetries) == 0 {
		t.Error("retry layer never fired despite injected faults")
	}
}

// doneBlocker simulates a coordinator crash between the post-round
// checkpoint and the final broadcast: the Done send fails and kills the
// connection, exactly as a process exit would.
type doneBlocker struct {
	transport.Conn
}

func (d *doneBlocker) Send(m transport.Message) error {
	if m.Type == transport.MsgDone {
		_ = d.Conn.Close()
		return errors.New("injected coordinator crash at done")
	}
	return d.Conn.Send(m)
}

// TestCheckpointResumeBitIdentical: run one CCCP round, "crash" the
// coordinator, restore a fresh server from the checkpoint with the same
// (still-running) clients, and finish. The final model must be bit-identical
// to an uninterrupted run, and the re-saved checkpoint must advance.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	users, _ := makeUsers(14, 3)
	n := len(users)

	reference, err, _, _ := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	path := t.TempDir() + "/run.ckpt"
	dials := make([]chan transport.Conn, n)
	for i := range dials {
		dials[i] = make(chan transport.Conn, 1)
	}
	var wg sync.WaitGroup
	clientResults := make([]*ClientResult, n)
	clientErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dial := func() (transport.Conn, error) {
				c, ok := <-dials[i]
				if !ok {
					return nil, errors.New("out of connections")
				}
				return c, nil
			}
			clientResults[i], clientErrs[i] = RunClientLoop(dial, users[i],
				ClientOptions{Seed: int64(i), MaxRedials: 2,
					RedialDelay: time.Millisecond, Sleep: ftNoSleep})
		}(i)
	}

	// Phase 1: train exactly one round, checkpoint it, then crash at Done.
	phase1 := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		phase1[i] = &doneBlocker{Conn: sc}
		dials[i] <- cc
	}
	cfg1 := sweepConfig()
	cfg1.Core.MaxCCCPIter = 1
	cfg1.FT.CheckpointPath = path
	if _, err := RunServer(phase1, cfg1); err != nil {
		t.Fatalf("phase 1: %v", err)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if ck.Epoch != 1 {
		t.Fatalf("checkpoint epoch = %d, want 1", ck.Epoch)
	}

	// Phase 2: a fresh coordinator restores the checkpoint; the surviving
	// clients redial and re-attach by session token.
	phase2 := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		phase2[i] = sc
		dials[i] <- cc
	}
	cfg2 := sweepConfig()
	cfg2.FT.CheckpointPath = path
	cfg2.FT.Restore = ck
	res, err := RunServer(phase2, cfg2)
	for _, c := range phase2 {
		_ = c.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("phase 2: %v", err)
	}

	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
		if clientResults[i].Session == 0 {
			t.Errorf("client %d never held a session token", i)
		}
	}
	for i := range users {
		if res.Dropped[i] {
			t.Fatalf("user %d dropped across the restore", i)
		}
		if !vecIdentical(reference.Model.W[i], res.Model.W[i]) {
			t.Errorf("user %d model differs from the uninterrupted run", i)
		}
		if !vecIdentical(reference.Model.W[i], clientResults[i].W) {
			t.Errorf("user %d device-side model differs from the uninterrupted run", i)
		}
	}
	if !vecIdentical(reference.Model.W0, res.Model.W0) {
		t.Error("global model differs from the uninterrupted run")
	}
	final, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != 2 {
		t.Errorf("final checkpoint epoch = %d, want 2", final.Epoch)
	}
}
