package protocol

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plos/internal/obs"
	"plos/internal/obs/health"
	"plos/internal/transport"
)

// quietHealthCfg is the health config these integration tests attach to the
// aggregator: shard-lifecycle and quorum rules live, objective rules
// disabled. The aggregator's cccp-iteration record fires before the descent
// check and degraded (stale-carry) rounds legitimately record ascending
// objectives, so a live ascent rule would make the /healthz trajectory
// depend on fault timing instead of shard lifecycle alone.
func quietHealthCfg(shards, quorum int) health.Config {
	return health.Config{
		Shards:       shards,
		ShardQuorum:  quorum,
		StallEpsilon: 1e18,
		StallRounds:  1 << 30,
	}
}

// getHealthz issues one GET against the engine's /healthz server and
// returns the status code and body.
func getHealthz(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// pollHealthz polls until the predicate accepts a (status, body) pair or the
// deadline passes; it returns the last observation either way.
func pollHealthz(t *testing.T, url string, ok func(code int, body string) bool) (int, string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := getHealthz(t, url)
		if ok(code, body) || time.Now().After(deadline) {
			return code, body
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAggHealthzKillRestoreRecovers is the acceptance gate of the health
// plane: the same seeded kill/restore choreography as
// TestShardedKillRestoreRejoins, with a health engine attached to the
// aggregator and /healthz polled live. The endpoint must report 200 ok
// before the fault, flip to 503 naming the dead shard and its detach cause
// while the degraded quorum carries stale partials, and return to 200 after
// the checkpoint rejoin — without moving a bit of the final model.
func TestAggHealthzKillRestoreRecovers(t *testing.T) {
	users, _ := makeUsers(41, 6)
	partition := [][]int{{0, 1, 2}, {3, 4, 5}}
	ckPath := t.TempDir() + "/shard0.ckpt"

	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(nil, 256)
	reg.SetFlightRecorder(fr)
	eng := health.New(reg, quietHealthCfg(2, 1))
	srv := httptest.NewServer(eng.HealthzHandler())
	defer srv.Close()
	rejoins := make(chan Rejoin, 1)

	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 6
	sc.Dist.MaxADMMIter = 1
	sc.Core.CCCPTol = 1e-12
	cfg := AggConfig{Core: sc.Core, Dist: sc.Dist,
		FT: AggFTConfig{ShardQuorum: 1, MaxStale: 100, Rejoin: rejoins}}
	cfg.Core.Obs = reg

	if code, body := getHealthz(t, srv.URL); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthz before the run = %d %q, want 200 ok", code, body)
	}

	crashed := make(chan struct{})
	hold := make(chan struct{})
	var crashOnce sync.Once
	dials, wait := loopClients(users)

	// Same fault plan as TestShardedKillRestoreRejoins: shard 0's agg link
	// dies on its round-1 consensus sum, shard 1 parks that round until the
	// rejoin is queued so the run cannot end while shard 0 is down.
	agg0, sh0 := transport.Pipe()
	link0 := transport.FailAfter(sh0, 7)
	devs0 := make([]transport.Conn, len(partition[0]))
	for j, u := range partition[0] {
		scn, cc := transport.Pipe()
		devs0[j] = &crashConn{Conn: scn, once: &crashOnce, crashed: crashed}
		dials[u] <- cc
	}
	agg1, sh1 := transport.Pipe()
	link1 := transport.Conn(&parkConn{Conn: sh1, at: 4, hold: hold})
	devs1 := make([]transport.Conn, len(partition[1]))
	for j, u := range partition[1] {
		scn, cc := transport.Pipe()
		devs1[j] = scn
		dials[u] <- cc
	}

	var wg sync.WaitGroup
	var run1Err, run2Err, shard1Err, aggErr error
	var run2 *ServerResult
	var aggRes *AggResult
	wg.Add(3)
	go func() {
		defer wg.Done()
		_, run1Err = RunShard(link0, devs0, ShardConfig{Shard: 0, FT: FTConfig{CheckpointPath: ckPath}})
	}()
	go func() {
		defer wg.Done()
		_, shard1Err = RunShard(link1, devs1, ShardConfig{Shard: 1})
	}()
	go func() {
		defer wg.Done()
		aggRes, aggErr = RunAggregator([]transport.Conn{agg0, agg1}, cfg)
	}()

	// The shard is dead; /healthz must go critical-free but non-ok, naming
	// the shard and the detach cause, before we even begin the restore.
	<-crashed
	code, body := pollHealthz(t, srv.URL, func(code int, body string) bool {
		return code == http.StatusServiceUnavailable
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after the kill = %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "shard:0") || !strings.Contains(body, "detached") {
		t.Errorf("degraded healthz body must name the dead shard and cause, got %q", body)
	}

	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("load checkpoint after the crash: %v", err)
	}
	devs2 := make([]transport.Conn, len(partition[0]))
	for j, u := range partition[0] {
		scn, cc := transport.Pipe()
		devs2[j] = scn
		dials[u] <- cc
	}
	agg2, sh2 := transport.Pipe()
	wg.Add(1)
	go func() {
		defer wg.Done()
		run2, run2Err = RunShard(sh2, devs2,
			ShardConfig{Shard: 0, FT: FTConfig{CheckpointPath: ckPath, Restore: ck}})
	}()
	hello, err := agg2.Recv()
	if err != nil {
		t.Fatalf("restore hello from the restarted shard: %v", err)
	}
	rejoins <- Rejoin{Conn: agg2, Hello: hello}
	close(hold)

	wg.Wait()
	for _, d := range dials {
		close(d)
	}
	_, clientErrs := wait()

	if run1Err == nil {
		t.Fatal("killed shard reported no error")
	}
	if aggErr != nil {
		t.Fatalf("aggregator: %v", aggErr)
	}
	if shard1Err != nil {
		t.Fatalf("healthy shard: %v", shard1Err)
	}
	if run2Err != nil {
		t.Fatalf("restarted shard: %v", run2Err)
	}
	for u, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", u, e)
		}
	}

	// The rejoin landed and the run finished: the fleet is healthy again.
	if code, body := getHealthz(t, srv.URL); code != http.StatusOK {
		t.Fatalf("healthz after the rejoin = %d %q, want 200", code, body)
	}
	if got := eng.HealthCode(); got != 0 {
		t.Errorf("final health code = %d (%+v), want 0", got, eng.Fleet())
	}
	if st, ok := eng.Component("shard:0"); !ok || st.State != health.StateOK {
		t.Errorf("shard:0 component after the rejoin = %+v, want ok", st)
	}
	if !tailHas(fr, "health-transition") {
		t.Error("no health-transition flight records from the kill/restore")
	}
	if got := reg.Gauge(obs.MetricHealthState, "").Value(); got != 0 {
		t.Errorf("%s gauge = %g after recovery, want 0", obs.MetricHealthState, got)
	}
	// The transition log pins the whole trajectory: shard:0 went down and
	// came back, and the fleet followed it.
	snap := eng.Snapshot()
	var sawDown, sawBack bool
	for _, tr := range snap.Transitions {
		if tr.Component == "shard:0" && tr.To == "degraded" {
			sawDown = true
		}
		if tr.Component == "shard:0" && sawDown && tr.To == "ok" {
			sawBack = true
		}
	}
	if !sawDown || !sawBack {
		t.Errorf("transition log missing the shard:0 down/up pair: %+v", snap.Transitions)
	}

	// Health observation stayed passive: same model as the engine-less run
	// of the same choreography (pinned by TestShardedKillRestoreRejoins's
	// bitwise asserts; here we check the plane still agrees with itself).
	if !vecIdentical(run2.Model.W0, aggRes.W0) {
		t.Error("final w0 differs across the plane with the health engine attached")
	}
}

// TestShardHealthPiggybackReportsRemoteState: a shard running its own health
// engine stamps its rollup on every consensus sum (the free Labeled field),
// and the aggregator folds it into its fleet tree as shard:<id>. A shard
// with no engine stamps 0 and must not appear.
func TestShardHealthPiggybackReportsRemoteState(t *testing.T) {
	users, _ := makeUsers(37, 6)
	partition := [][]int{{0, 1, 2}, {3, 4, 5}}

	sc := sweepConfig()
	clean := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist}, nil, nil, nil)
	if clean.aggErr != nil {
		t.Fatalf("clean aggregator: %v", clean.aggErr)
	}

	aggReg := obs.NewRegistry()
	aggEng := health.New(aggReg, quietHealthCfg(2, 2))
	shardReg := obs.NewRegistry()
	shardEng := health.New(shardReg, quietHealthCfg(0, 0))
	// Degrade the shard-local engine before the run: every stamp it
	// piggybacks must carry code 1 (degraded).
	shardEng.ReportRemote("devices", 1, "injected-degraded")

	sc2 := sweepConfig()
	cfg := AggConfig{Core: sc2.Core, Dist: sc2.Dist}
	cfg.Core.Obs = aggReg
	out := runSharded(t, users, partition, cfg, func(s int) ShardConfig {
		scfg := ShardConfig{Shard: s}
		if s == 0 {
			scfg.Core.Obs = shardReg
		}
		return scfg
	}, nil, nil)
	if out.aggErr != nil {
		t.Fatalf("aggregator: %v", out.aggErr)
	}
	for s, e := range out.shardErrs {
		if e != nil {
			t.Fatalf("shard %d: %v", s, e)
		}
	}

	st, ok := aggEng.Component("shard:0")
	if !ok {
		t.Fatal("aggregator engine has no shard:0 component; piggyback stamp never folded")
	}
	if st.State != health.StateDegraded || !strings.Contains(st.Cause, "shard-reported") {
		t.Errorf("shard:0 = %+v, want degraded via shard-reported", st)
	}
	if _, ok := aggEng.Component("shard:1"); ok {
		t.Error("engine-less shard 1 stamps 0 and must not appear in the fleet tree")
	}
	if got := aggEng.HealthCode(); got != 1 {
		t.Errorf("fleet code = %d, want 1 (degraded shard report)", got)
	}

	// The stamp rides a fixed-width field the codec always encodes, so the
	// run is still bit-identical to the unstamped one.
	if !vecIdentical(out.agg.W0, clean.agg.W0) {
		t.Error("global model differs with health stamps on the wire")
	}
	if !floatsIdentical(out.agg.Info.ObjectiveHistory, clean.agg.Info.ObjectiveHistory) {
		t.Error("objective history differs with health stamps on the wire")
	}
}

// TestHealthEndpointsScrapeHammer is the race soak of the ops surfaces:
// a chaos-seeded sharded run with the health engine ticking at 1ms while
// scraper goroutines hammer /metrics, /debug/vars and /debug/health the
// whole time. The race detector (ci runs this with -race) is the real
// assertion; the test itself checks the run survived, faults were injected,
// every scrape succeeded, and the model still matches the clean run.
func TestHealthEndpointsScrapeHammer(t *testing.T) {
	users, _ := makeUsers(37, 6)
	partition := [][]int{{0, 1, 2}, {3, 4, 5}}

	sc := sweepConfig()
	clean := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist}, nil, nil, nil)
	if clean.aggErr != nil {
		t.Fatalf("clean aggregator: %v", clean.aggErr)
	}

	reg := obs.NewRegistry()
	reg.SetFlightRecorder(obs.NewFlightRecorder(nil, 256))
	eng := health.New(reg, quietHealthCfg(2, 1))
	eng.Start(time.Millisecond)
	defer eng.Stop()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/health", eng.TreeHandler())
	mux.Handle("/healthz", eng.HealthzHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	done := make(chan struct{})
	var scrapes, scrapeErrs atomic.Int64
	var hammer sync.WaitGroup
	for g := 0; g < 4; g++ {
		hammer.Add(1)
		go func() {
			defer hammer.Done()
			paths := []string{"/metrics", "/debug/vars", "/debug/health", "/healthz"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := srv.Client().Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					scrapeErrs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				// /healthz legitimately serves 503 mid-chaos; anything else
				// must be 200.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					scrapeErrs.Add(1)
				}
				scrapes.Add(1)
			}
		}()
	}

	// Same content-preserving chaos plan as the bit-identity soak, with the
	// observed registry wired into the aggregator core.
	policy := func(seed int64) transport.RetryPolicy {
		return transport.RetryPolicy{MaxAttempts: 10, Seed: seed, Sleep: ftNoSleep,
			Counter: obs.MetricAggLinkRetries}
	}
	wrapAgg := func(s int, aggSide, shardSide transport.Conn) (transport.Conn, transport.Conn) {
		chaos := transport.Chaos(shardSide, transport.ChaosConfig{
			Seed:        300 + int64(s),
			DropProb:    0.05,
			DupProb:     0.05,
			CorruptProb: 0.03,
			DelayProb:   0.10,
			MaxDelay:    time.Millisecond,
			FlapProb:    0.01,
			Sleep:       ftNoSleep,
		}, reg)
		return transport.Retry(aggSide, policy(1300+int64(s)), reg),
			transport.Retry(chaos, policy(int64(s)), reg)
	}
	sc2 := sweepConfig()
	cfg := AggConfig{Core: sc2.Core, Dist: sc2.Dist}
	cfg.Core.Obs = reg
	out := runShardedLinks(t, users, partition, cfg, nil, nil, nil, wrapAgg)

	close(done)
	hammer.Wait()

	if out.aggErr != nil {
		t.Fatalf("chaos aggregator: %v", out.aggErr)
	}
	for s, e := range out.shardErrs {
		if e != nil {
			t.Fatalf("chaos shard %d: %v", s, e)
		}
	}
	if reg.CounterValue(obs.MetricChaosFaults) == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
	if n := scrapes.Load(); n == 0 {
		t.Fatal("scrapers never completed a request")
	}
	if n := scrapeErrs.Load(); n != 0 {
		t.Errorf("%d scrapes failed (of %d)", n, scrapes.Load())
	}
	if !vecIdentical(out.agg.W0, clean.agg.W0) {
		t.Error("global model differs with scrapers attached")
	}
}
