package protocol

import (
	"fmt"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/transport"
)

// ClientResult is what a device ends up with after training: the shared
// hyperplane and its own personalized one, plus its traffic accounting.
type ClientResult struct {
	W0      mat.Vector
	W       mat.Vector
	Traffic transport.Stats
}

// ClientOptions tweak device behavior. Hyperparameters arrive from the
// server, so the zero value is the normal deployment.
type ClientOptions struct {
	// Seed drives the device-local SVM initialization.
	Seed int64
}

// RunClient executes the device side of the protocol over conn using the
// local dataset. It blocks until the server finishes (or fails) and
// returns the final model from the device's perspective. The raw samples
// in data are never serialized.
func RunClient(conn transport.Conn, data core.UserData, opts ClientOptions) (*ClientResult, error) {
	if data.X == nil || data.X.Rows == 0 {
		return nil, core.ErrEmptyUser
	}
	initW, initWeight := core.LocalInit(data, core.Config{Seed: opts.Seed})
	hello := transport.Message{
		Type:    transport.MsgHello,
		Dim:     data.X.Cols,
		Samples: data.NumSamples(),
		Labeled: data.NumLabeled(),
		W:       initW,
	}
	// The server weights init hyperplanes by the hello's Labeled field;
	// LocalInit returns weight == labeled count exactly when a local SVM
	// trained, so a single-class user reports 0 to stay out of the
	// weighted average.
	if initWeight == 0 {
		hello.Labeled = 0
	}
	if err := conn.Send(hello); err != nil {
		return nil, fmt.Errorf("protocol: RunClient hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("protocol: RunClient hello reply: %w", err)
	}
	switch reply.Type {
	case transport.MsgHello:
	case transport.MsgError:
		return nil, fmt.Errorf("%w: %s", ErrAborted, reply.Reason)
	default:
		return nil, fmt.Errorf("%w: got %v, want hello", ErrUnexpectedMsg, reply.Type)
	}
	if reply.Config == nil || reply.Users <= 0 {
		return nil, fmt.Errorf("%w: hello reply missing config", ErrUnexpectedMsg)
	}
	cfg := coreConfig(reply.Config)
	cfg.Seed = opts.Seed
	rho := reply.Config.Rho
	worker, err := core.NewWorker(data, reply.Users, cfg)
	if err != nil {
		return nil, fmt.Errorf("protocol: RunClient: %w", err)
	}

	for {
		msg, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("protocol: RunClient: %w", err)
		}
		switch msg.Type {
		case transport.MsgStartRound:
			worker.RefreshSigns(mat.Vector(msg.W0))
		case transport.MsgParams:
			w, v, xi, err := worker.Solve(mat.Vector(msg.W0), mat.Vector(msg.U), rho)
			if err != nil {
				_ = conn.Send(transport.Message{Type: transport.MsgError, Reason: err.Error()})
				return nil, fmt.Errorf("protocol: RunClient solve: %w", err)
			}
			update := transport.Message{Type: transport.MsgUpdate, Round: msg.Round,
				W: w, V: v, Xi: xi}
			if err := conn.Send(update); err != nil {
				return nil, fmt.Errorf("protocol: RunClient update: %w", err)
			}
		case transport.MsgDone:
			return &ClientResult{
				W0:      mat.Vector(msg.W0),
				W:       worker.Hyperplane(),
				Traffic: conn.Stats(),
			}, nil
		case transport.MsgError:
			return nil, fmt.Errorf("%w: %s", ErrAborted, msg.Reason)
		default:
			return nil, fmt.Errorf("%w: %v", ErrUnexpectedMsg, msg.Type)
		}
	}
}
