package protocol

import (
	"errors"
	"fmt"
	"time"

	"plos/internal/core"
	"plos/internal/cost"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/rng"
	"plos/internal/transport"
)

// ClientResult is what a device ends up with after training: the shared
// hyperplane and its own personalized one, plus its traffic accounting.
type ClientResult struct {
	W0 mat.Vector
	W  mat.Vector
	// Session is the server-issued resume token (0 when the server runs
	// without the fault-tolerance layer).
	Session int64
	// Traffic aggregates the device's transport stats across every
	// connection it used (redials included).
	Traffic transport.Stats
}

// ClientOptions tweak device behavior. Hyperparameters arrive from the
// server, so the zero value is the normal deployment.
type ClientOptions struct {
	// Seed drives the device-local SVM initialization and the redial
	// backoff jitter.
	Seed int64
	// Session, when non-zero, is echoed in the hello so the server can
	// re-attach the device to its slot (resume after disconnect or
	// checkpoint restore).
	Session int64
	// OnSession is called whenever the server issues or changes the
	// device's session token — persist it to survive a device crash.
	OnSession func(token int64)
	// MaxRedials bounds how many times RunClientLoop redials after a
	// connection failure (0 means never redial).
	MaxRedials int
	// RedialDelay is the base backoff between redials (default 50ms,
	// doubling per attempt, capped at 2s, ±20% seeded jitter).
	RedialDelay time.Duration
	// Sleep replaces time.Sleep between redials (tests).
	Sleep func(time.Duration)
	// Obs receives the device's local observations (QP/Gram spans, solver
	// metrics). Nil disables, as everywhere.
	Obs *obs.Registry
	// Async offers asynchronous DJAM mode in the hello (the otherwise-unused
	// Users field; see docs/ASYNC.md) and fails the handshake unless the
	// server confirms it — a device expecting push-whenever semantics must
	// not silently train lockstep. The device's message flow is identical in
	// both modes, so this is an assertion, not a behavior switch.
	Async bool
}

// connError marks failures of the connection itself — the only class of
// failure a redial can fix. Protocol violations, server aborts, and local
// solver errors are returned bare and treated as fatal.
type connError struct{ err error }

func (e *connError) Error() string { return e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

func connFail(format string, args ...any) error {
	return &connError{err: fmt.Errorf(format, args...)}
}

// clientState is the device state that must survive a reconnect: the worker
// (with its CCCP-frozen signs), the session token, which round's signs are
// frozen, and traffic from dead connections.
type clientState struct {
	data  core.UserData
	opts  ClientOptions
	initW mat.Vector
	// initLabeled is the Labeled count reported in hellos (0 when the
	// local init carries no weight; see LocalInit).
	initLabeled int
	worker      *core.Worker
	rho         float64
	session     int64
	// frozenEpoch is the CCCP round whose signs the worker currently has
	// frozen, or -1 before the first start-round. On resume, a start-round
	// for the same epoch skips the refresh so the linearization point is
	// preserved.
	frozenEpoch int
	traffic     transport.Stats
	// telemetry mirrors the server hello's WireConfig.Telemetry: when set,
	// every update piggybacks a WireTelemetry block. solveTotal accumulates
	// local solve wall time across the run (the compute-energy input).
	telemetry  bool
	solveTotal time.Duration
}

func newClientState(data core.UserData, opts ClientOptions) (*clientState, error) {
	if data.X == nil || data.X.Rows == 0 {
		return nil, core.ErrEmptyUser
	}
	initW, initWeight := core.LocalInit(data, core.Config{Seed: opts.Seed})
	st := &clientState{
		data:        data,
		opts:        opts,
		initW:       initW,
		initLabeled: data.NumLabeled(),
		session:     opts.Session,
		frozenEpoch: -1,
	}
	// The server weights init hyperplanes by the hello's Labeled field;
	// LocalInit returns weight == labeled count exactly when a local SVM
	// trained, so a single-class user reports 0 to stay out of the
	// weighted average.
	if initWeight == 0 {
		st.initLabeled = 0
	}
	return st, nil
}

// run executes the protocol over one connection, folding its traffic into
// st.traffic even on failure. Connection-level failures come back wrapped
// in connError so RunClientLoop knows a redial may help.
func (st *clientState) run(conn transport.Conn) (res *ClientResult, err error) {
	defer func() { st.traffic = st.traffic.Add(conn.Stats()) }()

	hello := transport.Message{
		Type:    transport.MsgHello,
		Dim:     st.data.X.Cols,
		Samples: st.data.NumSamples(),
		Labeled: st.initLabeled,
		W:       st.initW,
		Session: st.session,
	}
	if st.opts.Async {
		// Offer asynchronous mode in the hello's otherwise-unused Users
		// field; sync hellos keep it zero (byte-identical wire).
		hello.Users = asyncHello
	}
	if err := conn.Send(hello); err != nil {
		return nil, connFail("protocol: RunClient hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		return nil, connFail("protocol: RunClient hello reply: %w", err)
	}
	switch reply.Type {
	case transport.MsgHello:
	case transport.MsgError:
		return nil, fmt.Errorf("%w: %s", ErrAborted, reply.Reason)
	default:
		return nil, fmt.Errorf("%w: got %v, want hello", ErrUnexpectedMsg, reply.Type)
	}
	if reply.Config == nil || reply.Users <= 0 {
		return nil, fmt.Errorf("%w: hello reply missing config", ErrUnexpectedMsg)
	}
	if st.opts.Async && reply.Samples != asyncHello {
		return nil, fmt.Errorf("%w: server did not confirm asynchronous mode", ErrUnexpectedMsg)
	}
	if reply.Session != 0 && reply.Session != st.session {
		st.session = reply.Session
		if st.opts.OnSession != nil {
			st.opts.OnSession(st.session)
		}
	}
	st.telemetry = reply.Config.Telemetry
	if st.worker == nil {
		cfg := coreConfig(reply.Config)
		cfg.Seed = st.opts.Seed
		cfg.Obs = st.opts.Obs
		st.rho = reply.Config.Rho
		worker, err := core.NewWorker(st.data, reply.Users, cfg)
		if err != nil {
			return nil, fmt.Errorf("protocol: RunClient: %w", err)
		}
		st.worker = worker
	}

	for {
		msg, err := conn.Recv()
		if err != nil {
			return nil, connFail("protocol: RunClient: %w", err)
		}
		switch msg.Type {
		case transport.MsgStartRound:
			// After a reconnect the server replays the current round's
			// start-round; refreshing again would move the linearization
			// point mid-round, so a round the worker already froze is
			// skipped.
			if msg.Round != st.frozenEpoch || !st.worker.Ready() {
				st.worker.RefreshSigns(mat.Vector(msg.W0))
				st.frozenEpoch = msg.Round
			}
		case transport.MsgParams:
			var solveStart time.Time
			if st.telemetry {
				solveStart = time.Now()
			}
			w, v, xi, err := st.worker.Solve(mat.Vector(msg.W0), mat.Vector(msg.U), st.rho)
			if err != nil {
				_ = conn.Send(transport.Message{Type: transport.MsgError, Reason: err.Error()})
				return nil, fmt.Errorf("protocol: RunClient solve: %w", err)
			}
			update := transport.Message{Type: transport.MsgUpdate, Round: msg.Round,
				W: w, V: v, Xi: xi}
			if st.telemetry {
				update.Telemetry = st.buildTelemetry(time.Since(solveStart), conn)
			}
			if err := conn.Send(update); err != nil {
				return nil, connFail("protocol: RunClient update: %w", err)
			}
		case transport.MsgDone:
			return &ClientResult{
				W0:      mat.Vector(msg.W0),
				W:       st.worker.Hyperplane(),
				Session: st.session,
			}, nil
		case transport.MsgError:
			return nil, fmt.Errorf("%w: %s", ErrAborted, msg.Reason)
		default:
			return nil, fmt.Errorf("%w: %v", ErrUnexpectedMsg, msg.Type)
		}
	}
}

// buildTelemetry assembles the piggyback block for one update: this solve's
// wall time and solver counts, plus the device's cumulative traffic and the
// cost-model energy estimate (compute scaled to device time by the default
// phone profile, radio energy from the message/byte totals). Durations are
// device-local only — the server anchors them to its own round clock.
func (st *clientState) buildTelemetry(solveDur time.Duration, conn transport.Conn) *transport.WireTelemetry {
	st.solveTotal += solveDur
	ss := st.worker.TakeSolveStats()
	stats := st.traffic.Add(conn.Stats())
	phone := cost.DefaultPhone()
	energy := phone.ComputeEnergyJ(phone.DeviceTime(st.solveTotal)) + phone.CommEnergyJ(stats)
	return &transport.WireTelemetry{
		SolveNS:   solveDur.Nanoseconds(),
		QPIters:   ss.QPIters,
		Cuts:      ss.Cuts,
		WarmHits:  ss.WarmHits,
		SignFlips: int64(ss.SignFlips),
		MsgsSent:  int64(stats.MessagesSent),
		MsgsRecv:  int64(stats.MessagesReceived),
		BytesSent: stats.BytesSent,
		BytesRecv: stats.BytesReceived,
		EnergyJ:   energy,
	}
}

// RunClient executes the device side of the protocol over conn using the
// local dataset. It blocks until the server finishes (or fails) and
// returns the final model from the device's perspective. The raw samples
// in data are never serialized.
func RunClient(conn transport.Conn, data core.UserData, opts ClientOptions) (*ClientResult, error) {
	st, err := newClientState(data, opts)
	if err != nil {
		return nil, err
	}
	res, err := st.run(conn)
	if res != nil {
		res.Traffic = st.traffic
	}
	return res, err
}

// RunClientLoop is RunClient with reconnection: when a connection fails
// mid-training it redials (up to opts.MaxRedials times, with seeded
// exponential backoff) and resumes its slot via the session token. dial is
// called for every connection, including the first; RunClientLoop closes
// every connection it opens. Fatal protocol errors (server abort, local
// solve failure) are returned immediately without redialing.
func RunClientLoop(dial func() (transport.Conn, error), data core.UserData, opts ClientOptions) (*ClientResult, error) {
	st, err := newClientState(data, opts)
	if err != nil {
		return nil, err
	}
	base := opts.RedialDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	const maxDelay = 2 * time.Second
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	g := rng.New(opts.Seed).Split("redial")

	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, dialErr := dial()
		if dialErr == nil {
			res, runErr := st.run(conn)
			_ = conn.Close()
			if runErr == nil {
				res.Traffic = st.traffic
				return res, nil
			}
			var ce *connError
			if !errors.As(runErr, &ce) {
				return nil, runErr
			}
			lastErr = runErr
		} else {
			lastErr = fmt.Errorf("protocol: RunClientLoop dial: %w", dialErr)
		}
		if attempt >= opts.MaxRedials {
			return nil, fmt.Errorf("protocol: RunClientLoop: gave up after %d attempts: %w",
				attempt+1, lastErr)
		}
		delay := base << attempt
		if delay > maxDelay || delay <= 0 {
			delay = maxDelay
		}
		jitter := 1 + 0.2*(2*g.Float64()-1)
		sleep(time.Duration(float64(delay) * jitter))
	}
}
