package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io/fs"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"plos/internal/mat"
)

// sampleCheckpoint builds a representative snapshot: three users, one
// dropped (with nil vectors), one never heard from.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Epoch:     2,
		Dim:       3,
		Seed:      77,
		W0:        mat.Vector{0.5, -1.25, math.Pi},
		Objective: []float64{12.5, 11.875},
		Sessions:  []int64{101, 102, 103},
		Dropped:   []bool{false, true, false},
		Stale:     []int{0, 4, 1},
		Us:        []mat.Vector{{1, 2, 3}, nil, {-0.5, 0, 0.5}},
		LastW:     []mat.Vector{{4, 5, 6}, nil, {7, 8, 9}},
		LastV:     []mat.Vector{{0.1, 0.2, 0.3}, nil, nil},
		LastXi:    []float64{0.25, 0, 1.5},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	buf, err := MarshalCheckpoint(ck)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalCheckpoint(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", ck, got)
	}
	// Canonical: re-encoding the decoded form reproduces the bytes.
	buf2, err := MarshalCheckpoint(got)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Error("encoding is not canonical")
	}
}

func TestMarshalCheckpointRejectsInconsistentSlices(t *testing.T) {
	ck := sampleCheckpoint()
	ck.Stale = ck.Stale[:1]
	if _, err := MarshalCheckpoint(ck); err == nil {
		t.Error("mismatched per-user slice lengths should fail to marshal")
	}
}

func TestUnmarshalCheckpointRejectsCorruption(t *testing.T) {
	good, err := MarshalCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", mutate(func(b []byte) []byte { b[1] = 9; return b })},
		{"trailing byte", mutate(func(b []byte) []byte { return append(b, 0) })},
		{"truncated tail", mutate(func(b []byte) []byte { return b[:len(b)-1] })},
		{"truncated header", good[:5]},
		// Offset 26 is the first byte of the user count (after magic,
		// version and three i64 header fields).
		{"huge user count", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[26:], 1<<31-1)
			return b
		})},
		// Offset 30 starts the w0 vector length.
		{"huge vector length", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[30:], 1<<31-1)
			return b
		})},
		{"non-bool dropped byte", mutate(func(b []byte) []byte {
			// First user entry starts after header + w0 vec + objective vec;
			// its dropped byte follows the 8-byte session.
			off := 30 + 4 + 8*3 + 4 + 8*2 + 8
			b[off] = 2
			return b
		})},
		{"present empty optvec", func() []byte {
			// A presence byte of 1 followed by a zero-length vector would
			// re-encode as absent, so the decoder must reject it.
			ck := sampleCheckpoint()
			b, _ := MarshalCheckpoint(ck)
			off := 30 + 4 + 8*3 + 4 + 8*2 + 8 + 1 + 8 // first user's Us optvec
			if b[off] != 1 {
				t.Fatalf("test offset drifted: byte at %d is %d, want presence 1", off, b[off])
			}
			out := append([]byte(nil), b[:off]...)
			out = append(out, 1, 0, 0, 0, 0) // present, length 0
			out = append(out, b[off+1+4+8*3:]...)
			return out
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalCheckpoint(tc.data); !errors.Is(err, ErrCheckpoint) {
				t.Errorf("err = %v, want ErrCheckpoint", err)
			}
		})
	}
}

func TestCheckpointValidateForRestore(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(ck *Checkpoint)
	}{
		{"zero dim", func(ck *Checkpoint) { ck.Dim = 0 }},
		{"negative epoch", func(ck *Checkpoint) { ck.Epoch = -1; ck.Objective = nil }},
		{"w0 length", func(ck *Checkpoint) { ck.W0 = ck.W0[:1] }},
		{"objective/epoch mismatch", func(ck *Checkpoint) { ck.Objective = ck.Objective[:1] }},
		{"no users", func(ck *Checkpoint) {
			ck.Sessions, ck.Dropped, ck.Stale = nil, nil, nil
			ck.Us, ck.LastW, ck.LastV, ck.LastXi = nil, nil, nil, nil
		}},
		{"zero live token", func(ck *Checkpoint) { ck.Sessions[0] = 0 }},
		{"duplicate live token", func(ck *Checkpoint) { ck.Sessions[2] = ck.Sessions[0] }},
		{"wrong vector dim", func(ck *Checkpoint) { ck.LastW[2] = mat.Vector{1} }},
	}
	if err := sampleCheckpoint().validateForRestore(); err != nil {
		t.Fatalf("sample checkpoint should validate: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck := sampleCheckpoint()
			tc.mutate(ck)
			if err := ck.validateForRestore(); !errors.Is(err, ErrCheckpoint) {
				t.Errorf("err = %v, want ErrCheckpoint", err)
			}
		})
	}
	// A dropped user's token may be zero or duplicated — it is out of play.
	ck := sampleCheckpoint()
	ck.Sessions[1] = 0
	if err := ck.validateForRestore(); err != nil {
		t.Errorf("dropped user with zero token should validate: %v", err)
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := LoadCheckpoint(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
	ck := sampleCheckpoint()
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Error("loaded checkpoint differs from saved")
	}
	// Atomic overwrite: a newer snapshot replaces the old one in place.
	ck.Epoch = 3
	ck.Objective = append(ck.Objective, 11.5)
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || len(got.Objective) != 3 {
		t.Errorf("overwritten checkpoint = epoch %d, %d objectives", got.Epoch, len(got.Objective))
	}
	// Temp files from the atomic write must not accumulate.
	matches, err := filepath.Glob(filepath.Join(t.TempDir(), "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}

// FuzzCheckpointRoundTrip pins two properties of the codec: the decoder
// never panics on arbitrary input, and every accepted input is the canonical
// encoding of its decoded value (decode ∘ encode is the identity).
func FuzzCheckpointRoundTrip(f *testing.F) {
	if buf, err := MarshalCheckpoint(sampleCheckpoint()); err == nil {
		f.Add(buf)
	}
	if buf, err := MarshalCheckpoint(&Checkpoint{Dim: 1, W0: mat.Vector{1},
		Sessions: []int64{9}, Dropped: []bool{false}, Stale: []int{0},
		Us: []mat.Vector{nil}, LastW: []mat.Vector{nil}, LastV: []mat.Vector{nil},
		LastXi: []float64{0}}); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{ckMagic, ckVersion})
	f.Add([]byte("Knot a checkpoint at all, just bytes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := UnmarshalCheckpoint(data)
		if err != nil {
			return
		}
		buf, err := MarshalCheckpoint(ck)
		if err != nil {
			t.Fatalf("accepted input failed to re-marshal: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("non-canonical input accepted:\n in: %x\nout: %x", data, buf)
		}
	})
}
