package protocol

import (
	"errors"
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/obs"
	"plos/internal/shard"
	"plos/internal/transport"
)

// floatsIdentical is bit-exact slice equality, the currency of the sharded
// plane's bit-identity contract.
func floatsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shardedOut collects every side of a sharded run: the aggregator,
// the shards (by shard id), and the devices (by global user index).
type shardedOut struct {
	agg        *AggResult
	aggErr     error
	shards     []*ServerResult
	shardErrs  []error
	clients    []*ClientResult
	clientErrs []error
}

// runSharded wires a full sharded plane over in-process pipes: one
// aggregator, one shard goroutine per partition entry, and one client per
// user. partition maps shard id -> global user indices, in slot order.
// wrapDevice optionally wraps the shard-side device connections. deliver,
// when non-nil, receives each client-side connection instead of the helper
// spawning RunClient (the caller then owns those clients and their results).
func runSharded(t *testing.T, users []core.UserData, partition [][]int,
	cfg AggConfig, shardCfg func(s int) ShardConfig,
	wrapDevice func(u int, c transport.Conn) transport.Conn,
	deliver func(u int, cc transport.Conn)) *shardedOut {
	t.Helper()
	return runShardedLinks(t, users, partition, cfg, shardCfg, wrapDevice, deliver, nil)
}

// runShardedLinks is runSharded with an extra hook on the shard↔aggregator
// links: wrapAgg, when non-nil, may wrap either end of shard s's link (the
// chaos and fault-injection surface of the shard tier).
func runShardedLinks(t *testing.T, users []core.UserData, partition [][]int,
	cfg AggConfig, shardCfg func(s int) ShardConfig,
	wrapDevice func(u int, c transport.Conn) transport.Conn,
	deliver func(u int, cc transport.Conn),
	wrapAgg func(s int, aggSide, shardSide transport.Conn) (transport.Conn, transport.Conn)) *shardedOut {
	t.Helper()
	k := len(partition)
	out := &shardedOut{
		shards: make([]*ServerResult, k), shardErrs: make([]error, k),
		clients: make([]*ClientResult, len(users)), clientErrs: make([]error, len(users)),
	}
	aggConns := make([]transport.Conn, k)
	var deviceConns []transport.Conn
	var clientWg, shardWg sync.WaitGroup
	for s := range partition {
		aggSide, shardSide := transport.Pipe()
		if wrapAgg != nil {
			aggSide, shardSide = wrapAgg(s, aggSide, shardSide)
		}
		aggConns[s] = aggSide
		conns := make([]transport.Conn, 0, len(partition[s]))
		for _, u := range partition[s] {
			sc, cc := transport.Pipe()
			if wrapDevice != nil {
				sc = wrapDevice(u, sc)
			}
			conns = append(conns, sc)
			deviceConns = append(deviceConns, sc)
			if deliver != nil {
				deliver(u, cc)
				continue
			}
			clientWg.Add(1)
			go func(u int, cc transport.Conn) {
				defer clientWg.Done()
				out.clients[u], out.clientErrs[u] = RunClient(cc, users[u], ClientOptions{Seed: int64(u)})
			}(u, cc)
		}
		sCfg := ShardConfig{Shard: s}
		if shardCfg != nil {
			sCfg = shardCfg(s)
		}
		shardWg.Add(1)
		go func(s int, shardSide transport.Conn, conns []transport.Conn, sCfg ShardConfig) {
			defer shardWg.Done()
			out.shards[s], out.shardErrs[s] = RunShard(shardSide, conns, sCfg)
		}(s, shardSide, conns, sCfg)
	}
	out.agg, out.aggErr = RunAggregator(aggConns, cfg)
	for _, c := range aggConns {
		_ = c.Close()
	}
	shardWg.Wait()
	for _, c := range deviceConns {
		_ = c.Close()
	}
	clientWg.Wait()
	return out
}

// TestShardedBitIdenticalToSingleCoordinator is the pinned contract of the
// sharded plane: at a fixed shard order, the final models (global and
// per-user, server- and device-side) and the whole objective history must be
// bit-identical to a single coordinator reducing over the same partition.
func TestShardedBitIdenticalToSingleCoordinator(t *testing.T) {
	users, _ := makeUsers(31, 9)
	partition := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}

	refCfg := sweepConfig()
	refCfg.ReduceGroups = partition
	ref, err, refClients, refClientErrs := runPipesFT(t, users, refCfg, nil, nil)
	if err != nil {
		t.Fatalf("grouped single-coordinator reference: %v", err)
	}

	sc := sweepConfig()
	out := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist}, nil, nil, nil)
	if out.aggErr != nil {
		t.Fatalf("aggregator: %v", out.aggErr)
	}
	for s, e := range out.shardErrs {
		if e != nil {
			t.Fatalf("shard %d: %v", s, e)
		}
	}
	for u, e := range out.clientErrs {
		if e != nil || refClientErrs[u] != nil {
			t.Fatalf("client %d: sharded err %v, reference err %v", u, e, refClientErrs[u])
		}
	}

	if !vecIdentical(out.agg.W0, ref.Model.W0) {
		t.Errorf("aggregator w0 differs from single coordinator:\nsharded %v\n    ref %v",
			out.agg.W0, ref.Model.W0)
	}
	if !floatsIdentical(out.agg.Info.ObjectiveHistory, ref.Info.ObjectiveHistory) {
		t.Errorf("objective history differs: sharded %v, ref %v",
			out.agg.Info.ObjectiveHistory, ref.Info.ObjectiveHistory)
	}
	if out.agg.Info.CCCPIterations != ref.Info.CCCPIterations ||
		out.agg.Info.CCCPConverged != ref.Info.CCCPConverged {
		t.Errorf("CCCP outcome differs: sharded (%d, %v), ref (%d, %v)",
			out.agg.Info.CCCPIterations, out.agg.Info.CCCPConverged,
			ref.Info.CCCPIterations, ref.Info.CCCPConverged)
	}
	if out.agg.Users != len(users) {
		t.Errorf("aggregator counted %d users, want %d", out.agg.Users, len(users))
	}
	for s, res := range out.shards {
		if !vecIdentical(res.Model.W0, out.agg.W0) {
			t.Errorf("shard %d final w0 differs from the aggregator's", s)
		}
		if res.Info.CCCPIterations != out.agg.Info.CCCPIterations {
			t.Errorf("shard %d counted %d rounds, aggregator %d",
				s, res.Info.CCCPIterations, out.agg.Info.CCCPIterations)
		}
		for j, u := range partition[s] {
			if res.Dropped[j] {
				t.Fatalf("fault-free sharded run dropped user %d", u)
			}
			if !vecIdentical(res.Model.W[j], ref.Model.W[u]) {
				t.Errorf("user %d hyperplane differs between sharded and single coordinator", u)
			}
		}
	}
	for u := range users {
		if !vecIdentical(out.clients[u].W, refClients[u].W) {
			t.Errorf("user %d device-side model differs between sharded and single coordinator", u)
		}
	}
}

// TestShardedSingleShardDegenerates: a one-shard plane and a single
// coordinator with one reduce group are both the plain server in disguise —
// all three must produce bit-identical models.
func TestShardedSingleShardDegenerates(t *testing.T) {
	users, _ := makeUsers(32, 5)
	all := []int{0, 1, 2, 3, 4}

	plain, err, _, _ := runPipesFT(t, users, sweepConfig(), nil, nil)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	grpCfg := sweepConfig()
	grpCfg.ReduceGroups = [][]int{all}
	grouped, err, _, _ := runPipesFT(t, users, grpCfg, nil, nil)
	if err != nil {
		t.Fatalf("grouped run: %v", err)
	}
	if !vecIdentical(grouped.Model.W0, plain.Model.W0) {
		t.Error("one reduce group changed the global model vs the plain server")
	}

	sc := sweepConfig()
	out := runSharded(t, users, [][]int{all}, AggConfig{Core: sc.Core, Dist: sc.Dist}, nil, nil, nil)
	if out.aggErr != nil {
		t.Fatalf("aggregator: %v", out.aggErr)
	}
	if e := out.shardErrs[0]; e != nil {
		t.Fatalf("shard: %v", e)
	}
	if !vecIdentical(out.agg.W0, plain.Model.W0) {
		t.Errorf("one-shard plane w0 differs from the plain server:\nsharded %v\n  plain %v",
			out.agg.W0, plain.Model.W0)
	}
	for u := range users {
		if !vecIdentical(out.shards[0].Model.W[u], plain.Model.W[u]) {
			t.Errorf("user %d hyperplane differs between one-shard plane and plain server", u)
		}
	}
}

// loopClients starts one RunClientLoop per user fed by a dial channel, so a
// device survives a coordinator hand-off by redialing the next process.
func loopClients(users []core.UserData) (dials []chan transport.Conn,
	wait func() ([]*ClientResult, []error)) {
	n := len(users)
	dials = make([]chan transport.Conn, n)
	results := make([]*ClientResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		dials[i] = make(chan transport.Conn, 2)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dial := func() (transport.Conn, error) {
				c, ok := <-dials[i]
				if !ok {
					return nil, errors.New("out of connections")
				}
				return c, nil
			}
			results[i], errs[i] = RunClientLoop(dial, users[i],
				ClientOptions{Seed: int64(i), MaxRedials: 2,
					RedialDelay: time.Millisecond, Sleep: ftNoSleep})
		}(i)
	}
	wait = func() ([]*ClientResult, []error) {
		wg.Wait()
		return results, errs
	}
	return dials, wait
}

// TestShardedCheckpointHandoffBitIdentical: run one round on a two-shard
// plane, crash every shard at the final broadcast, restore fresh shard
// processes from the per-shard checkpoints with the same (still-running)
// devices, and finish. The final model must be bit-identical to an
// uninterrupted single-coordinator run over the same partition.
func TestShardedCheckpointHandoffBitIdentical(t *testing.T) {
	users, _ := makeUsers(33, 7)
	partition := [][]int{{0, 1, 2, 3}, {4, 5, 6}}

	refCfg := sweepConfig()
	refCfg.ReduceGroups = partition
	ref, err, _, _ := runPipesFT(t, users, refCfg, nil, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	paths := []string{dir + "/shard0.ckpt", dir + "/shard1.ckpt"}
	dials, wait := loopClients(users)
	deliver := func(u int, cc transport.Conn) { dials[u] <- cc }

	// Phase 1: one CCCP round, checkpoint, crash at the done broadcast.
	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 1
	phase1 := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist},
		func(s int) ShardConfig {
			return ShardConfig{Shard: s, FT: FTConfig{CheckpointPath: paths[s]}}
		},
		func(u int, c transport.Conn) transport.Conn { return &doneBlocker{Conn: c} },
		deliver)
	if phase1.aggErr != nil {
		t.Fatalf("phase 1 aggregator: %v", phase1.aggErr)
	}
	for s, e := range phase1.shardErrs {
		if e != nil {
			t.Fatalf("phase 1 shard %d: %v", s, e)
		}
	}

	cks := make([]*Checkpoint, 2)
	for s, p := range paths {
		if cks[s], err = LoadCheckpoint(p); err != nil {
			t.Fatalf("load shard %d checkpoint: %v", s, err)
		}
		if cks[s].Epoch != 1 {
			t.Fatalf("shard %d checkpoint epoch = %d, want 1", s, cks[s].Epoch)
		}
	}

	// Phase 2: fresh shard processes restore the checkpoints; the devices
	// redial and re-attach by session token.
	sc2 := sweepConfig()
	phase2 := runSharded(t, users, partition, AggConfig{Core: sc2.Core, Dist: sc2.Dist},
		func(s int) ShardConfig {
			return ShardConfig{Shard: s, FT: FTConfig{CheckpointPath: paths[s], Restore: cks[s]}}
		}, nil, deliver)
	for _, d := range dials {
		close(d)
	}
	clients, clientErrs := wait()
	if phase2.aggErr != nil {
		t.Fatalf("phase 2 aggregator: %v", phase2.aggErr)
	}
	for s, e := range phase2.shardErrs {
		if e != nil {
			t.Fatalf("phase 2 shard %d: %v", s, e)
		}
	}
	for u, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", u, e)
		}
		if clients[u].Session == 0 {
			t.Errorf("client %d never held a session token", u)
		}
	}

	if !vecIdentical(phase2.agg.W0, ref.Model.W0) {
		t.Error("global model differs from the uninterrupted single-coordinator run")
	}
	if !floatsIdentical(phase2.agg.Info.ObjectiveHistory, ref.Info.ObjectiveHistory) {
		t.Errorf("objective history differs: handoff %v, ref %v",
			phase2.agg.Info.ObjectiveHistory, ref.Info.ObjectiveHistory)
	}
	for s, res := range phase2.shards {
		for j, u := range partition[s] {
			if res.Dropped[j] {
				t.Fatalf("user %d dropped across the hand-off", u)
			}
			if !vecIdentical(res.Model.W[j], ref.Model.W[u]) {
				t.Errorf("user %d model differs from the uninterrupted run", u)
			}
			if !vecIdentical(clients[u].W, ref.Model.W[u]) {
				t.Errorf("user %d device-side model differs from the uninterrupted run", u)
			}
		}
	}
	for s, p := range paths {
		final, err := LoadCheckpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		if final.Epoch != 2 {
			t.Errorf("shard %d final checkpoint epoch = %d, want 2", s, final.Epoch)
		}
	}
}

// TestShardedRebalanceViaRing: crash a two-shard plane after one round, then
// rebalance — merge the shard checkpoints, re-partition every user by
// consistent-hash ring ownership of its session token, split, and restore.
// The re-homed users must be adopted (counted as migrations) and training
// must finish with every device agreeing on the final model.
func TestShardedRebalanceViaRing(t *testing.T) {
	users, _ := makeUsers(34, 8)
	partition := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}

	dir := t.TempDir()
	paths := []string{dir + "/shard0.ckpt", dir + "/shard1.ckpt"}
	dials, wait := loopClients(users)
	deliver := func(u int, cc transport.Conn) { dials[u] <- cc }

	sc := sweepConfig()
	sc.Core.MaxCCCPIter = 1
	phase1 := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist},
		func(s int) ShardConfig {
			return ShardConfig{Shard: s, FT: FTConfig{CheckpointPath: paths[s]}}
		},
		func(u int, c transport.Conn) transport.Conn { return &doneBlocker{Conn: c} },
		deliver)
	if phase1.aggErr != nil {
		t.Fatalf("phase 1 aggregator: %v", phase1.aggErr)
	}

	// The rebalance runbook (docs/SHARDING.md): merge in shard order, then
	// split by ring ownership of the session tokens.
	ck0, err := LoadCheckpoint(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	ck1, err := LoadCheckpoint(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeCheckpoints(ck0, ck1)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	slotUser := append(append([]int(nil), partition[0]...), partition[1]...)
	ring := shard.NewRing([]int{0, 1}, 0)
	newPartition := make([][]int, 2)
	for slot, sess := range merged.Sessions {
		s := ring.Owner(sess)
		newPartition[s] = append(newPartition[s], slotUser[slot])
	}
	if len(newPartition[0]) == 0 || len(newPartition[1]) == 0 {
		t.Fatalf("degenerate ring partition %v; pick a different seed", newPartition)
	}
	if len(newPartition[0]) == len(partition[0]) {
		same := true
		for i, u := range newPartition[0] {
			same = same && u == partition[0][i]
		}
		if same {
			t.Fatal("ring partition equals the original; the test would not exercise migration")
		}
	}
	splits := make([]*Checkpoint, 2)
	for s := range splits {
		s := s
		if splits[s], err = SplitCheckpoint(merged, func(slot int, sess int64) bool {
			return ring.Owner(sess) == s
		}); err != nil {
			t.Fatalf("split shard %d: %v", s, err)
		}
	}

	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	sc2 := sweepConfig()
	phase2 := runSharded(t, users, newPartition, AggConfig{Core: sc2.Core, Dist: sc2.Dist},
		func(s int) ShardConfig {
			return ShardConfig{Shard: s, Core: core.Config{Obs: regs[s]},
				FT: FTConfig{Restore: splits[s]}}
		}, nil, deliver)
	for _, d := range dials {
		close(d)
	}
	clients, clientErrs := wait()
	if phase2.aggErr != nil {
		t.Fatalf("phase 2 aggregator: %v", phase2.aggErr)
	}
	for s, e := range phase2.shardErrs {
		if e != nil {
			t.Fatalf("phase 2 shard %d: %v", s, e)
		}
	}
	for u, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", u, e)
		}
	}
	for s, res := range phase2.shards {
		if got := regs[s].CounterValue(obs.MetricShardMigrations); got != int64(len(newPartition[s])) {
			t.Errorf("shard %d adopted %d users, %s = %d", s, len(newPartition[s]),
				obs.MetricShardMigrations, got)
		}
		for j, u := range newPartition[s] {
			if res.Dropped[j] {
				t.Fatalf("user %d dropped across the rebalance", u)
			}
			if !vecIdentical(res.Model.W0, phase2.agg.W0) {
				t.Errorf("shard %d w0 differs from the aggregator's", s)
			}
			if !vecIdentical(clients[u].W, res.Model.W[j]) {
				t.Errorf("user %d device- and shard-side models disagree after the rebalance", u)
			}
		}
	}
	if phase2.agg.Info.CCCPIterations != sweepConfig().Core.MaxCCCPIter {
		t.Errorf("rebalanced run finished %d rounds, want %d",
			phase2.agg.Info.CCCPIterations, sweepConfig().Core.MaxCCCPIter)
	}
}

// TestShardedDeviceFailureAbortsGlobally: losing a device below one shard's
// MinActive floor must take down that shard, the aggregator, and the sibling
// shard's devices — the plane has no partial-progress mode.
func TestShardedDeviceFailureAbortsGlobally(t *testing.T) {
	users, _ := makeUsers(35, 5)
	partition := [][]int{{0, 1, 2}, {3, 4}}

	sc := sweepConfig()
	out := runSharded(t, users, partition, AggConfig{Core: sc.Core, Dist: sc.Dist},
		func(s int) ShardConfig {
			return ShardConfig{Shard: s, MinActive: len(partition[s])}
		},
		func(u int, c transport.Conn) transport.Conn {
			if u == 0 {
				return transport.FailAfter(c, 4)
			}
			return c
		}, nil)

	if out.aggErr == nil {
		t.Error("aggregator survived a shard abort")
	}
	if out.shardErrs[0] == nil || !errors.Is(out.shardErrs[0], ErrTooFewActive) {
		t.Errorf("shard 0 error = %v, want ErrTooFewActive", out.shardErrs[0])
	}
	if out.shardErrs[1] == nil {
		t.Error("sibling shard survived the global abort")
	}
	for u, e := range out.clientErrs {
		if e == nil {
			t.Errorf("client %d finished despite the global abort", u)
		}
	}
}
