package protocol

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/obs"
	"plos/internal/transport"
)

// runPipesAsync is runPipesFT with every client offering asynchronous mode
// in its hello.
func runPipesAsync(t *testing.T, users []core.UserData, cfg ServerConfig,
	wrapServer, wrapClient func(i int, c transport.Conn) transport.Conn) (*ServerResult, error, []*ClientResult, []error) {
	t.Helper()
	n := len(users)
	serverConns := make([]transport.Conn, n)
	clientResults := make([]*ClientResult, n)
	clientErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		if wrapServer != nil {
			sc = wrapServer(i, sc)
		}
		if wrapClient != nil {
			cc = wrapClient(i, cc)
		}
		serverConns[i] = sc
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			// Close on exit so a client that fails its handshake (e.g. the
			// negotiation test) unblocks the server instead of deadlocking
			// the pipe.
			defer conn.Close()
			clientResults[i], clientErrs[i] = RunClient(conn, users[i], ClientOptions{Seed: int64(i), Async: true})
		}(i, cc)
	}
	res, err := RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	return res, err, clientResults, clientErrs
}

// TestAsyncWireMatchesSyncAccuracy: the asynchronous wire protocol must
// train to the same neighborhood as the synchronous one — personalized
// accuracy within noise and the Eq. (23) objective within 10% — while
// folding updates per arrival (async_updates_total > 0).
func TestAsyncWireMatchesSyncAccuracy(t *testing.T) {
	users, truths := makeUsers(21, 4)
	base := ServerConfig{Core: core.Config{Lambda: 50, Cl: 1, Cu: 0.2, MaxCCCPIter: 6}}

	syncRes, err, _, syncErrs := runPipesFT(t, users, base, nil, nil)
	if err != nil {
		t.Fatalf("sync run: %v", err)
	}
	for i, e := range syncErrs {
		if e != nil {
			t.Fatalf("sync client %d: %v", i, e)
		}
	}

	reg := obs.NewRegistry()
	cfg := base
	cfg.Async = true
	cfg.Core.Obs = reg
	asyncRes, err, clients, clientErrs := runPipesAsync(t, users, cfg, nil, nil)
	if err != nil {
		t.Fatalf("async run: %v", err)
	}
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("async client %d: %v", i, e)
		}
	}
	var accSync, accAsync float64
	for i := range users {
		if asyncRes.Dropped[i] {
			t.Fatalf("user %d dropped in a fault-free async run", i)
		}
		accSync += accuracy(syncRes.Model.W[i], users[i], truths[i])
		accAsync += accuracy(asyncRes.Model.W[i], users[i], truths[i])
		if !vecIdentical(clients[i].W, asyncRes.Model.W[i]) {
			t.Errorf("user %d: client's personalized model differs from the server's", i)
		}
	}
	accSync /= float64(len(users))
	accAsync /= float64(len(users))
	if accAsync < 0.8 {
		t.Errorf("async wire accuracy = %v", accAsync)
	}
	if math.Abs(accSync-accAsync) > 0.1 {
		t.Errorf("sync acc %v vs async acc %v", accSync, accAsync)
	}
	objSync, objAsync := syncRes.Info.Objective, asyncRes.Info.Objective
	if gap := math.Abs(objSync-objAsync) / math.Abs(objSync); gap > 0.10 {
		t.Errorf("objective gap %.1f%%: sync %v vs async %v", 100*gap, objSync, objAsync)
	}
	if reg.CounterValue(obs.MetricAsyncUpdates) == 0 {
		t.Error("async run folded nothing (async_updates_total = 0)")
	}
	if asyncRes.Info.ADMMIterations == 0 {
		t.Error("TrainInfo.ADMMIterations should count the folds")
	}
}

// TestAsyncModeNegotiation pins the handshake contract: a device that
// offers asynchronous mode fails fast against a synchronous server, and an
// asynchronous server still serves devices that never offered (their flow
// is identical — params in, update out).
func TestAsyncModeNegotiation(t *testing.T) {
	users, _ := makeUsers(22, 2)

	// Async clients against a sync server: the missing confirmation must
	// fail the client handshake rather than silently training lockstep.
	_, err, _, clientErrs := runPipesAsync(t, users, sweepConfig(), nil, nil)
	if err == nil {
		t.Error("sync server should fail once async clients hang up")
	}
	for i, e := range clientErrs {
		if e == nil || !strings.Contains(e.Error(), "asynchronous") {
			t.Errorf("client %d should reject the unconfirmed handshake, got %v", i, e)
		}
	}

	// Sync clients against an async server: served normally.
	cfg := sweepConfig()
	cfg.Async = true
	res, err2, _, syncErrs := runPipesFT(t, users, cfg, nil, nil)
	if err2 != nil {
		t.Fatalf("async server with sync clients: %v", err2)
	}
	for i, e := range syncErrs {
		if e != nil {
			t.Fatalf("sync client %d against async server: %v", i, e)
		}
	}
	for i := range users {
		if res.Dropped[i] {
			t.Errorf("user %d dropped", i)
		}
	}
}

// TestSyncHandshakeBytesUnchanged pins the synchronous handshake frames to
// their exact pre-async bytes: the negotiation reuses the hello's Users
// field and the reply's Samples field, both zero for sync peers, so
// enabling the feature must not move a single sync-mode wire byte.
func TestSyncHandshakeBytesUnchanged(t *testing.T) {
	hello := transport.Message{
		Type:    transport.MsgHello,
		Dim:     3,
		Samples: 24,
		Labeled: 10,
		W:       []float64{0.5, -0.25, 1},
		Session: 7,
	}
	reply := transport.Message{
		Type:  transport.MsgHello,
		Users: 4,
		Dim:   3,
		Config: &transport.WireConfig{
			Lambda: 100, Cl: 1, Cu: 0.2, Epsilon: 1e-3, Rho: 1,
			MaxCutIter: 60, QPMaxIter: 5000,
		},
		Session: 7,
	}
	const wantHello = "5003010000000000000000000000000000000300000000000000180000000000" +
		"00000a000000000000000000000000000000000000000000000007000000000000000000000000000000" +
		"00000000000000000000000003000000000000000000e03f000000000000d0bf000000000000f03f0000000000"
	const wantReply = "50030100000000000000000000000000000003000000000000000000000000000000000000000000000004000000000000000000000000000000070000000000000000000000000000000000000000000000000000000000000000000000010000000000005940000000000000f03f9a9999999999c93ffca9f1d24d62503f000000000000f03f3c000000000000008813000000000000000000"
	for _, c := range []struct {
		name string
		msg  transport.Message
		want string
	}{{"client hello", hello, wantHello}, {"server reply", reply, wantReply}} {
		got := transport.EncodeMessage(c.msg)
		want, err := hex.DecodeString(c.want)
		if err != nil {
			t.Fatalf("bad pinned hex for %s: %v", c.name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s bytes changed:\n got %s\nwant %s", c.name, hex.EncodeToString(got), c.want)
		}
	}

	// Sanity: the async offer/confirm occupies exactly the reused fields.
	aHello := hello
	aHello.Users = asyncHello
	aReply := reply
	aReply.Samples = asyncHello
	if bytes.Equal(transport.EncodeMessage(aHello), transport.EncodeMessage(hello)) {
		t.Error("async hello offer should change the encoded Users field")
	}
	if bytes.Equal(transport.EncodeMessage(aReply), transport.EncodeMessage(reply)) {
		t.Error("async hello confirm should change the encoded Samples field")
	}
}

// TestAsyncChaosSoak: PR 3's chaos harness must hold in asynchronous mode —
// the retry layer absorbs every injected fault, nobody is dropped, and the
// run still trains. Bit-identity with a clean run is NOT asserted (fold
// order is arrival order by design); convergence is.
func TestAsyncChaosSoak(t *testing.T) {
	users, truths := makeUsers(40, 3)
	reg := obs.NewRegistry()
	cfg := sweepConfig()
	cfg.Async = true
	cfg.Core.Obs = reg
	policy := func(seed int64) transport.RetryPolicy {
		return transport.RetryPolicy{MaxAttempts: 10, Seed: seed, Sleep: ftNoSleep}
	}
	res, err, _, clientErrs := runPipesAsync(t, users, cfg,
		func(i int, c transport.Conn) transport.Conn {
			return transport.Retry(c, policy(1000+int64(i)), reg)
		},
		func(i int, c transport.Conn) transport.Conn {
			chaos := transport.Chaos(c, transport.ChaosConfig{
				Seed:        100 + int64(i),
				DropProb:    0.05,
				DupProb:     0.05,
				CorruptProb: 0.03,
				DelayProb:   0.10,
				MaxDelay:    time.Millisecond,
				FlapProb:    0.01,
				Sleep:       ftNoSleep,
			}, reg)
			return transport.Retry(chaos, policy(int64(i)), reg)
		})
	if err != nil {
		t.Fatalf("async chaos run: %v", err)
	}
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("async chaos client %d: %v", i, e)
		}
	}
	var acc float64
	for i := range users {
		if res.Dropped[i] {
			t.Fatalf("user %d dropped under chaos — retry budget should absorb every fault", i)
		}
		acc += accuracy(res.Model.W[i], users[i], truths[i])
	}
	if acc/float64(len(users)) < 0.75 {
		t.Errorf("accuracy under chaos = %v", acc/float64(len(users)))
	}
	if reg.CounterValue(obs.MetricChaosFaults) == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
}

// TestAsyncClientResumeMidTraining: session resume must work unchanged in
// asynchronous mode — a device whose connection dies mid-run redials with
// its token, re-attaches, and finishes without being dropped.
func TestAsyncClientResumeMidTraining(t *testing.T) {
	users, _ := makeUsers(23, 3)
	reg := obs.NewRegistry()
	rejoinCh := make(chan Rejoin, 1)
	cfg := ServerConfig{
		Core:  core.Config{Lambda: 50, Cl: 1, Cu: 0.2, MaxCCCPIter: 2, MaxCutIter: 8, Obs: reg},
		Async: true,
		// A tolerance the fold cannot reach keeps each round folding up to
		// its MaxADMMIter·T budget, so the redial always lands mid-round.
		Dist: core.DistConfig{EpsAbs: 1e-12},
		FT:   FTConfig{Resume: true, Rejoin: rejoinCh, MaxStale: 1000},
	}

	const victim = 0
	n := len(users)
	serverConns := make([]transport.Conn, n)
	clientConns := make([]transport.Conn, n)
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		clientConns[i] = cc
	}

	var wg sync.WaitGroup
	clientResults := make([]*ClientResult, n)
	clientErrs := make([]error, n)

	// The victim's first connection dies at its 10th operation (a few
	// exchanges into round 0); its redial builds a fresh pipe whose server
	// end is fed to the rejoin channel the way plos.Serve's accept loop
	// would. The asynchronous round loop drains rejoins after every fold,
	// so no gating choreography is needed.
	dialCount := 0
	victimDial := func() (transport.Conn, error) {
		dialCount++
		switch dialCount {
		case 1:
			return transport.FailAfter(clientConns[victim], 9), nil
		case 2:
			sc, cc := transport.Pipe()
			go func() {
				m, err := sc.Recv()
				if err != nil {
					_ = sc.Close()
					return
				}
				rejoinCh <- Rejoin{Conn: sc, Hello: m}
			}()
			return cc, nil
		default:
			return nil, errors.New("no third connection in this test")
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		clientResults[victim], clientErrs[victim] = RunClientLoop(victimDial, users[victim],
			ClientOptions{Seed: int64(victim), Async: true, MaxRedials: 2,
				RedialDelay: time.Millisecond, Sleep: ftNoSleep})
	}()
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			clientResults[i], clientErrs[i] = RunClient(conn, users[i],
				ClientOptions{Seed: int64(i), Async: true})
		}(i, clientConns[i])
	}

	res, err := RunServer(serverConns, cfg)
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
	}
	if res.Dropped[victim] {
		t.Fatal("victim dropped despite resume")
	}
	if reg.CounterValue(obs.MetricProtocolReconnects) == 0 {
		t.Error("no reconnect recorded — the victim never re-attached")
	}
	if clientResults[victim].W == nil {
		t.Error("victim finished without a personalized model")
	}
}

// TestAsyncFlightRecords: asynchronous runs must leave an analyzable trail —
// an async-snapshot record per personalized launch and an async-fold record
// per folded arrival, carrying the staleness and applied weight.
func TestAsyncFlightRecords(t *testing.T) {
	users, _ := makeUsers(24, 3)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	reg.SetFlightRecorder(obs.NewFlightRecorder(&buf, 64))
	cfg := sweepConfig()
	cfg.Async = true
	cfg.Core.Obs = reg
	if _, err, _, _ := runPipesAsync(t, users, cfg, nil, nil); err != nil {
		t.Fatalf("async run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"rec":"async-snapshot"`) {
		t.Error("no async-snapshot records in the flight stream")
	}
	if !strings.Contains(out, `"rec":"async-fold"`) {
		t.Error("no async-fold records in the flight stream")
	}
	if !strings.Contains(out, `"staleness":`) || !strings.Contains(out, `"weight":`) {
		t.Error("async-fold records should carry staleness and weight")
	}
}

// TestAsyncRejectsReduceGroups: the sharded plane is lockstep by
// construction; combining it with Async must fail loudly up front.
func TestAsyncRejectsReduceGroups(t *testing.T) {
	sc, cc := transport.Pipe()
	defer sc.Close()
	defer cc.Close()
	_, err := RunServer([]transport.Conn{sc}, ServerConfig{
		Async:        true,
		ReduceGroups: [][]int{{0}},
	})
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("want incompatibility error, got %v", err)
	}
}
