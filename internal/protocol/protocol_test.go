package protocol

import (
	"errors"
	"math"
	"sync"
	"testing"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/rng"
	"plos/internal/transport"
)

// synthUser mirrors the generator used by the core tests.
func synthUser(g *rng.RNG, perClass, labeled int, theta float64) (core.UserData, []float64) {
	rot := rng.Rotation2D(theta)
	n := 2 * perClass
	x := mat.NewMatrix(n, 2)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		base := mat.Vector{cls*4 + g.Norm()*1.2, cls*4 + g.Norm()*1.2}
		p := rot.MulVec(base)
		x.Set(i, 0, p[0])
		x.Set(i, 1, p[1])
		truth[i] = cls
	}
	return core.UserData{X: x, Y: truth[:labeled]}, truth
}

func makeUsers(seed int64, n int) ([]core.UserData, [][]float64) {
	g := rng.New(seed)
	users := make([]core.UserData, n)
	truths := make([][]float64, n)
	for i := range users {
		labeled := 10
		if i%2 == 1 {
			labeled = 0
		}
		users[i], truths[i] = synthUser(g.SplitN("u", i), 12, labeled, float64(i)*0.1)
	}
	return users, truths
}

// runPipes trains over in-process pipes and returns server result plus the
// client results.
func runPipes(t *testing.T, users []core.UserData, cfg ServerConfig,
	wrap func(i int, c transport.Conn) transport.Conn) (*ServerResult, []*ClientResult, []error) {
	t.Helper()
	n := len(users)
	serverConns := make([]transport.Conn, n)
	clientResults := make([]*ClientResult, n)
	clientErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		if wrap != nil {
			cc = wrap(i, cc)
		}
		serverConns[i] = sc
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			clientResults[i], clientErrs[i] = RunClient(conn, users[i], ClientOptions{Seed: int64(i)})
		}(i, cc)
	}
	res, err := RunServer(serverConns, cfg)
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	wg.Wait()
	return res, clientResults, clientErrs
}

func accuracy(w mat.Vector, u core.UserData, truth []float64) float64 {
	correct := 0
	for i := 0; i < u.X.Rows; i++ {
		pred := -1.0
		if w.Dot(u.X.Row(i)) >= 0 {
			pred = 1
		}
		if pred == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(u.X.Rows)
}

func TestProtocolEndToEndPipes(t *testing.T) {
	users, truths := makeUsers(1, 4)
	cfg := ServerConfig{Core: core.Config{Lambda: 50, Cl: 1, Cu: 0.2}}
	res, clients, clientErrs := runPipes(t, users, cfg, nil)

	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := range users {
		if res.Dropped[i] {
			t.Fatalf("user %d unexpectedly dropped", i)
		}
		if acc := accuracy(res.Model.W[i], users[i], truths[i]); acc < 0.85 {
			t.Errorf("user %d server-side accuracy = %v", i, acc)
		}
		// Client's view of its own hyperplane must match the server's.
		if !clients[i].W.Equal(res.Model.W[i], 1e-9) {
			t.Errorf("user %d hyperplane mismatch between server and device", i)
		}
		if !clients[i].W0.Equal(res.Model.W0, 1e-9) {
			t.Errorf("user %d w0 mismatch", i)
		}
	}
	if res.Total.MessagesSent == 0 || res.Total.BytesSent == 0 {
		t.Errorf("missing traffic accounting: %+v", res.Total)
	}
	if res.Info.ADMMIterations == 0 || res.Info.CCCPIterations == 0 {
		t.Errorf("missing solver diagnostics: %+v", res.Info)
	}
}

func TestProtocolMatchesInProcessDistributed(t *testing.T) {
	users, truths := makeUsers(2, 3)
	coreCfg := core.Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 0}
	res, _, _ := runPipes(t, users, ServerConfig{Core: coreCfg}, nil)
	inproc, _, err := core.TrainDistributed(users, coreCfg, core.DistConfig{})
	if err != nil {
		t.Fatalf("TrainDistributed: %v", err)
	}
	// Initializations differ (federated vs pooled), so compare accuracy,
	// not parameters.
	var accWire, accLocal float64
	for i := range users {
		accWire += accuracy(res.Model.W[i], users[i], truths[i])
		accLocal += accuracy(inproc.W[i], users[i], truths[i])
	}
	accWire /= float64(len(users))
	accLocal /= float64(len(users))
	if math.Abs(accWire-accLocal) > 0.1 {
		t.Errorf("wire protocol acc %v vs in-process %v", accWire, accLocal)
	}
}

func TestProtocolDropoutTolerance(t *testing.T) {
	users, truths := makeUsers(3, 4)
	// User 3's device dies after a few messages; the run must complete
	// with the remaining three.
	res, _, _ := runPipes(t, users, ServerConfig{Core: core.Config{Lambda: 50}},
		func(i int, c transport.Conn) transport.Conn {
			if i == 3 {
				return transport.FailAfter(c, 6)
			}
			return c
		})
	if !res.Dropped[3] {
		t.Fatal("user 3 should be reported dropped")
	}
	if res.Model.W[3] != nil {
		t.Error("dropped user should have no final hyperplane")
	}
	for i := 0; i < 3; i++ {
		if res.Dropped[i] {
			t.Fatalf("survivor %d marked dropped", i)
		}
		if acc := accuracy(res.Model.W[i], users[i], truths[i]); acc < 0.8 {
			t.Errorf("survivor %d accuracy = %v", i, acc)
		}
	}
}

func TestProtocolMinActiveAborts(t *testing.T) {
	users, _ := makeUsers(4, 2)
	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		wrapped := transport.Conn(cc)
		if i == 1 {
			wrapped = transport.FailAfter(cc, 4)
		}
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			_, _ = RunClient(conn, users[i], ClientOptions{})
		}(i, wrapped)
	}
	_, err := RunServer(serverConns, ServerConfig{MinActive: 2})
	if !errors.Is(err, ErrTooFewActive) {
		t.Errorf("err = %v, want ErrTooFewActive", err)
	}
	wg.Wait()
}

func TestProtocolDimensionMismatch(t *testing.T) {
	g := rng.New(5)
	u1, _ := synthUser(g.Split("a"), 8, 4, 0)
	u2 := core.UserData{X: mat.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}), Y: []float64{1, -1}}

	sc1, cc1 := transport.Pipe()
	sc2, cc2 := transport.Pipe()
	var wg sync.WaitGroup
	clientErrs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, clientErrs[0] = RunClient(cc1, u1, ClientOptions{}) }()
	go func() { defer wg.Done(); _, clientErrs[1] = RunClient(cc2, u2, ClientOptions{}) }()
	_, err := RunServer([]transport.Conn{sc1, sc2}, ServerConfig{})
	if !errors.Is(err, ErrDimMismatch) {
		t.Errorf("err = %v, want ErrDimMismatch", err)
	}
	wg.Wait()
	aborted := 0
	for _, e := range clientErrs {
		if errors.Is(e, ErrAborted) {
			aborted++
		}
	}
	if aborted == 0 {
		t.Error("at least one client should observe the abort")
	}
}

func TestRunServerNoConns(t *testing.T) {
	if _, err := RunServer(nil, ServerConfig{}); !errors.Is(err, ErrNoConns) {
		t.Errorf("err = %v, want ErrNoConns", err)
	}
}

func TestRunClientEmptyData(t *testing.T) {
	_, cc := transport.Pipe()
	if _, err := RunClient(cc, core.UserData{X: mat.NewMatrix(0, 2)}, ClientOptions{}); err == nil {
		t.Error("empty data should error")
	}
}

func TestProtocolOverTCP(t *testing.T) {
	users, truths := makeUsers(6, 3)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	clientErrs := make([]error, len(users))
	for i := range users {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := transport.Dial(l.Addr())
			if err != nil {
				clientErrs[i] = err
				return
			}
			defer conn.Close()
			_, clientErrs[i] = RunClient(conn, users[i], ClientOptions{Seed: int64(i)})
		}(i)
	}
	conns, err := l.AcceptN(len(users))
	if err != nil {
		t.Fatalf("AcceptN: %v", err)
	}
	res, err := RunServer(conns, ServerConfig{Core: core.Config{Lambda: 50}})
	if err != nil {
		t.Fatalf("RunServer: %v", err)
	}
	wg.Wait()
	for i, e := range clientErrs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
	}
	// NOTE: connection order from AcceptN need not match dial order, so
	// evaluate each hyperplane against its best-matching user.
	for slot := range conns {
		best := 0.0
		for i := range users {
			if acc := accuracy(res.Model.W[slot], users[i], truths[i]); acc > best {
				best = acc
			}
		}
		if best < 0.8 {
			t.Errorf("slot %d best accuracy = %v", slot, best)
		}
	}
	if res.Total.BytesSent == 0 {
		t.Error("TCP byte accounting missing")
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	sc, cc := transport.Pipe()
	go func() {
		_ = cc.Send(transport.Message{Type: transport.MsgUpdate})
	}()
	_, err := RunServer([]transport.Conn{sc}, ServerConfig{})
	if !errors.Is(err, ErrUnexpectedMsg) {
		t.Errorf("err = %v, want ErrUnexpectedMsg", err)
	}
}

func TestClientRejectsMalformedHelloReply(t *testing.T) {
	users, _ := makeUsers(20, 1)
	sc, cc := transport.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(cc, users[0], ClientOptions{})
		done <- err
	}()
	if _, err := sc.Recv(); err != nil { // consume the hello
		t.Fatal(err)
	}
	// Reply without config.
	if err := sc.Send(transport.Message{Type: transport.MsgHello, Users: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrUnexpectedMsg) {
		t.Errorf("err = %v, want ErrUnexpectedMsg", err)
	}
}

func TestClientRejectsUnknownMidTrainingMessage(t *testing.T) {
	users, _ := makeUsers(21, 1)
	sc, cc := transport.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(cc, users[0], ClientOptions{})
		done <- err
	}()
	if _, err := sc.Recv(); err != nil {
		t.Fatal(err)
	}
	reply := transport.Message{Type: transport.MsgHello, Users: 1, Dim: 2,
		Config: wireConfig(fillCoreDefaults(core.Config{}), core.DistConfig{Rho: 1})}
	if err := sc.Send(reply); err != nil {
		t.Fatal(err)
	}
	if err := sc.Send(transport.Message{Type: transport.MsgHello}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrUnexpectedMsg) {
		t.Errorf("err = %v, want ErrUnexpectedMsg", err)
	}
}

func TestServerHelloReplyFailure(t *testing.T) {
	// The client's endpoint dies right after sending its hello: the
	// server must fail the handshake cleanly rather than hang.
	users, _ := makeUsers(30, 1)
	sc, cc := transport.Pipe()
	go func() {
		_ = cc.Send(transport.Message{Type: transport.MsgHello, Dim: 2,
			Samples: users[0].X.Rows, W: []float64{1, 0}})
		_ = cc.Close()
	}()
	if _, err := RunServer([]transport.Conn{sc}, ServerConfig{}); err == nil {
		t.Error("hello-reply failure should error")
	}
}

func TestServerSurvivesDeadConnAtDone(t *testing.T) {
	// A device that dies after its last update: the final Done broadcast
	// must not fail the run.
	users, truths := makeUsers(31, 3)
	res, _, _ := runPipes(t, users, ServerConfig{Core: core.Config{Lambda: 50}},
		func(i int, c transport.Conn) transport.Conn {
			if i == 2 {
				// Generous budget: survives training, dies near the end.
				return transport.FailAfter(c, 500)
			}
			return c
		})
	// Whether or not user 2 made it to Done, the survivors must be intact.
	for i := 0; i < 2; i++ {
		if res.Dropped[i] {
			t.Fatalf("survivor %d dropped", i)
		}
		if acc := accuracy(res.Model.W[i], users[i], truths[i]); acc < 0.8 {
			t.Errorf("survivor %d accuracy = %v", i, acc)
		}
	}
}
