// Package sensors simulates the paper's §VI-B body sensor network — the
// hardware substitute documented in DESIGN.md §3. The real study wore three
// TelosB nodes (waist, left shin, right shin), each with a triaxial
// accelerometer and a biaxial gyroscope, on 20 subjects performing "rest at
// standing" and "rest at sitting", with no instruction about exact node
// placement or orientation.
//
// The simulator reproduces the structure that drives the paper's results:
//
//   - the two postures project gravity differently onto each node's axes
//     (the class signal);
//   - every subject attaches the nodes with a personal random orientation
//     (the per-user pattern shift PLOS personalizes to — free placement is
//     why the body-sensor dataset shows more personal traits than HAR);
//   - physiological tremor, postural sway, and sensor noise ride on top.
//
// Signals are generated at a raw rate and pushed through the exact §VI-B
// pipeline in internal/features: downsample to 20 Hz, normalize, split into
// 3.2 s windows with 50% overlap, extract the 120-dimensional vectors.
package sensors

import (
	"fmt"
	"math"

	"plos/internal/features"
	"plos/internal/mat"
	"plos/internal/rng"
)

// Activity labels. Standing maps to class +1, sitting to −1.
type Activity int

const (
	Standing Activity = iota + 1
	Sitting
)

// Label returns the ±1 class value of the activity.
func (a Activity) Label() float64 {
	if a == Standing {
		return 1
	}
	return -1
}

// NumNodes is the number of sensing nodes per subject.
const NumNodes = 3

// FeatureDim is the per-window feature dimensionality (3 nodes × 40).
const FeatureDim = NumNodes * features.PerNodeCount

// Config tunes the simulator. The zero value reproduces the paper's setup.
type Config struct {
	// Subjects is the cohort size (default 20).
	Subjects int
	// SegmentsPerActivity is the number of windows per activity per
	// subject (default 70, as produced by 5 minutes of recording).
	SegmentsPerActivity int
	// RawHz is the simulated sampling rate before downsampling
	// (default 100); TargetHz is the post-downsampling rate (default 20,
	// must divide RawHz).
	RawHz, TargetHz int
	// WindowSec is the sliding-window width in seconds (default 3.2)
	// with 50% overlap.
	WindowSec float64
	// PlacementStd is the per-user node-orientation variability in
	// radians (default 0.35): the "no instruction was given regarding the
	// exact placement and orientation" knob. Larger values make users
	// more heterogeneous.
	PlacementStd float64
	// FlipProb is the probability that a subject mounts a node upside
	// down (default 0.2) — the strongest personal trait free placement
	// produces, and the main reason one user's model transfers poorly to
	// another (paper §VI-B/Fig 3 discussion). Negative disables flips.
	FlipProb float64
	// NoiseStd is the white sensor noise level in g (default 0.05).
	NoiseStd float64
	// Ambiguity is the fraction of each activity's timeline spent in
	// postures that resemble the *other* class — slouched standing,
	// legs-extended sitting (default 0.18; negative disables). This is
	// what keeps real rest-posture data away from 100% accuracy: the
	// paper's per-user accuracies span ~70–97%, not 100%.
	Ambiguity float64
	// PostureWanderStd is the amplitude (radians) of the slow within-
	// activity posture drift — fidgeting, weight shifts (default 0.12).
	PostureWanderStd float64
}

func (c Config) withDefaults() Config {
	if c.Subjects <= 0 {
		c.Subjects = 20
	}
	if c.SegmentsPerActivity <= 0 {
		c.SegmentsPerActivity = 70
	}
	if c.RawHz <= 0 {
		c.RawHz = 100
	}
	if c.TargetHz <= 0 {
		c.TargetHz = 20
	}
	if c.WindowSec <= 0 {
		c.WindowSec = 3.2
	}
	if c.PlacementStd <= 0 {
		c.PlacementStd = 0.35
	}
	if c.FlipProb == 0 {
		c.FlipProb = 0.2
	} else if c.FlipProb < 0 {
		c.FlipProb = 0
	}
	if c.NoiseStd <= 0 {
		c.NoiseStd = 0.05
	}
	if c.Ambiguity == 0 {
		c.Ambiguity = 0.35
	} else if c.Ambiguity < 0 {
		c.Ambiguity = 0
	}
	if c.PostureWanderStd <= 0 {
		c.PostureWanderStd = 0.12
	}
	return c
}

// Subject is one simulated participant's extracted dataset.
type Subject struct {
	// X rows are window feature vectors (FeatureDim columns), with the
	// two activities interleaved so any prefix is class-balanced.
	X *mat.Matrix
	// Truth holds the ±1 activity label of each row.
	Truth []float64
}

// Dataset is the full simulated cohort.
type Dataset struct {
	Subjects []Subject
}

// base gravity directions per node and posture (unit vectors in the node's
// nominal frame). Standing keeps shins vertical; sitting tilts them and
// leans the waist — these are the class signatures free placement rotates.
var (
	standingDirs = [NumNodes]mat.Vector{
		{0.05, 0.00, 0.99}, // waist
		{0.00, 0.05, 1.00}, // left shin
		{0.03, 0.00, 1.00}, // right shin
	}
	sittingDirs = [NumNodes]mat.Vector{
		{0.20, 0.08, 0.97}, // waist barely changes when sitting upright
		{0.85, 0.05, 0.52}, // left shin angled forward
		{0.80, 0.12, 0.58}, // right shin angled forward
	}
)

// Generate simulates the cohort and runs the extraction pipeline.
func Generate(cfg Config, g *rng.RNG) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.RawHz%cfg.TargetHz != 0 {
		return nil, fmt.Errorf("sensors: Generate: TargetHz %d must divide RawHz %d", cfg.TargetHz, cfg.RawHz)
	}
	ds := &Dataset{Subjects: make([]Subject, cfg.Subjects)}
	for s := 0; s < cfg.Subjects; s++ {
		subj, err := generateSubject(cfg, g.SplitN("subject", s))
		if err != nil {
			return nil, fmt.Errorf("sensors: Generate subject %d: %w", s, err)
		}
		ds.Subjects[s] = subj
	}
	return ds, nil
}

// subjectTraits are the persistent personal characteristics.
type subjectTraits struct {
	// nodeRot rotates each node's gravity directions (free placement).
	axes   [NumNodes]mat.Vector
	angles [NumNodes]float64
	// tremor and sway parameters.
	tremorAmp, tremorHz float64
	swayAmp, swayHz     float64
	// sitSway is the subject's seated-sway factor. It overlaps the
	// standing factor (1.0) so that motion energy is NOT a reliable class
	// signal — otherwise unsupervised clustering separates the activities
	// by restlessness alone, which real rest-posture data does not allow.
	sitSway float64
	biases  [NumNodes][features.SignalsPerNode]float64
}

func sampleTraits(cfg Config, g *rng.RNG) subjectTraits {
	t := subjectTraits{
		tremorAmp: 0.10 + 0.20*g.Float64(),
		tremorHz:  6 + 5*g.Float64(),
		swayAmp:   0.05 + 0.12*g.Float64(),
		swayHz:    0.2 + 0.6*g.Float64(),
		sitSway:   0.6 + 0.5*g.Float64(),
	}
	for n := 0; n < NumNodes; n++ {
		t.axes[n] = g.UnitVector(3)
		t.angles[n] = g.Gauss(0, cfg.PlacementStd)
		if g.Bool(cfg.FlipProb) {
			t.angles[n] += math.Pi // node mounted upside down
		}
		for c := 0; c < features.SignalsPerNode; c++ {
			t.biases[n][c] = g.Gauss(0, 0.02)
		}
	}
	return t
}

// rotate3 applies Rodrigues' rotation of v around unit axis k by angle a.
func rotate3(v, k mat.Vector, a float64) mat.Vector {
	c, s := math.Cos(a), math.Sin(a)
	kxv := mat.Vector{
		k[1]*v[2] - k[2]*v[1],
		k[2]*v[0] - k[0]*v[2],
		k[0]*v[1] - k[1]*v[0],
	}
	kv := k.Dot(v)
	out := make(mat.Vector, 3)
	for i := 0; i < 3; i++ {
		out[i] = v[i]*c + kxv[i]*s + k[i]*kv*(1-c)
	}
	return out
}

func generateSubject(cfg Config, g *rng.RNG) (Subject, error) {
	traits := sampleTraits(cfg, g)
	factor := cfg.RawHz / cfg.TargetHz
	width := int(cfg.WindowSec * float64(cfg.TargetHz))
	stride := width / 2
	perActivity := (cfg.SegmentsPerActivity-1)*stride + width // target-rate samples
	rawPerActivity := perActivity * factor

	// Raw channels: [node][channel][t], both activities concatenated
	// (standing first) so normalization spans the full recording and the
	// posture offset survives within windows.
	raw := make([][][]float64, NumNodes)
	for n := range raw {
		raw[n] = make([][]float64, features.SignalsPerNode)
		for c := range raw[n] {
			raw[n][c] = make([]float64, 2*rawPerActivity)
		}
	}
	// Block schedule: posture is piecewise-stationary in blocks of one
	// window length; a block may be "ambiguous" — a posture variant that
	// leans toward the other class (slouched standing, legs-extended
	// sitting). All nodes share the schedule (it's one body).
	blockLen := width * factor
	numBlocks := (rawPerActivity + blockLen - 1) / blockLen
	for half, act := range []Activity{Standing, Sitting} {
		offset := half * rawPerActivity
		schedG := g.SplitN("schedule", half)
		blend := make([]float64, numBlocks) // 0 = pure class posture
		// vigor is the block's class-independent motion-energy multiplier
		// (restlessness): it dominates the variance of the energy/spread
		// features, which is exactly why unsupervised clustering on real
		// rest-posture data groups by restlessness, not by activity
		// (the paper's Single baseline stays low on unlabeled users).
		vigor := make([]float64, numBlocks)
		for bIdx := range blend {
			if schedG.Bool(cfg.Ambiguity) {
				// Mostly recoverable lean (blend < 0.5) with a tail that
				// crosses into the other class's geometry: a continuum
				// between the clusters that ruins unsupervised boundary
				// placement while a supervised boundary survives.
				blend[bIdx] = 0.15 + 0.5*schedG.Float64()
			}
			vigor[bIdx] = 0.3 + 2.7*schedG.Float64()
		}
		for n := 0; n < NumNodes; n++ {
			own, other := standingDirs[n], sittingDirs[n]
			swayScale := 1.0
			if act == Sitting {
				own, other = sittingDirs[n], standingDirs[n]
				swayScale = traits.sitSway
			}
			phase := g.Float64() * 2 * math.Pi
			wanderHz := 0.05 + 0.1*g.Float64()
			wanderAmp := g.Gauss(cfg.PostureWanderStd, cfg.PostureWanderStd/3)
			for i := 0; i < rawPerActivity; i++ {
				b := i / blockLen
				dir := mat.Axpy(blend[b], mat.SubVec(other, own), own)
				if norm := dir.Norm2(); norm > 0 {
					dir.Scale(1 / norm)
				}
				tSec := float64(i) / float64(cfg.RawHz)
				wander := wanderAmp * math.Sin(2*math.Pi*wanderHz*tSec+phase/3)
				dir = rotate3(dir, traits.axes[n], traits.angles[n]+wander)
				tremor := vigor[b] * traits.tremorAmp * math.Sin(2*math.Pi*traits.tremorHz*tSec+phase)
				sway := vigor[b] * swayScale * traits.swayAmp * math.Sin(2*math.Pi*traits.swayHz*tSec+phase/2)
				// Accelerometer: gravity projection + tremor + sway + noise.
				for c := 0; c < 3; c++ {
					v := dir[c] + tremor*0.3 + sway*float64(c%2) +
						traits.biases[n][c] + g.Gauss(0, cfg.NoiseStd)
					raw[n][c][offset+i] = v
				}
				// Gyroscope: sway angular rate + tremor leakage + noise.
				rate := 2 * math.Pi * traits.swayHz * vigor[b] * swayScale * traits.swayAmp *
					math.Cos(2*math.Pi*traits.swayHz*tSec+phase/2)
				for c := 3; c < features.SignalsPerNode; c++ {
					v := rate*float64(4-c) + tremor*0.1 +
						traits.biases[n][c] + g.Gauss(0, cfg.NoiseStd)
					raw[n][c][offset+i] = v
				}
			}
		}
	}

	// Pipeline: downsample → normalize over full recording → window per
	// activity half → extract features.
	down := make([][][]float64, NumNodes)
	for n := range raw {
		down[n] = make([][]float64, features.SignalsPerNode)
		for c := range raw[n] {
			d, err := features.Downsample(raw[n][c], factor)
			if err != nil {
				return Subject{}, err
			}
			down[n][c] = features.ZNormalize(d)
		}
	}
	wins, err := features.SlidingWindows(perActivity, width, stride)
	if err != nil {
		return Subject{}, err
	}
	if len(wins) < cfg.SegmentsPerActivity {
		return Subject{}, fmt.Errorf("sensors: got %d windows, want %d", len(wins), cfg.SegmentsPerActivity)
	}
	wins = wins[:cfg.SegmentsPerActivity]

	total := 2 * cfg.SegmentsPerActivity
	x := mat.NewMatrix(total, FeatureDim)
	truth := make([]float64, total)
	for wi, w := range wins {
		for half, act := range []Activity{Standing, Sitting} {
			row := 2*wi + half // interleave activities
			offset := half * perActivity
			at := 0
			for n := 0; n < NumNodes; n++ {
				sigs := make([][]float64, features.SignalsPerNode)
				for c := range sigs {
					sigs[c] = down[n][c][offset+w.Start : offset+w.End]
				}
				nf, err := features.NodeFeatures(sigs)
				if err != nil {
					return Subject{}, err
				}
				copy(x.Row(row)[at:], nf)
				at += len(nf)
			}
			truth[row] = act.Label()
		}
	}
	return Subject{X: x, Truth: truth}, nil
}
