package sensors

import (
	"math"
	"testing"

	"plos/internal/rng"
	"plos/internal/svm"
)

func smallCfg() Config {
	return Config{Subjects: 4, SegmentsPerActivity: 20}
}

func TestGenerateShapes(t *testing.T) {
	ds, err := Generate(smallCfg(), rng.New(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Subjects) != 4 {
		t.Fatalf("subjects = %d", len(ds.Subjects))
	}
	for i, s := range ds.Subjects {
		if s.X.Rows != 40 || s.X.Cols != FeatureDim {
			t.Fatalf("subject %d shape = %dx%d, want 40x%d", i, s.X.Rows, s.X.Cols, FeatureDim)
		}
		if FeatureDim != 120 {
			t.Fatalf("FeatureDim = %d, want the paper's 120", FeatureDim)
		}
		pos, neg := 0, 0
		for _, y := range s.Truth {
			switch y {
			case 1:
				pos++
			case -1:
				neg++
			default:
				t.Fatalf("bad label %v", y)
			}
		}
		if pos != 20 || neg != 20 {
			t.Fatalf("subject %d class counts: +%d/−%d", i, pos, neg)
		}
	}
}

func TestGenerateInterleavesClasses(t *testing.T) {
	ds, err := Generate(smallCfg(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.Subjects[0].Truth
	for i := 0; i+1 < len(truth); i += 2 {
		if truth[i] != 1 || truth[i+1] != -1 {
			t.Fatalf("rows %d,%d not interleaved: %v %v", i, i+1, truth[i], truth[i+1])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCfg(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Subjects[0].X.Equal(b.Subjects[0].X, 0) {
		t.Error("same seed should generate identical cohorts")
	}
	c, err := Generate(smallCfg(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Subjects[0].X.Equal(c.Subjects[0].X, 1e-9) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateRejectsBadRates(t *testing.T) {
	cfg := smallCfg()
	cfg.RawHz = 100
	cfg.TargetHz = 30 // does not divide
	if _, err := Generate(cfg, rng.New(5)); err == nil {
		t.Error("non-divisible rates should error")
	}
}

func TestClassesAreSeparablePerSubject(t *testing.T) {
	// The posture signal must be learnable: a per-subject linear SVM on
	// the extracted features should separate standing from sitting well.
	ds, err := Generate(smallCfg(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ds.Subjects {
		m, _, err := svm.Train(svm.AugmentBias(s.X), s.Truth, svm.Params{C: 1, MaxEpochs: 300})
		if err != nil {
			t.Fatalf("subject %d: %v", i, err)
		}
		correct := 0
		aug := svm.AugmentBias(s.X)
		for r := 0; r < aug.Rows; r++ {
			if m.Predict(aug.Row(r)) == s.Truth[r] {
				correct++
			}
		}
		if acc := float64(correct) / float64(aug.Rows); acc < 0.9 {
			t.Errorf("subject %d self-SVM accuracy = %v", i, acc)
		}
	}
}

func TestSubjectsAreHeterogeneous(t *testing.T) {
	// Free placement must inject personal traits: a model trained on one
	// subject should transfer to another subject *imperfectly* (worse
	// than on itself). This is the property Figs 3–4 exploit.
	cfg := smallCfg()
	cfg.Subjects = 8
	cfg.PlacementStd = 0.8
	cfg.FlipProb = 0.5
	ds, err := Generate(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	selfSum, crossSum, crossCount := 0.0, 0.0, 0
	models := make([]*svm.Model, len(ds.Subjects))
	for i, s := range ds.Subjects {
		m, _, err := svm.Train(svm.AugmentBias(s.X), s.Truth, svm.Params{C: 1, MaxEpochs: 300})
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	acc := func(m *svm.Model, s Subject) float64 {
		aug := svm.AugmentBias(s.X)
		correct := 0
		for r := 0; r < aug.Rows; r++ {
			if m.Predict(aug.Row(r)) == s.Truth[r] {
				correct++
			}
		}
		return float64(correct) / float64(aug.Rows)
	}
	for i := range ds.Subjects {
		selfSum += acc(models[i], ds.Subjects[i])
		for j := range ds.Subjects {
			if i != j {
				crossSum += acc(models[i], ds.Subjects[j])
				crossCount++
			}
		}
	}
	self := selfSum / float64(len(ds.Subjects))
	cross := crossSum / float64(crossCount)
	if cross >= self {
		t.Errorf("cross-subject accuracy (%v) should lag self accuracy (%v)", cross, self)
	}
	if self-cross < 0.02 {
		t.Errorf("heterogeneity too weak: self %v vs cross %v", self, cross)
	}
}

func TestRotate3(t *testing.T) {
	// Rotating x-axis around z by π/2 gives the y-axis.
	v := rotate3([]float64{1, 0, 0}, []float64{0, 0, 1}, math.Pi/2)
	want := []float64{0, 1, 0}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("rotate3 = %v", v)
		}
	}
	// Norm preserved for arbitrary rotation.
	u := rotate3([]float64{1, 2, 3}, []float64{0, 1, 0}, 0.7)
	n := math.Sqrt(u[0]*u[0] + u[1]*u[1] + u[2]*u[2])
	if math.Abs(n-math.Sqrt(14)) > 1e-12 {
		t.Errorf("rotation changed the norm: %v", n)
	}
}

func TestActivityLabel(t *testing.T) {
	if Standing.Label() != 1 || Sitting.Label() != -1 {
		t.Error("label mapping wrong")
	}
}
