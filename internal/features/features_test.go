package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalarFeaturesKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"Mean", Mean(x), 3},
		{"Std", Std(x), math.Sqrt(2)},
		{"Median", Median(x), 3},
		{"MAD", MAD(x), 1},
		{"Energy", Energy(x), 11},
		{"IQR", IQR(x), 2},
		{"Quantile0", Quantile(x, 0), 1},
		{"Quantile1", Quantile(x, 1), 5},
		{"QuantileHalf", Quantile(x, 0.5), 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if math.Abs(tc.got-tc.want) > 1e-12 {
				t.Errorf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestScalarFeaturesEmpty(t *testing.T) {
	var empty []float64
	for name, f := range map[string]func([]float64) float64{
		"Mean": Mean, "Std": Std, "Median": Median, "MAD": MAD,
		"Energy": Energy, "IQR": IQR,
	} {
		if got := f(empty); got != 0 {
			t.Errorf("%s(empty) = %v", name, got)
		}
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median = %v", got)
	}
}

func TestSignalFeaturesOrder(t *testing.T) {
	x := []float64{-1, 0, 3}
	f := SignalFeatures(x)
	if f[3] != 3 || f[4] != -1 {
		t.Errorf("max/min misplaced: %v", f)
	}
	if math.Abs(f[0]-Mean(x)) > 1e-12 || math.Abs(f[5]-Energy(x)) > 1e-12 {
		t.Errorf("mean/energy misplaced: %v", f)
	}
}

func TestAccelFeatures(t *testing.T) {
	// Constant acceleration along x: magnitude 2, angle to x = 0, to y and
	// z = π/2, SMA = 2.
	ax := []float64{2, 2, 2}
	ay := []float64{0, 0, 0}
	az := []float64{0, 0, 0}
	f := AccelFeatures(ax, ay, az)
	want := [5]float64{2, 0, math.Pi / 2, math.Pi / 2, 2}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-12 {
			t.Errorf("AccelFeatures[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	// Mismatched lengths yield zeros rather than panicking.
	if got := AccelFeatures([]float64{1}, []float64{}, []float64{1}); got != [5]float64{} {
		t.Errorf("mismatched input should give zeros, got %v", got)
	}
}

func TestNodeFeatures(t *testing.T) {
	sigs := make([][]float64, SignalsPerNode)
	for i := range sigs {
		sigs[i] = []float64{float64(i), float64(i) + 1}
	}
	f, err := NodeFeatures(sigs)
	if err != nil {
		t.Fatalf("NodeFeatures: %v", err)
	}
	if len(f) != PerNodeCount {
		t.Fatalf("len = %d, want %d", len(f), PerNodeCount)
	}
	if _, err := NodeFeatures(sigs[:3]); err == nil {
		t.Error("wrong signal count should error")
	}
	ragged := make([][]float64, SignalsPerNode)
	for i := range ragged {
		ragged[i] = make([]float64, i+1)
	}
	if _, err := NodeFeatures(ragged); err == nil {
		t.Error("ragged signals should error")
	}
}

func TestDownsample(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	got, err := Downsample(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := Downsample(x, 0); err == nil {
		t.Error("factor 0 should error")
	}
	same, err := Downsample(x, 1)
	if err != nil || len(same) != len(x) {
		t.Error("factor 1 should preserve the signal")
	}
}

func TestZNormalize(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	z := ZNormalize(x)
	if math.Abs(Mean(z)) > 1e-12 {
		t.Errorf("normalized mean = %v", Mean(z))
	}
	if math.Abs(Std(z)-1) > 1e-12 {
		t.Errorf("normalized std = %v", Std(z))
	}
	constant := ZNormalize([]float64{5, 5, 5})
	for _, v := range constant {
		if v != 0 {
			t.Error("constant signal should normalize to zeros")
		}
	}
}

func TestSlidingWindows(t *testing.T) {
	// Paper's setup: 20 Hz, 3.2 s window = 64 samples, 50% overlap = 32
	// stride. 70 segments need 69*32+64 = 2272 samples.
	wins, err := SlidingWindows(2272, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 70 {
		t.Errorf("windows = %d, want 70 (paper §VI-B)", len(wins))
	}
	if wins[0].Start != 0 || wins[0].End != 64 || wins[1].Start != 32 {
		t.Errorf("window layout wrong: %+v", wins[:2])
	}
	if _, err := SlidingWindows(100, 0, 32); err == nil {
		t.Error("zero width should error")
	}
	if _, err := SlidingWindows(100, 64, 0); err == nil {
		t.Error("zero stride should error")
	}
	none, err := SlidingWindows(10, 64, 32)
	if err != nil || len(none) != 0 {
		t.Error("short signal should yield no windows")
	}
}

// Property: features are invariant under sample permutation (all are
// order-free statistics).
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 5
		}
		orig := SignalFeatures(x)
		shuffled := append([]float64(nil), x...)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		perm := SignalFeatures(shuffled)
		for i := range orig {
			if math.Abs(orig[i]-perm[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: shifting a signal shifts mean/max/min/median by the same amount
// and leaves std/MAD/IQR unchanged.
func TestPropertyShiftEquivariance(t *testing.T) {
	f := func(seed int64, shiftRaw float64) bool {
		shift := math.Mod(shiftRaw, 100)
		if math.IsNaN(shift) {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 20)
		y := make([]float64, 20)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = x[i] + shift
		}
		fx, fy := SignalFeatures(x), SignalFeatures(y)
		const tol = 1e-9
		// mean, max, min shift; std, MAD, IQR invariant.
		return math.Abs(fy[0]-(fx[0]+shift)) < tol &&
			math.Abs(fy[3]-(fx[3]+shift)) < tol &&
			math.Abs(fy[4]-(fx[4]+shift)) < tol &&
			math.Abs(fy[1]-fx[1]) < tol &&
			math.Abs(fy[2]-fx[2]) < tol &&
			math.Abs(fy[6]-fx[6]) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64, q1Raw, q2Raw float64) bool {
		q1 := math.Abs(math.Mod(q1Raw, 1))
		q2 := math.Abs(math.Mod(q2Raw, 1))
		if math.IsNaN(q1) || math.IsNaN(q2) {
			return true
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 15)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		v1, v2 := Quantile(x, q1), Quantile(x, q2)
		return v1 <= v2+1e-12 &&
			v1 >= Quantile(x, 0)-1e-12 && v2 <= Quantile(x, 1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
