// Package features implements the paper's §VI-B feature-extraction
// pipeline for body-sensor signals:
//
//	raw signals → downsample to 20 Hz → normalize → 3.2 s sliding windows
//	with 50% overlap → per-window feature vectors.
//
// Each sensing node contributes 5 signals (accelerometer x/y/z, gyroscope
// u/v). Per window a node yields 40 features:
//
//   - 7 per signal (mean, standard deviation, median absolute deviation,
//     maximum, minimum, energy, interquartile range) × 5 signals = 35;
//   - the mean magnitude of the three accelerometer axes (1);
//   - the angles between the mean acceleration vector and the three axes (3);
//   - the signal magnitude area of the accelerometer output (1).
//
// Three nodes (waist, left shin, right shin) are concatenated into the
// paper's 120-dimensional vector.
package features

import (
	"fmt"
	"math"
	"sort"
)

// SignalsPerNode is the number of raw channels per sensing node.
const SignalsPerNode = 5

// PerSignalCount is the number of single-signal features.
const PerSignalCount = 7

// PerNodeCount is the feature count one node contributes per window.
const PerNodeCount = SignalsPerNode*PerSignalCount + 5 // 35 + magnitude + 3 angles + SMA

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation.
func Std(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Median returns the sample median; 0 for an empty slice.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MAD returns the median absolute deviation from the median.
func MAD(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Median(x)
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - m)
	}
	return Median(dev)
}

// Energy returns the mean squared value Σx²/n.
func Energy(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s / float64(len(x))
}

// Quantile returns the q-th linear-interpolated quantile, q ∈ [0,1].
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// IQR returns the interquartile range Q3 − Q1.
func IQR(x []float64) float64 { return Quantile(x, 0.75) - Quantile(x, 0.25) }

// SignalFeatures computes the 7 single-signal features in the order:
// mean, std, MAD, max, min, energy, IQR.
func SignalFeatures(x []float64) [PerSignalCount]float64 {
	var out [PerSignalCount]float64
	if len(x) == 0 {
		return out
	}
	maxV, minV := x[0], x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	out[0] = Mean(x)
	out[1] = Std(x)
	out[2] = MAD(x)
	out[3] = maxV
	out[4] = minV
	out[5] = Energy(x)
	out[6] = IQR(x)
	return out
}

// AccelFeatures computes the cross-signal features from the three
// accelerometer axes: mean magnitude, the angles between the mean
// acceleration and each axis, and the signal magnitude area (the normalized
// integral of absolute values).
func AccelFeatures(ax, ay, az []float64) [5]float64 {
	var out [5]float64
	n := len(ax)
	if n == 0 || len(ay) != n || len(az) != n {
		return out
	}
	var magSum, smaSum float64
	for i := 0; i < n; i++ {
		magSum += math.Sqrt(ax[i]*ax[i] + ay[i]*ay[i] + az[i]*az[i])
		smaSum += math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i])
	}
	out[0] = magSum / float64(n)
	mx, my, mz := Mean(ax), Mean(ay), Mean(az)
	norm := math.Sqrt(mx*mx + my*my + mz*mz)
	if norm > 1e-12 {
		out[1] = math.Acos(clamp(mx/norm, -1, 1))
		out[2] = math.Acos(clamp(my/norm, -1, 1))
		out[3] = math.Acos(clamp(mz/norm, -1, 1))
	}
	out[4] = smaSum / float64(n)
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// NodeFeatures computes the 40-entry feature block of one sensing node for
// one window. signals must hold exactly 5 equal-length channels ordered
// accel-x, accel-y, accel-z, gyro-u, gyro-v.
func NodeFeatures(signals [][]float64) ([]float64, error) {
	if len(signals) != SignalsPerNode {
		return nil, fmt.Errorf("features: NodeFeatures: got %d signals, want %d", len(signals), SignalsPerNode)
	}
	n := len(signals[0])
	for i, s := range signals {
		if len(s) != n {
			return nil, fmt.Errorf("features: NodeFeatures: signal %d has %d samples, signal 0 has %d", i, len(s), n)
		}
	}
	out := make([]float64, 0, PerNodeCount)
	for _, s := range signals {
		f := SignalFeatures(s)
		out = append(out, f[:]...)
	}
	a := AccelFeatures(signals[0], signals[1], signals[2])
	out = append(out, a[:]...)
	return out, nil
}

// Downsample keeps every factor-th sample (simple decimation; the simulated
// signals are band-limited by construction, so no anti-alias filter is
// needed). factor must be >= 1.
func Downsample(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("features: Downsample: factor must be >= 1, got %d", factor)
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out, nil
}

// ZNormalize returns (x − mean)/std; a constant signal maps to all zeros.
func ZNormalize(x []float64) []float64 {
	out := make([]float64, len(x))
	m, s := Mean(x), Std(x)
	if s < 1e-12 {
		return out
	}
	for i, v := range x {
		out[i] = (v - m) / s
	}
	return out
}

// Window is a half-open index interval [Start, End).
type Window struct {
	Start, End int
}

// SlidingWindows enumerates the windows of `width` samples with the given
// stride over a signal of n samples (the paper: 3.2 s width at 20 Hz = 64
// samples, 50% overlap = stride 32). Trailing samples that do not fill a
// window are discarded.
func SlidingWindows(n, width, stride int) ([]Window, error) {
	if width <= 0 || stride <= 0 {
		return nil, fmt.Errorf("features: SlidingWindows: width (%d) and stride (%d) must be positive", width, stride)
	}
	var out []Window
	for start := 0; start+width <= n; start += stride {
		out = append(out, Window{Start: start, End: start + width})
	}
	return out, nil
}
